(* The network operator's planning workflows (Section 4.2): where to add
   cloud compute, and where VNF vendors should open new sites. Both use
   Global Switchboard's holistic view instead of rules of thumb.

   Run with: dune exec examples/capacity_planning.exe *)

module Model = Sb_core.Model
module Routing = Sb_core.Routing

let () =
  let rng = Sb_util.Rng.create 42 in
  let topo = Sb_net.Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
  let m =
    Sb_core.Workload.synthesize ~rng topo
      { Sb_core.Workload.default with Sb_core.Workload.num_chains = 16; coverage = 0.25 }
  in
  Format.printf "scenario: %d sites, %d chains, demand %.1f units@.@."
    (Model.num_sites m) (Model.num_chains m) (Model.total_demand m);

  (* 1. Cloud capacity planning: the operator has 200 units of compute to
     deploy. Where should it go? *)
  (match
     ( Sb_core.Capacity.uniform m ~budget:200.,
       Sb_core.Capacity.optimize m ~budget:200. )
   with
  | Ok uni, Ok opt ->
    Format.printf "cloud planning with a budget of 200 compute units:@.";
    Format.printf "  spread uniformly:       supports %.2fx today's demand@."
      uni.Sb_core.Capacity.alpha;
    Format.printf "  Switchboard placement:  supports %.2fx (+%.0f%%)@."
      opt.Sb_core.Capacity.alpha
      (100. *. ((opt.Sb_core.Capacity.alpha /. uni.Sb_core.Capacity.alpha) -. 1.));
    Format.printf "  the optimizer concentrates capacity at:@.";
    Array.iteri
      (fun s a ->
        if a > 1. then
          Format.printf "    site %d (%s): +%.0f units@." s
            (Sb_net.Topology.node_name topo (Model.site_node m s))
            a)
      opt.Sb_core.Capacity.allocation
  | Error e, _ | _, Error e -> Format.printf "planning failed: %s@." e);

  (* 2. VNF placement hints: each VNF vendor can open two more sites. *)
  let latency model =
    1000.
    *. Routing.propagation_latency (Sb_core.Dp_routing.solve ~rng:(Sb_util.Rng.create 1) model)
  in
  let hinted = Sb_core.Placement.suggest m ~new_sites_per_vnf:2 in
  let random_mean =
    (* A single random draw is noisy; average a few, as an operator
       comparing policies would. *)
    Sb_util.Stats.mean
      (List.map
         (fun seed ->
           latency (Sb_core.Placement.random ~rng:(Sb_util.Rng.create seed) m ~new_sites_per_vnf:2))
         [ 2; 3; 4 ])
  in
  Format.printf "@.VNF placement (2 new sites per VNF):@.";
  Format.printf "  today:                 %.2f ms mean chain latency@." (latency m);
  Format.printf "  random new sites:      %.2f ms (mean of 3 draws)@." random_mean;
  Format.printf "  Switchboard hints:     %.2f ms@." (latency hinted);

  (* 3. On a small slice (few VNFs, few chains) the placement can be solved
     exactly with the Section 4.3 MIP via branch-and-bound. *)
  let rng = Sb_util.Rng.create 42 in
  let small_topo = Sb_net.Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
  let small =
    Sb_core.Workload.synthesize ~rng small_topo
      {
        Sb_core.Workload.default with
        Sb_core.Workload.num_chains = 6;
        num_vnfs = 5;
        coverage = 0.25;
        max_chain_len = 3;
      }
  in
  match Sb_core.Placement.mip small ~new_sites_per_vnf:1 with
  | Some exact ->
    Format.printf
      "@.exact MIP placement on a 5-VNF slice: %.2f ms (was %.2f ms before)@."
      (latency exact) (latency small)
  | None ->
    (* The MIP already warned on stderr (node budget / infeasible); the
       operator still wants a hint, so fall back to the greedy. *)
    let greedy = Sb_core.Placement.suggest small ~new_sites_per_vnf:1 in
    Format.printf
      "@.MIP returned no incumbent; greedy fallback: %.2f ms (was %.2f ms before)@."
      (latency greedy) (latency small)
