(* The Section 2 demo, reproduced on the simulated stack: a webcam behind a
   customer-premise equipment (CPE) box streams video to a laptop on the
   same premises; the customer activates a service chain that detours the
   stream through a face-blurring VNF hosted in a remote cloud.

   Before activation the default chain has no VNFs (CPE forwards camera ->
   laptop directly); after activation every connection traverses the remote
   face-blur instance, and replies return symmetrically.

   Run with: dune exec examples/video_chain.exe *)

module S = Sb_ctrl.System
module T = Sb_ctrl.Types
module E = Sb_sim.Engine
module Fabric = Sb_dataplane.Fabric
module Packet = Sb_dataplane.Packet

let face_blur = 42

let () =
  (* Site 0: the customer premises (CPE). Site 1: a remote public cloud. *)
  let delay a b = if a = b then 0. else 0.025 (* 25 ms each way to the cloud *) in
  let sys = S.create ~num_sites:2 ~delay ~gsb_site:1 ~install_latency:0.08 () in
  S.register_edge sys ~site:0 ~attachment:"webcam-subnet";
  S.register_edge sys ~site:0 ~attachment:"laptop-subnet";
  S.deploy_vnf sys ~vnf:face_blur ~site:1 ~capacity:30. ~instances:1;

  (* Phase 1: the default chain with no VNFs — traffic stays on the CPE. *)
  S.set_route_policy sys (fun spec ~exclude:_ ->
      match spec.T.vnfs with
      | [] -> Some [ { T.element_sites = [| 0; 0 |]; weight = 1.0 } ]
      | [ _ ] -> Some [ { T.element_sites = [| 0; 1; 0 |]; weight = 1.0 } ]
      | _ -> None);
  let default_chain =
    S.request_chain sys
      {
        T.spec_name = "camera-to-laptop (default)";
        ingress_attachment = "webcam-subnet";
        egress_attachment = "laptop-subnet";
        vnfs = [];
        traffic = 1.0;
      }
  in
  E.run (S.engine sys);
  let stream =
    { Packet.src_ip = 0x0A000001; dst_ip = 0x0A000002; proto = 17; src_port = 5004; dst_port = 5004 }
  in
  (match S.probe_chain sys ~chain:default_chain stream with
  | Ok trace ->
    Format.printf "before activation: video visits %d VNFs (raw stream, faces visible)@."
      (List.length (Fabric.vnfs_in_trace (S.fabric sys) trace))
  | Error e -> Format.printf "probe failed: %a@." Fabric.pp_error e);

  (* Phase 2: the customer activates the face-blur chain from the portal. *)
  let t0 = E.now (S.engine sys) in
  let blur_chain =
    S.request_chain sys
      {
        T.spec_name = "camera-to-laptop (face blur)";
        ingress_attachment = "webcam-subnet";
        egress_attachment = "laptop-subnet";
        vnfs = [ face_blur ];
        traffic = 1.0;
      }
  in
  E.run (S.engine sys);
  Format.printf "chain activated through the portal in %.0f ms of control-plane time@."
    (1000. *. (E.now (S.engine sys) -. t0));

  (match S.probe_chain sys ~chain:blur_chain stream with
  | Ok trace ->
    Format.printf "after activation: video traverses VNFs %s (faces blurred)@."
      (String.concat ", "
         (List.map string_of_int (Fabric.vnfs_in_trace (S.fabric sys) trace)));
    (* End-to-end latency: 2 WAN crossings plus processing. *)
    Format.printf "added path latency: ~%.0f ms WAN transit per direction@."
      (1000. *. (delay 0 1 *. 2.))
  | Error e -> Format.printf "probe failed: %a@." Fabric.pp_error e);

  (* Replies from the laptop return through the same instance (symmetric
     return), which the stateful blur function requires. *)
  match
    Fabric.send_reverse (S.fabric sys)
      ~egress:(Option.get (S.site_edge sys 0))
      ~chain_label:blur_chain ~egress_label:0 stream
  with
  | Ok trace ->
    Format.printf "reverse path traverses VNFs %s (symmetric return holds)@."
      (String.concat ", "
         (List.map string_of_int (Fabric.vnfs_in_trace (S.fabric sys) trace)))
  | Error e -> Format.printf "reverse probe failed: %a@." Fabric.pp_error e
