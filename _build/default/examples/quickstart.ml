(* Quickstart: model a small wide-area network, define a service chain, and
   let Global Switchboard's two routing engines place it.

   Run with: dune exec examples/quickstart.exe *)

module Model = Sb_core.Model
module Routing = Sb_core.Routing
module Topology = Sb_net.Topology

let () =
  (* 1. A three-node wide-area network: CPE -- edge cloud -- core cloud. *)
  let topo = Topology.create () in
  let cpe = Topology.add_node topo "cpe" in
  let edge = Topology.add_node topo "edge-cloud" in
  let core = Topology.add_node topo "core-cloud" in
  Topology.add_duplex topo cpe edge ~bandwidth:10. ~delay:0.005;
  Topology.add_duplex topo edge core ~bandwidth:40. ~delay:0.020;

  (* 2. Cloud sites and a VNF catalog. The CPE can host a little compute,
     the edge cloud more, the core cloud plenty. *)
  let b = Model.builder topo in
  let s_cpe = Model.add_site b ~node:cpe ~capacity:4. in
  let s_edge = Model.add_site b ~node:edge ~capacity:40. in
  let s_core = Model.add_site b ~node:core ~capacity:400. in
  let firewall = Model.add_vnf b ~name:"firewall" ~cpu_per_unit:1.0 in
  let ids = Model.add_vnf b ~name:"intrusion-detection" ~cpu_per_unit:3.0 in
  Model.deploy b ~vnf:firewall ~site:s_cpe ~capacity:4.;
  Model.deploy b ~vnf:firewall ~site:s_edge ~capacity:20.;
  Model.deploy b ~vnf:ids ~site:s_edge ~capacity:20.;
  Model.deploy b ~vnf:ids ~site:s_core ~capacity:200.;

  (* 3. A customer chain: CPE traffic through firewall then IDS, out at the
     core cloud (e.g. towards the Internet). 2 units of forward traffic,
     half of it returning. *)
  let chain =
    Model.add_chain b ~name:"secure-internet" ~ingress:cpe ~egress:core
      ~vnfs:[ firewall; ids ] ~fwd:2.0 ~rev:1.0 ()
  in
  let m = Model.finalize b () in

  (* 4. Route with the fast dynamic program (SB-DP)... *)
  let dp = Sb_core.Dp_routing.solve m in
  Format.printf "SB-DP route:@.%a@." (fun ppf r -> Routing.pp_chain ppf r chain) dp;
  Format.printf "  supported load factor: %.2fx current demand@." (Routing.max_alpha dp);
  Format.printf "  mean latency: %.1f ms@.@."
    (1000. *. Routing.mean_latency dp);

  (* ...and with the exact linear program (SB-LP). *)
  (match Sb_core.Lp_routing.solve m Sb_core.Lp_routing.Min_latency with
  | Ok { routing; objective_value; _ } ->
    Format.printf "SB-LP (min-latency) route:@.%a@."
      (fun ppf r -> Routing.pp_chain ppf r chain)
      routing;
    Format.printf "  optimal mean latency: %.1f ms@." (1000. *. objective_value)
  | Error e -> Format.printf "SB-LP failed: %s@." e);

  (* 5. How much more demand could this network take? *)
  match Sb_core.Lp_routing.solve m Sb_core.Lp_routing.Max_throughput with
  | Ok { objective_value; _ } ->
    Format.printf "max supported demand scaling (SB-LP): %.2fx@." objective_value
  | Error e -> Format.printf "throughput LP failed: %s@." e
