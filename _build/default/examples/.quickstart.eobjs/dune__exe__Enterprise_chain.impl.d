examples/enterprise_chain.ml: Array Float Format List Printf Sb_core Sb_net Sb_util
