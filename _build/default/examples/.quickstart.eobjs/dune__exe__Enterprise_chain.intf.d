examples/enterprise_chain.mli:
