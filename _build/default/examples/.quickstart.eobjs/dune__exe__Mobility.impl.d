examples/mobility.ml: Format List Sb_ctrl Sb_dataplane Sb_sim Sb_util String
