examples/video_chain.ml: Format List Option Sb_ctrl Sb_dataplane Sb_sim String
