examples/mobility.mli:
