examples/quickstart.mli:
