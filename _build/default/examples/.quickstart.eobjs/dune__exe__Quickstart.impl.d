examples/quickstart.ml: Format Sb_core Sb_net
