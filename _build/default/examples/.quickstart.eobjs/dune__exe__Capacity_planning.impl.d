examples/capacity_planning.ml: Array Format List Sb_core Sb_net Sb_util
