examples/video_chain.mli:
