(* A multi-site enterprise buys a firewall + NAT chain between two offices,
   with VNFs available at several provider edge clouds. The example
   contrasts the distributed load-balancing baselines with Global
   Switchboard's optimizers on the same deployment — the Section 7.2 story
   at example scale.

   Run with: dune exec examples/enterprise_chain.exe *)

module Model = Sb_core.Model
module Routing = Sb_core.Routing
module Eval = Sb_core.Eval
module Topology = Sb_net.Topology

let () =
  let rng = Sb_util.Rng.create 2024 in
  (* A small ISP backbone: 4 core sites, 1 PoP each. *)
  let topo = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
  let b = Model.builder topo in
  let sites =
    Array.init (Topology.num_nodes topo) (fun node ->
        Model.add_site b ~node ~capacity:30.)
  in
  let firewall = Model.add_vnf b ~name:"firewall" ~cpu_per_unit:1.0 in
  let nat = Model.add_vnf b ~name:"nat" ~cpu_per_unit:0.5 in
  (* The firewall vendor covers the core sites; the NAT only two of them. *)
  Array.iteri
    (fun i s -> if i < 4 then Model.deploy b ~vnf:firewall ~site:s ~capacity:15.)
    sites;
  Model.deploy b ~vnf:nat ~site:sites.(0) ~capacity:15.;
  Model.deploy b ~vnf:nat ~site:sites.(2) ~capacity:15.;
  (* Three offices (PoP nodes 4, 5, 6) pairwise exchanging traffic through
     firewall -> NAT. *)
  let offices = [ (4, 5, 3.0); (5, 6, 2.0); (6, 4, 4.0) ] in
  List.iter
    (fun (src, dst, demand) ->
      ignore
        (Model.add_chain b
           ~name:(Printf.sprintf "office%d->office%d" src dst)
           ~ingress:src ~egress:dst ~vnfs:[ firewall; nat ] ~fwd:demand
           ~rev:(demand /. 2.) ()))
    offices;
  (* A fourth chain uses the multi-endpoint generalization: branch offices
     5 and 6 both upload through the firewall to headquarters (node 4),
     office 5 carrying twice the traffic. *)
  ignore
    (Model.add_chain_endpoints b ~name:"branches->hq"
       ~ingresses:[ (5, 2.); (6, 1.) ]
       ~egresses:[ (4, 1.) ]
       ~vnfs:[ firewall ] ~fwd:2. ~rev:1. ());
  let m = Model.finalize b () in

  Format.printf "%d offices, %d candidate VNF sites, total demand %.1f units@.@."
    (List.length offices) (Model.num_sites m) (Model.total_demand m);

  (* Compare every scheme on supported throughput and latency at 60%% load. *)
  Format.printf "%-14s %12s %14s@." "scheme" "max load" "latency@0.6";
  List.iter
    (fun scheme ->
      let factor = Eval.max_load_factor m scheme in
      let lat = Eval.latency ~load:0.6 m scheme in
      Format.printf "%-14s %11.2fx %11.1f ms@." (Eval.scheme_name scheme) factor
        (if lat = infinity then Float.nan else 1000. *. lat))
    Eval.all_schemes;

  (* Show the globally optimized placement of the heaviest chain. *)
  match Eval.route m Eval.Sb_lp with
  | Ok routing ->
    Format.printf "@.SB-LP placement of the heaviest chain:@.%a@."
      (fun ppf r -> Routing.pp_chain ppf r 2)
      routing
  | Error e -> Format.printf "LP failed: %s@." e
