(* Location-independent service chaining (Section 6): a user's chain
   follows them to a new edge site. A worker uses a firewall chain from the
   office; when they connect from a cafe served by a different edge site,
   the Local Switchboard there pulls the chain's routes off the message
   bus, joins the nearest existing wide-area route, and traffic flows
   within well under a second — the Table 2 scenario.

   Run with: dune exec examples/mobility.exe *)

module S = Sb_ctrl.System
module T = Sb_ctrl.Types
module E = Sb_sim.Engine
module Fabric = Sb_dataplane.Fabric
module Packet = Sb_dataplane.Packet

let firewall = 9

let () =
  (* Sites: 0 = office, 1 = provider edge cloud (hosts the firewall),
     2 = datacenter (egress), 3 = cafe (new edge site). *)
  let delay a b = if a = b then 0. else 0.028 in
  let sys = S.create ~num_sites:4 ~delay ~gsb_site:2 ~install_latency:0.085 () in
  S.register_edge sys ~site:0 ~attachment:"office";
  S.register_edge sys ~site:2 ~attachment:"datacenter";
  S.register_edge sys ~site:3 ~attachment:"cafe";
  S.deploy_vnf sys ~vnf:firewall ~site:1 ~capacity:20. ~instances:2;
  S.set_route_policy sys (fun _spec ~exclude:_ ->
      Some [ { T.element_sites = [| 0; 1; 2 |]; weight = 1.0 } ]);

  let chain =
    S.request_chain sys
      {
        T.spec_name = "remote-work-firewall";
        ingress_attachment = "office";
        egress_attachment = "datacenter";
        vnfs = [ firewall ];
        traffic = 2.0;
      }
  in
  E.run (S.engine sys);
  Format.printf "chain created: office -> firewall@@edge -> datacenter@.";

  let flow = Packet.random_tuple (Sb_util.Rng.create 7) in
  (match S.probe_chain sys ~chain flow with
  | Ok _ -> Format.printf "traffic flows from the office: OK@."
  | Error e -> Format.printf "office probe failed: %a@." Fabric.pp_error e);

  (* The user moves to the cafe. Its edge site is not on the chain route,
     so the first packet triggers the on-demand extension. *)
  let t0 = E.now (S.engine sys) in
  S.add_edge_site sys ~chain ~site:3;
  E.run (S.engine sys);
  Format.printf "@.edge-site extension to the cafe, step by step:@.";
  List.iter
    (fun (ts, msg) -> Format.printf "  %4.0f ms  %s@." (1000. *. (ts -. t0)) msg)
    (S.log_between sys t0 infinity);
  Format.printf "total: %.0f ms (paper Table 2: under 600 ms)@."
    (1000. *. (E.now (S.engine sys) -. t0));

  let cafe_flow = Packet.random_tuple (Sb_util.Rng.create 8) in
  match S.probe_chain sys ~chain ~ingress_site:3 cafe_flow with
  | Ok trace ->
    Format.printf "@.traffic from the cafe traverses VNFs %s: same chain, new location@."
      (String.concat ", "
         (List.map string_of_int (Fabric.vnfs_in_trace (S.fabric sys) trace)))
  | Error e -> Format.printf "cafe probe failed: %a@." Fabric.pp_error e
