module Lru = Sb_cache.Lru
module Sharing = Sb_cache.Sharing

let test_hit_after_insert () =
  let c = Lru.create ~capacity:100 in
  Alcotest.(check bool) "first access misses" true (Lru.access c ~key:1 ~size:10 = `Miss);
  Alcotest.(check bool) "second access hits" true (Lru.access c ~key:1 ~size:10 = `Hit)

let test_eviction_lru_order () =
  let c = Lru.create ~capacity:30 in
  ignore (Lru.access c ~key:1 ~size:10);
  ignore (Lru.access c ~key:2 ~size:10);
  ignore (Lru.access c ~key:3 ~size:10);
  (* Touch 1 so 2 becomes LRU; insert 4, evicting 2. *)
  ignore (Lru.access c ~key:1 ~size:10);
  ignore (Lru.access c ~key:4 ~size:10);
  Alcotest.(check bool) "1 survives" true (Lru.mem c 1);
  Alcotest.(check bool) "2 evicted" false (Lru.mem c 2);
  Alcotest.(check bool) "3 survives" true (Lru.mem c 3);
  Alcotest.(check bool) "4 present" true (Lru.mem c 4)

let test_capacity_respected () =
  let c = Lru.create ~capacity:50 in
  for k = 0 to 99 do
    ignore (Lru.access c ~key:k ~size:7)
  done;
  Alcotest.(check bool) "used within capacity" true (Lru.used_bytes c <= 50);
  Alcotest.(check int) "entry count consistent" (Lru.used_bytes c / 7) (Lru.entry_count c)

let test_oversized_object_not_cached () =
  let c = Lru.create ~capacity:10 in
  Alcotest.(check bool) "miss" true (Lru.access c ~key:1 ~size:100 = `Miss);
  Alcotest.(check bool) "still miss" true (Lru.access c ~key:1 ~size:100 = `Miss);
  Alcotest.(check int) "nothing stored" 0 (Lru.entry_count c)

let test_stats () =
  let c = Lru.create ~capacity:100 in
  ignore (Lru.access c ~key:1 ~size:10);
  ignore (Lru.access c ~key:1 ~size:10);
  ignore (Lru.access c ~key:2 ~size:10);
  Alcotest.(check int) "hits" 1 (Lru.hits c);
  Alcotest.(check int) "misses" 2 (Lru.misses c);
  Alcotest.(check (float 1e-9)) "hit rate" (1. /. 3.) (Lru.hit_rate c);
  Lru.reset_stats c;
  Alcotest.(check (float 1e-9)) "reset" 0. (Lru.hit_rate c)

let test_polymorphic_keys () =
  let c = Lru.create ~capacity:100 in
  ignore (Lru.access c ~key:("tenant1", 5) ~size:10);
  Alcotest.(check bool) "tuple key hit" true (Lru.access c ~key:("tenant1", 5) ~size:10 = `Hit);
  Alcotest.(check bool) "other tenant misses" true
    (Lru.access c ~key:("tenant2", 5) ~size:10 = `Miss)

let test_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create ~capacity:0))

(* Reference-model cross-check: drive random accesses against the LRU and a
   naive list-based model; hit/miss decisions must agree. *)
let test_lru_matches_reference_model () =
  let capacity = 100 in
  let c = Lru.create ~capacity in
  let model = ref [] in (* (key, size), most recent first *)
  let model_used () = List.fold_left (fun a (_, s) -> a + s) 0 !model in
  let rng = Sb_util.Rng.create 13 in
  for _ = 1 to 5000 do
    let key = Sb_util.Rng.int rng 40 in
    let size = 5 + (key mod 7) in
    let model_hit = List.mem_assoc key !model in
    (if model_hit then model := (key, size) :: List.remove_assoc key !model
     else begin
       model := (key, size) :: !model;
       while model_used () > capacity do
         model := List.rev (List.tl (List.rev !model))
       done
     end);
    let got = Lru.access c ~key ~size in
    Alcotest.(check bool)
      (Printf.sprintf "key %d agreement" key)
      model_hit (got = `Hit)
  done

let test_hit_rate_monotone_in_capacity () =
  let rng1 = Sb_util.Rng.create 7 and rng2 = Sb_util.Rng.create 7 in
  let p = { Sharing.default_params with Sharing.requests = 20_000; catalog_size = 50_000 } in
  let small = Sharing.run_shared ~rng:rng1 { p with Sharing.total_cache_bytes = 20_000_000 } in
  let large = Sharing.run_shared ~rng:rng2 { p with Sharing.total_cache_bytes = 200_000_000 } in
  Alcotest.(check bool) "bigger cache, higher hit rate" true
    (large.Sharing.hit_rate > small.Sharing.hit_rate)

let test_shared_beats_siloed () =
  let p = { Sharing.default_params with Sharing.requests = 30_000 } in
  let shared = Sharing.run_shared ~rng:(Sb_util.Rng.create 42) p in
  let siloed = Sharing.run_siloed ~rng:(Sb_util.Rng.create 42) p in
  Alcotest.(check bool) "shared hit rate higher" true
    (shared.Sharing.hit_rate > siloed.Sharing.hit_rate);
  Alcotest.(check bool) "shared download faster" true
    (shared.Sharing.mean_download_time < siloed.Sharing.mean_download_time)

let test_download_time_model () =
  let p = Sharing.default_params in
  let hit = Sharing.download_time p ~hit:true ~size:50_000 in
  let miss = Sharing.download_time p ~hit:false ~size:50_000 in
  Alcotest.(check bool) "miss slower than hit" true (miss > hit);
  Alcotest.(check bool) "miss includes WAN RTT" true (miss -. hit >= p.Sharing.wan_rtt)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"LRU never exceeds capacity" ~count:50
    QCheck.(pair (int_range 10 500) (list_of_size Gen.(1 -- 200) (pair (int_range 0 50) (int_range 1 60))))
    (fun (capacity, accesses) ->
      let c = Lru.create ~capacity in
      List.iter (fun (key, size) -> ignore (Lru.access c ~key ~size)) accesses;
      Lru.used_bytes c <= capacity)

let () =
  Alcotest.run "sb_cache"
    [
      ( "lru",
        [
          Alcotest.test_case "hit after insert" `Quick test_hit_after_insert;
          Alcotest.test_case "LRU eviction order" `Quick test_eviction_lru_order;
          Alcotest.test_case "capacity respected" `Quick test_capacity_respected;
          Alcotest.test_case "oversized not cached" `Quick test_oversized_object_not_cached;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "polymorphic keys" `Quick test_polymorphic_keys;
          Alcotest.test_case "rejects bad capacity" `Quick test_rejects_bad_capacity;
          Alcotest.test_case "matches reference model" `Slow test_lru_matches_reference_model;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "hit rate monotone in capacity" `Slow
            test_hit_rate_monotone_in_capacity;
          Alcotest.test_case "shared beats siloed (Table 3)" `Slow test_shared_beats_siloed;
          Alcotest.test_case "download-time model" `Quick test_download_time_model;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity ]);
    ]
