test/test_util.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Sb_util String
