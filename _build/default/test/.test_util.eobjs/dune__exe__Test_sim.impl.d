test/test_sim.ml: Alcotest Gen List QCheck QCheck_alcotest Sb_sim Sb_util
