test/test_cache.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Sb_cache Sb_util
