test/test_dataplane.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Sb_dataplane Sb_util
