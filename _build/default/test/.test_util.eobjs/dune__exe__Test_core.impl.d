test/test_core.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Sb_core Sb_lp Sb_net Sb_util String
