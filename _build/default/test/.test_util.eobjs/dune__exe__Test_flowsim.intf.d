test/test_flowsim.mli:
