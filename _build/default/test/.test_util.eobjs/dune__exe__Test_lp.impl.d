test/test_lp.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Sb_lp Sb_util
