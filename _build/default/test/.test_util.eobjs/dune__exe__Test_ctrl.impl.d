test/test_ctrl.ml: Alcotest Array Hashtbl List Printf Sb_ctrl Sb_dataplane Sb_music Sb_sim Sb_util String
