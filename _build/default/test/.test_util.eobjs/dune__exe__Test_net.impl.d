test/test_net.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Sb_net Sb_util
