test/test_msgbus.ml: Alcotest Array Printf QCheck QCheck_alcotest Sb_msgbus Sb_sim Sb_util
