test/test_music.ml: Alcotest List Printf QCheck QCheck_alcotest Sb_music Sb_sim Sb_util
