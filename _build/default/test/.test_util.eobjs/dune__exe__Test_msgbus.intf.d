test/test_msgbus.mli:
