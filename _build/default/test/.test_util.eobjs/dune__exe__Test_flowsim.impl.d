test/test_flowsim.ml: Alcotest Array List QCheck QCheck_alcotest Sb_core Sb_flowsim Sb_net Sb_util
