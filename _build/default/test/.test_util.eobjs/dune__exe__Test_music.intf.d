test/test_music.mli:
