module Engine = Sb_sim.Engine

let test_empty_run () =
  let e = Engine.create () in
  Engine.run e;
  Alcotest.(check (float 0.)) "clock stays at 0" 0. (Engine.now e)

let test_fires_in_time_order () =
  let e = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule e ~delay:3. (fun () -> order := 3 :: !order));
  ignore (Engine.schedule e ~delay:1. (fun () -> order := 1 :: !order));
  ignore (Engine.schedule e ~delay:2. (fun () -> order := 2 :: !order));
  Engine.run e;
  Alcotest.(check (list int)) "ascending time" [ 1; 2; 3 ] (List.rev !order)

let test_fifo_for_ties () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:5. (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO among equal times"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !order)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule e ~delay:1.5 (fun () -> seen := Engine.now e :: !seen));
  ignore (Engine.schedule e ~delay:4.0 (fun () -> seen := Engine.now e :: !seen));
  Engine.run e;
  Alcotest.(check (list (float 1e-12))) "clock equals event times" [ 1.5; 4.0 ]
    (List.rev !seen)

let test_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule e ~delay:1. (fun () ->
         fired := ("outer", Engine.now e) :: !fired;
         ignore
           (Engine.schedule e ~delay:2. (fun () ->
                fired := ("inner", Engine.now e) :: !fired))));
  Engine.run e;
  match List.rev !fired with
  | [ ("outer", t1); ("inner", t2) ] ->
    Alcotest.(check (float 1e-12)) "outer at 1" 1. t1;
    Alcotest.(check (float 1e-12)) "inner at 3" 3. t2
  | _ -> Alcotest.fail "expected two events"

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Engine.cancel e id;
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_cancel_twice_is_noop () =
  let e = Engine.create () in
  let id = Engine.schedule e ~delay:1. (fun () -> ()) in
  Engine.cancel e id;
  Engine.cancel e id;
  Alcotest.(check int) "no pending" 0 (Engine.pending e);
  Engine.run e

let test_cancel_one_of_many () =
  let e = Engine.create () in
  let count = ref 0 in
  let _a = Engine.schedule e ~delay:1. (fun () -> incr count) in
  let b = Engine.schedule e ~delay:1. (fun () -> incr count) in
  let _c = Engine.schedule e ~delay:1. (fun () -> incr count) in
  Engine.cancel e b;
  Engine.run e;
  Alcotest.(check int) "two fire" 2 !count

let test_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~delay:1. (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule e ~delay:5. (fun () -> fired := 5 :: !fired));
  Engine.run_until e 3.;
  Alcotest.(check (list int)) "only early events" [ 1 ] (List.rev !fired);
  Alcotest.(check (float 1e-12)) "clock at horizon" 3. (Engine.now e);
  Alcotest.(check int) "late event pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "late event eventually fires" [ 1; 5 ] (List.rev !fired)

let test_schedule_at () =
  let e = Engine.create () in
  let t = ref 0. in
  ignore (Engine.schedule_at e ~time:2.5 (fun () -> t := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-12)) "absolute time" 2.5 !t

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1. (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:0.5 (fun () -> ())))

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule e ~delay:(-1.) (fun () -> ())))

let test_pending_count () =
  let e = Engine.create () in
  Alcotest.(check int) "empty" 0 (Engine.pending e);
  let _ = Engine.schedule e ~delay:1. (fun () -> ()) in
  let _ = Engine.schedule e ~delay:2. (fun () -> ()) in
  Alcotest.(check int) "two pending" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let test_many_events_stress () =
  let e = Engine.create () in
  let rng = Sb_util.Rng.create 99 in
  let n = 20_000 in
  let count = ref 0 in
  let last = ref (-1.) in
  for _ = 1 to n do
    let d = Sb_util.Rng.float rng 100. in
    ignore
      (Engine.schedule e ~delay:d (fun () ->
           incr count;
           Alcotest.(check bool) "non-decreasing clock" true (Engine.now e >= !last);
           last := Engine.now e))
  done;
  Engine.run e;
  Alcotest.(check int) "all fired" n !count

let test_zero_delay () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~delay:0. (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "zero-delay fires" true !fired

let prop_event_order =
  QCheck.Test.make ~name:"events fire sorted by time" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1000.))
    (fun delays ->
      let e = Engine.create () in
      let times = ref [] in
      List.iter
        (fun d -> ignore (Engine.schedule e ~delay:d (fun () -> times := Engine.now e :: !times)))
        delays;
      Engine.run e;
      let fired = List.rev !times in
      fired = List.sort compare fired && List.length fired = List.length delays)

let () =
  Alcotest.run "sb_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "time order" `Quick test_fires_in_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_fifo_for_ties;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel twice" `Quick test_cancel_twice_is_noop;
          Alcotest.test_case "cancel one of many" `Quick test_cancel_one_of_many;
          Alcotest.test_case "run_until" `Quick test_run_until;
          Alcotest.test_case "schedule_at" `Quick test_schedule_at;
          Alcotest.test_case "past rejected" `Quick test_schedule_in_past_rejected;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
          Alcotest.test_case "pending count" `Quick test_pending_count;
          Alcotest.test_case "stress 20k events" `Slow test_many_events_stress;
          Alcotest.test_case "zero delay" `Quick test_zero_delay;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_event_order ]);
    ]
