module Maxmin = Sb_flowsim.Maxmin

let solve_simple () =
  (* One link of capacity 9 shared by 3 flows -> 3 each. *)
  let t = Maxmin.create () in
  let r = Maxmin.add_resource t ~capacity:9. in
  let f1 = Maxmin.add_flow t [ r ] in
  let f2 = Maxmin.add_flow t [ r ] in
  let f3 = Maxmin.add_flow t [ r ] in
  let rates = Maxmin.solve t in
  (rates, f1, f2, f3)

let test_equal_share () =
  let rates, f1, f2, f3 = solve_simple () in
  List.iter
    (fun f -> Alcotest.(check (float 1e-9)) "fair share" 3. rates.(f))
    [ f1; f2; f3 ]

let test_demand_cap_redistributes () =
  (* Capacity 9, one flow capped at 1 -> others get 4 each. *)
  let t = Maxmin.create () in
  let r = Maxmin.add_resource t ~capacity:9. in
  let f1 = Maxmin.add_flow t ~demand:1. [ r ] in
  let f2 = Maxmin.add_flow t [ r ] in
  let f3 = Maxmin.add_flow t [ r ] in
  let rates = Maxmin.solve t in
  Alcotest.(check (float 1e-9)) "capped" 1. rates.(f1);
  Alcotest.(check (float 1e-9)) "f2 grows" 4. rates.(f2);
  Alcotest.(check (float 1e-9)) "f3 grows" 4. rates.(f3)

let test_two_bottlenecks () =
  (* Classic: link A cap 1 (flows 1,3), link B cap 2 (flows 2,3).
     Max-min: f1 = f3 = 0.5, f2 = 1.5. *)
  let t = Maxmin.create () in
  let a = Maxmin.add_resource t ~capacity:1. in
  let b = Maxmin.add_resource t ~capacity:2. in
  let f1 = Maxmin.add_flow t [ a ] in
  let f2 = Maxmin.add_flow t [ b ] in
  let f3 = Maxmin.add_flow t [ a; b ] in
  let rates = Maxmin.solve t in
  Alcotest.(check (float 1e-9)) "f1" 0.5 rates.(f1);
  Alcotest.(check (float 1e-9)) "f2" 1.5 rates.(f2);
  Alcotest.(check (float 1e-9)) "f3" 0.5 rates.(f3)

let test_no_resources_unbounded_demand () =
  let t = Maxmin.create () in
  let f = Maxmin.add_flow t ~demand:7. [] in
  let rates = Maxmin.solve t in
  Alcotest.(check (float 1e-9)) "meets demand" 7. rates.(f)

let test_utilization () =
  let t = Maxmin.create () in
  let r = Maxmin.add_resource t ~capacity:10. in
  let _ = Maxmin.add_flow t ~demand:4. [ r ] in
  let rates = Maxmin.solve t in
  Alcotest.(check (float 1e-9)) "40%" 0.4 (Maxmin.resource_utilization t rates r)

let test_rejects_bad_resource () =
  let t = Maxmin.create () in
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Maxmin.add_resource: non-positive capacity") (fun () ->
      ignore (Maxmin.add_resource t ~capacity:0.));
  Alcotest.check_raises "unknown resource"
    (Invalid_argument "Maxmin.add_flow: unknown resource") (fun () ->
      ignore (Maxmin.add_flow t [ 3 ]))

(* Property: no resource oversubscribed; allocation is max-min (no flow can
   grow without shrinking a slower-or-equal flow: verified via bottleneck
   condition: every unfrozen... simplified: every flow either meets demand
   or crosses a saturated resource). *)
let prop_maxmin_valid =
  QCheck.Test.make ~name:"max-min allocation validity" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let t = Maxmin.create () in
      let nres = 1 + Sb_util.Rng.int rng 6 in
      let caps = Array.init nres (fun _ -> Sb_util.Rng.uniform_in rng 1. 20.) in
      let res = Array.map (fun c -> Maxmin.add_resource t ~capacity:c) caps in
      let nflows = 1 + Sb_util.Rng.int rng 10 in
      let flows =
        Array.init nflows (fun _ ->
            let k = 1 + Sb_util.Rng.int rng nres in
            let rs = Sb_util.Rng.sample_without_replacement rng k nres in
            let demand =
              if Sb_util.Rng.bool rng then Sb_util.Rng.uniform_in rng 0.5 10. else infinity
            in
            let rs = List.map (fun i -> res.(i)) rs in
            (Maxmin.add_flow t ~demand rs, rs, demand))
      in
      let rates = Maxmin.solve t in
      (* 1. capacities respected *)
      let caps_ok =
        Array.for_all
          (fun r -> Maxmin.resource_utilization t rates r <= 1. +. 1e-6)
          res
      in
      (* 2. each flow meets demand or crosses a saturated resource *)
      let bottleneck_ok =
        Array.for_all
          (fun (f, rs, demand) ->
            rates.(f) >= demand -. 1e-6
            || List.exists
                 (fun r -> Maxmin.resource_utilization t rates r >= 1. -. 1e-6)
                 rs)
          flows
      in
      caps_ok && bottleneck_ok)

(* ------------------------- e2e evaluation -------------------------- *)

module Model = Sb_core.Model
module Routing = Sb_core.Routing
module Topology = Sb_net.Topology

(* Two sites, one firewall VNF, one chain. *)
let two_site_model () =
  let topo = Topology.line ~delays:[ 0.040 ] ~bandwidth:100. in
  let b = Model.builder topo in
  let sa = Model.add_site b ~node:0 ~capacity:10. in
  let sb = Model.add_site b ~node:1 ~capacity:10. in
  let fw = Model.add_vnf b ~name:"fw" ~cpu_per_unit:1. in
  Model.deploy b ~vnf:fw ~site:sa ~capacity:10.;
  Model.deploy b ~vnf:fw ~site:sb ~capacity:10.;
  let _c = Model.add_chain b ~ingress:0 ~egress:1 ~vnfs:[ fw ] ~fwd:4. () in
  Model.finalize b ()

let test_e2e_throughput_bounded () =
  let m = two_site_model () in
  let r = Sb_core.Greedy.anycast m in
  let result = Sb_flowsim.E2e.evaluate r in
  (* Firewall at site A caps rate at m_sf / (2 l_f) = 5. *)
  Alcotest.(check bool) "throughput within VNF capacity" true
    (result.Sb_flowsim.E2e.total_throughput <= 5. +. 1e-6);
  Alcotest.(check bool) "throughput positive" true
    (result.Sb_flowsim.E2e.total_throughput > 0.)

let test_e2e_rtt_includes_propagation () =
  let m = two_site_model () in
  let r = Sb_core.Greedy.anycast m in
  let result = Sb_flowsim.E2e.evaluate r in
  (* One WAN crossing of 40 ms -> RTT at least 80 ms. *)
  Alcotest.(check bool) "rtt >= 2x prop" true (result.Sb_flowsim.E2e.mean_rtt >= 0.080)

let test_e2e_per_chain_consistent () =
  let m = two_site_model () in
  let r = Sb_core.Greedy.anycast m in
  let result = Sb_flowsim.E2e.evaluate r in
  let sum = List.fold_left (fun acc (t, _) -> acc +. t) 0. result.Sb_flowsim.E2e.per_chain in
  Alcotest.(check (float 1e-6)) "per-chain sums to total"
    result.Sb_flowsim.E2e.total_throughput sum

let test_e2e_window_cap () =
  let m = two_site_model () in
  let r = Sb_core.Greedy.anycast m in
  let tight = Sb_flowsim.E2e.evaluate ~window_rtt_cap:0.001 r in
  let loose = Sb_flowsim.E2e.evaluate ~window_rtt_cap:100. r in
  Alcotest.(check bool) "window cap limits throughput" true
    (tight.Sb_flowsim.E2e.total_throughput < loose.Sb_flowsim.E2e.total_throughput)

let () =
  Alcotest.run "sb_flowsim"
    [
      ( "maxmin",
        [
          Alcotest.test_case "equal share" `Quick test_equal_share;
          Alcotest.test_case "demand cap redistributes" `Quick test_demand_cap_redistributes;
          Alcotest.test_case "two bottlenecks" `Quick test_two_bottlenecks;
          Alcotest.test_case "unconstrained demand" `Quick test_no_resources_unbounded_demand;
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "rejects bad inputs" `Quick test_rejects_bad_resource;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "throughput bounded" `Quick test_e2e_throughput_bounded;
          Alcotest.test_case "rtt includes propagation" `Quick test_e2e_rtt_includes_propagation;
          Alcotest.test_case "per-chain consistent" `Quick test_e2e_per_chain_consistent;
          Alcotest.test_case "window cap" `Quick test_e2e_window_cap;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_maxmin_valid ]);
    ]
