module Lp = Sb_lp.Lp
module Mip = Sb_lp.Mip

let solve_opt p =
  match Lp.solve p with
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"

let check_obj = Alcotest.(check (float 1e-6))
let check_val = Alcotest.(check (float 1e-6))

(* ---------------------- textbook instances ----------------------- *)

let test_maximize_basic () =
  (* max 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2, 6) *)
  let p = Lp.create () in
  let x = Lp.add_var p "x" and y = Lp.add_var p "y" in
  Lp.add_constraint p [ (1., x) ] Lp.Le 4.;
  Lp.add_constraint p [ (2., y) ] Lp.Le 12.;
  Lp.add_constraint p [ (3., x); (2., y) ] Lp.Le 18.;
  Lp.set_objective p Lp.Maximize [ (3., x); (5., y) ];
  let s = solve_opt p in
  check_obj "objective" 36. (Lp.objective_value s);
  check_val "x" 2. (Lp.value s x);
  check_val "y" 6. (Lp.value s y)

let test_minimize_with_ge_and_eq () =
  (* min a + b; a + b >= 3; a - b = 1 -> 3 at (2, 1) *)
  let p = Lp.create () in
  let a = Lp.add_var p "a" and b = Lp.add_var p "b" in
  Lp.add_constraint p [ (1., a); (1., b) ] Lp.Ge 3.;
  Lp.add_constraint p [ (1., a); (-1., b) ] Lp.Eq 1.;
  Lp.set_objective p Lp.Minimize [ (1., a); (1., b) ];
  let s = solve_opt p in
  check_obj "objective" 3. (Lp.objective_value s);
  check_val "a" 2. (Lp.value s a);
  check_val "b" 1. (Lp.value s b)

let test_infeasible () =
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  Lp.add_constraint p [ (1., x) ] Lp.Le 1.;
  Lp.add_constraint p [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective p Lp.Minimize [ (1., x) ];
  match Lp.solve p with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  Lp.set_objective p Lp.Maximize [ (1., x) ];
  match Lp.solve p with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_degenerate_trivial () =
  (* No constraints, minimize x -> 0 at lower bound. *)
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  Lp.set_objective p Lp.Minimize [ (1., x) ];
  let s = solve_opt p in
  check_obj "objective" 0. (Lp.objective_value s)

let test_variable_upper_bound () =
  let p = Lp.create () in
  let x = Lp.add_var p ~ub:2.5 "x" in
  Lp.set_objective p Lp.Maximize [ (1., x) ];
  let s = solve_opt p in
  check_obj "hits ub" 2.5 (Lp.objective_value s)

let test_variable_lower_bound_shift () =
  (* lb = 3: min x subject to nothing -> 3 *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:3. "x" in
  Lp.set_objective p Lp.Minimize [ (1., x) ];
  let s = solve_opt p in
  check_obj "sits at lb" 3. (Lp.objective_value s);
  check_val "x value" 3. (Lp.value s x)

let test_free_variable () =
  (* Free variable can go negative: min x s.t. x >= -5 via constraint. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:neg_infinity "x" in
  Lp.add_constraint p [ (1., x) ] Lp.Ge (-5.);
  Lp.set_objective p Lp.Minimize [ (1., x) ];
  let s = solve_opt p in
  check_obj "objective" (-5.) (Lp.objective_value s);
  check_val "x" (-5.) (Lp.value s x)

let test_free_variable_with_ub () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:neg_infinity ~ub:7. "x" in
  Lp.set_objective p Lp.Maximize [ (1., x) ];
  let s = solve_opt p in
  check_obj "hits ub" 7. (Lp.objective_value s)

let test_negative_rhs_row () =
  (* x - y <= -2 with min x + y -> x=0, y=2. *)
  let p = Lp.create () in
  let x = Lp.add_var p "x" and y = Lp.add_var p "y" in
  Lp.add_constraint p [ (1., x); (-1., y) ] Lp.Le (-2.);
  Lp.set_objective p Lp.Minimize [ (1., x); (1., y) ];
  let s = solve_opt p in
  check_obj "objective" 2. (Lp.objective_value s)

let test_duplicate_terms_summed () =
  (* 2x expressed as x + x. max (x+x) s.t. x + x <= 10 -> x = 5, obj 10. *)
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  Lp.add_constraint p [ (1., x); (1., x) ] Lp.Le 10.;
  Lp.set_objective p Lp.Maximize [ (1., x); (1., x) ];
  let s = solve_opt p in
  check_obj "objective" 10. (Lp.objective_value s);
  check_val "x" 5. (Lp.value s x)

let test_redundant_equalities () =
  (* Two identical equalities must not break phase 1 (dependent rows). *)
  let p = Lp.create () in
  let x = Lp.add_var p "x" and y = Lp.add_var p "y" in
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Eq 4.;
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Eq 4.;
  Lp.set_objective p Lp.Minimize [ (1., x) ];
  let s = solve_opt p in
  check_obj "objective" 0. (Lp.objective_value s);
  check_val "y" 4. (Lp.value s y)

let test_transportation_problem () =
  (* 2 supplies (10, 20), 2 demands (15, 15), costs [[1 4][2 1]].
     Optimal: s0->d0 10, s1->d0 5, s1->d1 15 -> 10 + 10 + 15 = 35. *)
  let p = Lp.create () in
  let x = Array.init 2 (fun i -> Array.init 2 (fun j -> Lp.add_var p (Printf.sprintf "x%d%d" i j))) in
  Lp.add_constraint p [ (1., x.(0).(0)); (1., x.(0).(1)) ] Lp.Le 10.;
  Lp.add_constraint p [ (1., x.(1).(0)); (1., x.(1).(1)) ] Lp.Le 20.;
  Lp.add_constraint p [ (1., x.(0).(0)); (1., x.(1).(0)) ] Lp.Eq 15.;
  Lp.add_constraint p [ (1., x.(0).(1)); (1., x.(1).(1)) ] Lp.Eq 15.;
  Lp.set_objective p Lp.Minimize
    [ (1., x.(0).(0)); (4., x.(0).(1)); (2., x.(1).(0)); (1., x.(1).(1)) ];
  let s = solve_opt p in
  check_obj "transportation optimum" 35. (Lp.objective_value s)

let test_larger_random_feasibility () =
  (* A bigger random-ish LP: verify the optimum respects all constraints. *)
  let rng = Sb_util.Rng.create 31 in
  let p = Lp.create () in
  let n = 30 and m = 20 in
  let vars = Array.init n (fun i -> Lp.add_var p (Printf.sprintf "v%d" i)) in
  let rows =
    Array.init m (fun _ ->
        let terms =
          Array.to_list vars
          |> List.filter_map (fun v ->
                 if Sb_util.Rng.float rng 1. < 0.3 then
                   Some (Sb_util.Rng.uniform_in rng 0.1 2.0, v)
                 else None)
        in
        let rhs = Sb_util.Rng.uniform_in rng 5. 50. in
        (terms, rhs))
  in
  Array.iter (fun (terms, rhs) -> if terms <> [] then Lp.add_constraint p terms Lp.Le rhs) rows;
  Lp.set_objective p Lp.Maximize (Array.to_list (Array.map (fun v -> (1., v)) vars));
  match Lp.solve p with
  | Lp.Optimal s ->
    Array.iter
      (fun (terms, rhs) ->
        let lhs = List.fold_left (fun acc (c, v) -> acc +. (c *. Lp.value s v)) 0. terms in
        Alcotest.(check bool) "constraint satisfied" true (lhs <= rhs +. 1e-6))
      rows;
    Array.iter
      (fun v -> Alcotest.(check bool) "non-negative" true (Lp.value s v >= -1e-9))
      vars
  | Lp.Unbounded ->
    (* Possible if some variable appears in no constraint. *)
    ()
  | Lp.Infeasible -> Alcotest.fail "all-Le problem with positive rhs is feasible"

(* Brute-force cross-check on tiny random 2-var LPs: compare simplex with a
   fine grid search. *)
let test_grid_crosscheck () =
  let rng = Sb_util.Rng.create 77 in
  for _ = 1 to 25 do
    let a1 = Sb_util.Rng.uniform_in rng 0.2 2. and b1 = Sb_util.Rng.uniform_in rng 0.2 2. in
    let a2 = Sb_util.Rng.uniform_in rng 0.2 2. and b2 = Sb_util.Rng.uniform_in rng 0.2 2. in
    let r1 = Sb_util.Rng.uniform_in rng 1. 10. and r2 = Sb_util.Rng.uniform_in rng 1. 10. in
    let c1 = Sb_util.Rng.uniform_in rng 0.1 3. and c2 = Sb_util.Rng.uniform_in rng 0.1 3. in
    let p = Lp.create () in
    let x = Lp.add_var p "x" and y = Lp.add_var p "y" in
    Lp.add_constraint p [ (a1, x); (b1, y) ] Lp.Le r1;
    Lp.add_constraint p [ (a2, x); (b2, y) ] Lp.Le r2;
    Lp.set_objective p Lp.Maximize [ (c1, x); (c2, y) ];
    let s = solve_opt p in
    (* Grid search over the feasible box. *)
    let best = ref 0. in
    let steps = 400 in
    let xmax = Float.min (r1 /. a1) (r2 /. a2) in
    let ymax = Float.min (r1 /. b1) (r2 /. b2) in
    for i = 0 to steps do
      for j = 0 to steps do
        let xv = float_of_int i /. float_of_int steps *. xmax in
        let yv = float_of_int j /. float_of_int steps *. ymax in
        if (a1 *. xv) +. (b1 *. yv) <= r1 && (a2 *. xv) +. (b2 *. yv) <= r2 then begin
          let obj = (c1 *. xv) +. (c2 *. yv) in
          if obj > !best then best := obj
        end
      done
    done;
    Alcotest.(check bool) "simplex >= grid - eps" true
      (Lp.objective_value s >= !best -. 0.05);
    Alcotest.(check bool) "simplex optimal within grid resolution" true
      (Lp.objective_value s <= !best +. (0.05 *. Float.max 1. !best))
  done


let test_beale_cycling_example () =
  (* Beale's classic degenerate LP, which cycles under naive Dantzig
     pivoting: min -0.75x4 + 150x5 - 0.02x6 + 6x7 subject to
     0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
     0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
     x6 <= 1.  Optimum -0.05. *)
  let p = Lp.create () in
  let x4 = Lp.add_var p "x4" and x5 = Lp.add_var p "x5" in
  let x6 = Lp.add_var p "x6" and x7 = Lp.add_var p "x7" in
  Lp.add_constraint p [ (0.25, x4); (-60., x5); (-0.04, x6); (9., x7) ] Lp.Le 0.;
  Lp.add_constraint p [ (0.5, x4); (-90., x5); (-0.02, x6); (3., x7) ] Lp.Le 0.;
  Lp.add_constraint p [ (1., x6) ] Lp.Le 1.;
  Lp.set_objective p Lp.Minimize
    [ (-0.75, x4); (150., x5); (-0.02, x6); (6., x7) ];
  let s = solve_opt p in
  check_obj "Beale optimum" (-0.05) (Lp.objective_value s)

let test_highly_degenerate () =
  (* Many redundant constraints through the origin. *)
  let p = Lp.create () in
  let x = Lp.add_var p "x" and y = Lp.add_var p "y" in
  for _ = 1 to 10 do
    Lp.add_constraint p [ (1., x); (-1., y) ] Lp.Le 0.;
    Lp.add_constraint p [ (-1., x); (1., y) ] Lp.Le 0.
  done;
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.set_objective p Lp.Maximize [ (1., x); (2., y) ];
  let s = solve_opt p in
  (* x = y forced; x + y <= 4 -> x = y = 2, objective 6. *)
  check_obj "degenerate optimum" 6. (Lp.objective_value s)

let test_equality_only_system () =
  (* Pure equality system with a unique solution: x=1, y=2. *)
  let p = Lp.create () in
  let x = Lp.add_var p "x" and y = Lp.add_var p "y" in
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Eq 3.;
  Lp.add_constraint p [ (2., x); (1., y) ] Lp.Eq 4.;
  Lp.set_objective p Lp.Minimize [ (1., x) ];
  let s = solve_opt p in
  check_val "x" 1. (Lp.value s x);
  check_val "y" 2. (Lp.value s y)

(* ------------------------------ MIP ------------------------------ *)

let test_mip_basic () =
  (* max x + y; 2x + 3y <= 12; x <= 4; integers -> 5 (e.g. 4 + 1). *)
  let p = Lp.create () in
  let x = Lp.add_var p ~integer:true "x" in
  let y = Lp.add_var p ~integer:true "y" in
  Lp.add_constraint p [ (2., x); (3., y) ] Lp.Le 12.;
  Lp.add_constraint p [ (1., x) ] Lp.Le 4.;
  Lp.set_objective p Lp.Maximize [ (1., x); (1., y) ];
  match Mip.solve p with
  | Mip.Optimal s ->
    check_obj "objective" 5. (Lp.objective_value s);
    Alcotest.(check bool) "x integral" true
      (Float.abs (Lp.value s x -. Float.round (Lp.value s x)) < 1e-6)
  | _ -> Alcotest.fail "expected optimal"

let test_mip_knapsack () =
  (* Knapsack: values 60,100,120; weights 10,20,30; cap 50 -> 220. *)
  let p = Lp.create () in
  let items = [| (60., 10.); (100., 20.); (120., 30.) |] in
  let vars =
    Array.mapi (fun i _ -> Lp.add_var p ~ub:1. ~integer:true (Printf.sprintf "i%d" i)) items
  in
  Lp.add_constraint p
    (Array.to_list (Array.mapi (fun i v -> (snd items.(i), v)) vars))
    Lp.Le 50.;
  Lp.set_objective p Lp.Maximize
    (Array.to_list (Array.mapi (fun i v -> (fst items.(i), v)) vars));
  match Mip.solve p with
  | Mip.Optimal s -> check_obj "knapsack optimum" 220. (Lp.objective_value s)
  | _ -> Alcotest.fail "expected optimal"

let test_mip_infeasible () =
  let p = Lp.create () in
  let x = Lp.add_var p ~integer:true "x" in
  Lp.add_constraint p [ (1., x) ] Lp.Le 1.;
  Lp.add_constraint p [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective p Lp.Minimize [ (1., x) ];
  match Mip.solve p with
  | Mip.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_mip_fractional_gap () =
  (* LP relaxation is fractional: x + y <= 1.5, max x + y integral -> 1. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~ub:1. ~integer:true "x" in
  let y = Lp.add_var p ~ub:1. ~integer:true "y" in
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Le 1.5;
  Lp.set_objective p Lp.Maximize [ (1., x); (1., y) ];
  match Mip.solve p with
  | Mip.Optimal s -> check_obj "integral optimum" 1. (Lp.objective_value s)
  | _ -> Alcotest.fail "expected optimal"

let test_mip_minimize () =
  (* min 3x + 2y s.t. x + y >= 2.5, integer -> x=0,y=3 cost 6 or x=1,y=2
     cost 7; optimum 6. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~integer:true "x" in
  let y = Lp.add_var p ~integer:true "y" in
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Ge 2.5;
  Lp.set_objective p Lp.Minimize [ (3., x); (2., y) ];
  match Mip.solve p with
  | Mip.Optimal s -> check_obj "objective" 6. (Lp.objective_value s)
  | _ -> Alcotest.fail "expected optimal"

let test_mip_mixed_integer () =
  (* x integer, y continuous: max x + y; x + y <= 3.7; x <= 2.2 ->
     x = 2, y = 1.7. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~integer:true "x" in
  let y = Lp.add_var p "y" in
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Le 3.7;
  Lp.add_constraint p [ (1., x) ] Lp.Le 2.2;
  Lp.set_objective p Lp.Maximize [ (1., x); (1., y) ];
  match Mip.solve p with
  | Mip.Optimal s ->
    check_obj "objective" 3.7 (Lp.objective_value s);
    check_val "x integral part" 2. (Lp.value s x)
  | _ -> Alcotest.fail "expected optimal"

(* --------------------------- properties ---------------------------- *)

(* Random small LPs: the solver never reports Optimal with a violated
   constraint, and maximization objectives never exceed an obvious bound. *)
let prop_optimal_is_feasible =
  QCheck.Test.make ~name:"optimal solutions are feasible" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let n = 2 + Sb_util.Rng.int rng 6 in
      let m = 1 + Sb_util.Rng.int rng 6 in
      let p = Lp.create () in
      let vars = Array.init n (fun i -> Lp.add_var p (Printf.sprintf "v%d" i)) in
      let rows = ref [] in
      for _ = 1 to m do
        let terms =
          Array.to_list vars
          |> List.filter_map (fun v ->
                 if Sb_util.Rng.bool rng then Some (Sb_util.Rng.uniform_in rng 0.1 3., v)
                 else None)
        in
        if terms <> [] then begin
          let rhs = Sb_util.Rng.uniform_in rng 1. 20. in
          Lp.add_constraint p terms Lp.Le rhs;
          rows := (terms, rhs) :: !rows
        end
      done;
      Lp.set_objective p Lp.Maximize
        (Array.to_list (Array.map (fun v -> (Sb_util.Rng.uniform_in rng 0.1 2., v)) vars));
      match Lp.solve p with
      | Lp.Optimal s ->
        List.for_all
          (fun (terms, rhs) ->
            List.fold_left (fun acc (c, v) -> acc +. (c *. Lp.value s v)) 0. terms
            <= rhs +. 1e-6)
          !rows
        && Array.for_all (fun v -> Lp.value s v >= -1e-9) vars
      | Lp.Unbounded -> true (* some var in no row *)
      | Lp.Infeasible -> false (* impossible for Le-only with rhs > 0 *))

let prop_mip_at_most_lp =
  QCheck.Test.make ~name:"MIP optimum <= LP relaxation (maximize)" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let build () =
        let p = Lp.create () in
        let n = 2 + Sb_util.Rng.int rng 3 in
        let vars =
          Array.init n (fun i ->
              Lp.add_var p ~ub:10. ~integer:true (Printf.sprintf "v%d" i))
        in
        let terms = Array.to_list (Array.map (fun v -> (Sb_util.Rng.uniform_in rng 0.5 2., v)) vars) in
        Lp.add_constraint p terms Lp.Le (Sb_util.Rng.uniform_in rng 3. 15.);
        Lp.set_objective p Lp.Maximize
          (Array.to_list (Array.map (fun v -> (Sb_util.Rng.uniform_in rng 0.5 2., v)) vars));
        p
      in
      let rng_copy = Sb_util.Rng.copy rng in
      ignore rng_copy;
      let p = build () in
      match (Mip.solve p, Lp.solve p) with
      | Mip.Optimal mi, Lp.Optimal lp ->
        Lp.objective_value mi <= Lp.objective_value lp +. 1e-6
      | _ -> true)

let () =
  Alcotest.run "sb_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "maximize basic" `Quick test_maximize_basic;
          Alcotest.test_case "ge and eq" `Quick test_minimize_with_ge_and_eq;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "trivial" `Quick test_degenerate_trivial;
          Alcotest.test_case "upper bound" `Quick test_variable_upper_bound;
          Alcotest.test_case "lower bound shift" `Quick test_variable_lower_bound_shift;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "free with ub" `Quick test_free_variable_with_ub;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs_row;
          Alcotest.test_case "duplicate terms" `Quick test_duplicate_terms_summed;
          Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
          Alcotest.test_case "transportation" `Quick test_transportation_problem;
          Alcotest.test_case "random feasibility" `Quick test_larger_random_feasibility;
          Alcotest.test_case "grid cross-check" `Slow test_grid_crosscheck;
          Alcotest.test_case "Beale cycling example" `Quick test_beale_cycling_example;
          Alcotest.test_case "highly degenerate" `Quick test_highly_degenerate;
          Alcotest.test_case "equality-only system" `Quick test_equality_only_system;
        ] );
      ( "mip",
        [
          Alcotest.test_case "basic" `Quick test_mip_basic;
          Alcotest.test_case "knapsack" `Quick test_mip_knapsack;
          Alcotest.test_case "infeasible" `Quick test_mip_infeasible;
          Alcotest.test_case "fractional gap" `Quick test_mip_fractional_gap;
          Alcotest.test_case "minimize" `Quick test_mip_minimize;
          Alcotest.test_case "mixed integer" `Quick test_mip_mixed_integer;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_optimal_is_feasible;
          QCheck_alcotest.to_alcotest prop_mip_at_most_lp;
        ] );
    ]
