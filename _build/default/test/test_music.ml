module Store = Sb_music.Store
module Engine = Sb_sim.Engine

let delay20 a b = if a = b then 0. else 0.020

let make ?(replicas = [ 1; 2; 3 ]) () =
  let eng = Engine.create () in
  let store = Store.create eng ~replica_sites:replicas ~delay:delay20 in
  (eng, store)

let test_quorum_size () =
  let _, s3 = make () in
  Alcotest.(check int) "3 replicas" 3 (Store.num_replicas s3);
  Alcotest.(check int) "quorum of 3" 2 (Store.quorum s3);
  let _, s5 = make ~replicas:[ 1; 2; 3; 4; 5 ] () in
  Alcotest.(check int) "quorum of 5" 3 (Store.quorum s5)

let test_put_get_roundtrip () =
  let eng, store = make () in
  let acked = ref false and got = ref None in
  Store.put store ~from:0 ~key:"k" 42 (fun ok -> acked := ok);
  Engine.run eng;
  Alcotest.(check bool) "write acked" true !acked;
  Store.get store ~from:0 ~key:"k" (fun v -> got := v);
  Engine.run eng;
  Alcotest.(check (option int)) "read back" (Some 42) !got

let test_get_unknown_key () =
  let eng, store = make () in
  let got = ref (Some 1) in
  Store.get store ~from:0 ~key:"nope" (fun v -> got := v);
  Engine.run eng;
  Alcotest.(check (option int)) "unknown is None" None !got

let test_survives_minority_failure () =
  let eng, store = make () in
  let acked = ref false in
  Store.put store ~from:0 ~key:"k" 7 (fun ok -> acked := ok);
  Engine.run eng;
  Alcotest.(check bool) "acked" true !acked;
  (* Any single replica can die; the value must still be readable. *)
  List.iter
    (fun victim ->
      Store.fail_replica store victim;
      let got = ref None in
      Store.get store ~from:0 ~key:"k" (fun v -> got := v);
      Engine.run eng;
      Alcotest.(check (option int))
        (Printf.sprintf "readable after replica %d fails" victim)
        (Some 7) !got;
      Store.recover_replica store victim)
    [ 1; 2; 3 ]

let test_majority_failure_blocks () =
  let eng, store = make () in
  Store.fail_replica store 1;
  Store.fail_replica store 2;
  let acked = ref true and got = ref (Some 1) in
  Store.put store ~from:0 ~key:"k" 5 (fun ok -> acked := ok);
  Store.get store ~from:0 ~key:"k" (fun v -> got := v);
  Engine.run eng;
  Alcotest.(check bool) "write not acked without majority" false !acked;
  Alcotest.(check (option int)) "read has no quorum" None !got

let test_freshest_version_wins () =
  let eng, store = make () in
  (* First write reaches everyone; second write lands while replica 3 is
     down. A later quorum read must return the newer value even if the
     stale replica answers. *)
  Store.put store ~from:0 ~key:"k" 1 (fun _ -> ());
  Engine.run eng;
  Store.fail_replica store 3;
  Store.put store ~from:0 ~key:"k" 2 (fun _ -> ());
  Engine.run eng;
  Store.recover_replica store 3;
  let got = ref None in
  Store.get store ~from:0 ~key:"k" (fun v -> got := v);
  Engine.run eng;
  Alcotest.(check (option int)) "newer version wins" (Some 2) !got

let test_write_latency_is_round_trip () =
  let eng, store = make () in
  let done_at = ref nan in
  ignore
    (Engine.schedule eng ~delay:1. (fun () ->
         Store.put store ~from:0 ~key:"k" 1 (fun _ -> done_at := Engine.now eng)));
  Engine.run eng;
  (* All replicas are 20 ms away: quorum completes at the 40 ms round trip. *)
  Alcotest.(check (float 1e-6)) "one WAN round trip" 1.04 !done_at

let test_lease_exclusive () =
  let eng, store = make () in
  let a = ref false and b = ref true in
  Store.acquire_lease store ~from:0 ~key:"leader" ~owner:"gsb-1" ~duration:10. (fun ok ->
      a := ok);
  Engine.run eng;
  Store.acquire_lease store ~from:0 ~key:"leader" ~owner:"gsb-2" ~duration:10. (fun ok ->
      b := ok);
  Engine.run eng;
  Alcotest.(check bool) "first acquires" true !a;
  Alcotest.(check bool) "second is refused" false !b

let test_lease_reacquire_same_owner () =
  let eng, store = make () in
  let first = ref false and again = ref false in
  Store.acquire_lease store ~from:0 ~key:"leader" ~owner:"gsb-1" ~duration:10. (fun ok ->
      first := ok);
  Engine.run eng;
  Store.acquire_lease store ~from:0 ~key:"leader" ~owner:"gsb-1" ~duration:10. (fun ok ->
      again := ok);
  Engine.run eng;
  Alcotest.(check bool) "extend own lease" true (!first && !again)

let test_lease_expires () =
  let eng, store = make () in
  Store.acquire_lease store ~from:0 ~key:"leader" ~owner:"gsb-1" ~duration:0.5 (fun _ -> ());
  Engine.run eng;
  let taken = ref false in
  ignore
    (Engine.schedule eng ~delay:1. (fun () ->
         Store.acquire_lease store ~from:0 ~key:"leader" ~owner:"gsb-2" ~duration:1.
           (fun ok -> taken := ok)));
  Engine.run eng;
  Alcotest.(check bool) "standby takes over after expiry" true !taken

let test_lease_release () =
  let eng, store = make () in
  Store.acquire_lease store ~from:0 ~key:"leader" ~owner:"gsb-1" ~duration:100. (fun _ -> ());
  Engine.run eng;
  let released = ref false and taken = ref false in
  Store.release_lease store ~from:0 ~key:"leader" ~owner:"gsb-1" (fun ok -> released := ok);
  Engine.run eng;
  Store.acquire_lease store ~from:0 ~key:"leader" ~owner:"gsb-2" ~duration:1. (fun ok ->
      taken := ok);
  Engine.run eng;
  Alcotest.(check bool) "released" true !released;
  Alcotest.(check bool) "available again" true !taken

let prop_any_minority_failure_preserves_acked_writes =
  QCheck.Test.make ~name:"acked writes survive any minority failure" ~count:50
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 20))
    (fun (seed, nkeys) ->
      let rng = Sb_util.Rng.create seed in
      let eng, store = make ~replicas:[ 1; 2; 3; 4; 5 ] () in
      let acked = ref [] in
      for k = 0 to nkeys - 1 do
        Store.put store ~from:0 ~key:(string_of_int k) k (fun ok ->
            if ok then acked := k :: !acked)
      done;
      Engine.run eng;
      (* Fail any two of five replicas. *)
      let victims = Sb_util.Rng.sample_without_replacement rng 2 5 in
      List.iter (fun v -> Store.fail_replica store (v + 1)) victims;
      let ok = ref true in
      List.iter
        (fun k ->
          Store.get store ~from:0 ~key:(string_of_int k) (fun v ->
              if v <> Some k then ok := false))
        !acked;
      Engine.run eng;
      !ok)

let () =
  Alcotest.run "sb_music"
    [
      ( "store",
        [
          Alcotest.test_case "quorum size" `Quick test_quorum_size;
          Alcotest.test_case "put/get roundtrip" `Quick test_put_get_roundtrip;
          Alcotest.test_case "unknown key" `Quick test_get_unknown_key;
          Alcotest.test_case "survives minority failure" `Quick test_survives_minority_failure;
          Alcotest.test_case "majority failure blocks" `Quick test_majority_failure_blocks;
          Alcotest.test_case "freshest version wins" `Quick test_freshest_version_wins;
          Alcotest.test_case "write latency" `Quick test_write_latency_is_round_trip;
        ] );
      ( "leases",
        [
          Alcotest.test_case "exclusive" `Quick test_lease_exclusive;
          Alcotest.test_case "reacquire same owner" `Quick test_lease_reacquire_same_owner;
          Alcotest.test_case "expiry allows takeover" `Quick test_lease_expires;
          Alcotest.test_case "release" `Quick test_lease_release;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_any_minority_failure_preserves_acked_writes ] );
    ]
