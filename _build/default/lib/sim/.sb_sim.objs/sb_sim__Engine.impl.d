lib/sim/engine.ml: Array Hashtbl
