lib/sim/engine.mli:
