lib/music/store.ml: Hashtbl List Option Sb_sim
