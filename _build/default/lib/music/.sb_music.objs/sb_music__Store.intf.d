lib/music/store.mli: Sb_sim
