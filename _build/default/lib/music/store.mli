(** A MUSIC-style replicated key-value store for controller state.

    The paper plans controller fault-tolerance "using a replication recipe
    based on MUSIC, a resilient key-value store optimized for wide-area
    deployments" (Section 4.5). This module provides that substrate over
    the discrete-event engine: values are replicated across a set of
    replica sites with majority-quorum writes and reads (so any minority of
    replica failures loses nothing and never serves a lost update), plus
    MUSIC's other signature primitive — per-key leased locks, with which a
    standby Global Switchboard can take over safely after the incumbent's
    lease lapses.

    All operations are asynchronous: they complete via callback after the
    quorum round-trips play out on the simulated wide area. Versions are
    totally ordered per store; a read returns the highest-versioned value
    any majority member holds, which intersects every acknowledged write's
    majority. *)

type 'v t

val create :
  Sb_sim.Engine.t ->
  replica_sites:int list ->
  delay:(int -> int -> float) ->
  'v t
(** Replicas at the given sites (at least one). [delay] is the one-way
    client/replica network latency. *)

val num_replicas : 'v t -> int
val quorum : 'v t -> int
(** Majority size. *)

val fail_replica : 'v t -> int -> unit
(** Crash a replica (stops acknowledging; state frozen). Unknown sites are
    ignored. *)

val recover_replica : 'v t -> int -> unit
(** Bring a crashed replica back with the state it had when it failed; it
    catches up lazily through subsequent quorum writes. *)

val put : 'v t -> from:int -> key:string -> 'v -> (bool -> unit) -> unit
(** Replicate [key -> value] from the client site [from]; the callback
    fires with [true] once a majority acknowledged, or [false] if a
    majority is unreachable (fires after the slowest attempt). *)

val get : 'v t -> from:int -> key:string -> ('v option -> unit) -> unit
(** Quorum read: freshest value among a majority, [None] if the key is
    unknown (or no majority is reachable). *)

val acquire_lease :
  'v t -> from:int -> key:string -> owner:string -> duration:float -> (bool -> unit) -> unit
(** Try to take the leased lock on [key] for [owner] (MUSIC's locking API).
    Succeeds iff a majority of replicas have no unexpired lease held by a
    different owner; re-acquisition by the same owner extends the lease. *)

val release_lease : 'v t -> from:int -> key:string -> owner:string -> (bool -> unit) -> unit
(** Release, if held by [owner]. *)
