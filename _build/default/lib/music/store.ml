module Engine = Sb_sim.Engine

type 'v replica = {
  site : int;
  mutable alive : bool;
  data : (string, int * 'v) Hashtbl.t; (* key -> version, value *)
  leases : (string, string * float) Hashtbl.t; (* key -> owner, expiry *)
}

type 'v t = {
  eng : Engine.t;
  replicas : 'v replica list;
  delay : int -> int -> float;
  mutable next_version : int;
}

let create eng ~replica_sites ~delay =
  if replica_sites = [] then invalid_arg "Music.create: need at least one replica";
  {
    eng;
    replicas =
      List.map
        (fun site ->
          { site; alive = true; data = Hashtbl.create 64; leases = Hashtbl.create 16 })
        replica_sites;
    delay;
    next_version = 0;
  }

let num_replicas t = List.length t.replicas
let quorum t = (num_replicas t / 2) + 1

let find_replica t site = List.find_opt (fun r -> r.site = site) t.replicas

let fail_replica t site =
  match find_replica t site with Some r -> r.alive <- false | None -> ()

let recover_replica t site =
  match find_replica t site with Some r -> r.alive <- true | None -> ()

(* Run one round: send a request to every replica; live ones answer after
   the round trip with [answer replica]; after all attempts resolve, call
   [finish] with the collected answers (quorum judgement is the caller's).
   Dead replicas "time out" after the same round trip. *)
let round t ~from ~answer ~finish =
  let pending = ref (num_replicas t) in
  let answers = ref [] in
  let resolve a =
    (match a with Some x -> answers := x :: !answers | None -> ());
    decr pending;
    if !pending = 0 then finish !answers
  in
  List.iter
    (fun r ->
      let rtt = 2. *. t.delay from r.site in
      ignore
        (Engine.schedule t.eng ~delay:rtt (fun () ->
             if r.alive then resolve (Some (answer r)) else resolve None)))
    t.replicas

let put t ~from ~key value callback =
  let version = t.next_version in
  t.next_version <- version + 1;
  round t ~from
    ~answer:(fun r ->
      (match Hashtbl.find_opt r.data key with
      | Some (v, _) when v > version -> () (* newer write already applied *)
      | _ -> Hashtbl.replace r.data key (version, value));
      ())
    ~finish:(fun acks -> callback (List.length acks >= quorum t))

let get t ~from ~key callback =
  round t ~from
    ~answer:(fun r -> Hashtbl.find_opt r.data key)
    ~finish:(fun answers ->
      if List.length answers < quorum t then callback None
      else begin
        let best =
          List.fold_left
            (fun acc a ->
              match (acc, a) with
              | None, x -> x
              | Some (v1, _), Some (v2, x2) when v2 > v1 -> Some (v2, x2)
              | acc, _ -> acc)
            None answers
        in
        callback (Option.map snd best)
      end)

let acquire_lease t ~from ~key ~owner ~duration callback =
  round t ~from
    ~answer:(fun r ->
      let now = Engine.now t.eng in
      let free =
        match Hashtbl.find_opt r.leases key with
        | Some (holder, expiry) -> holder = owner || expiry <= now
        | None -> true
      in
      if free then begin
        (* The grant's expiry is stamped at the replica. *)
        Hashtbl.replace r.leases key (owner, now +. duration);
        true
      end
      else false)
    ~finish:(fun grants ->
      let yes = List.length (List.filter (fun g -> g) grants) in
      callback (yes >= quorum t))

let release_lease t ~from ~key ~owner callback =
  round t ~from
    ~answer:(fun r ->
      match Hashtbl.find_opt r.leases key with
      | Some (holder, _) when holder = owner ->
        Hashtbl.remove r.leases key;
        true
      | Some _ -> false
      | None -> true)
    ~finish:(fun oks ->
      let yes = List.length (List.filter (fun g -> g) oks) in
      callback (yes >= quorum t))
