let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

type pending_chain = {
  pc_name : string;
  pc_ingresses : (string * float) list;
  pc_egresses : (string * float) list;
  pc_fwd : float;
  pc_rev : float;
  pc_vnfs : string list;
}

type acc = {
  mutable nodes : (string * (float * float)) list; (* reverse order *)
  mutable duplex : (string * string * float * float) list;
  mutable links : (string * string * float * float) list;
  mutable sites : (string * float) list;
  mutable vnfs : (string * float) list;
  mutable deploys : (string * string * float) list;
  mutable chains : pending_chain list;
  mutable beta : float;
}

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let float_of tok =
  match float_of_string_opt tok with
  | Some v -> v
  | None -> failf "expected a number, got %S" tok

let parse_line acc line =
  match tokens line with
  | [] -> ()
  | [ "node"; name; x; y ] ->
    if List.mem_assoc name acc.nodes then failf "duplicate node %s" name;
    acc.nodes <- (name, (float_of x, float_of y)) :: acc.nodes
  | [ "link"; a; b; bw; d ] -> acc.links <- (a, b, float_of bw, float_of d) :: acc.links
  | [ "duplex"; a; b; bw; d ] -> acc.duplex <- (a, b, float_of bw, float_of d) :: acc.duplex
  | [ "site"; node; cap ] -> acc.sites <- (node, float_of cap) :: acc.sites
  | [ "vnf"; name; cpu ] ->
    if List.mem_assoc name acc.vnfs then failf "duplicate vnf %s" name;
    acc.vnfs <- (name, float_of cpu) :: acc.vnfs
  | [ "deploy"; vnf; node; cap ] -> acc.deploys <- (vnf, node, float_of cap) :: acc.deploys
  | "chain" :: name :: ingress :: egress :: fwd :: rev :: vnfs ->
    acc.chains <-
      {
        pc_name = name;
        pc_ingresses = [ (ingress, 1.) ];
        pc_egresses = [ (egress, 1.) ];
        pc_fwd = float_of fwd;
        pc_rev = float_of rev;
        pc_vnfs = vnfs;
      }
      :: acc.chains
  | "chainm" :: name :: ingresses :: egresses :: fwd :: rev :: vnfs ->
    (* Multi-endpoint chain: endpoints are comma-separated node:share
       pairs, e.g. "office1:2,office2:1". *)
    let endpoints what field =
      String.split_on_char ',' field
      |> List.map (fun item ->
             match String.split_on_char ':' item with
             | [ node; share ] -> (node, float_of share)
             | [ node ] -> (node, 1.)
             | _ -> failf "malformed %s endpoint %S" what item)
    in
    acc.chains <-
      {
        pc_name = name;
        pc_ingresses = endpoints "ingress" ingresses;
        pc_egresses = endpoints "egress" egresses;
        pc_fwd = float_of fwd;
        pc_rev = float_of rev;
        pc_vnfs = vnfs;
      }
      :: acc.chains
  | [ "beta"; b ] -> acc.beta <- float_of b
  | directive :: _ -> failf "unknown or malformed directive %S" directive

let build acc =
  let topo = Sb_net.Topology.create () in
  let node_ids = Hashtbl.create 16 in
  List.iter
    (fun (name, (x, y)) ->
      Hashtbl.replace node_ids name (Sb_net.Topology.add_node topo ~x ~y name))
    (List.rev acc.nodes);
  let node name =
    match Hashtbl.find_opt node_ids name with
    | Some id -> id
    | None -> failf "unknown node %s" name
  in
  List.iter
    (fun (a, b, bw, d) ->
      ignore (Sb_net.Topology.add_link topo ~src:(node a) ~dst:(node b) ~bandwidth:bw ~delay:d))
    (List.rev acc.links);
  List.iter
    (fun (a, b, bw, d) ->
      Sb_net.Topology.add_duplex topo (node a) (node b) ~bandwidth:bw ~delay:d)
    (List.rev acc.duplex);
  let b = Model.builder topo in
  let site_ids = Hashtbl.create 16 in
  List.iter
    (fun (name, cap) ->
      Hashtbl.replace site_ids name (Model.add_site b ~node:(node name) ~capacity:cap))
    (List.rev acc.sites);
  let site name =
    match Hashtbl.find_opt site_ids name with
    | Some id -> id
    | None -> failf "no site at node %s" name
  in
  let vnf_ids = Hashtbl.create 16 in
  List.iter
    (fun (name, cpu) ->
      Hashtbl.replace vnf_ids name (Model.add_vnf b ~name ~cpu_per_unit:cpu))
    (List.rev acc.vnfs);
  let vnf name =
    match Hashtbl.find_opt vnf_ids name with
    | Some id -> id
    | None -> failf "unknown vnf %s" name
  in
  List.iter
    (fun (v, s, cap) -> Model.deploy b ~vnf:(vnf v) ~site:(site s) ~capacity:cap)
    (List.rev acc.deploys);
  List.iter
    (fun pc ->
      ignore
        (Model.add_chain_endpoints b ~name:pc.pc_name
           ~ingresses:(List.map (fun (n, s) -> (node n, s)) pc.pc_ingresses)
           ~egresses:(List.map (fun (n, s) -> (node n, s)) pc.pc_egresses)
           ~vnfs:(List.map vnf pc.pc_vnfs)
           ~fwd:pc.pc_fwd ~rev:pc.pc_rev ()))
    (List.rev acc.chains);
  Model.finalize b ~beta:acc.beta ()

let parse contents =
  let acc =
    {
      nodes = [];
      duplex = [];
      links = [];
      sites = [];
      vnfs = [];
      deploys = [];
      chains = [];
      beta = 1.0;
    }
  in
  let lines = String.split_on_char '\n' contents in
  try
    List.iteri
      (fun i line ->
        try parse_line acc line with
        | Bad msg -> failf "line %d: %s" (i + 1) msg
        | Invalid_argument msg -> failf "line %d: %s" (i + 1) msg)
      lines;
    Ok (build acc)
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error msg

let load_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    parse contents

let to_string m =
  let buf = Buffer.create 1024 in
  let topo = Model.topology m in
  let name n = Sb_net.Topology.node_name topo n in
  for n = 0 to Sb_net.Topology.num_nodes topo - 1 do
    let x, y = Sb_net.Topology.node_pos topo n in
    Buffer.add_string buf (Printf.sprintf "node %s %.12g %.12g\n" (name n) x y)
  done;
  Array.iter
    (fun (l : Sb_net.Topology.link) ->
      Buffer.add_string buf
        (Printf.sprintf "link %s %s %.12g %.12g\n" (name l.src) (name l.dst) l.bandwidth l.delay))
    (Sb_net.Topology.links topo);
  for s = 0 to Model.num_sites m - 1 do
    Buffer.add_string buf
      (Printf.sprintf "site %s %.12g\n" (name (Model.site_node m s)) (Model.site_capacity m s))
  done;
  for f = 0 to Model.num_vnfs m - 1 do
    Buffer.add_string buf
      (Printf.sprintf "vnf %s %.12g\n" (Model.vnf_name m f) (Model.vnf_cpu_per_unit m f));
    List.iter
      (fun (s, cap) ->
        Buffer.add_string buf
          (Printf.sprintf "deploy %s %s %.12g\n" (Model.vnf_name m f)
             (name (Model.site_node m s))
             cap))
      (Model.vnf_sites m f)
  done;
  for c = 0 to Model.num_chains m - 1 do
    let vnf_names =
      Array.to_list (Model.chain_vnfs m c) |> List.map (Model.vnf_name m)
    in
    let ingresses = Model.chain_ingresses m c in
    let egresses = Model.chain_egresses m c in
    if List.length ingresses = 1 && List.length egresses = 1 then
      Buffer.add_string buf
        (Printf.sprintf "chain %s %s %s %.12g %.12g %s\n" (Model.chain_name m c)
           (name (Model.chain_ingress m c))
           (name (Model.chain_egress m c))
           (Model.fwd_traffic m ~chain:c ~stage:0)
           (Model.rev_traffic m ~chain:c ~stage:0)
           (String.concat " " vnf_names))
    else begin
      let endpoints eps =
        String.concat ","
          (List.map (fun (n, share) -> Printf.sprintf "%s:%.12g" (name n) share) eps)
      in
      Buffer.add_string buf
        (Printf.sprintf "chainm %s %s %s %.12g %.12g %s\n" (Model.chain_name m c)
           (endpoints ingresses) (endpoints egresses)
           (Model.fwd_traffic m ~chain:c ~stage:0)
           (Model.rev_traffic m ~chain:c ~stage:0)
           (String.concat " " vnf_names))
    end
  done;
  Buffer.add_string buf (Printf.sprintf "beta %.12g\n" (Model.beta m));
  Buffer.contents buf
