(** Cloud capacity planning (Sections 4.2-4.3, Fig. 13b).

    Given a budget of additional compute to spread across sites, find the
    per-site allocation that maximizes the uniform traffic-scaling factor
    alpha — solved as the capacity-planning LP (routing variables plus
    per-site allocation variables). The baseline spreads the budget
    uniformly and re-solves the throughput LP. *)

type plan = {
  allocation : float array;  (** extra capacity per site *)
  alpha : float;  (** supported demand-scaling factor *)
}

val optimize : Model.t -> budget:float -> (plan, string) Result.t
(** Switchboard's capacity-planning LP. *)

val uniform : Model.t -> budget:float -> (plan, string) Result.t
(** Uniform-spread baseline ("provisioning capacity uniformly across
    sites"). *)
