(** Synthetic tier-1 evaluation scenario (Section 7.3 simulation setup).

    Builds a {!Model.t} following the paper's recipe: cloud sites of
    homogeneous capacity colocated with backbone nodes; a VNF catalog where
    each VNF is deployed at a random [coverage] fraction of sites, with a
    site's capacity divided equally among the VNFs present there; chains
    with random ingress/egress, 3-5 VNFs in a globally consistent order,
    and traffic proportional to the gravity-model mass of the ingress node;
    and Switchboard-to-background traffic in a 4:1 ratio, with background
    traffic spread over links by shortest-path routing of a second gravity
    matrix. *)

type params = {
  num_vnfs : int;  (** catalog size (paper: 100) *)
  coverage : float;  (** fraction of sites hosting each VNF, in (0, 1] *)
  cpu_per_unit : float;  (** CPU/byte of every VNF (paper sweeps this) *)
  num_chains : int;  (** paper: 10 000; scaled down for the LP *)
  min_chain_len : int;  (** paper: 3 *)
  max_chain_len : int;  (** paper: 5 *)
  site_capacity : float;  (** homogeneous site compute capacity *)
  total_traffic : float;  (** total Switchboard demand *)
  background_ratio : float;  (** background / Switchboard traffic (paper: 1/4) *)
  reverse_fraction : float;  (** v_cz as a fraction of w_cz *)
  beta : float;  (** MLU limit *)
}

val default : params
(** 12 VNFs, coverage 0.5, CPU/unit 1.0, 24 chains, lengths 3-5, site
    capacity 100, total traffic 30, background ratio 0.25, reverse fraction
    0.5, beta 1.0 — sized so the SB-LP simplex solves in seconds and unit
    demand is feasible (so the min-latency LP has a solution). *)

val synthesize : rng:Sb_util.Rng.t -> Sb_net.Topology.t -> params -> Model.t
(** Raises [Invalid_argument] on out-of-range parameters. *)
