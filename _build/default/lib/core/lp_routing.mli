(** SB-LP: the linear-programming chain router (Section 4.3).

    Builds the chain-routing LP over the variables [x_czn1n2] with the
    paper's constraints — per-chain source emission, flow conservation at
    every VNF element (Eq. 5), site compute capacity (Eq. 4), per-VNF
    per-site capacity, and the maximum-link-utilization network-cost bound
    (Eq. 6) — and solves it exactly with the [sb_lp] simplex.

    Two objectives, matching the two uses in the evaluation:
    - {!Min_latency} minimizes the traffic-weighted aggregate latency
      (Eq. 3) subject to current demand (used for Fig. 12c and Fig. 11).
    - {!Max_throughput} maximizes the uniform demand-scaling factor alpha
      supported by the network (used for Figs. 12a/12b/13b); the [x]
      variables become alpha-scaled flows, normalized back to fractions on
      extraction. *)

type objective = Min_latency | Max_throughput

type result = {
  routing : Routing.t;
  objective_value : float;
      (** Mean demand-weighted latency (s) for {!Min_latency}; the scaling
          factor alpha for {!Max_throughput}. *)
  site_extra : float array option;
      (** Per-site capacity additions, present only when
          [?cloud_budget] was given. *)
}

val solve : ?cloud_budget:float -> Model.t -> objective -> (result, string) Result.t
(** [solve m obj] returns [Error] when the LP is infeasible (for
    {!Min_latency}: the demand cannot be carried within capacities) or
    unbounded (a modelling error). [cloud_budget], usable with
    {!Max_throughput} only, turns site capacities into variables
    [m_s + a_s] with [sum a_s <= budget] — the cloud capacity-planning LP
    of Section 4.3. *)
