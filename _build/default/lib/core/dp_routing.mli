(** SB-DP: Switchboard's dynamic-programming chain router (Section 4.4).

    For each chain it fills the table [E(z, s)] — the least cost of a route
    prefix ending with element [z] placed at site [s] — using the stage
    cost of {!Load_state.stage_cost} (propagation delay + Fortz–Thorup
    network- and compute-utilization costs), then walks parents back from
    the egress (Eq. 8). Chains are routed sequentially (optionally in a
    seeded random order), committing their load so later chains see earlier
    utilization. If the selected route cannot absorb the chain's full
    traffic within remaining capacities, the chain is split: the route
    carries the fraction its bottleneck allows and the algorithm repeats on
    the next least-cost route (up to [max_routes]; any residual rides the
    last route). *)

val default_util_weight : float
(** Weight converting Fortz–Thorup utilization cost into seconds of
    latency-equivalent cost; 0.05 (i.e. one unit of utilization cost
    trades against 50 ms of propagation delay). *)

val solve :
  ?util_weight:float ->
  ?max_routes:int ->
  ?rng:Sb_util.Rng.t ->
  Model.t ->
  Routing.t
(** Full SB-DP. [max_routes] (default 8) bounds per-chain splitting.
    [rng], when given, shuffles the chain processing order. *)

val dp_latency : ?rng:Sb_util.Rng.t -> Model.t -> Routing.t
(** The DP-LATENCY ablation of Fig. 13a: same holistic dynamic program but
    the cost is propagation delay only (no utilization terms, no
    splitting — capacity-blind). *)

val best_path :
  ?ingress:int ->
  ?egress:int ->
  Load_state.t ->
  util_weight:float ->
  chain:int ->
  int array option
(** One DP evaluation against the given load state: the least-cost node
    sequence (ingress, VNF nodes, egress) for a chain, or [None] if some
    stage has no reachable candidate. [ingress]/[egress] default to the
    chain's first endpoints (multi-endpoint chains are routed per pair by
    {!solve}). Exposed for the control plane (route recomputation after a
    two-phase-commit reject) and tests. *)
