(* Walk one chain element by element from a given ingress towards a given
   egress, choosing each VNF's site with
   [choose state chain stage current candidates]; returns the node path. *)
let walk_chain m state chain ~ingress ~egress choose =
  let len = Model.chain_length m chain in
  let nodes = Array.make (len + 2) ingress in
  nodes.(len + 1) <- egress;
  for z = 0 to len - 1 do
    let candidates = Model.stage_dst_nodes m ~chain ~stage:z in
    nodes.(z + 1) <- choose state chain z nodes.(z) candidates
  done;
  nodes

(* Greedy schemes handle a multi-endpoint chain (Section 4.1's omitted
   generalization) as one walk per (ingress, egress) pair, carrying the
   product of the endpoint shares. *)
let route m choose =
  let state = Load_state.create m in
  let routing = Routing.create m in
  for c = 0 to Model.num_chains m - 1 do
    List.iter
      (fun (ingress, ishare) ->
        List.iter
          (fun (egress, eshare) ->
            let frac = ishare *. eshare in
            let nodes = walk_chain m state c ~ingress ~egress choose in
            Routing.add_path routing ~chain:c ~nodes ~frac;
            for z = 0 to Array.length nodes - 2 do
              Load_state.add_stage_flow state ~chain:c ~stage:z ~src:nodes.(z)
                ~dst:nodes.(z + 1) ~frac
            done)
          (Model.chain_egresses m c))
      (Model.chain_ingresses m c)
  done;
  routing

let by_delay m current candidates =
  let paths = Model.paths m in
  List.sort
    (fun a b ->
      compare (Sb_net.Paths.delay paths current a) (Sb_net.Paths.delay paths current b))
    candidates

let anycast m =
  route m (fun _state _chain _stage current candidates ->
      match by_delay m current candidates with
      | best :: _ -> best
      | [] -> invalid_arg "Greedy.anycast: VNF with no deployment")

(* Remaining capacity for this chain's stage at a candidate VNF site:
   the smaller of the deployment headroom and the site headroom. The VNF is
   charged for both the traffic it receives (stage [stage]) and the traffic
   it forwards on (stage [stage + 1]), per Eq. 4. *)
let headroom state chain stage node =
  let m = Load_state.model state in
  match (Model.stage_dst_vnf m ~chain ~stage, Model.site_of_node m node) with
  | Some f, Some s ->
    let stage_traffic z =
      Model.fwd_traffic m ~chain ~stage:z +. Model.rev_traffic m ~chain ~stage:z
    in
    let added =
      Model.vnf_cpu_per_unit m f *. (stage_traffic stage +. stage_traffic (stage + 1))
    in
    let vnf_room = Model.vnf_site_capacity m ~vnf:f ~site:s -. Load_state.vnf_load state ~vnf:f ~site:s in
    let site_room = Model.site_capacity m s -. Load_state.site_load state s in
    Float.min vnf_room site_room -. added
  | _ -> infinity

let compute_aware m =
  route m (fun state chain stage current candidates ->
      let ordered = by_delay m current candidates in
      let with_room = List.filter (fun n -> headroom state chain stage n >= 0.) ordered in
      match with_room with
      | best :: _ -> best
      | [] -> (
        (* No site fits: fall back to the least-loaded one. *)
        match
          List.sort
            (fun a b ->
              compare (headroom state chain stage b) (headroom state chain stage a))
            ordered
        with
        | best :: _ -> best
        | [] -> invalid_arg "Greedy.compute_aware: VNF with no deployment"))

let onehop ?util_weight m =
  let util_weight =
    match util_weight with Some w -> w | None -> Dp_routing.default_util_weight
  in
  route m (fun state chain stage current candidates ->
      let cost n = Load_state.stage_cost state ~util_weight ~chain ~stage ~src:current ~dst:n in
      match
        List.sort (fun a b -> compare (cost a) (cost b)) candidates
      with
      | best :: _ -> best
      | [] -> invalid_arg "Greedy.onehop: VNF with no deployment")
