type t = {
  m : Model.t;
  flows : (int * int * float) list array array; (* flows.(c).(z) *)
}

let create m =
  {
    m;
    flows =
      Array.init (Model.num_chains m) (fun c ->
          Array.make (Model.num_stages m c) []);
  }

let model t = t.m

let set_stage t ~chain ~stage flows = t.flows.(chain).(stage) <- flows

let stage_flows t ~chain ~stage = t.flows.(chain).(stage)

let add_path t ~chain ~nodes ~frac =
  let stages = Model.num_stages t.m chain in
  if Array.length nodes <> stages + 1 then
    invalid_arg "Routing.add_path: node sequence length mismatch";
  for z = 0 to stages - 1 do
    let src = nodes.(z) and dst = nodes.(z + 1) in
    (* Merge with an existing identical hop if present. *)
    let rec merge = function
      | [] -> [ (src, dst, frac) ]
      | (s, d, f) :: rest when s = src && d = dst -> (s, d, f +. frac) :: rest
      | hop :: rest -> hop :: merge rest
    in
    t.flows.(chain).(z) <- merge t.flows.(chain).(z)
  done

let single_path m path_of_chain =
  let t = create m in
  for c = 0 to Model.num_chains m - 1 do
    add_path t ~chain:c ~nodes:(path_of_chain c) ~frac:1.0
  done;
  t

let close_enough a b = Float.abs (a -. b) < 1e-6

let validate t =
  let m = t.m in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  for c = 0 to Model.num_chains m - 1 do
    let stages = Model.num_stages m c in
    for z = 0 to stages - 1 do
      let srcs = Model.stage_src_nodes m ~chain:c ~stage:z in
      let dsts = Model.stage_dst_nodes m ~chain:c ~stage:z in
      List.iter
        (fun (s, d, f) ->
          if f < -1e-9 then fail "chain %d stage %d: negative fraction %g" c z f;
          if not (List.mem s srcs) then
            fail "chain %d stage %d: invalid source node %d" c z s;
          if not (List.mem d dsts) then
            fail "chain %d stage %d: invalid destination node %d" c z d)
        t.flows.(c).(z)
    done;
    (* Each ingress node emits exactly its traffic share (stage 0), and
       each egress node receives its share (final stage). *)
    List.iter
      (fun (node, share) ->
        let out =
          List.fold_left
            (fun acc (s, _, f) -> if s = node then acc +. f else acc)
            0. t.flows.(c).(0)
        in
        if not (close_enough out share) then
          fail "chain %d: ingress %d emits %g, expected %g" c node out share)
      (Model.chain_ingresses m c);
    List.iter
      (fun (node, share) ->
        let inflow =
          List.fold_left
            (fun acc (_, d, f) -> if d = node then acc +. f else acc)
            0.
            t.flows.(c).(stages - 1)
        in
        if not (close_enough inflow share) then
          fail "chain %d: egress %d receives %g, expected %g" c node inflow share)
      (Model.chain_egresses m c);
    (* Conservation at each VNF element's sites (Eq. 5). *)
    for z = 0 to stages - 2 do
      let sites = Model.stage_dst_nodes m ~chain:c ~stage:z in
      List.iter
        (fun node ->
          let inflow =
            List.fold_left
              (fun acc (_, d, f) -> if d = node then acc +. f else acc)
              0. t.flows.(c).(z)
          in
          let outflow =
            List.fold_left
              (fun acc (s, _, f) -> if s = node then acc +. f else acc)
              0.
              t.flows.(c).(z + 1)
          in
          if not (close_enough inflow outflow) then
            fail "chain %d element %d at node %d: in %g <> out %g" c (z + 1) node
              inflow outflow)
        sites
    done
  done;
  match !problem with None -> Ok () | Some s -> Error s

let load_state t =
  let state = Load_state.create t.m in
  Array.iteri
    (fun c stages ->
      Array.iteri
        (fun z flows ->
          List.iter
            (fun (src, dst, frac) ->
              if frac > 1e-12 then
                Load_state.add_stage_flow state ~chain:c ~stage:z ~src ~dst ~frac)
            flows)
        stages)
    t.flows;
  state

let max_alpha t = Load_state.max_alpha (load_state t)

let supported_throughput t =
  let a = max_alpha t in
  if a = infinity then infinity else a *. Model.total_demand t.m

let latency_terms ?(alpha = 1.0) ?(vnf_service_time = 0.001) ~with_queueing t =
  let m = t.m in
  let state = load_state t in
  let paths = Model.paths m in
  let total_weight = ref 0. in
  let total_latency = ref 0. in
  let saturated = ref false in
  Array.iteri
    (fun c stages ->
      Array.iteri
        (fun z flows ->
          let w = Model.fwd_traffic m ~chain:c ~stage:z in
          let v = Model.rev_traffic m ~chain:c ~stage:z in
          List.iter
            (fun (src, dst, frac) ->
              if frac > 1e-12 then begin
                let weight = (w +. v) *. frac in
                let prop = Sb_net.Paths.delay paths src dst in
                let queue =
                  if not with_queueing then 0.
                  else
                    match Model.stage_dst_vnf m ~chain:c ~stage:z with
                    | None -> 0.
                    | Some f -> (
                      match Model.site_of_node m dst with
                      | None -> 0.
                      | Some s ->
                        let rho = alpha *. Load_state.vnf_utilization state ~vnf:f ~site:s in
                        (* A deployment loaded beyond capacity cannot carry
                           the traffic at all; one loaded exactly to its
                           admission limit queues heavily but finitely. *)
                        if rho > 1. +. 1e-9 then begin
                          saturated := true;
                          0.
                        end
                        else vnf_service_time /. (1. -. Float.min rho 0.98))
                in
                total_weight := !total_weight +. weight;
                total_latency := !total_latency +. (weight *. (prop +. queue))
              end)
            flows)
        stages)
    t.flows;
  if !saturated then infinity
  else if !total_weight = 0. then 0.
  else !total_latency /. !total_weight

let mean_latency ?alpha ?vnf_service_time t =
  latency_terms ?alpha ?vnf_service_time ~with_queueing:true t

let propagation_latency t = latency_terms ~with_queueing:false t

let decompose_paths t ~chain =
  let stages = Model.num_stages t.m chain in
  (* Mutable residual copy of the stage flows. *)
  let residual = Array.map (fun flows -> ref flows) t.flows.(chain) in
  let take stage node =
    (* First arc with positive fraction leaving [node] at [stage]. *)
    List.find_opt (fun (s, _, f) -> s = node && f > 1e-9) !(residual.(stage))
  in
  let take_any_source () =
    (* Any stage-0 arc with residual flow (chains may have several
       ingresses). *)
    List.find_opt (fun (_, _, f) -> f > 1e-9) !(residual.(0))
  in
  let subtract stage (src, dst) amount =
    residual.(stage) :=
      List.filter_map
        (fun (s, d, f) ->
          if s = src && d = dst then
            if f -. amount > 1e-9 then Some (s, d, f -. amount) else None
          else Some (s, d, f))
        !(residual.(stage))
  in
  let paths = ref [] in
  let continue = ref true in
  while !continue do
    match take_any_source () with
    | None -> continue := false
    | Some (src0, dst0, f0) ->
      let nodes = Array.make (stages + 1) src0 in
      nodes.(1) <- dst0;
      let frac = ref f0 in
      (try
         for z = 1 to stages - 1 do
           match take z nodes.(z) with
           | Some (_, d, f) ->
             nodes.(z + 1) <- d;
             frac := Float.min !frac f
           | None -> raise Exit
         done;
         for z = 0 to stages - 1 do
           subtract z (nodes.(z), nodes.(z + 1)) !frac
         done;
         paths := (Array.copy nodes, !frac) :: !paths
       with Exit ->
         (* Conservation violated (partial routing): drop the dangling arc
            to guarantee termination. *)
         subtract 0 (src0, dst0) f0)
  done;
  List.rev !paths

let pp_chain ppf t c =
  let m = t.m in
  let topo = Model.topology m in
  Format.fprintf ppf "@[<v>chain %s (%s -> %s):@," (Model.chain_name m c)
    (Sb_net.Topology.node_name topo (Model.chain_ingress m c))
    (Sb_net.Topology.node_name topo (Model.chain_egress m c));
  Array.iteri
    (fun z flows ->
      Format.fprintf ppf "  stage %d:" z;
      List.iter
        (fun (s, d, f) ->
          Format.fprintf ppf " %s->%s:%.2f"
            (Sb_net.Topology.node_name topo s)
            (Sb_net.Topology.node_name topo d)
            f)
        flows;
      Format.fprintf ppf "@,")
    t.flows.(c);
  Format.fprintf ppf "@]"
