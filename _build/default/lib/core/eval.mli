(** Uniform evaluation of routing schemes (the metrics of Figs. 11-13).

    Throughput is the largest uniform demand-scaling factor a scheme can
    support (paper Section 4.2, cloud capacity planning objective; the
    y-axis of Figs. 12a/12b/13a as an absolute volume). For SB-LP this is
    the throughput LP's alpha. Load-aware heuristics (SB-DP, Compute-Aware,
    OneHop) get to re-route at each candidate load, so the value is found
    by binary search on the scaled model; load-oblivious schemes route the
    same way at every scale, so one evaluation suffices. *)

type scheme =
  | Anycast
  | Compute_aware
  | Onehop
  | Dp_latency
  | Sb_dp
  | Sb_lp
      (** The LP with the objective matched to the metric: throughput LP
          for {!max_load_factor}, latency LP for {!latency}. *)

val scheme_name : scheme -> string

val all_schemes : scheme list

val route : ?seed:int -> Model.t -> scheme -> (Routing.t, string) Result.t
(** Route current demand. [seed] (default 1) drives SB-DP's chain order.
    For [Sb_lp] this solves the min-latency LP and falls back to the
    throughput LP when current demand is infeasible. *)

val max_load_factor : ?seed:int -> ?tol:float -> Model.t -> scheme -> float
(** Largest demand multiplier the scheme sustains with every link below
    [beta], every site below [m_s], and every deployment below [m_sf].
    [tol] is the relative binary-search tolerance (default 0.02). *)

val throughput : ?seed:int -> Model.t -> scheme -> float
(** [max_load_factor * total_demand]: absolute supported volume. *)

val latency : ?seed:int -> load:float -> Model.t -> scheme -> float
(** Demand-weighted mean chain latency (propagation + M/M/1 VNF queueing)
    when demand is scaled by [load] and the scheme routes that scaled
    demand. [infinity] when the scheme saturates a deployment at that load
    (the paper reports Anycast "cannot handle" loads beyond 10%% of
    SB-LP's). *)
