lib/core/greedy.mli: Model Routing
