lib/core/eval.ml: Array Dp_routing Greedy Lp_routing Model Routing Sb_util
