lib/core/model.ml: Array Hashtbl List Printf Sb_net
