lib/core/workload.mli: Model Sb_net Sb_util
