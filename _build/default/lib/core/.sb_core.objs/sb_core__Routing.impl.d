lib/core/routing.ml: Array Float Format List Load_state Model Printf Sb_net
