lib/core/lp_routing.mli: Model Result Routing
