lib/core/workload.ml: Array Float List Model Printf Sb_net Sb_util
