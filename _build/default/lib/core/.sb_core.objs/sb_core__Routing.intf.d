lib/core/routing.mli: Format Load_state Model
