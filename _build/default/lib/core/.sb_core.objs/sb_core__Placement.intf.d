lib/core/placement.mli: Model Sb_util
