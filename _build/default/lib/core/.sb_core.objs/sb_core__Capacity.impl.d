lib/core/capacity.ml: Array Lp_routing Model
