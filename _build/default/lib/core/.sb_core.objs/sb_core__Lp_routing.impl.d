lib/core/lp_routing.ml: Array Hashtbl List Model Option Printf Routing Sb_lp Sb_net
