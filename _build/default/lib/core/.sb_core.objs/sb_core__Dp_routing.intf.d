lib/core/dp_routing.mli: Load_state Model Routing Sb_util
