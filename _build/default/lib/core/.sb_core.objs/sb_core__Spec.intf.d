lib/core/spec.mli: Model
