lib/core/load_state.mli: Model
