lib/core/load_state.ml: Array Float List Model Printf Sb_net Sb_util
