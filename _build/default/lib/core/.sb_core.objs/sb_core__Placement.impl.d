lib/core/placement.ml: Array Float Hashtbl List Model Printf Sb_lp Sb_net Sb_util
