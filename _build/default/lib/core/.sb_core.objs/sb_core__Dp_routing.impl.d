lib/core/dp_routing.ml: Array Float Hashtbl List Load_state Model Routing Sb_net Sb_util
