lib/core/eval.mli: Model Result Routing
