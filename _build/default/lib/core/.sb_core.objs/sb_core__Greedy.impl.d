lib/core/greedy.ml: Array Dp_routing Float List Load_state Model Routing Sb_net
