lib/core/capacity.mli: Model Result
