lib/core/spec.ml: Array Buffer Hashtbl List Model Printf Sb_net String
