lib/core/model.mli: Sb_net
