(** VNF capacity planning: deployment-site hints (Sections 4.2-4.3,
    Fig. 13c).

    Given a number of new sites to open per VNF, suggest placements that
    minimize aggregate chain latency. The paper formulates a MIP; at our
    scale a demand-weighted greedy scores each candidate site by the
    latency reduction it offers the chains that traverse the VNF, which is
    the same hint the MIP's LP relaxation prices. The {!random} baseline
    picks new sites uniformly. Both return an extended model; callers
    evaluate by re-routing (e.g. with {!Dp_routing.solve}) and comparing
    mean latency. *)

val suggest : Model.t -> new_sites_per_vnf:int -> Model.t
(** Greedy latency-driven placement. New deployments get capacity equal to
    the mean capacity of the VNF's existing deployments. *)

val random : rng:Sb_util.Rng.t -> Model.t -> new_sites_per_vnf:int -> Model.t
(** Baseline: uniformly random new sites (same capacity rule). *)

val mip : ?max_nodes:int -> Model.t -> new_sites_per_vnf:int -> Model.t option
(** Exact MIP placement on small instances: binary site-open variables
    layered over the chain-routing LP, solved by branch-and-bound. [None]
    if the search hits [max_nodes] (default 2000) without an incumbent. *)
