type plan = { allocation : float array; alpha : float }

let optimize m ~budget =
  match Lp_routing.solve ~cloud_budget:budget m Lp_routing.Max_throughput with
  | Error e -> Error e
  | Ok { objective_value; site_extra; _ } ->
    let allocation =
      match site_extra with Some a -> a | None -> Array.make (Model.num_sites m) 0.
    in
    Ok { allocation; alpha = objective_value }

let uniform m ~budget =
  let n = Model.num_sites m in
  let allocation = Array.make n (budget /. float_of_int n) in
  let m' = Model.with_site_capacity_delta m allocation in
  match Lp_routing.solve m' Lp_routing.Max_throughput with
  | Error e -> Error e
  | Ok { objective_value; _ } -> Ok { allocation; alpha = objective_value }
