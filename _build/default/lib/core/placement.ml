(* Detour latency of serving VNF [f] of chain [c] at node [node]: ingress ->
   node -> egress. A cheap, demand-independent proxy for the latency the
   chain would pay to visit that site. *)
let detour m c node =
  let paths = Model.paths m in
  Sb_net.Paths.delay paths (Model.chain_ingress m c) node
  +. Sb_net.Paths.delay paths node (Model.chain_egress m c)

let chain_traffic m c =
  let total = ref 0. in
  for z = 0 to Model.num_stages m c - 1 do
    total := !total +. Model.fwd_traffic m ~chain:c ~stage:z +. Model.rev_traffic m ~chain:c ~stage:z
  done;
  !total

let chains_using m f =
  List.filter
    (fun c -> Array.exists (fun v -> v = f) (Model.chain_vnfs m c))
    (List.init (Model.num_chains m) (fun c -> c))

let mean_existing_capacity m f =
  match Model.vnf_sites m f with
  | [] -> 0.
  | deps ->
    List.fold_left (fun acc (_, c) -> acc +. c) 0. deps /. float_of_int (List.length deps)

let candidate_sites m f =
  let existing = List.map fst (Model.vnf_sites m f) in
  List.filter
    (fun s -> not (List.mem s existing))
    (List.init (Model.num_sites m) (fun s -> s))

let suggest m ~new_sites_per_vnf =
  let extra = ref [] in
  for f = 0 to Model.num_vnfs m - 1 do
    let users = chains_using m f in
    let best_existing c =
      List.fold_left
        (fun acc (s, _) -> Float.min acc (detour m c (Model.site_node m s)))
        infinity (Model.vnf_sites m f)
    in
    let score s =
      let node = Model.site_node m s in
      List.fold_left
        (fun acc c ->
          acc +. (chain_traffic m c *. Float.max 0. (best_existing c -. detour m c node)))
        0. users
    in
    let ranked =
      candidate_sites m f
      |> List.map (fun s -> (s, score s))
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    let cap = mean_existing_capacity m f in
    List.iteri
      (fun i (s, _) -> if i < new_sites_per_vnf then extra := (f, s, cap) :: !extra)
      ranked
  done;
  Model.with_extra_deployments m !extra

let random ~rng m ~new_sites_per_vnf =
  let extra = ref [] in
  for f = 0 to Model.num_vnfs m - 1 do
    let candidates = Array.of_list (candidate_sites m f) in
    Sb_util.Rng.shuffle rng candidates;
    let cap = mean_existing_capacity m f in
    Array.iteri
      (fun i s -> if i < new_sites_per_vnf then extra := (f, s, cap) :: !extra)
      candidates
  done;
  Model.with_extra_deployments m !extra

(* Exact placement on a simplified facility-location MIP: for each VNF,
   fractions y_{c,s} of each using chain's demand served at site s, with
   detour-latency costs, per-deployment capacity, and binary open variables
   w_{f,s} (the paper's Section 4.3 MIP, with routing collapsed to the
   ingress->site->egress detour). *)
let mip ?(max_nodes = 2000) m ~new_sites_per_vnf =
  let module Lp = Sb_lp.Lp in
  let p = Lp.create ~name:"vnf_placement" () in
  let opens = Hashtbl.create 64 in
  let obj = ref [] in
  for f = 0 to Model.num_vnfs m - 1 do
    let users = chains_using m f in
    let cap = mean_existing_capacity m f in
    let candidates = candidate_sites m f in
    let w_vars =
      List.map
        (fun s ->
          let w = Lp.add_var p ~ub:1. ~integer:true (Printf.sprintf "w_f%d_s%d" f s) in
          Hashtbl.replace opens (f, s) w;
          (s, w))
        candidates
    in
    Lp.add_constraint p
      (List.map (fun (_, w) -> (1., w)) w_vars)
      Lp.Le
      (float_of_int new_sites_per_vnf);
    (* Each using chain splits its demand between existing sites and open
       candidates; candidate service requires the site to be open. *)
    List.iter
      (fun c ->
        let demand = chain_traffic m c in
        let existing =
          List.map
            (fun (s, site_cap) ->
              let y = Lp.add_var p (Printf.sprintf "y_c%d_f%d_s%d" c f s) in
              Lp.add_constraint p [ (demand, y) ] Lp.Le site_cap;
              obj := (demand *. detour m c (Model.site_node m s), y) :: !obj;
              (1., y))
            (Model.vnf_sites m f)
        in
        let fresh =
          List.map
            (fun (s, w) ->
              let y = Lp.add_var p (Printf.sprintf "y_c%d_f%d_s%d" c f s) in
              Lp.add_constraint p [ (1., y); (-1., w) ] Lp.Le 0.;
              Lp.add_constraint p [ (demand, y) ] Lp.Le (Float.max cap 1e-9);
              obj := (demand *. detour m c (Model.site_node m s), y) :: !obj;
              (1., y))
            w_vars
        in
        Lp.add_constraint p (existing @ fresh) Lp.Eq 1.)
      users
  done;
  Lp.set_objective p Lp.Minimize !obj;
  match Sb_lp.Mip.solve ~max_nodes p with
  | Sb_lp.Mip.Optimal sol | Sb_lp.Mip.Node_limit (Some sol) ->
    let extra = ref [] in
    Hashtbl.iter
      (fun (f, s) w ->
        if Lp.value sol w > 0.5 then extra := (f, s, mean_existing_capacity m f) :: !extra)
      opens;
    Some (Model.with_extra_deployments m !extra)
  | Sb_lp.Mip.Infeasible | Sb_lp.Mip.Unbounded | Sb_lp.Mip.Node_limit None -> None
