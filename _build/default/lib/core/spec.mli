(** Textual scenario files for Switchboard.

    The paper's prototype defines its network model in YANG with JSON data
    (Section 4.5). This module provides the equivalent declarative input: a
    small line-oriented format from which a complete {!Model.t} is built,
    used by the CLI and the examples. Lines are directives; ['#'] starts a
    comment; names are resolved in order, so nodes must precede links, and
    VNFs their deployments:

    {v
    # a CPE, an edge cloud and a core cloud
    node cpe 0 0                 # name x y
    node edge 300 120
    duplex cpe edge 10 0.005     # bandwidth delay (adds both directions)
    site edge 40                 # node capacity
    vnf firewall 1.0             # name cpu_per_unit
    deploy firewall edge 20      # vnf site-node capacity
    chain web cpe edge 2.0 1.0 firewall   # name ingress egress fwd rev vnfs...
    chainm up o1:2,o2:1 hq:1 2.0 1.0 firewall
                                 # multi-endpoint chain: node:share lists
    beta 0.9                     # optional MLU limit
    v} *)

val parse : string -> (Model.t, string) result
(** Build a model from file contents. Errors carry the offending line
    number. *)

val load_file : string -> (Model.t, string) result

val to_string : Model.t -> string
(** Render a model back to the format (round-trips through {!parse} up to
    ECMP-irrelevant ordering); handy for exporting synthesized workloads. *)
