type params = {
  num_vnfs : int;
  coverage : float;
  cpu_per_unit : float;
  num_chains : int;
  min_chain_len : int;
  max_chain_len : int;
  site_capacity : float;
  total_traffic : float;
  background_ratio : float;
  reverse_fraction : float;
  beta : float;
}

let default =
  {
    num_vnfs = 12;
    coverage = 0.5;
    cpu_per_unit = 1.0;
    num_chains = 24;
    min_chain_len = 3;
    max_chain_len = 5;
    site_capacity = 100.;
    total_traffic = 30.;
    background_ratio = 0.25;
    reverse_fraction = 0.5;
    beta = 1.0;
  }

let synthesize ~rng topo p =
  if p.coverage <= 0. || p.coverage > 1. then invalid_arg "Workload: coverage out of (0,1]";
  if p.min_chain_len < 1 || p.max_chain_len < p.min_chain_len then
    invalid_arg "Workload: bad chain length range";
  if p.num_vnfs < p.max_chain_len then
    invalid_arg "Workload: catalog smaller than max chain length";
  let n = Sb_net.Topology.num_nodes topo in
  let b = Model.builder topo in
  (* Sites: one per node, homogeneous capacity. *)
  let sites = Array.init n (fun node -> Model.add_site b ~node ~capacity:p.site_capacity) in
  let num_sites = Array.length sites in
  (* VNF catalog: each at a random coverage-fraction of sites. *)
  let per_vnf_sites = max 1 (int_of_float (Float.round (p.coverage *. float_of_int num_sites))) in
  let vnfs =
    Array.init p.num_vnfs (fun i ->
        Model.add_vnf b ~name:(Printf.sprintf "vnf%d" i) ~cpu_per_unit:p.cpu_per_unit)
  in
  let vnf_site_sets =
    Array.map
      (fun _ -> Sb_util.Rng.sample_without_replacement rng per_vnf_sites num_sites)
      vnfs
  in
  (* A site's capacity is divided equally among the VNFs present there. *)
  let vnfs_at_site = Array.make num_sites 0 in
  Array.iter (List.iter (fun s -> vnfs_at_site.(s) <- vnfs_at_site.(s) + 1)) vnf_site_sets;
  Array.iteri
    (fun f site_set ->
      List.iter
        (fun s ->
          let share = p.site_capacity /. float_of_int vnfs_at_site.(s) in
          Model.deploy b ~vnf:vnfs.(f) ~site:s ~capacity:share)
        site_set)
    vnf_site_sets;
  (* Gravity masses size chain traffic at their ingress. *)
  let tm = Sb_net.Traffic.gravity ~rng ~n ~total:p.total_traffic in
  (* Chains: random endpoints, 3-5 VNFs in globally consistent (id) order. *)
  let raw =
    Array.init p.num_chains (fun _ ->
        let ingress = Sb_util.Rng.int rng n in
        let egress =
          let rec pick () =
            let e = Sb_util.Rng.int rng n in
            if e = ingress then pick () else e
          in
          pick ()
        in
        let len =
          p.min_chain_len + Sb_util.Rng.int rng (p.max_chain_len - p.min_chain_len + 1)
        in
        let chosen = Sb_util.Rng.sample_without_replacement rng len p.num_vnfs in
        let chain_vnfs = List.sort compare chosen in
        (ingress, egress, chain_vnfs, Sb_net.Traffic.node_mass tm ingress))
  in
  let mass_total = Array.fold_left (fun acc (_, _, _, w) -> acc +. w) 0. raw in
  Array.iteri
    (fun i (ingress, egress, chain_vnfs, w) ->
      let fwd =
        if mass_total > 0. then w /. mass_total *. p.total_traffic
        else p.total_traffic /. float_of_int p.num_chains
      in
      ignore
        (Model.add_chain b
           ~name:(Printf.sprintf "chain%d" i)
           ~ingress ~egress ~vnfs:chain_vnfs ~fwd
           ~rev:(fwd *. p.reverse_fraction)
           ()))
    raw;
  (* Background traffic: a second gravity matrix routed over shortest paths. *)
  let bg_total = p.background_ratio *. p.total_traffic in
  let paths = Sb_net.Paths.compute topo in
  let bg_loads = Sb_net.Load.create topo paths in
  let bg_tm = Sb_net.Traffic.gravity ~rng ~n ~total:bg_total in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && bg_tm.(i).(j) > 0. then
        Sb_net.Load.add_flow bg_loads ~src:i ~dst:j ~volume:bg_tm.(i).(j)
    done
  done;
  Model.finalize b ~beta:p.beta ~background:(fun e -> Sb_net.Load.link_load bg_loads e) ()
