let default_util_weight = 0.05

(* Candidate nodes for element [z] of a chain (0 = ingress, L+1 = egress). *)
let element_nodes m chain ~ingress ~egress z =
  let len = Model.chain_length m chain in
  if z = 0 then [ ingress ]
  else if z = len + 1 then [ egress ]
  else Model.stage_dst_nodes m ~chain ~stage:(z - 1)

let best_path ?ingress ?egress state ~util_weight ~chain =
  let m = Load_state.model state in
  let ingress = match ingress with Some i -> i | None -> Model.chain_ingress m chain in
  let egress = match egress with Some e -> e | None -> Model.chain_egress m chain in
  let len = Model.chain_length m chain in
  (* cost.(z) : (node, best cost, parent node) list for element z *)
  let table = Array.make (len + 2) [] in
  table.(0) <- [ (ingress, 0., -1) ];
  for z = 1 to len + 1 do
    table.(z) <-
      List.map
        (fun node ->
          let best =
            List.fold_left
              (fun (bc, bp) (prev_node, prev_cost, _) ->
                if prev_cost = infinity then (bc, bp)
                else
                  let c =
                    prev_cost
                    +. Load_state.stage_cost state ~util_weight ~chain ~stage:(z - 1)
                         ~src:prev_node ~dst:node
                  in
                  if c < bc then (c, prev_node) else (bc, bp))
              (infinity, -1)
              table.(z - 1)
          in
          (node, fst best, snd best))
        (element_nodes m chain ~ingress ~egress z)
  done;
  (* Walk parents back from the egress. *)
  match table.(len + 1) with
  | [ (egress, cost, parent) ] when cost < infinity ->
    let nodes = Array.make (len + 2) egress in
    let rec back z node =
      nodes.(z) <- node;
      if z > 0 then
        let _, _, parent =
          List.find (fun (n, _, _) -> n = node) table.(z)
        in
        back (z - 1) parent
    in
    back len parent;
    nodes.(len + 1) <- egress;
    Some nodes
  | _ -> None

(* Largest fraction of the chain the path can carry within remaining link,
   site, and deployment capacities. Demand is accumulated per resource over
   the whole path first (a VNF is charged on both its inbound and outbound
   stages per Eq. 4, and a link may carry several stages), then the binding
   resource determines the fraction. *)
let path_headroom state chain nodes =
  let m = Load_state.model state in
  let topo = Model.topology m in
  let paths = Model.paths m in
  let link_demand = Hashtbl.create 16 in
  let vnf_demand = Hashtbl.create 8 in
  let site_demand = Hashtbl.create 8 in
  let bump tbl key amount =
    let cur = try Hashtbl.find tbl key with Not_found -> 0. in
    Hashtbl.replace tbl key (cur +. amount)
  in
  let charge_compute vnf_opt node volume =
    match (vnf_opt, Model.site_of_node m node) with
    | Some f, Some s ->
      let load = Model.vnf_cpu_per_unit m f *. volume in
      bump vnf_demand (f, s) load;
      bump site_demand s load
    | _ -> ()
  in
  for z = 0 to Array.length nodes - 2 do
    let src = nodes.(z) and dst = nodes.(z + 1) in
    let w = Model.fwd_traffic m ~chain ~stage:z in
    let v = Model.rev_traffic m ~chain ~stage:z in
    List.iter
      (fun (e, frac) -> bump link_demand e (w *. frac))
      (Sb_net.Paths.fractions paths ~src ~dst);
    List.iter
      (fun (e, frac) -> bump link_demand e (v *. frac))
      (Sb_net.Paths.fractions paths ~src:dst ~dst:src);
    let src_vnf = if z = 0 then None else Model.stage_dst_vnf m ~chain ~stage:(z - 1) in
    charge_compute src_vnf src (w +. v);
    charge_compute (Model.stage_dst_vnf m ~chain ~stage:z) dst (w +. v)
  done;
  let cap = ref infinity in
  let consider room per_unit =
    if per_unit > 1e-12 then cap := Float.min !cap (room /. per_unit)
  in
  Hashtbl.iter
    (fun e demand ->
      let l = Sb_net.Topology.link topo e in
      let room =
        (Model.beta m *. l.bandwidth) -. Model.background m e
        -. Load_state.link_sb_load state e
      in
      consider room demand)
    link_demand;
  Hashtbl.iter
    (fun (f, s) demand ->
      consider
        (Model.vnf_site_capacity m ~vnf:f ~site:s -. Load_state.vnf_load state ~vnf:f ~site:s)
        demand)
    vnf_demand;
  Hashtbl.iter
    (fun s demand ->
      consider (Model.site_capacity m s -. Load_state.site_load state s) demand)
    site_demand;
  Float.max 0. !cap

let commit state chain nodes frac =
  for z = 0 to Array.length nodes - 2 do
    Load_state.add_stage_flow state ~chain ~stage:z ~src:nodes.(z) ~dst:nodes.(z + 1)
      ~frac
  done

let chain_order ?rng m =
  let order = Array.init (Model.num_chains m) (fun c -> c) in
  (match rng with Some r -> Sb_util.Rng.shuffle r order | None -> ());
  order

let min_split = 0.02

(* Route one (ingress, egress) pair of a chain, carrying [share] of the
   chain's traffic; splits across successive least-cost routes as capacity
   runs out (Section 4.4). *)
let route_pair state routing ~util_weight ~max_routes chain ~ingress ~egress ~share =
  let rec go remaining routes_left =
    if remaining > 1e-9 then
      match best_path ~ingress ~egress state ~util_weight ~chain with
      | None -> () (* unroutable chain: leave unrouted; validate will flag *)
      | Some nodes ->
        let headroom = if util_weight = 0. then remaining else path_headroom state chain nodes in
        let frac =
          if routes_left <= 1 || headroom >= remaining -. 1e-9 || headroom < min_split
          then remaining (* last route, enough room, or saturated: take it all *)
          else Float.min remaining headroom
        in
        Routing.add_path routing ~chain ~nodes ~frac;
        commit state chain nodes frac;
        go (remaining -. frac) (routes_left - 1)
  in
  go share max_routes

let route_chain state routing ~util_weight ~max_routes chain =
  let m = Load_state.model state in
  List.iter
    (fun (ingress, ishare) ->
      List.iter
        (fun (egress, eshare) ->
          route_pair state routing ~util_weight ~max_routes chain ~ingress ~egress
            ~share:(ishare *. eshare))
        (Model.chain_egresses m chain))
    (Model.chain_ingresses m chain)

let solve ?(util_weight = default_util_weight) ?(max_routes = 8) ?rng m =
  let state = Load_state.create m in
  let routing = Routing.create m in
  Array.iter
    (fun c -> route_chain state routing ~util_weight ~max_routes c)
    (chain_order ?rng m);
  routing

let dp_latency ?rng m = solve ~util_weight:0. ~max_routes:1 ?rng m
