type scheme = Anycast | Compute_aware | Onehop | Dp_latency | Sb_dp | Sb_lp

let scheme_name = function
  | Anycast -> "ANYCAST"
  | Compute_aware -> "COMPUTE-AWARE"
  | Onehop -> "ONEHOP"
  | Dp_latency -> "DP-LATENCY"
  | Sb_dp -> "SB-DP"
  | Sb_lp -> "SB-LP"

let all_schemes = [ Anycast; Compute_aware; Onehop; Dp_latency; Sb_dp; Sb_lp ]

let route_heuristic ?(seed = 1) m = function
  | Anycast -> Greedy.anycast m
  | Compute_aware -> Greedy.compute_aware m
  | Onehop -> Greedy.onehop m
  | Dp_latency -> Dp_routing.dp_latency ~rng:(Sb_util.Rng.create seed) m
  | Sb_dp -> Dp_routing.solve ~rng:(Sb_util.Rng.create seed) m
  | Sb_lp -> invalid_arg "route_heuristic: Sb_lp"

let route ?seed m scheme =
  match scheme with
  | Sb_lp -> (
    match Lp_routing.solve m Lp_routing.Min_latency with
    | Ok { routing; _ } -> Ok routing
    | Error _ -> (
      (* Demand exceeds capacity: fall back to the throughput objective. *)
      match Lp_routing.solve m Lp_routing.Max_throughput with
      | Ok { routing; _ } -> Ok routing
      | Error e -> Error e))
  | s -> Ok (route_heuristic ?seed m s)

(* Does the scheme sustain demand scaled by [factor]? Load-aware schemes
   re-route the scaled model, so the supported alpha of the resulting
   routing must reach 1. *)
let sustains ?seed m scheme factor =
  let scaled = Model.with_scaled_traffic m factor in
  let r = route_heuristic ?seed scaled scheme in
  Routing.max_alpha r >= 1. -. 1e-9

let max_load_factor ?seed ?(tol = 0.02) m scheme =
  match scheme with
  | Sb_lp -> (
    match Lp_routing.solve m Lp_routing.Max_throughput with
    | Ok { objective_value; _ } -> objective_value
    | Error _ -> 0.)
  | Anycast | Dp_latency ->
    (* Load-oblivious: the routing is scale-invariant, so the supported
       alpha of the unit routing is the answer. *)
    Routing.max_alpha (route_heuristic ?seed m scheme)
  | Compute_aware | Onehop | Sb_dp ->
    if not (sustains ?seed m scheme 1e-6) then 0.
    else begin
      (* Grow an upper bound, then bisect. *)
      let lo = ref 1e-6 and hi = ref 1. in
      let guard = ref 0 in
      while sustains ?seed m scheme !hi && !guard < 40 do
        lo := !hi;
        hi := !hi *. 2.;
        incr guard
      done;
      if !guard >= 40 then !hi
      else begin
        while (!hi -. !lo) /. !hi > tol do
          let mid = (!lo +. !hi) /. 2. in
          if sustains ?seed m scheme mid then lo := mid else hi := mid
        done;
        !lo
      end
    end

let throughput ?seed m scheme = max_load_factor ?seed m scheme *. Model.total_demand m

(* VNF service time used in the latency metric: fast packet-processing
   functions, so queueing matters near saturation without drowning WAN
   propagation delays. *)
let metric_service_time = 0.0002

let latency ?seed ~load m scheme =
  let scaled = Model.with_scaled_traffic m load in
  match scheme with
  | Sb_lp -> (
    (* The latency objective is blind to queueing, so give the LP a 20%
       compute-capacity margin; the resulting routing never loads a
       deployment beyond ~80%, like an operator would configure. *)
    let margin = Array.init (Model.num_sites m) (fun s -> -0.2 *. Model.site_capacity m s) in
    let constrained = Model.with_site_capacity_delta scaled margin in
    match Lp_routing.solve constrained Lp_routing.Min_latency with
    | Ok { routing; _ } ->
      (* Evaluate against the true capacities, not the planning margin. *)
      let on_true_model = Routing.create scaled in
      for c = 0 to Model.num_chains scaled - 1 do
        for z = 0 to Model.num_stages scaled c - 1 do
          Routing.set_stage on_true_model ~chain:c ~stage:z
            (Routing.stage_flows routing ~chain:c ~stage:z)
        done
      done;
      Routing.mean_latency ~vnf_service_time:metric_service_time on_true_model
    | Error _ -> infinity)
  | s ->
    Routing.mean_latency ~vnf_service_time:metric_service_time
      (route_heuristic ?seed scaled s)
