module Model = Sb_core.Model
module Routing = Sb_core.Routing

type result = {
  total_throughput : float;
  mean_rtt : float;
  per_chain : (float * float) list;
}

(* A TCP connection's rate through a VNF consumes compute on both its
   inbound and outbound halves (Eq. 4), hence the factor 2. *)
let vnf_rate_capacity m ~vnf ~site =
  Model.vnf_site_capacity m ~vnf ~site /. (2. *. Model.vnf_cpu_per_unit m vnf)

let evaluate ?(flows_per_chain = 16) ?(window_rtt_cap = 2.0) ?(vnf_service_time = 0.001)
    routing =
  let m = Routing.model routing in
  let topo = Model.topology m in
  let paths = Model.paths m in
  let mm = Maxmin.create () in
  (* Wide-area link resources (headroom after background traffic). *)
  let link_res =
    Array.init (Sb_net.Topology.num_links topo) (fun e ->
        let l = Sb_net.Topology.link topo e in
        let headroom = (Model.beta m *. l.bandwidth) -. Model.background m e in
        if headroom > 1e-9 then Some (Maxmin.add_resource mm ~capacity:headroom)
        else None)
  in
  (* VNF deployment resources. *)
  let vnf_res = Hashtbl.create 16 in
  for f = 0 to Model.num_vnfs m - 1 do
    List.iter
      (fun (s, _) ->
        let cap = vnf_rate_capacity m ~vnf:f ~site:s in
        if cap > 1e-9 then
          Hashtbl.replace vnf_res (f, s) (Maxmin.add_resource mm ~capacity:cap))
      (Model.vnf_sites m f)
  done;
  (* One max-min flow per TCP connection; remember (chain, rtt, vnf passes). *)
  let flow_meta = ref [] in
  let nflows = ref 0 in
  for c = 0 to Model.num_chains m - 1 do
    let chain_paths = Routing.decompose_paths routing ~chain:c in
    List.iter
      (fun (nodes, frac) ->
        if frac > 1e-6 then begin
          let count =
            max 1 (int_of_float (Float.round (float_of_int flows_per_chain *. frac)))
          in
          (* Links and VNFs this path traverses, and its propagation RTT. *)
          let resources = ref [] in
          let vnf_passes = ref [] in
          let prop = ref 0. in
          for z = 0 to Array.length nodes - 2 do
            let src = nodes.(z) and dst = nodes.(z + 1) in
            prop := !prop +. Sb_net.Paths.delay paths src dst;
            List.iter
              (fun (e, f) ->
                (* Charge the links that carry the bulk of the hop's
                   traffic; minor ECMP slivers are ignored. *)
                if f > 0.25 then
                  match link_res.(e) with
                  | Some r -> resources := r :: !resources
                  | None -> ())
              (Sb_net.Paths.fractions paths ~src ~dst);
            match (Model.stage_dst_vnf m ~chain:c ~stage:z, Model.site_of_node m dst) with
            | Some f, Some s -> (
              vnf_passes := (f, s) :: !vnf_passes;
              match Hashtbl.find_opt vnf_res (f, s) with
              | Some r -> resources := r :: !resources
              | None -> ())
            | _ -> ()
          done;
          let rtt = 2. *. !prop in
          let demand = if rtt > 1e-9 then window_rtt_cap /. rtt else infinity in
          for _ = 1 to count do
            let id = Maxmin.add_flow mm ~demand !resources in
            flow_meta := (id, c, rtt, !vnf_passes) :: !flow_meta;
            incr nflows
          done
        end)
      chain_paths
  done;
  let rates = Maxmin.solve mm in
  (* Queueing at hot deployments, from the realized utilizations. *)
  let util = Hashtbl.create 16 in
  Hashtbl.iter
    (fun key r -> Hashtbl.replace util key (Maxmin.resource_utilization mm rates r))
    vnf_res;
  let queue_delay key =
    match Hashtbl.find_opt util key with
    | None -> 0.
    | Some u ->
      let u = Float.min u 0.98 in
      vnf_service_time *. u /. (1. -. u)
  in
  let chain_tput = Array.make (Model.num_chains m) 0. in
  let chain_rtt = Array.make (Model.num_chains m) 0. in
  let chain_flows = Array.make (Model.num_chains m) 0 in
  List.iter
    (fun (id, c, rtt, passes) ->
      let q = List.fold_left (fun acc key -> acc +. (2. *. queue_delay key)) 0. passes in
      chain_tput.(c) <- chain_tput.(c) +. rates.(id);
      chain_rtt.(c) <- chain_rtt.(c) +. rtt +. q;
      chain_flows.(c) <- chain_flows.(c) + 1)
    !flow_meta;
  let per_chain =
    List.init (Model.num_chains m) (fun c ->
        ( chain_tput.(c),
          if chain_flows.(c) = 0 then 0. else chain_rtt.(c) /. float_of_int chain_flows.(c) ))
  in
  let total_rtt = Array.fold_left ( +. ) 0. chain_rtt in
  {
    total_throughput = Maxmin.total_rate rates;
    mean_rtt = (if !nflows = 0 then 0. else total_rtt /. float_of_int !nflows);
    per_chain;
  }
