lib/flowsim/maxmin.mli:
