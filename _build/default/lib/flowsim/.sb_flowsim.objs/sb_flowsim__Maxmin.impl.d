lib/flowsim/maxmin.ml: Array Float List
