lib/flowsim/e2e.ml: Array Float Hashtbl List Maxmin Sb_core Sb_net
