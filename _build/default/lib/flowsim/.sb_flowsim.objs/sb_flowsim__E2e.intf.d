lib/flowsim/e2e.mli: Sb_core
