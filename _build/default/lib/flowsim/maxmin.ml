type t = {
  mutable capacities : float list; (* reverse order *)
  mutable nres : int;
  mutable flows : (float * int list) list; (* (demand, resources), reverse *)
  mutable nflows : int;
}

let create () = { capacities = []; nres = 0; flows = []; nflows = 0 }

let add_resource t ~capacity =
  if capacity <= 0. then invalid_arg "Maxmin.add_resource: non-positive capacity";
  let id = t.nres in
  t.capacities <- capacity :: t.capacities;
  t.nres <- id + 1;
  id

let add_flow t ?(demand = infinity) resources =
  List.iter
    (fun r -> if r < 0 || r >= t.nres then invalid_arg "Maxmin.add_flow: unknown resource")
    resources;
  let id = t.nflows in
  t.flows <- (demand, List.sort_uniq compare resources) :: t.flows;
  t.nflows <- id + 1;
  id

(* Progressive filling. *)
let solve t =
  let caps = Array.of_list (List.rev t.capacities) in
  let flows = Array.of_list (List.rev t.flows) in
  let n = Array.length flows in
  let rates = Array.make n 0. in
  let frozen = Array.make n false in
  let remaining = Array.copy caps in
  let active_on r =
    let count = ref 0 in
    Array.iteri
      (fun i (_, res) -> if (not frozen.(i)) && List.mem r res then incr count)
      flows;
    !count
  in
  let continue = ref true in
  while !continue do
    (* Smallest increment that saturates a resource or meets a demand. *)
    let best = ref infinity in
    for r = 0 to Array.length caps - 1 do
      let k = active_on r in
      if k > 0 then best := Float.min !best (remaining.(r) /. float_of_int k)
    done;
    Array.iteri
      (fun i (demand, _) ->
        if not frozen.(i) then best := Float.min !best (demand -. rates.(i)))
      flows;
    if !best = infinity || !best < 0. then begin
      (* Unconstrained flows remain (no capped resource, no demand). *)
      continue := false
    end
    else begin
      let inc = !best in
      (* Grow all active flows by [inc], charge resources. *)
      Array.iteri
        (fun i (_, res) ->
          if not frozen.(i) then begin
            rates.(i) <- rates.(i) +. inc;
            List.iter (fun r -> remaining.(r) <- remaining.(r) -. inc) res
          end)
        flows;
      (* Freeze flows on saturated resources or at their demand. *)
      Array.iteri
        (fun i (demand, res) ->
          if not frozen.(i) then
            if rates.(i) >= demand -. 1e-12 then frozen.(i) <- true
            else if List.exists (fun r -> remaining.(r) <= 1e-9) res then
              frozen.(i) <- true)
        flows;
      if Array.for_all (fun f -> f) frozen || n = 0 then continue := false
    end
  done;
  rates

let rate _t rates i = rates.(i)
let total_rate rates = Array.fold_left ( +. ) 0. rates

let resource_utilization t rates r =
  let caps = Array.of_list (List.rev t.capacities) in
  let flows = Array.of_list (List.rev t.flows) in
  let load = ref 0. in
  Array.iteri (fun i (_, res) -> if List.mem r res then load := !load +. rates.(i)) flows;
  !load /. caps.(r)
