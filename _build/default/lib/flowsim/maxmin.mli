(** Max-min fair rate allocation — the fluid model of competing TCP flows
    used for the end-to-end throughput comparisons (Section 7.2, Figs. 10b
    and 11b).

    Flows traverse sets of capacitated resources (wide-area links, VNF
    instances). Progressive filling: all flows grow at the same rate; when
    a resource saturates, the flows through it freeze at the fair share and
    filling continues for the rest. *)

type t

val create : unit -> t

val add_resource : t -> capacity:float -> int
(** Returns the resource id. Raises [Invalid_argument] if
    [capacity <= 0]. *)

val add_flow : t -> ?demand:float -> int list -> int
(** [add_flow t resources] adds a flow through the given resources and
    returns its flow id. [demand] (default unlimited) caps the flow's
    rate. *)

val solve : t -> float array
(** Per-flow max-min fair rates, indexed by flow id. *)

val rate : t -> float array -> int -> float
val total_rate : float array -> float

val resource_utilization : t -> float array -> int -> float
(** Load/capacity of a resource under an allocation. *)
