(** Flow-level end-to-end evaluation of a chain routing (Section 7.2,
    Fig. 11): the TCP throughput and round-trip latency that clients behind
    each chain would observe.

    Each chain's routed fraction is decomposed into paths; every path
    carries a population of TCP connections. Connections compete max-min
    fairly for wide-area link capacity and VNF instance capacity; a
    connection's rate is additionally capped by its window/RTT product
    (long-RTT detours earn less throughput — why Compute-Aware trails on
    the paper's AWS testbed). Reported latency is the flow-weighted mean
    RTT: twice the path's propagation delay plus an M/M/1-style queueing
    term at each VNF whose deployment runs hot. *)

type result = {
  total_throughput : float;  (** sum of allocated rates, traffic units/s *)
  mean_rtt : float;  (** flow-weighted, seconds *)
  per_chain : (float * float) list;  (** (throughput, mean RTT) per chain *)
}

val evaluate :
  ?flows_per_chain:int ->
  ?window_rtt_cap:float ->
  ?vnf_service_time:float ->
  Sb_core.Routing.t ->
  result
(** [flows_per_chain] (default 16) connections per chain, spread over its
    paths proportionally to path fractions. [window_rtt_cap] (default 2.0)
    is the per-flow window product: a flow's rate is at most
    [window_rtt_cap /. rtt]. [vnf_service_time] (default 1 ms) drives the
    queueing term. *)
