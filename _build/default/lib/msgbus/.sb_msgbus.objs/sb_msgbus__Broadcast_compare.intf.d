lib/msgbus/broadcast_compare.mli: Bus
