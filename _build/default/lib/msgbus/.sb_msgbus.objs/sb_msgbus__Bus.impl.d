lib/msgbus/bus.ml: Array Float Hashtbl List Sb_sim
