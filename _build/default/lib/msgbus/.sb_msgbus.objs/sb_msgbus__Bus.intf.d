lib/msgbus/bus.mli: Sb_sim
