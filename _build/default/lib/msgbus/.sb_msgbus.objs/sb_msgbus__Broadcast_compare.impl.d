lib/msgbus/broadcast_compare.ml: Bus Sb_sim Sb_util
