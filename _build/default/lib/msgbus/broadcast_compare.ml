type setup = {
  num_sites : int;
  subscribers_per_site : int;
  wan_delay : float;
  egress_rate : float;
  buffer : int;
  duration : float;
}

let default_setup =
  {
    num_sites = 11;
    subscribers_per_site = 8;
    wan_delay = 0.050;
    egress_rate = 2000.;
    buffer = 1024;
    duration = 10.;
  }

type result = {
  offered_rate : float;
  goodput : float;
  drop_fraction : float;
  median_latency : float;
  p99_latency : float;
  wan_messages : int;
}

let run setup ~mode ~rate =
  let eng = Sb_sim.Engine.create () in
  let delay s1 s2 = if s1 = s2 then 0. else setup.wan_delay in
  let bus =
    Bus.create eng ~mode ~num_sites:setup.num_sites ~delay
      ~egress_rate:setup.egress_rate ~buffer:setup.buffer ()
  in
  let topic = "/c1/e3/vnf_O/site_0_forwarders" in
  for site = 1 to setup.num_sites - 1 do
    for _ = 1 to setup.subscribers_per_site do
      Bus.subscribe bus ~site ~topic (fun () -> ())
    done
  done;
  (* Warm-up lets the subscription filters reach the publisher's proxy. *)
  let warmup = (2. *. setup.wan_delay) +. 0.1 in
  let n_msgs = int_of_float (rate *. setup.duration) in
  for i = 0 to n_msgs - 1 do
    let time = warmup +. (float_of_int i /. rate) in
    ignore
      (Sb_sim.Engine.schedule_at eng ~time (fun () ->
           Bus.publish bus ~site:0 ~topic ()))
  done;
  Sb_sim.Engine.run eng;
  let stats = Bus.stats bus in
  let n_subs = (setup.num_sites - 1) * setup.subscribers_per_site in
  let attempted = stats.Bus.wan_messages + stats.Bus.dropped in
  {
    offered_rate = rate;
    goodput = float_of_int stats.Bus.delivered /. float_of_int n_subs /. setup.duration;
    drop_fraction =
      (if attempted = 0 then 0.
       else float_of_int stats.Bus.dropped /. float_of_int attempted);
    median_latency =
      (if stats.Bus.latencies = [] then nan else Sb_util.Stats.median stats.Bus.latencies);
    p99_latency =
      (if stats.Bus.latencies = [] then nan
       else Sb_util.Stats.percentile 99. stats.Bus.latencies);
    wan_messages = stats.Bus.wan_messages;
  }
