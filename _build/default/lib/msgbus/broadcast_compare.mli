(** The message-bus vs full-mesh broadcast experiment (Fig. 9).

    One control-plane publisher (e.g. a VNF controller) at site 0 publishes
    state updates on a topic subscribed to by several consumers at each of
    the other sites, across emulated wide-area delays. Full-mesh sends a
    copy per subscriber and melts its egress (queueing then drops);
    Switchboard sends one copy per site. *)

type setup = {
  num_sites : int;  (** including the publisher's site *)
  subscribers_per_site : int;
  wan_delay : float;  (** uniform one-way inter-site delay, seconds *)
  egress_rate : float;  (** proxy egress, messages/s *)
  buffer : int;  (** proxy egress buffer, messages *)
  duration : float;  (** publishing window, seconds *)
}

val default_setup : setup
(** 10 sites + publisher, 8 subscribers each, 50 ms WAN delay, 2000 msg/s
    egress, 1024-message buffers, 10 s window. *)

type result = {
  offered_rate : float;  (** publish rate, messages/s *)
  goodput : float;  (** per-subscriber deliveries/s *)
  drop_fraction : float;  (** of attempted WAN sends *)
  median_latency : float;
  p99_latency : float;
  wan_messages : int;
}

val run : setup -> mode:Bus.mode -> rate:float -> result
(** Run one publishing rate under one dissemination mode. *)
