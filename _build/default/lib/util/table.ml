type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: arity mismatch with header";
  t.rows <- t.rows @ [ row ]

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%.3g") xs)

let render t =
  let all = t.header :: t.rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    String.concat "  " (List.map2 pad row widths) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row t.header :: sep :: List.map render_row t.rows)

let print t =
  print_string (render t);
  print_newline ()
