let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median xs = percentile 50. xs

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let weighted_mean pairs =
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  if total_w = 0. then 0.
  else List.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0. pairs /. total_w

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  if xs = [] then invalid_arg "Stats.summarize: empty list";
  let mn, mx = min_max xs in
  {
    count = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    p50 = percentile 50. xs;
    p95 = percentile 95. xs;
    p99 = percentile 99. xs;
    max = mx;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
