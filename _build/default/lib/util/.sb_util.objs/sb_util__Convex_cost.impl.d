lib/util/convex_cost.ml:
