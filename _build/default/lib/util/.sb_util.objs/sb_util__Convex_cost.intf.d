lib/util/convex_cost.mli:
