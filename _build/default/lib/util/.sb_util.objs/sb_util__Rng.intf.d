lib/util/rng.mli:
