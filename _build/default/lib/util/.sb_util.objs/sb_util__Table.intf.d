lib/util/table.mli:
