lib/util/table.ml: List Printf String
