lib/util/zipf.ml: Array Rng
