type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let mass = Array.init n (fun i -> 1. /. ((float_of_int i +. 1.) ** s)) in
  let total = Array.fold_left ( +. ) 0. mass in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (mass.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; s; cdf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first index whose CDF exceeds u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if rank = 0 then t.cdf.(0) else t.cdf.(rank) -. t.cdf.(rank - 1)

let n t = t.n
let exponent t = t.s
