(** Piecewise-linear convex congestion cost, after Fortz & Thorup
    ("Internet traffic engineering by optimizing OSPF weights",
    INFOCOM 2000), used by SB-DP as the network- and compute-utilization
    cost (paper Section 4.4: "a piecewise-linear convex function that
    increases exponentially with utilization at values above 0.5"). *)

val cost : float -> float
(** [cost u] evaluates the Fortz–Thorup penalty at utilization [u >= 0.].
    The function is increasing and convex: slope 1 on [\[0, 1/3)], then 3,
    10, 70, 500, and 5000 beyond utilization 1.1. *)

val marginal_cost : float -> float
(** [marginal_cost u] is the slope of {!cost} at utilization [u]
    (right-derivative at breakpoints). *)

val segment_slopes : (float * float) list
(** [(breakpoint, slope)] pairs: the slope applies from that breakpoint to
    the next. Exposed so the LP formulation can linearize the same cost. *)
