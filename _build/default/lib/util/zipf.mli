(** Zipf-distributed sampling over a finite catalog.

    Used to generate the web-cache workload of Table 3 (Zipf exponent 1.0)
    and skewed traffic matrices. Item ranks are 0-based: rank 0 is the most
    popular item, with probability proportional to [1 / (rank + 1) ** s]. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over [n] items with exponent [s].
    Raises [Invalid_argument] if [n <= 0] or [s < 0.]. *)

val sample : t -> Rng.t -> int
(** Draw a rank in [\[0, n)], inverse-CDF over the precomputed mass. *)

val probability : t -> int -> float
(** [probability t rank] is the exact probability of [rank]. *)

val n : t -> int
val exponent : t -> float
