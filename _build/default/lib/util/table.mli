(** Plain-text table rendering for experiment output.

    The benchmark harness prints every reproduced paper table/figure as an
    aligned text table so shapes can be compared against the paper. *)

type t

val create : header:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the arity differs from the
    header. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] appends a row with [label] followed by each
    float rendered with ["%.3g"]. *)

val render : t -> string
(** Render with aligned columns and a separator under the header. *)

val print : t -> unit
(** [render] then print to stdout with a trailing newline. *)
