(** Small descriptive-statistics toolkit used by experiment harnesses. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty list or [p]
    out of range. *)

val median : float list -> float

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

val weighted_mean : (float * float) list -> float
(** [weighted_mean \[(value, weight); ...\]]; 0. if total weight is 0. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
