(* Classic Fortz–Thorup breakpoints and slopes. *)
let segment_slopes =
  [ (0., 1.); (1. /. 3., 3.); (2. /. 3., 10.); (0.9, 70.); (1.0, 500.); (1.1, 5000.) ]

let marginal_cost u =
  let rec go slope = function
    | [] -> slope
    | (bp, s) :: rest -> if u >= bp then go s rest else slope
  in
  go 1. segment_slopes

let cost u =
  if u < 0. then invalid_arg "Convex_cost.cost: negative utilization";
  (* Integrate the piecewise-constant slope from 0 to u. *)
  let rec go acc prev_bp prev_slope = function
    | [] -> acc +. ((u -. prev_bp) *. prev_slope)
    | (bp, slope) :: rest ->
      if u <= bp then acc +. ((u -. prev_bp) *. prev_slope)
      else go (acc +. ((bp -. prev_bp) *. prev_slope)) bp slope rest
  in
  match segment_slopes with
  | (bp0, s0) :: rest -> go 0. bp0 s0 rest
  | [] -> assert false
