type params = {
  num_chains : int;
  catalog_size : int;
  zipf_exponent : float;
  mean_object_bytes : int;
  total_cache_bytes : int;
  requests : int;
  wan_rtt : float;
  lan_rtt : float;
  link_bandwidth : float;
}

let default_params =
  {
    num_chains = 5;
    catalog_size = 200_000;
    zipf_exponent = 1.0;
    mean_object_bytes = 50_000;
    total_cache_bytes = 160_000_000; (* 160 MB shared; 32 MB per silo *)
    requests = 150_000;
    wan_rtt = 0.060;
    lan_rtt = 0.004;
    link_bandwidth = 4_930_000.; (* ~40 Mbit/s access link *)
  }

type result = { hit_rate : float; mean_download_time : float }

(* Object sizes are deterministic per object id (same content for every
   chain): roughly exponential around the mean, derived from a hash. *)
let object_size p oid =
  let h = (oid * 2654435761) land 0xFFFFFF in
  let u = (float_of_int h +. 1.) /. 16777217. in
  let s = -.log u *. float_of_int p.mean_object_bytes in
  max 256 (int_of_float s)

let download_time p ~hit ~size =
  let transfer = float_of_int size /. p.link_bandwidth in
  if hit then p.lan_rtt +. transfer
  else p.lan_rtt +. p.wan_rtt +. (2. *. transfer)

let run p ~rng ~cache_of_chain ~key_of =
  let zipf = Sb_util.Zipf.create ~n:p.catalog_size ~s:p.zipf_exponent in
  let total_time = ref 0. in
  let hits = ref 0 in
  let total = p.requests * p.num_chains in
  for i = 0 to total - 1 do
    (* Interleave chains round-robin so silos warm up concurrently. *)
    let chain = i mod p.num_chains in
    let oid = Sb_util.Zipf.sample zipf rng in
    let size = object_size p oid in
    let cache = cache_of_chain chain in
    match Lru.access cache ~key:(key_of chain oid) ~size with
    | `Hit ->
      incr hits;
      total_time := !total_time +. download_time p ~hit:true ~size
    | `Miss -> total_time := !total_time +. download_time p ~hit:false ~size
  done;
  {
    hit_rate = float_of_int !hits /. float_of_int total;
    mean_download_time = !total_time /. float_of_int total;
  }

let run_shared ~rng p =
  let cache = Lru.create ~capacity:p.total_cache_bytes in
  run p ~rng ~cache_of_chain:(fun _ -> cache) ~key_of:(fun _ oid -> oid)

let run_siloed ~rng p =
  let caches =
    Array.init p.num_chains (fun _ ->
        Lru.create ~capacity:(p.total_cache_bytes / p.num_chains))
  in
  run p ~rng ~cache_of_chain:(fun c -> caches.(c)) ~key_of:(fun _ oid -> oid)
