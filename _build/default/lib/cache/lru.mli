(** Byte-capacity LRU cache (the web-cache VNF of Section 7.2 / Table 3).

    Models Squid-style object caching: objects have sizes, the cache holds
    at most [capacity] bytes, and the least-recently-used objects are
    evicted to make room. Keys are polymorphic so a shared cache can key by
    object id while siloed caches key per tenant. *)

type 'k t

val create : capacity:int -> 'k t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val access : 'k t -> key:'k -> size:int -> [ `Hit | `Miss ]
(** Look up an object; on miss, insert it (evicting LRU entries as needed;
    objects larger than the whole cache are not cached). Either way the
    object becomes most-recently used. *)

val mem : 'k t -> 'k -> bool
val used_bytes : 'k t -> int
val entry_count : 'k t -> int
val hits : 'k t -> int
val misses : 'k t -> int
val hit_rate : 'k t -> float
(** hits / (hits + misses); 0 before any access. *)

val reset_stats : 'k t -> unit
