lib/cache/lru.ml: Hashtbl
