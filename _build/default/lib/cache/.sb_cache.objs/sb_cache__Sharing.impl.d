lib/cache/sharing.ml: Array Lru Sb_util
