lib/cache/lru.mli:
