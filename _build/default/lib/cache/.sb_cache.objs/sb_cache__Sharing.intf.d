lib/cache/sharing.mli: Sb_util
