(* Doubly-linked recency list + hashtable. *)
type 'k node = {
  key : 'k;
  size : int;
  mutable prev : 'k node option;
  mutable next : 'k node option;
}

type 'k t = {
  capacity : int;
  table : ('k, 'k node) Hashtbl.t;
  mutable head : 'k node option; (* most recently used *)
  mutable tail : 'k node option; (* least recently used *)
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create 1024; head = None; tail = None; used = 0; hits = 0; misses = 0 }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.used <- t.used - n.size

let access t ~key ~size =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_front t n;
    `Hit
  | None ->
    t.misses <- t.misses + 1;
    if size <= t.capacity then begin
      while t.used + size > t.capacity do
        evict_lru t
      done;
      let n = { key; size; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      t.used <- t.used + size
    end;
    `Miss

let mem t k = Hashtbl.mem t.table k
let used_bytes t = t.used
let entry_count t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
