(** The shared-vs-siloed cache experiment (Section 7.2, Table 3).

    Five service chains each front the same web content catalog with a
    caching VNF. Switchboard's service-oriented design lets one multi-tenant
    cache instance serve all five chains; the unified-controller baseline
    (E2/Stratos-style vertical isolation) gives each chain its own instance
    with one fifth of the memory. Requests follow a Zipf(1.0) popularity
    distribution over the catalog with 50 KB mean object size; a miss pays
    a wide-area RTT to the origin site (60 ms between the paper's two AWS
    sites) plus transfer time.

    Sharing wins twice: cached objects are reused across chains, and the
    single large cache holds a deeper popularity tail. *)

type params = {
  num_chains : int;  (** paper: 5 *)
  catalog_size : int;  (** distinct objects *)
  zipf_exponent : float;  (** paper: 1.0 *)
  mean_object_bytes : int;  (** paper: 50 KB *)
  total_cache_bytes : int;  (** shared size; siloed caches get 1/n each *)
  requests : int;  (** per chain *)
  wan_rtt : float;  (** cache-to-origin round trip, seconds (paper: 60 ms) *)
  lan_rtt : float;  (** client-to-cache round trip, seconds *)
  link_bandwidth : float;  (** bytes/second for transfer-time terms *)
}

val default_params : params

type result = { hit_rate : float; mean_download_time : float (* seconds *) }

val run_shared : rng:Sb_util.Rng.t -> params -> result
(** One cache of [total_cache_bytes] serving every chain (objects keyed by
    content id only, so cross-chain reuse hits). *)

val run_siloed : rng:Sb_util.Rng.t -> params -> result
(** Per-chain caches of [total_cache_bytes / num_chains] each. *)

val download_time : params -> hit:bool -> size:int -> float
(** The latency model shared by both runs. *)
