type result =
  | Optimal of Lp.solution
  | Infeasible
  | Unbounded
  | Node_limit of Lp.solution option

let solve ?(max_nodes = 10_000) ?(int_tol = 1e-6) problem =
  let int_vars = List.filter (Lp.var_is_integer problem) (Lp.all_vars problem) in
  let maximizing = Lp.objective_sense problem = Lp.Maximize in
  (* Compare incumbents in minimization terms regardless of sense. *)
  let key sol =
    let obj = Lp.objective_value sol in
    if maximizing then -.obj else obj
  in
  let fractional sol =
    let best = ref None in
    List.iter
      (fun v ->
        let x = Lp.value sol v in
        let frac = Float.abs (x -. Float.round x) in
        if frac > int_tol then
          match !best with
          | Some (_, f) when f >= frac -> ()
          | _ -> best := Some (v, frac))
      int_vars;
    !best
  in
  let incumbent = ref None in
  let better k =
    match !incumbent with None -> true | Some (bk, _) -> k < bk -. 1e-9
  in
  let nodes = ref 0 in
  let truncated = ref false in
  let unbounded_root = ref false in
  let rec branch bounds =
    if !nodes >= max_nodes then truncated := true
    else begin
      incr nodes;
      let sub = Lp.clone_with_bounds problem bounds in
      match Lp.solve sub with
      | Lp.Infeasible -> ()
      | Lp.Unbounded -> if bounds = [] then unbounded_root := true
      | Lp.Optimal sol ->
        let k = key sol in
        (* The relaxation bound prunes: a node whose relaxation is no better
           than the incumbent cannot contain a better integral solution. *)
        if better k then begin
          match fractional sol with
          | None -> incumbent := Some (k, sol)
          | Some (v, _) ->
            let x = Lp.value sol v in
            branch ((v, neg_infinity, Float.floor x) :: bounds);
            branch ((v, Float.ceil x, infinity) :: bounds)
        end
    end
  in
  branch [];
  if !unbounded_root then Unbounded
  else
    match (!incumbent, !truncated) with
    | Some (_, sol), false -> Optimal sol
    | Some (_, sol), true -> Node_limit (Some sol)
    | None, true -> Node_limit None
    | None, false -> Infeasible
