(** Linear-programming modelling API and solver.

    This module replaces the CPLEX dependency of the paper's prototype
    (Section 4.5). It provides a small modelling layer (variables, linear
    expressions, constraints, objective) and solves problems exactly with a
    two-phase dense simplex method. Mixed-integer problems are solved by
    branch-and-bound in {!Mip}.

    The intended problem scale is the scaled-down instances described in
    DESIGN.md (thousands of variables, hundreds of constraints); the dense
    tableau is quadratic in memory, so this is not a production solver for
    CPLEX-scale inputs — it is, however, exact, dependency-free, and fast
    enough for every experiment in the reproduction. *)

type problem
type var

val create : ?name:string -> unit -> problem
(** A fresh, empty problem. *)

val add_var : problem -> ?lb:float -> ?ub:float -> ?integer:bool -> string -> var
(** [add_var p name] adds a decision variable.
    - [lb] defaults to [0.]; it may be any finite value or
      [neg_infinity] (free variable).
    - [ub] defaults to [infinity].
    - [integer] (default [false]) marks the variable integral; plain
      {!solve} ignores integrality (LP relaxation), {!Mip.solve} enforces it.
    Raises [Invalid_argument] if [lb > ub]. *)

val var_name : var -> string

type expr = (float * var) list
(** A linear expression: sum of [coefficient * variable] terms. Repeated
    variables are allowed and their coefficients are summed. *)

type relation = Le | Ge | Eq

val add_constraint : problem -> ?name:string -> expr -> relation -> float -> unit
(** [add_constraint p e rel rhs] adds the constraint [e rel rhs]. *)

type sense = Minimize | Maximize

val set_objective : problem -> sense -> expr -> unit

val num_vars : problem -> int
val num_constraints : problem -> int

val objective_sense : problem -> sense

type solution

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** Solve the LP relaxation with two-phase simplex. *)

val value : solution -> var -> float
(** Value of a variable in an optimal solution. *)

val objective_value : solution -> float

val pp_outcome : Format.formatter -> outcome -> unit

(**/**)

(* Internal accessors used by Mip. *)
val var_is_integer : problem -> var -> bool
val all_vars : problem -> var list
val clone_with_bounds : problem -> (var * float * float) list -> problem
(* [clone_with_bounds p extra] copies [p] adding bound constraints
   lb <= v <= ub for each [(v, lb, ub)]. Variables are shared between the
   clone and the original, so [value] lookups use the original vars. *)
