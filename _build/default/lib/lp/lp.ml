type var = { id : int; vname : string; lb : float; ub : float; integer : bool }

type relation = Le | Ge | Eq
type expr = (float * var) list
type sense = Minimize | Maximize

type constr = { cname : string; terms : expr; rel : relation; rhs : float }

type problem = {
  pname : string;
  mutable vars : var list; (* reverse order of creation *)
  mutable nvars : int;
  mutable constrs : constr list; (* reverse order *)
  mutable obj_sense : sense;
  mutable obj : expr;
}

let create ?(name = "lp") () =
  { pname = name; vars = []; nvars = 0; constrs = []; obj_sense = Minimize; obj = [] }

let add_var p ?(lb = 0.) ?(ub = infinity) ?(integer = false) vname =
  if lb > ub then invalid_arg "Lp.add_var: lb > ub";
  let v = { id = p.nvars; vname; lb; ub; integer } in
  p.nvars <- p.nvars + 1;
  p.vars <- v :: p.vars;
  v

let var_name v = v.vname
let var_is_integer _p v = v.integer
let all_vars p = List.rev p.vars

let add_constraint p ?(name = "") terms rel rhs =
  p.constrs <- { cname = name; terms; rel; rhs } :: p.constrs

let set_objective p sense terms =
  p.obj_sense <- sense;
  p.obj <- terms

let num_vars p = p.nvars
let num_constraints p = List.length p.constrs
let objective_sense p = p.obj_sense

let clone_with_bounds p extra =
  let q =
    {
      pname = p.pname;
      vars = p.vars;
      nvars = p.nvars;
      constrs = p.constrs;
      obj_sense = p.obj_sense;
      obj = p.obj;
    }
  in
  List.iter
    (fun (v, lo, hi) ->
      if lo > neg_infinity then add_constraint q [ (1., v) ] Ge lo;
      if hi < infinity then add_constraint q [ (1., v) ] Le hi)
    extra;
  q

type solution = { values : float array; obj_value : float }

type outcome = Optimal of solution | Infeasible | Unbounded

let value sol v = sol.values.(v.id)
let objective_value sol = sol.obj_value

let pp_outcome ppf = function
  | Optimal s -> Format.fprintf ppf "optimal (objective %.6g)" s.obj_value
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"

(* ------------------------------------------------------------------ *)
(* Two-phase dense simplex.                                           *)
(* ------------------------------------------------------------------ *)

let eps = 1e-9

(* A variable [v] maps to one or two non-negative tableau columns:
   - finite lb: v = lb + col        (plus a row col <= ub - lb if ub finite)
   - free:      v = col_pos - col_neg (plus a row v <= ub / v >= lb if finite) *)
type col_map = Shifted of { col : int; shift : float } | Split of { pos : int; neg : int }

type tableau = {
  mutable m : int; (* rows *)
  n : int; (* structural + slack/surplus columns (no artificials) *)
  a : float array array; (* m x total_cols *)
  b : float array; (* m *)
  basis : int array; (* m, column index basic in each row *)
  total : int; (* n + number of artificials *)
  art_start : int; (* columns >= art_start are artificial *)
}

exception Unbounded_exn

(* One simplex phase: minimize [cost] (length [t.total]) over the current
   tableau; [allowed j] says whether column j may enter the basis.
   Returns the phase objective value. *)
let simplex_phase t cost allowed =
  let m = t.m and total = t.total in
  (* Reduced costs r_j = c_j - sum_i c_basis(i) * a_ij ; obj = sum c_basis(i) b_i *)
  let r = Array.make total 0. in
  let obj = ref 0. in
  let recompute () =
    for j = 0 to total - 1 do
      r.(j) <- cost.(j)
    done;
    obj := 0.;
    for i = 0 to m - 1 do
      let cb = cost.(t.basis.(i)) in
      if cb <> 0. then begin
        let row = t.a.(i) in
        for j = 0 to total - 1 do
          r.(j) <- r.(j) -. (cb *. row.(j))
        done;
        obj := !obj +. (cb *. t.b.(i))
      end
    done
  in
  recompute ();
  let degenerate_streak = ref 0 in
  let continue = ref true in
  while !continue do
    (* Entering column: Dantzig normally, Bland after a degenerate streak. *)
    let entering = ref (-1) in
    if !degenerate_streak > 2 * (m + total) then begin
      (* Bland: smallest eligible index. *)
      (try
         for j = 0 to total - 1 do
           if allowed j && r.(j) < -.eps then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ())
    end
    else begin
      let best = ref (-.eps) in
      for j = 0 to total - 1 do
        if allowed j && r.(j) < !best then begin
          best := r.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then continue := false
    else begin
      let j = !entering in
      (* Ratio test; ties broken by smallest basis index (lexicographic-ish,
         pairs with Bland for anti-cycling). *)
      let leave = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to m - 1 do
        let aij = t.a.(i).(j) in
        if aij > eps then begin
          let ratio = t.b.(i) /. aij in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && (!leave < 0 || t.basis.(i) < t.basis.(!leave)))
          then begin
            best_ratio := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then raise Unbounded_exn;
      let i = !leave in
      if !best_ratio < eps then incr degenerate_streak else degenerate_streak := 0;
      (* Pivot on (i, j). *)
      let piv = t.a.(i).(j) in
      let rowi = t.a.(i) in
      for k = 0 to total - 1 do
        rowi.(k) <- rowi.(k) /. piv
      done;
      t.b.(i) <- t.b.(i) /. piv;
      for i' = 0 to m - 1 do
        if i' <> i then begin
          let f = t.a.(i').(j) in
          if Float.abs f > eps then begin
            let row' = t.a.(i') in
            for k = 0 to total - 1 do
              row'.(k) <- row'.(k) -. (f *. rowi.(k))
            done;
            t.b.(i') <- t.b.(i') -. (f *. t.b.(i));
            if t.b.(i') < 0. && t.b.(i') > -.eps then t.b.(i') <- 0.
          end
          else t.a.(i').(j) <- 0.
        end
      done;
      (* Update reduced-cost row. *)
      let f = r.(j) in
      for k = 0 to total - 1 do
        r.(k) <- r.(k) -. (f *. rowi.(k))
      done;
      (* Entering variable takes value t.b.(i); objective moves by r_j * theta. *)
      obj := !obj +. (f *. t.b.(i));
      t.basis.(i) <- j
    end
  done;
  !obj

let solve p =
  let vars = Array.of_list (all_vars p) in
  let nv = Array.length vars in
  (* 1. Map each variable to non-negative columns and collect bound rows. *)
  let col_of = Array.make nv (Shifted { col = 0; shift = 0. }) in
  let next_col = ref 0 in
  let bound_rows = ref [] in
  Array.iter
    (fun v ->
      if v.lb > neg_infinity then begin
        let col = !next_col in
        incr next_col;
        col_of.(v.id) <- Shifted { col; shift = v.lb };
        if v.ub < infinity then
          (* col <= ub - lb *)
          bound_rows := ([ (col, 1.) ], Le, v.ub -. v.lb) :: !bound_rows
      end
      else begin
        let pos = !next_col and neg = !next_col + 1 in
        next_col := !next_col + 2;
        col_of.(v.id) <- Split { pos; neg };
        if v.ub < infinity then
          bound_rows := ([ (pos, 1.); (neg, -1.) ], Le, v.ub) :: !bound_rows
      end)
    vars;
  let nstruct = !next_col in
  (* 2. Expand each constraint into (column, coef) list with adjusted rhs. *)
  let expand terms rhs =
    let acc = Hashtbl.create 8 in
    let rhs = ref rhs in
    let add col coef =
      let cur = try Hashtbl.find acc col with Not_found -> 0. in
      Hashtbl.replace acc col (cur +. coef)
    in
    List.iter
      (fun (coef, v) ->
        match col_of.(v.id) with
        | Shifted { col; shift } ->
          add col coef;
          rhs := !rhs -. (coef *. shift)
        | Split { pos; neg } ->
          add pos coef;
          add neg (-.coef))
      terms;
    (Hashtbl.fold (fun col coef l -> (col, coef) :: l) acc [], !rhs)
  in
  let rows =
    List.rev_map (fun c -> let terms, rhs = expand c.terms c.rhs in (terms, c.rel, rhs)) p.constrs
    @ !bound_rows
  in
  let m = List.length rows in
  (* 3. Count extra columns: slack (Le), surplus (Ge); artificials where needed.
     Normalize to b >= 0 first (flip row sign, swapping Le/Ge). *)
  let rows =
    List.map
      (fun (terms, rel, rhs) ->
        if rhs < 0. then
          ( List.map (fun (c, k) -> (c, -.k)) terms,
            (match rel with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (terms, rel, rhs))
      rows
  in
  let n_slack = List.length (List.filter (fun (_, rel, _) -> rel = Le || rel = Ge) rows) in
  let n = nstruct + n_slack in
  (* Artificials: rows with Ge or Eq need one; Le rows use their slack as the
     initial basic variable. *)
  let n_art = List.length (List.filter (fun (_, rel, _) -> rel <> Le) rows) in
  let total = n + n_art in
  let a = Array.init m (fun _ -> Array.make total 0.) in
  let b = Array.make m 0. in
  let basis = Array.make m 0 in
  let slack = ref nstruct in
  let art = ref n in
  List.iteri
    (fun i (terms, rel, rhs) ->
      List.iter (fun (col, coef) -> a.(i).(col) <- a.(i).(col) +. coef) terms;
      b.(i) <- rhs;
      (match rel with
      | Le ->
        a.(i).(!slack) <- 1.;
        basis.(i) <- !slack;
        incr slack
      | Ge ->
        a.(i).(!slack) <- -1.;
        incr slack;
        a.(i).(!art) <- 1.;
        basis.(i) <- !art;
        incr art
      | Eq ->
        a.(i).(!art) <- 1.;
        basis.(i) <- !art;
        incr art))
    rows;
  let t = { m; n; a; b; basis; total; art_start = n } in
  (* Phase 1: minimize the sum of artificials (skip if there are none). *)
  let feasible =
    if n_art = 0 then true
    else begin
      let cost1 = Array.make total 0. in
      for j = n to total - 1 do
        cost1.(j) <- 1.
      done;
      match simplex_phase t cost1 (fun _ -> true) with
      | exception Unbounded_exn -> assert false (* phase 1 is bounded below by 0 *)
      | v when v > 1e-6 -> false
      | _ ->
        (* Drive remaining basic artificials out; drop redundant rows. *)
        let keep = Array.make t.m true in
        for i = 0 to t.m - 1 do
          if t.basis.(i) >= t.art_start then begin
            let found = ref (-1) in
            for j = 0 to t.art_start - 1 do
              if !found < 0 && Float.abs t.a.(i).(j) > 1e-7 then found := j
            done;
            match !found with
            | -1 -> keep.(i) <- false
            | j ->
              (* Pivot artificial out on column j. *)
              let piv = t.a.(i).(j) in
              let rowi = t.a.(i) in
              for k = 0 to total - 1 do
                rowi.(k) <- rowi.(k) /. piv
              done;
              t.b.(i) <- t.b.(i) /. piv;
              for i' = 0 to t.m - 1 do
                if i' <> i then begin
                  let f = t.a.(i').(j) in
                  if Float.abs f > eps then begin
                    let row' = t.a.(i') in
                    for k = 0 to total - 1 do
                      row'.(k) <- row'.(k) -. (f *. rowi.(k))
                    done;
                    t.b.(i') <- t.b.(i') -. (f *. t.b.(i))
                  end
                end
              done;
              t.basis.(i) <- j
          end
        done;
        (* Compact rows marked dropped. *)
        let w = ref 0 in
        for i = 0 to t.m - 1 do
          if keep.(i) then begin
            if !w <> i then begin
              t.a.(!w) <- t.a.(i);
              t.b.(!w) <- t.b.(i);
              t.basis.(!w) <- t.basis.(i)
            end;
            incr w
          end
        done;
        t.m <- !w;
        true
    end
  in
  if not feasible then Infeasible
  else begin
    (* Phase 2: original objective (as minimization) on non-artificial cols. *)
    let sign = match p.obj_sense with Minimize -> 1. | Maximize -> -1. in
    let cost2 = Array.make total 0. in
    let const_term = ref 0. in
    List.iter
      (fun (coef, v) ->
        match col_of.(v.id) with
        | Shifted { col; shift } ->
          cost2.(col) <- cost2.(col) +. (sign *. coef);
          const_term := !const_term +. (coef *. shift)
        | Split { pos; neg } ->
          cost2.(pos) <- cost2.(pos) +. (sign *. coef);
          cost2.(neg) <- cost2.(neg) -. (sign *. coef))
      p.obj;
    match simplex_phase t cost2 (fun j -> j < t.art_start) with
    | exception Unbounded_exn -> Unbounded
    | min_obj ->
      let col_values = Array.make total 0. in
      for i = 0 to t.m - 1 do
        col_values.(t.basis.(i)) <- t.b.(i)
      done;
      let values =
        Array.map
          (fun v ->
            match col_of.(v.id) with
            | Shifted { col; shift } -> shift +. col_values.(col)
            | Split { pos; neg } -> col_values.(pos) -. col_values.(neg))
          vars
      in
      let obj_value = (sign *. min_obj) +. !const_term in
      Optimal { values; obj_value }
  end
