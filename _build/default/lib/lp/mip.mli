(** Mixed-integer programming by branch-and-bound over {!Lp}.

    Used for the VNF capacity-planning MIP of Section 4.3, where binary
    variables select deployment sites. Depth-first search with incumbent
    pruning; node count is bounded to keep worst cases in check (the
    reproduction's instances are small). *)

type result =
  | Optimal of Lp.solution
  | Infeasible
  | Unbounded
  | Node_limit of Lp.solution option
      (** Search hit the node budget; carries the best incumbent if any. *)

val solve : ?max_nodes:int -> ?int_tol:float -> Lp.problem -> result
(** [solve p] enforces integrality of every variable created with
    [~integer:true]. [max_nodes] defaults to 10_000; [int_tol] to 1e-6. *)
