lib/lp/mip.ml: Float List Lp
