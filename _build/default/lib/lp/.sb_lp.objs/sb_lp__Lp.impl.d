lib/lp/lp.ml: Array Float Format Hashtbl List
