lib/lp/mip.mli: Lp
