type size_model = Fixed of int | Imix

type flow_selection = Uniform | Zipfian of float

type t = {
  rng : Sb_util.Rng.t;
  tuples : Packet.five_tuple array;
  sizes : size_model;
  zipf : Sb_util.Zipf.t option;
}

let create ~rng ~flows ?(sizes = Fixed 64) ?(selection = Uniform) () =
  if flows <= 0 then invalid_arg "Traffic_gen.create: flows must be positive";
  (match sizes with
  | Fixed n when n <= 0 -> invalid_arg "Traffic_gen.create: non-positive packet size"
  | Fixed _ | Imix -> ());
  let tuples = Array.init flows (fun _ -> Packet.random_tuple rng) in
  let zipf =
    match selection with
    | Uniform -> None
    | Zipfian s -> Some (Sb_util.Zipf.create ~n:flows ~s)
  in
  { rng; tuples; sizes; zipf }

let pick_size t =
  match t.sizes with
  | Fixed n -> n
  | Imix -> (
    (* Classic IMIX: 7 small, 4 medium, 1 large per 12 packets. *)
    match Sb_util.Rng.int t.rng 12 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 -> 64
    | 7 | 8 | 9 | 10 -> 570
    | _ -> 1514)

let next t =
  let i =
    match t.zipf with
    | None -> Sb_util.Rng.int t.rng (Array.length t.tuples)
    | Some z -> Sb_util.Zipf.sample z t.rng
  in
  (t.tuples.(i), pick_size t)

let burst t n = List.init n (fun _ -> next t)

let flow_tuples t = Array.copy t.tuples
