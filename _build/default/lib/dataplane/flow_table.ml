type key = {
  chain_label : int;
  egress_label : int;
  stage : int;
  flow : Packet.five_tuple;
}

type 'hop entry = { next : 'hop; prev : 'hop }

type 'hop t = (key, 'hop entry) Hashtbl.t

let create () = Hashtbl.create 64
let size t = Hashtbl.length t
let find t k = Hashtbl.find_opt t k
let insert t k e = Hashtbl.replace t k e
let remove t k = Hashtbl.remove t k

let remove_flow t flow =
  let doomed =
    Hashtbl.fold (fun k _ acc -> if k.flow = flow then k :: acc else acc) t []
  in
  List.iter (Hashtbl.remove t) doomed

let entries t = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t []
let clear t = Hashtbl.reset t
