(** Cost model of the OVS-based forwarder (Section 5.4, Fig. 7).

    The paper measures three configurations of an Open vSwitch datapath:
    (c) a plain bridge, (b) bridge + overlay labels (VXLAN tunnel + MPLS
    chain/route labels, which cost an encap and a recirculated second
    lookup), and (a) labels + flow-affinity rules (OVS [learn] actions that
    install and then match per-connection exact entries). We reproduce the
    experiment with a per-packet CPU-cycle model whose terms mirror those
    datapath actions; constants are calibrated so a 2.3 GHz core lands in
    OVS's ~1 Mpps range and the relative overheads fall in the measured
    bands (labels +19-29 %, affinity a further +33-44 %, both shrinking as
    flow count grows because the baseline's megaflow lookup itself dilates
    with more flows). *)

type config =
  | Bridge  (** (c): plain L2 forwarding *)
  | Labels  (** (b): + VXLAN + MPLS overlay labels *)
  | Labels_affinity  (** (a): + learn-action flow affinity *)

val cycles_per_packet : config -> flows:int -> float
(** Mean per-packet cost for a steady stream uniformly spread over [flows]
    concurrent connections. Raises [Invalid_argument] if [flows <= 0]. *)

val throughput_kpps : ?clock_ghz:float -> config -> flows:int -> float
(** Single-core packets/s (in thousands); clock defaults to 2.3 GHz. *)

val overhead_vs_bridge : config -> flows:int -> float
(** Relative cost increase over {!Bridge} at the same flow count. *)

val overhead_vs_labels : flows:int -> float
(** Extra cost of {!Labels_affinity} over {!Labels}: the flow-affinity
    overhead band. *)

(**/**)

(* Cycle constants shared with the executable pipeline ({!Ovs_pipeline}). *)
val c_rx : float
val c_tx : float
val c_megaflow_base : float
val c_megaflow_per_flow : float
val c_vxlan_encap : float
val c_mpls_push : float
val c_recirculation : float
val c_exact_match : float
val c_learn_install : float
val c_exact_per_flow : float
val clock_hz : float
