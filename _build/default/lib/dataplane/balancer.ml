type 'hop rule = ('hop * float) list

let pick rng rule =
  if rule = [] then invalid_arg "Balancer.pick: empty rule";
  let weights = Array.of_list (List.map snd rule) in
  let hops = Array.of_list (List.map fst rule) in
  hops.(Sb_util.Rng.weighted_index rng weights)

let normalize rule =
  let rule = List.filter (fun (_, w) -> w > 0.) rule in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. rule in
  if total <= 0. then [] else List.map (fun (h, w) -> (h, w /. total)) rule

let forwarder_weight ~instance_weights = List.fold_left ( +. ) 0. instance_weights

let compose ~site_fraction ~per_site =
  List.concat_map
    (fun (site, frac) ->
      if frac <= 0. then []
      else
        List.map (fun (hop, w) -> (hop, frac *. w)) (normalize (per_site site)))
    site_fraction
