(** Cost model of the DPDK-based forwarder (Section 5.4, Fig. 8).

    The paper's testbed: Intel Xeon E5-2470 (2.3 GHz), XL710 40 GbE NIC,
    SR-IOV, one forwarder pinned per core, 64 B UDP packets uniformly
    spread over a fixed flow count. Throughput is dominated by the flow
    table: entries resident in the shared last-level cache are cheap to
    look up; past the cache, lookups pay a DRAM access. We model

    [cycles/packet = c_io + hit * c_hit + (1 - hit) * c_miss],

    with [hit = cache_entries / (cores * flows_per_core)] (LLC shared
    across cores) capped at 1. The constants reproduce Fig. 8's anchors:
    ~7 Mpps for one core at small flow counts, +3-4 Mpps per extra
    forwarder at 512 K flows each, >20 Mpps aggregate for 6 cores / 3 M
    flows, and >3 Mpps/core once the table far exceeds the cache. *)

val clock_hz : float
(** 2.3 GHz, as in the paper's testbed. *)

val cache_entries : int
(** Flow-table entries that fit in the shared last-level cache. *)

val cycles_per_packet : cores:int -> flows_per_core:int -> float
(** Raises [Invalid_argument] on non-positive arguments. *)

val throughput_mpps : cores:int -> flows_per_core:int -> float
(** Aggregate packets/s over all forwarder cores, in millions. *)

val throughput_gbps : cores:int -> flows_per_core:int -> packet_bytes:int -> float
(** Aggregate bit rate at a given packet size (the paper quotes 80 Gbps at
    500 B packets for 20 Mpps). *)

val latency_s : cores:int -> flows_per_core:int -> load:float -> float
(** Forwarding latency at utilization [load] in [0, 1): service time plus
    an M/M/1 queueing term, capped at a full NIC descriptor ring (4096
    packets) — ~1 ms at saturation, tens of microseconds when lightly
    loaded, matching the paper's report. *)
