let clock_hz = 2.3e9

(* ~16 MB shared LLC / 64 B per flow-table entry. *)
let cache_entries = 262_144

let c_io = 290. (* rx burst + parse + label match + tx burst, amortized *)
let c_hit = 40. (* flow-table lookup resident in LLC *)
let c_miss = 300. (* flow-table lookup from DRAM *)

let cycles_per_packet ~cores ~flows_per_core =
  if cores <= 0 then invalid_arg "Dpdk_model: cores must be positive";
  if flows_per_core <= 0 then invalid_arg "Dpdk_model: flows_per_core must be positive";
  let total_flows = float_of_int (cores * flows_per_core) in
  let hit = Float.min 1. (float_of_int cache_entries /. total_flows) in
  c_io +. (hit *. c_hit) +. ((1. -. hit) *. c_miss)

let throughput_mpps ~cores ~flows_per_core =
  float_of_int cores *. clock_hz /. cycles_per_packet ~cores ~flows_per_core /. 1e6

let throughput_gbps ~cores ~flows_per_core ~packet_bytes =
  throughput_mpps ~cores ~flows_per_core *. 1e6 *. float_of_int (packet_bytes * 8) /. 1e9

let ring_depth = 4096.

let latency_s ~cores ~flows_per_core ~load =
  if load < 0. || load >= 1. then invalid_arg "Dpdk_model.latency_s: load must be in [0, 1)";
  let service = cycles_per_packet ~cores ~flows_per_core /. clock_hz in
  (* Batched I/O adds ~half a 32-packet burst of base delay. *)
  let base = service *. 16. in
  let queue = Float.min (service *. load /. (1. -. load)) (service *. ring_depth) in
  base +. queue
