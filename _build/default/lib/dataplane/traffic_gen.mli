(** Synthetic packet-stream generation (the MoonGen stand-in for the
    Section 5.4 experiments and the data-plane tests).

    A generator owns a population of connections and emits packets drawn
    from them. Flow selection is uniform (as in the paper's DPDK
    experiment) or Zipf-skewed; packet sizes are fixed (64 B minimum-size
    UDP, the paper's choice), the standard IMIX mix, or a custom value. *)

type size_model =
  | Fixed of int
  | Imix  (** 7:4:1 mix of 64 / 570 / 1514-byte packets *)

type flow_selection = Uniform | Zipfian of float

type t

val create :
  rng:Sb_util.Rng.t ->
  flows:int ->
  ?sizes:size_model ->
  ?selection:flow_selection ->
  unit ->
  t
(** Raises [Invalid_argument] if [flows <= 0] or a size is non-positive. *)

val next : t -> Packet.five_tuple * int
(** Draw the next packet: its connection 5-tuple and size in bytes. *)

val burst : t -> int -> (Packet.five_tuple * int) list

val flow_tuples : t -> Packet.five_tuple array
(** The generator's connection population (index = flow id). *)
