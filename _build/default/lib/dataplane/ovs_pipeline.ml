type t = {
  config : Ovs_model.config;
  outputs : int;
  emc : (Packet.five_tuple, unit) Hashtbl.t;
  learned : (Packet.five_tuple, int) Hashtbl.t;
  mutable next_port : int;
  mutable upcall_count : int;
}

type verdict = { port : int; cycles : float; upcall : bool }

let create ?(outputs = 2) config =
  {
    config;
    outputs;
    emc = Hashtbl.create 1024;
    learned = Hashtbl.create 1024;
    next_port = 0;
    upcall_count = 0;
  }

let process t flow =
  let cycles = ref Ovs_model.c_rx in
  (* Exact-match flow cache: the lookup dilates with resident entries
     (cache pressure); a miss is a slow-path upcall that installs the
     entry. *)
  let upcall = not (Hashtbl.mem t.emc flow) in
  if upcall then begin
    t.upcall_count <- t.upcall_count + 1;
    Hashtbl.replace t.emc flow ()
  end;
  cycles :=
    !cycles +. Ovs_model.c_megaflow_base
    +. (Ovs_model.c_megaflow_per_flow *. float_of_int (Hashtbl.length t.emc));
  (* Overlay labels: MPLS push + VXLAN encap, costing a recirculated pass. *)
  (match t.config with
  | Ovs_model.Bridge -> ()
  | Ovs_model.Labels | Ovs_model.Labels_affinity ->
    cycles :=
      !cycles +. Ovs_model.c_vxlan_encap +. Ovs_model.c_mpls_push
      +. Ovs_model.c_recirculation);
  (* Learn-action affinity: first packet of a connection picks an output
     and installs the exact entry; every packet pays the exact-match
     lookup. *)
  let port =
    match t.config with
    | Ovs_model.Bridge | Ovs_model.Labels -> 0
    | Ovs_model.Labels_affinity -> (
      cycles :=
        !cycles +. Ovs_model.c_exact_match
        +. (Ovs_model.c_exact_per_flow *. float_of_int (Hashtbl.length t.learned));
      match Hashtbl.find_opt t.learned flow with
      | Some port -> port
      | None ->
        cycles := !cycles +. Ovs_model.c_learn_install;
        let port = t.next_port in
        t.next_port <- (t.next_port + 1) mod t.outputs;
        Hashtbl.replace t.learned flow port;
        port)
  in
  cycles := !cycles +. Ovs_model.c_tx;
  { port; cycles = !cycles; upcall }

type stats = {
  packets : int;
  mean_cycles : float;
  throughput_kpps : float;
  upcalls : int;
  exact_entries : int;
  learn_entries : int;
}

let run_stream t ~flows ~packets =
  if flows <= 0 then invalid_arg "Ovs_pipeline.run_stream: flows must be positive";
  let tuples =
    Array.init flows (fun i ->
        {
          Packet.src_ip = 0x0A000000 + i;
          dst_ip = 0x0B000000 + (i * 7);
          proto = 17;
          src_port = 1024 + (i mod 60000);
          dst_port = 80;
        })
  in
  let total = ref 0. in
  for i = 0 to packets - 1 do
    let v = process t tuples.(i mod flows) in
    total := !total +. v.cycles
  done;
  let mean = if packets = 0 then 0. else !total /. float_of_int packets in
  {
    packets;
    mean_cycles = mean;
    throughput_kpps = (if mean = 0. then 0. else Ovs_model.clock_hz /. mean /. 1e3);
    upcalls = t.upcall_count;
    exact_entries = Hashtbl.length t.emc;
    learn_entries = Hashtbl.length t.learned;
  }
