lib/dataplane/traffic_gen.ml: Array List Packet Sb_util
