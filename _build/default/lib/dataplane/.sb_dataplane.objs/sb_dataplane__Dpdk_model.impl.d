lib/dataplane/dpdk_model.ml: Float
