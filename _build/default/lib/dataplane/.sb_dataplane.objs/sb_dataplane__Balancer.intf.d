lib/dataplane/balancer.mli: Sb_util
