lib/dataplane/ovs_pipeline.ml: Array Hashtbl Ovs_model Packet
