lib/dataplane/dpdk_model.mli:
