lib/dataplane/packet.mli: Format Sb_util
