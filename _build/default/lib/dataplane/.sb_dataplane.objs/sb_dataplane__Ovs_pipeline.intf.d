lib/dataplane/ovs_pipeline.mli: Ovs_model Packet
