lib/dataplane/dht_table.ml: Array Flow_table Hashtbl List
