lib/dataplane/fabric.ml: Balancer Dht_table Flow_table Format Hashtbl List Packet Sb_util
