lib/dataplane/flow_table.mli: Packet
