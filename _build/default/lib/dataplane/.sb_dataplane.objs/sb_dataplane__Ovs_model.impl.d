lib/dataplane/ovs_model.ml:
