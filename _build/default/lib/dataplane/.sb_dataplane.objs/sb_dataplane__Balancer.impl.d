lib/dataplane/balancer.ml: Array List Sb_util
