lib/dataplane/traffic_gen.mli: Packet Sb_util
