lib/dataplane/flow_table.ml: Hashtbl List Packet
