lib/dataplane/packet.ml: Format Sb_util
