lib/dataplane/fabric.mli: Format Packet
