lib/dataplane/dht_table.mli: Flow_table
