lib/dataplane/ovs_model.mli:
