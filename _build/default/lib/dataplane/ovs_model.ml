type config = Bridge | Labels | Labels_affinity

(* Per-action cycle costs (2.3 GHz core). The megaflow lookup dilates with
   concurrent flows (more megaflow entries and cache pressure); the learn
   path pays an exact-match lookup every packet plus an amortized entry
   install (~100 packets per connection). *)
let c_rx = 1200.
let c_tx = 800.
let c_megaflow_base = 500.
let c_megaflow_per_flow = 28.
let c_vxlan_encap = 400.
let c_mpls_push = 140.
let c_recirculation = 200.
let c_exact_match = 1406.
let c_learn_install = 3000.
let packets_per_connection = 100.
let c_exact_per_flow = 1.9

let cycles_per_packet config ~flows =
  if flows <= 0 then invalid_arg "Ovs_model.cycles_per_packet: flows must be positive";
  let n = float_of_int flows in
  let bridge = c_rx +. c_megaflow_base +. (c_megaflow_per_flow *. n) +. c_tx in
  match config with
  | Bridge -> bridge
  | Labels -> bridge +. c_vxlan_encap +. c_mpls_push +. c_recirculation
  | Labels_affinity ->
    bridge +. c_vxlan_encap +. c_mpls_push +. c_recirculation +. c_exact_match
    +. (c_learn_install /. packets_per_connection)
    +. (c_exact_per_flow *. n)

let throughput_kpps ?(clock_ghz = 2.3) config ~flows =
  clock_ghz *. 1e9 /. cycles_per_packet config ~flows /. 1e3

let overhead_vs_bridge config ~flows =
  cycles_per_packet config ~flows /. cycles_per_packet Bridge ~flows -. 1.

let overhead_vs_labels ~flows =
  cycles_per_packet Labels_affinity ~flows /. cycles_per_packet Labels ~flows -. 1.

let clock_hz = 2.3e9
