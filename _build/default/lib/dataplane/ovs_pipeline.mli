(** An executable Open vSwitch-style datapath (Section 5.4's OVS-based
    forwarder, as running code rather than the closed-form model of
    {!Ovs_model}).

    The pipeline processes packets through the stages a real OVS datapath
    runs: header parse, an exact-match flow cache (EMC-style: per-flow
    entries installed by slow-path upcalls), the configured overlay actions
    (MPLS chain/route label push + VXLAN encap, which cost a
    recirculation), the learn-action affinity table, and output. Each
    stage charges the cycle constants shared with {!Ovs_model}, so the
    measured mean cost of an executed stream agrees with the analytic
    model, while correctness (cache hits after first packet, stable
    learned output per connection) is tested on the real tables. *)

type t

val create : ?outputs:int -> Ovs_model.config -> t
(** A fresh datapath with [outputs] ports (default 2) to load-balance
    across in the affinity configuration. *)

type verdict = {
  port : int;  (** chosen output port *)
  cycles : float;  (** cost of this packet *)
  upcall : bool;  (** slow-path miss (first packet of a flow) *)
}

val process : t -> Packet.five_tuple -> verdict
(** Push one packet through. For {!Ovs_model.Labels_affinity}, the first
    packet of a connection picks a port and installs a learn entry; later
    packets hit it and keep the port. *)

type stats = {
  packets : int;
  mean_cycles : float;
  throughput_kpps : float;  (** at {!Ovs_model}'s 2.3 GHz clock *)
  upcalls : int;
  exact_entries : int;  (** resident flow-cache entries *)
  learn_entries : int;
}

val run_stream : t -> flows:int -> packets:int -> stats
(** Drive [packets] packets round-robin over [flows] synthetic
    connections (the Fig. 7 workload) and report steady statistics. *)
