lib/ctrl/types.ml: Format List Printf
