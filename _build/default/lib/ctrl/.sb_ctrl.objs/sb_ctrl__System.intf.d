lib/ctrl/system.mli: Sb_dataplane Sb_msgbus Sb_music Sb_sim Types
