lib/ctrl/system.ml: Array Float Hashtbl List Option Printf Sb_dataplane Sb_msgbus Sb_music Sb_sim Types
