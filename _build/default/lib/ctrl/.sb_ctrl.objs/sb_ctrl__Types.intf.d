lib/ctrl/types.mli: Format
