type link = { id : int; src : int; dst : int; bandwidth : float; delay : float }

type node = { name : string; x : float; y : float }

type t = {
  mutable nodes : node array;
  mutable nnodes : int;
  mutable link_arr : link array;
  mutable nlinks : int;
  mutable adj : link list array; (* outgoing links per node *)
}

let create () =
  { nodes = Array.make 8 { name = ""; x = 0.; y = 0. };
    nnodes = 0;
    link_arr = Array.make 8 { id = 0; src = 0; dst = 0; bandwidth = 0.; delay = 0. };
    nlinks = 0;
    adj = Array.make 8 [] }

let grow arr n filler = if n = Array.length arr then Array.append arr (Array.make (max 8 n) filler) else arr

let add_node t ?(x = 0.) ?(y = 0.) name =
  t.nodes <- grow t.nodes t.nnodes { name = ""; x = 0.; y = 0. };
  t.adj <- grow t.adj t.nnodes [];
  let id = t.nnodes in
  t.nodes.(id) <- { name; x; y };
  t.adj.(id) <- [];
  t.nnodes <- id + 1;
  id

let add_link t ~src ~dst ~bandwidth ~delay =
  if src < 0 || src >= t.nnodes || dst < 0 || dst >= t.nnodes then
    invalid_arg "Topology.add_link: unknown endpoint";
  if bandwidth <= 0. then invalid_arg "Topology.add_link: non-positive bandwidth";
  if delay < 0. then invalid_arg "Topology.add_link: negative delay";
  let id = t.nlinks in
  let l = { id; src; dst; bandwidth; delay } in
  t.link_arr <- grow t.link_arr t.nlinks l;
  t.link_arr.(id) <- l;
  t.nlinks <- id + 1;
  t.adj.(src) <- l :: t.adj.(src);
  id

let add_duplex t a b ~bandwidth ~delay =
  ignore (add_link t ~src:a ~dst:b ~bandwidth ~delay);
  ignore (add_link t ~src:b ~dst:a ~bandwidth ~delay)

let num_nodes t = t.nnodes
let num_links t = t.nlinks
let links t = Array.sub t.link_arr 0 t.nlinks
let link t id = if id < 0 || id >= t.nlinks then invalid_arg "Topology.link" else t.link_arr.(id)
let out_links t n = t.adj.(n)
let node_name t n = t.nodes.(n).name
let node_pos t n = (t.nodes.(n).x, t.nodes.(n).y)

(* Propagation delay in seconds for a distance in km at 2/3 the speed of
   light (~200 000 km/s), the usual figure for fiber. *)
let fiber_delay km = km /. 200_000.

let distance t a b =
  let xa, ya = node_pos t a and xb, yb = node_pos t b in
  sqrt (((xa -. xb) ** 2.) +. ((ya -. yb) ** 2.))

let jitter rng v = v *. Sb_util.Rng.uniform_in rng 0.75 1.25

let backbone ~rng ~num_core ~pops_per_core ?(core_bandwidth = 100.) ?(pop_bandwidth = 40.) () =
  if num_core < 3 then invalid_arg "Topology.backbone: need at least 3 core nodes";
  let t = create () in
  (* Core routers on an ellipse spanning a continental-US-scale plane. *)
  let cores =
    Array.init num_core (fun i ->
        let angle = 2. *. Float.pi *. float_of_int i /. float_of_int num_core in
        let x = 2250. +. (2000. *. cos angle) in
        let y = 1500. +. (1200. *. sin angle) in
        add_node t ~x ~y (Printf.sprintf "core%d" i))
  in
  let connect a b bw =
    add_duplex t a b ~bandwidth:(jitter rng bw) ~delay:(fiber_delay (distance t a b))
  in
  (* Ring. *)
  for i = 0 to num_core - 1 do
    connect cores.(i) cores.((i + 1) mod num_core) core_bandwidth
  done;
  (* Random chords for degree ~3-4 and shorter diameters. *)
  let chords = max 1 (num_core / 2) in
  let added = Hashtbl.create 16 in
  let tries = ref 0 in
  let made = ref 0 in
  while !made < chords && !tries < 50 * chords do
    incr tries;
    let a = Sb_util.Rng.int rng num_core in
    let b = Sb_util.Rng.int rng num_core in
    let gap = min ((a - b + num_core) mod num_core) ((b - a + num_core) mod num_core) in
    if gap >= 2 && not (Hashtbl.mem added (min a b, max a b)) then begin
      Hashtbl.replace added (min a b, max a b) ();
      connect cores.(a) cores.(b) core_bandwidth;
      incr made
    end
  done;
  (* PoPs attach to their core and, for redundancy, to the next core. *)
  Array.iteri
    (fun ci core ->
      for p = 0 to pops_per_core - 1 do
        let cx, cy = node_pos t core in
        let x = cx +. Sb_util.Rng.uniform_in rng (-250.) 250. in
        let y = cy +. Sb_util.Rng.uniform_in rng (-250.) 250. in
        let pop = add_node t ~x ~y (Printf.sprintf "pop%d_%d" ci p) in
        connect pop core pop_bandwidth;
        connect pop cores.((ci + 1) mod num_core) (pop_bandwidth /. 2.)
      done)
    cores;
  t

let line ~delays ~bandwidth =
  let t = create () in
  let n = List.length delays + 1 in
  let ids = Array.init n (fun i -> add_node t (Printf.sprintf "n%d" i)) in
  List.iteri (fun i d -> add_duplex t ids.(i) ids.(i + 1) ~bandwidth ~delay:d) delays;
  t

let full_mesh ~n ~bandwidth ~delay =
  let t = create () in
  let ids = Array.init n (fun i -> add_node t (Printf.sprintf "n%d" i)) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      add_duplex t ids.(i) ids.(j) ~bandwidth ~delay
    done
  done;
  t
