(** Shortest-path routing with ECMP splitting.

    Derives from a {!Topology.t} the two routing inputs of the network model
    (Table 1): the node-to-node propagation delay [d(n1,n2)] and the routing
    fractions [r(n1,n2,e)] — the fraction of traffic from [n1] to [n2] that
    crosses link [e]. Routing follows delay-weighted shortest paths with
    OSPF-style equal-cost multipath: at every node, traffic splits evenly
    across all outgoing links that lie on a shortest path to the
    destination. *)

type t

val compute : Topology.t -> t
(** Run all-sources Dijkstra (forward and reverse). *)

val delay : t -> int -> int -> float
(** [delay t n1 n2] is the shortest-path propagation delay in seconds;
    [infinity] if unreachable; [0.] if [n1 = n2]. *)

val reachable : t -> int -> int -> bool

val fractions : t -> src:int -> dst:int -> (int * float) list
(** [(link_id, fraction)] for every link carrying a non-zero fraction of
    [src -> dst] traffic. Fractions of links out of any single node sum to
    the flow through that node; total conservation holds. Empty when
    [src = dst] or unreachable. Results are memoized. *)

val link_fraction : t -> src:int -> dst:int -> link:int -> float
(** The [r(n1,n2,e)] lookup; 0. when the link is off every shortest path. *)

val hop_count : t -> int -> int -> int
(** Number of links on one (arbitrary) shortest path; 0 for [n1 = n2],
    [max_int] if unreachable. *)
