type t = { topo : Topology.t; paths : Paths.t; loads : float array }

let create topo paths = { topo; paths; loads = Array.make (Topology.num_links topo) 0. }

let copy t = { t with loads = Array.copy t.loads }

let add_background t link_id volume = t.loads.(link_id) <- t.loads.(link_id) +. volume

let add_flow t ~src ~dst ~volume =
  if src <> dst then
    List.iter
      (fun (link_id, frac) -> t.loads.(link_id) <- t.loads.(link_id) +. (volume *. frac))
      (Paths.fractions t.paths ~src ~dst)

let remove_flow t ~src ~dst ~volume = add_flow t ~src ~dst ~volume:(-.volume)

let link_load t id = t.loads.(id)

let utilization t id =
  let l = Topology.link t.topo id in
  t.loads.(id) /. l.bandwidth

let mlu t =
  let best = ref 0. in
  for id = 0 to Array.length t.loads - 1 do
    let u = utilization t id in
    if u > !best then best := u
  done;
  !best

let path_max_utilization t ~src ~dst =
  List.fold_left
    (fun acc (link_id, _) -> Float.max acc (utilization t link_id))
    0.
    (Paths.fractions t.paths ~src ~dst)

let path_network_cost t ~src ~dst ~extra =
  List.fold_left
    (fun acc (link_id, frac) ->
      let l = Topology.link t.topo link_id in
      let before = t.loads.(link_id) /. l.bandwidth in
      let after = (t.loads.(link_id) +. (extra *. frac)) /. l.bandwidth in
      acc +. (Sb_util.Convex_cost.cost after -. Sb_util.Convex_cost.cost before))
    0.
    (Paths.fractions t.paths ~src ~dst)
