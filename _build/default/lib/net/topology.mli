(** Wide-area network topology: nodes and capacitated, delay-weighted links.

    This is the substrate for the network model of Table 1: the node set
    [N], link set [E] with bandwidths [b_e], and the inputs from which
    inter-node delays [d] and routing fractions [r] are derived
    (see {!Paths}). The paper evaluates on a proprietary tier-1 backbone;
    {!backbone} generates a synthetic stand-in with the same structure
    (core mesh + PoP spokes, geographic delays, heterogeneous capacities). *)

type t

type link = {
  id : int;
  src : int;
  dst : int;
  bandwidth : float;  (** capacity in traffic units/second (e.g. Gbps) *)
  delay : float;  (** one-way propagation delay in seconds *)
}

val create : unit -> t

val add_node : t -> ?x:float -> ?y:float -> string -> int
(** [add_node t name] returns the new node's index. [x], [y] are optional
    plane coordinates (used by generators to derive link delays). *)

val add_link : t -> src:int -> dst:int -> bandwidth:float -> delay:float -> int
(** Add a directed link; returns its id. Raises [Invalid_argument] on an
    unknown endpoint or non-positive bandwidth. *)

val add_duplex : t -> int -> int -> bandwidth:float -> delay:float -> unit
(** Add both directions with identical parameters. *)

val num_nodes : t -> int
val num_links : t -> int
val links : t -> link array
val link : t -> int -> link
val out_links : t -> int -> link list
val node_name : t -> int -> string
val node_pos : t -> int -> float * float

val backbone :
  rng:Sb_util.Rng.t ->
  num_core:int ->
  pops_per_core:int ->
  ?core_bandwidth:float ->
  ?pop_bandwidth:float ->
  unit ->
  t
(** Synthetic two-tier ISP backbone: [num_core] core routers on a ring with
    random chords (degree ~3-4), each with [pops_per_core] PoP nodes
    attached. Nodes are placed in a 4500 x 3000 km plane (continental-US
    scale); link delay is distance at 2/3 c. Core links default to 100
    units of bandwidth, PoP uplinks to 40, each jittered +-25%%. *)

val line : delays:float list -> bandwidth:float -> t
(** A simple directed-duplex path topology [n0 - n1 - ... - nk] with the
    given per-hop delays, for unit tests and small experiments. *)

val full_mesh : n:int -> bandwidth:float -> delay:float -> t
(** Complete graph with uniform parameters. *)
