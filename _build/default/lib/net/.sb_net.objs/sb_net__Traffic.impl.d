lib/net/traffic.ml: Array Sb_util
