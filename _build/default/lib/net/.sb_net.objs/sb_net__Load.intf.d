lib/net/load.mli: Paths Topology
