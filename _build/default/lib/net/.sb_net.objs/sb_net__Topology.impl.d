lib/net/topology.ml: Array Float Hashtbl List Printf Sb_util
