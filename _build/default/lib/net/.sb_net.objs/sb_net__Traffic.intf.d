lib/net/traffic.mli: Sb_util
