lib/net/load.ml: Array Float List Paths Sb_util Topology
