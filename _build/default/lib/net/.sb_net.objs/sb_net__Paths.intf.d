lib/net/paths.mli: Topology
