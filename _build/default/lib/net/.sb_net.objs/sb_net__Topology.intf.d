lib/net/topology.mli: Sb_util
