lib/net/paths.ml: Array Float Hashtbl List Topology
