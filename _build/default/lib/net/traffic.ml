type t = float array array

(* A heavy-tailed positive mass: exp of a centered gaussian-ish sum of
   uniforms (Irwin–Hall approximation), sigma ~ 1. *)
let lognormal_mass rng =
  let g = ref 0. in
  for _ = 1 to 12 do
    g := !g +. Sb_util.Rng.float rng 1.0
  done;
  exp (!g -. 6.)

let gravity ~rng ~n ~total:target =
  let mass = Array.init n (fun _ -> lognormal_mass rng) in
  let tm = Array.make_matrix n n 0. in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        tm.(i).(j) <- mass.(i) *. mass.(j);
        sum := !sum +. tm.(i).(j)
      end
    done
  done;
  if !sum > 0. then
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        tm.(i).(j) <- tm.(i).(j) /. !sum *. target
      done
    done;
  tm

let node_mass tm i = Array.fold_left ( +. ) 0. tm.(i)

let total tm = Array.fold_left (fun acc row -> acc +. Array.fold_left ( +. ) 0. row) 0. tm

let scale tm f = Array.map (Array.map (fun v -> v *. f)) tm
