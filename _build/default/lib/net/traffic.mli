(** Traffic-matrix generation.

    The paper derives chain traffic from a March-2015 tier-1 backbone
    traffic-matrix snapshot; we substitute the standard gravity model, in
    which node [i] has a mass [w_i] (skewed, lognormal-like) and demand
    from [i] to [j] is proportional to [w_i * w_j]. *)

type t = float array array
(** [t.(i).(j)] is the demand from node [i] to node [j] (0 on the
    diagonal). *)

val gravity : rng:Sb_util.Rng.t -> n:int -> total:float -> t
(** [gravity ~rng ~n ~total] draws node masses and scales demands so they
    sum to [total]. *)

val node_mass : t -> int -> float
(** Total traffic originating at a node (row sum) — the paper sizes a
    chain's traffic proportionally to the traffic at its ingress site. *)

val total : t -> float
val scale : t -> float -> t
