let eps = 1e-12

type t = {
  topo : Topology.t;
  dist : float array array; (* dist.(s).(v): shortest delay s -> v *)
  hops : int array array;
  frac_cache : (int * int, (int * float) list) Hashtbl.t;
}

(* Dijkstra without a heap: fine for the <=100-node topologies used here. *)
let dijkstra topo src =
  let n = Topology.num_nodes topo in
  let dist = Array.make n infinity in
  let hops = Array.make n max_int in
  let visited = Array.make n false in
  dist.(src) <- 0.;
  hops.(src) <- 0;
  let rec loop () =
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < infinity
         && (!u < 0 || dist.(v) < dist.(!u))
      then u := v
    done;
    if !u >= 0 then begin
      visited.(!u) <- true;
      List.iter
        (fun (l : Topology.link) ->
          let nd = dist.(!u) +. l.delay in
          if nd < dist.(l.dst) -. eps then begin
            dist.(l.dst) <- nd;
            hops.(l.dst) <- hops.(!u) + 1
          end
          else if nd < dist.(l.dst) +. eps then
            hops.(l.dst) <- min hops.(l.dst) (hops.(!u) + 1))
        (Topology.out_links topo !u);
      loop ()
    end
  in
  loop ();
  (dist, hops)

let compute topo =
  let n = Topology.num_nodes topo in
  let dist = Array.make n [||] in
  let hops = Array.make n [||] in
  for s = 0 to n - 1 do
    let d, h = dijkstra topo s in
    dist.(s) <- d;
    hops.(s) <- h
  done;
  { topo; dist; hops; frac_cache = Hashtbl.create 64 }

let delay t n1 n2 = t.dist.(n1).(n2)
let reachable t n1 n2 = t.dist.(n1).(n2) < infinity
let hop_count t n1 n2 = t.hops.(n1).(n2)

(* ECMP split: process nodes in increasing distance from [src]; each node's
   incoming flow divides evenly among its outgoing shortest-path-DAG links
   that can still reach [dst] along shortest paths. An edge (u,v) is on a
   shortest src->dst path iff dist(src,u) + delay(u,v) + dist(v,dst) =
   dist(src,dst). *)
let compute_fractions t ~src ~dst =
  if src = dst || not (reachable t src dst) then []
  else begin
    let topo = t.topo in
    let n = Topology.num_nodes topo in
    let total = t.dist.(src).(dst) in
    let on_path u (l : Topology.link) =
      let via = t.dist.(src).(u) +. l.delay +. t.dist.(l.dst).(dst) in
      Float.abs (via -. total) < 1e-9
    in
    (* Nodes on the DAG sorted by distance from src. *)
    let order =
      List.init n (fun v -> v)
      |> List.filter (fun v ->
             t.dist.(src).(v) +. t.dist.(v).(dst) -. total < 1e-9
             && t.dist.(src).(v) < infinity
             && t.dist.(v).(dst) < infinity)
      |> List.sort (fun a b -> compare t.dist.(src).(a) t.dist.(src).(b))
    in
    let inflow = Array.make n 0. in
    inflow.(src) <- 1.;
    let link_flow = Hashtbl.create 16 in
    List.iter
      (fun u ->
        if inflow.(u) > 0. && u <> dst then begin
          let next = List.filter (on_path u) (Topology.out_links topo u) in
          let share = inflow.(u) /. float_of_int (List.length next) in
          List.iter
            (fun (l : Topology.link) ->
              inflow.(l.dst) <- inflow.(l.dst) +. share;
              let cur = try Hashtbl.find link_flow l.id with Not_found -> 0. in
              Hashtbl.replace link_flow l.id (cur +. share))
            next
        end)
      order;
    Hashtbl.fold (fun id f acc -> (id, f) :: acc) link_flow []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  end

let fractions t ~src ~dst =
  match Hashtbl.find_opt t.frac_cache (src, dst) with
  | Some f -> f
  | None ->
    let f = compute_fractions t ~src ~dst in
    Hashtbl.replace t.frac_cache (src, dst) f;
    f

let link_fraction t ~src ~dst ~link =
  match List.assoc_opt link (fractions t ~src ~dst) with
  | Some f -> f
  | None -> 0.
