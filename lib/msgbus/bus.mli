(** The Switchboard global message bus (Section 6).

    A publish/subscribe fabric over the discrete-event engine. Every site
    runs a message proxy; all publishers and subscribers of a site attach
    to their local proxy. In {!Switchboard} mode, subscription filters are
    installed at the {e publisher's} site proxy, so a published message
    crosses the wide area {e once per subscribing site} regardless of how
    many subscribers that site hosts, and sites with no subscribers receive
    nothing. In {!Full_mesh} mode (the baseline of Fig. 9), the publisher
    sends one copy per {e subscriber}.

    Each proxy has a finite-rate egress (message serialization onto shared
    TCP connections) with a bounded buffer: excess load queues, overflow
    drops — the mechanism behind Fig. 9's order-of-magnitude latency gap
    and 57 % throughput gap.

    Topics are strings (e.g. ["/c1/e3/vnf_O/site_B_forwarders"]). Topics
    are {e retained}: the proxy keeps the last payload and replays it to
    late subscribers after their filter install completes, which is what
    lets Switchboard "replicate control-plane state in a fine-grained
    manner only at the required sites". *)

type 'a t

type mode =
  | Switchboard
  | Full_mesh
  | Route_reflector of int
      (** iBGP-style dissemination (the Section 6 strawman): every update
          goes to a reflector site, which floods one copy to {e every}
          other site whether or not it has subscribers. Scales better than
          full mesh but cannot target interested sites, and the reflector's
          egress serializes all control traffic. *)

type fault_decision =
  | Deliver  (** let the copy through untouched *)
  | Drop  (** lose the copy on the wire (counted in [fault_dropped]) *)
  | Delay of float
      (** add this many seconds of latency; later messages of the same
          site pair never overtake it (shared-connection FIFO) *)

type stats = {
  published : int;
  delivered : int;
  dropped : int;  (** egress-buffer overflows *)
  fault_dropped : int;  (** copies dropped by the installed fault hook *)
  wan_messages : int;  (** messages that crossed between sites *)
  latencies : float list;
      (** publish-to-deliver samples. Bounded: a deterministic fixed-size
          reservoir (16 384 samples) of the deliveries since the last
          {!reset_stats} — exact (newest first) until the reservoir fills,
          a uniform sample of the whole run beyond that, so percentile
          queries stay meaningful while memory stays O(1) in run length. *)
  latency_count : int;
      (** total latency observations, including those aged out of the
          reservoir *)
  published_bytes : int;
      (** sum of payload sizes over every [publish] (0 unless a [size_fn]
          was given to {!create}) *)
  wan_bytes : int;
      (** sum of payload sizes over every wide-area copy that entered an
          egress queue — the bytes-on-wire number rollout benches compare *)
  topic_bytes : (string * int * int) list;
      (** per topic class ([topic_key] of the topic), [(class, publishes,
          bytes)] since the last {!reset_stats}, sorted by class *)
  sizes : int list;
      (** per-publish payload sizes; bounded by the same deterministic
          reservoir discipline as [latencies] *)
  size_count : int;  (** total size observations, including aged-out ones *)
}

val create :
  Sb_sim.Engine.t ->
  mode:mode ->
  num_sites:int ->
  delay:(int -> int -> float) ->
  ?egress_rate:float ->
  ?bandwidth:float ->
  ?size_fn:('a -> int) ->
  ?topic_key:(string -> string) ->
  ?buffer:int ->
  unit ->
  'a t
(** [delay s1 s2] is the one-way proxy-to-proxy delay in seconds.
    [egress_rate] is per-proxy egress capacity in messages/s (default
    20_000); [buffer] the egress queue bound in messages (default 64).

    [size_fn] prices each payload in bytes and turns on bytes-on-wire
    accounting ([published_bytes]/[wan_bytes]/[topic_bytes]/[sizes] in
    {!stats}). [topic_key] collapses topic names into a bounded class set
    for the per-topic counters (default: identity — fine for small runs,
    pass a classifier at scale). [bandwidth], in bytes/s, makes egress
    serialization proportional to payload size ([size /. bandwidth])
    instead of the flat per-message [1 /. egress_rate] — only meaningful
    together with [size_fn]; when absent, timing is byte-blind exactly as
    before. *)

val subscribe : 'a t -> site:int -> topic:string -> ('a -> unit) -> unit
(** Install a subscription. The filter reaches the relevant proxies after a
    one-way control delay; once installed, the topic's retained payload (if
    any) is delivered to the new subscriber. *)

val publish : 'a t -> site:int -> topic:string -> 'a -> unit
(** Publish from a site; deliveries are scheduled on the engine. Local
    subscribers receive the message after a negligible in-site delay. *)

val stats : 'a t -> stats
val reset_stats : 'a t -> unit

val set_wan_hook :
  'a t -> (msg:int -> topic:string -> src:int -> dst:int -> fault_decision) -> unit
(** Install the wide-area fault/observation hook ([sb_chaos]'s injection
    point). It is consulted once per wide-area copy, before egress
    queueing: [msg] is the publish ordinal (all copies of one [publish]
    share it — at-most-one hook call per (msg, dst) pair is exactly the
    Section 6 single-copy property), [src]/[dst] the proxy pair, [topic]
    the topic the copy serves. Retained-replay and intra-site deliveries
    never cross the wide area and are not hooked. At most one hook is
    installed; a second call replaces the first. *)

val clear_wan_hook : 'a t -> unit

val subscriber_sites : 'a t -> topic:string -> int list
(** Sites holding at least one installed subscription for a topic. *)
