type 'a sub = { s_site : int; s_time : float; s_callback : 'a -> unit }

type 'a proxy = {
  mutable busy_until : float;
  mutable queued : int;
}

type fault_decision = Deliver | Drop | Delay of float

type 'a t = {
  eng : Sb_sim.Engine.t;
  mode : mode;
  delay : int -> int -> float;
  egress_rate : float;
  bandwidth : float option;
  size_fn : ('a -> int) option;
  topic_key : string -> string;
  buffer : int;
  proxies : 'a proxy array;
  subs : (string, 'a sub list ref) Hashtbl.t;
  retained : (string, 'a * int) Hashtbl.t; (* payload, publisher site *)
  mutable published : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable fault_dropped : int;
  mutable wan_messages : int;
  mutable next_msg : int; (* publish ordinal for the fault hook; never reset *)
  mutable wan_hook :
    (msg:int -> topic:string -> src:int -> dst:int -> fault_decision) option;
  pair_last : (int * int, float) Hashtbl.t;
  (* Last scheduled arrival per (src, dst) proxy pair. The proxies of a
     site pair share one TCP connection, so deliveries between a pair are
     FIFO: an arrival never lands before an earlier message of the same
     pair — a fault-injected Delay pushes everything behind it back too. *)
  (* Bounded latency reservoir (Algorithm R with a hash of the sample
     ordinal as the "random" index, so the retained sample is a
     deterministic function of the delivery sequence): the first
     [reservoir_capacity] latencies are kept verbatim, after which each new
     sample evicts a pseudo-uniform slot with probability cap/n. Memory
     stays O(capacity) however long the simulation runs. *)
  lat_reservoir : float array;
  mutable lat_count : int; (* latencies observed since the last reset *)
  (* Bytes-on-wire accounting (live only when [size_fn] is set): payload
     sizes per publish, per WAN copy, and per topic class — the
     [topic_key] collapses per-chain topic names into a bounded family
     set so the table stays O(families) at million-chain scale. The size
     reservoir mirrors the latency reservoir's Algorithm-R discipline. *)
  mutable published_bytes : int;
  mutable wan_bytes : int;
  topic_acc : (string, (int * int) ref) Hashtbl.t; (* class -> publishes, bytes *)
  size_reservoir : int array;
  mutable size_count : int;
}

and mode = Switchboard | Full_mesh | Route_reflector of int
(* Route_reflector r: every update is sent to the reflector at site [r],
   which floods one copy to every other site, interested or not — the
   iBGP-style dissemination Section 6 argues against. *)

type stats = {
  published : int;
  delivered : int;
  dropped : int;
  fault_dropped : int;
  wan_messages : int;
  latencies : float list;
  latency_count : int;
  published_bytes : int;
  wan_bytes : int;
  topic_bytes : (string * int * int) list;
  sizes : int list;
  size_count : int;
}

let local_delay = 0.0005

let reservoir_capacity = 16_384

(* Multiply-xorshift finalizer over the native int (the same 62-bit-safe
   multiplier as the stage-cost cache hash): a deterministic stand-in for
   the uniform draw of reservoir sampling. *)
let mix_ordinal n =
  let h = n * 0x2545F4914F6CDD1D in
  let h = (h lxor (h lsr 29)) * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 32)) land max_int

let create eng ~mode ~num_sites ~delay ?(egress_rate = 20_000.) ?bandwidth
    ?size_fn ?(topic_key = fun t -> t) ?(buffer = 64) () =
  {
    eng;
    mode;
    delay;
    egress_rate;
    bandwidth;
    size_fn;
    topic_key;
    buffer;
    proxies = Array.init num_sites (fun _ -> { busy_until = 0.; queued = 0 });
    subs = Hashtbl.create 64;
    retained = Hashtbl.create 64;
    published = 0;
    delivered = 0;
    dropped = 0;
    fault_dropped = 0;
    wan_messages = 0;
    next_msg = 0;
    wan_hook = None;
    pair_last = Hashtbl.create 64;
    lat_reservoir = Array.make reservoir_capacity 0.;
    lat_count = 0;
    published_bytes = 0;
    wan_bytes = 0;
    topic_acc = Hashtbl.create 32;
    size_reservoir = Array.make reservoir_capacity 0;
    size_count = 0;
  }

let set_wan_hook t hook = t.wan_hook <- Some hook
let clear_wan_hook t = t.wan_hook <- None

let record_latency t lat =
  let n = t.lat_count in
  t.lat_count <- n + 1;
  if n < reservoir_capacity then t.lat_reservoir.(n) <- lat
  else begin
    let j = mix_ordinal (n + 1) mod (n + 1) in
    if j < reservoir_capacity then t.lat_reservoir.(j) <- lat
  end

let record_size (t : _ t) size =
  let n = t.size_count in
  t.size_count <- n + 1;
  if n < reservoir_capacity then t.size_reservoir.(n) <- size
  else begin
    let j = mix_ordinal (n + 1) mod (n + 1) in
    if j < reservoir_capacity then t.size_reservoir.(j) <- size
  end

let account_publish (t : _ t) ~topic size =
  t.published_bytes <- t.published_bytes + size;
  record_size t size;
  let key = t.topic_key topic in
  match Hashtbl.find_opt t.topic_acc key with
  | Some r ->
    let n, b = !r in
    r := (n + 1, b + size)
  | None -> Hashtbl.replace t.topic_acc key (ref (1, size))

let topic_subs t topic =
  match Hashtbl.find_opt t.subs topic with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.subs topic r;
    r

(* Serialize one message onto [src]'s egress; [deliver] fires after queueing
   plus the wide-area delay. Buffer overflow drops the message. [msg] is the
   publish ordinal (one per [publish] call, shared by all of its wide-area
   copies) handed to the fault hook. *)
let send_wan (t : _ t) ~topic ~msg ~size ~src ~dst deliver =
  let decision =
    match t.wan_hook with
    | None -> Deliver
    | Some hook -> hook ~msg ~topic ~src ~dst
  in
  match decision with
  | Drop -> t.fault_dropped <- t.fault_dropped + 1
  | (Deliver | Delay _) as d ->
    let proxy = t.proxies.(src) in
    if proxy.queued >= t.buffer then t.dropped <- t.dropped + 1
    else begin
      proxy.queued <- proxy.queued + 1;
      let now = Sb_sim.Engine.now t.eng in
      let start = Float.max now proxy.busy_until in
      let ser =
        match t.bandwidth with
        | Some bw when size > 0 -> float_of_int size /. bw
        | _ -> 1. /. t.egress_rate
      in
      let finish = start +. ser in
      proxy.busy_until <- finish;
      t.wan_messages <- t.wan_messages + 1;
      t.wan_bytes <- t.wan_bytes + size;
      let extra = match d with Delay e -> Float.max 0. e | _ -> 0. in
      let arrival = finish +. t.delay src dst +. extra in
      (* Per-pair FIFO (shared TCP connection): never land before an
         earlier message of the same pair. Without a fault hook the
         arrival sequence is already monotone per pair, so this is a
         no-op on the fault-free path. *)
      let arrival =
        match Hashtbl.find_opt t.pair_last (src, dst) with
        | Some last -> Float.max arrival last
        | None -> arrival
      in
      Hashtbl.replace t.pair_last (src, dst) arrival;
      ignore
        (Sb_sim.Engine.schedule_at t.eng ~time:finish (fun () ->
             proxy.queued <- proxy.queued - 1));
      ignore (Sb_sim.Engine.schedule_at t.eng ~time:arrival deliver)
    end

(* A subscription from site S is visible to a publish from site P at time t
   once its filter has had time to reach P's proxy. *)
let visible t ~publisher ~time (s : 'a sub) =
  if s.s_site = publisher then time >= s.s_time
  else time >= s.s_time +. t.delay s.s_site publisher

let deliver_one (t : _ t) ~publish_time ~count_latency (s : 'a sub) payload =
  t.delivered <- t.delivered + 1;
  if count_latency then record_latency t (Sb_sim.Engine.now t.eng -. publish_time);
  s.s_callback payload

let subscribe (t : _ t) ~site ~topic callback =
  let now = Sb_sim.Engine.now t.eng in
  let s = { s_site = site; s_time = now; s_callback = callback } in
  let r = topic_subs t topic in
  r := s :: !r;
  (* Replay the retained payload once the filter reaches the publisher's
     proxy and the payload ships back. *)
  match Hashtbl.find_opt t.retained topic with
  | None -> ()
  | Some (payload, publisher) ->
    let rtt = if publisher = site then local_delay else 2. *. t.delay site publisher in
    ignore
      (Sb_sim.Engine.schedule t.eng ~delay:rtt (fun () ->
           t.delivered <- t.delivered + 1;
           callback payload))

let publish (t : _ t) ~site ~topic payload =
  let now = Sb_sim.Engine.now t.eng in
  t.published <- t.published + 1;
  t.next_msg <- t.next_msg + 1;
  let msg = t.next_msg in
  let size = match t.size_fn with None -> 0 | Some f -> f payload in
  if t.size_fn <> None then account_publish t ~topic size;
  Hashtbl.replace t.retained topic (payload, site);
  let all_subs = !(topic_subs t topic) in
  let subs = List.filter (visible t ~publisher:site ~time:now) all_subs in
  (* A subscriber whose filter is still in flight towards this proxy gets
     the payload as a retained replay once the filter lands (the proxy
     replays the topic's last value), so publishes in that window are not
     lost. *)
  List.iter
    (fun s ->
      if s.s_time <= now && not (visible t ~publisher:site ~time:now s) then begin
        let install = s.s_time +. t.delay s.s_site site in
        let arrival = install +. t.delay site s.s_site in
        ignore
          (Sb_sim.Engine.schedule_at t.eng ~time:(Float.max arrival now) (fun () ->
               t.delivered <- t.delivered + 1;
               s.s_callback payload))
      end)
    all_subs;
  match t.mode with
  | Full_mesh ->
    (* One copy per subscriber. *)
    List.iter
      (fun s ->
        if s.s_site = site then
          ignore
            (Sb_sim.Engine.schedule t.eng ~delay:local_delay (fun () ->
                 deliver_one t ~publish_time:now ~count_latency:true s payload))
        else
          send_wan t ~topic ~msg ~size ~src:site ~dst:s.s_site (fun () ->
              deliver_one t ~publish_time:now ~count_latency:true s payload))
      subs
  | Route_reflector reflector ->
    (* One copy to the reflector, which floods every site. Sites without
       subscribers still receive (and queue) the update. *)
    let nsites = Array.length t.proxies in
    let flood () =
      for dst = 0 to nsites - 1 do
        if dst <> reflector then begin
          let local_subs = List.filter (fun s -> s.s_site = dst) subs in
          let fan_out () =
            List.iter
              (fun s -> deliver_one t ~publish_time:now ~count_latency:true s payload)
              local_subs
          in
          send_wan t ~topic ~msg ~size ~src:reflector ~dst fan_out
        end
      done;
      (* Subscribers at the reflector site itself. *)
      List.iter
        (fun s ->
          if s.s_site = reflector then
            deliver_one t ~publish_time:now ~count_latency:true s payload)
        subs
    in
    if site = reflector then
      ignore (Sb_sim.Engine.schedule t.eng ~delay:local_delay flood)
    else send_wan t ~topic ~msg ~size ~src:site ~dst:reflector flood
  | Switchboard ->
    (* One copy per subscribing site; the remote proxy fans out locally. *)
    let sites = List.sort_uniq compare (List.map (fun s -> s.s_site) subs) in
    List.iter
      (fun dst ->
        let local_subs = List.filter (fun s -> s.s_site = dst) subs in
        let fan_out () =
          List.iter
            (fun s -> deliver_one t ~publish_time:now ~count_latency:true s payload)
            local_subs
        in
        if dst = site then
          ignore (Sb_sim.Engine.schedule t.eng ~delay:local_delay fan_out)
        else send_wan t ~topic ~msg ~size ~src:site ~dst fan_out)
      sites

let stats (t : _ t) =
  let kept = min t.lat_count reservoir_capacity in
  (* Newest first while the reservoir is not full, matching the historical
     cons-list order; beyond capacity slot order is arbitrary anyway. *)
  let latencies = ref [] in
  for i = 0 to kept - 1 do
    latencies := t.lat_reservoir.(i) :: !latencies
  done;
  let skept = min t.size_count reservoir_capacity in
  let sizes = ref [] in
  for i = 0 to skept - 1 do
    sizes := t.size_reservoir.(i) :: !sizes
  done;
  {
    published = t.published;
    delivered = t.delivered;
    dropped = t.dropped;
    fault_dropped = t.fault_dropped;
    wan_messages = t.wan_messages;
    latencies = !latencies;
    latency_count = t.lat_count;
    published_bytes = t.published_bytes;
    wan_bytes = t.wan_bytes;
    topic_bytes =
      Hashtbl.fold (fun k r acc -> (k, fst !r, snd !r) :: acc) t.topic_acc []
      |> List.sort compare;
    sizes = !sizes;
    size_count = t.size_count;
  }

let reset_stats (t : _ t) =
  t.published <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.fault_dropped <- 0;
  t.wan_messages <- 0;
  t.lat_count <- 0;
  t.published_bytes <- 0;
  t.wan_bytes <- 0;
  Hashtbl.reset t.topic_acc;
  t.size_count <- 0

let subscriber_sites t ~topic =
  List.sort_uniq compare (List.map (fun s -> s.s_site) !(topic_subs t topic))
