(** RSS-style sharded packet path over the packed dataplane (DESIGN.md §12).

    A shard is [D] {!Plane} lanes plus a persistent {!Sb_util.Pool} of one
    worker domain per lane. Each connection is owned by the lane its
    forward-oriented 5-tuple hashes to ([{!Packet.tuple_hash} mod D]), so a
    lane's flow table, balancer RNG stream, and stage counters are private:
    the affinity hot path ({!drive}, {!drive_batch}) never takes a lock or
    touches another domain's cache lines. Reverse packets carry the
    forward-oriented tuple (the {!Flow_table.key} contract), so symmetric
    return is lane-affine by construction and nothing about a live
    connection ever crosses domains.

    Control operations (topology build, rule installs, fail/revive,
    weights) are {e mirrored}: every lane replays the identical call, and
    [Plane]'s deterministic id allocation keeps the lanes id-aligned.
    Rules are therefore duplicated [D] ways — cheap, they are small and
    read-only on the packet path — while connection state, the part that
    actually scales with load, is partitioned.

    Determinism contract: lane [l]'s balancer draws come from
    [Rng.split ~stream:l] of the root seed — a pure function of
    [(seed, l)] — so for a fixed [(seed, lanes)] every per-flow outcome is
    reproducible regardless of batch sizes or interleaving. A shard with
    [lanes = 1] {e is} a [Plane.create ~seed] driven inline: bit-identical
    traces, draws, and table layouts — the equivalence oracle the tests
    pin.

    Concurrency contract: {!drive_batch} runs on the worker domains; every
    other entry point runs on the caller. Do not call anything else while
    a [drive_batch] is in flight (it joins before returning, so ordinary
    sequential use is fine). *)

type t

type endpoint = Plane.endpoint =
  | Edge of int
  | Forwarder of int
  | Vnf_instance of int

type flow_store = Plane.flow_store = Local | Replicated of int

type error = Plane.error =
  | No_rule of { forwarder : int; stage : int }
  | No_reverse_entry of { forwarder : int; stage : int }
  | Instance_down of int
  | Forwarder_down of int
  | Ttl_exceeded
  | Not_an_edge

val pp_error : Format.formatter -> error -> unit

val create : ?seed:int -> ?flow_store:flow_store -> ?lanes:int -> unit -> t
(** [create ~seed ~flow_store ~lanes ()] builds [lanes] planes (default 1)
    and, when [lanes > 1], spawns the worker pool. Lane 0 is seeded with
    [seed] itself; lane [l > 0] with stream [l] of [seed]. *)

val lanes : t -> int

val lane : t -> int -> Plane.t
(** Direct access to one lane's plane. [lane t 0] of a 1-lane shard is the
    whole dataplane — the back-compat view {!Sb_ctrl.System.fabric}
    returns. Mutating a lane directly on a multi-lane shard breaks the
    mirror alignment; benches use it read-mostly (per-lane capacity runs
    drive a lane inline with that lane's own partition). *)

val lane_of : t -> Packet.five_tuple -> int
(** Owning lane of a (forward-oriented) 5-tuple. *)

val shutdown : t -> unit
(** Join the worker pool (no-op for 1 lane, and idempotent). *)

(** {2 Mirrored control plane} — same contracts as the {!Fabric}
    functions of the same name; ids returned are valid on every lane. *)

val add_site : t -> string -> int
val add_forwarder : t -> site:int -> int
val add_edge : t -> site:int -> forwarder:int -> int

val add_vnf_instance :
  t -> vnf:int -> site:int -> forwarder:int -> ?weight:float -> unit -> int

val set_instance_weight : t -> int -> float -> unit
val fail_forwarder : t -> int -> unit
val revive_forwarder : t -> int -> unit
val fail_instance : t -> int -> unit
val revive_instance : t -> int -> unit
val reattach_edge : t -> int -> forwarder:int -> unit
val reattach_instance : t -> int -> forwarder:int -> unit

val install_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list ->
  unit

val install_rx_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list ->
  unit

val apply_delta : t -> forwarder:int -> Plane.rule_patch list -> int
(** Mirrored batched rule patching ({!Plane.apply_delta}); the lanes must
    agree on the applied count, which the id-alignment invariant
    guarantees. *)

val reset_counters : t -> unit

val transfer_flows : t -> from_instance:int -> to_instance:int -> int
(** Mirrored; the per-lane moved counts (each lane owns a disjoint set of
    connections) sum to the single-plane total. *)

val instance_flow_count : t -> int -> int
(** Summed over lanes: flow-table cells still pinning a connection to the
    VNF instance — the occupancy a scale-in drain polls until zero (see
    {!Plane.instance_flow_count}). *)

(** {2 Read-only views} (identical on every lane; served from lane 0) *)

val instance_vnf : t -> int -> int
val instance_site : t -> int -> int
val instance_weight : t -> int -> float
val instance_alive : t -> int -> bool
val forwarder_alive : t -> int -> bool
val forwarder_site : t -> int -> int
val site_name : t -> int -> string
val attached_instances : t -> forwarder:int -> int list
val forwarder_published_weight : t -> int -> int -> float

val rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list option

val rx_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list option

val mutations : t -> int

val arena_stats : t -> Plane.arena_stats
(** Lane 0's rule-arena occupancy (the lanes mirror each other). *)

val vnfs_in_trace : t -> endpoint list -> int list
val instances_in_trace : endpoint list -> int list

(** {2 Packet entry points} (routed to the owning lane) *)

val send_forward :
  t ->
  ingress:int ->
  chain_label:int ->
  egress_label:int ->
  ?size:int ->
  Packet.five_tuple ->
  (endpoint list, error) result

val send_reverse :
  t ->
  egress:int ->
  chain_label:int ->
  egress_label:int ->
  ?size:int ->
  Packet.five_tuple ->
  (endpoint list, error) result

val drive :
  t ->
  ingress:int ->
  chain_label:int ->
  egress_label:int ->
  size:int ->
  Packet.five_tuple ->
  bool
(** Single packet, driven inline on the caller (the owning lane's plane is
    touched directly — probes and tests; batches go through
    {!drive_batch}). *)

val drive_batch :
  t ->
  ingress:int ->
  chain_label:int ->
  egress_label:int ->
  size:int ->
  Packet.five_tuple array ->
  int
(** Drive a whole batch: the caller partitions the batch into per-lane
    SPSC handoff rings (indices, in arrival order), the pool wakes one
    worker per lane to drain its ring against its private plane, and the
    join publishes the per-lane delivered counts. Returns the number of
    packets that reached an egress edge. With 1 lane, runs inline with no
    pool and is bit-identical to a {!Fabric.drive} loop. *)

val end_flow : t -> Packet.five_tuple -> unit
(** Connection teardown on the owning lane (the only lane with state). *)

val set_clock : t -> int -> unit
(** Mirrored {!Plane.set_clock}: the logical timestamp packets stamp onto
    the flow-table entries they touch. *)

val clock : t -> int

val expire_flows : t -> idle_before:int -> int
(** {!Plane.expire_flows} on every lane; flow state is lane-private, so
    the per-lane eviction counts sum. *)

(** {2 Aggregated read-outs} (summed across lanes) *)

val flow_table_size : t -> forwarder:int -> int

val flow_table_stats : t -> forwarder:int -> int * int * int
(** [(count, capacity, max_probe)] summed/maxed across lanes. *)

val stage_counters :
  t -> chain_label:int -> egress_label:int -> stage:int -> int * int

val site_stage_counters :
  t -> site:int -> chain_label:int -> egress_label:int -> stage:int -> int * int

val site_stage_counters_into :
  t ->
  site:int ->
  chain_label:int ->
  egress_label:int ->
  pkts:int array ->
  bytes:int array ->
  unit
(** Lane-aggregated bulk form used by the telemetry exporter; scratch is
    reused, so like the [Plane] original it allocates only on the first
    call for a given stage width. *)
