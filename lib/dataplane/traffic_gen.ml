type size_model = Fixed of int | Imix

type flow_selection = Uniform | Zipfian of float

(* Static mode owns a materialized connection population (the original
   MoonGen-style generator). Streaming mode never materializes one: the
   live set is the index window [lo, hi), each index's 5-tuple a pure
   function of (salt, index), so a scenario can cycle millions of
   distinct flows in O(1) memory. *)
type mode =
  | Static of Packet.five_tuple array
  | Stream of stream

and stream = {
  salt : int;
  window : int;
  mutable lo : int; (* oldest live flow index *)
  mutable hi : int; (* next index to open; live flows are [lo, hi) *)
}

type t = {
  rng : Sb_util.Rng.t;
  mode : mode;
  sizes : size_model;
  zipf : Sb_util.Zipf.t option;
}

let check_sizes = function
  | Fixed n when n <= 0 -> invalid_arg "Traffic_gen.create: non-positive packet size"
  | Fixed _ | Imix -> ()

let zipf_of ~n = function
  | Uniform -> None
  | Zipfian s -> Some (Sb_util.Zipf.create ~n ~s)

let create ~rng ~flows ?(sizes = Fixed 64) ?(selection = Uniform) () =
  if flows <= 0 then invalid_arg "Traffic_gen.create: flows must be positive";
  check_sizes sizes;
  let tuples = Array.init flows (fun _ -> Packet.random_tuple rng) in
  { rng; mode = Static tuples; sizes; zipf = zipf_of ~n:flows selection }

(* The index's 5-tuple, derived by avalanche mixing — ~75 bits of tuple
   entropy, so distinct indices collide with negligible probability even
   at tens of millions of flows. Field ranges match [Packet.random_tuple]. *)
let stream_tuple salt i =
  let h1 = Packet.mix (salt lxor ((2 * i) + 0x2545F491)) in
  let h2 = Packet.mix (h1 lxor (i + 0x85EBCA6B)) in
  let h3 = Packet.mix (h2 lxor salt) in
  {
    Packet.src_ip = h1 land 0xFFFFFF;
    dst_ip = h2 land 0xFFFFFF;
    proto = (if h3 land 1 = 0 then 6 else 17);
    src_port = 1024 + ((h3 lsr 1) mod 64000);
    dst_port = 1 + ((h3 lsr 21) mod 1023);
  }

let create_stream ~seed ~window ?(sizes = Fixed 64) ?(selection = Uniform) () =
  if window <= 0 then invalid_arg "Traffic_gen.create_stream: window must be positive";
  check_sizes sizes;
  {
    rng = Sb_util.Rng.create seed;
    mode = Stream { salt = Packet.mix (seed lxor 0x6A09E667); window; lo = 0; hi = window };
    sizes;
    zipf = zipf_of ~n:window selection;
  }

let is_streaming t = match t.mode with Stream _ -> true | Static _ -> false

let live_flows t =
  match t.mode with Static a -> Array.length a | Stream s -> s.hi - s.lo

let distinct_flows t =
  match t.mode with Static a -> Array.length a | Stream s -> s.hi

let churn t ?close ?opened n =
  match t.mode with
  | Static _ -> invalid_arg "Traffic_gen.churn: static generator"
  | Stream s ->
    if n < 0 then invalid_arg "Traffic_gen.churn: negative count";
    (* Slide the window: close the n oldest live flows, open n fresh
       ones. Bounded by the live set so [lo] never overtakes [hi]. *)
    let n = min n (s.hi - s.lo) in
    (match close with
    | None -> ()
    | Some f ->
      for i = s.lo to s.lo + n - 1 do
        f (stream_tuple s.salt i)
      done);
    s.lo <- s.lo + n;
    (match opened with
    | None -> ()
    | Some f ->
      for i = s.hi to s.hi + n - 1 do
        f (stream_tuple s.salt i)
      done);
    s.hi <- s.hi + n

let pick_size t =
  match t.sizes with
  | Fixed n -> n
  | Imix -> (
    (* Classic IMIX: 7 small, 4 medium, 1 large per 12 packets. *)
    match Sb_util.Rng.int t.rng 12 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 -> 64
    | 7 | 8 | 9 | 10 -> 570
    | _ -> 1514)

let next t =
  let tuple =
    match t.mode with
    | Static tuples ->
      let i =
        match t.zipf with
        | None -> Sb_util.Rng.int t.rng (Array.length tuples)
        | Some z -> Sb_util.Zipf.sample z t.rng
      in
      tuples.(i)
    | Stream s ->
      let i =
        match t.zipf with
        | None -> s.lo + Sb_util.Rng.int t.rng (s.hi - s.lo)
        | Some z ->
          (* Zipf rank 0 is the most popular flow; map it to the newest
             live index so the hot set rolls with the churn. *)
          let r = Sb_util.Zipf.sample z t.rng in
          max s.lo (s.hi - 1 - r)
      in
      stream_tuple s.salt i
  in
  (tuple, pick_size t)

let burst t n = List.init n (fun _ -> next t)

let flow_tuples t =
  match t.mode with
  | Static tuples -> Array.copy tuples
  | Stream s -> Array.init (s.hi - s.lo) (fun j -> stream_tuple s.salt (s.lo + j))
