module Rng = Sb_util.Rng
module Pool = Sb_util.Pool

type endpoint = Plane.endpoint =
  | Edge of int
  | Forwarder of int
  | Vnf_instance of int

type flow_store = Plane.flow_store = Local | Replicated of int

type error = Plane.error =
  | No_rule of { forwarder : int; stage : int }
  | No_reverse_entry of { forwarder : int; stage : int }
  | Instance_down of int
  | Forwarder_down of int
  | Ttl_exceeded
  | Not_an_edge

let pp_error = Plane.pp_error

(* Workers publish per-lane delivery counts into one int array; spreading
   the slots a cache line apart keeps the counter writes from bouncing a
   shared line between domains. *)
let pad = 8

type t = {
  lanes : Plane.t array; (* lane 0 carries the root seed *)
  nlanes : int;
  pool : Pool.t option; (* Some iff nlanes > 1 *)
  mutable rings : Pool.Spsc.t array; (* per-lane batch handoff *)
  delivered : int array; (* lane l writes slot l * pad *)
  (* Batch under dispatch: written by the caller before the pool wakes,
     read by the workers — ordered by the pool's own mutex. *)
  mutable b_tuples : Packet.five_tuple array;
  mutable b_ingress : int;
  mutable b_chain : int;
  mutable b_egress : int;
  mutable b_size : int;
  (* scratch for cross-lane counter aggregation *)
  mutable sc_p : int array;
  mutable sc_b : int array;
}

(* Lane l's balancer draws come from stream l of the root seed: a pure
   function of (seed, l), so outcomes are reproducible for a fixed domain
   count no matter how batches interleave. Lane 0 keeps the root seed
   itself, which is what makes a 1-lane shard bit-identical to a plain
   [Plane.create ~seed]. *)
let lane_seed seed l =
  if l = 0 then seed
  else Int64.to_int (Rng.bits64 (Rng.split ~stream:l (Rng.create seed)))

let create ?(seed = 0xF0) ?(flow_store = Plane.Local) ?(lanes = 1) () =
  if lanes < 1 then invalid_arg "Shard.create: lanes must be >= 1";
  {
    lanes =
      Array.init lanes (fun l ->
          Plane.create ~seed:(lane_seed seed l) ~flow_store ());
    nlanes = lanes;
    pool = (if lanes > 1 then Some (Pool.create ~workers:lanes ()) else None);
    rings = [||];
    delivered = Array.make (lanes * pad) 0;
    b_tuples = [||];
    b_ingress = 0;
    b_chain = 0;
    b_egress = 0;
    b_size = 0;
    sc_p = [||];
    sc_b = [||];
  }

let lanes t = t.nlanes
let lane t l = t.lanes.(l)
let shutdown t = match t.pool with None -> () | Some p -> Pool.shutdown p

let lane_of t flow =
  if t.nlanes = 1 then 0 else Packet.tuple_hash flow mod t.nlanes

(* ------------------------- mirrored control ------------------------- *)

(* Every lane replays the same build/control call; [Plane]'s id allocation
   is deterministic in the call sequence, so the lanes stay id-aligned —
   checked on the id-returning ops, which only run at build/mutation time. *)

let mirror t f =
  for l = 0 to t.nlanes - 1 do
    f t.lanes.(l)
  done

let mirror_id t f =
  let id = f t.lanes.(0) in
  for l = 1 to t.nlanes - 1 do
    if f t.lanes.(l) <> id then
      invalid_arg "Shard: lanes diverged on id allocation"
  done;
  id

let add_site t name = mirror_id t (fun p -> Plane.add_site p name)
let add_forwarder t ~site = mirror_id t (fun p -> Plane.add_forwarder p ~site)

let add_edge t ~site ~forwarder =
  mirror_id t (fun p -> Plane.add_edge p ~site ~forwarder)

let add_vnf_instance t ~vnf ~site ~forwarder ?weight () =
  mirror_id t (fun p -> Plane.add_vnf_instance p ~vnf ~site ~forwarder ?weight ())

let set_instance_weight t id w = mirror t (fun p -> Plane.set_instance_weight p id w)
let fail_forwarder t id = mirror t (fun p -> Plane.fail_forwarder p id)
let revive_forwarder t id = mirror t (fun p -> Plane.revive_forwarder p id)
let fail_instance t id = mirror t (fun p -> Plane.fail_instance p id)
let revive_instance t id = mirror t (fun p -> Plane.revive_instance p id)

let reattach_edge t id ~forwarder =
  mirror t (fun p -> Plane.reattach_edge p id ~forwarder)

let reattach_instance t id ~forwarder =
  mirror t (fun p -> Plane.reattach_instance p id ~forwarder)

let install_rule t ~forwarder ~chain_label ~egress_label ~stage targets =
  mirror t (fun p ->
      Plane.install_rule p ~forwarder ~chain_label ~egress_label ~stage targets)

let install_rx_rule t ~forwarder ~chain_label ~egress_label ~stage targets =
  mirror t (fun p ->
      Plane.install_rx_rule p ~forwarder ~chain_label ~egress_label ~stage targets)

let apply_delta t ~forwarder patches =
  let applied = Plane.apply_delta t.lanes.(0) ~forwarder patches in
  for l = 1 to t.nlanes - 1 do
    if Plane.apply_delta t.lanes.(l) ~forwarder patches <> applied then
      invalid_arg "Shard: lanes diverged on delta application"
  done;
  applied

let reset_counters t = mirror t Plane.reset_counters

let transfer_flows t ~from_instance ~to_instance =
  (* Each lane only holds the connections it owns, so the per-lane moved
     counts sum to the single-plane total. *)
  let moved = ref 0 in
  mirror t (fun p ->
      moved := !moved + Plane.transfer_flows p ~from_instance ~to_instance);
  !moved

let instance_flow_count t instance =
  (* Lane-private flow state: per-lane occupancies sum. *)
  let count = ref 0 in
  mirror t (fun p -> count := !count + Plane.instance_flow_count p instance);
  !count

(* ----------------------- lane-0 read-only views --------------------- *)

let instance_vnf t id = Plane.instance_vnf t.lanes.(0) id
let instance_site t id = Plane.instance_site t.lanes.(0) id
let instance_weight t id = Plane.instance_weight t.lanes.(0) id
let instance_alive t id = Plane.instance_alive t.lanes.(0) id
let forwarder_alive t id = Plane.forwarder_alive t.lanes.(0) id
let forwarder_site t id = Plane.forwarder_site t.lanes.(0) id
let site_name t id = Plane.site_name t.lanes.(0) id
let attached_instances t ~forwarder = Plane.attached_instances t.lanes.(0) ~forwarder

let forwarder_published_weight t fwd inst =
  Plane.forwarder_published_weight t.lanes.(0) fwd inst

let rule t ~forwarder ~chain_label ~egress_label ~stage =
  Plane.rule t.lanes.(0) ~forwarder ~chain_label ~egress_label ~stage

let rx_rule t ~forwarder ~chain_label ~egress_label ~stage =
  Plane.rx_rule t.lanes.(0) ~forwarder ~chain_label ~egress_label ~stage

let mutations t = Plane.mutations t.lanes.(0)
let arena_stats t = Plane.arena_stats t.lanes.(0)
let vnfs_in_trace t trace = Plane.vnfs_in_trace t.lanes.(0) trace
let instances_in_trace = Plane.instances_in_trace

(* -------------------------- packet entry ---------------------------- *)

let send_forward t ~ingress ~chain_label ~egress_label ?size flow =
  Plane.send_forward t.lanes.(lane_of t flow) ~ingress ~chain_label ~egress_label
    ?size flow

let send_reverse t ~egress ~chain_label ~egress_label ?size flow =
  (* [flow] is forward-oriented (the {!Flow_table.key} contract), so both
     directions of a connection hash to the same lane and symmetric-return
     state never crosses domains. *)
  Plane.send_reverse t.lanes.(lane_of t flow) ~egress ~chain_label ~egress_label
    ?size flow

let drive t ~ingress ~chain_label ~egress_label ~size flow =
  Plane.drive t.lanes.(lane_of t flow) ~ingress ~chain_label ~egress_label ~size
    flow

let end_flow t flow = Plane.end_flow t.lanes.(lane_of t flow) flow

let set_clock t now = mirror t (fun p -> Plane.set_clock p now)
let clock t = Plane.clock t.lanes.(0)

let expire_flows t ~idle_before =
  (* Flow state is lane-private, so the per-lane evictions sum. *)
  let removed = ref 0 in
  mirror t (fun p -> removed := !removed + Plane.expire_flows p ~idle_before);
  !removed

let ensure_rings t n =
  if
    Array.length t.rings < t.nlanes
    || Pool.Spsc.capacity t.rings.(0) < n
  then t.rings <- Array.init t.nlanes (fun _ -> Pool.Spsc.create (max n 1))

let drive_batch t ~ingress ~chain_label ~egress_label ~size tuples =
  let n = Array.length tuples in
  match t.pool with
  | None ->
    let d = ref 0 in
    for i = 0 to n - 1 do
      if Plane.drive t.lanes.(0) ~ingress ~chain_label ~egress_label ~size tuples.(i)
      then incr d
    done;
    !d
  | Some pool ->
    (* Dispatch: the caller is the single producer for every lane's ring;
       each worker is the single consumer of its own. The rings carry
       indices into the shared batch array, pushed in arrival order, so
       per-lane packet order equals program order. *)
    ensure_rings t n;
    t.b_tuples <- tuples;
    t.b_ingress <- ingress;
    t.b_chain <- chain_label;
    t.b_egress <- egress_label;
    t.b_size <- size;
    for i = 0 to n - 1 do
      ignore (Pool.Spsc.push t.rings.(Packet.tuple_hash tuples.(i) mod t.nlanes) i)
    done;
    Pool.run pool (fun w ->
        let plane = t.lanes.(w) in
        let ring = t.rings.(w) in
        let ingress = t.b_ingress
        and chain_label = t.b_chain
        and egress_label = t.b_egress
        and size = t.b_size
        and tuples = t.b_tuples in
        let d = ref 0 in
        let i = ref (Pool.Spsc.pop ring) in
        while !i >= 0 do
          if Plane.drive plane ~ingress ~chain_label ~egress_label ~size tuples.(!i)
          then incr d;
          i := Pool.Spsc.pop ring
        done;
        t.delivered.(w * pad) <- !d);
    let d = ref 0 in
    for l = 0 to t.nlanes - 1 do
      d := !d + t.delivered.(l * pad)
    done;
    !d

(* ----------------------- aggregated read-outs ----------------------- *)

let flow_table_size t ~forwarder =
  let n = ref 0 in
  mirror t (fun p -> n := !n + Plane.flow_table_size p ~forwarder);
  !n

let flow_table_stats t ~forwarder =
  let count = ref 0 and cap = ref 0 and maxp = ref 0 in
  mirror t (fun p ->
      let c, k, m = Plane.flow_table_stats p ~forwarder in
      count := !count + c;
      cap := !cap + k;
      if m > !maxp then maxp := m);
  (!count, !cap, !maxp)

let stage_counters t ~chain_label ~egress_label ~stage =
  let pk = ref 0 and by = ref 0 in
  mirror t (fun p ->
      let p', b' = Plane.stage_counters p ~chain_label ~egress_label ~stage in
      pk := !pk + p';
      by := !by + b');
  (!pk, !by)

let site_stage_counters t ~site ~chain_label ~egress_label ~stage =
  let pk = ref 0 and by = ref 0 in
  mirror t (fun p ->
      let p', b' =
        Plane.site_stage_counters p ~site ~chain_label ~egress_label ~stage
      in
      pk := !pk + p';
      by := !by + b');
  (!pk, !by)

let site_stage_counters_into t ~site ~chain_label ~egress_label ~pkts ~bytes =
  if t.nlanes = 1 then
    Plane.site_stage_counters_into t.lanes.(0) ~site ~chain_label ~egress_label
      ~pkts ~bytes
  else begin
    let stages = Array.length pkts in
    if Array.length t.sc_p <> stages then begin
      t.sc_p <- Array.make stages 0;
      t.sc_b <- Array.make stages 0
    end;
    Array.fill pkts 0 stages 0;
    Array.fill bytes 0 stages 0;
    mirror t (fun p ->
        Plane.site_stage_counters_into p ~site ~chain_label ~egress_label
          ~pkts:t.sc_p ~bytes:t.sc_b;
        for s = 0 to stages - 1 do
          pkts.(s) <- pkts.(s) + t.sc_p.(s);
          bytes.(s) <- bytes.(s) + t.sc_b.(s)
        done)
  end
