(** Per-forwarder connection state (Section 3, "connection setup time").

    Maps a connection at one stage of one chain to the load-balancing
    decision made for its first packet: the chosen next hop and the
    previous hop it arrived from. Later packets of the connection hit the
    entry instead of the balancer (flow affinity); reverse-direction
    packets follow [prev] (symmetric return). *)

type key = {
  chain_label : int;
  egress_label : int;
  stage : int;
  flow : Packet.five_tuple;  (** forward orientation *)
}

type 'hop entry = { next : 'hop; prev : 'hop }

type 'hop t

val create : unit -> 'hop t
val size : 'hop t -> int

val stats : 'hop t -> int * int * int
(** [(count, capacity, max_probe)]: live entries, bucket count of the
    backing table, and the longest bucket chain a lookup can walk — the
    hashed-table analogue of {!Plane.flow_table_stats} so occupancy
    telemetry reads the same on either implementation. *)

val find : 'hop t -> key -> 'hop entry option
val insert : 'hop t -> key -> 'hop entry -> unit
(** Overwrites any existing entry for the key. *)

val remove : 'hop t -> key -> unit
val remove_flow : 'hop t -> Packet.five_tuple -> unit
(** Drop every entry of a connection (all stages/chains) — connection
    teardown. O(stages of the connection) via a by-connection index, not a
    scan of the whole table. *)

val entries : 'hop t -> (key * 'hop entry) list
val clear : 'hop t -> unit
