(** Packets and connection identity for the Switchboard data plane.

    A connection is identified by its 5-tuple; packets additionally carry
    the two labels affixed by the ingress edge instance (Section 3): the
    chain label (customer + chain) and the egress-site label. Labelled
    packets also carry their current {e stage} — which chain element they
    last left — standing in for the interface/label demultiplexing a real
    forwarder performs. *)

type five_tuple = {
  src_ip : int;
  dst_ip : int;
  proto : int;
  src_port : int;
  dst_port : int;
}

val reverse_tuple : five_tuple -> five_tuple
(** Swap source and destination (the header of a reply packet). *)

val canonical : five_tuple -> five_tuple
(** Orientation-independent key: the lexicographically smaller of the tuple
    and its reverse, so both directions of a connection map to one flow
    table entry family. *)

val random_tuple : Sb_util.Rng.t -> five_tuple

val mix : int -> int
(** Avalanche mix of a native int into [\[0, max_int\]] — the hash the
    packed dataplane builds its int flow keys from. *)

val tuple_hash : five_tuple -> int
(** Non-negative hash of the 5-tuple (orientation-sensitive; hash
    [canonical t] for an orientation-free key). *)

type direction = Forward | Reverse

type t = {
  chain_label : int;
  egress_label : int;
  flow : five_tuple;  (** always in forward orientation *)
  direction : direction;
  stage : int;  (** index of the stage the packet is traversing *)
  size : int;  (** bytes *)
}

val forward : chain_label:int -> egress_label:int -> ?size:int -> five_tuple -> t
(** A fresh forward packet at stage 0. *)

val reverse_of : t -> last_stage:int -> t
(** The reply packet entering at the egress, traversing [last_stage]
    backwards. *)

val pp_tuple : Format.formatter -> five_tuple -> unit
