(* The seed (hashtable-based) fabric implementation, kept verbatim as the
   behavioural oracle for the packed data plane in {!Plane}: the
   equivalence property in [test_dataplane.ml] drives identical traffic
   and churn through both and asserts identical traces, errors, flow-table
   sizes and counters, and the [fabric] benchmark kernel uses it as the
   before-side of the packets-per-second comparison. Types are equated
   with {!Plane}'s so results compare directly. *)

type endpoint = Plane.endpoint = Edge of int | Forwarder of int | Vnf_instance of int

type flow_store = Plane.flow_store = Local | Replicated of int

type counter = { mutable packets : int; mutable bytes : int }

type fwd_state = {
  f_site : int;
  rules : (int * int * int, (endpoint * float) list) Hashtbl.t;
  rules_rx : (int * int * int, (endpoint * float) list) Hashtbl.t;
  (* receiver-side override: consulted for packets arriving from a peer
     forwarder, so a mid-relay packet is delivered into the local element
     instead of being balanced onward (which would visit a third
     forwarder in the same stage and collide in the role-keyed DHT) *)
  table : endpoint Flow_table.t;
  mutable f_alive : bool;
  counters : (int * int * int, counter) Hashtbl.t;
  (* per (chain, egress, stage): forward traffic this forwarder delivered
     into the stage's destination element *)
}

type edge_state = { e_site : int; e_fwd : int }

type inst_state = {
  i_vnf : int;
  i_site : int;
  i_fwd : int;
  mutable i_weight : float;
  mutable i_alive : bool;
}

type t = {
  rng : Sb_util.Rng.t;
  sites : (int, string) Hashtbl.t;
  fwds : (int, fwd_state) Hashtbl.t;
  edges : (int, edge_state) Hashtbl.t;
  insts : (int, inst_state) Hashtbl.t;
  dht : endpoint Flow_table.entry Dht_table.t option;
  (* Replicated mode (Section 5.3): connection state lives in a DHT spread
     over the forwarder nodes instead of per-forwarder tables. *)
  mutable next_id : int;
}

let create ?(seed = 0xF0) ?(flow_store = Local) () =
  {
    rng = Sb_util.Rng.create seed;
    sites = Hashtbl.create 8;
    fwds = Hashtbl.create 8;
    edges = Hashtbl.create 8;
    insts = Hashtbl.create 8;
    dht =
      (match flow_store with
      | Local -> None
      | Replicated k -> Some (Dht_table.create ~replication:k ()));
    next_id = 0;
  }

let fresh t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let add_site t name =
  let id = fresh t in
  Hashtbl.replace t.sites id name;
  id

let add_forwarder t ~site =
  if not (Hashtbl.mem t.sites site) then invalid_arg "Fabric.add_forwarder: unknown site";
  let id = fresh t in
  Hashtbl.replace t.fwds id
    {
      f_site = site;
      rules = Hashtbl.create 8;
      rules_rx = Hashtbl.create 8;
      table = Flow_table.create ();
      f_alive = true;
      counters = Hashtbl.create 8;
    };
  (match t.dht with Some d -> Dht_table.add_node d id | None -> ());
  id

let get_fwd t id =
  match Hashtbl.find_opt t.fwds id with
  | Some f -> f
  | None -> invalid_arg "Fabric: unknown forwarder"

let add_edge t ~site ~forwarder =
  ignore (get_fwd t forwarder);
  let id = fresh t in
  Hashtbl.replace t.edges id { e_site = site; e_fwd = forwarder };
  id

let add_vnf_instance t ~vnf ~site ~forwarder ?(weight = 1.0) () =
  ignore (get_fwd t forwarder);
  let id = fresh t in
  Hashtbl.replace t.insts id
    { i_vnf = vnf; i_site = site; i_fwd = forwarder; i_weight = weight; i_alive = true };
  id

let get_inst t id =
  match Hashtbl.find_opt t.insts id with
  | Some i -> i
  | None -> invalid_arg "Fabric: unknown VNF instance"

let instance_vnf t id = (get_inst t id).i_vnf
let instance_site t id = (get_inst t id).i_site
let instance_weight t id = (get_inst t id).i_weight
let set_instance_weight t id w = (get_inst t id).i_weight <- w
let instance_alive t id = (get_inst t id).i_alive
let fail_instance t id = (get_inst t id).i_alive <- false
let forwarder_site t id = (get_fwd t id).f_site

let site_name t id =
  match Hashtbl.find_opt t.sites id with
  | Some n -> n
  | None -> invalid_arg "Fabric: unknown site"

let attached_instances t ~forwarder =
  Hashtbl.fold (fun id i acc -> if i.i_fwd = forwarder then id :: acc else acc) t.insts []
  |> List.sort compare

let forwarder_published_weight t fwd vnf =
  Hashtbl.fold
    (fun _ i acc -> if i.i_fwd = fwd && i.i_vnf = vnf then acc +. i.i_weight else acc)
    t.insts 0.

let install_rule t ~forwarder ~chain_label ~egress_label ~stage targets =
  let f = get_fwd t forwarder in
  Hashtbl.replace f.rules (chain_label, egress_label, stage) targets

let install_rx_rule t ~forwarder ~chain_label ~egress_label ~stage targets =
  let f = get_fwd t forwarder in
  Hashtbl.replace f.rules_rx (chain_label, egress_label, stage) targets

let rule t ~forwarder ~chain_label ~egress_label ~stage =
  Hashtbl.find_opt (get_fwd t forwarder).rules (chain_label, egress_label, stage)

let flow_table_size t ~forwarder = Flow_table.size (get_fwd t forwarder).table

type error = Plane.error =
  | No_rule of { forwarder : int; stage : int }
  | No_reverse_entry of { forwarder : int; stage : int }
  | Instance_down of int
  | Forwarder_down of int
  | Ttl_exceeded
  | Not_an_edge

let pp_error = Plane.pp_error

(* Flow-state access: per-forwarder table in Local mode, the shared
   forwarder DHT in Replicated mode. In the DHT, state is keyed by the
   logical ROLE a forwarder plays for the stage (sender side = the
   forwarder adjacent to the emitting element, receiver side = the one
   fronting the receiving element) rather than by forwarder identity, so a
   replacement forwarder finds a dead peer's entries. The role is encoded
   into the key's stage field. *)
let dht_key (key : Flow_table.key) ~side =
  { key with Flow_table.stage = (2 * key.Flow_table.stage) + side }

let state_find t (f : fwd_state) ~side key =
  match t.dht with
  | None -> Flow_table.find f.table key
  | Some d -> Dht_table.get d ~key:(dht_key key ~side)

let state_insert t (f : fwd_state) ~side key entry =
  match t.dht with
  | None -> Flow_table.insert f.table key entry
  | Some d -> Dht_table.put d ~key:(dht_key key ~side) entry

(* Reverse traversal must recover which role this forwarder played: prefer
   the receiver-side entry unless it names this forwarder as the sender it
   received from (then this forwarder was the sender). *)
let state_find_reverse t (f : fwd_state) fwd_id key =
  match t.dht with
  | None -> Flow_table.find f.table key
  | Some d -> (
    match Dht_table.get d ~key:(dht_key key ~side:1) with
    | Some e when e.Flow_table.prev <> Forwarder fwd_id -> Some e
    | _ -> Dht_table.get d ~key:(dht_key key ~side:0))

let forwarder_alive t id = (get_fwd t id).f_alive

let fail_forwarder t id =
  let f = get_fwd t id in
  if f.f_alive then begin
    f.f_alive <- false;
    match t.dht with
    | Some d -> Dht_table.remove_node d id (* surviving replicas re-replicate *)
    | None -> () (* its flow table dies with it *)
  end

let revive_forwarder t id =
  let f = get_fwd t id in
  if not f.f_alive then begin
    f.f_alive <- true;
    (* The crash lost whatever local state the forwarder held. *)
    Flow_table.clear f.table;
    match t.dht with
    | Some d -> Dht_table.add_node d id (* rejoins empty; the ring re-replicates onto it *)
    | None -> ()
  end

let revive_instance t id = (get_inst t id).i_alive <- true

let reattach_edge t edge ~forwarder =
  ignore (get_fwd t forwarder);
  match Hashtbl.find_opt t.edges edge with
  | Some e -> Hashtbl.replace t.edges edge { e with e_fwd = forwarder }
  | None -> invalid_arg "Fabric.reattach_edge: unknown edge"

let reattach_instance t inst ~forwarder =
  ignore (get_fwd t forwarder);
  let i = get_inst t inst in
  Hashtbl.replace t.insts inst { i with i_fwd = forwarder }

let max_ttl = 64

let key_of (p : Packet.t) : Flow_table.key =
  {
    chain_label = p.chain_label;
    egress_label = p.egress_label;
    stage = p.stage;
    flow = p.flow;
  }

let rec forward_at t fwd_id (p : Packet.t) ~from trace ttl =
  if ttl <= 0 then Error Ttl_exceeded
  else if not (get_fwd t fwd_id).f_alive then Error (Forwarder_down fwd_id)
  else begin
    let f = get_fwd t fwd_id in
    let trace = Forwarder fwd_id :: trace in
    let key = key_of p in
    let side = match from with Forwarder _ -> 1 | Edge _ | Vnf_instance _ -> 0 in
    let next =
      match state_find t f ~side key with
      | Some e -> Ok e.Flow_table.next
      | None -> (
        let rkey = (p.chain_label, p.egress_label, p.stage) in
        let rule =
          (* A packet handed over by a peer forwarder is mid-relay: prefer
             the receiver-side rule (local delivery) when one is installed. *)
          match (if side = 1 then Hashtbl.find_opt f.rules_rx rkey else None) with
          | Some ((_ :: _) as rx) -> Some rx
          | Some [] | None -> Hashtbl.find_opt f.rules rkey
        in
        match rule with
        | None | Some [] -> Error (No_rule { forwarder = fwd_id; stage = p.stage })
        | Some rule ->
          let chosen = Balancer.pick t.rng rule in
          state_insert t f ~side key { Flow_table.next = chosen; prev = from };
          Ok chosen)
    in
    (* Measurement (Section 4.1: stage traffic "obtained based on
       measurements by Switchboard forwarders"): count a packet once per
       stage, at the forwarder that delivers it into the stage's
       destination element. *)
    (match next with
    | Ok (Edge _) | Ok (Vnf_instance _) ->
      let ckey = (p.chain_label, p.egress_label, p.stage) in
      let c =
        match Hashtbl.find_opt f.counters ckey with
        | Some c -> c
        | None ->
          let c = { packets = 0; bytes = 0 } in
          Hashtbl.replace f.counters ckey c;
          c
      in
      c.packets <- c.packets + 1;
      c.bytes <- c.bytes + p.size
    | Ok (Forwarder _) | Error _ -> ());
    match next with
    | Error e -> Error e
    | Ok (Edge e) -> Ok (List.rev (Edge e :: trace))
    | Ok (Forwarder f') ->
      forward_at t f' p ~from:(Forwarder fwd_id) trace (ttl - 1)
    | Ok (Vnf_instance i) ->
      (* The VNF processes the packet and hands it to its own proxy
         forwarder; the packet is now one stage further along. A dead
         instance blackholes the connection — the flow-table entry pins it
         (Section 5.3's caveat; the DHT flow table is the remedy). *)
      let inst = get_inst t i in
      if not inst.i_alive then Error (Instance_down i)
      else
        forward_at t inst.i_fwd
          { p with stage = p.stage + 1 }
          ~from:(Vnf_instance i)
          (Vnf_instance i :: trace)
          (ttl - 1)
  end

let send_forward t ~ingress ~chain_label ~egress_label ?size flow =
  match Hashtbl.find_opt t.edges ingress with
  | None -> Error Not_an_edge
  | Some e ->
    let p = Packet.forward ~chain_label ~egress_label ?size flow in
    forward_at t e.e_fwd p ~from:(Edge ingress) [ Edge ingress ] max_ttl

let rec reverse_at t fwd_id (p : Packet.t) trace ttl =
  if ttl <= 0 then Error Ttl_exceeded
  else if not (get_fwd t fwd_id).f_alive then Error (Forwarder_down fwd_id)
  else begin
    let f = get_fwd t fwd_id in
    let trace = Forwarder fwd_id :: trace in
    match state_find_reverse t f fwd_id (key_of p) with
    | None -> Error (No_reverse_entry { forwarder = fwd_id; stage = p.stage })
    | Some e -> (
      match e.Flow_table.prev with
      | Edge ingress -> Ok (List.rev (Edge ingress :: trace))
      | Forwarder f' -> reverse_at t f' p trace (ttl - 1)
      | Vnf_instance i ->
        let inst = get_inst t i in
        reverse_at t inst.i_fwd
          { p with stage = p.stage - 1 }
          (Vnf_instance i :: trace)
          (ttl - 1))
  end

let send_reverse t ~egress ~chain_label ~egress_label ?(size = 500) flow =
  match Hashtbl.find_opt t.edges egress with
  | None -> Error Not_an_edge
  | Some e ->
    (* The reply's stage is the connection's last stage: the highest stage
       recorded for the connection (probed in the DHT in Replicated mode). *)
    let f = get_fwd t e.e_fwd in
    let last_stage =
      match t.dht with
      | None ->
        List.fold_left
          (fun acc ((k : Flow_table.key), _) ->
            if k.chain_label = chain_label && k.egress_label = egress_label && k.flow = flow
            then max acc k.stage
            else acc)
          (-1)
          (Flow_table.entries f.table)
      | Some d ->
        (* Probe both role-encoded keys per stage. *)
        let best = ref (-1) in
        for stage = 0 to 32 do
          let base = { Flow_table.chain_label; egress_label; stage; flow } in
          if
            Dht_table.get d ~key:(dht_key base ~side:0) <> None
            || Dht_table.get d ~key:(dht_key base ~side:1) <> None
          then best := stage
        done;
        !best
    in
    if last_stage < 0 then Error (No_reverse_entry { forwarder = e.e_fwd; stage = -1 })
    else begin
      let p =
        Packet.reverse_of
          (Packet.forward ~chain_label ~egress_label ~size flow)
          ~last_stage
      in
      reverse_at t e.e_fwd p [ Edge egress ] max_ttl
    end

let vnfs_in_trace t trace =
  List.filter_map
    (function Vnf_instance i -> Some (instance_vnf t i) | Edge _ | Forwarder _ -> None)
    trace

let instances_in_trace trace =
  List.filter_map
    (function Vnf_instance i -> Some i | Edge _ | Forwarder _ -> None)
    trace

let end_flow t flow =
  Hashtbl.iter (fun _ f -> Flow_table.remove_flow f.table flow) t.fwds;
  match t.dht with
  | Some d -> Dht_table.remove_flow d flow
  | None -> ()

let transfer_flows t ~from_instance ~to_instance =
  let src = get_inst t from_instance in
  let dst = get_inst t to_instance in
  if src.i_vnf <> dst.i_vnf then
    invalid_arg "Fabric.transfer_flows: instances run different VNFs";
  let rewritten = ref 0 in
  let rewrite hop =
    if hop = Vnf_instance from_instance then begin
      incr rewritten;
      Vnf_instance to_instance
    end
    else hop
  in
  Hashtbl.iter
    (fun _ f ->
      List.iter
        (fun (key, (entry : endpoint Flow_table.entry)) ->
          let next = rewrite entry.Flow_table.next in
          let prev = rewrite entry.Flow_table.prev in
          if next != entry.Flow_table.next || prev != entry.Flow_table.prev then
            Flow_table.insert f.table key { Flow_table.next; prev })
        (Flow_table.entries f.table))
    t.fwds;
  (* Connections processed by the VNF continue from the NEW instance's
     forwarder, which needs the onward (and return) entries the old
     instance's forwarder held. Copy entries of the old forwarder to the
     new one where they stemmed from the moved instance's traffic. *)
  if src.i_fwd <> dst.i_fwd then begin
    let old_f = get_fwd t src.i_fwd in
    let new_f = get_fwd t dst.i_fwd in
    List.iter
      (fun (key, (entry : endpoint Flow_table.entry)) ->
        if
          entry.Flow_table.prev = Vnf_instance to_instance
          || entry.Flow_table.next = Vnf_instance to_instance
        then Flow_table.insert new_f.table key entry)
      (Flow_table.entries old_f.table)
  end;
  !rewritten

let stage_counters t ~chain_label ~egress_label ~stage =
  Hashtbl.fold
    (fun _ f (pkts, bytes) ->
      match Hashtbl.find_opt f.counters (chain_label, egress_label, stage) with
      | Some c -> (pkts + c.packets, bytes + c.bytes)
      | None -> (pkts, bytes))
    t.fwds (0, 0)

let site_stage_counters t ~site ~chain_label ~egress_label ~stage =
  Hashtbl.fold
    (fun _ f (pkts, bytes) ->
      if f.f_site <> site then (pkts, bytes)
      else
        match Hashtbl.find_opt f.counters (chain_label, egress_label, stage) with
        | Some c -> (pkts + c.packets, bytes + c.bytes)
        | None -> (pkts, bytes))
    t.fwds (0, 0)

let reset_counters t =
  Hashtbl.iter (fun _ f -> Hashtbl.reset f.counters) t.fwds
