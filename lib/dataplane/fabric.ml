(* The public fabric API is now the packed data plane; the seed
   implementation lives on in {!Legacy_fabric} as the equivalence oracle.
   Like {!Routing} fronting its packed solver, this module is a thin shim
   so the entire tree (control plane, chaos harness, adaptation loop,
   tests) picks up the compiled hot path without a call-site change. *)

include Plane
