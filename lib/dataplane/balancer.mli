(** Weighted load balancing and hierarchical weight composition
    (Section 5.2).

    A forwarder's rule is a weighted list of next hops. Hierarchical
    composition builds the weights the Local Switchboard installs: the
    site-level traffic-engineering fraction [x_czn1n2] multiplied by the
    weight of the forwarder or instance within the site; a forwarder's own
    published weight is the sum of the weights of the VNF instances
    attached to it. *)

type 'hop rule = ('hop * float) list

val pick : Sb_util.Rng.t -> 'hop rule -> 'hop
(** Weighted random choice. Raises [Invalid_argument] on an empty rule or
    non-positive total weight. *)

val cumulative : float array -> float array * float * bool
(** [cumulative ws] is [(cum, total, has_negative)]: the left-to-right
    cumulative sums of [ws] (same float-addition order as {!pick}'s
    accumulation, so a binary-search draw over [cum] — see
    {!Sb_util.Rng.weighted_index_cum} — lands on exactly the index {!pick}
    would choose), their total, and whether any weight is negative. The
    compiled dataplane calls this once per rule install instead of once per
    packet. *)

val normalize : 'hop rule -> 'hop rule
(** Scale weights to sum to 1; drops non-positive entries. *)

val forwarder_weight : instance_weights:float list -> float
(** A forwarder publishes the sum of its attached instances' weights. *)

val compose :
  site_fraction:(int * float) list ->
  per_site:(int -> 'hop rule) ->
  'hop rule
(** [compose ~site_fraction ~per_site] multiplies each site's
    traffic-engineering fraction with the in-site weights of its hops:
    the hierarchical rule installed at a forwarder. *)
