type 'hop rule = ('hop * float) list

let pick rng rule =
  if rule = [] then invalid_arg "Balancer.pick: empty rule";
  let weights = Array.of_list (List.map snd rule) in
  let hops = Array.of_list (List.map fst rule) in
  hops.(Sb_util.Rng.weighted_index rng weights)

let cumulative weights =
  (* Left-to-right [+.] in the same order as [Rng.weighted_index]'s
     accumulation, so the packed draw reproduces [pick] bit for bit. *)
  let n = Array.length weights in
  let cum = Array.make (max n 1) 0. in
  let acc = ref 0. in
  let has_neg = ref false in
  for i = 0 to n - 1 do
    if weights.(i) < 0. then has_neg := true;
    acc := !acc +. weights.(i);
    cum.(i) <- !acc
  done;
  (cum, !acc, !has_neg)

let normalize rule =
  let rule = List.filter (fun (_, w) -> w > 0.) rule in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. rule in
  if total <= 0. then [] else List.map (fun (h, w) -> (h, w /. total)) rule

let forwarder_weight ~instance_weights = List.fold_left ( +. ) 0. instance_weights

let compose ~site_fraction ~per_site =
  List.concat_map
    (fun (site, frac) ->
      if frac <= 0. then []
      else
        List.map (fun (hop, w) -> (hop, frac *. w)) (normalize (per_site site)))
    site_fraction
