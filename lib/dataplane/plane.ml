(* The compiled (packed) dataplane: the Fabric contract over id-dense flat
   arrays instead of hashtables of boxed keys.

   Layout (see DESIGN.md §11):
   - entities share one id counter; per-kind attribute arrays are indexed
     by the raw id, forwarders additionally get a dense index
   - rules live in one target arena: parallel [tgt]/[w]/[cum] arrays plus
     per-slot (offset, length, total); per-forwarder tx/rx maps are plain
     arrays indexed by an interned (chain, egress, stage) id, so a rule
     lookup is two array reads
   - cumulative weights are precomputed at install time
     ({!Balancer.cumulative}), so a balancer draw is one RNG advance and a
     binary search — bit-identical to {!Balancer.pick} over the same rule
   - connection state is an open-addressed table of int-packed flow keys
     (hash of labels + stage + 5-tuple), with per-connection chains for
     O(stages) teardown; Replicated mode keeps the same stores per DHT
     node under a consistent-hash ring
   - dynamic mutations (rule reinstall, weight change, fail/revive/
     reattach) append to the arena / patch the arrays in place — a
     mutation journal rather than a recompile; the arena compacts itself
     when dead rule targets dominate

   Behavioural contract: every observable (traces, errors, counters, flow
   table sizes, RNG draw sequence) is bit-identical to the seed
   implementation preserved in {!Legacy_fabric}; the equivalence qcheck in
   [test_dataplane.ml] drives both in lockstep. The one intentional
   exception: DHT key *placement* uses the packed key hash, not the seed's
   structural hash. Placement is unobservable through this API — the ring
   re-replicates on every membership change, so any single forwarder
   failure loses nothing at replication >= 2, whichever nodes held the
   key. *)

type endpoint = Edge of int | Forwarder of int | Vnf_instance of int

type flow_store = Local | Replicated of int

type error =
  | No_rule of { forwarder : int; stage : int }
  | No_reverse_entry of { forwarder : int; stage : int }
  | Instance_down of int
  | Forwarder_down of int
  | Ttl_exceeded
  | Not_an_edge

let pp_error ppf = function
  | No_rule { forwarder; stage } ->
    Format.fprintf ppf "no rule at forwarder %d for stage %d" forwarder stage
  | No_reverse_entry { forwarder; stage } ->
    Format.fprintf ppf "no reverse flow entry at forwarder %d for stage %d" forwarder stage
  | Instance_down i -> Format.fprintf ppf "VNF instance %d is down" i
  | Forwarder_down f -> Format.fprintf ppf "forwarder %d is down" f
  | Ttl_exceeded -> Format.fprintf ppf "TTL exceeded (rule loop?)"
  | Not_an_edge -> Format.fprintf ppf "injection point is not an edge"

(* ------------------------- packed endpoints ------------------------- *)

let tag_edge = 1
let tag_fwd = 2
let tag_inst = 3

let pack = function
  | Edge i -> (i lsl 2) lor tag_edge
  | Forwarder i -> (i lsl 2) lor tag_fwd
  | Vnf_instance i -> (i lsl 2) lor tag_inst

let unpack pe =
  match pe land 3 with
  | 1 -> Edge (pe lsr 2)
  | 2 -> Forwarder (pe lsr 2)
  | _ -> Vnf_instance (pe lsr 2)

(* --------------------------- packed keys ---------------------------- *)

(* A flow key is the avalanche hash of (chain, egress, role stage,
   5-tuple), clamped to >= 2 so 0/1 can mark empty/tombstone table cells.
   Distinct keys colliding in 61 bits is astronomically unlikely at
   simulation scale; the compiled tables accept that in exchange for
   never boxing a key. *)

let key_base ~chain_label ~egress_label fh =
  Packet.mix (fh lxor Packet.mix ((chain_label * 0x9E3779B1) lxor egress_label))

let key_hash base stage =
  let h = Packet.mix (base lxor (stage * 0x85EBCA6B)) in
  if h < 2 then h + 2 else h

(* ------------------ open-addressed int -> int map ------------------- *)

(* Used for the per-connection chain heads of a flow table. Cell states in
   [mk]: 0 empty, 1 tombstone, else the key (>= 2). *)
type fmap = {
  mutable mmask : int;
  mutable mn : int;
  mutable mtomb : int;
  mutable mk : int array;
  mutable mv : int array;
}

let fmap_create cap = { mmask = cap - 1; mn = 0; mtomb = 0; mk = Array.make cap 0; mv = Array.make cap 0 }

let fmap_find m k =
  let i = ref (k land m.mmask) in
  let r = ref (-2) in
  while !r = -2 do
    let c = m.mk.(!i) in
    if c = 0 then r := -1
    else if c = k then r := m.mv.(!i)
    else i := (!i + 1) land m.mmask
  done;
  !r

let rec fmap_put m k v =
  if (m.mn + m.mtomb + 1) * 4 > (m.mmask + 1) * 3 then begin
    let ok = m.mk and ov = m.mv in
    let cap = if (m.mn + 1) * 2 > m.mmask + 1 then (m.mmask + 1) * 2 else m.mmask + 1 in
    m.mk <- Array.make cap 0;
    m.mv <- Array.make cap 0;
    m.mmask <- cap - 1;
    m.mn <- 0;
    m.mtomb <- 0;
    Array.iteri (fun i c -> if c >= 2 then fmap_put m c ov.(i)) ok
  end;
  let i = ref (k land m.mmask) in
  let ins = ref (-1) in
  let fin = ref false in
  while not !fin do
    let c = m.mk.(!i) in
    if c = k then begin
      m.mv.(!i) <- v;
      fin := true;
      ins := -1
    end
    else if c = 0 then fin := true
    else begin
      if c = 1 && !ins < 0 then ins := !i;
      i := (!i + 1) land m.mmask
    end
  done;
  if m.mk.(!i) <> k then begin
    let at = if !ins >= 0 then !ins else !i in
    if m.mk.(at) = 1 then m.mtomb <- m.mtomb - 1;
    m.mk.(at) <- k;
    m.mv.(at) <- v;
    m.mn <- m.mn + 1
  end

let fmap_remove m k =
  let i = ref (k land m.mmask) in
  let fin = ref false in
  while not !fin do
    let c = m.mk.(!i) in
    if c = 0 then fin := true
    else if c = k then begin
      m.mk.(!i) <- 1;
      m.mtomb <- m.mtomb + 1;
      m.mn <- m.mn - 1;
      fin := true
    end
    else i := (!i + 1) land m.mmask
  done

let fmap_clear m =
  Array.fill m.mk 0 (Array.length m.mk) 0;
  m.mn <- 0;
  m.mtomb <- 0

(* ----------------------- packed flow table -------------------------- *)

(* Parallel arrays per cell: key hash ([hk]: 0 empty, 1 tombstone), packed
   next/prev endpoints, the connection hash, the next cell of the same
   connection ([flink], -1 ends the chain) for O(stages) teardown, and the
   logical clock of the cell's last activity ([fage]) for idle expiry. *)
type ftab = {
  mutable fcap : int;
  mutable fmask : int;
  mutable fn : int;
  mutable ftomb : int;
  mutable hk : int array;
  mutable fnx : int array;
  mutable fpv : int array;
  mutable ffh : int array;
  mutable flink : int array;
  mutable fage : int array;
  heads : fmap;
}

let ftab_create () =
  let cap = 64 in
  {
    fcap = cap;
    fmask = cap - 1;
    fn = 0;
    ftomb = 0;
    hk = Array.make cap 0;
    fnx = Array.make cap 0;
    fpv = Array.make cap 0;
    ffh = Array.make cap 0;
    flink = Array.make cap (-1);
    fage = Array.make cap 0;
    heads = fmap_create cap;
  }

let ftab_find tab h =
  let i = ref (h land tab.fmask) in
  let r = ref (-2) in
  while !r = -2 do
    let c = tab.hk.(!i) in
    if c = 0 then r := -1
    else if c = h then r := !i
    else i := (!i + 1) land tab.fmask
  done;
  !r

(* Raw insert of a key known to be absent; chain linking is the caller's
   job (used by grow, which relinks everything anyway). *)
let ftab_place tab h fh nxt prv =
  let i = ref (h land tab.fmask) in
  while tab.hk.(!i) >= 2 do
    i := (!i + 1) land tab.fmask
  done;
  if tab.hk.(!i) = 1 then tab.ftomb <- tab.ftomb - 1;
  tab.hk.(!i) <- h;
  tab.fnx.(!i) <- nxt;
  tab.fpv.(!i) <- prv;
  tab.ffh.(!i) <- fh;
  tab.flink.(!i) <- -1;
  tab.fn <- tab.fn + 1;
  !i

let ftab_grow tab =
  let ohk = tab.hk and onx = tab.fnx and opv = tab.fpv and ofh = tab.ffh in
  let ofa = tab.fage in
  let cap = if (tab.fn + 1) * 2 > tab.fcap then tab.fcap * 2 else tab.fcap in
  tab.fcap <- cap;
  tab.fmask <- cap - 1;
  tab.fn <- 0;
  tab.ftomb <- 0;
  tab.hk <- Array.make cap 0;
  tab.fnx <- Array.make cap 0;
  tab.fpv <- Array.make cap 0;
  tab.ffh <- Array.make cap 0;
  tab.flink <- Array.make cap (-1);
  tab.fage <- Array.make cap 0;
  fmap_clear tab.heads;
  Array.iteri
    (fun i h ->
      if h >= 2 then begin
        let s = ftab_place tab h ofh.(i) onx.(i) opv.(i) in
        tab.fage.(s) <- ofa.(i);
        let head = fmap_find tab.heads ofh.(i) in
        tab.flink.(s) <- head;
        fmap_put tab.heads ofh.(i) s
      end)
    ohk

let ftab_set tab h fh nxt prv age =
  let s = ftab_find tab h in
  if s >= 0 then begin
    tab.fnx.(s) <- nxt;
    tab.fpv.(s) <- prv;
    tab.fage.(s) <- age
  end
  else begin
    if (tab.fn + tab.ftomb + 1) * 4 > tab.fcap * 3 then ftab_grow tab;
    let s = ftab_place tab h fh nxt prv in
    tab.fage.(s) <- age;
    let head = fmap_find tab.heads fh in
    tab.flink.(s) <- head;
    fmap_put tab.heads fh s
  end

let ftab_remove_flow tab fh =
  let s = ref (fmap_find tab.heads fh) in
  if !s >= 0 then begin
    while !s >= 0 do
      let nxt = tab.flink.(!s) in
      if tab.hk.(!s) >= 2 then begin
        tab.hk.(!s) <- 1;
        tab.ftomb <- tab.ftomb + 1;
        tab.fn <- tab.fn - 1
      end;
      s := nxt
    done;
    fmap_remove tab.heads fh
  end

let ftab_clear tab =
  Array.fill tab.hk 0 tab.fcap 0;
  tab.fn <- 0;
  tab.ftomb <- 0;
  fmap_clear tab.heads

(* Idle expiry: remove every connection whose cells were all last touched
   before [idle_before]. Any packet of a connection stamps every one of
   its cells in the tables it traverses, so a connection with one fresh
   cell is live and kept. O(capacity + stages per expired connection);
   returns connections removed from this table. *)
let ftab_expire tab ~idle_before =
  let removed = ref 0 in
  for i = 0 to tab.fcap - 1 do
    if tab.hk.(i) >= 2 && tab.fage.(i) < idle_before then begin
      let fh = tab.ffh.(i) in
      let fresh = ref false in
      let s = ref (fmap_find tab.heads fh) in
      while !s >= 0 do
        if tab.hk.(!s) >= 2 && tab.fage.(!s) >= idle_before then fresh := true;
        s := tab.flink.(!s)
      done;
      if not !fresh then begin
        ftab_remove_flow tab fh;
        incr removed
      end
    end
  done;
  !removed

(* --------------------- (chain, egress, stage) ids ------------------- *)

type ces_tab = {
  mutable ccap : int;
  mutable cmask : int;
  mutable cn : int;
  mutable ck1 : int array;
  mutable ck2 : int array;
  mutable ck3 : int array;
  mutable cocc : bool array;
  mutable cid : int array;
}

let ces_create () =
  let cap = 64 in
  {
    ccap = cap;
    cmask = cap - 1;
    cn = 0;
    ck1 = Array.make cap 0;
    ck2 = Array.make cap 0;
    ck3 = Array.make cap 0;
    cocc = Array.make cap false;
    cid = Array.make cap (-1);
  }

let ces_hash c e s = Packet.mix ((c * 0x9E3779B1) lxor (e * 0x85EBCA6B) lxor s)

let ces_find t c e s =
  let i = ref (ces_hash c e s land t.cmask) in
  let r = ref (-2) in
  while !r = -2 do
    if not t.cocc.(!i) then r := -1
    else if t.ck1.(!i) = c && t.ck2.(!i) = e && t.ck3.(!i) = s then r := t.cid.(!i)
    else i := (!i + 1) land t.cmask
  done;
  !r

let rec ces_intern t c e s =
  let found = ces_find t c e s in
  if found >= 0 then found
  else if (t.cn + 1) * 4 > t.ccap * 3 then begin
    let k1 = t.ck1 and k2 = t.ck2 and k3 = t.ck3 and occ = t.cocc and id = t.cid in
    let cap = t.ccap * 2 in
    t.ccap <- cap;
    t.cmask <- cap - 1;
    t.ck1 <- Array.make cap 0;
    t.ck2 <- Array.make cap 0;
    t.ck3 <- Array.make cap 0;
    t.cocc <- Array.make cap false;
    t.cid <- Array.make cap (-1);
    Array.iteri
      (fun i o ->
        if o then begin
          let j = ref (ces_hash k1.(i) k2.(i) k3.(i) land t.cmask) in
          while t.cocc.(!j) do
            j := (!j + 1) land t.cmask
          done;
          t.cocc.(!j) <- true;
          t.ck1.(!j) <- k1.(i);
          t.ck2.(!j) <- k2.(i);
          t.ck3.(!j) <- k3.(i);
          t.cid.(!j) <- id.(i)
        end)
      occ;
    ces_intern t c e s
  end
  else begin
    let i = ref (ces_hash c e s land t.cmask) in
    while t.cocc.(!i) do
      i := (!i + 1) land t.cmask
    done;
    t.cocc.(!i) <- true;
    t.ck1.(!i) <- c;
    t.ck2.(!i) <- e;
    t.ck3.(!i) <- s;
    let id = t.cn in
    t.cid.(!i) <- id;
    t.cn <- id + 1;
    id
  end

(* --------------------------- rule arena ----------------------------- *)

type arena = {
  mutable tgt : int array;
  mutable w : float array;
  mutable cum : float array;
  mutable used : int;
  mutable s_off : int array;
  mutable s_len : int array;
  mutable s_total : float array;
  mutable s_neg : bool array;
  mutable s_live : bool array;
  mutable nslots : int;
  mutable garbage : int;
  mutable compactions : int;
}

let arena_create () =
  {
    tgt = Array.make 64 0;
    w = Array.make 64 0.;
    cum = Array.make 64 0.;
    used = 0;
    s_off = Array.make 16 0;
    s_len = Array.make 16 0;
    s_total = Array.make 16 0.;
    s_neg = Array.make 16 false;
    s_live = Array.make 16 false;
    nslots = 0;
    garbage = 0;
    compactions = 0;
  }

let grow_int a n d =
  let b = Array.make n d in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_float a n d =
  let b = Array.make n d in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_bool a n d =
  let b = Array.make n d in
  Array.blit a 0 b 0 (Array.length a);
  b

let arena_compact a =
  let live = a.used - a.garbage in
  let tgt = Array.make (max live 64) 0 in
  let w = Array.make (max live 64) 0. in
  let cum = Array.make (max live 64) 0. in
  let pos = ref 0 in
  for s = 0 to a.nslots - 1 do
    if a.s_live.(s) then begin
      let off = a.s_off.(s) and len = a.s_len.(s) in
      Array.blit a.tgt off tgt !pos len;
      Array.blit a.w off w !pos len;
      Array.blit a.cum off cum !pos len;
      a.s_off.(s) <- !pos;
      pos := !pos + len
    end
  done;
  a.tgt <- tgt;
  a.w <- w;
  a.cum <- cum;
  a.used <- !pos;
  a.garbage <- 0;
  a.compactions <- a.compactions + 1

let arena_kill a slot =
  if slot >= 0 then begin
    a.s_live.(slot) <- false;
    a.garbage <- a.garbage + a.s_len.(slot)
  end

(* Append one slot for [targets]/[weights]; the journal's only write path
   into the packed rule store. *)
let arena_append a targets weights =
  let len = Array.length targets in
  if a.garbage > 1024 && a.garbage * 2 > a.used then arena_compact a;
  let need = a.used + len in
  if need > Array.length a.tgt then begin
    let cap = ref (Array.length a.tgt * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    a.tgt <- grow_int a.tgt !cap 0;
    a.w <- grow_float a.w !cap 0.;
    a.cum <- grow_float a.cum !cap 0.
  end;
  if a.nslots = Array.length a.s_off then begin
    let cap = a.nslots * 2 in
    a.s_off <- grow_int a.s_off cap 0;
    a.s_len <- grow_int a.s_len cap 0;
    a.s_total <- grow_float a.s_total cap 0.;
    a.s_neg <- grow_bool a.s_neg cap false;
    a.s_live <- grow_bool a.s_live cap false
  end;
  let cum, total, has_neg = Balancer.cumulative weights in
  Array.blit targets 0 a.tgt a.used len;
  Array.blit weights 0 a.w a.used len;
  Array.blit cum 0 a.cum a.used (min len (Array.length cum));
  let slot = a.nslots in
  a.s_off.(slot) <- a.used;
  a.s_len.(slot) <- len;
  a.s_total.(slot) <- total;
  a.s_neg.(slot) <- has_neg;
  a.s_live.(slot) <- true;
  a.nslots <- slot + 1;
  a.used <- a.used + len;
  slot

(* ------------------------------ DHT --------------------------------- *)

let dummy_ftab = ftab_create ()

(* Placement is unobservable through the fabric API — every membership
   change rereplicates the whole store — so instead of a consistent-hash
   ring the compiled DHT places key [h] on the [repl] members starting at
   [h mod n] in the member array: owner lookup is two array reads, no
   binary search, and the owners are distinct by construction. *)
type dht = {
  repl : int;
  mutable members : int array; (* forwarder ids, membership order *)
  mutable stores : ftab array; (* parallel to [members] *)
  mutable hit : ftab; (* store of the last successful [dht_find] *)
}

let dht_create ~replication =
  if replication <= 0 then invalid_arg "Dht_table.create: replication must be positive";
  { repl = replication; members = [||]; stores = [||]; hit = dummy_ftab }

let dht_find d h =
  let n = Array.length d.members in
  let k = if d.repl < n then d.repl else n in
  let r = ref (-1) in
  if n > 0 then begin
    let start = h mod n in
    let j = ref 0 in
    while !r < 0 && !j < k do
      let st = d.stores.((start + !j) mod n) in
      let s = ftab_find st h in
      if s >= 0 then begin
        d.hit <- st;
        r := s
      end;
      incr j
    done
  end;
  !r

let dht_put d h fh nxt prv age =
  let n = Array.length d.members in
  if n = 0 then invalid_arg "Dht_table.put: no nodes in the ring";
  let k = if d.repl < n then d.repl else n in
  let start = h mod n in
  for j = 0 to k - 1 do
    ftab_set d.stores.((start + j) mod n) h fh nxt prv age
  done

let dht_rereplicate d =
  let all = Hashtbl.create 256 in
  Array.iter
    (fun st ->
      for s = 0 to st.fcap - 1 do
        if st.hk.(s) >= 2 then
          Hashtbl.replace all st.hk.(s) (st.ffh.(s), st.fnx.(s), st.fpv.(s), st.fage.(s))
      done)
    d.stores;
  Array.iter ftab_clear d.stores;
  Hashtbl.iter (fun h (fh, nxt, prv, age) -> dht_put d h fh nxt prv age) all

let dht_add_node d node =
  d.members <- Array.append d.members [| node |];
  d.stores <- Array.append d.stores [| ftab_create () |];
  dht_rereplicate d

let dht_member_index d node =
  let r = ref (-1) in
  Array.iteri (fun i m -> if m = node then r := i) d.members;
  !r

let dht_remove_node d node =
  let i = dht_member_index d node in
  if i >= 0 then begin
    let n = Array.length d.members in
    d.members <- Array.init (n - 1) (fun j -> d.members.(if j < i then j else j + 1));
    d.stores <- Array.init (n - 1) (fun j -> d.stores.(if j < i then j else j + 1));
    if n > 1 then dht_rereplicate d
  end

(* ------------------------------ plane ------------------------------- *)

let k_site = 1
let k_fwd = 2
let k_edge = 3
let k_inst = 4

type t = {
  rng : Sb_util.Rng.t;
  mutable next_id : int;
  (* per raw id *)
  mutable kind : int array;
  mutable site_name : string array;
  mutable e_site : int array;
  mutable e_fwd : int array;
  mutable i_vnf : int array;
  mutable i_site : int array;
  mutable i_fwd : int array;
  mutable i_weight : float array;
  mutable i_alive : bool array;
  mutable f_dense : int array;
  (* per dense forwarder index *)
  mutable nf : int;
  mutable fwd_id : int array;
  mutable f_site : int array;
  mutable f_alive : bool array;
  mutable f_insts : int list array; (* attached instances, id-sorted *)
  mutable f_tab : ftab array;
  mutable tx : int array array; (* ces id -> arena slot, -1 absent *)
  mutable rx : int array array;
  mutable c_pkts : int array array; (* ces id -> counters *)
  mutable c_bytes : int array array;
  ces : ces_tab;
  arena : arena;
  dht : dht option;
  mutable journal : int;
  mutable now : int; (* logical clock stamped onto flow-table activity *)
  (* scratch for the allocation-free packet core *)
  mutable err_a : int;
  mutable err_b : int;
  mutable last_trace : endpoint list;
}

let create ?(seed = 0xF0) ?(flow_store = Local) () =
  {
    rng = Sb_util.Rng.create seed;
    next_id = 0;
    kind = Array.make 16 0;
    site_name = Array.make 16 "";
    e_site = Array.make 16 (-1);
    e_fwd = Array.make 16 (-1);
    i_vnf = Array.make 16 (-1);
    i_site = Array.make 16 (-1);
    i_fwd = Array.make 16 (-1);
    i_weight = Array.make 16 0.;
    i_alive = Array.make 16 false;
    f_dense = Array.make 16 (-1);
    nf = 0;
    fwd_id = Array.make 8 (-1);
    f_site = Array.make 8 (-1);
    f_alive = Array.make 8 false;
    f_insts = Array.make 8 [];
    f_tab = Array.make 8 dummy_ftab;
    tx = Array.make 8 [||];
    rx = Array.make 8 [||];
    c_pkts = Array.make 8 [||];
    c_bytes = Array.make 8 [||];
    ces = ces_create ();
    arena = arena_create ();
    dht =
      (match flow_store with
      | Local -> None
      | Replicated k -> Some (dht_create ~replication:k));
    journal = 0;
    now = 0;
    err_a = 0;
    err_b = 0;
    last_trace = [];
  }

let ensure_id t id =
  let cap = Array.length t.kind in
  if id >= cap then begin
    let ncap = ref (cap * 2) in
    while id >= !ncap do
      ncap := !ncap * 2
    done;
    let n = !ncap in
    t.kind <- grow_int t.kind n 0;
    t.site_name <-
      (let b = Array.make n "" in
       Array.blit t.site_name 0 b 0 cap;
       b);
    t.e_site <- grow_int t.e_site n (-1);
    t.e_fwd <- grow_int t.e_fwd n (-1);
    t.i_vnf <- grow_int t.i_vnf n (-1);
    t.i_site <- grow_int t.i_site n (-1);
    t.i_fwd <- grow_int t.i_fwd n (-1);
    t.i_weight <- grow_float t.i_weight n 0.;
    t.i_alive <- grow_bool t.i_alive n false;
    t.f_dense <- grow_int t.f_dense n (-1)
  end

let fresh t =
  let id = t.next_id in
  t.next_id <- id + 1;
  ensure_id t id;
  id

let kind_of t id = if id >= 0 && id < Array.length t.kind then t.kind.(id) else 0

let get_fd t id =
  if kind_of t id = k_fwd then t.f_dense.(id) else invalid_arg "Fabric: unknown forwarder"

let check_inst t id =
  if kind_of t id <> k_inst then invalid_arg "Fabric: unknown VNF instance"

let add_site t name =
  let id = fresh t in
  t.kind.(id) <- k_site;
  t.site_name.(id) <- name;
  id

let add_forwarder t ~site =
  if kind_of t site <> k_site then invalid_arg "Fabric.add_forwarder: unknown site";
  let id = fresh t in
  t.kind.(id) <- k_fwd;
  let fd = t.nf in
  (if fd = Array.length t.fwd_id then begin
     let n = fd * 2 in
     t.fwd_id <- grow_int t.fwd_id n (-1);
     t.f_site <- grow_int t.f_site n (-1);
     t.f_alive <- grow_bool t.f_alive n false;
     t.f_insts <-
       (let b = Array.make n [] in
        Array.blit t.f_insts 0 b 0 fd;
        b);
     t.f_tab <-
       (let b = Array.make n dummy_ftab in
        Array.blit t.f_tab 0 b 0 fd;
        b);
     let grow_aa a =
       let b = Array.make n [||] in
       Array.blit a 0 b 0 fd;
       b
     in
     t.tx <- grow_aa t.tx;
     t.rx <- grow_aa t.rx;
     t.c_pkts <- grow_aa t.c_pkts;
     t.c_bytes <- grow_aa t.c_bytes
   end);
  t.nf <- fd + 1;
  t.f_dense.(id) <- fd;
  t.fwd_id.(fd) <- id;
  t.f_site.(fd) <- site;
  t.f_alive.(fd) <- true;
  t.f_insts.(fd) <- [];
  t.f_tab.(fd) <- ftab_create ();
  t.tx.(fd) <- [||];
  t.rx.(fd) <- [||];
  t.c_pkts.(fd) <- [||];
  t.c_bytes.(fd) <- [||];
  (match t.dht with Some d -> dht_add_node d id | None -> ());
  id

let add_edge t ~site ~forwarder =
  ignore (get_fd t forwarder);
  let id = fresh t in
  t.kind.(id) <- k_edge;
  t.e_site.(id) <- site;
  t.e_fwd.(id) <- forwarder;
  id

let add_vnf_instance t ~vnf ~site ~forwarder ?(weight = 1.0) () =
  let fd = get_fd t forwarder in
  let id = fresh t in
  t.kind.(id) <- k_inst;
  t.i_vnf.(id) <- vnf;
  t.i_site.(id) <- site;
  t.i_fwd.(id) <- forwarder;
  t.i_weight.(id) <- weight;
  t.i_alive.(id) <- true;
  (* Fresh ids are the largest yet, so appending keeps the list sorted. *)
  t.f_insts.(fd) <- t.f_insts.(fd) @ [ id ];
  id

let instance_vnf t id =
  check_inst t id;
  t.i_vnf.(id)

let instance_site t id =
  check_inst t id;
  t.i_site.(id)

let instance_weight t id =
  check_inst t id;
  t.i_weight.(id)

let set_instance_weight t id w =
  check_inst t id;
  t.i_weight.(id) <- w

let instance_alive t id =
  check_inst t id;
  t.i_alive.(id)

let fail_instance t id =
  check_inst t id;
  t.i_alive.(id) <- false

let revive_instance t id =
  check_inst t id;
  t.i_alive.(id) <- true

let forwarder_site t id = t.f_site.(get_fd t id)

let site_name t id =
  if kind_of t id = k_site then t.site_name.(id) else invalid_arg "Fabric: unknown site"

let attached_instances t ~forwarder = t.f_insts.(get_fd t forwarder)

let forwarder_published_weight t fwd vnf =
  (* Instance-id order; the seed folded its instance hashtable instead, so
     a pathological weight set could sum to a different float — in
     practice weights are few and well-scaled, and the published value is
     only an input to rule computation. *)
  List.fold_left
    (fun acc i -> if t.i_vnf.(i) = vnf then acc +. t.i_weight.(i) else acc)
    0.
    t.f_insts.(get_fd t fwd)

let forwarder_alive t id = t.f_alive.(get_fd t id)

let fail_forwarder t id =
  let fd = get_fd t id in
  if t.f_alive.(fd) then begin
    t.f_alive.(fd) <- false;
    t.journal <- t.journal + 1;
    match t.dht with
    | Some d -> dht_remove_node d id (* surviving replicas re-replicate *)
    | None -> () (* its flow table dies with it *)
  end

let revive_forwarder t id =
  let fd = get_fd t id in
  if not t.f_alive.(fd) then begin
    t.f_alive.(fd) <- true;
    t.journal <- t.journal + 1;
    (* The crash lost whatever local state the forwarder held. *)
    ftab_clear t.f_tab.(fd);
    match t.dht with
    | Some d -> dht_add_node d id (* rejoins empty; the ring re-replicates onto it *)
    | None -> ()
  end

let reattach_edge t edge ~forwarder =
  ignore (get_fd t forwarder);
  if kind_of t edge <> k_edge then invalid_arg "Fabric.reattach_edge: unknown edge";
  t.e_fwd.(edge) <- forwarder;
  t.journal <- t.journal + 1

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: tl as l -> if x < y then x :: l else y :: insert_sorted x tl

let reattach_instance t inst ~forwarder =
  let nfd = get_fd t forwarder in
  check_inst t inst;
  let ofd = get_fd t t.i_fwd.(inst) in
  if ofd <> nfd then begin
    t.f_insts.(ofd) <- List.filter (fun i -> i <> inst) t.f_insts.(ofd);
    t.f_insts.(nfd) <- insert_sorted inst t.f_insts.(nfd)
  end;
  t.i_fwd.(inst) <- forwarder;
  t.journal <- t.journal + 1

(* ------------------------------ rules ------------------------------- *)

let slot_of arr ces = if ces < Array.length arr then arr.(ces) else -1

let set_slot map fd ces slot =
  let arr = map.(fd) in
  let arr =
    if ces < Array.length arr then arr
    else begin
      let cap = ref (max 8 (Array.length arr * 2)) in
      while ces >= !cap do
        cap := !cap * 2
      done;
      let b = Array.make !cap (-1) in
      Array.blit arr 0 b 0 (Array.length arr);
      map.(fd) <- b;
      b
    end
  in
  arr.(ces) <- slot

let install_rule_into t map ~forwarder ~chain_label ~egress_label ~stage targets =
  let fd = get_fd t forwarder in
  let ces = ces_intern t.ces chain_label egress_label stage in
  let tgt = Array.of_list (List.map (fun (h, _) -> pack h) targets) in
  let ws = Array.of_list (List.map snd targets) in
  arena_kill t.arena (slot_of map.(fd) ces);
  let slot = arena_append t.arena tgt ws in
  set_slot map fd ces slot;
  t.journal <- t.journal + 1

let install_rule t ~forwarder ~chain_label ~egress_label ~stage targets =
  install_rule_into t t.tx ~forwarder ~chain_label ~egress_label ~stage targets

let install_rx_rule t ~forwarder ~chain_label ~egress_label ~stage targets =
  install_rule_into t t.rx ~forwarder ~chain_label ~egress_label ~stage targets

type rule_patch = {
  rp_chain : int;
  rp_egress : int;
  rp_stage : int;
  rp_rx : bool;
  rp_targets : (endpoint * float) list;
}

(* Batched delta install: one pass over the patch list, skipping patches
   whose packed form already matches the forwarder's live slot — the
   O(churn) write path of the compiled rollout. Each applied patch goes
   through the same kill/append/journal discipline as a full install, so
   the arena and journal can't tell a delta from a reinstall. *)
let apply_delta t ~forwarder patches =
  let fd = get_fd t forwarder in
  let applied = ref 0 in
  List.iter
    (fun p ->
      let map = if p.rp_rx then t.rx else t.tx in
      let ces = ces_intern t.ces p.rp_chain p.rp_egress p.rp_stage in
      let tgt = Array.of_list (List.map (fun (h, _) -> pack h) p.rp_targets) in
      let ws = Array.of_list (List.map snd p.rp_targets) in
      let slot = slot_of map.(fd) ces in
      let same =
        slot >= 0
        && t.arena.s_len.(slot) = Array.length tgt
        &&
        let off = t.arena.s_off.(slot) in
        let ok = ref true in
        Array.iteri
          (fun i v ->
            if t.arena.tgt.(off + i) <> v || t.arena.w.(off + i) <> ws.(i) then
              ok := false)
          tgt;
        !ok
      in
      if not same then begin
        arena_kill t.arena slot;
        let s = arena_append t.arena tgt ws in
        set_slot map fd ces s;
        t.journal <- t.journal + 1;
        incr applied
      end)
    patches;
  !applied

let rule_in t map ~forwarder ~chain_label ~egress_label ~stage =
  let fd = get_fd t forwarder in
  let ces = ces_find t.ces chain_label egress_label stage in
  if ces < 0 then None
  else
    let slot = slot_of map.(fd) ces in
    if slot < 0 then None
    else begin
      let off = t.arena.s_off.(slot) and len = t.arena.s_len.(slot) in
      Some (List.init len (fun i -> (unpack t.arena.tgt.(off + i), t.arena.w.(off + i))))
    end

let rule t ~forwarder ~chain_label ~egress_label ~stage =
  rule_in t t.tx ~forwarder ~chain_label ~egress_label ~stage

let rx_rule t ~forwarder ~chain_label ~egress_label ~stage =
  rule_in t t.rx ~forwarder ~chain_label ~egress_label ~stage

let flow_table_size t ~forwarder = t.f_tab.(get_fd t forwarder).fn

let ftab_stats tab =
  (* Longest probe sequence any lookup can take: max displacement of a
     live entry from its home slot, plus one for the hit itself. *)
  let maxp = ref 0 in
  for i = 0 to tab.fcap - 1 do
    let h = tab.hk.(i) in
    if h >= 2 then begin
      let d = (i - (h land tab.fmask)) land tab.fmask in
      if d + 1 > !maxp then maxp := d + 1
    end
  done;
  (tab.fn, tab.fcap, !maxp)

let flow_table_stats t ~forwarder = ftab_stats t.f_tab.(get_fd t forwarder)

let mutations t = t.journal

type arena_stats = { slots_live : int; words_used : int; words_garbage : int; compactions : int }

let arena_stats t =
  let live = ref 0 in
  for s = 0 to t.arena.nslots - 1 do
    if t.arena.s_live.(s) then incr live
  done;
  {
    slots_live = !live;
    words_used = t.arena.used;
    words_garbage = t.arena.garbage;
    compactions = t.arena.compactions;
  }

(* ----------------------------- counters ----------------------------- *)

let bump t fd ces size =
  let arr = t.c_pkts.(fd) in
  if ces >= Array.length arr then begin
    let cap = ref (max 16 (Array.length arr * 2)) in
    while ces >= !cap do
      cap := !cap * 2
    done;
    t.c_pkts.(fd) <- grow_int t.c_pkts.(fd) !cap 0;
    t.c_bytes.(fd) <- grow_int t.c_bytes.(fd) !cap 0
  end;
  t.c_pkts.(fd).(ces) <- t.c_pkts.(fd).(ces) + 1;
  t.c_bytes.(fd).(ces) <- t.c_bytes.(fd).(ces) + size

let stage_counters t ~chain_label ~egress_label ~stage =
  let ces = ces_find t.ces chain_label egress_label stage in
  if ces < 0 then (0, 0)
  else begin
    let p = ref 0 and b = ref 0 in
    for fd = 0 to t.nf - 1 do
      if ces < Array.length t.c_pkts.(fd) then begin
        p := !p + t.c_pkts.(fd).(ces);
        b := !b + t.c_bytes.(fd).(ces)
      end
    done;
    (!p, !b)
  end

let site_stage_counters t ~site ~chain_label ~egress_label ~stage =
  let ces = ces_find t.ces chain_label egress_label stage in
  if ces < 0 then (0, 0)
  else begin
    let p = ref 0 and b = ref 0 in
    for fd = 0 to t.nf - 1 do
      if t.f_site.(fd) = site && ces < Array.length t.c_pkts.(fd) then begin
        p := !p + t.c_pkts.(fd).(ces);
        b := !b + t.c_bytes.(fd).(ces)
      end
    done;
    (!p, !b)
  end

let site_stage_counters_into t ~site ~chain_label ~egress_label ~pkts ~bytes =
  let stages = Array.length pkts in
  Array.fill pkts 0 stages 0;
  Array.fill bytes 0 stages 0;
  for stage = 0 to stages - 1 do
    let ces = ces_find t.ces chain_label egress_label stage in
    if ces >= 0 then
      for fd = 0 to t.nf - 1 do
        if t.f_site.(fd) = site && ces < Array.length t.c_pkts.(fd) then begin
          pkts.(stage) <- pkts.(stage) + t.c_pkts.(fd).(ces);
          bytes.(stage) <- bytes.(stage) + t.c_bytes.(fd).(ces)
        end
      done
  done

let reset_counters t =
  for fd = 0 to t.nf - 1 do
    Array.fill t.c_pkts.(fd) 0 (Array.length t.c_pkts.(fd)) 0;
    Array.fill t.c_bytes.(fd) 0 (Array.length t.c_bytes.(fd)) 0
  done

(* --------------------------- packet cores --------------------------- *)

let max_ttl = 64

(* Status codes for the cores; payloads in [t.err_a]/[t.err_b]. *)
let st_ok = 0
let st_no_rule = 1
let st_no_rev = 2
let st_inst_down = 3
let st_fwd_down = 4
let st_ttl = 5
let st_not_edge = 6

let err_of t = function
  | 1 -> No_rule { forwarder = t.err_a; stage = t.err_b }
  | 2 -> No_reverse_entry { forwarder = t.err_a; stage = t.err_b }
  | 3 -> Instance_down t.err_a
  | 4 -> Forwarder_down t.err_a
  | 5 -> Ttl_exceeded
  | _ -> Not_an_edge

(* One forward packet, hop by hop: the packet is a handful of mutable
   locals (a cursor) rather than a fresh record per hop, and with
   [record = false] the warm path allocates nothing at all. Mirrors the
   seed's [forward_at] decision for decision — including bumping the
   delivery counter before the instance-liveness check, and raising
   (not returning) on rule targets that name unknown entities. *)
let forward_core t ~record ~ingress ~chain_label ~egress_label ~size flow =
  if kind_of t ingress <> k_edge then st_not_edge
  else begin
    let fh = Packet.tuple_hash flow in
    let base = key_base ~chain_label ~egress_label fh in
    let fwd = ref t.e_fwd.(ingress) in
    let from = ref ((ingress lsl 2) lor tag_edge) in
    let stage = ref 0 in
    let ttl = ref max_ttl in
    let state = ref (-1) in
    if record then t.last_trace <- [ Edge ingress ];
    while !state < 0 do
      if !ttl <= 0 then state := st_ttl
      else begin
        let fd = get_fd t !fwd in
        if not t.f_alive.(fd) then begin
          t.err_a <- !fwd;
          state := st_fwd_down
        end
        else begin
          if record then t.last_trace <- Forwarder !fwd :: t.last_trace;
          let side = if !from land 3 = tag_fwd then 1 else 0 in
          let ces = ces_intern t.ces chain_label egress_label !stage in
          let h =
            match t.dht with
            | None -> key_hash base !stage
            | Some _ -> key_hash base ((2 * !stage) + side)
          in
          let next = ref 0 in
          (match t.dht with
          | None ->
            let tab = t.f_tab.(fd) in
            let s = ftab_find tab h in
            if s >= 0 then begin
              next := tab.fnx.(s);
              tab.fage.(s) <- t.now
            end
          | Some d ->
            let s = dht_find d h in
            if s >= 0 then begin
              next := d.hit.fnx.(s);
              d.hit.fage.(s) <- t.now
            end);
          if !next = 0 then begin
            (* Flow miss: consult the rules. A packet handed over by a
               peer forwarder is mid-relay — prefer a non-empty
               receiver-side rule (local delivery). *)
            let slot =
              if side = 1 then begin
                let rs = slot_of t.rx.(fd) ces in
                if rs >= 0 && t.arena.s_len.(rs) > 0 then rs else slot_of t.tx.(fd) ces
              end
              else slot_of t.tx.(fd) ces
            in
            if slot < 0 || t.arena.s_len.(slot) = 0 then begin
              t.err_a <- !fwd;
              t.err_b <- !stage;
              state := st_no_rule
            end
            else begin
              if t.arena.s_neg.(slot) then invalid_arg "Rng.weighted_index: negative weight";
              let off = t.arena.s_off.(slot) and len = t.arena.s_len.(slot) in
              let idx =
                Sb_util.Rng.weighted_index_cum t.rng t.arena.cum ~off ~len
                  ~total:t.arena.s_total.(slot)
              in
              let chosen = t.arena.tgt.(off + idx) in
              (match t.dht with
              | None -> ftab_set t.f_tab.(fd) h fh chosen !from t.now
              | Some d -> dht_put d h fh chosen !from t.now);
              next := chosen
            end
          end;
          if !state < 0 then begin
            let tag = !next land 3 in
            (* Measurement (Section 4.1): count a packet once per stage,
               at the forwarder that delivers it into the stage's
               destination element. *)
            if tag = tag_edge || tag = tag_inst then bump t fd ces size;
            if tag = tag_edge then begin
              t.err_a <- !next lsr 2;
              if record then t.last_trace <- Edge (!next lsr 2) :: t.last_trace;
              state := st_ok
            end
            else if tag = tag_fwd then begin
              from := (!fwd lsl 2) lor tag_fwd;
              fwd := !next lsr 2;
              decr ttl
            end
            else begin
              (* The VNF processes the packet and hands it to its own
                 proxy forwarder; the packet is now one stage further
                 along. A dead instance blackholes the connection. *)
              let i = !next lsr 2 in
              check_inst t i;
              if not t.i_alive.(i) then begin
                t.err_a <- i;
                state := st_inst_down
              end
              else begin
                if record then t.last_trace <- Vnf_instance i :: t.last_trace;
                from := (i lsl 2) lor tag_inst;
                fwd := t.i_fwd.(i);
                incr stage;
                decr ttl
              end
            end
          end
        end
      end
    done;
    !state
  end

let send_forward t ~ingress ~chain_label ~egress_label ?(size = 500) flow =
  match forward_core t ~record:true ~ingress ~chain_label ~egress_label ~size flow with
  | 0 ->
    let trace = List.rev t.last_trace in
    t.last_trace <- [];
    Ok trace
  | c -> Error (err_of t c)

let drive t ~ingress ~chain_label ~egress_label ~size flow =
  forward_core t ~record:false ~ingress ~chain_label ~egress_label ~size flow = 0

(* Reverse lookup must recover which role this forwarder played: prefer
   the receiver-side entry unless it names this forwarder as the sender it
   received from (then this forwarder was the sender). Returns the packed
   prev hop, or 0. *)
let find_prev t fd fwd_global base stage =
  match t.dht with
  | None ->
    let tab = t.f_tab.(fd) in
    let s = ftab_find tab (key_hash base stage) in
    if s >= 0 then begin
      tab.fage.(s) <- t.now;
      tab.fpv.(s)
    end
    else 0
  | Some d ->
    let s1 = dht_find d (key_hash base ((2 * stage) + 1)) in
    let prv1 =
      if s1 >= 0 then begin
        d.hit.fage.(s1) <- t.now;
        d.hit.fpv.(s1)
      end
      else 0
    in
    if s1 >= 0 && prv1 <> (fwd_global lsl 2) lor tag_fwd then prv1
    else begin
      let s0 = dht_find d (key_hash base (2 * stage)) in
      if s0 >= 0 then begin
        d.hit.fage.(s0) <- t.now;
        d.hit.fpv.(s0)
      end
      else 0
    end

let reverse_core t ~record ~egress ~chain_label ~egress_label flow =
  if kind_of t egress <> k_edge then st_not_edge
  else begin
    let fh = Packet.tuple_hash flow in
    let base = key_base ~chain_label ~egress_label fh in
    let efd = get_fd t t.e_fwd.(egress) in
    (* The reply's stage is the connection's last stage: the highest stage
       with recorded state (probed in the DHT in Replicated mode; local
       stages are bounded by the TTL). *)
    let last_stage = ref (-1) in
    (match t.dht with
    | None ->
      let tab = t.f_tab.(efd) in
      for stage = 0 to max_ttl do
        if ftab_find tab (key_hash base stage) >= 0 then last_stage := stage
      done
    | Some d ->
      for stage = 0 to 32 do
        if
          dht_find d (key_hash base (2 * stage)) >= 0
          || dht_find d (key_hash base ((2 * stage) + 1)) >= 0
        then last_stage := stage
      done);
    if !last_stage < 0 then begin
      t.err_a <- t.e_fwd.(egress);
      t.err_b <- -1;
      st_no_rev
    end
    else begin
      let fwd = ref t.e_fwd.(egress) in
      let stage = ref !last_stage in
      let ttl = ref max_ttl in
      let state = ref (-1) in
      if record then t.last_trace <- [ Edge egress ];
      while !state < 0 do
        if !ttl <= 0 then state := st_ttl
        else begin
          let fd = get_fd t !fwd in
          if not t.f_alive.(fd) then begin
            t.err_a <- !fwd;
            state := st_fwd_down
          end
          else begin
            if record then t.last_trace <- Forwarder !fwd :: t.last_trace;
            let prev = find_prev t fd !fwd base !stage in
            if prev = 0 then begin
              t.err_a <- !fwd;
              t.err_b <- !stage;
              state := st_no_rev
            end
            else begin
              let tag = prev land 3 in
              if tag = tag_edge then begin
                t.err_a <- prev lsr 2;
                if record then t.last_trace <- Edge (prev lsr 2) :: t.last_trace;
                state := st_ok
              end
              else if tag = tag_fwd then begin
                fwd := prev lsr 2;
                decr ttl
              end
              else begin
                let i = prev lsr 2 in
                check_inst t i;
                if record then t.last_trace <- Vnf_instance i :: t.last_trace;
                fwd := t.i_fwd.(i);
                decr stage;
                decr ttl
              end
            end
          end
        end
      done;
      !state
    end
  end

let send_reverse t ~egress ~chain_label ~egress_label ?(size = 500) flow =
  ignore size;
  match reverse_core t ~record:true ~egress ~chain_label ~egress_label flow with
  | 0 ->
    let trace = List.rev t.last_trace in
    t.last_trace <- [];
    Ok trace
  | c -> Error (err_of t c)

(* ----------------------------- helpers ------------------------------ *)

let vnfs_in_trace t trace =
  List.filter_map
    (function Vnf_instance i -> Some (instance_vnf t i) | Edge _ | Forwarder _ -> None)
    trace

let instances_in_trace trace =
  List.filter_map
    (function Vnf_instance i -> Some i | Edge _ | Forwarder _ -> None)
    trace

let end_flow t flow =
  let fh = Packet.tuple_hash flow in
  for fd = 0 to t.nf - 1 do
    ftab_remove_flow t.f_tab.(fd) fh
  done;
  match t.dht with
  | Some d -> Array.iter (fun st -> ftab_remove_flow st fh) d.stores
  | None -> ()

let set_clock t now = t.now <- now
let clock t = t.now

let expire_flows t ~idle_before =
  let removed = ref 0 in
  for fd = 0 to t.nf - 1 do
    removed := !removed + ftab_expire t.f_tab.(fd) ~idle_before
  done;
  (match t.dht with
  | Some d ->
    Array.iter (fun st -> removed := !removed + ftab_expire st ~idle_before) d.stores
  | None -> ());
  !removed

let instance_flow_count t instance =
  check_inst t instance;
  let pi = (instance lsl 2) lor tag_inst in
  let count = ref 0 in
  let scan tab =
    for s = 0 to tab.fcap - 1 do
      if tab.hk.(s) >= 2 && (tab.fnx.(s) = pi || tab.fpv.(s) = pi) then incr count
    done
  in
  for fd = 0 to t.nf - 1 do
    scan t.f_tab.(fd)
  done;
  (* Replicated copies count too: a crashed-and-revived forwarder would
     re-serve them, so a drain is only done when they have expired as
     well. *)
  (match t.dht with Some d -> Array.iter scan d.stores | None -> ());
  !count

let transfer_flows t ~from_instance ~to_instance =
  check_inst t from_instance;
  check_inst t to_instance;
  if t.i_vnf.(from_instance) <> t.i_vnf.(to_instance) then
    invalid_arg "Fabric.transfer_flows: instances run different VNFs";
  let pf = (from_instance lsl 2) lor tag_inst in
  let pt = (to_instance lsl 2) lor tag_inst in
  let rewritten = ref 0 in
  for fd = 0 to t.nf - 1 do
    let tab = t.f_tab.(fd) in
    for s = 0 to tab.fcap - 1 do
      if tab.hk.(s) >= 2 then begin
        if tab.fnx.(s) = pf then begin
          incr rewritten;
          tab.fnx.(s) <- pt
        end;
        if tab.fpv.(s) = pf then begin
          incr rewritten;
          tab.fpv.(s) <- pt
        end
      end
    done
  done;
  (* Connections processed by the VNF continue from the NEW instance's
     forwarder, which needs the onward (and return) entries the old
     instance's forwarder held. *)
  let ofd = get_fd t t.i_fwd.(from_instance) in
  let nfd = get_fd t t.i_fwd.(to_instance) in
  if ofd <> nfd then begin
    let old_tab = t.f_tab.(ofd) and new_tab = t.f_tab.(nfd) in
    for s = 0 to old_tab.fcap - 1 do
      if
        old_tab.hk.(s) >= 2
        && (old_tab.fnx.(s) = pt || old_tab.fpv.(s) = pt)
      then
        ftab_set new_tab old_tab.hk.(s) old_tab.ffh.(s) old_tab.fnx.(s)
          old_tab.fpv.(s) old_tab.fage.(s)
    done
  end;
  t.journal <- t.journal + 1;
  !rewritten
