(** The compiled (packed) data plane (DESIGN.md §11).

    Same behavioural contract as the seed fabric — {!Fabric} is a thin
    [include] of this module, and {!Legacy_fabric} preserves the seed
    implementation as the equivalence oracle — but compiled to id-dense
    flat arrays:

    - per-forwarder rules are an array indexed by an interned
      (chain, egress, stage) id pointing into one shared target arena
      (parallel packed-endpoint / weight / cumulative-weight arrays), so a
      rule lookup is two array reads and a balancer draw is one RNG
      advance plus a binary search — draw-for-draw identical to
      {!Balancer.pick};
    - connection state is an open-addressed table keyed by an int-packed
      flow key (avalanche hash of labels, role stage and 5-tuple), chained
      per connection for O(stages) teardown; [Replicated] mode keeps the
      same stores under a consistent-hash ring with k-way replication;
    - a packet is a handful of mutable locals advanced in place per hop
      ({!drive} allocates nothing on the warm path);
    - mutations (rule reinstall, weight change, fail / revive / reattach)
      patch the arrays in place through a journal; dead rule targets are
      compacted once they dominate the arena.

    See {!Fabric} for the full per-function documentation. *)

type t

type endpoint = Edge of int | Forwarder of int | Vnf_instance of int

type flow_store = Local | Replicated of int

type error =
  | No_rule of { forwarder : int; stage : int }
  | No_reverse_entry of { forwarder : int; stage : int }
  | Instance_down of int
  | Forwarder_down of int
  | Ttl_exceeded
  | Not_an_edge

val pp_error : Format.formatter -> error -> unit
val create : ?seed:int -> ?flow_store:flow_store -> unit -> t
val add_site : t -> string -> int
val add_forwarder : t -> site:int -> int
val add_edge : t -> site:int -> forwarder:int -> int

val add_vnf_instance :
  t -> vnf:int -> site:int -> forwarder:int -> ?weight:float -> unit -> int

val instance_vnf : t -> int -> int
val instance_site : t -> int -> int
val instance_weight : t -> int -> float
val set_instance_weight : t -> int -> float -> unit
val instance_alive : t -> int -> bool
val forwarder_alive : t -> int -> bool
val fail_forwarder : t -> int -> unit
val revive_forwarder : t -> int -> unit
val revive_instance : t -> int -> unit
val fail_instance : t -> int -> unit
val reattach_edge : t -> int -> forwarder:int -> unit
val reattach_instance : t -> int -> forwarder:int -> unit
val forwarder_site : t -> int -> int
val site_name : t -> int -> string

val attached_instances : t -> forwarder:int -> int list
(** Maintained incrementally (updated on attach/re-home, like the seed it
    includes failed instances), not recomputed by folding the instance
    table per call. *)

val forwarder_published_weight : t -> int -> int -> float

val install_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list ->
  unit

val install_rx_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list ->
  unit

val rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list option

val rx_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list option
(** The reverse-direction rule installed by [install_rx_rule], if any. *)

type rule_patch = {
  rp_chain : int;
  rp_egress : int;
  rp_stage : int;
  rp_rx : bool;  (** patch the reverse-direction ([install_rx_rule]) map *)
  rp_targets : (endpoint * float) list;
}
(** One rule replacement of a compiled rollout delta
    ([Sb_ctrl.Compile]). *)

val apply_delta : t -> forwarder:int -> rule_patch list -> int
(** Apply a batch of rule patches to one forwarder, skipping patches whose
    packed form is already identical to the live slot. Returns how many
    patches actually mutated the rule store; each counts one journal
    entry, exactly as the equivalent [install_rule] would. *)

val flow_table_size : t -> forwarder:int -> int

val flow_table_stats : t -> forwarder:int -> int * int * int
(** [(count, capacity, max_probe)] of one forwarder's connection table:
    live entries, open-addressing capacity (load factor is
    [count /. capacity]) and the longest probe sequence a lookup can take.
    An O(capacity) scan — telemetry and occupancy benches, not the packet
    path. *)

val mutations : t -> int
(** Number of journal entries applied to the packed arrays so far (rule
    installs, topology mutations) — introspection for tests/benchmarks. *)

type arena_stats = {
  slots_live : int;  (** rule slots currently installed *)
  words_used : int;  (** arena words allocated, live + garbage *)
  words_garbage : int;  (** dead words awaiting compaction *)
  compactions : int;  (** arena compaction passes run so far *)
}

val arena_stats : t -> arena_stats
(** Occupancy of the packed rule arena — how much churn the journal has
    absorbed and how often it forced a compaction. *)

val send_forward :
  t ->
  ingress:int ->
  chain_label:int ->
  egress_label:int ->
  ?size:int ->
  Packet.five_tuple ->
  (endpoint list, error) result

val send_reverse :
  t ->
  egress:int ->
  chain_label:int ->
  egress_label:int ->
  ?size:int ->
  Packet.five_tuple ->
  (endpoint list, error) result

val drive :
  t ->
  ingress:int ->
  chain_label:int ->
  egress_label:int ->
  size:int ->
  Packet.five_tuple ->
  bool
(** {!send_forward} without the trace: [true] iff the packet was
    delivered to an egress edge. Identical side effects (flow-table
    inserts, RNG draws, stage counters) but allocation-free — the packet
    lives entirely in registers/locals. The packets-per-second numbers in
    EXPERIMENTS.md come from this entry point. *)

val vnfs_in_trace : t -> endpoint list -> int list
val instances_in_trace : endpoint list -> int list
val end_flow : t -> Packet.five_tuple -> unit
val transfer_flows : t -> from_instance:int -> to_instance:int -> int

val instance_flow_count : t -> int -> int
(** Number of flow-table cells (across every forwarder table and, in the
    replicated store, every replica) still pinning a connection hop to
    the given VNF instance — the occupancy a scale-in drain waits on.
    Zero means no established flow will be steered to the instance, so it
    can be retracted without blackholing. A connection traversing the
    instance contributes one cell per table holding its entry. O(sum of
    table capacities), off the packet path. *)

val set_clock : t -> int -> unit
(** Set the logical clock (any monotone integer — scenario drivers use
    the workload tick). Every packet stamps the clock onto the flow-table
    cells it touches (insert and hit, forward and reverse); the stamp is
    what {!expire_flows} ages against. Never consulted on the packet
    path's control flow, so traces and RNG draws are unchanged. *)

val clock : t -> int

val expire_flows : t -> idle_before:int -> int
(** Scenario-driven idle sweep: remove every connection whose last
    activity predates [idle_before] — the bulk [end_flow] that keeps
    flow-table occupancy (visible via {!flow_table_stats}) bounded under
    streaming churn. A connection is kept if {e any} of its cells in a
    table is fresh. O(sum of table capacities); returns the number of
    table-local connection evictions (a connection spanning [k]
    forwarders counts [k] times). *)

val stage_counters :
  t -> chain_label:int -> egress_label:int -> stage:int -> int * int

val site_stage_counters :
  t -> site:int -> chain_label:int -> egress_label:int -> stage:int -> int * int

val site_stage_counters_into :
  t ->
  site:int ->
  chain_label:int ->
  egress_label:int ->
  pkts:int array ->
  bytes:int array ->
  unit
(** Fill [pkts]/[bytes] (indexed by stage, as many stages as the arrays
    hold) with one site's counters for one chain in a single pass over the
    forwarders — the allocation-free bulk form of
    {!site_stage_counters} that the telemetry exporter reuses its scratch
    buffers with. *)

val reset_counters : t -> unit
