type 'v t = {
  replication : int;
  virtual_nodes : int;
  (* Ring: sorted (hash, node) pairs; rebuilt on membership change. *)
  mutable ring : (int * int) array;
  stores : (int, (Flow_table.key, 'v) Hashtbl.t) Hashtbl.t;
  (* By-connection index over the distinct keys stored (across all
     replicas), so connection teardown is O(stages), not a ring scan. *)
  flow_index : (Packet.five_tuple, (Flow_table.key, unit) Hashtbl.t) Hashtbl.t;
}

(* SplitMix-style avalanche over the OCaml structural hash, so ring
   positions are well spread even for sequential ids. *)
let mix h =
  let h = h * 0x9E3779B1 land max_int in
  let h = h lxor (h lsr 16) in
  let h = h * 0x85EBCA6B land max_int in
  let h = h lxor (h lsr 13) in
  let h = h * 0xC2B2AE35 land max_int in
  h lxor (h lsr 16)

let hash_key (key : Flow_table.key) = mix (Hashtbl.hash key)
let hash_vnode node i = mix ((node * 1_000_003) + i)

let create ?(replication = 2) ?(virtual_nodes = 64) () =
  if replication <= 0 then invalid_arg "Dht_table.create: replication must be positive";
  if virtual_nodes <= 0 then invalid_arg "Dht_table.create: virtual_nodes must be positive";
  {
    replication;
    virtual_nodes;
    ring = [||];
    stores = Hashtbl.create 8;
    flow_index = Hashtbl.create 64;
  }

let rebuild_ring t =
  let points = ref [] in
  Hashtbl.iter
    (fun node _ ->
      for i = 0 to t.virtual_nodes - 1 do
        points := (hash_vnode node i, node) :: !points
      done)
    t.stores;
  let arr = Array.of_list !points in
  Array.sort compare arr;
  t.ring <- arr

let nodes t = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.stores [])

(* First ring index at or after [h] (wrapping). *)
let ring_start t h =
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let owners t ~key =
  let n = Array.length t.ring in
  if n = 0 then []
  else begin
    let start = ring_start t (hash_key key) in
    let found = ref [] in
    let i = ref 0 in
    while List.length !found < t.replication && !i < n do
      let node = snd t.ring.((start + !i) mod n) in
      if not (List.mem node !found) then found := node :: !found;
      incr i
    done;
    List.rev !found
  end

let store_of t node = Hashtbl.find t.stores node

let index_key t (key : Flow_table.key) =
  let keys =
    match Hashtbl.find_opt t.flow_index key.Flow_table.flow with
    | Some keys -> keys
    | None ->
      let keys = Hashtbl.create 8 in
      Hashtbl.replace t.flow_index key.Flow_table.flow keys;
      keys
  in
  Hashtbl.replace keys key ()

let unindex_key t (key : Flow_table.key) =
  match Hashtbl.find_opt t.flow_index key.Flow_table.flow with
  | None -> ()
  | Some keys ->
    Hashtbl.remove keys key;
    if Hashtbl.length keys = 0 then Hashtbl.remove t.flow_index key.Flow_table.flow

let put t ~key value =
  match owners t ~key with
  | [] -> invalid_arg "Dht_table.put: no nodes in the ring"
  | os ->
    List.iter (fun node -> Hashtbl.replace (store_of t node) key value) os;
    index_key t key

let get t ~key =
  let rec first = function
    | [] -> None
    | node :: rest -> (
      match Hashtbl.find_opt (store_of t node) key with
      | Some v -> Some v
      | None -> first rest)
    in
  first (owners t ~key)

let remove t ~key =
  Hashtbl.iter (fun _ store -> Hashtbl.remove store key) t.stores;
  unindex_key t key

let remove_flow t flow =
  match Hashtbl.find_opt t.flow_index flow with
  | None -> ()
  | Some keys ->
    Hashtbl.iter
      (fun key () -> Hashtbl.iter (fun _ store -> Hashtbl.remove store key) t.stores)
      keys;
    Hashtbl.remove t.flow_index flow

(* Re-establish the replication invariant: every stored key lives on
   exactly its current owner set. Walk all replicas, recompute owners, add
   missing copies, drop stale ones. *)
let rereplicate t =
  let all = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ store -> Hashtbl.iter (fun k v -> Hashtbl.replace all k v) store)
    t.stores;
  Hashtbl.iter (fun _ store -> Hashtbl.reset store) t.stores;
  (* Rebuild the connection index too: keys without a surviving replica
     (possible at replication 1) drop out of it here. *)
  Hashtbl.reset t.flow_index;
  Hashtbl.iter (fun key value -> put t ~key value) all

let add_node t node =
  if Hashtbl.mem t.stores node then invalid_arg "Dht_table.add_node: node already present";
  Hashtbl.replace t.stores node (Hashtbl.create 64);
  rebuild_ring t;
  rereplicate t

let remove_node t node =
  if Hashtbl.mem t.stores node then begin
    Hashtbl.remove t.stores node;
    rebuild_ring t;
    if Hashtbl.length t.stores > 0 then rereplicate t
    else Hashtbl.reset t.flow_index
  end

let size t =
  let keys = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ store -> Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) store)
    t.stores;
  Hashtbl.length keys

let node_key_count t node =
  match Hashtbl.find_opt t.stores node with
  | Some store -> Hashtbl.length store
  | None -> 0
