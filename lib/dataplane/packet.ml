type five_tuple = {
  src_ip : int;
  dst_ip : int;
  proto : int;
  src_port : int;
  dst_port : int;
}

let reverse_tuple t =
  { t with src_ip = t.dst_ip; dst_ip = t.src_ip; src_port = t.dst_port; dst_port = t.src_port }

let canonical t =
  let r = reverse_tuple t in
  if compare t r <= 0 then t else r

let random_tuple rng =
  {
    src_ip = Sb_util.Rng.int rng 0x1000000;
    dst_ip = Sb_util.Rng.int rng 0x1000000;
    proto = (if Sb_util.Rng.bool rng then 6 else 17);
    src_port = 1024 + Sb_util.Rng.int rng 64000;
    dst_port = 1 + Sb_util.Rng.int rng 1023;
  }

(* SplitMix-style avalanche over a native int, kept in the non-negative
   range. Shared by the packed dataplane (Plane) for flow keys. *)
let mix h =
  let h = h * 0x9E3779B1 land max_int in
  let h = h lxor (h lsr 16) in
  let h = h * 0x85EBCA6B land max_int in
  let h = h lxor (h lsr 13) in
  let h = h * 0xC2B2AE35 land max_int in
  h lxor (h lsr 16)

let tuple_hash t =
  let h = mix (t.src_ip + 0x5DEECE66) in
  let h = mix (h lxor t.dst_ip) in
  let h = mix (h lxor ((t.proto lsl 17) + t.src_port)) in
  mix (h lxor t.dst_port)

type direction = Forward | Reverse

type t = {
  chain_label : int;
  egress_label : int;
  flow : five_tuple;
  direction : direction;
  stage : int;
  size : int;
}

let forward ~chain_label ~egress_label ?(size = 500) flow =
  { chain_label; egress_label; flow; direction = Forward; stage = 0; size }

let reverse_of p ~last_stage = { p with direction = Reverse; stage = last_stage }

let pp_tuple ppf t =
  Format.fprintf ppf "%d:%d->%d:%d/%d" t.src_ip t.src_port t.dst_ip t.dst_port t.proto
