(** The seed fabric implementation (hashtables of boxed keys, one record
    per packet hop), preserved verbatim as the behavioural oracle for the
    packed data plane: the equivalence property in [test_dataplane.ml]
    drives identical traffic and churn through this module and {!Fabric}
    (= {!Plane}) and asserts identical traces, errors, flow-table sizes
    and counters; the [fabric] benchmark kernel uses it as the before-side
    of the packets-per-second comparison.

    The API and per-function semantics are exactly {!Fabric}'s — see that
    module for documentation. Types are equated with {!Plane}'s so results
    from the two implementations compare directly. *)

type t

type endpoint = Plane.endpoint = Edge of int | Forwarder of int | Vnf_instance of int

type flow_store = Plane.flow_store = Local | Replicated of int

type error = Plane.error =
  | No_rule of { forwarder : int; stage : int }
  | No_reverse_entry of { forwarder : int; stage : int }
  | Instance_down of int
  | Forwarder_down of int
  | Ttl_exceeded
  | Not_an_edge

val pp_error : Format.formatter -> error -> unit
val create : ?seed:int -> ?flow_store:flow_store -> unit -> t
val add_site : t -> string -> int
val add_forwarder : t -> site:int -> int
val add_edge : t -> site:int -> forwarder:int -> int

val add_vnf_instance :
  t -> vnf:int -> site:int -> forwarder:int -> ?weight:float -> unit -> int

val instance_vnf : t -> int -> int
val instance_site : t -> int -> int
val instance_weight : t -> int -> float
val set_instance_weight : t -> int -> float -> unit
val instance_alive : t -> int -> bool
val forwarder_alive : t -> int -> bool
val fail_forwarder : t -> int -> unit
val revive_forwarder : t -> int -> unit
val revive_instance : t -> int -> unit
val fail_instance : t -> int -> unit
val reattach_edge : t -> int -> forwarder:int -> unit
val reattach_instance : t -> int -> forwarder:int -> unit
val forwarder_site : t -> int -> int
val site_name : t -> int -> string
val attached_instances : t -> forwarder:int -> int list
val forwarder_published_weight : t -> int -> int -> float

val install_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list ->
  unit

val install_rx_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list ->
  unit

val rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list option

val flow_table_size : t -> forwarder:int -> int

val send_forward :
  t ->
  ingress:int ->
  chain_label:int ->
  egress_label:int ->
  ?size:int ->
  Packet.five_tuple ->
  (endpoint list, error) result

val send_reverse :
  t ->
  egress:int ->
  chain_label:int ->
  egress_label:int ->
  ?size:int ->
  Packet.five_tuple ->
  (endpoint list, error) result

val vnfs_in_trace : t -> endpoint list -> int list
val instances_in_trace : endpoint list -> int list
val end_flow : t -> Packet.five_tuple -> unit
val transfer_flows : t -> from_instance:int -> to_instance:int -> int

val stage_counters :
  t -> chain_label:int -> egress_label:int -> stage:int -> int * int

val site_stage_counters :
  t -> site:int -> chain_label:int -> egress_label:int -> stage:int -> int * int

val reset_counters : t -> unit
