type key = {
  chain_label : int;
  egress_label : int;
  stage : int;
  flow : Packet.five_tuple;
}

type 'hop entry = { next : 'hop; prev : 'hop }

(* The main table plus a by-connection index: a connection touches one
   entry per (chain, stage) it traverses, so teardown should be O(stages),
   not a scan of every connection's state. *)
type 'hop t = {
  tbl : (key, 'hop entry) Hashtbl.t;
  by_flow : (Packet.five_tuple, (key, unit) Hashtbl.t) Hashtbl.t;
}

let create () = { tbl = Hashtbl.create 64; by_flow = Hashtbl.create 64 }
let size t = Hashtbl.length t.tbl

let stats t =
  let s = Hashtbl.stats t.tbl in
  (s.Hashtbl.num_bindings, s.Hashtbl.num_buckets, s.Hashtbl.max_bucket_length)
let find t k = Hashtbl.find_opt t.tbl k

let insert t k e =
  Hashtbl.replace t.tbl k e;
  let keys =
    match Hashtbl.find_opt t.by_flow k.flow with
    | Some keys -> keys
    | None ->
      let keys = Hashtbl.create 8 in
      Hashtbl.replace t.by_flow k.flow keys;
      keys
  in
  Hashtbl.replace keys k ()

let remove t k =
  Hashtbl.remove t.tbl k;
  match Hashtbl.find_opt t.by_flow k.flow with
  | None -> ()
  | Some keys ->
    Hashtbl.remove keys k;
    if Hashtbl.length keys = 0 then Hashtbl.remove t.by_flow k.flow

let remove_flow t flow =
  match Hashtbl.find_opt t.by_flow flow with
  | None -> ()
  | Some keys ->
    Hashtbl.iter (fun k () -> Hashtbl.remove t.tbl k) keys;
    Hashtbl.remove t.by_flow flow

let entries t = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []

let clear t =
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.by_flow
