(** Synthetic packet-stream generation (the MoonGen stand-in for the
    Section 5.4 experiments and the data-plane tests).

    Two modes. A {e static} generator ({!create}) owns a materialized
    population of connections and emits packets drawn from them. A
    {e streaming} generator ({!create_stream}) holds no population at
    all: the live set is a sliding window of flow indices whose 5-tuples
    are a pure function of (seed, index), and {!churn} slides the window
    — closing the oldest flows, opening fresh ones — so a DDoS scenario
    can cycle millions of distinct short flows through the flow tables in
    constant memory.

    Flow selection is uniform (as in the paper's DPDK experiment) or
    Zipf-skewed; packet sizes are fixed (64 B minimum-size UDP, the
    paper's choice), the standard IMIX mix, or a custom value. *)

type size_model =
  | Fixed of int
  | Imix  (** 7:4:1 mix of 64 / 570 / 1514-byte packets *)

type flow_selection = Uniform | Zipfian of float

type t

val create :
  rng:Sb_util.Rng.t ->
  flows:int ->
  ?sizes:size_model ->
  ?selection:flow_selection ->
  unit ->
  t
(** Static mode. Raises [Invalid_argument] if [flows <= 0] or a size is
    non-positive. *)

val create_stream :
  seed:int ->
  window:int ->
  ?sizes:size_model ->
  ?selection:flow_selection ->
  unit ->
  t
(** Streaming mode with at most [window] concurrently-live flows (the
    initial window is fully open). Pure in [seed]: equal seeds give
    bit-identical packet and churn sequences. With [Zipfian] selection,
    rank 0 maps to the newest live flow, so the hot set follows the
    churn. Raises [Invalid_argument] if [window <= 0]. *)

val is_streaming : t -> bool

val next : t -> Packet.five_tuple * int
(** Draw the next packet: its connection 5-tuple and size in bytes. *)

val burst : t -> int -> (Packet.five_tuple * int) list

val churn :
  t ->
  ?close:(Packet.five_tuple -> unit) ->
  ?opened:(Packet.five_tuple -> unit) ->
  int ->
  unit
(** [churn t n] closes the [n] oldest live flows (capped at the live
    count) and opens [n] fresh ones, keeping the live set at the window
    bound — O(n) work, O(1) memory. [close] is called with each closed
    tuple (e.g. to [end_flow] it on a fabric); omit it to let idle-flow
    expiry reclaim the table entries instead. [opened] is called with
    each fresh tuple — scenario drivers use it to send every new flow's
    first packet, the short-flow-flood pattern. Raises
    [Invalid_argument] on a static generator or negative [n]. *)

val live_flows : t -> int
(** Currently-live flows ([window] in streaming mode, the population size
    in static mode). *)

val distinct_flows : t -> int
(** Total distinct flows ever opened (grows with {!churn} in streaming
    mode). *)

val flow_tuples : t -> Packet.five_tuple array
(** Static mode: the full connection population (index = flow id).
    Streaming mode: {e partial} — only the currently-live window; flows
    already closed by {!churn} are not recoverable from the generator. *)
