(** Replicated distributed-hash-table flow state (Section 5.3).

    The paper notes that elastic scaling or failure of a forwarder remaps
    VNF instances and breaks flow affinity, and describes (as work in
    progress) "maintaining the flow table as a replicated distributed hash
    table across forwarder nodes" so connection state survives; the same
    mechanism locates the original edge instance of a flow for global
    symmetric return. This module implements that DHT: a consistent-hash
    ring over forwarder nodes with virtual nodes for balance and [k]-way
    successor replication.

    Entries are written to the [k] distinct nodes that succeed the key's
    hash on the ring; reads fall back across replicas, so any [k - 1]
    simultaneous node failures lose nothing. Adding or removing a node
    re-replicates only the affected key ranges (consistent hashing's
    minimal-disruption property, which the tests pin down). *)

type 'v t

val create : ?replication:int -> ?virtual_nodes:int -> unit -> 'v t
(** [replication] defaults to 2, [virtual_nodes] per physical node to 64.
    Raises [Invalid_argument] on non-positive values. *)

val add_node : 'v t -> int -> unit
(** Join a forwarder node (id must be fresh); existing entries are
    re-replicated onto it where it became an owner. *)

val remove_node : 'v t -> int -> unit
(** Fail/decommission a node; entries it held are re-replicated from the
    surviving copies. Unknown node ids are ignored. *)

val nodes : 'v t -> int list

val owners : 'v t -> key:Flow_table.key -> int list
(** The (up to [k]) nodes currently responsible for a key, primary first. *)

val put : 'v t -> key:Flow_table.key -> 'v -> unit
(** Store on every owner. Raises [Invalid_argument] if the ring is empty. *)

val get : 'v t -> key:Flow_table.key -> 'v option
(** Read from the first owner holding the key. *)

val remove : 'v t -> key:Flow_table.key -> unit

val remove_flow : 'v t -> Packet.five_tuple -> unit
(** Drop every stored key of one connection (all chains, stages, and
    role-encoded sides) from every replica — connection teardown.
    O(stages) via a by-connection index. *)

val size : 'v t -> int
(** Number of distinct keys stored (not replica count). *)

val node_key_count : 'v t -> int -> int
(** Keys (replicas) physically held by one node — for balance checks. *)
