(** A functional simulation of the Switchboard data plane: edges, VNF
    instances, and forwarders wired per Section 5, over which packets are
    driven hop by hop.

    Every VNF instance and edge instance is attached to exactly one
    forwarder at its site (Section 5.1: the instance's routing table points
    at the forwarder as its proxy gateway). Forwarders hold weighted rules
    keyed by (chain label, egress label, stage) and a flow table that
    pins each connection's choices, delivering the safety properties of
    Section 5.3: conformity, flow affinity, and symmetric return. Tests
    drive random traffic and weight churn through a fabric and assert those
    properties; the control plane ([sb_ctrl]) installs rules into one.

    Since DESIGN.md §11 this module is a thin shim over {!Plane}, the
    packed data plane: rules are compiled into flat arrays, connection
    state into open-addressed int-keyed tables, and a packet into a
    cursor advanced in place per hop — observably identical (traces,
    errors, counters, RNG draw sequence) to the seed implementation kept
    in {!Legacy_fabric}, but several times faster and allocation-free on
    the warm path ({!drive}). *)

type t = Plane.t

type endpoint = Plane.endpoint =
  | Edge of int
  | Forwarder of int
  | Vnf_instance of int
      (** Values are ids returned by the [add_*] functions. *)

type flow_store = Plane.flow_store =
  | Local  (** per-forwarder flow tables (the prototype's default) *)
  | Replicated of int
      (** connection state in a DHT spread over the forwarder nodes with
          the given replication factor — the Section 5.3 design that keeps
          flow affinity and symmetric return across forwarder failures and
          elastic scale-in *)

val create : ?seed:int -> ?flow_store:flow_store -> unit -> t
(** [seed] drives the weighted load-balancing choices; [flow_store]
    defaults to {!Local}. *)

(** {2 Building the fabric} *)

val add_site : t -> string -> int
val add_forwarder : t -> site:int -> int
val add_edge : t -> site:int -> forwarder:int -> int
val add_vnf_instance : t -> vnf:int -> site:int -> forwarder:int -> ?weight:float -> unit -> int

val instance_vnf : t -> int -> int
val instance_site : t -> int -> int
val instance_weight : t -> int -> float
val set_instance_weight : t -> int -> float -> unit

val instance_alive : t -> int -> bool
(** Whether an instance is still serving traffic. *)

val forwarder_alive : t -> int -> bool
(** Whether a forwarder is still processing packets. *)

val fail_forwarder : t -> int -> unit
(** Kill a forwarder. In {!Local} mode its flow table dies with it: even
    after edges and instances are reattached, established connections have
    lost their state. In {!Replicated} mode the DHT re-replicates the
    failed node's key ranges from the surviving copies, so reattached
    traffic keeps its affinity — exactly the fault-tolerance story of
    Section 5.3. *)

val revive_forwarder : t -> int -> unit
(** Restart a failed forwarder (the [sb_chaos] crash/restart fault). The
    restarted process comes back {e empty}: its local flow table is
    cleared — whatever state it held died with the crash. In
    {!Replicated} mode it rejoins the DHT ring and receives its key
    ranges back from the surviving replicas, so connection state survives
    the crash/restart cycle end to end. No-op on a live forwarder. *)

val revive_instance : t -> int -> unit
(** Bring a failed VNF instance back. Flow-table entries that pinned
    connections to it work again immediately — instance-local state is
    assumed recoverable (checkpointed or stateless), matching the
    Section 5.3 elastic-scaling story. *)

val reattach_edge : t -> int -> forwarder:int -> unit
(** Point an edge instance at a (live) forwarder, e.g. after its proxy
    failed. *)

val reattach_instance : t -> int -> forwarder:int -> unit
(** Re-home a VNF instance onto another forwarder (elastic scale-in or
    failure recovery). *)

val fail_instance : t -> int -> unit
(** Kill a VNF instance. Connections pinned to it by their flow-table
    entries start failing with [Instance_down] — the flow-affinity
    violation Section 5.3 warns about for instance failure; {!Dht_table}
    is the replicated-state remedy the paper sketches. New connections
    avoid the instance only once the controller installs updated rules. *)

val forwarder_site : t -> int -> int
val site_name : t -> int -> string

val attached_instances : t -> forwarder:int -> int list
(** VNF instances proxied by a forwarder (id-sorted). Maintained as a
    per-forwarder list updated on attach and re-home — not recomputed by
    folding the whole instance table per call. *)

val forwarder_published_weight : t -> int -> int -> float
(** [forwarder_published_weight t fwd vnf]: sum of the weights of [vnf]'s
    instances attached to [fwd] — what the forwarder publishes on the
    message bus (Section 5.2). *)

(** {2 Rules} *)

val install_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list ->
  unit
(** Replace the weighted rule for one (chain, egress, stage) at a
    forwarder. Targets must be [Vnf_instance], [Forwarder], or [Edge].
    Installing a new rule leaves existing flow-table entries untouched, so
    established connections keep their path (Section 5.3). *)

val install_rx_rule :
  t ->
  forwarder:int ->
  chain_label:int ->
  egress_label:int ->
  stage:int ->
  (endpoint * float) list ->
  unit
(** Replace the {e receiver-side} rule for one (chain, egress, stage): the
    targets used for packets that arrive from a peer forwarder (they are
    mid-relay and must be delivered into a local element). Without one the
    forwarder falls back to the {!install_rule} rule for both directions.
    Keeping relayed packets local bounds every stage of a connection to
    two forwarders (sender and receiver), which the role-keyed replicated
    flow store depends on: with a third relay hop the receiver role key
    would collide and forwarding could loop. *)

val rule : t -> forwarder:int -> chain_label:int -> egress_label:int -> stage:int ->
  (endpoint * float) list option

val rx_rule : t -> forwarder:int -> chain_label:int -> egress_label:int -> stage:int ->
  (endpoint * float) list option
(** The receiver-side rule installed by {!install_rx_rule}, if any. *)

type rule_patch = Plane.rule_patch = {
  rp_chain : int;
  rp_egress : int;
  rp_stage : int;
  rp_rx : bool;  (** patch the receiver-side ({!install_rx_rule}) rule *)
  rp_targets : (endpoint * float) list;
}
(** One rule replacement of a compiled rollout delta
    ([Sb_ctrl.Compile]). *)

val apply_delta : t -> forwarder:int -> rule_patch list -> int
(** Apply a batch of rule patches to one forwarder, skipping patches whose
    packed form already matches the live slot. Returns how many patches
    actually mutated the rule store; each journals exactly as the
    equivalent {!install_rule}/{!install_rx_rule} call would, so the
    compiled rollout and a full reinstall are indistinguishable to the
    arena. *)

val flow_table_size : t -> forwarder:int -> int

val flow_table_stats : t -> forwarder:int -> int * int * int
(** [(count, capacity, max_probe)] of one forwarder's connection table —
    occupancy for telemetry and the cache-cliff bench. See
    {!Plane.flow_table_stats}. *)

val mutations : t -> int
(** Journal entries applied to the packed arrays so far (rule installs and
    topology mutations) — introspection for tests and benchmarks. *)

type arena_stats = Plane.arena_stats = {
  slots_live : int;
  words_used : int;
  words_garbage : int;
  compactions : int;
}

val arena_stats : t -> arena_stats
(** Packed rule-arena occupancy and compaction count — how much rollout
    churn the mutation journal has absorbed. See {!Plane.arena_stats}. *)

(** {2 Driving packets} *)

type error = Plane.error =
  | No_rule of { forwarder : int; stage : int }
  | No_reverse_entry of { forwarder : int; stage : int }
  | Instance_down of int
  | Forwarder_down of int
  | Ttl_exceeded
  | Not_an_edge

val pp_error : Format.formatter -> error -> unit

val send_forward :
  t ->
  ingress:int ->
  chain_label:int ->
  egress_label:int ->
  ?size:int ->
  Packet.five_tuple ->
  (endpoint list, error) result
(** Inject a forward packet at an ingress edge; returns the full hop trace
    (ending at an [Edge]) or the first error. Flow-table entries are
    created for new connections and reused for existing ones. *)

val send_reverse :
  t ->
  egress:int ->
  chain_label:int ->
  egress_label:int ->
  ?size:int ->
  Packet.five_tuple ->
  (endpoint list, error) result
(** Inject the reply at the egress edge; [five_tuple] is the {e forward}
    orientation of the connection. Follows stored [prev] hops; fails with
    [No_reverse_entry] if the forward direction never established state. *)

val drive :
  t ->
  ingress:int ->
  chain_label:int ->
  egress_label:int ->
  size:int ->
  Packet.five_tuple ->
  bool
(** {!send_forward} without the trace: [true] iff the packet was delivered
    to an egress edge. Identical side effects (flow-table inserts, RNG
    draws, stage counters) but allocation-free — the packet is a cursor
    that never leaves the registers. This is the packets-per-second entry
    point benchmarked in EXPERIMENTS.md. *)

val vnfs_in_trace : t -> endpoint list -> int list
(** VNF ids in visit order — for conformity checks. *)

val instances_in_trace : endpoint list -> int list
(** VNF instance ids in visit order — for affinity checks. *)

val end_flow : t -> Packet.five_tuple -> unit
(** Drop every forwarder's entries for a connection (teardown / timeout) —
    including the replicated copies in {!Replicated} mode. O(stages) via
    the by-connection index. *)

val set_clock : t -> int -> unit
(** Set the logical timestamp packets stamp onto the flow-table entries
    they touch (scenario drivers advance it once per tick). Never
    consulted on the packet path's control flow, so traces and balancer
    draws are unchanged by the clock. *)

val clock : t -> int

val expire_flows : t -> idle_before:int -> int
(** Evict every connection none of whose entries in a table was touched
    at or after [idle_before]. Returns the number of table-local
    connection evictions (a connection spanning [k] forwarders counts
    [k] times). *)

val transfer_flows : t -> from_instance:int -> to_instance:int -> int
(** (Local flow-store mode.) OpenNF-style flow-state transfer (Section 5.3: "flow table entries can
    be transferred across forwarders using recent proposals such as
    OpenNF"): rewrite every flow-table entry that pins a connection to
    [from_instance] so it points at [to_instance] instead — both the
    forward next-hops and the reverse prev-hops — preserving flow affinity
    and symmetric return across an instance migration or failure. Both
    instances must run the same VNF (raises [Invalid_argument] otherwise).
    Returns the number of rewritten entries. *)

val instance_flow_count : t -> int -> int
(** Flow-table cells (all forwarder tables, plus replicas in the
    replicated store) still pinning a connection hop to the VNF instance
    — the occupancy a scale-in drain polls until it reaches zero. *)

(** {2 Measurement}

    Global Switchboard sizes chain traffic from "measurements at
    Switchboard forwarders" (Sections 4.1 and 7.2). Each forwarder counts
    the forward packets and bytes it delivers into a stage's destination
    element (VNF instance or egress edge), so every packet is counted
    exactly once per stage regardless of how many forwarders relay it. *)

val stage_counters : t -> chain_label:int -> egress_label:int -> stage:int -> int * int
(** Aggregated [(packets, bytes)] for one stage of one chain. *)

val site_stage_counters :
  t -> site:int -> chain_label:int -> egress_label:int -> stage:int -> int * int
(** Like {!stage_counters} but restricted to the forwarders of one fabric
    site — the view a per-site telemetry exporter reports. Summing over all
    sites equals {!stage_counters}. *)

val site_stage_counters_into :
  t ->
  site:int ->
  chain_label:int ->
  egress_label:int ->
  pkts:int array ->
  bytes:int array ->
  unit
(** Bulk {!site_stage_counters}: fill caller-owned [pkts]/[bytes] arrays
    (indexed by stage, one entry per stage the arrays hold) in a single
    pass over the site's forwarders. The telemetry exporter calls this
    with reused scratch buffers every epoch. *)

val reset_counters : t -> unit
(** Start a fresh measurement window. *)
