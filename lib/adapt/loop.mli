(** The closed control loop (Section 4.1's feedback path, run end to end):
    telemetry exporters measure the data-plane fabric, the aggregator at
    the Global Switchboard reassembles a measured traffic matrix and
    failure view, {!Sb_core.Dp_routing.resolve} re-routes only the chains
    worth moving (hysteresis + churn budget), and the deltas roll out
    through the control plane's two-phase commit while the flow simulator
    scores each epoch.

    Four arms share one scenario so adaptation can be isolated:
    [Static] solves once at epoch 0 and never reacts; [Oracle] fully
    re-solves each epoch with perfect instantaneous knowledge (the upper
    bound); [Closed_loop] runs the whole measured pipeline, including
    report latency/loss and rollout delay; [Anycast_dist] runs the
    decentralized {!Anycast} agents — per-site flooded load advertisements
    and local greedy rule re-pointing, no Global Switchboard in the loop
    after establishment. *)

type scenario = {
  sc_model : Sb_core.Model.t;
      (** base model; the closed loop requires a site at every node that
          routes can visit (true of [Workload.synthesize] models) *)
  sc_epochs : int;
  sc_epoch_len : float;  (** seconds of simulated time per epoch *)
  sc_demand : epoch:int -> chain:int -> float;
      (** ground-truth multiplicative demand factor *)
  sc_failures : (int * int list) list;
      (** [(epoch, base-model link ids)]: links failed from that epoch on
          (cumulative; no repair) *)
}

type arm = Static | Closed_loop | Oracle | Anycast_dist

val arm_name : arm -> string

type params = {
  hysteresis : float;  (** relative-gain threshold for a re-route (0.05) *)
  churn_budget : int;  (** max chains re-routed per epoch (6) *)
  util_weight : float;
      (** utilization-cost weight the incremental resolver optimizes with
          (0.10, 2x the solver default) *)
  pkts_per_unit : int;
      (** probe packets injected per traffic unit per epoch (16) — the
          telemetry signal's resolution *)
  staleness : int;  (** epochs before an aggregator sample ages out (3) *)
  control_lag : float;
      (** seconds after the epoch boundary the control tick waits for
          reports to arrive (0.5) *)
  vnf_headroom : float;
      (** provisioned VNF admission capacity over the model's (4.0), so
          admission never vetoes a capacity-feasible re-route *)
  lanes : int;
      (** RSS lanes per forwarder in the assembled system (1); the live
          arms' results are lane-count independent, which the chaos suite
          pins *)
  seed : int;
  placement : Place.params option;
      (** [Some _] arms the elastic-placement capability on the
          [Closed_loop] arm: a {!Place} planner runs every control tick,
          scale-outs go through {!Sb_ctrl.System.scale_out} + the next
          route rollout, scale-ins through a route rollout excluding the
          site followed by {!Sb_ctrl.System.drain_and_remove}, and the
          epoch tick drives the flow-expiry clock so drains complete.
          [None] (the default) leaves the route-only loop bit-identical
          to its pre-placement behaviour. Ignored by the other arms. *)
}

val default_params : params

type epoch_report = {
  ep_epoch : int;
  ep_supported : float;
      (** satisfied demand of the routes in force against the epoch's
          ground truth: [min(1, max_alpha) * total_demand] — full demand
          when the routing has headroom, the feasible fraction when not *)
  ep_throughput : float;  (** flow-level total throughput ([E2e.evaluate]) *)
  ep_mean_rtt : float;
  ep_rerouted : int;
      (** chains whose routes changed going into this epoch (for
          [Closed_loop], what the previous control tick rolled out) *)
  ep_down_links : int;
      (** [Closed_loop]: links the aggregator believed down at the last
          control tick; other arms: ground-truth failed links *)
  ep_reports : int;
      (** cumulative control-plane signal received: telemetry reports at
          the aggregator ([Closed_loop]) or load advertisements folded into
          site views, summed over sites ([Anycast_dist]) *)
}

type run_result = {
  epochs : epoch_report list;
  total_rerouted : int;
  total_scale_actions : int;
      (** deployment scale-outs plus scale-ins the placement planner
          emitted over the run (0 unless the placement capability is
          armed) — the churn figure BENCH_placement.json pins *)
}

val diurnal_demand :
  ?amplitude:float -> ?period:int -> seed:int -> int -> epoch:int -> chain:int -> float
(** Per-chain diurnal curve [1 + amplitude * sin(phase_c + 2*pi*e/period)]
    with deterministic random phases for [n] chains. *)

val run :
  ?params:params -> ?on_system:(Sb_ctrl.System.t -> unit) -> scenario -> arm -> run_result
(** Run one arm over the scenario. Fully deterministic for a fixed
    scenario and params. [on_system] is called with the assembled control
    plane once the initial chains are committed, before the epoch grid is
    scheduled — the [sb_chaos] injection point for faulting a live arm
    mid-flight. Only the live arms ([Closed_loop], [Anycast_dist]) build a
    system; passing [on_system] with [Static] or [Oracle] raises
    [Invalid_argument] instead of silently never calling it. *)
