(** Closed-loop telemetry: per-site exporters and the Global Switchboard
    aggregator (the measurement half of the Section 4.1 feedback loop).

    Exporters snapshot the data-plane fabric's per-stage packet/byte
    counters at their site each epoch, compute the window delta against
    their previous snapshot, and publish one {!Sb_ctrl.Types.Telemetry_report}
    per chain on that chain's telemetry topic. Deltas over cumulative
    counters mean no global counter reset is needed and a lost report
    costs one window, not the baseline.

    The aggregator subscribes (at the Global Switchboard's site) to the
    telemetry topics of the chains it watches and reassembles a measured
    per-chain traffic matrix plus a link-failure view. It keeps only the
    freshest sample per (chain, site); queries at epoch [e] consider a
    sample fresh while [e - sample_epoch < staleness], so late or dropped
    reports are papered over by the previous window until they age out. *)

module Exporter : sig
  type t

  val start :
    system:Sb_ctrl.System.t ->
    site:int ->
    period:float ->
    ?down_links:(unit -> int list) ->
    unit ->
    t
  (** Schedule the site's export process on the system's engine: first
      export fires [period] after the call and every [period] thereafter,
      numbering epochs from 0. [down_links] is the site's local view of
      failed topology links (e.g. incident link-liveness detection),
      included verbatim in every report. *)

  val stop : t -> unit
  (** Stop exporting; the next pending tick becomes a no-op. *)

  val exported : t -> int
  (** Total reports published so far. *)
end

module Control : sig
  (** Control-plane cost snapshot — what running the control loops
      themselves costs, complementing the data-plane traffic matrix:
      bytes on the wire per topic class from the size-priced bus (every
      {!Sb_ctrl.System} bus prices payloads with
      {!Sb_ctrl.Types.msg_size}), and the data plane's rule-churn
      counters (mutation journal, rule-arena occupancy/compactions).
      The rollout benches read [bus_wan_bytes] before/after an epoch to
      measure what a route update actually shipped. *)

  type report = {
    bus_published : int;
    bus_wan_messages : int;
    bus_published_bytes : int;
    bus_wan_bytes : int;  (** bytes that crossed the wide area *)
    bus_topic_bytes : (string * int * int) list;
        (** per topic class: (class, publishes, bytes) *)
    bus_size_p50 : int;  (** median published payload size *)
    bus_size_p99 : int;
    dp_mutations : int;  (** rule-install journal length (lane 0) *)
    dp_slots_live : int;
    dp_words_used : int;
    dp_words_garbage : int;
    dp_compactions : int;
    churn_scale_outs : int;
        (** deployments elastic placement added ({!Sb_ctrl.System.scale_out}) *)
    churn_removed : int;  (** deployments retracted after a completed drain *)
    churn_drains_completed : int;
    churn_drains_aborted : int;  (** GSB death or timeout mid-drain *)
    churn_draining : int;  (** drains in flight at snapshot time *)
    churn_drain_p50 : float;
        (** median completed-drain duration in sim seconds (0 if none),
            from the {!Sb_ctrl.System.deployment_churn} reservoir *)
    churn_drain_max : float;
  }

  val snapshot : Sb_ctrl.System.t -> report
  (** Counters since the system's last [Bus.reset_stats] /
      construction. *)

  val pp : Format.formatter -> report -> unit
end

module Aggregator : sig
  type t

  val create :
    system:Sb_ctrl.System.t ->
    site:int ->
    chains:int list ->
    num_sites:int ->
    ?staleness:int ->
    unit ->
    t
  (** Subscribe at [site] to the telemetry topic of every chain in
      [chains] (system chain ids). [staleness] (default 3) is the number
      of epochs a (chain, site) sample stays usable. *)

  val chain_packets : t -> epoch:int -> chain:int -> int option
  (** Measured stage-0 packets for the chain summed over sites with a
      fresh sample at [epoch] — the chain's offered demand in packets per
      window. [None] when no site has a fresh sample (the caller should
      hold its previous estimate). *)

  val chain_stages : t -> epoch:int -> chain:int -> (int * int) array
  (** Per-stage [(packets, bytes)] summed over fresh sites — the measured
      row of the chain's traffic matrix. *)

  val down_links : t -> epoch:int -> int list
  (** Sorted union of the down-link observations in all fresh samples. *)

  val table_occupancy : t -> epoch:int -> int * int * int
  (** Flow-table [(count, capacity, max_probe)] summed over sites with a
      fresh sample at [epoch] (one sample per site; counts and capacities
      add, probe lengths max) — the deployment-wide connection-state
      occupancy, e.g. for charting throughput against table load factor. *)

  val reports : t -> int
  (** Total telemetry reports received (including superseded ones). *)

  val last_epoch : t -> int
  (** Highest epoch seen in any report; [-1] before the first. *)
end
