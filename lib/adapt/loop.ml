module Engine = Sb_sim.Engine
module System = Sb_ctrl.System
module Ct = Sb_ctrl.Types
module Model = Sb_core.Model
module Instance = Sb_core.Instance
module Load_state = Sb_core.Load_state
module Routing = Sb_core.Routing
module Dp = Sb_core.Dp_routing
module Greedy = Sb_core.Greedy
module Paths = Sb_net.Paths
module Topology = Sb_net.Topology
module Packet = Sb_dataplane.Packet
module E2e = Sb_flowsim.E2e
module Rng = Sb_util.Rng

type scenario = {
  sc_model : Model.t;
  sc_epochs : int;
  sc_epoch_len : float;
  sc_demand : epoch:int -> chain:int -> float;
  sc_failures : (int * int list) list;
}

type arm = Static | Closed_loop | Oracle | Anycast_dist

let arm_name = function
  | Static -> "static"
  | Closed_loop -> "closed-loop"
  | Oracle -> "oracle"
  | Anycast_dist -> "anycast"

type params = {
  hysteresis : float;
  churn_budget : int;
  util_weight : float;
  pkts_per_unit : int;
  staleness : int;
  control_lag : float;
  vnf_headroom : float;
  lanes : int;
  seed : int;
  placement : Place.params option;
}

(* Defaults from the bench sweep on the tier-1 TE scenario: a low
   hysteresis with a moderate churn budget tracks diurnal drift at ~100%
   of the oracle and recovers from a core-link failure within two control
   epochs; utilization weighted 2x the solver default keeps the
   incremental moves away from the post-failure hot links. *)
let default_params =
  {
    hysteresis = 0.05;
    churn_budget = 6;
    util_weight = 0.10;
    pkts_per_unit = 16;
    staleness = 3;
    control_lag = 0.5;
    vnf_headroom = 4.0;
    lanes = 1;
    seed = 42;
    placement = None;
  }

type epoch_report = {
  ep_epoch : int;
  ep_supported : float;
  ep_throughput : float;
  ep_mean_rtt : float;
  ep_rerouted : int;
  ep_down_links : int;
  ep_reports : int;
}

type run_result = {
  epochs : epoch_report list;
  total_rerouted : int;
  total_scale_actions : int;
}

let diurnal_demand ?(amplitude = 0.8) ?(period = 8) ~seed n =
  let rng = Rng.create seed in
  let phases = Array.init n (fun _ -> Rng.float rng (2. *. Float.pi)) in
  fun ~epoch ~chain ->
    1.
    +. amplitude
       *. sin (phases.(chain) +. (2. *. Float.pi *. float_of_int epoch /. float_of_int period))

let failed_at sc e =
  List.fold_left
    (fun acc (ef, links) ->
      if ef <= e then
        List.fold_left (fun acc l -> if List.mem l acc then acc else l :: acc) acc links
      else acc)
    [] sc.sc_failures
  |> List.sort compare

(* Ground truth at epoch [e]: failures first (rebuilds the topology), then
   the demand factors on top. *)
let truth sc e =
  let n = Model.num_chains sc.sc_model in
  let m =
    match failed_at sc e with
    | [] -> sc.sc_model
    | failed -> Model.with_failed_links sc.sc_model failed
  in
  Model.with_chain_traffic_factors m
    (Array.init n (fun c -> sc.sc_demand ~epoch:e ~chain:c))

(* Re-materialize a set of per-chain paths on a (possibly different but
   structurally identical) model and measure it. The headline is SATISFIED
   demand, [min(1, max_alpha) * reachable demand]: a routing with alpha >= 1
   carries everything the epoch offers, an overloaded one only its feasible
   fraction — spare headroom beyond alpha = 1 earns nothing. A path with a
   hop the failed topology cannot connect (an element at a fully isolated
   site) delivers NOTHING: it is dropped before the alpha evaluation and
   its share of the chain's demand is forfeited — the underlay load model
   would otherwise charge a disconnected hop zero capacity anywhere, i.e.
   silently credit blackholed traffic as satisfied. *)
let measure tm paths_per_chain =
  (* One compiled instance backs the packed routing AND the alpha
     evaluation arena — the epoch loop no longer re-walks the model. *)
  let inst = Instance.compile tm in
  let r = Routing.of_instance inst in
  let up = Model.paths tm in
  let connected nodes =
    let ok = ref true in
    for z = 0 to Array.length nodes - 2 do
      if
        nodes.(z) <> nodes.(z + 1)
        && not (Float.is_finite (Paths.delay up nodes.(z) nodes.(z + 1)))
      then ok := false
    done;
    !ok
  in
  let reachable = ref 0. in
  Array.iteri
    (fun c paths ->
      let demand_c = ref 0. in
      for z = 0 to Model.num_stages tm c - 1 do
        demand_c :=
          !demand_c
          +. Model.fwd_traffic tm ~chain:c ~stage:z
          +. Model.rev_traffic tm ~chain:c ~stage:z
      done;
      let live = ref 0. in
      List.iter
        (fun (nodes, frac) ->
          if connected nodes then begin
            live := !live +. frac;
            Routing.add_path r ~chain:c ~nodes ~frac
          end)
        paths;
      reachable := !reachable +. (Float.min 1. !live *. !demand_c))
    paths_per_chain;
  let alpha = Routing.max_alpha_into (Load_state.of_instance inst) r in
  let satisfied = Float.min 1. alpha *. !reachable in
  let e2e = E2e.evaluate r in
  (satisfied, e2e.E2e.total_throughput, e2e.E2e.mean_rtt)

let paths_of routing n =
  Array.init n (fun c -> Routing.decompose_paths routing ~chain:c)

let run_static sc =
  let n = Model.num_chains sc.sc_model in
  let paths = paths_of (Dp.solve (truth sc 0)) n in
  let epochs =
    List.init sc.sc_epochs (fun e ->
        let supported, tput, rtt = measure (truth sc e) paths in
        {
          ep_epoch = e;
          ep_supported = supported;
          ep_throughput = tput;
          ep_mean_rtt = rtt;
          ep_rerouted = 0;
          ep_down_links = List.length (failed_at sc e);
          ep_reports = 0;
        })
  in
  { epochs; total_rerouted = 0; total_scale_actions = 0 }

(* The oracle re-solves from scratch each epoch with perfect knowledge; the
   sequential DP is order-sensitive, so take the best of a few seeded chain
   orders to make it a credible upper bound. *)
let oracle_solve tm =
  let best = ref None in
  for seed = 0 to 4 do
    let r =
      if seed = 0 then Dp.solve tm else Dp.solve ~rng:(Rng.create seed) tm
    in
    let score = Float.min 1. (Routing.max_alpha r) in
    match !best with
    | Some (s, _) when s >= score -> ()
    | _ -> best := Some (score, r)
  done;
  match !best with Some (_, r) -> r | None -> assert false

let run_oracle sc =
  let n = Model.num_chains sc.sc_model in
  let prev = ref None in
  let total = ref 0 in
  let epochs =
    List.init sc.sc_epochs (fun e ->
        let tm = truth sc e in
        let paths = paths_of (oracle_solve tm) n in
        let moved =
          match !prev with
          | None -> 0
          | Some old ->
            let count = ref 0 in
            Array.iteri (fun c p -> if p <> old.(c) then incr count) paths;
            !count
        in
        prev := Some paths;
        total := !total + moved;
        let supported, tput, rtt = measure tm paths in
        {
          ep_epoch = e;
          ep_supported = supported;
          ep_throughput = tput;
          ep_mean_rtt = rtt;
          ep_rerouted = moved;
          ep_down_links = List.length (failed_at sc e);
          ep_reports = 0;
        })
  in
  { epochs; total_rerouted = !total; total_scale_actions = 0 }

(* Shared establishment for the live arms (closed loop and decentralized
   anycast): assemble the control plane, provision every deployment from
   the model, register the edges and commit the initial routing [r0]
   through the normal 2PC — chain admission is a control-plane act either
   way; the arms differ in who adapts the routes afterwards. *)
let establish sc p r0 =
  let m = sc.sc_model in
  let n = Model.num_chains m in
  let num_sites = Model.num_sites m in
  let site_of node =
    match Model.site_of_node m node with
    | Some s -> s
    | None ->
      invalid_arg "Loop.run: the live arms need a site at every routed node"
  in
  let base_paths = Model.paths m in
  let delay a b =
    if a = b then 0.
    else
      let d = Paths.delay base_paths (Model.site_node m a) (Model.site_node m b) in
      if Float.is_finite d then d else 0.05
  in
  let sys = System.create ~seed:p.seed ~lanes:p.lanes ~num_sites ~delay ~gsb_site:0 () in
  (* Provision every deployment from the model, with headroom over the
     model's capacity so the VNF controllers' admission (keyed to the
     static per-chain spec traffic) never vetoes a re-route the resolver
     already found capacity-feasible (DESIGN.md section 8). *)
  for f = 0 to Model.num_vnfs m - 1 do
    List.iter
      (fun (site, cap) ->
        System.deploy_vnf sys ~vnf:f ~site ~capacity:(p.vnf_headroom *. cap) ~instances:2)
      (Model.vnf_sites m f)
  done;
  for s = 0 to num_sites - 1 do
    System.register_edge sys ~site:s ~attachment:(Printf.sprintf "site%d" s)
  done;
  let routes_of routing chain =
    List.map
      (fun (nodes, frac) ->
        { Ct.element_sites = Array.map site_of nodes; weight = frac })
      (Routing.decompose_paths routing ~chain)
  in
  let initial = Array.init n (fun c -> routes_of r0 c) in
  let chain_of_name = Hashtbl.create n in
  System.set_route_policy sys (fun spec ~exclude:_ ->
      match Hashtbl.find_opt chain_of_name spec.Ct.spec_name with
      | Some c -> ( match initial.(c) with [] -> None | routes -> Some routes)
      | None -> None);
  let ids =
    Array.init n (fun c ->
        let name = Printf.sprintf "c%d" c in
        Hashtbl.replace chain_of_name name c;
        System.request_chain sys
          {
            Ct.spec_name = name;
            ingress_attachment =
              Printf.sprintf "site%d" (site_of (Model.chain_ingress m c));
            egress_attachment =
              Printf.sprintf "site%d" (site_of (Model.chain_egress m c));
            vnfs = Array.to_list (Model.chain_vnfs m c);
            traffic = Model.fwd_traffic m ~chain:c ~stage:0;
          })
  in
  Engine.run (System.engine sys);
  (sys, ids, routes_of)

let run_closed ?(on_system = fun _ -> ()) sc p =
  let m = sc.sc_model in
  let n = Model.num_chains m in
  let num_sites = Model.num_sites m in
  let r0 = Dp.solve (truth sc 0) in
  let sys, ids, routes_of = establish sc p r0 in
  let eng = System.engine sys in
  (* --- chains established; start the loop on a fresh epoch grid --- *)
  (* Hand the assembled system to the caller before the epochs are laid
     out: [sb_chaos] arms its fault schedule and invariant probes here. *)
  on_system sys;
  let planner = Option.map (fun pp -> Place.create ~params:pp ()) p.placement in
  let t0 = Engine.now eng in
  let failed_now = ref [] in
  let exporters =
    List.init num_sites (fun s ->
        let node = Model.site_node m s in
        Telemetry.Exporter.start ~system:sys ~site:s ~period:sc.sc_epoch_len
          ~down_links:(fun () ->
            (* a site observes liveness of its incident links only *)
            List.filter
              (fun l ->
                let lk = Topology.link (Model.topology m) l in
                lk.Topology.src = node || lk.Topology.dst = node)
              !failed_now)
          ())
  in
  let agg =
    Telemetry.Aggregator.create ~system:sys ~site:0 ~chains:(Array.to_list ids)
      ~num_sites ~staleness:p.staleness ()
  in
  let rng = Rng.split ~stream:1 (Rng.create p.seed) in
  let inject e =
    failed_now := failed_at sc e;
    (* With the placement capability on, the epoch tick drives the flow
       expiry clock (PR 7): connections idle for two epochs age out, so a
       drained deployment's flow-table occupancy actually falls to zero
       and scale-in can complete. Off by default — expiry never changes
       traces or draws, but the route-only arm stays byte-identical to
       its pre-placement behaviour. *)
    (match planner with
    | Some _ ->
      let sh = System.shard sys in
      Sb_dataplane.Shard.set_clock sh e;
      if e >= 2 then ignore (Sb_dataplane.Shard.expire_flows sh ~idle_before:(e - 2))
    | None -> ());
    for c = 0 to n - 1 do
      let units =
        sc.sc_demand ~epoch:e ~chain:c *. Model.fwd_traffic m ~chain:c ~stage:0
      in
      let count =
        max 1 (int_of_float (Float.round (float_of_int p.pkts_per_unit *. units)))
      in
      for _ = 1 to count do
        ignore (System.probe_chain sys ~chain:ids.(c) (Packet.random_tuple rng))
      done
    done
  in
  let factors_meas = Array.make n 1.0 in
  let rerouted_at = Array.make sc.sc_epochs 0 in
  let down_at = Array.make sc.sc_epochs 0 in
  let cur = ref r0 in
  let total_rerouted = ref 0 in
  let control e =
    (* A dead Global Switchboard adapts nothing: the aggregator and the
       resolver live with it, and [gsb_start_2pc] would drop the rollout
       anyway. Skipping the whole tick makes the stall explicit — routes
       freeze at the last committed set until the standby takes over. *)
    if not (System.gsb_is_down sys) then begin
      for c = 0 to n - 1 do
        match Telemetry.Aggregator.chain_packets agg ~epoch:e ~chain:ids.(c) with
        | Some pkts ->
          let base =
            float_of_int p.pkts_per_unit *. Model.fwd_traffic m ~chain:c ~stage:0
          in
          if base > 0. then factors_meas.(c) <- float_of_int pkts /. base
        | None -> () (* stale chain: hold the previous estimate *)
      done;
      let down = Telemetry.Aggregator.down_links agg ~epoch:e in
      down_at.(e) <- List.length down;
      let measured =
        let base = match down with [] -> m | _ -> Model.with_failed_links m down in
        Model.with_chain_traffic_factors base (Array.copy factors_meas)
      in
      (* Placement half of the tick: plan against the measured model,
         apply the actions through the control plane, and resolve routes
         on the model including the planner's opens so the resolver can
         actually steer load onto (or off) the changed deployments. *)
      let measured =
        match planner with
        | None -> measured
        | Some pl ->
          let acts = Place.plan pl ~measured ~paths:(paths_of !cur n) in
          List.iter
            (function
              | Place.Scale_out { vnf; site; capacity } ->
                System.scale_out sys ~vnf ~site
                  ~capacity:(p.vnf_headroom *. capacity) ~instances:2
              | Place.Scale_in { vnf; site } ->
                (* The resolver below no longer sees the deployment, so
                   the chains using it re-route with infinite gain; the
                   drain completes once their route updates commit and
                   the established flows idle out. *)
                System.drain_and_remove sys ~vnf ~site
                  ~timeout:(4. *. sc.sc_epoch_len)
                  ~on_done:(fun ok ->
                    if ok then Place.note_drain_done pl ~vnf ~site
                    else Place.note_drain_aborted pl ~vnf ~site)
                  ())
            acts;
          (match Place.extra pl with
          | [] -> measured
          | ex -> Model.with_extra_deployments measured ex)
      in
      let r', stats =
        Dp.resolve ~util_weight:p.util_weight ~hysteresis:p.hysteresis
          ~churn_budget:p.churn_budget ~prev:!cur
          measured
      in
      cur := r';
      rerouted_at.(e) <- List.length stats.Dp.rerouted;
      total_rerouted := !total_rerouted + rerouted_at.(e);
      List.iter
        (fun c ->
          match routes_of r' c with
          | [] -> ()
          | routes -> System.update_routes sys ~chain:ids.(c) routes)
        stats.Dp.rerouted
    end
  in
  let results = Array.make sc.sc_epochs None in
  let eval e =
    let tm = truth sc e in
    (* The ground truth carries the operator's provisioning only; the
       deployments elastic placement has physically opened (including
       drains still in flight — they serve established flows until
       retraction) must back the paths that use them, or the evaluation
       would charge those paths against zero capacity. *)
    let tm =
      match planner with
      | None -> tm
      | Some pl -> (
        match Place.live pl with
        | [] -> tm
        | ex -> Model.with_extra_deployments tm ex)
    in
    (* Evaluate what is INSTALLED (post two-phase commit), not what the
       resolver intends: rollout latency is part of the loop. *)
    let installed =
      Array.init n (fun c ->
          List.filter_map
            (fun (r : Ct.route) ->
              if r.Ct.weight <= 0. then None
              else Some (Array.map (Model.site_node m) r.Ct.element_sites, r.Ct.weight))
            (System.chain_routes sys ~chain:ids.(c)))
    in
    let supported, tput, rtt = measure tm installed in
    results.(e) <-
      Some
        {
          ep_epoch = e;
          ep_supported = supported;
          ep_throughput = tput;
          ep_mean_rtt = rtt;
          ep_rerouted = (if e = 0 then 0 else rerouted_at.(e - 1));
          ep_down_links = (if e = 0 then 0 else down_at.(e - 1));
          ep_reports = Telemetry.Aggregator.reports agg;
        }
  in
  let tlen = sc.sc_epoch_len in
  for e = 0 to sc.sc_epochs - 1 do
    let te = t0 +. (float_of_int e *. tlen) in
    ignore (Engine.schedule_at eng ~time:(te +. (0.05 *. tlen)) (fun () -> inject e));
    ignore (Engine.schedule_at eng ~time:(te +. (0.95 *. tlen)) (fun () -> eval e));
    if e < sc.sc_epochs - 1 then
      ignore
        (Engine.schedule_at eng ~time:(te +. tlen +. p.control_lag) (fun () -> control e))
  done;
  ignore
    (Engine.schedule_at eng
       ~time:(t0 +. (float_of_int sc.sc_epochs *. tlen) +. (0.01 *. tlen))
       (fun () -> List.iter Telemetry.Exporter.stop exporters));
  Engine.run eng;
  {
    epochs =
      Array.to_list results
      |> List.filter_map (fun r -> r);
    total_rerouted = !total_rerouted;
    total_scale_actions =
      (match planner with Some pl -> Place.actions_emitted pl | None -> 0);
  }

(* The decentralized arm: no aggregator, no resolver, no 2PC after
   establishment. Every site runs an [Anycast.Agent] that floods a
   [Load_advert] late in each epoch and re-points its owned rules at the
   decision tick; the measured paths are the emergent hop-by-hop walk of
   the same views ([Anycast.route]), i.e. exactly what the installed rules
   forward. The initial commit is the pure delay-anycast routing — the
   fixed point of the agents' no-information fallback — so epoch 0 is
   consistent before any advert has flooded. *)
let run_anycast ?(on_system = fun _ -> ()) sc p =
  let m = sc.sc_model in
  let n = Model.num_chains m in
  let num_sites = Model.num_sites m in
  let r0 = Greedy.anycast (truth sc 0) in
  let sys, ids, _routes_of = establish sc p r0 in
  let eng = System.engine sys in
  on_system sys;
  let t0 = Engine.now eng in
  let failed_now = ref [] in
  let incident s =
    (* a site observes liveness of its incident links only *)
    let node = Model.site_node m s in
    List.filter
      (fun l ->
        let lk = Topology.link (Model.topology m) l in
        lk.Topology.src = node || lk.Topology.dst = node)
      !failed_now
  in
  let agents =
    Array.init num_sites (fun s ->
        Anycast.Agent.create ~sys ~model:m ~site:s ~ids ~staleness:p.staleness
          ~pkts_per_unit:p.pkts_per_unit
          ~down_links:(fun () -> incident s)
          ())
  in
  let rng = Rng.split ~stream:1 (Rng.create p.seed) in
  let inject e =
    failed_now := failed_at sc e;
    for c = 0 to n - 1 do
      let units =
        sc.sc_demand ~epoch:e ~chain:c *. Model.fwd_traffic m ~chain:c ~stage:0
      in
      let count =
        max 1 (int_of_float (Float.round (float_of_int p.pkts_per_unit *. units)))
      in
      for _ = 1 to count do
        ignore (System.probe_chain sys ~chain:ids.(c) (Packet.random_tuple rng))
      done
    done
  in
  let advert e = Array.iter (fun a -> Anycast.Agent.advertise a ~epoch:e) agents in
  let rerouted_at = Array.make sc.sc_epochs 0 in
  let cur_paths = ref (paths_of r0 n) in
  let total_rerouted = ref 0 in
  let decide e =
    let moved =
      Array.fold_left (fun acc a -> acc + Anycast.Agent.decide a ~epoch:e) 0 agents
    in
    rerouted_at.(e) <- moved;
    total_rerouted := !total_rerouted + moved;
    cur_paths := paths_of (Anycast.route m (fun s -> Anycast.Agent.view agents.(s))) n
  in
  let results = Array.make sc.sc_epochs None in
  let eval e =
    let tm = truth sc e in
    let supported, tput, rtt = measure tm !cur_paths in
    results.(e) <-
      Some
        {
          ep_epoch = e;
          ep_supported = supported;
          ep_throughput = tput;
          ep_mean_rtt = rtt;
          ep_rerouted = (if e = 0 then 0 else rerouted_at.(e - 1));
          ep_down_links = List.length (failed_at sc e);
          ep_reports =
            Array.fold_left
              (fun acc a -> acc + Anycast.received (Anycast.Agent.view a))
              0 agents;
        }
  in
  let tlen = sc.sc_epoch_len in
  for e = 0 to sc.sc_epochs - 1 do
    let te = t0 +. (float_of_int e *. tlen) in
    ignore (Engine.schedule_at eng ~time:(te +. (0.05 *. tlen)) (fun () -> inject e));
    ignore (Engine.schedule_at eng ~time:(te +. (0.90 *. tlen)) (fun () -> advert e));
    ignore (Engine.schedule_at eng ~time:(te +. (0.95 *. tlen)) (fun () -> eval e));
    if e < sc.sc_epochs - 1 then
      ignore
        (Engine.schedule_at eng ~time:(te +. tlen +. p.control_lag) (fun () -> decide e))
  done;
  Engine.run eng;
  {
    epochs = Array.to_list results |> List.filter_map (fun r -> r);
    total_rerouted = !total_rerouted;
    total_scale_actions = 0;
  }

let run ?(params = default_params) ?on_system sc arm =
  if sc.sc_epochs <= 0 then invalid_arg "Loop.run: sc_epochs must be positive";
  (match (arm, on_system) with
  | (Static | Oracle), Some _ ->
    invalid_arg
      (Printf.sprintf
         "Loop.run: ~on_system is only honoured by the live arms \
          (closed-loop, anycast); the %s arm never assembles a system"
         (arm_name arm))
  | _ -> ());
  match arm with
  | Static -> run_static sc
  | Oracle -> run_oracle sc
  | Closed_loop -> run_closed ?on_system sc params
  | Anycast_dist -> run_anycast ?on_system sc params
