module Model = Sb_core.Model
module Instance = Sb_core.Instance
module Load_state = Sb_core.Load_state
module Routing = Sb_core.Routing
module Placement = Sb_core.Placement
module Paths = Sb_net.Paths

type action =
  | Scale_out of { vnf : int; site : int; capacity : float }
  | Scale_in of { vnf : int; site : int }

type params = {
  sat_threshold : float;
  cold_threshold : float;
  observe : int;
  cooldown : int;
  churn_budget : int;
  max_extra : int;
  constraints : Placement.constraints;
}

(* Defaults tuned on the flash-crowd scenario: two observation ticks keep
   a one-epoch telemetry spike from opening a deployment, a two-tick
   cooldown leaves the route resolver time to shift load onto (or off)
   the changed deployment before the planner re-judges it, and one action
   per tick bounds deployment churn at the epoch rate. *)
let default_params =
  {
    sat_threshold = 0.85;
    cold_threshold = 0.20;
    observe = 2;
    cooldown = 2;
    churn_budget = 1;
    max_extra = 4;
    constraints = Placement.no_constraints;
  }

type t = {
  params : params;
  mutable extra : (int * int * float) list; (* planner opens, open order *)
  sat_streak : (int, int) Hashtbl.t; (* vnf -> consecutive saturated ticks *)
  cold_streak : (int * int, int) Hashtbl.t;
  mutable draining : (int * int * float) list; (* emitted scale-ins in flight *)
  mutable cooldown_left : int;
  mutable emitted : int;
}

let create ?(params = default_params) () =
  {
    params;
    extra = [];
    sat_streak = Hashtbl.create 8;
    cold_streak = Hashtbl.create 8;
    draining = [];
    cooldown_left = 0;
    emitted = 0;
  }

let extra t = t.extra
let live t = t.extra @ t.draining
let actions_emitted t = t.emitted

let note_drain_aborted t ~vnf ~site =
  match List.find_opt (fun (f, s, _) -> f = vnf && s = site) t.draining with
  | None -> ()
  | Some (_, _, cap) ->
    t.draining <-
      List.filter (fun (f, s, _) -> not (f = vnf && s = site)) t.draining;
    (* The fabric still holds the deployment (the aborted drain restored
       its weights), so the planner's model view must keep it too. *)
    t.extra <- t.extra @ [ (vnf, site, cap) ]

let note_drain_done t ~vnf ~site =
  t.draining <-
    List.filter (fun (f, s, _) -> not (f = vnf && s = site)) t.draining

(* Evaluate the routing in force against the measured model plus the
   planner's own opens; the loaded state is what the utilization reads
   come from. Paths with a hop the (possibly failed) topology cannot
   connect carry nothing and are skipped, as in [Loop.measure]. *)
let loaded_state mx paths =
  let inst = Instance.compile mx in
  let ls = Load_state.of_instance inst in
  let r = Routing.of_instance inst in
  let up = Model.paths mx in
  let connected nodes =
    let ok = ref true in
    for z = 0 to Array.length nodes - 2 do
      if
        nodes.(z) <> nodes.(z + 1)
        && not (Float.is_finite (Paths.delay up nodes.(z) nodes.(z + 1)))
      then ok := false
    done;
    !ok
  in
  Array.iteri
    (fun c ps ->
      List.iter
        (fun (nodes, frac) ->
          if connected nodes then Routing.add_path r ~chain:c ~nodes ~frac)
        ps)
    paths;
  ignore (Routing.max_alpha_into ls r);
  (inst, ls)

let bump tbl key hit =
  let cur = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
  let n = if hit then cur + 1 else 0 in
  Hashtbl.replace tbl key n;
  n

let plan t ~measured ~paths =
  let p = t.params in
  let mx =
    match t.extra with
    | [] -> measured
    | ex -> Model.with_extra_deployments measured ex
  in
  let inst, ls = loaded_state mx paths in
  if t.cooldown_left > 0 then t.cooldown_left <- t.cooldown_left - 1;
  let actions = ref [] in
  let budget = ref p.churn_budget in
  let fire () =
    decr budget;
    t.cooldown_left <- p.cooldown;
    t.emitted <- t.emitted + 1
  in
  (* Scale-in first: a cold planner open releases its site (and its slot
     under [max_extra]) before any new open is considered. Only the
     planner's own opens are candidates — base-model deployments are the
     operator's provisioning, never retracted. *)
  let still = ref [] in
  List.iter
    (fun (f, s, cap) ->
      let u = Load_state.vnf_utilization ls ~vnf:f ~site:s in
      let streak = bump t.cold_streak (f, s) (u < p.cold_threshold) in
      if streak >= p.observe && t.cooldown_left = 0 && !budget > 0 then begin
        fire ();
        Hashtbl.remove t.cold_streak (f, s);
        t.draining <- (f, s, cap) :: t.draining;
        actions := Scale_in { vnf = f; site = s } :: !actions
      end
      else still := (f, s, cap) :: !still)
    t.extra;
  t.extra <- List.rev !still;
  (* Scale-out: a VNF whose every deployed site sits above the saturation
     threshold has nowhere left to shift load by re-routing alone — the
     placement loop's firing condition. *)
  let nf = Model.num_vnfs mx in
  for f = 0 to nf - 1 do
    let deps = Model.vnf_sites mx f in
    let saturated =
      deps <> []
      && List.for_all
           (fun (s, _) ->
             Load_state.vnf_utilization ls ~vnf:f ~site:s >= p.sat_threshold)
           deps
    in
    let streak = bump t.sat_streak f saturated in
    if
      streak >= p.observe
      && t.cooldown_left = 0
      && !budget > 0
      && List.length t.extra + List.length t.draining < p.max_extra
    then
      match
        List.find_opt
          (fun (f', s', _) ->
            f' = f
            (* never re-open a site whose drain for this VNF is still in
               flight: the drain's retraction would sweep the new
               instances away with the old ones *)
            && not (List.exists (fun (df, ds, _) -> df = f && ds = s') t.draining))
          (Placement.suggest_inst ~constraints:p.constraints ~load:ls inst
             ~new_sites_per_vnf:1)
      with
      | None -> () (* no admissible site left for this VNF *)
      | Some (_, site, capacity) ->
        fire ();
        Hashtbl.replace t.sat_streak f 0;
        t.extra <- t.extra @ [ (f, site, capacity) ];
        actions := Scale_out { vnf = f; site; capacity } :: !actions
  done;
  List.rev !actions
