(* Decentralized anycast control arm (Wion et al., "Distributed Function
   Chaining with Anycast Routing"): every site runs its own decision
   process over a local view assembled from flooded load advertisements —
   no Global Switchboard, no 2PC. Each site owns the rules for the chain
   elements it hosts (plus stage 0 at the chain's ingress) and re-points
   them greedily at the least-cost advertised instance of the next
   element; the end-to-end path is whatever emerges hop by hop. *)

module Engine = Sb_sim.Engine
module Bus = Sb_msgbus.Bus
module System = Sb_ctrl.System
module Ct = Sb_ctrl.Types
module Model = Sb_core.Model
module Greedy = Sb_core.Greedy
module Fabric = Sb_dataplane.Fabric
module Topology = Sb_net.Topology

(* ----------------------------- local view ---------------------------- *)

type advert = {
  ad_epoch : int;
  ad_loads : (int * float) list;
  ad_fwd : (int * (int * float) list) list;
  ad_down : int list;
}

type view = {
  v_site : int;
  v_staleness : int;
  v_adverts : advert option array;
  mutable v_epoch : int;
  mutable v_received : int;
}

let create_view ~site ~num_sites ~staleness =
  {
    v_site = site;
    v_staleness = staleness;
    v_adverts = Array.make num_sites None;
    v_epoch = -1;
    v_received = 0;
  }

let observe v ~site ~epoch ~loads ~fwd_weights ~down =
  if site >= 0 && site < Array.length v.v_adverts then begin
    v.v_received <- v.v_received + 1;
    let newer =
      match v.v_adverts.(site) with None -> true | Some a -> epoch >= a.ad_epoch
    in
    if newer then
      v.v_adverts.(site) <-
        Some { ad_epoch = epoch; ad_loads = loads; ad_fwd = fwd_weights; ad_down = down }
  end

let set_epoch v e = v.v_epoch <- e
let epoch v = v.v_epoch
let received v = v.v_received

(* Same age-out rule as the telemetry aggregator: an advert is usable for
   [staleness] epochs, then the peer might as well have said nothing. *)
let fresh v a = a.ad_epoch > v.v_epoch - v.v_staleness

let vnf_load v ~site ~vnf =
  match v.v_adverts.(site) with
  | Some a when fresh v a -> List.assoc_opt vnf a.ad_loads
  | _ -> None

(* Forwarder identities and weights are quasi-static fabric facts, so the
   latest advert is used even past the staleness window — a stale identity
   beats addressing a site blind. *)
let fwd_weights v ~site ~vnf =
  match v.v_adverts.(site) with
  | Some a -> (
    match List.assoc_opt vnf a.ad_fwd with
    | Some (_ :: _ as ws) -> Some ws
    | _ -> None)
  | None -> None

let down_union v =
  Array.fold_left
    (fun acc cell ->
      match cell with
      | Some a when fresh v a ->
        List.fold_left
          (fun acc l -> if List.mem l acc then acc else l :: acc)
          acc a.ad_down
      | _ -> acc)
    [] v.v_adverts
  |> List.sort compare

(* A candidate site is taken out of rotation when every link incident to
   its node appears down in the fresh flooded view — with the backbone's
   single-homed PoPs one advertised dead uplink suffices. *)
let blocked v m =
  match down_union v with
  | [] -> fun _ -> false
  | down ->
    let topo = Model.topology m in
    let links = Topology.links topo in
    let n = Model.num_sites m in
    let b = Array.make n false in
    for s = 0 to n - 1 do
      let node = Model.site_node m s in
      let incident = ref [] in
      Array.iter
        (fun (l : Topology.link) ->
          if l.Topology.src = node || l.Topology.dst = node then
            incident := l.Topology.id :: !incident)
        links;
      b.(s) <- !incident <> [] && List.for_all (fun l -> List.mem l down) !incident
    done;
    fun s -> b.(s)

(* ------------------------------ chooser ------------------------------ *)

let site_of_exn m n =
  match Model.site_of_node m n with
  | Some s -> s
  | None -> invalid_arg "Anycast: routed node without a site"

(* Every agent decides from the same flooded snapshot, so "nearest site
   under capacity" sends every chain in a region to the same instance and
   the loads seesaw an epoch behind. The spill rule damps the herd: the
   nearest under-capacity site wins outright only while it has real
   headroom; past half load the choice spreads deterministically by
   (chain, stage) hash over the nearest under-capacity sites — stable
   across epochs (no view-dependent input), identical in the agents and in
   the evaluation walk. *)
let spill_fraction = 0.5
let spread_width = 4

(* Three-pass greedy choice over the delay-sorted candidates:
   1. nearest site with a fresh advert, not cut off, and advertised load
      under its capacity (spilling to close-by peers once half full);
   2. everything advertised is saturated — spread to the least relatively
      loaded advertised site;
   3. no usable load information at all (partition, cold start) — pure
      delay anycast, which is exactly {!Greedy.anycast}'s choice. *)
let choose_node view m ~chain ~stage ~current candidates =
  let ordered = Greedy.by_delay m current candidates in
  let vnf =
    match Model.stage_dst_vnf m ~chain ~stage with
    | Some v -> v
    | None -> invalid_arg "Anycast.choose_node: egress stage has no candidates"
  in
  let blocked = blocked view m in
  let cap s = Model.vnf_site_capacity m ~vnf ~site:s in
  let admissible =
    List.filter_map
      (fun n ->
        let s = site_of_exn m n in
        match vnf_load view ~site:s ~vnf with
        | Some load when (not (blocked s)) && load < cap s -> Some (n, load, cap s)
        | _ -> None)
      ordered
  in
  match admissible with
  | (n, load, c) :: _ when load <= spill_fraction *. c -> n
  | _ :: _ ->
    let arr = Array.of_list admissible in
    let k = min spread_width (Array.length arr) in
    let h = (chain * 2654435761) lxor (stage * 40503) in
    let n, _, _ = arr.(abs h mod k) in
    n
  | [] -> (
    let best = ref None in
    List.iteri
      (fun i n ->
        let s = site_of_exn m n in
        match vnf_load view ~site:s ~vnf with
        | Some load when not (blocked s) ->
          let c = cap s in
          let ratio = if c > 0. then load /. c else Float.infinity in
          (match !best with
          | Some (r, j, _) when (r, j) <= (ratio, i) -> ()
          | _ -> best := Some (ratio, i, n))
        | _ -> ())
      ordered;
    match !best with
    | Some (_, _, n) -> n
    | None -> (
      match List.filter (fun n -> not (blocked (site_of_exn m n))) ordered with
      | n :: _ -> n
      | [] -> (
        match ordered with
        | n :: _ -> n
        | [] -> invalid_arg "Anycast.choose_node: VNF with no deployment")))

let choose view m : Greedy.choose =
 fun _state chain stage current candidates ->
  choose_node view m ~chain ~stage ~current candidates

(* The emergent routing: re-run every hop's decision with the view of the
   site the packet is at — the same function of the same views each
   deciding site evaluated when it installed its rules, so this walk IS
   the installed behavior. *)
let route m view_of =
  Greedy.route m (fun _state chain stage current candidates ->
      choose_node (view_of (site_of_exn m current)) m ~chain ~stage ~current candidates)

(* --------------------------- per-site agent --------------------------- *)

module Agent = struct
  type nonrec t = {
    sys : System.t;
    m : Model.t;
    site : int;
    view : view;
    ids : int array; (* model chain -> system chain id *)
    ingress : int array; (* ingress site per chain *)
    egress : int array; (* egress site (= egress label) per chain *)
    pkts_per_unit : int;
    local_down : unit -> int list;
    deployed : int list; (* VNF ids with instances at this site *)
    prev_pkts : int array array;
        (* per chain, per element position p (index p-1): cumulative
           packets delivered into that element at this site *)
    installed : (int * int * bool, (Fabric.endpoint * float) list) Hashtbl.t;
    mutable adverts_sent : int;
    mutable moves : int;
  }

  let create ~sys ~model ~site ~ids ~staleness ~pkts_per_unit ~down_links () =
    let m = model in
    let n = Model.num_chains m in
    let num_sites = Model.num_sites m in
    let t =
      {
        sys;
        m;
        site;
        view = create_view ~site ~num_sites ~staleness;
        ids;
        ingress = Array.init n (fun c -> site_of_exn m (Model.chain_ingress m c));
        egress = Array.init n (fun c -> site_of_exn m (Model.chain_egress m c));
        pkts_per_unit;
        local_down = down_links;
        deployed = System.site_deployed_vnfs sys ~site;
        prev_pkts =
          Array.init n (fun c -> Array.make (Array.length (Model.chain_vnfs m c)) 0);
        installed = Hashtbl.create 64;
        adverts_sent = 0;
        moves = 0;
      }
    in
    for s' = 0 to num_sites - 1 do
      if s' <> site then
        Bus.subscribe (System.bus sys) ~site ~topic:(Ct.advert_topic ~site:s')
          (function
            | Ct.Load_advert { site = from; epoch; loads; fwd_weights; down_links } ->
              observe t.view ~site:from ~epoch ~loads ~fwd_weights ~down:down_links
            | _ -> ())
    done;
    t

  let view t = t.view
  let adverts_sent t = t.adverts_sent

  (* Measure this site's per-VNF load from its own forwarders' stage
     counters — the packet path counts a packet once per stage at the
     forwarder delivering it into the stage's destination element, so the
     delivery count at this site IS the load its instances absorbed — and
     flood it (retained) with the locally observed down links. *)
  let advertise t ~epoch =
    let n = Model.num_chains t.m in
    let acc = List.map (fun v -> (v, ref 0.)) t.deployed in
    for c = 0 to n - 1 do
      let vnfs = Model.chain_vnfs t.m c in
      Array.iteri
        (fun i v ->
          match List.assoc_opt v acc with
          | None -> ()
          | Some r ->
            let now =
              System.site_stage_packets t.sys ~site:t.site ~chain:t.ids.(c)
                ~egress:t.egress.(c) ~stage:i
            in
            let d = now - t.prev_pkts.(c).(i) in
            t.prev_pkts.(c).(i) <- now;
            r := !r +. (float_of_int d /. float_of_int t.pkts_per_unit))
        vnfs
    done;
    let loads = List.map (fun (v, r) -> (v, !r)) acc in
    let fwd_weights =
      List.map
        (fun v -> (v, System.site_vnf_forwarder_weights t.sys ~site:t.site ~vnf:v))
        t.deployed
    in
    let down = t.local_down () in
    t.adverts_sent <- t.adverts_sent + 1;
    observe t.view ~site:t.site ~epoch ~loads ~fwd_weights ~down;
    Bus.publish (System.bus t.sys) ~site:t.site ~topic:(Ct.advert_topic ~site:t.site)
      (Ct.Load_advert { site = t.site; epoch; loads; fwd_weights; down_links = down })

  (* Targets of this site's forward rule for [stage]: the hop out of chain
     element [stage], decided from this site's view. Local choices target
     the instances directly; remote ones the chosen site's advertised
     forwarder weights (static fabric identity, fallback to its first
     forwarder when never heard from). *)
  let stage_targets t ~chain ~stage =
    let m = t.m in
    let vnfs = Model.chain_vnfs m chain in
    if stage = Array.length vnfs then begin
      let e = t.egress.(chain) in
      if e = t.site then
        match System.site_edge t.sys e with
        | Some edge -> [ (Fabric.Edge edge, 1.0) ]
        | None -> [ (Fabric.Forwarder (System.site_forwarder t.sys e), 1.0) ]
      else [ (Fabric.Forwarder (System.site_forwarder t.sys e), 1.0) ]
    end
    else begin
      let v = vnfs.(stage) in
      let candidates = Model.stage_dst_nodes m ~chain ~stage in
      let current = Model.site_node m t.site in
      let node = choose_node t.view m ~chain ~stage ~current candidates in
      let s' = site_of_exn m node in
      if s' = t.site then
        match System.site_vnf_instances t.sys ~site:s' ~vnf:v with
        | [] -> [ (Fabric.Forwarder (System.site_forwarder t.sys s'), 1.0) ]
        | insts -> List.map (fun (id, w) -> (Fabric.Vnf_instance id, w)) insts
      else
        match fwd_weights t.view ~site:s' ~vnf:v with
        | Some ws -> List.map (fun (f, w) -> (Fabric.Forwarder f, w)) ws
        | None -> [ (Fabric.Forwarder (System.site_forwarder t.sys s'), 1.0) ]
    end

  (* One decision tick: age the view to [epoch], recompute every owned
     rule, and batch-install whatever moved through the local rule path
     ([System.apply_site_patches], same install latency as the Local
     Switchboard). Returns the number of forward rules re-pointed. *)
  let decide t ~epoch =
    set_epoch t.view epoch;
    let m = t.m in
    let n = Model.num_chains m in
    let patches = ref [] in
    let changed = ref 0 in
    for c = 0 to n - 1 do
      let vnfs = Model.chain_vnfs m c in
      let nl = Array.length vnfs in
      let owned = ref [] in
      if t.ingress.(c) = t.site then owned := (0, false) :: !owned;
      Array.iteri
        (fun i v ->
          if List.mem v t.deployed then begin
            (* hosts element i+1: deliver into it, forward out of it *)
            owned := (i, true) :: (i + 1, false) :: !owned
          end)
        vnfs;
      if t.egress.(c) = t.site then owned := (nl, true) :: !owned;
      List.iter
        (fun (stage, rx) ->
          let targets =
            if rx then
              if stage = nl then
                match System.site_edge t.sys t.site with
                | Some edge -> [ (Fabric.Edge edge, 1.0) ]
                | None -> []
              else
                List.map
                  (fun (id, w) -> (Fabric.Vnf_instance id, w))
                  (System.site_vnf_instances t.sys ~site:t.site ~vnf:vnfs.(stage))
            else stage_targets t ~chain:c ~stage
          in
          if targets <> [] then begin
            let key = (c, stage, rx) in
            if Hashtbl.find_opt t.installed key <> Some targets then begin
              Hashtbl.replace t.installed key targets;
              if not rx then incr changed;
              patches :=
                {
                  Fabric.rp_chain = t.ids.(c);
                  rp_egress = t.egress.(c);
                  rp_stage = stage;
                  rp_rx = rx;
                  rp_targets = targets;
                }
                :: !patches
            end
          end)
        (List.sort_uniq compare !owned)
    done;
    t.moves <- t.moves + !changed;
    System.apply_site_patches t.sys ~site:t.site (List.rev !patches);
    !changed
end
