module Rng = Sb_util.Rng
module Model = Sb_core.Model
module W = Sb_net.Workload
module Schedule = Sb_chaos.Schedule
module Tg = Sb_dataplane.Traffic_gen
module Shard = Sb_dataplane.Shard

type config = {
  seed : int;
  ticks : int;
  epoch_len : float;
  num_chains : int;
  window : int;
  pkts_per_tick : int;
  lanes : int;
  idle_ticks : int;
}

let default_config =
  {
    seed = 7;
    ticks = 16;
    epoch_len = 1.0;
    num_chains = 40;
    window = 160_000;
    pkts_per_tick = 120_000;
    lanes = 1;
    idle_ticks = 2;
  }

let smoke_config =
  {
    seed = 7;
    ticks = 8;
    epoch_len = 1.0;
    num_chains = 16;
    window = 4_096;
    pkts_per_tick = 20_000;
    lanes = 1;
    idle_ticks = 2;
  }

type metrics = {
  m_scenario : string;
  m_packets : int;
  m_delivered : int;
  m_distinct_flows : int;
  m_live_flows : int;
  m_peak_entries : int;
  m_final_entries : int;
  m_expired : int;
  m_unroutable : int;
  m_p99_latency_ms : float;
  m_bus_delivered : int;
  m_satisfied : float;
  m_oracle : float;
  m_ratio : float;
  m_wall : float;
  m_pps : float;
}

let backbone25 cfg =
  let rng = Rng.create cfg.seed in
  let topo = Sb_net.Topology.backbone ~rng ~num_core:5 ~pops_per_core:4 () in
  let model =
    Sb_core.Workload.synthesize ~rng topo
      { Sb_core.Workload.default with num_chains = cfg.num_chains }
  in
  Model.with_scaled_traffic model 0.75

(* ------------------------- scenario catalog -------------------------- *)

let regions = 5

(* Demand and faults built in lockstep: the sites taken out by the outage
   are the ingress sites of exactly the chains (key mod regions =
   fail_region) whose demand the workload zeroes — the users of the dark
   region reconnect through chains homed elsewhere. *)
let failover_parts cfg model =
  let keys = cfg.num_chains and ticks = cfg.ticks in
  let fail_region = Rng.int (Rng.split ~stream:11 (Rng.create cfg.seed)) regions in
  let fail_at = ticks / 3 in
  let w =
    W.regional_failover ~seed:cfg.seed ~ticks ~keys ~regions ~fail_region ~fail_at ()
  in
  let nodes =
    List.init keys Fun.id
    |> List.filter_map (fun c ->
           if c mod regions = fail_region then Some (Model.chain_ingress model c)
           else None)
    |> List.sort_uniq compare
  in
  let sites = List.filter_map (Model.site_of_node model) nodes in
  let horizon = float_of_int ticks *. cfg.epoch_len in
  let sched =
    Schedule.regional_outage ~seed:cfg.seed ~num_sites:(Model.num_sites model)
      ~horizon ~sites
      ~start:(float_of_int fail_at *. cfg.epoch_len)
      ~stop:horizon
  in
  (w, Some sched)

let catalog cfg model =
  let seed = cfg.seed and ticks = cfg.ticks and keys = cfg.num_chains in
  let failover, outage = failover_parts cfg model in
  let half = ticks / 2 in
  let diurnal = W.diurnal ~seed ~ticks ~keys ~period:ticks () in
  [
    ("flash_crowd", W.flash_crowd ~seed ~ticks ~keys (), None);
    ( "ddos",
      W.ddos ~seed ~ticks ~keys
        ~targets:(max 1 (keys / 8))
        ~magnitude:30.
        ~start:(ticks / 4)
        ~stop:(ticks - (ticks / 4))
        (),
      None );
    ("elephant_mice", W.elephant_mice ~seed ~ticks ~keys (), None);
    ("regional_failover", failover, outage);
    ("diurnal_drift", diurnal, None);
    ( "diurnal_flash_overlay",
      W.overlay diurnal
        (W.shift half
           (W.scale 0.5 (W.flash_crowd ~seed:(seed + 1) ~ticks:(ticks - half) ~keys ()))),
      None );
  ]

let scenario_names =
  [
    "flash_crowd";
    "ddos";
    "elephant_mice";
    "regional_failover";
    "diurnal_drift";
    "diurnal_flash_overlay";
  ]

(* --------------------------- control side ---------------------------- *)

let percentile p xs =
  match xs with
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    a.(min (n - 1) (max 0 (int_of_float (p *. float_of_int (n - 1)))))

(* Site outages as the closed loop sees them: every link incident to the
   site's node fails at the outage's start epoch ([Loop]'s failure model
   is cumulative, matching the no-recovery outage windows the catalog
   builds). *)
let failures_of_schedule cfg model sched =
  let topo = Model.topology model in
  let links_at node =
    Sb_net.Topology.links topo |> Array.to_list
    |> List.filter_map (fun (l : Sb_net.Topology.link) ->
           if l.src = node || l.dst = node then Some l.id else None)
  in
  let by_epoch = Hashtbl.create 8 in
  List.iter
    (function
      | Schedule.Site_outage { site; start; _ } ->
        let epoch =
          max 0 (min (cfg.ticks - 1) (int_of_float (start /. cfg.epoch_len)))
        in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_epoch epoch) in
        Hashtbl.replace by_epoch epoch (links_at (Model.site_node model site) @ prev)
      | _ -> ())
    sched.Schedule.faults;
  Hashtbl.fold (fun e ls acc -> (e, List.sort_uniq compare ls) :: acc) by_epoch []
  |> List.sort compare

let run_control cfg model w faults =
  let sc_failures =
    match faults with
    | None -> []
    | Some sched -> failures_of_schedule cfg model sched
  in
  let sc =
    {
      Loop.sc_model = model;
      sc_epochs = cfg.ticks;
      sc_epoch_len = cfg.epoch_len;
      sc_demand = (fun ~epoch ~chain -> W.demand w ~tick:epoch ~key:chain);
      sc_failures;
    }
  in
  let params = { Loop.default_params with seed = cfg.seed } in
  let sys = ref None in
  let closed = Loop.run ~params ~on_system:(fun s -> sys := Some s) sc Loop.Closed_loop in
  let oracle = Loop.run ~params sc Loop.Oracle in
  let mean r =
    let eps = r.Loop.epochs in
    List.fold_left (fun a e -> a +. e.Loop.ep_supported) 0. eps
    /. float_of_int (max 1 (List.length eps))
  in
  let p99, bus_delivered =
    match !sys with
    | None -> (0., 0)
    | Some s ->
      let st = Sb_msgbus.Bus.stats (Sb_ctrl.System.bus s) in
      (1000. *. percentile 0.99 st.Sb_msgbus.Bus.latencies, st.Sb_msgbus.Bus.delivered)
  in
  (mean closed, mean oracle, p99, bus_delivered)

(* ------------------- controller-outage sweep ------------------------- *)

type outage_point = {
  op_fraction : float;
  op_arm : string;
  op_pre : float;
  op_during : float;
  op_stretch : float;
  op_rerouted : int;
}

let outage_start_epoch cfg = cfg.ticks / 4

(* The failure a stalled controller cannot paper over: the whole site
   carrying the most VNF traffic under the epoch-0 solve goes dark (every
   incident link). Candidates are restricted to sites whose hosted VNFs
   all have an alternative deployment elsewhere, so the lost COMPUTE is
   fully replaceable — an arm that keeps adapting reroutes the through
   traffic around it, an arm frozen mid-outage keeps forwarding into the
   hole. Chains that ingress or egress at the dead site lose their demand
   in every arm alike (a constant offset that cancels out of the arm
   comparison); the controller's home site is excluded only to keep the
   GSB-outage variable independent of the link failure. *)
let sacrificial_site model demand0 =
  let topo = Model.topology model in
  let m0 = Model.with_chain_traffic_factors model demand0 in
  let ls0 = Sb_core.Routing.load_state (Sb_core.Dp_routing.solve m0) in
  let replaceable s =
    let ok = ref true in
    for f = 0 to Model.num_vnfs model - 1 do
      let sites = Model.vnf_sites model f in
      if List.mem_assoc s sites && List.length sites < 2 then ok := false
    done;
    !ok
  in
  let best = ref (-1., None) in
  for s = 1 to Model.num_sites model - 1 do
    if replaceable s then begin
      let load = Sb_core.Load_state.site_load ls0 s in
      if load > fst !best then best := (load, Some s)
    end
  done;
  match snd !best with
  | None -> []
  | Some s ->
    let node = Model.site_node model s in
    Sb_net.Topology.links topo |> Array.to_list
    |> List.filter_map (fun (l : Sb_net.Topology.link) ->
           if l.src = node || l.dst = node then Some l.id else None)

(* The decentralization experiment: one diurnal-drift scenario on the
   shared backbone, all four {!Loop} arms, and a Global Switchboard
   outage covering a growing fraction of the run. One epoch into the
   outage window the {!sacrificial_site} goes dark — the event a stalled
   controller cannot react to: the closed loop's frozen routes keep
   pushing traffic into the dead site while the anycast agents flood the
   down-link observation and re-point around it. Static and
   oracle never touch the controller, so they anchor the sweep (computed
   once); the per-point windows are fixed by the config alone — the
   "during" mean for [fraction = 0] falls back to the whole post-start
   tail so every arm has a defined y-value at the origin. *)
let outage_scenario cfg =
  let model = backbone25 cfg in
  let ticks = cfg.ticks in
  let w = W.diurnal ~seed:cfg.seed ~ticks ~keys:cfg.num_chains ~period:ticks () in
  let demand ~epoch ~chain = W.demand w ~tick:epoch ~key:chain in
  let fail_links =
    sacrificial_site model
      (Array.init cfg.num_chains (fun c -> demand ~epoch:0 ~chain:c))
  in
  {
    Loop.sc_model = model;
    sc_epochs = ticks;
    sc_epoch_len = cfg.epoch_len;
    sc_demand = demand;
    sc_failures = [ (outage_start_epoch cfg + 1, fail_links) ];
  }

let outage_sweep ?(fractions = [ 0.; 0.25; 0.5; 0.75; 1.0 ]) cfg =
  let sc = outage_scenario cfg in
  let model = sc.Loop.sc_model in
  let ticks = cfg.ticks in
  let params = { Loop.default_params with seed = cfg.seed; lanes = cfg.lanes } in
  let horizon = float_of_int ticks *. cfg.epoch_len in
  let start_e = outage_start_epoch cfg in
  let start = float_of_int start_e *. cfg.epoch_len in
  let epochs_in lo hi r =
    List.filter (fun ep -> ep.Loop.ep_epoch >= lo && ep.Loop.ep_epoch < hi) r.Loop.epochs
  in
  let mean f = function
    | [] -> 0.
    | eps -> List.fold_left (fun a e -> a +. f e) 0. eps /. float_of_int (List.length eps)
  in
  let run_armed arm fraction =
    if fraction <= 0. then Loop.run ~params sc arm
    else
      let sched =
        Schedule.gsb_outage ~seed:cfg.seed ~num_sites:(Model.num_sites model) ~horizon
          ~start ~fraction
      in
      let rng = Rng.split ~stream:77 (Rng.create cfg.seed) in
      Loop.run ~params ~on_system:(fun sys -> Sb_chaos.Inject.arm ~sys ~rng sched) sc arm
  in
  let stop_epoch fraction =
    if fraction <= 0. then ticks
    else
      let stop = Float.min horizon (start +. (fraction *. (horizon -. start))) in
      min ticks (int_of_float (Float.ceil (stop /. cfg.epoch_len)))
  in
  let static = Loop.run ~params sc Loop.Static in
  let oracle = Loop.run ~params sc Loop.Oracle in
  List.concat_map
    (fun fraction ->
      let closed = run_armed Loop.Closed_loop fraction in
      let anycast = run_armed Loop.Anycast_dist fraction in
      let hi = stop_epoch fraction in
      let oracle_rtt = mean (fun e -> e.Loop.ep_mean_rtt) (epochs_in start_e hi oracle) in
      let point name r =
        {
          op_fraction = fraction;
          op_arm = name;
          op_pre = mean (fun e -> e.Loop.ep_supported) (epochs_in 0 start_e r);
          op_during = mean (fun e -> e.Loop.ep_supported) (epochs_in start_e hi r);
          op_stretch =
            (let rtt = mean (fun e -> e.Loop.ep_mean_rtt) (epochs_in start_e hi r) in
             if oracle_rtt > 0. then rtt /. oracle_rtt else 1.);
          op_rerouted = r.Loop.total_rerouted;
        }
      in
      [
        point "static" static;
        point "oracle" oracle;
        point "closed-loop" closed;
        point "anycast" anycast;
      ])
    fractions

let pp_outage_point ppf p =
  Format.fprintf ppf
    "fraction=%.2f arm=%s pre=%.4f during=%.4f stretch=%.4f rerouted=%d"
    p.op_fraction p.op_arm p.op_pre p.op_during p.op_stretch p.op_rerouted

(* ---------------- elastic-placement sweep (DESIGN.md §16) ------------ *)

type placement_point = {
  pl_arm : string;
  pl_mean : float;
  pl_flash : float;
  pl_rerouted : int;
  pl_scale_actions : int;
}

(* The operator's footprint: each VNF keeps only its two highest-capacity
   deployments. The full backbone25 provisioning (every VNF at half the
   sites) leaves so much compute slack that no demand event re-routing can
   follow would ever saturate a whole VNF; the sparse footprint is the
   premise elastic placement exists for — provision the baseline, let the
   control loop open deployments for the tail. *)
let placement_keep = 2
let placement_flash_mag = 4.0

let flash_window cfg = (cfg.ticks / 4, cfg.ticks - (cfg.ticks / 4))

let sparse_footprint model ~keep =
  let drop = ref [] and kept = ref [] in
  for f = 0 to Model.num_vnfs model - 1 do
    let deps =
      Model.vnf_sites model f
      |> List.sort (fun (sa, ca) (sb, cb) ->
             match compare cb ca with 0 -> compare sa sb | c -> c)
    in
    List.iteri
      (fun i (s, c) ->
        drop := (f, s) :: !drop;
        if i < keep then kept := (f, s, c) :: !kept)
      deps
  done;
  Model.with_extra_deployments (Model.without_deployments model !drop)
    (List.rev !kept)

(* The flash crowd's epicentre: the ingress node whose chains carry the
   most base demand (ties to the lowest node id) — a crowd on a
   negligible-traffic PoP would vanish into the VNFs' headroom. *)
let hot_pop model =
  let weight = Hashtbl.create 16 in
  for c = 0 to Model.num_chains model - 1 do
    let i = Model.chain_ingress model c in
    let w = Model.fwd_traffic model ~chain:c ~stage:0 in
    Hashtbl.replace weight i
      (w +. Option.value ~default:0. (Hashtbl.find_opt weight i))
  done;
  fst
    (Hashtbl.fold
       (fun node w ((bn, bw) as best) ->
         if w > bw || (w = bw && node < bn) then (node, w) else best)
       weight (-1, 0.))

let placement_scenario cfg =
  let model = sparse_footprint (backbone25 cfg) ~keep:placement_keep in
  let n = cfg.num_chains in
  let lo, hi = flash_window cfg in
  let w = W.diurnal ~seed:cfg.seed ~ticks:cfg.ticks ~keys:n ~period:cfg.ticks () in
  let hot = hot_pop model in
  let is_hot = Array.init n (fun c -> Model.chain_ingress model c = hot) in
  (* Inside the window a hot chain's crowd rides on top of wherever its
     diurnal curve sits, never below nominal — a flash crowd in the
     night-time trough is still a crowd. *)
  let demand ~epoch ~chain =
    let d = W.demand w ~tick:epoch ~key:chain in
    if is_hot.(chain) && epoch >= lo && epoch < hi then
      placement_flash_mag *. Float.max 1. d
    else d
  in
  let sc =
    {
      Loop.sc_model = model;
      sc_epochs = cfg.ticks;
      sc_epoch_len = cfg.epoch_len;
      sc_demand = demand;
      sc_failures = [];
    }
  in
  (* The oracle's perfect-knowledge extras: place against the flash-peak
     demand with the same scorer and the same open budget the online
     planner gets, so the oracle bounds what elastic placement could do —
     not what an unboundedly provisioned network could. *)
  let peak =
    Array.init n (fun c -> if is_hot.(c) then placement_flash_mag else 1.0)
  in
  let mp = Model.with_chain_traffic_factors model peak in
  let ls = Sb_core.Routing.load_state (Sb_core.Dp_routing.solve mp) in
  let sugg =
    Sb_core.Placement.suggest_inst ~load:ls
      (Sb_core.Instance.compile mp)
      ~new_sites_per_vnf:1
  in
  (* Most-pressed VNFs first: rank each suggestion by the utilization of
     its VNF's LEAST-loaded existing deployment (the planner's own firing
     signal — a VNF saturated everywhere has no routing fix). *)
  let pressure f =
    List.fold_left
      (fun a (s, _) -> Float.min a (Sb_core.Load_state.vnf_utilization ls ~vnf:f ~site:s))
      infinity (Model.vnf_sites model f)
  in
  let ranked =
    List.stable_sort
      (fun (fa, _, _) (fb, _, _) -> Float.compare (pressure fb) (pressure fa))
      sugg
  in
  let extras =
    List.filteri (fun i _ -> i < Place.default_params.Place.max_extra) ranked
  in
  (sc, extras)

let placement_sweep cfg =
  let sc, extras = placement_scenario cfg in
  let lo, hi = flash_window cfg in
  let mean f = function
    | [] -> 0.
    | eps -> List.fold_left (fun a e -> a +. f e) 0. eps /. float_of_int (List.length eps)
  in
  let point name (r : Loop.run_result) =
    let flash =
      List.filter (fun ep -> ep.Loop.ep_epoch >= lo && ep.Loop.ep_epoch < hi) r.Loop.epochs
    in
    {
      pl_arm = name;
      pl_mean = mean (fun e -> e.Loop.ep_supported) r.Loop.epochs;
      pl_flash = mean (fun e -> e.Loop.ep_supported) flash;
      pl_rerouted = r.Loop.total_rerouted;
      pl_scale_actions = r.Loop.total_scale_actions;
    }
  in
  let params = { Loop.default_params with seed = cfg.seed; lanes = cfg.lanes } in
  let route_only = Loop.run ~params sc Loop.Closed_loop in
  let placed =
    Loop.run
      ~params:{ params with Loop.placement = Some Place.default_params }
      sc Loop.Closed_loop
  in
  (* The oracle arm is the IDENTICAL closed loop on the model pre-extended
     with the perfect-knowledge placements: same resolver, same telemetry
     lag, same rollout latency — the provisioning is the only variable, so
     [placement/oracle] reads as "how much of perfect advance provisioning
     does elastic placement recover online". (A full per-epoch re-solve
     would fold resolver quality into the denominator and measure the
     wrong thing.) *)
  let oracle =
    Loop.run ~params
      { sc with Loop.sc_model = Model.with_extra_deployments sc.Loop.sc_model extras }
      Loop.Closed_loop
  in
  [ point "route-only" route_only; point "placement" placed; point "oracle" oracle ]

let pp_placement_point ppf p =
  Format.fprintf ppf "arm=%s mean=%.4f flash=%.4f rerouted=%d scale_actions=%d"
    p.pl_arm p.pl_mean p.pl_flash p.pl_rerouted p.pl_scale_actions

(* -------------------------- dataplane side --------------------------- *)

type fabric = {
  fb_shard : Shard.t;
  fb_fwd : int array;  (* forwarder id per model site *)
  fb_entry : (int * int * int) option array;
      (* per chain: (ingress edge, chain label, egress label) *)
}

(* Stress fabric from the model's SB-DP routes: one forwarder + edge per
   site, each chain's highest-weight decomposed path installed stage by
   stage (same-site hops target the instance/edge directly; cross-site
   hops relay through the destination forwarder with an rx rule). The
   fabric stays on these routes for the whole run — it is the
   flow-table stress rig, not a mirror of the closed loop's re-routing. *)
let build_fabric cfg model =
  let routing = Sb_core.Dp_routing.solve model in
  let shard = Shard.create ~seed:cfg.seed ~lanes:cfg.lanes () in
  let nsites = Model.num_sites model in
  let site =
    Array.init nsites (fun s -> Shard.add_site shard (Printf.sprintf "site%d" s))
  in
  let fwd = Array.map (fun s -> Shard.add_forwarder shard ~site:s) site in
  let edge = Array.init nsites (fun s -> Shard.add_edge shard ~site:site.(s) ~forwarder:fwd.(s)) in
  let insts = Hashtbl.create 64 in
  let inst_at vnf s =
    match Hashtbl.find_opt insts (vnf, s) with
    | Some id -> id
    | None ->
      let id = Shard.add_vnf_instance shard ~vnf ~site:site.(s) ~forwarder:fwd.(s) () in
      Hashtbl.add insts (vnf, s) id;
      id
  in
  let site_of_node nd =
    match Model.site_of_node model nd with
    | Some s -> s
    | None -> invalid_arg "Scenario.build_fabric: route visits a siteless node"
  in
  let n = Model.num_chains model in
  let entry = Array.make n None in
  for c = 0 to n - 1 do
    match Sb_core.Routing.decompose_paths routing ~chain:c with
    | [] -> ()
    | paths ->
      let nodes, _ =
        List.fold_left
          (fun (bn, bw) (nd, w) -> if w > bw then (nd, w) else (bn, bw))
          ([||], -1.) paths
      in
      let sites_of = Array.map site_of_node nodes in
      let vnfs = Model.chain_vnfs model c in
      let len = Array.length nodes in
      let egress_label = sites_of.(len - 1) in
      let chain_label = c + 1 in
      for z = 0 to len - 2 do
        let src = sites_of.(z) and dst = sites_of.(z + 1) in
        let targets =
          if z = len - 2 then [ (Shard.Edge edge.(egress_label), 1.0) ]
          else [ (Shard.Vnf_instance (inst_at vnfs.(z) dst), 1.0) ]
        in
        if src = dst then
          Shard.install_rule shard ~forwarder:fwd.(src) ~chain_label ~egress_label
            ~stage:z targets
        else begin
          Shard.install_rule shard ~forwarder:fwd.(src) ~chain_label ~egress_label
            ~stage:z
            [ (Shard.Forwarder fwd.(dst), 1.0) ];
          Shard.install_rx_rule shard ~forwarder:fwd.(dst) ~chain_label ~egress_label
            ~stage:z targets
        end
      done;
      entry.(c) <- Some (edge.(sites_of.(0)), chain_label, egress_label)
  done;
  { fb_shard = shard; fb_fwd = fwd; fb_entry = entry }

let total_entries shard fwds =
  Array.fold_left
    (fun acc f ->
      let count, _, _ = Shard.flow_table_stats shard ~forwarder:f in
      acc + count)
    0 fwds

let apply_faults fab ~time = function
  | None -> ()
  | Some sched ->
    List.iter
      (function
        | Schedule.Site_outage { site; start; stop } ->
          let down = time >= start && time < stop in
          let f = fab.fb_fwd.(site) in
          if down && Shard.forwarder_alive fab.fb_shard f then
            Shard.fail_forwarder fab.fb_shard f
          else if (not down) && not (Shard.forwarder_alive fab.fb_shard f) then
            Shard.revive_forwarder fab.fb_shard f
        | _ -> ())
      sched.Schedule.faults

let run_dataplane ~clock cfg model w faults =
  let fab = build_fabric cfg model in
  let shard = fab.fb_shard in
  let n = Model.num_chains model in
  let per_chain_window = max 1 (cfg.window / max 1 n) in
  let gens =
    Array.init n (fun c ->
        Tg.create_stream ~seed:(cfg.seed + (1_000_003 * (c + 1))) ~window:per_chain_window ())
  in
  let dem = Array.make n 0. in
  let packets = ref 0 and delivered = ref 0 and expired = ref 0 and peak = ref 0 in
  let t0 = clock () in
  for e = 0 to cfg.ticks - 1 do
    apply_faults fab ~time:(float_of_int e *. cfg.epoch_len) faults;
    Shard.set_clock shard e;
    W.demand_into w ~tick:e dem;
    let tot = Array.fold_left ( +. ) 0. dem in
    let churn_rate = W.churn w ~tick:e in
    for c = 0 to n - 1 do
      match fab.fb_entry.(c) with
      | None -> ()
      | Some (ingress, chain_label, egress_label) when dem.(c) > 0. ->
        let g = gens.(c) in
        (* Flow turnover first: every fresh flow sends its first packet,
           so the distinct-flow count the generator reports is exactly
           the set the flow tables absorbed. *)
        let turnover =
          int_of_float (Float.round (churn_rate *. float_of_int (Tg.live_flows g)))
        in
        Tg.churn g
          ~opened:(fun tp ->
            incr packets;
            if Shard.drive shard ~ingress ~chain_label ~egress_label ~size:64 tp then
              incr delivered)
          turnover;
        (* Then the tick's sustained traffic, split by demand share. *)
        let npkts =
          if tot <= 0. then 0
          else
            int_of_float
              (Float.round (dem.(c) /. tot *. float_of_int cfg.pkts_per_tick))
        in
        for _ = 1 to npkts do
          let tp, size = Tg.next g in
          incr packets;
          if Shard.drive shard ~ingress ~chain_label ~egress_label ~size tp then
            incr delivered
        done
      | Some _ -> ()
    done;
    if e >= cfg.idle_ticks then
      expired := !expired + Shard.expire_flows shard ~idle_before:(e - cfg.idle_ticks + 1);
    let occ = total_entries shard fab.fb_fwd in
    if occ > !peak then peak := occ
  done;
  let wall = clock () -. t0 in
  let final_entries = total_entries shard fab.fb_fwd in
  Shard.shutdown shard;
  let unroutable =
    Array.fold_left (fun a e -> if e = None then a + 1 else a) 0 fab.fb_entry
  in
  let distinct = Array.fold_left (fun a g -> a + Tg.distinct_flows g) 0 gens in
  let live = Array.fold_left (fun a g -> a + Tg.live_flows g) 0 gens in
  (!packets, !delivered, distinct, live, !peak, final_entries, !expired, unroutable, wall)

(* ------------------------------ matrix ------------------------------- *)

let run_one ?(clock = fun () -> 0.) cfg model (name, w, faults) =
  let packets, delivered, distinct, live, peak, final, expired, unroutable, wall =
    run_dataplane ~clock cfg model w faults
  in
  let satisfied, oracle, p99, bus_delivered = run_control cfg model w faults in
  {
    m_scenario = name;
    m_packets = packets;
    m_delivered = delivered;
    m_distinct_flows = distinct;
    m_live_flows = live;
    m_peak_entries = peak;
    m_final_entries = final;
    m_expired = expired;
    m_unroutable = unroutable;
    m_p99_latency_ms = p99;
    m_bus_delivered = bus_delivered;
    m_satisfied = satisfied;
    m_oracle = oracle;
    m_ratio = (if oracle > 0. then satisfied /. oracle else 1.);
    m_wall = wall;
    m_pps = (if wall > 0. then float_of_int packets /. wall else 0.);
  }

let run_matrix ?clock ?names cfg =
  let model = backbone25 cfg in
  let entries = catalog cfg model in
  let entries =
    match names with
    | None -> entries
    | Some wanted -> List.filter (fun (n, _, _) -> List.mem n wanted) entries
  in
  List.map (run_one ?clock cfg model) entries

let pp_metrics ppf m =
  Format.fprintf ppf
    "@[<v>%s:@,\
    \  dataplane: packets=%d delivered=%d distinct_flows=%d live_flows=%d@,\
    \  flow_tables: peak_entries=%d final_entries=%d expired=%d unroutable=%d@,\
    \  control: p99_bus_ms=%.3f bus_delivered=%d satisfied=%.4f oracle=%.4f \
     ratio=%.4f@]"
    m.m_scenario m.m_packets m.m_delivered m.m_distinct_flows m.m_live_flows
    m.m_peak_entries m.m_final_entries m.m_expired m.m_unroutable m.m_p99_latency_ms
    m.m_bus_delivered m.m_satisfied m.m_oracle m.m_ratio
