(** The scenario suite: [Sb_net.Workload] demand processes driven
    end-to-end through both halves of the system on one 25-site
    backbone.

    Each scenario pairs a workload (and, for regional failover, an
    [Sb_chaos.Schedule] fault process built in lockstep) with two
    measurements:

    - {e control}: the {!Loop} closed loop and oracle arms run over the
      scenario's per-epoch demand factors and link failures; the bus's
      latency reservoir gives the control-plane p99 and the mean
      satisfied demand of each arm gives the satisfied-vs-oracle ratio.
    - {e dataplane}: a standalone packed/sharded fabric
      ({!Sb_dataplane.Shard}) is built from the model's SB-DP routes and
      stressed with streaming {!Sb_dataplane.Traffic_gen} flows — per
      tick, demand-proportional packets plus churn-driven flow turnover
      (every fresh flow sends its first packet, the short-flow-flood
      pattern), followed by an idle-flow expiry sweep. The DDoS scenario
      cycles over a million distinct flows through the tables this way
      while the live window — and so the table occupancy — stays
      bounded.

    Everything except wall-clock throughput is a pure function of the
    config: two runs with the same config produce bit-identical
    metrics. *)

type config = {
  seed : int;
  ticks : int;  (** scenario horizon; one tick = one control epoch *)
  epoch_len : float;  (** seconds of simulated time per tick *)
  num_chains : int;  (** workload keys = model chains *)
  window : int;
      (** total concurrently-live flows across all chains (split evenly);
          the constant-memory bound the streaming generators enforce *)
  pkts_per_tick : int;  (** sustained packets per tick, split by demand *)
  lanes : int;  (** dataplane shard lanes *)
  idle_ticks : int;
      (** a flow-table entry not refreshed for this many ticks is swept
          by {!Sb_dataplane.Shard.expire_flows} *)
}

val default_config : config
(** Full-scale matrix: 16 ticks, 40 chains, a 160 k live-flow window and
    120 k packets/tick — sized so the DDoS scenario churns over a
    million distinct flows through the flow tables. *)

val smoke_config : config
(** CI-sized: same shape, seconds of runtime (8 ticks, 16 chains, 4 096
    live flows, 20 k packets/tick). *)

type metrics = {
  m_scenario : string;
  m_packets : int;  (** packets offered to the stress fabric *)
  m_delivered : int;  (** packets that reached an egress edge *)
  m_distinct_flows : int;  (** distinct flows opened (and driven) *)
  m_live_flows : int;  (** live window at end of run *)
  m_peak_entries : int;  (** peak flow-table entries across all forwarders *)
  m_final_entries : int;  (** entries left after the last expiry sweep *)
  m_expired : int;  (** idle connections evicted over the run *)
  m_unroutable : int;  (** chains SB-DP could not route (no fabric entry) *)
  m_p99_latency_ms : float;
      (** p99 simulated publish-to-deliver latency of the closed loop's
          bus traffic, from the {!Sb_msgbus.Bus} reservoir *)
  m_bus_delivered : int;
  m_satisfied : float;  (** mean per-epoch satisfied demand, closed loop *)
  m_oracle : float;  (** same, oracle arm *)
  m_ratio : float;  (** satisfied / oracle (1.0 when oracle is 0) *)
  m_wall : float;  (** dataplane wall-clock seconds (0 without [clock]) *)
  m_pps : float;  (** packets / wall (0 without [clock]) *)
}

val backbone25 : config -> Sb_core.Model.t
(** The suite's shared substrate: a 25-node two-tier backbone (5 core
    routers, 4 PoPs each) with a synthesized Switchboard workload of
    [num_chains] chains, traffic scaled to 0.75 so the base demand is
    feasible and scenarios create the stress. Pure in [config.seed]. *)

val catalog :
  config ->
  Sb_core.Model.t ->
  (string * Sb_net.Workload.t * Sb_chaos.Schedule.t option) list
(** The scenario matrix: [flash_crowd], [ddos], [elephant_mice],
    [regional_failover] (with its aligned {!Sb_chaos.Schedule} — the
    sites that go dark are the ingress sites of exactly the chains whose
    demand the workload zeroes), [diurnal_drift], and
    [diurnal_flash_overlay] (a combinator composition: a half-scale
    flash crowd shifted into the back half of a diurnal day). *)

val scenario_names : string list

(** {2 Controller-outage sweep}

    The decentralization experiment (DESIGN.md section 15): one
    diurnal-drift scenario on the shared backbone, all four {!Loop} arms,
    and a {!Sb_chaos.Schedule.gsb_outage} window starting at a quarter of
    the run and covering a growing fraction of the remainder. Pure
    function of the config and fractions. *)

type outage_point = {
  op_fraction : float;  (** outage fraction of the post-start horizon *)
  op_arm : string;  (** [Loop.arm_name] of the arm *)
  op_pre : float;
      (** mean per-epoch satisfied demand before the outage start epoch *)
  op_during : float;
      (** mean satisfied demand over the outage window's epochs (for
          [fraction = 0], over the whole post-start tail) *)
  op_stretch : float;
      (** the arm's mean RTT over the same window relative to the oracle's
          (1.0 when the oracle RTT is 0) *)
  op_rerouted : int;  (** the arm's total re-routes over the whole run *)
}

val outage_start_epoch : config -> int
(** [ticks / 4] — the epoch at which every sweep outage begins. *)

val outage_scenario : config -> Loop.scenario
(** The sweep's scenario, exposed so the chaos acceptance suite can arm
    its own fault mix over the identical substrate: the diurnal drift on
    {!backbone25}, plus the {e sacrificial site} — one epoch into the
    outage window, every link of the most-loaded replaceable site (under
    the epoch-0 solve; the GSB home site excluded) fails. A frozen
    controller keeps forwarding into the hole; an adapting arm routes
    around it. Pure in [config]. *)

val outage_sweep : ?fractions:float list -> config -> outage_point list
(** Four points (static, oracle, closed-loop, anycast) per fraction
    (default [0, 0.25, 0.5, 0.75, 1]). Static and oracle never involve
    the controller and are computed once; closed-loop and anycast re-run
    per fraction with the outage armed through {!Sb_chaos.Inject}. *)

val pp_outage_point : Format.formatter -> outage_point -> unit
(** One deterministic line per point — the CI-diffable form. *)

(** {2 Elastic-placement sweep}

    The placement experiment (DESIGN.md section 16): diurnal drift plus a
    flash crowd on one PoP, run on a {e sparse} footprint (each VNF keeps
    only its two highest-capacity deployments) so the crowd saturates
    whole VNFs — the demand event no amount of re-routing can absorb.
    Three arms: the route-only closed loop, the same loop with the
    {!Place} planner armed, and an oracle — the {e identical} closed
    loop on the model pre-extended with the perfect-knowledge placements
    (same scorer, same open budget as the planner), so provisioning is
    the only variable between the arms and [placement/oracle] reads as
    "how much of perfect advance provisioning does elastic placement
    recover online". Pure function of the config. *)

type placement_point = {
  pl_arm : string;  (** [route-only], [placement] or [oracle] *)
  pl_mean : float;  (** mean per-epoch satisfied demand, whole run *)
  pl_flash : float;  (** same, over the flash-crowd window only *)
  pl_rerouted : int;  (** total route moves over the run *)
  pl_scale_actions : int;
      (** deployment scale-outs + scale-ins the planner emitted (0 for
          the route-only and oracle arms) — the churn figure the
          acceptance test budgets *)
}

val flash_window : config -> int * int
(** [(ticks/4, ticks - ticks/4)] — the epoch half-open interval the flash
    crowd covers. *)

val placement_scenario : config -> Loop.scenario * (int * int * float) list
(** The sweep's scenario plus the oracle's perfect-knowledge extra
    deployments [(vnf, site, capacity)]: {!Sb_core.Placement.suggest_inst}
    against the flash-peak demand, most-pressed VNFs first, capped at the
    planner's own [max_extra] budget. *)

val placement_sweep : config -> placement_point list
(** Three points, in [route-only; placement; oracle] order. *)

val pp_placement_point : Format.formatter -> placement_point -> unit
(** One deterministic line per point — the CI-diffable form. *)

val run_one :
  ?clock:(unit -> float) ->
  config ->
  Sb_core.Model.t ->
  string * Sb_net.Workload.t * Sb_chaos.Schedule.t option ->
  metrics
(** Run one catalog entry end to end. [clock] (e.g.
    [Unix.gettimeofday]) enables the wall-clock fields; without it they
    are 0 and the result is fully deterministic. *)

val run_matrix : ?clock:(unit -> float) -> ?names:string list -> config -> metrics list
(** Build the backbone once and run the (optionally filtered) catalog. *)

val pp_metrics : Format.formatter -> metrics -> unit
(** Deterministic fields only (no wall clock / pps) — the form the CLI
    prints so CI can diff two runs byte-for-byte. *)
