(** The elastic-placement planner: the half of the closed loop that moves
    {e deployments} instead of routes (DESIGN.md §16).

    Every control tick the planner re-evaluates the routing in force
    against the measured model (plus its own previous opens) and fires on
    the signal re-routing cannot fix: a VNF whose every deployed site
    sits above the saturation threshold has no spare candidate to shift
    load onto, so the planner opens a new deployment where
    {!Sb_core.Placement.suggest_inst} (latency-scored, telemetry-
    weighted, constraint-checked) points. Symmetrically, a planner-opened
    deployment that has gone cold is scaled back in — base-model
    deployments are the operator's provisioning and are never retracted.

    The planner only {e decides}; the caller ({!Loop} with the placement
    capability) applies the actions through the control plane —
    {!Sb_ctrl.System.scale_out} plus the next route rollout for an open,
    a route rollout that excludes the site followed by
    {!Sb_ctrl.System.drain_and_remove} for a scale-in — and reports
    aborted drains back via {!note_drain_aborted} so the planner's model
    view stays consistent with the fabric. *)

type action =
  | Scale_out of { vnf : int; site : int; capacity : float }
  | Scale_in of { vnf : int; site : int }

type params = {
  sat_threshold : float;
      (** per-deployment utilization above which a site counts saturated
          (0.85); scale-out fires only when {e every} deployed site of a
          VNF is saturated *)
  cold_threshold : float;
      (** utilization below which a planner open counts cold (0.20) *)
  observe : int;
      (** consecutive ticks a condition must hold before acting (2) — the
          hysteresis that keeps a one-epoch spike from churning
          deployments *)
  cooldown : int;
      (** ticks after any action during which the planner only observes
          (2), giving the route resolver time to load the change *)
  churn_budget : int;  (** max scale actions per tick (1) *)
  max_extra : int;
      (** max planner opens alive (incl. drains in flight) at once (4) *)
  constraints : Sb_core.Placement.constraints;
      (** anti-affinity pairs and per-cloud budgets passed through to the
          placement scorer *)
}

val default_params : params

type t

val create : ?params:params -> unit -> t

val extra : t -> (int * int * float) list
(** The planner's currently open deployments as [(vnf, site, capacity)],
    in open order — what the caller layers onto the measured model with
    {!Sb_core.Model.with_extra_deployments} before resolving routes. *)

val live : t -> (int * int * float) list
(** {!extra} plus the scale-ins whose drains are still in flight — the
    deployments the fabric physically holds, which is what an epoch
    evaluation must charge paths against. *)

val actions_emitted : t -> int
(** Total actions emitted so far — the deployment-churn figure the
    acceptance test budgets. *)

val plan :
  t -> measured:Sb_core.Model.t -> paths:(int array * float) list array -> action list
(** One planning tick. [measured] is the telemetry-derived model {e
    without} the planner's opens (they are layered on internally);
    [paths] is the per-chain decomposition of the routing in force
    ([Routing.decompose_paths]), evaluated against that model for the
    utilization reads. Returns the actions to apply, already reflected in
    {!extra} — an unapplied action desynchronizes planner and fabric.
    Deterministic: scale-ins in open order, then scale-outs in VNF id
    order. *)

val note_drain_aborted : t -> vnf:int -> site:int -> unit
(** The drain behind an emitted [Scale_in] aborted (GSB death or
    timeout): the fabric kept the deployment, so re-open it in the
    planner's view. *)

val note_drain_done : t -> vnf:int -> site:int -> unit
(** The drain completed and the deployment is retracted. *)
