(** Decentralized anycast control arm (DESIGN.md section 15).

    The counterpoint to the Global Switchboard's holistic solve, after
    Wion et al.'s {e Distributed Function Chaining with Anycast Routing}:
    each site maintains a local view fed by flooded
    {!Sb_ctrl.Types.msg.Load_advert}s (per-VNF carried load, forwarder
    weights, locally observed down links; retained topics, staleness
    age-out) and greedily re-points the rules of the chain elements it
    hosts at the least-cost advertised instance of the next element — no
    GSB, no 2PC, installs through the local {!Sb_ctrl.System} rule path.
    Distinct from the {e centralized} [Greedy.anycast] baseline scheme:
    that one routes whole chains from ground truth; this one emerges hop
    by hop from per-site views, and with perfect fresh information the
    two coincide (pinned by test). *)

(** {2 Local view} *)

type view

val create_view : site:int -> num_sites:int -> staleness:int -> view

val observe :
  view ->
  site:int ->
  epoch:int ->
  loads:(int * float) list ->
  fwd_weights:(int * (int * float) list) list ->
  down:int list ->
  unit
(** Fold a peer's advertisement into the view (newest epoch per site
    wins). *)

val set_epoch : view -> int -> unit
(** Advance the view's clock; adverts older than [staleness] epochs stop
    counting as fresh. *)

val epoch : view -> int

val received : view -> int
(** Advertisements observed so far (own ones included). *)

val vnf_load : view -> site:int -> vnf:int -> float option
(** Freshly advertised load of a VNF at a site, in traffic units; [None]
    when the site never advertised it or the advert aged out. *)

val fwd_weights : view -> site:int -> vnf:int -> (int * float) list option
(** Last advertised forwarder weights for a VNF at a site (used even when
    stale: fabric identity is quasi-static). *)

val down_union : view -> int list
(** Union of down links across all fresh adverts, sorted. *)

val blocked : view -> Sb_core.Model.t -> int -> bool
(** [blocked v m site]: every link incident to the site's node is down in
    the fresh flooded view. *)

(** {2 Decision function} *)

val choose_node :
  view -> Sb_core.Model.t -> chain:int -> stage:int -> current:int -> int list -> int
(** Pick the next element's node from the delay-sorted candidates: nearest
    fresh-advertised site with load under capacity, else the least
    relatively loaded advertised site, else pure delay anycast (exactly
    {!Sb_core.Greedy.choose_anycast}'s choice when no information is
    usable). *)

val choose : view -> Sb_core.Model.t -> Sb_core.Greedy.choose
(** {!choose_node} in {!Sb_core.Greedy.route} chooser form. *)

val route : Sb_core.Model.t -> (int -> view) -> Sb_core.Routing.t
(** The emergent routing: walk every chain hop by hop, deciding each hop
    with the view of the site the packet is currently at ([view_of site]) —
    the same function of the same views the deciding sites evaluated when
    installing their rules. *)

(** {2 Per-site agent}

    The live decision process: measures its own site's per-VNF load from
    the fabric's delivery counters, floods {!Sb_ctrl.Types.msg.Load_advert}s,
    and installs its owned rules (stage 0 at a chain's ingress; delivery +
    forward rules at every element it hosts; egress delivery at the
    chain's egress) through {!Sb_ctrl.System.apply_site_patches}. *)

module Agent : sig
  type t

  val create :
    sys:Sb_ctrl.System.t ->
    model:Sb_core.Model.t ->
    site:int ->
    ids:int array ->
    staleness:int ->
    pkts_per_unit:int ->
    down_links:(unit -> int list) ->
    unit ->
    t
  (** [ids] maps model chain index to the system's chain id. Subscribes to
      every peer site's advert topic. *)

  val view : t -> view

  val adverts_sent : t -> int

  val advertise : t -> epoch:int -> unit
  (** Measure the epoch's per-VNF delivered load at this site and publish
      the advertisement (also folded into the own view directly). *)

  val decide : t -> epoch:int -> int
  (** Age the view to [epoch], recompute every owned rule and install the
      changed ones after the data-plane install latency. Returns the
      number of forward rules re-pointed. *)
end
