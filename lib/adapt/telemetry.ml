module Engine = Sb_sim.Engine
module Bus = Sb_msgbus.Bus
module System = Sb_ctrl.System
module Types = Sb_ctrl.Types

module Exporter = struct
  (* Per-chain scratch: the current and previous window counters, reused
     every epoch so a measurement sweep allocates only the published
     report. *)
  type buf = {
    cur_p : int array;
    cur_b : int array;
    prev_p : int array;
    prev_b : int array;
  }

  type t = {
    system : System.t;
    site : int;
    period : float;
    down_links : unit -> int list;
    prev : (int, buf) Hashtbl.t;
    mutable epoch : int;
    mutable running : bool;
    mutable exported : int;
  }

  let rec tick t =
    if t.running then begin
      let down = t.down_links () in
      let table = System.site_flow_table_stats t.system ~site:t.site in
      List.iter
        (fun (chain, _egress, num_stages) ->
          let b =
            match Hashtbl.find_opt t.prev chain with
            | Some b when Array.length b.cur_p = num_stages -> b
            | _ ->
              let b =
                {
                  cur_p = Array.make num_stages 0;
                  cur_b = Array.make num_stages 0;
                  prev_p = Array.make num_stages 0;
                  prev_b = Array.make num_stages 0;
                }
              in
              Hashtbl.replace t.prev chain b;
              b
          in
          let n =
            System.site_chain_measurements_into t.system ~site:t.site ~chain
              ~pkts:b.cur_p ~bytes:b.cur_b
          in
          if n >= 0 then begin
            let delta =
              Array.init n (fun i ->
                  (b.cur_p.(i) - b.prev_p.(i), b.cur_b.(i) - b.prev_b.(i)))
            in
            Array.blit b.cur_p 0 b.prev_p 0 n;
            Array.blit b.cur_b 0 b.prev_b 0 n;
            (* Export even an all-zero window: to the aggregator silence is
               indistinguishable from loss, so a zero report is
               information (the chain really carried nothing). *)
            Bus.publish (System.bus t.system) ~site:t.site
              ~topic:(Types.telemetry_topic ~chain)
              (Types.Telemetry_report
                 {
                   site = t.site;
                   epoch = t.epoch;
                   chain;
                   stages = delta;
                   down_links = down;
                   table;
                 });
            t.exported <- t.exported + 1
          end)
        (System.site_known_chains t.system ~site:t.site);
      t.epoch <- t.epoch + 1;
      ignore (Engine.schedule (System.engine t.system) ~delay:t.period (fun () -> tick t))
    end

  let start ~system ~site ~period ?(down_links = fun () -> []) () =
    let t =
      {
        system;
        site;
        period;
        down_links;
        prev = Hashtbl.create 16;
        epoch = 0;
        running = true;
        exported = 0;
      }
    in
    ignore (Engine.schedule (System.engine system) ~delay:period (fun () -> tick t));
    t

  let stop t = t.running <- false
  let exported t = t.exported
end

module Control = struct
  (* Control-plane cost snapshot: what the adaptation loop itself spends,
     as opposed to what the data plane carries. Bus counters come from the
     size-priced bus (every System bus prices payloads with
     [Types.msg_size] and classes topics with [Types.topic_class]); data
     plane counters come from the shard's mutation journal and rule
     arena. *)
  type report = {
    bus_published : int;
    bus_wan_messages : int;
    bus_published_bytes : int;
    bus_wan_bytes : int;  (** bytes that crossed the wide area *)
    bus_topic_bytes : (string * int * int) list;
        (** per topic class: (class, publishes, bytes) *)
    bus_size_p50 : int;
    bus_size_p99 : int;
    dp_mutations : int;  (** rule-install journal length (lane 0) *)
    dp_slots_live : int;
    dp_words_used : int;
    dp_words_garbage : int;
    dp_compactions : int;
    churn_scale_outs : int;  (** deployments added by elastic placement *)
    churn_removed : int;  (** deployments retracted after a drain *)
    churn_drains_completed : int;
    churn_drains_aborted : int;
    churn_draining : int;
    churn_drain_p50 : float;  (** median completed-drain duration (s), 0 if none *)
    churn_drain_max : float;
  }

  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0
    else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

  let snapshot system =
    let bs = Bus.stats (System.bus system) in
    let shard = System.shard system in
    let arena = Sb_dataplane.Shard.arena_stats shard in
    let sizes = Array.of_list bs.Bus.sizes in
    Array.sort compare sizes;
    let ch = System.deployment_churn system in
    let durs = Array.of_list ch.System.ch_drain_durations in
    Array.sort compare durs;
    let drain_p50 =
      let n = Array.length durs in
      if n = 0 then 0. else durs.(n / 2)
    in
    let drain_max = Array.fold_left Float.max 0. durs in
    {
      bus_published = bs.Bus.published;
      bus_wan_messages = bs.Bus.wan_messages;
      bus_published_bytes = bs.Bus.published_bytes;
      bus_wan_bytes = bs.Bus.wan_bytes;
      bus_topic_bytes = bs.Bus.topic_bytes;
      bus_size_p50 = percentile sizes 0.5;
      bus_size_p99 = percentile sizes 0.99;
      dp_mutations = Sb_dataplane.Shard.mutations shard;
      dp_slots_live = arena.Sb_dataplane.Plane.slots_live;
      dp_words_used = arena.Sb_dataplane.Plane.words_used;
      dp_words_garbage = arena.Sb_dataplane.Plane.words_garbage;
      dp_compactions = arena.Sb_dataplane.Plane.compactions;
      churn_scale_outs = ch.System.ch_scale_outs;
      churn_removed = ch.System.ch_removed;
      churn_drains_completed = ch.System.ch_drains_completed;
      churn_drains_aborted = ch.System.ch_drains_aborted;
      churn_draining = ch.System.ch_draining;
      churn_drain_p50 = drain_p50;
      churn_drain_max = drain_max;
    }

  let pp fmt r =
    Format.fprintf fmt
      "@[<v>bus: %d published (%d B), %d wan msgs (%d B), size p50=%d p99=%d@,"
      r.bus_published r.bus_published_bytes r.bus_wan_messages r.bus_wan_bytes
      r.bus_size_p50 r.bus_size_p99;
    List.iter
      (fun (cls, n, b) -> Format.fprintf fmt "  %-28s %6d msgs %10d B@," cls n b)
      r.bus_topic_bytes;
    Format.fprintf fmt
      "dp: %d mutations, arena %d live slots (%d words, %d garbage, %d compactions)@,"
      r.dp_mutations r.dp_slots_live r.dp_words_used r.dp_words_garbage
      r.dp_compactions;
    Format.fprintf fmt
      "churn: %d scale-outs, %d removed (%d drains done, %d aborted, %d draining), \
       drain p50=%.2fs max=%.2fs@]"
      r.churn_scale_outs r.churn_removed r.churn_drains_completed
      r.churn_drains_aborted r.churn_draining r.churn_drain_p50 r.churn_drain_max
end

module Aggregator = struct
  type sample = {
    s_epoch : int;
    s_stages : (int * int) array;
    s_down : int list;
    s_table : int * int * int;
  }

  type t = {
    chains : int list;
    num_sites : int;
    staleness : int;
    cells : (int, sample option array) Hashtbl.t;
    mutable reports : int;
    mutable last_epoch : int;
  }

  let handle t = function
    | Types.Telemetry_report { site; epoch; chain; stages; down_links; table } -> (
      match Hashtbl.find_opt t.cells chain with
      | None -> () (* a chain this aggregator was not asked to watch *)
      | Some row ->
        if site >= 0 && site < t.num_sites then begin
          t.reports <- t.reports + 1;
          if epoch > t.last_epoch then t.last_epoch <- epoch;
          let newer =
            match row.(site) with None -> true | Some s -> epoch >= s.s_epoch
          in
          if newer then
            row.(site) <-
              Some
                {
                  s_epoch = epoch;
                  s_stages = stages;
                  s_down = down_links;
                  s_table = table;
                }
        end)
    | _ -> ()

  let create ~system ~site ~chains ~num_sites ?(staleness = 3) () =
    let t =
      {
        chains;
        num_sites;
        staleness;
        cells = Hashtbl.create (max 1 (List.length chains));
        reports = 0;
        last_epoch = -1;
      }
    in
    List.iter
      (fun chain ->
        Hashtbl.replace t.cells chain (Array.make num_sites None);
        Bus.subscribe (System.bus system) ~site
          ~topic:(Types.telemetry_topic ~chain) (handle t))
      chains;
    t

  let fresh t ~epoch s = s.s_epoch > epoch - t.staleness && s.s_epoch <= epoch

  (* Fold over the freshest per-site samples of one chain, in site order —
     deterministic regardless of report arrival interleaving. *)
  let fold_fresh t ~epoch ~chain f init =
    match Hashtbl.find_opt t.cells chain with
    | None -> init
    | Some row ->
      Array.fold_left
        (fun acc cell ->
          match cell with Some s when fresh t ~epoch s -> f acc s | _ -> acc)
        init row

  let chain_packets t ~epoch ~chain =
    fold_fresh t ~epoch ~chain
      (fun acc s ->
        let p = if Array.length s.s_stages > 0 then fst s.s_stages.(0) else 0 in
        match acc with None -> Some p | Some a -> Some (a + p))
      None

  let chain_stages t ~epoch ~chain =
    let width =
      fold_fresh t ~epoch ~chain (fun w s -> max w (Array.length s.s_stages)) 0
    in
    let out = Array.make width (0, 0) in
    ignore
      (fold_fresh t ~epoch ~chain
         (fun () s ->
           Array.iteri
             (fun i (p, b) ->
               let op, ob = out.(i) in
               out.(i) <- (op + p, ob + b))
             s.s_stages)
         ());
    out

  (* Every chain's report from a site carries the same site-level table
     snapshot, so pick one fresh sample per site (the freshest wins) and
     sum entries/capacity across sites; probe lengths max. *)
  let table_occupancy t ~epoch =
    let per_site = Array.make t.num_sites None in
    List.iter
      (fun chain ->
        match Hashtbl.find_opt t.cells chain with
        | None -> ()
        | Some row ->
          Array.iteri
            (fun site cell ->
              match cell with
              | Some s when fresh t ~epoch s -> (
                match per_site.(site) with
                | Some prev when prev.s_epoch >= s.s_epoch -> ()
                | _ -> per_site.(site) <- Some s)
              | _ -> ())
            row)
      t.chains;
    Array.fold_left
      (fun (c, k, m) cell ->
        match cell with
        | Some { s_table = c', k', m'; _ } -> (c + c', k + k', max m m')
        | None -> (c, k, m))
      (0, 0, 0) per_site

  let down_links t ~epoch =
    List.fold_left
      (fun acc chain ->
        fold_fresh t ~epoch ~chain
          (fun acc s ->
            List.fold_left
              (fun acc l -> if List.mem l acc then acc else l :: acc)
              acc s.s_down)
          acc)
      [] t.chains
    |> List.sort compare

  let reports t = t.reports
  let last_epoch t = t.last_epoch
end
