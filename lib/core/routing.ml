(* Packed flow storage: one store of parallel (src, dst, frac) arrays per
   global stage, in insertion order — the same order the legacy per-stage
   assoc lists kept, so every fold/commit below accumulates bit-identically
   to the list-shaped code this replaces. The list API ({!stage_flows},
   {!set_stage}) survives as a shim. *)

type store = {
  mutable n : int;
  mutable src : int array;
  mutable dst : int array;
  mutable frac : float array;
}

type t = {
  inst : Instance.t;
  stores : store array; (* indexed by global stage id *)
}

let of_instance inst =
  {
    inst;
    stores =
      Array.init (Instance.num_stages_total inst) (fun _ ->
          { n = 0; src = [||]; dst = [||]; frac = [||] });
  }

let create m = of_instance (Instance.compile m)
let instance t = t.inst
let model t = Instance.model t.inst

let reset t =
  Array.iter (fun st -> st.n <- 0) t.stores

let store t ~chain ~stage = t.stores.(Instance.stage_index t.inst ~chain ~stage)

let append st ~src ~dst ~frac =
  let cap = Array.length st.src in
  if st.n = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let nsrc = Array.make ncap 0 in
    let ndst = Array.make ncap 0 in
    let nfrac = Array.make ncap 0. in
    Array.blit st.src 0 nsrc 0 st.n;
    Array.blit st.dst 0 ndst 0 st.n;
    Array.blit st.frac 0 nfrac 0 st.n;
    st.src <- nsrc;
    st.dst <- ndst;
    st.frac <- nfrac
  end;
  st.src.(st.n) <- src;
  st.dst.(st.n) <- dst;
  st.frac.(st.n) <- frac;
  st.n <- st.n + 1

let set_stage t ~chain ~stage flows =
  let st = store t ~chain ~stage in
  st.n <- 0;
  List.iter (fun (src, dst, frac) -> append st ~src ~dst ~frac) flows

let stage_flows t ~chain ~stage =
  let st = store t ~chain ~stage in
  List.init st.n (fun k -> (st.src.(k), st.dst.(k), st.frac.(k)))

let add_path t ~chain ~nodes ~frac =
  let stages = Instance.num_stages t.inst chain in
  if Array.length nodes <> stages + 1 then
    invalid_arg "Routing.add_path: node sequence length mismatch";
  let base = (Instance.stage_off t.inst).(chain) in
  for z = 0 to stages - 1 do
    let src = nodes.(z) and dst = nodes.(z + 1) in
    let st = t.stores.(base + z) in
    (* Merge with an existing identical hop if present (first match wins,
       like the legacy list merge); otherwise append. *)
    let k = ref 0 in
    while !k < st.n && not (st.src.(!k) = src && st.dst.(!k) = dst) do
      incr k
    done;
    if !k < st.n then st.frac.(!k) <- st.frac.(!k) +. frac
    else append st ~src ~dst ~frac
  done

let single_path m path_of_chain =
  let t = create m in
  for c = 0 to Model.num_chains m - 1 do
    add_path t ~chain:c ~nodes:(path_of_chain c) ~frac:1.0
  done;
  t

let close_enough a b = Float.abs (a -. b) < 1e-6

let validate t =
  let m = model t in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  for c = 0 to Model.num_chains m - 1 do
    let stages = Instance.num_stages t.inst c in
    for z = 0 to stages - 1 do
      let srcs = Instance.stage_src_nodes t.inst ~chain:c ~stage:z in
      let dsts = Instance.stage_dst_nodes t.inst ~chain:c ~stage:z in
      List.iter
        (fun (s, d, f) ->
          if f < -1e-9 then fail "chain %d stage %d: negative fraction %g" c z f;
          if not (List.mem s srcs) then
            fail "chain %d stage %d: invalid source node %d" c z s;
          if not (List.mem d dsts) then
            fail "chain %d stage %d: invalid destination node %d" c z d)
        (stage_flows t ~chain:c ~stage:z)
    done;
    (* Each ingress node emits exactly its traffic share (stage 0), and
       each egress node receives its share (final stage). *)
    List.iter
      (fun (node, share) ->
        let out =
          List.fold_left
            (fun acc (s, _, f) -> if s = node then acc +. f else acc)
            0.
            (stage_flows t ~chain:c ~stage:0)
        in
        if not (close_enough out share) then
          fail "chain %d: ingress %d emits %g, expected %g" c node out share)
      (Model.chain_ingresses m c);
    List.iter
      (fun (node, share) ->
        let inflow =
          List.fold_left
            (fun acc (_, d, f) -> if d = node then acc +. f else acc)
            0.
            (stage_flows t ~chain:c ~stage:(stages - 1))
        in
        if not (close_enough inflow share) then
          fail "chain %d: egress %d receives %g, expected %g" c node inflow share)
      (Model.chain_egresses m c);
    (* Conservation at each VNF element's sites (Eq. 5). *)
    for z = 0 to stages - 2 do
      let sites = Instance.stage_dst_nodes t.inst ~chain:c ~stage:z in
      List.iter
        (fun node ->
          let inflow =
            List.fold_left
              (fun acc (_, d, f) -> if d = node then acc +. f else acc)
              0.
              (stage_flows t ~chain:c ~stage:z)
          in
          let outflow =
            List.fold_left
              (fun acc (s, _, f) -> if s = node then acc +. f else acc)
              0.
              (stage_flows t ~chain:c ~stage:(z + 1))
          in
          if not (close_enough inflow outflow) then
            fail "chain %d element %d at node %d: in %g <> out %g" c (z + 1) node
              inflow outflow)
        sites
    done
  done;
  match !problem with None -> Ok () | Some s -> Error s

(* Commit every stage flow into [state]: chains ascending, stages ascending,
   flows in insertion order — the legacy nested-list commit order, so load
   accumulation is bit-identical. *)
let commit_into state t =
  let stage_off = Instance.stage_off t.inst in
  for c = 0 to Instance.num_chains t.inst - 1 do
    let base = stage_off.(c) in
    for z = 0 to stage_off.(c + 1) - base - 1 do
      let st = t.stores.(base + z) in
      for k = 0 to st.n - 1 do
        let frac = st.frac.(k) in
        if frac > 1e-12 then
          Load_state.add_stage_flow state ~chain:c ~stage:z ~src:st.src.(k)
            ~dst:st.dst.(k) ~frac
      done
    done
  done

let load_state t =
  let state = Load_state.of_instance t.inst in
  commit_into state t;
  state

let max_alpha t = Load_state.max_alpha (load_state t)

let max_alpha_into state t =
  if not (Load_state.instance state == t.inst) then
    invalid_arg "Routing.max_alpha_into: load state compiled from a different instance";
  Load_state.reset state;
  commit_into state t;
  Load_state.max_alpha state

let supported_throughput t =
  let a = max_alpha t in
  if a = infinity then infinity
  else a *. (Model.total_demand (model t) *. Instance.scale t.inst)

let latency_terms ?(alpha = 1.0) ?(vnf_service_time = 0.001) ~with_queueing t =
  let inst = t.inst in
  let state = load_state t in
  let paths = Model.paths (model t) in
  let stage_off = Instance.stage_off inst in
  let stage_vnf = Instance.stage_vnf inst in
  let node_site = Instance.node_site inst in
  let scale = Instance.scale inst in
  let fwd_base = Instance.fwd_base inst in
  let rev_base = Instance.rev_base inst in
  let total_weight = ref 0. in
  let total_latency = ref 0. in
  let saturated = ref false in
  for c = 0 to Instance.num_chains inst - 1 do
    let base = stage_off.(c) in
    for z = 0 to stage_off.(c + 1) - base - 1 do
      let gz = base + z in
      let w = fwd_base.(gz) *. scale in
      let v = rev_base.(gz) *. scale in
      let st = t.stores.(gz) in
      for k = 0 to st.n - 1 do
        let frac = st.frac.(k) in
        if frac > 1e-12 then begin
          let src = st.src.(k) and dst = st.dst.(k) in
          let weight = (w +. v) *. frac in
          let prop = Sb_net.Paths.delay paths src dst in
          let queue =
            if not with_queueing then 0.
            else begin
              let f = stage_vnf.(gz) in
              if f < 0 then 0.
              else begin
                let s = node_site.(dst) in
                if s < 0 then 0.
                else begin
                  let rho = alpha *. Load_state.vnf_utilization state ~vnf:f ~site:s in
                  (* A deployment loaded beyond capacity cannot carry the
                     traffic at all; one loaded exactly to its admission
                     limit queues heavily but finitely. *)
                  if rho > 1. +. 1e-9 then begin
                    saturated := true;
                    0.
                  end
                  else vnf_service_time /. (1. -. Float.min rho 0.98)
                end
              end
            end
          in
          total_weight := !total_weight +. weight;
          total_latency := !total_latency +. (weight *. (prop +. queue))
        end
      done
    done
  done;
  if !saturated then infinity
  else if !total_weight = 0. then 0.
  else !total_latency /. !total_weight

let mean_latency ?alpha ?vnf_service_time t =
  latency_terms ?alpha ?vnf_service_time ~with_queueing:true t

let propagation_latency t = latency_terms ~with_queueing:false t

let decompose_paths t ~chain =
  let stages = Instance.num_stages t.inst chain in
  (* Mutable residual copy of the stage flows. *)
  let residual =
    Array.init stages (fun z -> ref (stage_flows t ~chain ~stage:z))
  in
  let take stage node =
    (* First arc with positive fraction leaving [node] at [stage]. *)
    List.find_opt (fun (s, _, f) -> s = node && f > 1e-9) !(residual.(stage))
  in
  let take_any_source () =
    (* Any stage-0 arc with residual flow (chains may have several
       ingresses). *)
    List.find_opt (fun (_, _, f) -> f > 1e-9) !(residual.(0))
  in
  let subtract stage (src, dst) amount =
    residual.(stage) :=
      List.filter_map
        (fun (s, d, f) ->
          if s = src && d = dst then
            if f -. amount > 1e-9 then Some (s, d, f -. amount) else None
          else Some (s, d, f))
        !(residual.(stage))
  in
  let paths = ref [] in
  let continue = ref true in
  while !continue do
    match take_any_source () with
    | None -> continue := false
    | Some (src0, dst0, f0) ->
      let nodes = Array.make (stages + 1) src0 in
      nodes.(1) <- dst0;
      let frac = ref f0 in
      (try
         for z = 1 to stages - 1 do
           match take z nodes.(z) with
           | Some (_, d, f) ->
             nodes.(z + 1) <- d;
             frac := Float.min !frac f
           | None -> raise Exit
         done;
         for z = 0 to stages - 1 do
           subtract z (nodes.(z), nodes.(z + 1)) !frac
         done;
         paths := (Array.copy nodes, !frac) :: !paths
       with Exit ->
         (* Conservation violated (partial routing): drop the dangling arc
            to guarantee termination. *)
         subtract 0 (src0, dst0) f0)
  done;
  List.rev !paths

let pp_chain ppf t c =
  let m = model t in
  let topo = Model.topology m in
  Format.fprintf ppf "@[<v>chain %s (%s -> %s):@," (Model.chain_name m c)
    (Sb_net.Topology.node_name topo (Model.chain_ingress m c))
    (Sb_net.Topology.node_name topo (Model.chain_egress m c));
  for z = 0 to Instance.num_stages t.inst c - 1 do
    Format.fprintf ppf "  stage %d:" z;
    let st = store t ~chain:c ~stage:z in
    for k = 0 to st.n - 1 do
      Format.fprintf ppf " %s->%s:%.2f"
        (Sb_net.Topology.node_name topo st.src.(k))
        (Sb_net.Topology.node_name topo st.dst.(k))
        st.frac.(k)
    done;
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
