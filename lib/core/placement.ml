(* Detour latency of serving VNF [f] of chain [c] at node [node]: ingress ->
   node -> egress. A cheap, demand-independent proxy for the latency the
   chain would pay to visit that site. *)
let detour m c node =
  let paths = Model.paths m in
  Sb_net.Paths.delay paths (Model.chain_ingress m c) node
  +. Sb_net.Paths.delay paths node (Model.chain_egress m c)

(* ------------------------- constraints ------------------------------- *)

type constraints = {
  anti_affinity : (int * int) list;
  cloud_of : int -> int;
  cloud_capacity : int -> int;
}

let no_constraints =
  { anti_affinity = []; cloud_of = (fun _ -> 0); cloud_capacity = (fun _ -> max_int) }

let anti_pairs cons f =
  List.filter_map
    (fun (a, b) -> if a = f then Some b else if b = f then Some a else None)
    cons.anti_affinity

(* ---------------------- packed-instance view -------------------------- *)

(* All scoring reads go through the compiled instance's flat arrays (the
   stage-VNF span, the unscaled demand bases, the dense (vnf, site)
   capacity table) instead of re-walking the model's lists — the same
   answers, but cheap enough for the control loop to call every epoch. *)

let chain_traffic_inst inst c =
  let fwd = Instance.fwd_base inst and rev = Instance.rev_base inst in
  let off = Instance.stage_off inst in
  let total = ref 0. in
  for gz = off.(c) to off.(c + 1) - 1 do
    total := !total +. fwd.(gz) +. rev.(gz)
  done;
  !total *. Instance.scale inst

let chains_using_inst inst f =
  let off = Instance.stage_off inst and sv = Instance.stage_vnf inst in
  let acc = ref [] in
  for c = Instance.num_chains inst - 1 downto 0 do
    let uses = ref false in
    for gz = off.(c) to off.(c + 1) - 1 do
      if sv.(gz) = f then uses := true
    done;
    if !uses then acc := c :: !acc
  done;
  !acc

let mean_existing_capacity_inst inst f =
  let off = Instance.vdep_off inst and cap = Instance.vdep_cap inst in
  let n = off.(f + 1) - off.(f) in
  if n = 0 then 0.
  else begin
    let total = ref 0. in
    for k = off.(f) to off.(f + 1) - 1 do
      total := !total +. cap.(k)
    done;
    !total /. float_of_int n
  end

let deployed inst ~vnf ~site =
  (Instance.dep_cap inst).((vnf * Instance.num_sites inst) + site) > 0.

let candidate_sites_inst inst f =
  List.filter
    (fun s -> not (deployed inst ~vnf:f ~site:s))
    (List.init (Instance.num_sites inst) (fun s -> s))

(* Saturation pressure of a VNF under the live load view: the worst
   utilization across its current deployments. 0. without telemetry. *)
let vnf_pressure load inst f =
  let off = Instance.vdep_off inst and site = Instance.vdep_site inst in
  let p = ref 0. in
  for k = off.(f) to off.(f + 1) - 1 do
    p := Float.max !p (Load_state.vnf_utilization load ~vnf:f ~site:site.(k))
  done;
  !p

(* Anti-affinity admissibility of opening (f, s): no conflicting VNF may
   already sit at s (dense table) or have been chosen there this round. *)
let admissible cons inst ~chosen f s =
  List.for_all
    (fun g -> not (deployed inst ~vnf:g ~site:s || List.mem (g, s) chosen))
    (anti_pairs cons f)

(* --------------------------- greedy hint ------------------------------ *)

let suggest_inst ?(constraints = no_constraints) ?load inst ~new_sites_per_vnf =
  let m = Instance.model inst in
  let cons = constraints in
  let cloud_used = Hashtbl.create 8 in
  let cloud_room s =
    let k = cons.cloud_of s in
    let used = Option.value ~default:0 (Hashtbl.find_opt cloud_used k) in
    used < cons.cloud_capacity k
  in
  let take_cloud s =
    let k = cons.cloud_of s in
    Hashtbl.replace cloud_used k
      (1 + Option.value ~default:0 (Hashtbl.find_opt cloud_used k))
  in
  let chosen = ref [] in
  let extra = ref [] in
  for f = 0 to Instance.num_vnfs inst - 1 do
    let users = chains_using_inst inst f in
    let best_existing c =
      let off = Instance.vdep_off inst and dsite = Instance.vdep_site inst in
      let best = ref infinity in
      for k = off.(f) to off.(f + 1) - 1 do
        best := Float.min !best (detour m c (Model.site_node m dsite.(k)))
      done;
      !best
    in
    let pressure = match load with None -> 0. | Some ls -> vnf_pressure ls inst f in
    let score s =
      let node = Model.site_node m s in
      let gain =
        List.fold_left
          (fun acc c ->
            acc
            +. chain_traffic_inst inst c
               *. Float.max 0. (best_existing c -. detour m c node))
          0. users
      in
      (* Telemetry-aware weighting: a saturated VNF's candidates rank
         higher across VNFs (cloud budgets bite), and a candidate on a
         compute-starved site is discounted. Without a load view both
         factors are 1 and the demand-weighted greedy is unchanged. *)
      match load with
      | None -> gain
      | Some ls ->
        gain *. (1. +. pressure)
        *. Float.max 0. (1. -. Float.min 1. (Load_state.site_utilization ls s))
    in
    let ranked =
      candidate_sites_inst inst f
      |> List.map (fun s -> (s, score s))
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    let cap = mean_existing_capacity_inst inst f in
    let picked = ref 0 in
    List.iter
      (fun (s, _) ->
        if
          !picked < new_sites_per_vnf
          && admissible cons inst ~chosen:!chosen f s
          && cloud_room s
        then begin
          incr picked;
          take_cloud s;
          chosen := (f, s) :: !chosen;
          extra := (f, s, cap) :: !extra
        end)
      ranked
  done;
  !extra

let suggest ?constraints ?load m ~new_sites_per_vnf =
  let inst =
    match load with
    | Some ls when Load_state.model ls == m -> Load_state.instance ls
    | _ -> Instance.compile m
  in
  Model.with_extra_deployments m
    (suggest_inst ?constraints ?load inst ~new_sites_per_vnf)

let random ~rng m ~new_sites_per_vnf =
  let inst = Instance.compile m in
  let extra = ref [] in
  for f = 0 to Model.num_vnfs m - 1 do
    let candidates = Array.of_list (candidate_sites_inst inst f) in
    Sb_util.Rng.shuffle rng candidates;
    let cap = mean_existing_capacity_inst inst f in
    Array.iteri
      (fun i s -> if i < new_sites_per_vnf then extra := (f, s, cap) :: !extra)
      candidates
  done;
  Model.with_extra_deployments m !extra

(* ------------------------------ MIP ----------------------------------- *)

(* Exact placement on a simplified facility-location MIP: for each VNF,
   fractions y_{c,s} of each using chain's demand served at site s, with
   detour-latency costs, per-deployment capacity, and binary open variables
   w_{f,s} (the paper's Section 4.3 MIP, with routing collapsed to the
   ingress->site->egress detour). Anti-affinity pairs exclude co-located
   opens (and opens at a site already hosting the partner); per-cloud
   budgets cap the new opens per cloud. *)
let mip ?(max_nodes = 2000) ?(constraints = no_constraints) m ~new_sites_per_vnf =
  let module Lp = Sb_lp.Lp in
  let cons = constraints in
  let inst = Instance.compile m in
  let p = Lp.create ~name:"vnf_placement" () in
  let opens = Hashtbl.create 64 in
  let obj = ref [] in
  for f = 0 to Model.num_vnfs m - 1 do
    let users = chains_using_inst inst f in
    let cap = mean_existing_capacity_inst inst f in
    let candidates = candidate_sites_inst inst f in
    let w_vars =
      List.map
        (fun s ->
          let w = Lp.add_var p ~ub:1. ~integer:true (Printf.sprintf "w_f%d_s%d" f s) in
          Hashtbl.replace opens (f, s) w;
          (s, w))
        candidates
    in
    Lp.add_constraint p
      (List.map (fun (_, w) -> (1., w)) w_vars)
      Lp.Le
      (float_of_int new_sites_per_vnf);
    (* Each using chain splits its demand between existing sites and open
       candidates; candidate service requires the site to be open. *)
    List.iter
      (fun c ->
        let demand = chain_traffic_inst inst c in
        let existing =
          List.map
            (fun (s, site_cap) ->
              let y = Lp.add_var p (Printf.sprintf "y_c%d_f%d_s%d" c f s) in
              Lp.add_constraint p [ (demand, y) ] Lp.Le site_cap;
              obj := (demand *. detour m c (Model.site_node m s), y) :: !obj;
              (1., y))
            (Model.vnf_sites m f)
        in
        let fresh =
          List.map
            (fun (s, w) ->
              let y = Lp.add_var p (Printf.sprintf "y_c%d_f%d_s%d" c f s) in
              Lp.add_constraint p [ (1., y); (-1., w) ] Lp.Le 0.;
              Lp.add_constraint p [ (demand, y) ] Lp.Le (Float.max cap 1e-9);
              obj := (demand *. detour m c (Model.site_node m s), y) :: !obj;
              (1., y))
            w_vars
        in
        Lp.add_constraint p (existing @ fresh) Lp.Eq 1.)
      users
  done;
  (* Anti-affinity: for every conflicting pair, at most one of the two may
     end up at any site — an open is forbidden outright where the partner
     is already deployed. *)
  List.iter
    (fun (f1, f2) ->
      for s = 0 to Model.num_sites m - 1 do
        match (Hashtbl.find_opt opens (f1, s), Hashtbl.find_opt opens (f2, s)) with
        | Some w1, Some w2 -> Lp.add_constraint p [ (1., w1); (1., w2) ] Lp.Le 1.
        | Some w1, None when deployed inst ~vnf:f2 ~site:s ->
          Lp.add_constraint p [ (1., w1) ] Lp.Le 0.
        | None, Some w2 when deployed inst ~vnf:f1 ~site:s ->
          Lp.add_constraint p [ (1., w2) ] Lp.Le 0.
        | _ -> ()
      done)
    cons.anti_affinity;
  (* Per-cloud budget over all new opens landing in the cloud. *)
  let by_cloud = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (_, s) w ->
      let k = cons.cloud_of s in
      Hashtbl.replace by_cloud k (w :: Option.value ~default:[] (Hashtbl.find_opt by_cloud k)))
    opens;
  Hashtbl.iter
    (fun k ws ->
      let budget = cons.cloud_capacity k in
      if budget < List.length ws then
        Lp.add_constraint p
          (List.map (fun w -> (1., w)) ws)
          Lp.Le (float_of_int budget))
    by_cloud;
  Lp.set_objective p Lp.Minimize !obj;
  match Sb_lp.Mip.solve ~max_nodes p with
  | Sb_lp.Mip.Optimal sol | Sb_lp.Mip.Node_limit (Some sol) ->
    let extra = ref [] in
    Hashtbl.iter
      (fun (f, s) w ->
        if Lp.value sol w > 0.5 then
          extra := (f, s, mean_existing_capacity_inst inst f) :: !extra)
      opens;
    Some (Model.with_extra_deployments m !extra)
  | Sb_lp.Mip.Node_limit None ->
    Printf.eprintf
      "Placement.mip: branch-and-bound hit the %d-node limit with no incumbent; \
       returning no placement (callers should fall back to Placement.suggest).\n\
       %!"
      max_nodes;
    None
  | Sb_lp.Mip.Infeasible | Sb_lp.Mip.Unbounded -> None
