type t = {
  m : Model.t;
  net : Sb_net.Load.t; (* Switchboard traffic only; background added on demand *)
  site_loads : float array;
  vnf_loads : float array array; (* vnf_loads.(f).(s) *)
  mutable generation : int;
      (* bumped by every commit; stage-cost cache entries from an older
         generation are invalid (the committed load may touch their links
         or VNF sites) *)
  (* Generation-stamped direct-mapped stage-cost cache. A slot is valid iff
     its stamp equals the current generation and its key matches, so a
     commit invalidates everything implicitly — no reset pass, no
     allocation, O(1) probes on both hit and miss. Collisions simply
     evict; entries are pure functions of (key, generation), so eviction
     only costs recomputation. *)
  cache_keys : int array; (* packed (chain,stage,src,dst); -1 = empty *)
  cache_stamps : int array; (* generation the slot was written at *)
  cache_vals : float array;
  mutable cache_weight : float; (* util_weight the cache contents belong to *)
  key_n : int; (* num_nodes, for key packing *)
  key_stages : int; (* max stages over chains, for key packing *)
}

let cache_bits = 14
let cache_slots = 1 lsl cache_bits

let cache_slot key =
  (* Fibonacci hashing of the packed key; [lsr] keeps it non-negative. *)
  (key * 0x2545F4914F6CDD1D) lsr (63 - cache_bits) land (cache_slots - 1)

let create m =
  let num_nodes = Sb_net.Topology.num_nodes (Model.topology m) in
  let max_stages = ref 1 in
  for c = 0 to Model.num_chains m - 1 do
    if Model.num_stages m c > !max_stages then max_stages := Model.num_stages m c
  done;
  {
    m;
    net = Sb_net.Load.create (Model.topology m) (Model.paths m);
    site_loads = Array.make (Model.num_sites m) 0.;
    vnf_loads = Array.init (Model.num_vnfs m) (fun _ -> Array.make (Model.num_sites m) 0.);
    generation = 0;
    cache_keys = Array.make cache_slots (-1);
    cache_stamps = Array.make cache_slots (-1);
    cache_vals = Array.make cache_slots 0.;
    cache_weight = nan;
    key_n = num_nodes;
    key_stages = !max_stages;
  }

let copy t =
  {
    t with
    net = Sb_net.Load.copy t.net;
    site_loads = Array.copy t.site_loads;
    vnf_loads = Array.map Array.copy t.vnf_loads;
    (* The copy diverges from here on: give it an empty cache of its own. *)
    cache_keys = Array.make cache_slots (-1);
    cache_stamps = Array.make cache_slots (-1);
    cache_vals = Array.make cache_slots 0.;
  }

let model t = t.m
let generation t = t.generation

let site_load t s = t.site_loads.(s)
let vnf_load t ~vnf ~site = t.vnf_loads.(vnf).(site)
let link_sb_load t e = Sb_net.Load.link_load t.net e

let link_utilization t e =
  let l = Sb_net.Topology.link (Model.topology t.m) e in
  (Model.background t.m e +. Sb_net.Load.link_load t.net e) /. l.bandwidth

let site_utilization t s = t.site_loads.(s) /. Model.site_capacity t.m s

let vnf_utilization t ~vnf ~site =
  let cap = Model.vnf_site_capacity t.m ~vnf ~site in
  if cap <= 0. then 0. else t.vnf_loads.(vnf).(site) /. cap

(* Charge compute for one endpoint of a stage flow: the VNF at [node] (if
   the element is a VNF) gains l_f * volume * frac. *)
let charge_compute t ~vnf_opt ~node ~volume =
  match vnf_opt with
  | None -> ()
  | Some f -> (
    match Model.site_of_node t.m node with
    | None -> invalid_arg "Load_state: VNF element at a node with no site"
    | Some s ->
      let load = Model.vnf_cpu_per_unit t.m f *. volume in
      t.vnf_loads.(f).(s) <- t.vnf_loads.(f).(s) +. load;
      t.site_loads.(s) <- t.site_loads.(s) +. load)

let add_stage_flow t ~chain ~stage ~src ~dst ~frac =
  t.generation <- t.generation + 1;
  let w = Model.fwd_traffic t.m ~chain ~stage in
  let v = Model.rev_traffic t.m ~chain ~stage in
  Sb_net.Load.add_flow t.net ~src ~dst ~volume:(w *. frac);
  Sb_net.Load.add_flow t.net ~src:dst ~dst:src ~volume:(v *. frac);
  let volume = (w +. v) *. frac in
  (* Element [stage] sends this stage's traffic; element [stage + 1]
     receives it (Eq. 4 charges both). Element 0 is the ingress and element
     L+1 the egress — neither is a VNF. *)
  let src_vnf = if stage = 0 then None else Model.stage_dst_vnf t.m ~chain ~stage:(stage - 1) in
  let dst_vnf = Model.stage_dst_vnf t.m ~chain ~stage in
  charge_compute t ~vnf_opt:src_vnf ~node:src ~volume;
  charge_compute t ~vnf_opt:dst_vnf ~node:dst ~volume

type binding = No_load | Link of int * float | Site of int * float | Vnf of int * int * float

let find_bottleneck t =
  let m = t.m in
  let topo = Model.topology m in
  let best = ref No_load in
  let alpha_of = function
    | No_load -> infinity
    | Link (_, a) | Site (_, a) | Vnf (_, _, a) -> a
  in
  let consider b = if alpha_of b < alpha_of !best then best := b in
  for e = 0 to Sb_net.Topology.num_links topo - 1 do
    let load = Sb_net.Load.link_load t.net e in
    if load > 1e-12 then begin
      let l = Sb_net.Topology.link topo e in
      let headroom = (Model.beta m *. l.bandwidth) -. Model.background m e in
      consider (Link (e, Float.max 0. headroom /. load))
    end
  done;
  for s = 0 to Model.num_sites m - 1 do
    if t.site_loads.(s) > 1e-12 then
      consider (Site (s, Model.site_capacity m s /. t.site_loads.(s)))
  done;
  for f = 0 to Model.num_vnfs m - 1 do
    List.iter
      (fun (s, cap) ->
        if t.vnf_loads.(f).(s) > 1e-12 then
          consider (Vnf (f, s, cap /. t.vnf_loads.(f).(s))))
      (Model.vnf_sites m f)
  done;
  !best

let max_alpha t =
  match find_bottleneck t with
  | No_load -> infinity
  | Link (_, a) | Site (_, a) | Vnf (_, _, a) -> a

let bottleneck t =
  match find_bottleneck t with
  | No_load -> "no load committed"
  | Link (e, a) ->
    let l = Sb_net.Topology.link (Model.topology t.m) e in
    Printf.sprintf "link %d (%s -> %s), alpha=%.3f"
      e
      (Sb_net.Topology.node_name (Model.topology t.m) l.src)
      (Sb_net.Topology.node_name (Model.topology t.m) l.dst)
      a
  | Site (s, a) -> Printf.sprintf "site %d compute, alpha=%.3f" s a
  | Vnf (f, s, a) ->
    Printf.sprintf "vnf %s at site %d, alpha=%.3f" (Model.vnf_name t.m f) s a

let stage_compute_cost t ~chain ~stage ~dst =
  let m = t.m in
  match Model.stage_dst_vnf m ~chain ~stage with
  | None -> 0.
  | Some f -> (
    match Model.site_of_node m dst with
    | None -> infinity
    | Some s ->
      let cap = Model.vnf_site_capacity m ~vnf:f ~site:s in
      if cap <= 0. then infinity
      else begin
        let w = Model.fwd_traffic m ~chain ~stage in
        let v = Model.rev_traffic m ~chain ~stage in
        let added = Model.vnf_cpu_per_unit m f *. (w +. v) in
        (* clamp the tiny negative residue a flow removal can leave *)
        let before = Float.max 0. (t.vnf_loads.(f).(s) /. cap) in
        let after = Float.max 0. ((t.vnf_loads.(f).(s) +. added) /. cap) in
        Sb_util.Convex_cost.cost after -. Sb_util.Convex_cost.cost before
      end)

(* A weight change orphans every cached entry; it happens at most once per
   solve, so a full stamp wipe is fine. *)
let cache_set_weight t util_weight =
  if t.cache_weight <> util_weight then begin
    Array.fill t.cache_stamps 0 cache_slots (-1);
    t.cache_weight <- util_weight
  end

let stage_cost_cached t ~util_weight ~chain ~stage ~src ~dst ~compute_cost =
  (* The pure-delay component is a single flat-array lookup in Paths. *)
  let delay = Sb_net.Paths.delay (Model.paths t.m) src dst in
  if delay = infinity then infinity
  else begin
    cache_set_weight t util_weight;
    let key =
      ((((chain * t.key_stages) + stage) * t.key_n) + src) * t.key_n + dst
    in
    let slot = cache_slot key in
    if t.cache_stamps.(slot) = t.generation && t.cache_keys.(slot) = key then
      t.cache_vals.(slot)
    else begin
      let m = t.m in
      let w = Model.fwd_traffic m ~chain ~stage in
      let v = Model.rev_traffic m ~chain ~stage in
      let net_cost = Sb_net.Load.path_network_cost_pair t.net ~src ~dst ~fwd:w ~rev:v in
      let compute_cost =
        match compute_cost with
        | Some c -> c
        | None -> stage_compute_cost t ~chain ~stage ~dst
      in
      let c = delay +. (util_weight *. (net_cost +. compute_cost)) in
      t.cache_keys.(slot) <- key;
      t.cache_stamps.(slot) <- t.generation;
      t.cache_vals.(slot) <- c;
      c
    end
  end

let stage_cost t ~util_weight ~chain ~stage ~src ~dst =
  if util_weight = 0. then Sb_net.Paths.delay (Model.paths t.m) src dst
  else stage_cost_cached t ~util_weight ~chain ~stage ~src ~dst ~compute_cost:None

let stage_cost_hinted t ~util_weight ~chain ~stage ~src ~dst ~compute_cost =
  if util_weight = 0. then Sb_net.Paths.delay (Model.paths t.m) src dst
  else
    stage_cost_cached t ~util_weight ~chain ~stage ~src ~dst
      ~compute_cost:(Some compute_cost)
