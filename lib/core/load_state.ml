type t = {
  inst : Instance.t;
  net : Sb_net.Load.t; (* Switchboard traffic only; background added on demand *)
  site_loads : float array;
  vnf_loads : float array; (* flattened: vnf * num_sites + site *)
  num_sites : int;
  mutable generation : int;
      (* bumped by every commit; stage-cost cache entries from an older
         generation are invalid (the committed load may touch their links
         or VNF sites) *)
  mutable dep_seen : int;
      (* Instance.deployment_epoch this state last synced against; a
         mismatch means a recompile_deployment happened under us and every
         cached stage cost may refer to a retired or new deployment *)
  (* Generation-stamped direct-mapped stage-cost cache. A slot is valid iff
     its stamp equals the current generation and its key matches, so a
     commit invalidates everything implicitly — no reset pass, no
     allocation, O(1) probes on both hit and miss. Collisions simply
     evict; entries are pure functions of (key, generation), so eviction
     only costs recomputation. Allocated lazily on first probe: single
     DP sweeps never hit it (every commit bumps the generation), and
     Eval's bisection arenas don't want ~400 KB of dead arrays. *)
  mutable cache_keys : int array; (* packed (chain,stage,src,dst); -1 = empty *)
  mutable cache_stamps : int array; (* generation the slot was written at *)
  mutable cache_vals : float array;
  mutable cache_weight : float; (* util_weight the cache contents belong to *)
  key_n : int; (* num_nodes, for key packing *)
  key_stages : int; (* max stages over chains, for key packing *)
  (* Hot fields of [inst], re-exposed to keep commits at field-read cost. *)
  stage_off : int array;
  fwd_base : float array;
  rev_base : float array;
  stage_vnf : int array;
  node_site : int array;
  vnf_cpu : float array;
  dep_cap : float array;
}

let cache_bits = 14
let cache_slots = 1 lsl cache_bits

let cache_slot key =
  (* Fibonacci hashing of the packed key; [lsr] keeps it non-negative. *)
  (key * 0x2545F4914F6CDD1D) lsr (63 - cache_bits) land (cache_slots - 1)

let of_instance inst =
  let m = Instance.model inst in
  {
    inst;
    net = Sb_net.Load.create (Model.topology m) (Model.paths m);
    site_loads = Array.make (Instance.num_sites inst) 0.;
    vnf_loads = Array.make (Instance.num_vnfs inst * Instance.num_sites inst) 0.;
    num_sites = Instance.num_sites inst;
    generation = 0;
    dep_seen = Instance.deployment_epoch inst;
    cache_keys = [||];
    cache_stamps = [||];
    cache_vals = [||];
    cache_weight = nan;
    key_n = Instance.num_nodes inst;
    key_stages = Instance.max_stages inst;
    stage_off = Instance.stage_off inst;
    fwd_base = Instance.fwd_base inst;
    rev_base = Instance.rev_base inst;
    stage_vnf = Instance.stage_vnf inst;
    node_site = Instance.node_site inst;
    vnf_cpu = Instance.vnf_cpu inst;
    dep_cap = Instance.dep_cap inst;
  }

let create m = of_instance (Instance.compile m)

let copy t =
  {
    t with
    net = Sb_net.Load.copy t.net;
    site_loads = Array.copy t.site_loads;
    vnf_loads = Array.copy t.vnf_loads;
    (* The copy diverges from here on: give it an empty cache of its own. *)
    cache_keys = [||];
    cache_stamps = [||];
    cache_vals = [||];
  }

let reset t =
  Sb_net.Load.reset t.net;
  Array.fill t.site_loads 0 (Array.length t.site_loads) 0.;
  Array.fill t.vnf_loads 0 (Array.length t.vnf_loads) 0.;
  (* One bump invalidates every cache entry stamped before the reset. *)
  t.generation <- t.generation + 1

let model t = Instance.model t.inst
let instance t = t.inst
let generation t = t.generation

(* The dense [dep_cap] alias is refilled in place by
   [Instance.recompile_deployment], so raw reads are always fresh; only
   the stamped stage-cost cache can go stale. One generation bump orphans
   it. *)
let sync_deployment t =
  let e = Instance.deployment_epoch t.inst in
  if e <> t.dep_seen then begin
    t.dep_seen <- e;
    t.generation <- t.generation + 1
  end

let site_load t s = t.site_loads.(s)
let vnf_load t ~vnf ~site = t.vnf_loads.((vnf * t.num_sites) + site)
let link_sb_load t e = Sb_net.Load.link_load t.net e

let link_utilization t e =
  let m = Instance.model t.inst in
  let l = Sb_net.Topology.link (Model.topology m) e in
  (Model.background m e +. Sb_net.Load.link_load t.net e) /. l.bandwidth

let site_utilization t s = t.site_loads.(s) /. (Instance.site_cap t.inst).(s)

let vnf_utilization t ~vnf ~site =
  let cap = t.dep_cap.((vnf * t.num_sites) + site) in
  if cap <= 0. then 0. else t.vnf_loads.((vnf * t.num_sites) + site) /. cap

(* Charge compute for one endpoint of a stage flow: the VNF at [node] (if
   the element is a VNF, [f >= 0]) gains l_f * volume * frac. *)
let charge_compute t ~f ~node ~volume =
  if f >= 0 then begin
    let s = t.node_site.(node) in
    if s < 0 then invalid_arg "Load_state: VNF element at a node with no site";
    let load = t.vnf_cpu.(f) *. volume in
    let fs = (f * t.num_sites) + s in
    t.vnf_loads.(fs) <- t.vnf_loads.(fs) +. load;
    t.site_loads.(s) <- t.site_loads.(s) +. load
  end

let add_stage_flow t ~chain ~stage ~src ~dst ~frac =
  t.generation <- t.generation + 1;
  let gz = t.stage_off.(chain) + stage in
  let scale = Instance.scale t.inst in
  let w = t.fwd_base.(gz) *. scale in
  let v = t.rev_base.(gz) *. scale in
  Sb_net.Load.add_flow t.net ~src ~dst ~volume:(w *. frac);
  Sb_net.Load.add_flow t.net ~src:dst ~dst:src ~volume:(v *. frac);
  let volume = (w +. v) *. frac in
  (* Element [stage] sends this stage's traffic; element [stage + 1]
     receives it (Eq. 4 charges both). Element 0 is the ingress and element
     L+1 the egress — neither is a VNF. *)
  let src_vnf = if stage = 0 then -1 else t.stage_vnf.(gz - 1) in
  charge_compute t ~f:src_vnf ~node:src ~volume;
  charge_compute t ~f:t.stage_vnf.(gz) ~node:dst ~volume

type binding = No_load | Link of int * float | Site of int * float | Vnf of int * int * float

let find_bottleneck t =
  let m = Instance.model t.inst in
  let topo = Model.topology m in
  let best = ref No_load in
  let alpha_of = function
    | No_load -> infinity
    | Link (_, a) | Site (_, a) | Vnf (_, _, a) -> a
  in
  let consider b = if alpha_of b < alpha_of !best then best := b in
  for e = 0 to Sb_net.Topology.num_links topo - 1 do
    let load = Sb_net.Load.link_load t.net e in
    if load > 1e-12 then begin
      let l = Sb_net.Topology.link topo e in
      let headroom = (Model.beta m *. l.bandwidth) -. Model.background m e in
      consider (Link (e, Float.max 0. headroom /. load))
    end
  done;
  let site_cap = Instance.site_cap t.inst in
  for s = 0 to t.num_sites - 1 do
    if t.site_loads.(s) > 1e-12 then
      consider (Site (s, site_cap.(s) /. t.site_loads.(s)))
  done;
  let vdep_off = Instance.vdep_off t.inst in
  let vdep_site = Instance.vdep_site t.inst in
  let vdep_cap = Instance.vdep_cap t.inst in
  for f = 0 to Instance.num_vnfs t.inst - 1 do
    for k = vdep_off.(f) to vdep_off.(f + 1) - 1 do
      let s = vdep_site.(k) in
      let load = t.vnf_loads.((f * t.num_sites) + s) in
      if load > 1e-12 then consider (Vnf (f, s, vdep_cap.(k) /. load))
    done
  done;
  !best

let max_alpha t =
  match find_bottleneck t with
  | No_load -> infinity
  | Link (_, a) | Site (_, a) | Vnf (_, _, a) -> a

let bottleneck t =
  let m = Instance.model t.inst in
  match find_bottleneck t with
  | No_load -> "no load committed"
  | Link (e, a) ->
    let l = Sb_net.Topology.link (Model.topology m) e in
    Printf.sprintf "link %d (%s -> %s), alpha=%.3f"
      e
      (Sb_net.Topology.node_name (Model.topology m) l.src)
      (Sb_net.Topology.node_name (Model.topology m) l.dst)
      a
  | Site (s, a) -> Printf.sprintf "site %d compute, alpha=%.3f" s a
  | Vnf (f, s, a) ->
    Printf.sprintf "vnf %s at site %d, alpha=%.3f" (Model.vnf_name m f) s a

let stage_compute_cost t ~chain ~stage ~dst =
  let gz = t.stage_off.(chain) + stage in
  let f = t.stage_vnf.(gz) in
  if f < 0 then 0.
  else begin
    let s = t.node_site.(dst) in
    if s < 0 then infinity
    else begin
      let cap = t.dep_cap.((f * t.num_sites) + s) in
      if cap <= 0. then infinity
      else begin
        let scale = Instance.scale t.inst in
        let w = t.fwd_base.(gz) *. scale in
        let v = t.rev_base.(gz) *. scale in
        let added = t.vnf_cpu.(f) *. (w +. v) in
        let cur = t.vnf_loads.((f * t.num_sites) + s) in
        (* clamp the tiny negative residue a flow removal can leave *)
        let before = Float.max 0. (cur /. cap) in
        let after = Float.max 0. ((cur +. added) /. cap) in
        Sb_util.Convex_cost.cost after -. Sb_util.Convex_cost.cost before
      end
    end
  end

let stage_net_cost t ~chain ~stage ~src ~dst =
  let gz = t.stage_off.(chain) + stage in
  let scale = Instance.scale t.inst in
  let w = t.fwd_base.(gz) *. scale in
  let v = t.rev_base.(gz) *. scale in
  Sb_net.Load.path_network_cost_pair t.net ~src ~dst ~fwd:w ~rev:v

let ensure_cache t =
  if Array.length t.cache_stamps = 0 then begin
    t.cache_keys <- Array.make cache_slots (-1);
    t.cache_stamps <- Array.make cache_slots (-1);
    t.cache_vals <- Array.make cache_slots 0.
  end

(* A weight change orphans every cached entry; it happens at most once per
   solve, so a full stamp wipe is fine. *)
let cache_set_weight t util_weight =
  if t.cache_weight <> util_weight then begin
    if Array.length t.cache_stamps > 0 then
      Array.fill t.cache_stamps 0 cache_slots (-1);
    t.cache_weight <- util_weight
  end

let stage_cost_cached t ~util_weight ~chain ~stage ~src ~dst ~compute_cost =
  (* The pure-delay component is a single flat-array lookup in Paths. *)
  let delay = Sb_net.Paths.delay (Model.paths (Instance.model t.inst)) src dst in
  if delay = infinity then infinity
  else begin
    sync_deployment t;
    ensure_cache t;
    cache_set_weight t util_weight;
    let key =
      ((((chain * t.key_stages) + stage) * t.key_n) + src) * t.key_n + dst
    in
    let slot = cache_slot key in
    if t.cache_stamps.(slot) = t.generation && t.cache_keys.(slot) = key then
      t.cache_vals.(slot)
    else begin
      let net_cost = stage_net_cost t ~chain ~stage ~src ~dst in
      let compute_cost =
        match compute_cost with
        | Some c -> c
        | None -> stage_compute_cost t ~chain ~stage ~dst
      in
      let c = delay +. (util_weight *. (net_cost +. compute_cost)) in
      t.cache_keys.(slot) <- key;
      t.cache_stamps.(slot) <- t.generation;
      t.cache_vals.(slot) <- c;
      c
    end
  end

let stage_cost t ~util_weight ~chain ~stage ~src ~dst =
  if util_weight = 0. then
    Sb_net.Paths.delay (Model.paths (Instance.model t.inst)) src dst
  else stage_cost_cached t ~util_weight ~chain ~stage ~src ~dst ~compute_cost:None

let stage_cost_hinted t ~util_weight ~chain ~stage ~src ~dst ~compute_cost =
  if util_weight = 0. then
    Sb_net.Paths.delay (Model.paths (Instance.model t.inst)) src dst
  else
    stage_cost_cached t ~util_weight ~chain ~stage ~src ~dst
      ~compute_cost:(Some compute_cost)
