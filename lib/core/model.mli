(** The Switchboard network model (paper Table 1).

    Gathers every traffic-engineering input: the network (nodes, links,
    delays, routing fractions — from [sb_net]), cloud sites [S] with
    compute capacities [m_s], the VNF catalog [F] with per-site deployments
    [S_f] and capacities [m_sf] and per-unit-traffic loads [l_f], and the
    customer chains [C] with ingress/egress nodes, ordered VNF lists [F_c],
    and per-stage forward/reverse traffic [w_cz]/[v_cz].

    A chain with [k] VNFs has [k + 2] elements (element 0 is the ingress,
    elements [1..k] the VNFs, element [k + 1] the egress) and [k + 1]
    stages; stage [z] (0-based) carries traffic from element [z] to element
    [z + 1]. *)

type t

type builder

val builder : Sb_net.Topology.t -> builder

val add_site : builder -> node:int -> capacity:float -> int
(** Declare a cloud site colocated with a network node (at most one site per
    node; raises [Invalid_argument] on a duplicate). Returns the site id. *)

val add_vnf : builder -> name:string -> cpu_per_unit:float -> int
(** Add a VNF type to the catalog; [cpu_per_unit] is the load [l_f] each
    unit of traffic imposes. Returns the VNF id. *)

val deploy : builder -> vnf:int -> site:int -> capacity:float -> unit
(** Make a VNF available at a site with capacity [m_sf]. *)

val add_chain :
  builder ->
  ?name:string ->
  ingress:int ->
  egress:int ->
  vnfs:int list ->
  fwd:float ->
  ?rev:float ->
  unit ->
  int
(** Define a chain. [fwd] ([rev]) is the per-stage forward (reverse) traffic;
    [rev] defaults to [0.]. [ingress]/[egress] are node ids. Every VNF in
    [vnfs] must be deployed at at least one site. Returns the chain id. *)

val add_chain_endpoints :
  builder ->
  ?name:string ->
  ingresses:(int * float) list ->
  egresses:(int * float) list ->
  vnfs:int list ->
  fwd:float ->
  ?rev:float ->
  unit ->
  int
(** The multi-ingress / multi-egress generalization the paper omits "for
    ease of exposition" (Section 4.1): a chain whose traffic enters at
    several edge nodes and leaves at several others, with fixed traffic
    shares per endpoint (normalized to sum to 1; e.g. an enterprise with
    three offices). Ingress shares weight stage-0 emissions and egress
    shares the final stage's deliveries; ingress-to-egress correlation is
    assumed proportional (independent shares). *)

val finalize : builder -> ?beta:float -> ?background:(int -> float) -> unit -> t
(** Freeze the model. [beta] is the MLU limit (default 1.0); [background]
    gives the non-Switchboard traffic [g_e] per link id (default 0). *)

(** {2 Accessors} *)

val topology : t -> Sb_net.Topology.t
val paths : t -> Sb_net.Paths.t
val beta : t -> float
val background : t -> int -> float

val num_sites : t -> int
val num_vnfs : t -> int
val num_chains : t -> int

val site_node : t -> int -> int
(** Network node a site is colocated with. *)

val site_capacity : t -> int -> float
val site_of_node : t -> int -> int option

val vnf_name : t -> int -> string
val vnf_cpu_per_unit : t -> int -> float

val vnf_sites : t -> int -> (int * float) list
(** [(site_id, m_sf)] deployments of a VNF, in increasing site id. *)

val vnf_site_capacity : t -> vnf:int -> site:int -> float
(** [m_sf]; 0. when the VNF is not deployed at the site. *)

val chain_name : t -> int -> string

val chain_ingress : t -> int -> int
(** The (first) ingress node. *)

val chain_egress : t -> int -> int

val chain_ingresses : t -> int -> (int * float) list
(** All ingress nodes with their normalized traffic shares. *)

val chain_egresses : t -> int -> (int * float) list
val chain_vnfs : t -> int -> int array
val chain_length : t -> int -> int
(** Number of VNFs [|F_c|]. *)

val num_stages : t -> int -> int
(** [|F_c| + 1]. *)

val fwd_traffic : t -> chain:int -> stage:int -> float
val rev_traffic : t -> chain:int -> stage:int -> float

val total_demand : t -> float
(** Sum over chains and stages of [w_cz + v_cz] — the denominator used to
    express throughput as a multiple of current demand. *)

val stage_src_nodes : t -> chain:int -> stage:int -> int list
(** [N_cz^src] as node ids (Eq. 1): the ingress node for stage 0, otherwise
    the nodes of the sites where the previous VNF is deployed. *)

val stage_dst_nodes : t -> chain:int -> stage:int -> int list
(** [N_cz^dst] (Eq. 2). *)

val stage_dst_vnf : t -> chain:int -> stage:int -> int option
(** VNF id of the element a stage leads into; [None] for the final stage
    (egress). *)

val with_scaled_traffic : t -> float -> t
(** A copy of the model with every chain's forward and reverse traffic
    multiplied by the given factor (used for load sweeps, Fig. 12c). *)

val with_site_capacity_delta : t -> float array -> t
(** A copy with each site's compute capacity increased by the per-site
    delta (capacity-planning baselines, Fig. 13b). Per-VNF-per-site
    capacities [m_sf] are scaled up in the same proportion as their
    site's capacity. *)

val with_extra_deployments : t -> (int * int * float) list -> t
(** [with_extra_deployments m \[(vnf, site, m_sf); ...\]] is a copy with
    additional VNF deployments (VNF placement planning, Fig. 13c).
    Deployments that already exist are left unchanged. *)

val without_deployments : t -> (int * int) list -> t
(** [without_deployments m \[(vnf, site); ...\]] is a copy with the listed
    VNF deployments removed — the scale-in edit, the inverse of
    {!with_extra_deployments}. Pairs not currently deployed are ignored;
    unknown VNF or site ids raise [Invalid_argument]. *)

val with_chain_traffic_factors : t -> float array -> t
(** Per-chain traffic scaling (one factor per chain) — the time-varying
    traffic-matrix extension sketched in the paper's future work. Raises
    [Invalid_argument] on an arity mismatch or negative factor. *)

val with_failed_links : t -> int list -> t
(** A copy of the model on a degraded network: the given link ids are
    removed, shortest paths and routing fractions recomputed, and the
    background traffic of surviving links preserved. Part of the failure
    evaluation the paper leaves to future work. Raises [Invalid_argument]
    on an unknown link id. *)

val with_failed_sites : t -> int list -> t
(** A copy where the given cloud sites have failed: every VNF deployment
    there disappears (the sites' nodes still forward network traffic).
    Chains whose VNFs lose all deployments become unroutable; routing
    schemes and {!val:Eval.max_load_factor}-style metrics see the loss. *)
