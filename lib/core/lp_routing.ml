type objective = Min_latency | Max_throughput

type result = {
  routing : Routing.t;
  objective_value : float;
  site_extra : float array option;
}

module Lp = Sb_lp.Lp

let solve ?cloud_budget m objective =
  (match (cloud_budget, objective) with
  | Some _, Min_latency ->
    invalid_arg "Lp_routing.solve: cloud_budget requires Max_throughput"
  | _ -> ());
  let paths = Model.paths m in
  let topo = Model.topology m in
  (* Candidate endpoint sets come from a compiled instance: the same lists
     in the same order as Model.stage_src_nodes/stage_dst_nodes, but built
     once instead of per stage — variable and constraint construction
     order (and hence simplex pivots) are unchanged. *)
  let inst = Instance.compile m in
  let p = Lp.create ~name:"chain_routing" () in
  (* --- variables ------------------------------------------------- *)
  let vars = Hashtbl.create 1024 in
  (* (chain, stage, n1, n2) -> var *)
  let stage_vars = Hashtbl.create 256 in
  (* (chain, stage) -> (n1, n2, var) list *)
  for c = 0 to Model.num_chains m - 1 do
    for z = 0 to Model.num_stages m c - 1 do
      let srcs = Instance.stage_src_nodes inst ~chain:c ~stage:z in
      let dsts = Instance.stage_dst_nodes inst ~chain:c ~stage:z in
      let vs =
        List.concat_map
          (fun n1 ->
            List.filter_map
              (fun n2 ->
                if n1 = n2 || Sb_net.Paths.reachable paths n1 n2 then begin
                  let v = Lp.add_var p (Printf.sprintf "x_c%d_z%d_%d_%d" c z n1 n2) in
                  Hashtbl.replace vars (c, z, n1, n2) v;
                  Some (n1, n2, v)
                end
                else None)
              dsts)
          srcs
      in
      Hashtbl.replace stage_vars (c, z) vs
    done
  done;
  let alpha =
    match objective with
    | Max_throughput -> Some (Lp.add_var p "alpha")
    | Min_latency -> None
  in
  let site_extra_vars =
    match cloud_budget with
    | None -> None
    | Some budget ->
      let a = Array.init (Model.num_sites m) (fun s -> Lp.add_var p (Printf.sprintf "a_s%d" s)) in
      Lp.add_constraint p ~name:"cloud_budget"
        (Array.to_list (Array.map (fun v -> (1., v)) a))
        Lp.Le budget;
      Some a
  in
  (* --- per-ingress emission and per-egress delivery --------------- *)
  (* Each ingress node emits its fixed share of the chain's traffic and
     each egress node receives its share (the multi-endpoint
     generalization; with single endpoints these are the paper's source
     constraint plus a redundant egress row). *)
  for c = 0 to Model.num_chains m - 1 do
    let last = Model.num_stages m c - 1 in
    List.iter
      (fun (node, share) ->
        let terms =
          List.filter_map
            (fun (n1, _, v) -> if n1 = node then Some (1., v) else None)
            (Hashtbl.find stage_vars (c, 0))
        in
        match alpha with
        | None ->
          Lp.add_constraint p ~name:(Printf.sprintf "src_c%d_n%d" c node) terms Lp.Eq share
        | Some a ->
          Lp.add_constraint p
            ~name:(Printf.sprintf "src_c%d_n%d" c node)
            ((-.share, a) :: terms)
            Lp.Eq 0.)
      (Model.chain_ingresses m c);
    List.iter
      (fun (node, share) ->
        let terms =
          List.filter_map
            (fun (_, n2, v) -> if n2 = node then Some (1., v) else None)
            (Hashtbl.find stage_vars (c, last))
        in
        match alpha with
        | None ->
          Lp.add_constraint p ~name:(Printf.sprintf "dst_c%d_n%d" c node) terms Lp.Eq share
        | Some a ->
          Lp.add_constraint p
            ~name:(Printf.sprintf "dst_c%d_n%d" c node)
            ((-.share, a) :: terms)
            Lp.Eq 0.)
      (Model.chain_egresses m c)
  done;
  (* --- flow conservation at every VNF element (Eq. 5) ------------ *)
  for c = 0 to Model.num_chains m - 1 do
    for z = 0 to Model.num_stages m c - 2 do
      let nodes = Instance.stage_dst_nodes inst ~chain:c ~stage:z in
      List.iter
        (fun node ->
          let inflow =
            List.filter_map
              (fun (_, d, v) -> if d = node then Some (1., v) else None)
              (Hashtbl.find stage_vars (c, z))
          in
          let outflow =
            List.filter_map
              (fun (s, _, v) -> if s = node then Some (-1., v) else None)
              (Hashtbl.find stage_vars (c, z + 1))
          in
          Lp.add_constraint p
            ~name:(Printf.sprintf "cons_c%d_e%d_n%d" c (z + 1) node)
            (inflow @ outflow) Lp.Eq 0.)
        nodes
    done
  done;
  (* --- compute loads (Eq. 4) ------------------------------------- *)
  (* Each variable charges the VNFs at both of its endpoints. Gather
     terms per site and per (vnf, site). *)
  let site_terms = Array.make (Model.num_sites m) [] in
  let vnf_terms = Hashtbl.create 64 in
  (* (vnf, site) -> terms *)
  let charge ~vnf_opt ~node coef v =
    match vnf_opt with
    | None -> ()
    | Some f -> (
      match Model.site_of_node m node with
      | None -> ()
      | Some s ->
        let load = Model.vnf_cpu_per_unit m f *. coef in
        site_terms.(s) <- (load, v) :: site_terms.(s);
        let cur = try Hashtbl.find vnf_terms (f, s) with Not_found -> [] in
        Hashtbl.replace vnf_terms (f, s) ((load, v) :: cur))
  in
  Hashtbl.iter
    (fun (c, z, n1, n2) v ->
      let coef = Model.fwd_traffic m ~chain:c ~stage:z +. Model.rev_traffic m ~chain:c ~stage:z in
      let src_vnf = if z = 0 then None else Model.stage_dst_vnf m ~chain:c ~stage:(z - 1) in
      let dst_vnf = Model.stage_dst_vnf m ~chain:c ~stage:z in
      charge ~vnf_opt:src_vnf ~node:n1 coef v;
      charge ~vnf_opt:dst_vnf ~node:n2 coef v)
    vars;
  Array.iteri
    (fun s terms ->
      if terms <> [] then begin
        let terms =
          match site_extra_vars with
          | Some a -> (-1., a.(s)) :: terms
          | None -> terms
        in
        Lp.add_constraint p ~name:(Printf.sprintf "site_%d" s) terms Lp.Le
          (Model.site_capacity m s)
      end)
    site_terms;
  Hashtbl.iter
    (fun (f, s) terms ->
      let cap = Model.vnf_site_capacity m ~vnf:f ~site:s in
      (* Extra site capacity grows the deployments there proportionally:
         m_sf * (1 + a_s / m_s), which is linear in a_s. *)
      let terms =
        match site_extra_vars with
        | Some a -> ((-.cap /. Model.site_capacity m s), a.(s)) :: terms
        | None -> terms
      in
      Lp.add_constraint p ~name:(Printf.sprintf "vnf_%d_s%d" f s) terms Lp.Le cap)
    vnf_terms;
  (* --- network cost / MLU (Eq. 6) -------------------------------- *)
  let link_terms = Array.make (Sb_net.Topology.num_links topo) [] in
  Hashtbl.iter
    (fun (c, z, n1, n2) v ->
      let w = Model.fwd_traffic m ~chain:c ~stage:z in
      let rv = Model.rev_traffic m ~chain:c ~stage:z in
      if n1 <> n2 then begin
        List.iter
          (fun (e, frac) -> link_terms.(e) <- (w *. frac, v) :: link_terms.(e))
          (Sb_net.Paths.fractions paths ~src:n1 ~dst:n2);
        if rv > 0. then
          List.iter
            (fun (e, frac) -> link_terms.(e) <- (rv *. frac, v) :: link_terms.(e))
            (Sb_net.Paths.fractions paths ~src:n2 ~dst:n1)
      end)
    vars;
  Array.iteri
    (fun e terms ->
      if terms <> [] then begin
        let l = Sb_net.Topology.link topo e in
        let rhs = (Model.beta m *. l.bandwidth) -. Model.background m e in
        Lp.add_constraint p ~name:(Printf.sprintf "mlu_%d" e) terms Lp.Le rhs
      end)
    link_terms;
  (* --- objective -------------------------------------------------- *)
  (match (objective, alpha) with
  | Min_latency, _ ->
    let terms = ref [] in
    Hashtbl.iter
      (fun (c, z, n1, n2) v ->
        let coef =
          (Model.fwd_traffic m ~chain:c ~stage:z +. Model.rev_traffic m ~chain:c ~stage:z)
          *. Sb_net.Paths.delay paths n1 n2
        in
        if coef > 0. then terms := (coef, v) :: !terms)
      vars;
    Lp.set_objective p Lp.Minimize !terms
  | Max_throughput, Some a -> Lp.set_objective p Lp.Maximize [ (1., a) ]
  | Max_throughput, None -> assert false);
  (* --- solve and extract ------------------------------------------ *)
  match Lp.solve p with
  | Lp.Infeasible -> Error "chain routing LP is infeasible"
  | Lp.Unbounded -> Error "chain routing LP is unbounded"
  | Lp.Optimal sol ->
    let scale =
      match alpha with
      | None -> 1.
      | Some a ->
        let av = Lp.value sol a in
        if av > 1e-9 then 1. /. av else 0.
    in
    let routing = Routing.of_instance inst in
    for c = 0 to Model.num_chains m - 1 do
      for z = 0 to Model.num_stages m c - 1 do
        let flows =
          List.filter_map
            (fun (n1, n2, v) ->
              let x = Lp.value sol v *. scale in
              if x > 1e-9 then Some (n1, n2, x) else None)
            (Hashtbl.find stage_vars (c, z))
        in
        Routing.set_stage routing ~chain:c ~stage:z flows
      done
    done;
    let objective_value =
      match objective with
      | Max_throughput -> Lp.objective_value sol
      | Min_latency ->
        let demand = Model.total_demand m in
        if demand > 0. then Lp.objective_value sol /. demand else 0.
    in
    let site_extra =
      Option.map (fun a -> Array.map (fun v -> Lp.value sol v) a) site_extra_vars
    in
    Ok { routing; objective_value; site_extra }
