(** Uniform evaluation of routing schemes (the metrics of Figs. 11-13).

    Throughput is the largest uniform demand-scaling factor a scheme can
    support (paper Section 4.2, cloud capacity planning objective; the
    y-axis of Figs. 12a/12b/13a as an absolute volume). For SB-LP this is
    the throughput LP's alpha. Load-aware heuristics (SB-DP, Compute-Aware,
    OneHop) get to re-route at each candidate load, so the value is found
    by binary search on the scaled demand; load-oblivious schemes route the
    same way at every scale, so one evaluation suffices. *)

type scheme =
  | Anycast
  | Compute_aware
  | Onehop
  | Dp_latency
  | Sb_dp
  | Sb_lp
      (** The LP with the objective matched to the metric: throughput LP
          for {!max_load_factor}, latency LP for {!latency}. *)

val scheme_name : scheme -> string

val all_schemes : scheme list

(** {2 Bisection constants}

    The search for {!max_load_factor} probes demand scalings against one
    reusable arena (a compiled {!Instance} whose scale is set per probe —
    no model copy, no fresh load state per probe). Its contract:

    - a factor is {e sustained} when the scheme's re-routed scaled demand
      supports alpha >= {!feasible_alpha} (1 minus a relative epsilon, so
      routing exactly to capacity counts as feasible);
    - the search first probes {!probe_floor}; failure there reports 0.;
    - otherwise the upper bound doubles from 1. while sustained, at most
      {!growth_guard} times (hitting the guard reports the last bound);
    - then [lo, hi] bisects until [(hi - lo) / hi <= tol], reporting [lo]
      — a sustained factor, i.e. the result errs low, within relative
      [tol] of the true boundary. *)

val feasible_alpha : float
(** [1. -. 1e-9]. *)

val default_tol : float
(** [0.02], the default relative bisection tolerance. *)

val probe_floor : float
(** [1e-6], the initial feasibility probe. *)

val growth_guard : int
(** [40] doublings maximum while growing the upper bound. *)

val route : ?seed:int -> Model.t -> scheme -> (Routing.t, string) Result.t
(** Route current demand. [seed] (default 1) drives SB-DP's chain order.
    For [Sb_lp] this solves the min-latency LP and falls back to the
    throughput LP when current demand is infeasible. *)

val max_load_factor : ?seed:int -> ?tol:float -> Model.t -> scheme -> float
(** Largest demand multiplier the scheme sustains with every link below
    [beta], every site below [m_s], and every deployment below [m_sf].
    [tol] is the relative binary-search tolerance (default
    {!default_tol}). On an SB-LP solver failure this logs a warning to
    stderr and returns 0. — use {!max_load_factor_result} to distinguish
    programmatically. *)

val max_load_factor_result :
  ?seed:int -> ?tol:float -> Model.t -> scheme -> (float, string) result
(** {!max_load_factor}, but an SB-LP solver failure is surfaced as
    [Error]. The throughput LP is feasible at alpha = 0 by construction,
    so [Error] always means the solver broke, never that the scheme
    supports nothing; heuristic schemes always return [Ok]. *)

val throughput : ?seed:int -> Model.t -> scheme -> float
(** [max_load_factor * total_demand]: absolute supported volume. *)

val latency : ?seed:int -> load:float -> Model.t -> scheme -> float
(** Demand-weighted mean chain latency (propagation + M/M/1 VNF queueing)
    when demand is scaled by [load] and the scheme routes that scaled
    demand. [infinity] when the scheme saturates a deployment at that load
    (the paper reports Anycast "cannot handle" loads beyond 10%% of
    SB-LP's). *)

(** {2 Parallel sweeps}

    Figure sweeps evaluate a grid of independent (model/load, scheme)
    cells; these fan the cells over OCaml domains via {!Sb_util.Par}. Each
    cell compiles a private arena — the only shared structures are the
    models and their paths, which are read-only — so results are
    bit-identical to the sequential loops they replace, in any domain
    count. *)

val throughput_grid :
  ?seed:int -> ?domains:int -> Model.t array -> scheme array -> float array array
(** [(throughput_grid models schemes).(i).(j) =
    throughput models.(i) schemes.(j)]. *)

val latency_grid :
  ?seed:int ->
  ?domains:int ->
  loads:float array ->
  Model.t ->
  scheme array ->
  float array array
(** [(latency_grid ~loads m schemes).(i).(j) =
    latency ~load:loads.(i) m schemes.(j)]. *)
