(** Chain routings: the decision variables [x_czn1n2] and their evaluation.

    A routing assigns, for every chain and stage, the fraction of that
    stage's traffic sent between each (source node, destination node) pair
    — exactly the [x] variables of the chain-routing problem (Section 4.2).
    Constructors build routings from single paths or weighted path sets;
    evaluators compute the supported throughput and mean chain latency that
    the paper's figures report. *)

type t

val create : Model.t -> t
(** All-zero routing (no chain routed). Equivalent to
    [of_instance (Instance.compile m)]. *)

val of_instance : Instance.t -> t
(** All-zero routing over a pre-compiled instance. Storage is packed
    parallel arrays per stage (insertion-ordered, capacity-doubling); the
    list-shaped API below is a shim over it. *)

val instance : t -> Instance.t
val model : t -> Model.t

val reset : t -> unit
(** Drop every stage flow in place (capacities are kept) — the arena
    primitive behind {!Eval}'s bisection. *)

val set_stage : t -> chain:int -> stage:int -> (int * int * float) list -> unit
(** Replace a stage's flow list [(src_node, dst_node, fraction)]. *)

val stage_flows : t -> chain:int -> stage:int -> (int * int * float) list

val add_path : t -> chain:int -> nodes:int array -> frac:float -> unit
(** Add fraction [frac] of a chain along the element-node sequence [nodes]
    (length [chain_length + 2]: ingress, one node per VNF, egress).
    Raises [Invalid_argument] on a length mismatch. *)

val single_path : Model.t -> (int -> int array) -> t
(** [single_path m path_of_chain] routes every chain fully along one path. *)

val validate : t -> (unit, string) result
(** Check that for every chain: stage-0 fractions sum to 1, flow is
    conserved at every intermediate element/site, flows connect only valid
    stage endpoints (Eqs. 1-2), VNF elements sit on nodes where that VNF is
    deployed, and fractions are non-negative. *)

val load_state : t -> Load_state.t
(** Commit the whole routing into a fresh load state. *)

val max_alpha : t -> float
(** {!Load_state.max_alpha} of {!load_state}: the throughput metric. *)

val max_alpha_into : Load_state.t -> t -> float
(** {!max_alpha} evaluated in a caller-owned arena: {!Load_state.reset}s
    the state, commits the packed flows (chains ascending, stages
    ascending, insertion order — the exact {!load_state} commit order, so
    the result is bit-identical) and reads the bottleneck. No allocation.
    Raises [Invalid_argument] unless the state was compiled from this
    routing's instance (physical equality). *)

val supported_throughput : t -> float
(** [max_alpha * total model demand] — the absolute supported throughput
    reported in Figs. 12a/12b/13a/13b. *)

val mean_latency : ?alpha:float -> ?vnf_service_time:float -> t -> float
(** Demand-weighted mean chain latency (the paper's latency metric,
    cf. Eq. 3 normalized by total traffic), at load scaling [alpha]
    (default 1): per-stage propagation delay plus an M/M/1-style sojourn
    [vnf_service_time / (1 - rho)] at each receiving VNF deployment, where
    [rho] is that deployment's utilization under [alpha]-scaled load.
    [infinity] once any traversed deployment saturates.
    [vnf_service_time] defaults to 1 ms. *)

val propagation_latency : t -> float
(** Mean latency from propagation only (no queueing). *)

val decompose_paths : t -> chain:int -> (int array * float) list
(** Decompose a chain's (splittable) stage flows into end-to-end paths with
    fractions: each path is an element-node sequence of length
    [chain_length + 2]; fractions sum to the chain's routed fraction.
    Standard flow decomposition — at most one path per flow-carrying arc. *)

val pp_chain : Format.formatter -> t -> int -> unit
(** Render one chain's routes for humans. *)
