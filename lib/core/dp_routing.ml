let default_util_weight = 0.05

(* Candidate nodes for element [z] of a chain (0 = ingress, L+1 = egress). *)
let element_nodes inst chain ~ingress ~egress z =
  let len = Instance.num_stages inst chain - 1 in
  if z = 0 then [| ingress |]
  else if z = len + 1 then [| egress |]
  else Array.of_list (Instance.stage_dst_nodes inst ~chain ~stage:(z - 1))

let best_path ?ingress ?egress state ~util_weight ~chain =
  let inst = Load_state.instance state in
  let m = Instance.model inst in
  let ingress = match ingress with Some i -> i | None -> Model.chain_ingress m chain in
  let egress = match egress with Some e -> e | None -> Model.chain_egress m chain in
  let len = Instance.num_stages inst chain - 1 in
  (* Per-element candidate arrays plus parallel cost/parent tables — the DP
     scans them with plain loops instead of rebuilding List.map/fold chains
     per element. *)
  let nodes_of = Array.init (len + 2) (element_nodes inst chain ~ingress ~egress) in
  let cost = Array.map (fun ns -> Array.make (Array.length ns) infinity) nodes_of in
  let parent = Array.map (fun ns -> Array.make (Array.length ns) (-1)) nodes_of in
  cost.(0).(0) <- 0.;
  for z = 1 to len + 1 do
    let prev_nodes = nodes_of.(z - 1) and prev_cost = cost.(z - 1) in
    let cur_nodes = nodes_of.(z) in
    for j = 0 to Array.length cur_nodes - 1 do
      let node = cur_nodes.(j) in
      (* The compute-utilization term depends only on (stage, dst): hoist it
         out of the source scan. *)
      let cc =
        if util_weight = 0. then 0.
        else Load_state.stage_compute_cost state ~chain ~stage:(z - 1) ~dst:node
      in
      let bc = ref infinity and bp = ref (-1) in
      for i = 0 to Array.length prev_nodes - 1 do
        let pc = prev_cost.(i) in
        if pc < infinity then begin
          let c =
            pc
            +. Load_state.stage_cost_hinted state ~util_weight ~chain
                 ~stage:(z - 1) ~src:prev_nodes.(i) ~dst:node ~compute_cost:cc
          in
          if c < !bc then begin
            bc := c;
            bp := prev_nodes.(i)
          end
        end
      done;
      cost.(z).(j) <- !bc;
      parent.(z).(j) <- !bp
    done
  done;
  (* Walk parents back from the egress. *)
  if Array.length nodes_of.(len + 1) = 1 && cost.(len + 1).(0) < infinity then begin
    let nodes = Array.make (len + 2) egress in
    let rec back z node =
      nodes.(z) <- node;
      if z > 0 then begin
        let idx = ref (-1) in
        Array.iteri (fun i n -> if !idx < 0 && n = node then idx := i) nodes_of.(z);
        back (z - 1) parent.(z).(!idx)
      end
    in
    back len parent.(len + 1).(0);
    nodes.(len + 1) <- egress;
    Some nodes
  end
  else None

(* ------------------------- Solve scratch arena ----------------------- *)

(* Per-solve scratch: flat DP tables plus dense per-resource demand
   accumulators for path_headroom, allocated once per solve (or per reused
   eval arena) instead of per chain/per probe. The stamp arrays make
   clearing the dense accumulators O(touched). *)
type scratch = {
  mutable stride : int; (* DP table row width *)
  mutable cost : float array; (* [z * stride + j] *)
  mutable parent : int array; (* candidate index at element z - 1 *)
  mutable epoch : int;
  link_demand : float array;
  link_stamp : int array;
  link_touched : int array;
  mutable link_n : int;
  site_demand : float array;
  site_stamp : int array;
  site_touched : int array;
  mutable site_n : int;
  vnf_demand : float array; (* vnf * num_sites + site *)
  vnf_stamp : int array;
  vnf_touched : int array;
  mutable vnf_n : int;
}

let make_scratch inst =
  let ns = Instance.num_sites inst in
  let nf = Instance.num_vnfs inst in
  let nl = Sb_net.Topology.num_links (Model.topology (Instance.model inst)) in
  {
    stride = 0;
    cost = [||];
    parent = [||];
    epoch = 0;
    link_demand = Array.make (max 1 nl) 0.;
    link_stamp = Array.make (max 1 nl) 0;
    link_touched = Array.make (max 1 nl) 0;
    link_n = 0;
    site_demand = Array.make (max 1 ns) 0.;
    site_stamp = Array.make (max 1 ns) 0;
    site_touched = Array.make (max 1 ns) 0;
    site_n = 0;
    vnf_demand = Array.make (max 1 (nf * ns)) 0.;
    vnf_stamp = Array.make (max 1 (nf * ns)) 0;
    vnf_touched = Array.make (max 1 (nf * ns)) 0;
    vnf_n = 0;
  }

let ensure_tables scr ~rows ~stride =
  if rows * stride > Array.length scr.cost then begin
    scr.cost <- Array.make (rows * stride) infinity;
    scr.parent <- Array.make (rows * stride) (-1)
  end;
  scr.stride <- stride

(* The single-sweep DP used by [solve]. Bit-identical to [best_path] but
   without cache traffic (within one solve every commit bumps the load
   generation, so the stage-cost cache can never hit) and with a
   delay-lower-bound prune: [stage_cost = delay + uw * (net + cc)] with
   [net >= 0] on the monotone non-negative loads a solve accumulates, and
   float rounding is monotone, so
   [pc +. (delay +. uw *. cc) >= best] implies the full cost cannot beat
   [best] under the strict [<] tie-break — the pair is skipped without
   touching the link arrays. Not used by [resolve]: lift-outs can leave
   ~1e-16 negative load residues that make [net] infinitesimally negative
   and void the bound. *)
let best_path_pruned scr state ~util_weight ~chain ~ingress ~egress =
  let inst = Load_state.instance state in
  let paths = Model.paths (Instance.model inst) in
  let base = (Instance.stage_off inst).(chain) in
  let len = Instance.num_stages inst chain - 1 in
  let dst_off = Instance.dst_off inst in
  let dst_nodes = Instance.dst_nodes inst in
  let cand_count z =
    if z = 0 || z = len + 1 then 1 else dst_off.(base + z) - dst_off.(base + z - 1)
  in
  let node_at z j =
    if z = 0 then ingress
    else if z = len + 1 then egress
    else dst_nodes.(dst_off.(base + z - 1) + j)
  in
  let stride = ref 1 in
  for z = 1 to len do
    let c = cand_count z in
    if c > !stride then stride := c
  done;
  ensure_tables scr ~rows:(len + 2) ~stride:!stride;
  let stride = !stride in
  let cost = scr.cost and parent = scr.parent in
  cost.(0) <- 0.;
  for z = 1 to len + 1 do
    let prev_n = cand_count (z - 1) in
    let cur_n = cand_count z in
    let prow = (z - 1) * stride in
    let crow = z * stride in
    for j = 0 to cur_n - 1 do
      let node = node_at z j in
      let bc = ref infinity and bp = ref (-1) in
      if util_weight = 0. then
        for i = 0 to prev_n - 1 do
          let pc = cost.(prow + i) in
          if pc < infinity then begin
            let c = pc +. Sb_net.Paths.delay paths (node_at (z - 1) i) node in
            if c < !bc then begin
              bc := c;
              bp := i
            end
          end
        done
      else begin
        let cc = Load_state.stage_compute_cost state ~chain ~stage:(z - 1) ~dst:node in
        let uwcc = util_weight *. cc in
        for i = 0 to prev_n - 1 do
          let pc = cost.(prow + i) in
          if pc < infinity then begin
            let src = node_at (z - 1) i in
            let delay = Sb_net.Paths.delay paths src node in
            if pc +. (delay +. uwcc) < !bc then begin
              let net = Load_state.stage_net_cost state ~chain ~stage:(z - 1) ~src ~dst:node in
              let c = pc +. (delay +. (util_weight *. (net +. cc))) in
              if c < !bc then begin
                bc := c;
                bp := i
              end
            end
          end
        done
      end;
      cost.(crow + j) <- !bc;
      parent.(crow + j) <- !bp
    done
  done;
  if cost.(((len + 1) * stride)) < infinity then begin
    let nodes = Array.make (len + 2) egress in
    let j = ref parent.(((len + 1) * stride)) in
    for z = len downto 1 do
      nodes.(z) <- node_at z !j;
      j := parent.((z * stride) + !j)
    done;
    nodes.(0) <- ingress;
    Some nodes
  end
  else None

(* Largest fraction of the chain the path can carry within remaining link,
   site, and deployment capacities. Demand is accumulated per resource over
   the whole path first (a VNF is charged on both its inbound and outbound
   stages per Eq. 4, and a link may carry several stages), then the binding
   resource determines the fraction — an exact min over per-resource
   ratios, so the dense accumulation order is free to differ from the
   hashtable iteration order this replaces. *)
let path_headroom scr state chain nodes =
  let inst = Load_state.instance state in
  let m = Instance.model inst in
  let topo = Model.topology m in
  let paths = Model.paths m in
  let base = (Instance.stage_off inst).(chain) in
  let fwd_base = Instance.fwd_base inst in
  let rev_base = Instance.rev_base inst in
  let scale = Instance.scale inst in
  let stage_vnf = Instance.stage_vnf inst in
  let node_site = Instance.node_site inst in
  let vnf_cpu = Instance.vnf_cpu inst in
  let dep_cap = Instance.dep_cap inst in
  let site_cap = Instance.site_cap inst in
  let ns = Instance.num_sites inst in
  scr.epoch <- scr.epoch + 1;
  let ep = scr.epoch in
  scr.link_n <- 0;
  scr.site_n <- 0;
  scr.vnf_n <- 0;
  let bump_link e amount =
    if scr.link_stamp.(e) = ep then
      scr.link_demand.(e) <- scr.link_demand.(e) +. amount
    else begin
      scr.link_stamp.(e) <- ep;
      scr.link_demand.(e) <- amount;
      scr.link_touched.(scr.link_n) <- e;
      scr.link_n <- scr.link_n + 1
    end
  in
  let charge_compute f node volume =
    if f >= 0 then begin
      let s = node_site.(node) in
      if s >= 0 then begin
        let load = vnf_cpu.(f) *. volume in
        let fs = (f * ns) + s in
        (if scr.vnf_stamp.(fs) = ep then
           scr.vnf_demand.(fs) <- scr.vnf_demand.(fs) +. load
         else begin
           scr.vnf_stamp.(fs) <- ep;
           scr.vnf_demand.(fs) <- load;
           scr.vnf_touched.(scr.vnf_n) <- fs;
           scr.vnf_n <- scr.vnf_n + 1
         end);
        if scr.site_stamp.(s) = ep then
          scr.site_demand.(s) <- scr.site_demand.(s) +. load
        else begin
          scr.site_stamp.(s) <- ep;
          scr.site_demand.(s) <- load;
          scr.site_touched.(scr.site_n) <- s;
          scr.site_n <- scr.site_n + 1
        end
      end
    end
  in
  for z = 0 to Array.length nodes - 2 do
    let src = nodes.(z) and dst = nodes.(z + 1) in
    let w = fwd_base.(base + z) *. scale in
    let v = rev_base.(base + z) *. scale in
    Sb_net.Paths.iter_fractions paths ~src ~dst (fun e frac ->
        bump_link e (w *. frac));
    Sb_net.Paths.iter_fractions paths ~src:dst ~dst:src (fun e frac ->
        bump_link e (v *. frac));
    let src_vnf = if z = 0 then -1 else stage_vnf.(base + z - 1) in
    charge_compute src_vnf src (w +. v);
    charge_compute stage_vnf.(base + z) dst (w +. v)
  done;
  let cap = ref infinity in
  let consider room per_unit =
    if per_unit > 1e-12 then cap := Float.min !cap (room /. per_unit)
  in
  for k = 0 to scr.link_n - 1 do
    let e = scr.link_touched.(k) in
    let l = Sb_net.Topology.link topo e in
    let room =
      (Model.beta m *. l.bandwidth) -. Model.background m e
      -. Load_state.link_sb_load state e
    in
    consider room scr.link_demand.(e)
  done;
  for k = 0 to scr.vnf_n - 1 do
    let fs = scr.vnf_touched.(k) in
    consider
      (dep_cap.(fs) -. Load_state.vnf_load state ~vnf:(fs / ns) ~site:(fs mod ns))
      scr.vnf_demand.(fs)
  done;
  for k = 0 to scr.site_n - 1 do
    let s = scr.site_touched.(k) in
    consider (site_cap.(s) -. Load_state.site_load state s) scr.site_demand.(s)
  done;
  Float.max 0. !cap

let commit state chain nodes frac =
  for z = 0 to Array.length nodes - 2 do
    Load_state.add_stage_flow state ~chain ~stage:z ~src:nodes.(z) ~dst:nodes.(z + 1)
      ~frac
  done

let chain_order ?rng m =
  let order = Array.init (Model.num_chains m) (fun c -> c) in
  (match rng with Some r -> Sb_util.Rng.shuffle r order | None -> ());
  order

let min_split = 0.02

(* Route one (ingress, egress) pair of a chain, carrying [share] of the
   chain's traffic; splits across successive least-cost routes as capacity
   runs out (Section 4.4). [pruned] selects the cache-free pruned DP sweep
   (single solve over monotone loads) vs. the cached one (resolve, where
   lifted-out loads void the prune's lower bound). *)
let route_pair scr ~pruned state routing ~util_weight ~max_routes chain ~ingress ~egress ~share =
  let rec go remaining routes_left =
    if remaining > 1e-9 then begin
      let path =
        if pruned then best_path_pruned scr state ~util_weight ~chain ~ingress ~egress
        else best_path ~ingress ~egress state ~util_weight ~chain
      in
      match path with
      | None -> () (* unroutable chain: leave unrouted; validate will flag *)
      | Some nodes ->
        let headroom =
          if util_weight = 0. then remaining else path_headroom scr state chain nodes
        in
        let frac =
          if routes_left <= 1 || headroom >= remaining -. 1e-9 || headroom < min_split
          then remaining (* last route, enough room, or saturated: take it all *)
          else Float.min remaining headroom
        in
        Routing.add_path routing ~chain ~nodes ~frac;
        commit state chain nodes frac;
        go (remaining -. frac) (routes_left - 1)
    end
  in
  go share max_routes

let route_chain scr ~pruned state routing ~util_weight ~max_routes chain =
  let m = Load_state.model state in
  List.iter
    (fun (ingress, ishare) ->
      List.iter
        (fun (egress, eshare) ->
          route_pair scr ~pruned state routing ~util_weight ~max_routes chain
            ~ingress ~egress ~share:(ishare *. eshare))
        (Model.chain_egresses m chain))
    (Model.chain_ingresses m chain)

let solve_into ?(util_weight = default_util_weight) ?(max_routes = 8) ?rng state routing =
  let inst = Load_state.instance state in
  if not (Routing.instance routing == inst) then
    invalid_arg "Dp_routing.solve_into: routing compiled from a different instance";
  Load_state.reset state;
  Routing.reset routing;
  let scr = make_scratch inst in
  Array.iter
    (fun c -> route_chain scr ~pruned:true state routing ~util_weight ~max_routes c)
    (chain_order ?rng (Instance.model inst));
  routing

let solve ?util_weight ?max_routes ?rng m =
  let inst = Instance.compile m in
  solve_into ?util_weight ?max_routes ?rng (Load_state.of_instance inst)
    (Routing.of_instance inst)

let dp_latency ?rng m = solve ~util_weight:0. ~max_routes:1 ?rng m

(* ------------------------ Incremental re-solve ---------------------- *)

type resolve_stats = {
  rerouted : int list;
  considered : int;
  over_threshold : int;
}

let path_cost state ~util_weight chain nodes =
  let c = ref 0. in
  for z = 0 to Array.length nodes - 2 do
    c :=
      !c
      +. Load_state.stage_cost state ~util_weight ~chain ~stage:z ~src:nodes.(z)
           ~dst:nodes.(z + 1)
  done;
  !c

(* Cost of the chain's committed route set as a marginal insertion onto
   the rest of the load (the chain itself must be lifted out first,
   otherwise its own contribution sits on the steep convex region and
   inflates every comparison into an apparent gain). *)
let current_cost state ~util_weight chain paths =
  List.fold_left
    (fun acc (nodes, frac) -> acc +. (frac *. path_cost state ~util_weight chain nodes))
    0. paths

(* Cost of the chain's best single route per endpoint pair on the same
   lifted-out load — marginal vs marginal, so the hysteresis threshold
   compares like with like. *)
let alternative_cost state ~util_weight chain =
  let m = Load_state.model state in
  let total = ref 0. and feasible = ref true in
  List.iter
    (fun (ingress, ishare) ->
      List.iter
        (fun (egress, eshare) ->
          match best_path ~ingress ~egress state ~util_weight ~chain with
          | Some nodes ->
            total := !total +. (ishare *. eshare *. path_cost state ~util_weight chain nodes)
          | None -> feasible := false)
        (Model.chain_egresses m chain))
    (Model.chain_ingresses m chain);
  if !feasible then Some !total else None

let resolve ?(util_weight = default_util_weight) ?(max_routes = 8) ?(hysteresis = 0.1)
    ?(churn_budget = max_int) ~prev m =
  let inst = Instance.compile m in
  let routing = Routing.of_instance inst in
  let state = Load_state.of_instance inst in
  let scr = make_scratch inst in
  let n = Model.num_chains m in
  (* Re-commit the previous paths under [m]'s (possibly measured/shifted)
     demand and topology. [prev] may belong to a structurally identical
     sibling of [m] (same chains/stages, different traffic or failed
     links). *)
  let prev_paths = Array.init n (fun c -> Routing.decompose_paths prev ~chain:c) in
  for c = 0 to n - 1 do
    List.iter
      (fun (nodes, frac) ->
        Routing.add_path routing ~chain:c ~nodes ~frac;
        commit state c nodes frac)
      prev_paths.(c)
  done;
  (* Scan phase: lift each chain out, cost its current route set and its
     best alternative as the same marginal insertion, put it back. Between
     the lift and the re-commit nothing else mutates, so the load-state
     generation is fixed and the stage-cost cache is shared across the
     chain's current-route costing AND its whole DP sweep. An unrouted
     chain (dropped by an earlier epoch or unroutable at creation) scores
     infinite gain: routing it at all is the best move. *)
  let candidates = ref [] in
  let considered = ref 0 in
  for c = 0 to n - 1 do
    let lifted = prev_paths.(c) <> [] in
    if lifted then begin
      incr considered;
      List.iter (fun (nodes, frac) -> commit state c nodes (-.frac)) prev_paths.(c)
    end;
    let cur =
      if lifted then current_cost state ~util_weight c prev_paths.(c) else infinity
    in
    let alt = alternative_cost state ~util_weight c in
    if lifted then
      List.iter (fun (nodes, frac) -> commit state c nodes frac) prev_paths.(c);
    match alt with
    | None -> () (* no feasible route at all: leave the chain as it is *)
    | Some alt ->
      let gain =
        if cur = infinity then infinity
        else if alt <= 1e-12 then if cur > 1e-12 then infinity else 0.
        else (cur -. alt) /. alt
      in
      if gain > hysteresis then candidates := (c, gain) :: !candidates
  done;
  let ranked =
    List.sort
      (fun (c1, g1) (c2, g2) ->
        match compare (g2 : float) g1 with 0 -> compare (c1 : int) c2 | o -> o)
      !candidates
  in
  let selected = List.filteri (fun i _ -> i < churn_budget) ranked in
  let rerouted = List.map fst selected in
  (* Re-route phase: lift each selected chain's load out, then route it
     afresh against everything else (sequential re-commit, mirroring
     [solve]; later selections see earlier moves). *)
  List.iter
    (fun c ->
      for stage = 0 to Model.num_stages m c - 1 do
        List.iter
          (fun (src, dst, frac) ->
            if frac > 1e-12 then
              Load_state.add_stage_flow state ~chain:c ~stage ~src ~dst ~frac:(-.frac))
          (Routing.stage_flows routing ~chain:c ~stage);
        Routing.set_stage routing ~chain:c ~stage []
      done;
      route_chain scr ~pruned:false state routing ~util_weight ~max_routes c)
    rerouted;
  (routing, { rerouted; considered = !considered; over_threshold = List.length ranked })
