let default_util_weight = 0.05

(* Candidate nodes for element [z] of a chain (0 = ingress, L+1 = egress). *)
let element_nodes m chain ~ingress ~egress z =
  let len = Model.chain_length m chain in
  if z = 0 then [| ingress |]
  else if z = len + 1 then [| egress |]
  else Array.of_list (Model.stage_dst_nodes m ~chain ~stage:(z - 1))

let best_path ?ingress ?egress state ~util_weight ~chain =
  let m = Load_state.model state in
  let ingress = match ingress with Some i -> i | None -> Model.chain_ingress m chain in
  let egress = match egress with Some e -> e | None -> Model.chain_egress m chain in
  let len = Model.chain_length m chain in
  (* Per-element candidate arrays plus parallel cost/parent tables — the DP
     scans them with plain loops instead of rebuilding List.map/fold chains
     per element. *)
  let nodes_of = Array.init (len + 2) (element_nodes m chain ~ingress ~egress) in
  let cost = Array.map (fun ns -> Array.make (Array.length ns) infinity) nodes_of in
  let parent = Array.map (fun ns -> Array.make (Array.length ns) (-1)) nodes_of in
  cost.(0).(0) <- 0.;
  for z = 1 to len + 1 do
    let prev_nodes = nodes_of.(z - 1) and prev_cost = cost.(z - 1) in
    let cur_nodes = nodes_of.(z) in
    for j = 0 to Array.length cur_nodes - 1 do
      let node = cur_nodes.(j) in
      (* The compute-utilization term depends only on (stage, dst): hoist it
         out of the source scan. *)
      let cc =
        if util_weight = 0. then 0.
        else Load_state.stage_compute_cost state ~chain ~stage:(z - 1) ~dst:node
      in
      let bc = ref infinity and bp = ref (-1) in
      for i = 0 to Array.length prev_nodes - 1 do
        let pc = prev_cost.(i) in
        if pc < infinity then begin
          let c =
            pc
            +. Load_state.stage_cost_hinted state ~util_weight ~chain
                 ~stage:(z - 1) ~src:prev_nodes.(i) ~dst:node ~compute_cost:cc
          in
          if c < !bc then begin
            bc := c;
            bp := prev_nodes.(i)
          end
        end
      done;
      cost.(z).(j) <- !bc;
      parent.(z).(j) <- !bp
    done
  done;
  (* Walk parents back from the egress. *)
  if Array.length nodes_of.(len + 1) = 1 && cost.(len + 1).(0) < infinity then begin
    let nodes = Array.make (len + 2) egress in
    let rec back z node =
      nodes.(z) <- node;
      if z > 0 then begin
        let idx = ref (-1) in
        Array.iteri (fun i n -> if !idx < 0 && n = node then idx := i) nodes_of.(z);
        back (z - 1) parent.(z).(!idx)
      end
    in
    back len parent.(len + 1).(0);
    nodes.(len + 1) <- egress;
    Some nodes
  end
  else None

(* Largest fraction of the chain the path can carry within remaining link,
   site, and deployment capacities. Demand is accumulated per resource over
   the whole path first (a VNF is charged on both its inbound and outbound
   stages per Eq. 4, and a link may carry several stages), then the binding
   resource determines the fraction. *)
let path_headroom state chain nodes =
  let m = Load_state.model state in
  let topo = Model.topology m in
  let paths = Model.paths m in
  let link_demand = Hashtbl.create 16 in
  let vnf_demand = Hashtbl.create 8 in
  let site_demand = Hashtbl.create 8 in
  let bump tbl key amount =
    let cur = try Hashtbl.find tbl key with Not_found -> 0. in
    Hashtbl.replace tbl key (cur +. amount)
  in
  let charge_compute vnf_opt node volume =
    match (vnf_opt, Model.site_of_node m node) with
    | Some f, Some s ->
      let load = Model.vnf_cpu_per_unit m f *. volume in
      bump vnf_demand (f, s) load;
      bump site_demand s load
    | _ -> ()
  in
  for z = 0 to Array.length nodes - 2 do
    let src = nodes.(z) and dst = nodes.(z + 1) in
    let w = Model.fwd_traffic m ~chain ~stage:z in
    let v = Model.rev_traffic m ~chain ~stage:z in
    Sb_net.Paths.iter_fractions paths ~src ~dst (fun e frac ->
        bump link_demand e (w *. frac));
    Sb_net.Paths.iter_fractions paths ~src:dst ~dst:src (fun e frac ->
        bump link_demand e (v *. frac));
    let src_vnf = if z = 0 then None else Model.stage_dst_vnf m ~chain ~stage:(z - 1) in
    charge_compute src_vnf src (w +. v);
    charge_compute (Model.stage_dst_vnf m ~chain ~stage:z) dst (w +. v)
  done;
  let cap = ref infinity in
  let consider room per_unit =
    if per_unit > 1e-12 then cap := Float.min !cap (room /. per_unit)
  in
  Hashtbl.iter
    (fun e demand ->
      let l = Sb_net.Topology.link topo e in
      let room =
        (Model.beta m *. l.bandwidth) -. Model.background m e
        -. Load_state.link_sb_load state e
      in
      consider room demand)
    link_demand;
  Hashtbl.iter
    (fun (f, s) demand ->
      consider
        (Model.vnf_site_capacity m ~vnf:f ~site:s -. Load_state.vnf_load state ~vnf:f ~site:s)
        demand)
    vnf_demand;
  Hashtbl.iter
    (fun s demand ->
      consider (Model.site_capacity m s -. Load_state.site_load state s) demand)
    site_demand;
  Float.max 0. !cap

let commit state chain nodes frac =
  for z = 0 to Array.length nodes - 2 do
    Load_state.add_stage_flow state ~chain ~stage:z ~src:nodes.(z) ~dst:nodes.(z + 1)
      ~frac
  done

let chain_order ?rng m =
  let order = Array.init (Model.num_chains m) (fun c -> c) in
  (match rng with Some r -> Sb_util.Rng.shuffle r order | None -> ());
  order

let min_split = 0.02

(* Route one (ingress, egress) pair of a chain, carrying [share] of the
   chain's traffic; splits across successive least-cost routes as capacity
   runs out (Section 4.4). *)
let route_pair state routing ~util_weight ~max_routes chain ~ingress ~egress ~share =
  let rec go remaining routes_left =
    if remaining > 1e-9 then
      match best_path ~ingress ~egress state ~util_weight ~chain with
      | None -> () (* unroutable chain: leave unrouted; validate will flag *)
      | Some nodes ->
        let headroom = if util_weight = 0. then remaining else path_headroom state chain nodes in
        let frac =
          if routes_left <= 1 || headroom >= remaining -. 1e-9 || headroom < min_split
          then remaining (* last route, enough room, or saturated: take it all *)
          else Float.min remaining headroom
        in
        Routing.add_path routing ~chain ~nodes ~frac;
        commit state chain nodes frac;
        go (remaining -. frac) (routes_left - 1)
  in
  go share max_routes

let route_chain state routing ~util_weight ~max_routes chain =
  let m = Load_state.model state in
  List.iter
    (fun (ingress, ishare) ->
      List.iter
        (fun (egress, eshare) ->
          route_pair state routing ~util_weight ~max_routes chain ~ingress ~egress
            ~share:(ishare *. eshare))
        (Model.chain_egresses m chain))
    (Model.chain_ingresses m chain)

let solve ?(util_weight = default_util_weight) ?(max_routes = 8) ?rng m =
  let state = Load_state.create m in
  let routing = Routing.create m in
  Array.iter
    (fun c -> route_chain state routing ~util_weight ~max_routes c)
    (chain_order ?rng m);
  routing

let dp_latency ?rng m = solve ~util_weight:0. ~max_routes:1 ?rng m

(* ------------------------ Incremental re-solve ---------------------- *)

type resolve_stats = {
  rerouted : int list;
  considered : int;
  over_threshold : int;
}

let path_cost state ~util_weight chain nodes =
  let c = ref 0. in
  for z = 0 to Array.length nodes - 2 do
    c :=
      !c
      +. Load_state.stage_cost state ~util_weight ~chain ~stage:z ~src:nodes.(z)
           ~dst:nodes.(z + 1)
  done;
  !c

(* Cost of the chain's committed route set as a marginal insertion onto
   the rest of the load (the chain itself must be lifted out first,
   otherwise its own contribution sits on the steep convex region and
   inflates every comparison into an apparent gain). *)
let current_cost state ~util_weight chain paths =
  List.fold_left
    (fun acc (nodes, frac) -> acc +. (frac *. path_cost state ~util_weight chain nodes))
    0. paths

(* Cost of the chain's best single route per endpoint pair on the same
   lifted-out load — marginal vs marginal, so the hysteresis threshold
   compares like with like. *)
let alternative_cost state ~util_weight chain =
  let m = Load_state.model state in
  let total = ref 0. and feasible = ref true in
  List.iter
    (fun (ingress, ishare) ->
      List.iter
        (fun (egress, eshare) ->
          match best_path ~ingress ~egress state ~util_weight ~chain with
          | Some nodes ->
            total := !total +. (ishare *. eshare *. path_cost state ~util_weight chain nodes)
          | None -> feasible := false)
        (Model.chain_egresses m chain))
    (Model.chain_ingresses m chain);
  if !feasible then Some !total else None

let resolve ?(util_weight = default_util_weight) ?(max_routes = 8) ?(hysteresis = 0.1)
    ?(churn_budget = max_int) ~prev m =
  let routing = Routing.create m in
  let state = Load_state.create m in
  let n = Model.num_chains m in
  (* Re-commit the previous paths under [m]'s (possibly measured/shifted)
     demand and topology. [prev] may belong to a structurally identical
     sibling of [m] (same chains/stages, different traffic or failed
     links). *)
  let prev_paths = Array.init n (fun c -> Routing.decompose_paths prev ~chain:c) in
  for c = 0 to n - 1 do
    List.iter
      (fun (nodes, frac) ->
        Routing.add_path routing ~chain:c ~nodes ~frac;
        commit state c nodes frac)
      prev_paths.(c)
  done;
  (* Scan phase: lift each chain out, cost its current route set and its
     best alternative as the same marginal insertion, put it back. Between
     the lift and the re-commit nothing else mutates, so the load-state
     generation is fixed and the stage-cost cache is shared across the
     chain's current-route costing AND its whole DP sweep. An unrouted
     chain (dropped by an earlier epoch or unroutable at creation) scores
     infinite gain: routing it at all is the best move. *)
  let candidates = ref [] in
  let considered = ref 0 in
  for c = 0 to n - 1 do
    let lifted = prev_paths.(c) <> [] in
    if lifted then begin
      incr considered;
      List.iter (fun (nodes, frac) -> commit state c nodes (-.frac)) prev_paths.(c)
    end;
    let cur =
      if lifted then current_cost state ~util_weight c prev_paths.(c) else infinity
    in
    let alt = alternative_cost state ~util_weight c in
    if lifted then
      List.iter (fun (nodes, frac) -> commit state c nodes frac) prev_paths.(c);
    match alt with
    | None -> () (* no feasible route at all: leave the chain as it is *)
    | Some alt ->
      let gain =
        if cur = infinity then infinity
        else if alt <= 1e-12 then if cur > 1e-12 then infinity else 0.
        else (cur -. alt) /. alt
      in
      if gain > hysteresis then candidates := (c, gain) :: !candidates
  done;
  let ranked =
    List.sort
      (fun (c1, g1) (c2, g2) ->
        match compare (g2 : float) g1 with 0 -> compare (c1 : int) c2 | o -> o)
      !candidates
  in
  let selected = List.filteri (fun i _ -> i < churn_budget) ranked in
  let rerouted = List.map fst selected in
  (* Re-route phase: lift each selected chain's load out, then route it
     afresh against everything else (sequential re-commit, mirroring
     [solve]; later selections see earlier moves). *)
  List.iter
    (fun c ->
      for stage = 0 to Model.num_stages m c - 1 do
        List.iter
          (fun (src, dst, frac) ->
            if frac > 1e-12 then
              Load_state.add_stage_flow state ~chain:c ~stage ~src ~dst ~frac:(-.frac))
          (Routing.stage_flows routing ~chain:c ~stage);
        Routing.set_stage routing ~chain:c ~stage []
      done;
      route_chain state routing ~util_weight ~max_routes c)
    rerouted;
  (routing, { rerouted; considered = !considered; over_threshold = List.length ranked })
