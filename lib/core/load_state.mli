(** Mutable resource-load accounting shared by all routing schemes.

    Tracks, for a {!Model.t}, the compute load on each site and each
    (VNF, site) deployment (per Eq. 4: a VNF is charged
    [l_f * (w + v)] for traffic it receives {e and} traffic it sends) and
    the Switchboard traffic on every link (background traffic [g_e] is kept
    separate because it does not scale with chain demand).

    SB-DP and the greedy baselines commit each chain's load here as they
    route; {!Routing.load_state} evaluates a complete routing in one pass.
    The capacity headroom of the accumulated loads determines the maximum
    supported traffic-scaling factor alpha (paper Section 4.2, cloud
    capacity planning, and the throughput metric of Fig. 12). *)

type t

val create : Model.t -> t
(** Zero Switchboard load; link background comes from the model.
    Equivalent to [of_instance (Instance.compile m)]. *)

val of_instance : Instance.t -> t
(** Zero Switchboard load over a pre-compiled instance. Demand reads go
    through the instance, so {!Instance.set_scale} changes what subsequent
    commits charge — the mechanism {!Eval}'s bisection uses to probe scaled
    demand without allocating a model copy per probe. *)

val copy : t -> t
val model : t -> Model.t
val instance : t -> Instance.t

val reset : t -> unit
(** Return to the all-zero state of a fresh {!of_instance} in place: link,
    site and deployment loads are zeroed and the generation is bumped (so
    stale stage-cost cache entries die), but no arrays are reallocated.
    The arena primitive behind {!Eval}'s bisection. *)

val generation : t -> int
(** Commit counter: incremented by every {!add_stage_flow}. The stage-cost
    cache (see {!stage_cost}) is valid for exactly one generation — any
    commit may touch the links or VNF sites behind a cached entry, so a
    bump conservatively invalidates all of them. *)

val sync_deployment : t -> unit
(** Catch up with an {!Instance.recompile_deployment} on the underlying
    instance: if {!Instance.deployment_epoch} moved since this state last
    looked, bump the generation so every cached stage cost (computed
    against the old deployment set) is orphaned. The dense capacity view
    itself is refilled in place by the recompile, so raw utilization
    reads never go stale — only the cache. Called automatically on the
    cached {!stage_cost} path; cheap (one int compare) when nothing
    changed. *)

val site_load : t -> int -> float
val vnf_load : t -> vnf:int -> site:int -> float
val link_sb_load : t -> int -> float
(** Switchboard traffic on a link, excluding background. *)

val link_utilization : t -> int -> float
(** (background + Switchboard) / bandwidth. *)

val site_utilization : t -> int -> float
val vnf_utilization : t -> vnf:int -> site:int -> float

val add_stage_flow :
  t -> chain:int -> stage:int -> src:int -> dst:int -> frac:float -> unit
(** Commit fraction [frac] of chain [chain]'s stage [stage] onto the
    node pair [src -> dst]: forward traffic [w_cz * frac] is routed
    [src -> dst], reverse traffic [v_cz * frac] is routed [dst -> src],
    and the endpoint VNFs (if the stage endpoints are VNF elements) are
    charged their compute load. [src]/[dst] are node ids. *)

val max_alpha : t -> float
(** Largest factor by which all committed Switchboard traffic could be
    scaled before some link exceeds [beta * b_e - g_e], some site exceeds
    [m_s], or some deployment exceeds [m_sf]. [infinity] when nothing is
    loaded; can be < 1 when the unit-demand routing already oversubscribes
    a resource. *)

val bottleneck : t -> string
(** Human-readable description of the binding resource of {!max_alpha}. *)

val stage_cost :
  t -> util_weight:float -> chain:int -> stage:int -> src:int -> dst:int -> float
(** SB-DP's cost of routing a stage from node [src] to node [dst]
    (Section 4.4): propagation delay plus [util_weight] times the sum of
    the Fortz–Thorup network-utilization cost (over links on the path) and
    the compute-utilization cost of the receiving VNF at the destination.
    [util_weight = 0.] recovers the DP-LATENCY ablation.

    Results are memoized in a generation-stamped direct-mapped cache keyed
    by [(chain, stage, src, dst)]: entries are valid until the next commit
    ({!generation} bump) or a different [util_weight], so repeated DP
    evaluations against an unchanged load state (e.g. control-plane route
    recomputation after a two-phase-commit reject) cost one array probe.
    Misses cost one probe plus the recomputation — commits never pay a
    cache-clearing pass. *)

val stage_compute_cost : t -> chain:int -> stage:int -> dst:int -> float
(** The compute-utilization term of {!stage_cost} alone: the convex-cost
    increase of the VNF deployment receiving the stage at [dst] (0. when
    the stage ends at the egress; [infinity] when the element is a VNF with
    no usable deployment at [dst]). Independent of [src] — the DP hoists it
    out of its inner loop. *)

val stage_cost_hinted :
  t ->
  util_weight:float ->
  chain:int ->
  stage:int ->
  src:int ->
  dst:int ->
  compute_cost:float ->
  float
(** {!stage_cost} with the [compute_cost] term supplied by the caller
    (obtained from {!stage_compute_cost} once per [(stage, dst)] rather
    than once per [(src, dst)] pair). Same value, same cache. *)

val stage_net_cost : t -> chain:int -> stage:int -> src:int -> dst:int -> float
(** The network-utilization term of {!stage_cost} alone
    ({!Sb_net.Load.path_network_cost_pair} of the stage's forward and
    reverse demand), uncached. SB-DP's single-sweep solve uses this
    directly: within one solve every commit bumps the generation, so the
    cache could never hit anyway — skipping the probe-and-insert traffic
    is pure profit. *)
