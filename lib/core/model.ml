type site = { node : int; capacity : float }

type vnf = {
  name : string;
  cpu_per_unit : float;
  mutable deployments : (int * float) list; (* (site, m_sf), sorted on finalize *)
}

type chain = {
  cname : string;
  ingresses : (int * float) list; (* (node, traffic share), shares sum to 1 *)
  egresses : (int * float) list;
  vnfs : int array;
  fwd : float array; (* per stage, length |vnfs| + 1 *)
  rev : float array;
}

type builder = {
  topo : Sb_net.Topology.t;
  mutable b_sites : site list;
  mutable b_nsites : int;
  mutable b_vnfs : vnf list;
  mutable b_nvnfs : int;
  mutable b_chains : chain list;
  mutable b_nchains : int;
  b_node_site : (int, int) Hashtbl.t;
}

type t = {
  topo : Sb_net.Topology.t;
  paths : Sb_net.Paths.t;
  sites : site array;
  vnf_arr : vnf array;
  chains : chain array;
  node_site : (int, int) Hashtbl.t;
  beta : float;
  background : float array;
}

let builder topo =
  {
    topo;
    b_sites = [];
    b_nsites = 0;
    b_vnfs = [];
    b_nvnfs = 0;
    b_chains = [];
    b_nchains = 0;
    b_node_site = Hashtbl.create 16;
  }

let add_site (b : builder) ~node ~capacity =
  if node < 0 || node >= Sb_net.Topology.num_nodes b.topo then
    invalid_arg "Model.add_site: unknown node";
  if Hashtbl.mem b.b_node_site node then
    invalid_arg "Model.add_site: node already has a site";
  if capacity <= 0. then invalid_arg "Model.add_site: non-positive capacity";
  let id = b.b_nsites in
  b.b_sites <- { node; capacity } :: b.b_sites;
  b.b_nsites <- id + 1;
  Hashtbl.replace b.b_node_site node id;
  id

let add_vnf (b : builder) ~name ~cpu_per_unit =
  if cpu_per_unit <= 0. then invalid_arg "Model.add_vnf: non-positive cpu_per_unit";
  let id = b.b_nvnfs in
  b.b_vnfs <- { name; cpu_per_unit; deployments = [] } :: b.b_vnfs;
  b.b_nvnfs <- id + 1;
  id

let nth_rev l n total = List.nth l (total - 1 - n)

let deploy (b : builder) ~vnf ~site ~capacity =
  if vnf < 0 || vnf >= b.b_nvnfs then invalid_arg "Model.deploy: unknown vnf";
  if site < 0 || site >= b.b_nsites then invalid_arg "Model.deploy: unknown site";
  if capacity <= 0. then invalid_arg "Model.deploy: non-positive capacity";
  let v = nth_rev b.b_vnfs vnf b.b_nvnfs in
  if List.mem_assoc site v.deployments then
    invalid_arg "Model.deploy: vnf already deployed at site";
  v.deployments <- (site, capacity) :: v.deployments

(* Normalize endpoint shares to sum to 1 and validate the nodes. *)
let normalize_endpoints (b : builder) what endpoints =
  let n_nodes = Sb_net.Topology.num_nodes b.topo in
  if endpoints = [] then invalid_arg (Printf.sprintf "Model.add_chain: empty %s list" what);
  List.iter
    (fun (node, share) ->
      if node < 0 || node >= n_nodes then
        invalid_arg (Printf.sprintf "Model.add_chain: unknown %s node" what);
      if share <= 0. then
        invalid_arg (Printf.sprintf "Model.add_chain: non-positive %s share" what))
    endpoints;
  let nodes = List.map fst endpoints in
  if List.length (List.sort_uniq compare nodes) <> List.length nodes then
    invalid_arg (Printf.sprintf "Model.add_chain: duplicate %s node" what);
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0. endpoints in
  List.map (fun (n, s) -> (n, s /. total)) endpoints

let add_chain_endpoints (b : builder) ?name ~ingresses ~egresses ~vnfs ~fwd ?(rev = 0.) () =
  if fwd < 0. || rev < 0. then invalid_arg "Model.add_chain: negative traffic";
  let ingresses = normalize_endpoints b "ingress" ingresses in
  let egresses = normalize_endpoints b "egress" egresses in
  List.iter
    (fun f ->
      if f < 0 || f >= b.b_nvnfs then invalid_arg "Model.add_chain: unknown vnf";
      if (nth_rev b.b_vnfs f b.b_nvnfs).deployments = [] then
        invalid_arg "Model.add_chain: vnf has no deployment")
    vnfs;
  let id = b.b_nchains in
  let cname = match name with Some n -> n | None -> Printf.sprintf "chain%d" id in
  let stages = List.length vnfs + 1 in
  b.b_chains <-
    {
      cname;
      ingresses;
      egresses;
      vnfs = Array.of_list vnfs;
      fwd = Array.make stages fwd;
      rev = Array.make stages rev;
    }
    :: b.b_chains;
  b.b_nchains <- id + 1;
  id

let add_chain (b : builder) ?name ~ingress ~egress ~vnfs ~fwd ?(rev = 0.) () =
  add_chain_endpoints b ?name
    ~ingresses:[ (ingress, 1.) ]
    ~egresses:[ (egress, 1.) ]
    ~vnfs ~fwd ~rev ()

let finalize (b : builder) ?(beta = 1.0) ?background () =
  let topo = b.topo in
  let paths = Sb_net.Paths.compute topo in
  let bg = Array.make (Sb_net.Topology.num_links topo) 0. in
  (match background with
  | Some f -> Array.iteri (fun i _ -> bg.(i) <- f i) bg
  | None -> ());
  let vnf_arr = Array.of_list (List.rev b.b_vnfs) in
  Array.iter
    (fun v -> v.deployments <- List.sort (fun (a, _) (c, _) -> compare a c) v.deployments)
    vnf_arr;
  {
    topo;
    paths;
    sites = Array.of_list (List.rev b.b_sites);
    vnf_arr;
    chains = Array.of_list (List.rev b.b_chains);
    node_site = b.b_node_site;
    beta;
    background = bg;
  }

let topology t = t.topo
let paths t = t.paths
let beta t = t.beta
let background t e = t.background.(e)

let num_sites t = Array.length t.sites
let num_vnfs t = Array.length t.vnf_arr
let num_chains t = Array.length t.chains

let site_node t s = t.sites.(s).node
let site_capacity t s = t.sites.(s).capacity
let site_of_node t n = Hashtbl.find_opt t.node_site n

let vnf_name t f = t.vnf_arr.(f).name
let vnf_cpu_per_unit t f = t.vnf_arr.(f).cpu_per_unit
let vnf_sites t f = t.vnf_arr.(f).deployments

let vnf_site_capacity t ~vnf ~site =
  match List.assoc_opt site t.vnf_arr.(vnf).deployments with Some c -> c | None -> 0.

let chain_name t c = t.chains.(c).cname
let chain_ingresses t c = t.chains.(c).ingresses
let chain_egresses t c = t.chains.(c).egresses
let chain_ingress t c = fst (List.hd t.chains.(c).ingresses)
let chain_egress t c = fst (List.hd t.chains.(c).egresses)
let chain_vnfs t c = Array.copy t.chains.(c).vnfs
let chain_length t c = Array.length t.chains.(c).vnfs
let num_stages t c = Array.length t.chains.(c).vnfs + 1

let fwd_traffic t ~chain ~stage = t.chains.(chain).fwd.(stage)
let rev_traffic t ~chain ~stage = t.chains.(chain).rev.(stage)

let total_demand t =
  Array.fold_left
    (fun acc c ->
      let acc = Array.fold_left ( +. ) acc c.fwd in
      Array.fold_left ( +. ) acc c.rev)
    0. t.chains

let stage_dst_vnf t ~chain ~stage =
  let c = t.chains.(chain) in
  if stage < Array.length c.vnfs then Some c.vnfs.(stage) else None

let vnf_nodes t f = List.map (fun (s, _) -> t.sites.(s).node) t.vnf_arr.(f).deployments

let stage_src_nodes t ~chain ~stage =
  let c = t.chains.(chain) in
  if stage = 0 then List.map fst c.ingresses else vnf_nodes t c.vnfs.(stage - 1)

let stage_dst_nodes t ~chain ~stage =
  let c = t.chains.(chain) in
  if stage = Array.length c.vnfs then List.map fst c.egresses else vnf_nodes t c.vnfs.(stage)

let with_site_capacity_delta t deltas =
  if Array.length deltas <> Array.length t.sites then
    invalid_arg "Model.with_site_capacity_delta: arity mismatch";
  let ratio = Array.mapi (fun s d -> (t.sites.(s).capacity +. d) /. t.sites.(s).capacity) deltas in
  {
    t with
    sites = Array.mapi (fun s site -> { site with capacity = site.capacity +. deltas.(s) }) t.sites;
    vnf_arr =
      Array.map
        (fun v ->
          {
            v with
            deployments = List.map (fun (s, c) -> (s, c *. ratio.(s))) v.deployments;
          })
        t.vnf_arr;
  }

let with_extra_deployments t extra =
  let vnf_arr = Array.map (fun v -> { v with deployments = v.deployments }) t.vnf_arr in
  List.iter
    (fun (f, s, cap) ->
      if f < 0 || f >= Array.length vnf_arr then
        invalid_arg "Model.with_extra_deployments: unknown vnf";
      if s < 0 || s >= Array.length t.sites then
        invalid_arg "Model.with_extra_deployments: unknown site";
      let v = vnf_arr.(f) in
      if not (List.mem_assoc s v.deployments) then
        vnf_arr.(f) <-
          {
            v with
            deployments =
              List.sort (fun (a, _) (b, _) -> compare a b) ((s, cap) :: v.deployments);
          })
    extra;
  { t with vnf_arr }

let without_deployments t removed =
  List.iter
    (fun (f, s) ->
      if f < 0 || f >= Array.length t.vnf_arr then
        invalid_arg "Model.without_deployments: unknown vnf";
      if s < 0 || s >= Array.length t.sites then
        invalid_arg "Model.without_deployments: unknown site")
    removed;
  {
    t with
    vnf_arr =
      Array.mapi
        (fun f v ->
          {
            v with
            deployments =
              List.filter (fun (s, _) -> not (List.mem (f, s) removed)) v.deployments;
          })
        t.vnf_arr;
  }

let with_scaled_traffic t factor =
  if factor < 0. then invalid_arg "Model.with_scaled_traffic: negative factor";
  let scale a = Array.map (fun x -> x *. factor) a in
  {
    t with
    chains = Array.map (fun c -> { c with fwd = scale c.fwd; rev = scale c.rev }) t.chains;
  }

let with_chain_traffic_factors t factors =
  if Array.length factors <> Array.length t.chains then
    invalid_arg "Model.with_chain_traffic_factors: arity mismatch";
  Array.iter
    (fun f ->
      if f < 0. then invalid_arg "Model.with_chain_traffic_factors: negative factor")
    factors;
  {
    t with
    chains =
      Array.mapi
        (fun i c ->
          let scale a = Array.map (fun x -> x *. factors.(i)) a in
          { c with fwd = scale c.fwd; rev = scale c.rev })
        t.chains;
  }

let with_failed_links t failed =
  let old_topo = t.topo in
  let nlinks = Sb_net.Topology.num_links old_topo in
  List.iter
    (fun e ->
      if e < 0 || e >= nlinks then invalid_arg "Model.with_failed_links: unknown link")
    failed;
  let topo = Sb_net.Topology.create () in
  for n = 0 to Sb_net.Topology.num_nodes old_topo - 1 do
    let x, y = Sb_net.Topology.node_pos old_topo n in
    ignore (Sb_net.Topology.add_node topo ~x ~y (Sb_net.Topology.node_name old_topo n))
  done;
  let new_background = ref [] in
  Array.iter
    (fun (l : Sb_net.Topology.link) ->
      if not (List.mem l.id failed) then begin
        let id =
          Sb_net.Topology.add_link topo ~src:l.src ~dst:l.dst ~bandwidth:l.bandwidth
            ~delay:l.delay
        in
        new_background := (id, t.background.(l.id)) :: !new_background
      end)
    (Sb_net.Topology.links old_topo);
  let background = Array.make (Sb_net.Topology.num_links topo) 0. in
  List.iter (fun (id, g) -> background.(id) <- g) !new_background;
  { t with topo; paths = Sb_net.Paths.compute topo; background }

let with_failed_sites t failed =
  List.iter
    (fun s ->
      if s < 0 || s >= Array.length t.sites then
        invalid_arg "Model.with_failed_sites: unknown site")
    failed;
  {
    t with
    vnf_arr =
      Array.map
        (fun v ->
          {
            v with
            deployments = List.filter (fun (s, _) -> not (List.mem s failed)) v.deployments;
          })
        t.vnf_arr;
  }
