(** VNF capacity planning: deployment-site hints (Sections 4.2-4.3,
    Fig. 13c) — and, since the placement loop landed, the online scale-out
    oracle the control plane consults every epoch.

    Given a number of new sites to open per VNF, suggest placements that
    minimize aggregate chain latency. The paper formulates a MIP; at our
    scale a demand-weighted greedy scores each candidate site by the
    latency reduction it offers the chains that traverse the VNF, which is
    the same hint the MIP's LP relaxation prices. The {!random} baseline
    picks new sites uniformly. Scoring walks the compiled
    {!Instance.t}'s flat arrays (stage-VNF spans, demand bases, the dense
    capacity table), not the model's lists, so the loop can afford to call
    it per epoch; an optional live {!Load_state.t} telemetry view weights
    saturated VNFs up and compute-starved candidate sites down.

    Placement constraints follow the multi-cloud SFC literature
    (Bhamare et al.'s per-cloud budgets, Allybokus et al.'s anti-affinity
    rules): {!constraints} carries VNF pairs that must never share a site
    and a per-cloud cap on new deployments. *)

type constraints = {
  anti_affinity : (int * int) list;
      (** VNF id pairs that must not be co-located at one site — neither
          by a new open next to an existing deployment nor by two new
          opens. Symmetric; order within a pair is irrelevant. *)
  cloud_of : int -> int;
      (** Site -> cloud id (a total function; sites of one provider share
          an id). The default maps every site to cloud 0. *)
  cloud_capacity : int -> int;
      (** Cloud id -> max {e new} deployments this placement round may
          open there. [max_int] = unbounded. *)
}

val no_constraints : constraints
(** No anti-affinity pairs, one unbounded cloud — the legacy behaviour. *)

val suggest_inst :
  ?constraints:constraints ->
  ?load:Load_state.t ->
  Instance.t ->
  new_sites_per_vnf:int ->
  (int * int * float) list
(** The greedy hint as raw [(vnf, site, capacity)] deployments (capacity =
    mean of the VNF's existing deployments) — what a control loop feeds to
    scale-out one deployment at a time. Scored from the packed instance;
    [load] adds the telemetry weighting. Deterministic: VNFs in id order,
    candidates ranked by score, constraints applied greedily in that
    order. *)

val suggest :
  ?constraints:constraints ->
  ?load:Load_state.t ->
  Model.t ->
  new_sites_per_vnf:int ->
  Model.t
(** Greedy latency-driven placement, returned as an extended model
    ({!Model.with_extra_deployments} over {!suggest_inst}). Without
    [constraints] and [load] this is the legacy demand-weighted greedy,
    bit-identical. *)

val random : rng:Sb_util.Rng.t -> Model.t -> new_sites_per_vnf:int -> Model.t
(** Baseline: uniformly random new sites (same capacity rule). *)

val mip :
  ?max_nodes:int ->
  ?constraints:constraints ->
  Model.t ->
  new_sites_per_vnf:int ->
  Model.t option
(** Exact MIP placement on small instances: binary site-open variables
    layered over the chain-routing LP, solved by branch-and-bound, with
    anti-affinity exclusions and per-cloud budget rows from
    [constraints]. [None] if the model is infeasible/unbounded {e or} the
    search hits [max_nodes] (default 2000) without an incumbent — the
    latter logs a warning to stderr (mirroring
    {!Eval.max_load_factor_result}'s discipline); callers should fall
    back to {!suggest} rather than drop the hint. *)
