(** SB-DP: Switchboard's dynamic-programming chain router (Section 4.4).

    For each chain it fills the table [E(z, s)] — the least cost of a route
    prefix ending with element [z] placed at site [s] — using the stage
    cost of {!Load_state.stage_cost} (propagation delay + Fortz–Thorup
    network- and compute-utilization costs), then walks parents back from
    the egress (Eq. 8). Chains are routed sequentially (optionally in a
    seeded random order), committing their load so later chains see earlier
    utilization. If the selected route cannot absorb the chain's full
    traffic within remaining capacities, the chain is split: the route
    carries the fraction its bottleneck allows and the algorithm repeats on
    the next least-cost route (up to [max_routes]; any residual rides the
    last route). *)

val default_util_weight : float
(** Weight converting Fortz–Thorup utilization cost into seconds of
    latency-equivalent cost; 0.05 (i.e. one unit of utilization cost
    trades against 50 ms of propagation delay). *)

val solve :
  ?util_weight:float ->
  ?max_routes:int ->
  ?rng:Sb_util.Rng.t ->
  Model.t ->
  Routing.t
(** Full SB-DP. [max_routes] (default 8) bounds per-chain splitting.
    [rng], when given, shuffles the chain processing order. Equivalent to
    {!solve_into} over a freshly compiled {!Instance}. *)

val solve_into :
  ?util_weight:float ->
  ?max_routes:int ->
  ?rng:Sb_util.Rng.t ->
  Load_state.t ->
  Routing.t ->
  Routing.t
(** Arena form of {!solve}: resets the given load state and routing (both
    compiled from the same {!Instance} — [Invalid_argument] otherwise) and
    solves in place, so a caller probing many demand scales
    ({!Eval.max_load_factor}'s bisection) allocates nothing per probe.
    Demand is read through the instance, honouring
    {!Instance.set_scale}. Returns the routing it was given.

    The DP sweep is cache-free and pruned: within one solve every commit
    bumps the load generation (the stage-cost cache could never hit), and
    a candidate pair whose delay-plus-compute lower bound cannot beat the
    incumbent under the strict [<] tie-break is skipped before its
    link-cost scan — bit-identical decisions to {!best_path}'s full
    evaluation because stage costs are [delay + uw * (net + cc)] with
    [net >= 0] on a solve's monotone loads and float rounding monotone. *)

val dp_latency : ?rng:Sb_util.Rng.t -> Model.t -> Routing.t
(** The DP-LATENCY ablation of Fig. 13a: same holistic dynamic program but
    the cost is propagation delay only (no utilization terms, no
    splitting — capacity-blind). *)

val best_path :
  ?ingress:int ->
  ?egress:int ->
  Load_state.t ->
  util_weight:float ->
  chain:int ->
  int array option
(** One DP evaluation against the given load state: the least-cost node
    sequence (ingress, VNF nodes, egress) for a chain, or [None] if some
    stage has no reachable candidate. [ingress]/[egress] default to the
    chain's first endpoints (multi-endpoint chains are routed per pair by
    {!solve}). Exposed for the control plane (route recomputation after a
    two-phase-commit reject) and tests. *)

type resolve_stats = {
  rerouted : int list;
      (** chains re-routed this round, highest measured gain first — the
          route delta the control plane must roll out *)
  considered : int;  (** chains with a committed route that were scanned *)
  over_threshold : int;
      (** chains whose relative gain beat the hysteresis (before the churn
          budget truncated the list) *)
}

val resolve :
  ?util_weight:float ->
  ?max_routes:int ->
  ?hysteresis:float ->
  ?churn_budget:int ->
  prev:Routing.t ->
  Model.t ->
  Routing.t * resolve_stats
(** Incremental re-solve for the [sb_adapt] closed loop: re-commit the
    previous routing's paths under [m] (a structurally identical model
    whose traffic matrix and/or failed-link set changed), scan every chain
    comparing its current-route cost against its best single-path
    alternative under the same load, and re-route only the chains whose
    relative gain [(cur - alt) / alt] exceeds [hysteresis] (default 0.1) —
    at most [churn_budget] of them per call (default unlimited), highest
    gain first. The scan lifts each chain out before costing, so current
    and alternative are the same marginal insertion, and performs no other
    mutation, so the stage-cost cache of the shared load state is reused
    across the chain's costing and its whole DP sweep. Chains left
    unrouted by [prev] (or whose current route is infeasible under [m])
    score infinite gain and are re-routed first.
    Returns the new routing plus which chains moved. *)
