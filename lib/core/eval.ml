type scheme = Anycast | Compute_aware | Onehop | Dp_latency | Sb_dp | Sb_lp

let scheme_name = function
  | Anycast -> "ANYCAST"
  | Compute_aware -> "COMPUTE-AWARE"
  | Onehop -> "ONEHOP"
  | Dp_latency -> "DP-LATENCY"
  | Sb_dp -> "SB-DP"
  | Sb_lp -> "SB-LP"

let all_schemes = [ Anycast; Compute_aware; Onehop; Dp_latency; Sb_dp; Sb_lp ]

(* Bisection contract (see eval.mli): a demand scaling is "sustained" when
   the re-routed scaled model supports alpha >= [feasible_alpha] — 1 minus
   a relative epsilon absorbing the float noise of load accumulation, so a
   scheme that routes the scaled demand exactly to capacity counts as
   feasible. [probe_floor] is the initial (and minimum reported non-zero)
   factor; the upper bound doubles at most [growth_guard] times before the
   search gives up and reports the last bound. *)
let feasible_alpha = 1. -. 1e-9
let default_tol = 0.02
let probe_floor = 1e-6
let growth_guard = 40

let route_heuristic ?(seed = 1) m = function
  | Anycast -> Greedy.anycast m
  | Compute_aware -> Greedy.compute_aware m
  | Onehop -> Greedy.onehop m
  | Dp_latency -> Dp_routing.dp_latency ~rng:(Sb_util.Rng.create seed) m
  | Sb_dp -> Dp_routing.solve ~rng:(Sb_util.Rng.create seed) m
  | Sb_lp -> invalid_arg "route_heuristic: Sb_lp"

let route ?seed m scheme =
  match scheme with
  | Sb_lp -> (
    match Lp_routing.solve m Lp_routing.Min_latency with
    | Ok { routing; _ } -> Ok routing
    | Error _ -> (
      (* Demand exceeds capacity: fall back to the throughput objective. *)
      match Lp_routing.solve m Lp_routing.Max_throughput with
      | Ok { routing; _ } -> Ok routing
      | Error e -> Error e))
  | s -> Ok (route_heuristic ?seed m s)

(* Reusable evaluation arena: one compiled instance, one load state and
   routing for the router, one load state for max_alpha — every bisection
   probe scales demand in place and reuses these, instead of allocating a
   scaled model copy plus fresh state per probe. *)
type arena = {
  inst : Instance.t;
  state : Load_state.t;
  routing : Routing.t;
  eval_state : Load_state.t;
}

let make_arena m =
  let inst = Instance.compile m in
  {
    inst;
    state = Load_state.of_instance inst;
    routing = Routing.of_instance inst;
    eval_state = Load_state.of_instance inst;
  }

let route_heuristic_into ?(seed = 1) a = function
  | Anycast -> Greedy.anycast_into a.state a.routing
  | Compute_aware -> Greedy.compute_aware_into a.state a.routing
  | Onehop -> Greedy.onehop_into a.state a.routing
  | Dp_latency ->
    Dp_routing.solve_into ~util_weight:0. ~max_routes:1
      ~rng:(Sb_util.Rng.create seed) a.state a.routing
  | Sb_dp -> Dp_routing.solve_into ~rng:(Sb_util.Rng.create seed) a.state a.routing
  | Sb_lp -> invalid_arg "route_heuristic: Sb_lp"

(* Does the scheme sustain demand scaled by [factor]? Load-aware schemes
   re-route the scaled demand, so the supported alpha of the resulting
   routing must reach 1. Scaling happens through the instance
   ([base *. factor] — the same product Model.with_scaled_traffic takes),
   so probes are bit-identical to routing a scaled model copy. *)
let sustains ?seed a scheme factor =
  Instance.set_scale a.inst factor;
  let r = route_heuristic_into ?seed a scheme in
  Routing.max_alpha_into a.eval_state r >= feasible_alpha

let max_load_factor_result ?seed ?(tol = default_tol) m scheme =
  match scheme with
  | Sb_lp -> (
    match Lp_routing.solve m Lp_routing.Max_throughput with
    | Ok { objective_value; _ } -> Ok objective_value
    | Error e ->
      (* The throughput LP is feasible at alpha = 0 by construction, so an
         error here is a solver failure, not "the scheme supports
         nothing". *)
      Error e)
  | Anycast | Dp_latency ->
    (* Load-oblivious: the routing is scale-invariant, so the supported
       alpha of the unit routing is the answer. *)
    let a = make_arena m in
    let r = route_heuristic_into ?seed a scheme in
    Ok (Routing.max_alpha_into a.eval_state r)
  | Compute_aware | Onehop | Sb_dp ->
    let a = make_arena m in
    if not (sustains ?seed a scheme probe_floor) then Ok 0.
    else begin
      (* Grow an upper bound, then bisect. *)
      let lo = ref probe_floor and hi = ref 1. in
      let guard = ref 0 in
      while sustains ?seed a scheme !hi && !guard < growth_guard do
        lo := !hi;
        hi := !hi *. 2.;
        incr guard
      done;
      if !guard >= growth_guard then Ok !hi
      else begin
        while (!hi -. !lo) /. !hi > tol do
          let mid = (!lo +. !hi) /. 2. in
          if sustains ?seed a scheme mid then lo := mid else hi := mid
        done;
        Ok !lo
      end
    end

let max_load_factor ?seed ?tol m scheme =
  match max_load_factor_result ?seed ?tol m scheme with
  | Ok v -> v
  | Error e ->
    Printf.eprintf "Eval.max_load_factor: %s solver failure (%s); reporting 0.\n%!"
      (scheme_name scheme) e;
    0.

let throughput ?seed m scheme = max_load_factor ?seed m scheme *. Model.total_demand m

(* VNF service time used in the latency metric: fast packet-processing
   functions, so queueing matters near saturation without drowning WAN
   propagation delays. *)
let metric_service_time = 0.0002

let latency ?seed ~load m scheme =
  match scheme with
  | Sb_lp -> (
    let scaled = Model.with_scaled_traffic m load in
    (* The latency objective is blind to queueing, so give the LP a 20%
       compute-capacity margin; the resulting routing never loads a
       deployment beyond ~80%, like an operator would configure. *)
    let margin = Array.init (Model.num_sites m) (fun s -> -0.2 *. Model.site_capacity m s) in
    let constrained = Model.with_site_capacity_delta scaled margin in
    match Lp_routing.solve constrained Lp_routing.Min_latency with
    | Ok { routing; _ } ->
      (* Evaluate against the true capacities, not the planning margin. *)
      let on_true_model = Routing.create scaled in
      for c = 0 to Model.num_chains scaled - 1 do
        for z = 0 to Model.num_stages scaled c - 1 do
          Routing.set_stage on_true_model ~chain:c ~stage:z
            (Routing.stage_flows routing ~chain:c ~stage:z)
        done
      done;
      Routing.mean_latency ~vnf_service_time:metric_service_time on_true_model
    | Error _ -> infinity)
  | s ->
    let a = make_arena m in
    Instance.set_scale a.inst load;
    let r = route_heuristic_into ?seed a s in
    Routing.mean_latency ~vnf_service_time:metric_service_time r

(* --------------------- Parallel sweep evaluation --------------------- *)

(* Every (model/load, scheme) cell of a figure sweep is an independent
   evaluation: each one compiles its own arena, so the only shared data are
   the Model.t and its Paths — read-only after construction. Fanning cells
   over domains therefore cannot perturb any per-cell result; outputs land
   in caller-indexed slots. *)

let throughput_grid ?seed ?domains models schemes =
  let nm = Array.length models and ns = Array.length schemes in
  let out = Array.make_matrix nm ns 0. in
  Sb_util.Par.map_chunks ?domains ~n:(nm * ns) (fun lo hi ->
      for k = lo to hi - 1 do
        let i = k / ns and j = k mod ns in
        out.(i).(j) <- throughput ?seed models.(i) schemes.(j)
      done);
  out

let latency_grid ?seed ?domains ~loads m schemes =
  let nl = Array.length loads and ns = Array.length schemes in
  let out = Array.make_matrix nl ns 0. in
  Sb_util.Par.map_chunks ?domains ~n:(nl * ns) (fun lo hi ->
      for k = lo to hi - 1 do
        let i = k / ns and j = k mod ns in
        out.(i).(j) <- latency ?seed ~load:loads.(i) m schemes.(j)
      done);
  out
