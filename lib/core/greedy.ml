type choose = Load_state.t -> int -> int -> int -> int list -> int

(* Walk one chain element by element from a given ingress towards a given
   egress, choosing each VNF's site with
   [choose state chain stage current candidates]; returns the node path. *)
let walk_chain inst state chain ~ingress ~egress choose =
  let len = Instance.num_stages inst chain - 1 in
  let nodes = Array.make (len + 2) ingress in
  nodes.(len + 1) <- egress;
  for z = 0 to len - 1 do
    let candidates = Instance.stage_dst_nodes inst ~chain ~stage:z in
    nodes.(z + 1) <- choose state chain z nodes.(z) candidates
  done;
  nodes

(* Greedy schemes handle a multi-endpoint chain (Section 4.1's omitted
   generalization) as one walk per (ingress, egress) pair, carrying the
   product of the endpoint shares. *)
let route_into state routing choose =
  let inst = Load_state.instance state in
  if not (Routing.instance routing == inst) then
    invalid_arg "Greedy.route_into: routing compiled from a different instance";
  Load_state.reset state;
  Routing.reset routing;
  let m = Instance.model inst in
  for c = 0 to Instance.num_chains inst - 1 do
    List.iter
      (fun (ingress, ishare) ->
        List.iter
          (fun (egress, eshare) ->
            let frac = ishare *. eshare in
            let nodes = walk_chain inst state c ~ingress ~egress choose in
            Routing.add_path routing ~chain:c ~nodes ~frac;
            for z = 0 to Array.length nodes - 2 do
              Load_state.add_stage_flow state ~chain:c ~stage:z ~src:nodes.(z)
                ~dst:nodes.(z + 1) ~frac
            done)
          (Model.chain_egresses m c))
      (Model.chain_ingresses m c)
  done;
  routing

let route m choose =
  let inst = Instance.compile m in
  route_into (Load_state.of_instance inst) (Routing.of_instance inst) choose

let by_delay m current candidates =
  let paths = Model.paths m in
  List.sort
    (fun a b ->
      compare (Sb_net.Paths.delay paths current a) (Sb_net.Paths.delay paths current b))
    candidates

let choose_anycast m =
  fun _state _chain _stage current candidates ->
    match by_delay m current candidates with
    | best :: _ -> best
    | [] -> invalid_arg "Greedy.anycast: VNF with no deployment"

let anycast m = route m (choose_anycast m)

let anycast_into state routing =
  route_into state routing (choose_anycast (Load_state.model state))

(* Remaining capacity for this chain's stage at a candidate VNF site:
   the smaller of the deployment headroom and the site headroom. The VNF is
   charged for both the traffic it receives (stage [stage]) and the traffic
   it forwards on (stage [stage + 1]), per Eq. 4. *)
let headroom state chain stage node =
  let inst = Load_state.instance state in
  let gz = (Instance.stage_off inst).(chain) + stage in
  let f = (Instance.stage_vnf inst).(gz) in
  let s = if f >= 0 then (Instance.node_site inst).(node) else -1 in
  if f < 0 || s < 0 then infinity
  else begin
    let scale = Instance.scale inst in
    let fwd_base = Instance.fwd_base inst in
    let rev_base = Instance.rev_base inst in
    let stage_traffic z =
      (fwd_base.(gz - stage + z) *. scale) +. (rev_base.(gz - stage + z) *. scale)
    in
    let added =
      (Instance.vnf_cpu inst).(f) *. (stage_traffic stage +. stage_traffic (stage + 1))
    in
    let vnf_room =
      (Instance.dep_cap inst).((f * Instance.num_sites inst) + s)
      -. Load_state.vnf_load state ~vnf:f ~site:s
    in
    let site_room = (Instance.site_cap inst).(s) -. Load_state.site_load state s in
    Float.min vnf_room site_room -. added
  end

let choose_compute_aware m =
  fun state chain stage current candidates ->
    let ordered = by_delay m current candidates in
    let with_room = List.filter (fun n -> headroom state chain stage n >= 0.) ordered in
    match with_room with
    | best :: _ -> best
    | [] -> (
      (* No site fits: fall back to the least-loaded one. *)
      match
        List.sort
          (fun a b ->
            compare (headroom state chain stage b) (headroom state chain stage a))
          ordered
      with
      | best :: _ -> best
      | [] -> invalid_arg "Greedy.compute_aware: VNF with no deployment")

let compute_aware m = route m (choose_compute_aware m)

let compute_aware_into state routing =
  route_into state routing (choose_compute_aware (Load_state.model state))

let choose_onehop util_weight =
  fun state chain stage current candidates ->
    let cost n = Load_state.stage_cost state ~util_weight ~chain ~stage ~src:current ~dst:n in
    match List.sort (fun a b -> compare (cost a) (cost b)) candidates with
    | best :: _ -> best
    | [] -> invalid_arg "Greedy.onehop: VNF with no deployment"

let onehop_weight util_weight =
  match util_weight with Some w -> w | None -> Dp_routing.default_util_weight

let onehop ?util_weight m = route m (choose_onehop (onehop_weight util_weight))

let onehop_into ?util_weight state routing =
  route_into state routing (choose_onehop (onehop_weight util_weight))
