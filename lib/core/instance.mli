(** Compiled solver instance: {!Model.t} flattened into id-dense arrays.

    A model is compiled once and every engine (routing stores, load states,
    SB-DP, the greedy baselines, the LP generator) consumes the instance
    instead of re-walking the model's lists and hashtables. Chains' stages
    are laid out as one global CSR span ([stage_off]), per-stage candidate
    node sets are packed spans sharing the model's enumeration order, and
    the site/VNF tables become flat arrays.

    Two pieces of state are mutable. The demand [scale] factor: engines
    read stage demand as [base *. scale], so {!Eval}'s bisection can probe
    a scaled instance in place instead of allocating a scaled model copy
    per probe. [scale = 1.] (the default) reproduces the model's demand
    bit-for-bit ([x *. 1. = x] for every finite float), and
    [set_scale t f] reproduces {!Model.with_scaled_traffic}[ m f] exactly
    — both compute [base *. f]. And the {e deployment view}:
    {!recompile_deployment} re-derives every deployment-dependent array
    (candidate-node CSR, VNF-deployment CSR, dense capacities) from an
    edited model without touching the chain/stage/topology layout, so
    instance add/remove flows through a live instance instead of forcing
    every consumer to rebuild. Each edit bumps {!deployment_epoch};
    consumers that cache deployment-derived state (the [Load_state]
    stage-cost cache) compare against it.

    Everything else is immutable after {!compile}, so one instance may be
    shared across domains by read-only consumers; an instance whose scale
    or deployment is mutated must be private to its domain. *)

type t

val compile : Model.t -> t

val model : t -> Model.t
val num_chains : t -> int
val num_nodes : t -> int
val num_sites : t -> int
val num_vnfs : t -> int

val max_stages : t -> int
(** Max over chains of {!Model.num_stages} (at least 1) — the stage-cost
    cache key stride. *)

val num_stages_total : t -> int
(** Total global stages, [stage_off.(num_chains)]. *)

val num_stages : t -> int -> int
val stage_index : t -> chain:int -> stage:int -> int
(** The global stage id [stage_off.(chain) + stage]. *)

val recompile_deployment : t -> Model.t -> unit
(** [recompile_deployment t m'] switches [t] to [m']'s deployment set:
    rebuilds the candidate-node CSR ([dst_off]/[dst_nodes] and the shared
    stage lists), the VNF-deployment CSR ([vdep_off]/[vdep_site]/
    [vdep_cap]) and refills the dense [dep_cap] {e in place} (long-lived
    aliases stay valid), then bumps {!deployment_epoch}. [m'] must have
    the same chains, stage counts, sites, VNFs and nodes as the compiled
    model — only deployments (and traffic-independent candidate sets
    derived from them) may differ; anything else raises
    [Invalid_argument]. Cost is O(stages + deployments), not a full
    {!compile}. *)

val deployment_epoch : t -> int
(** Starts at 0, +1 per {!recompile_deployment} — the invalidation stamp
    for deployment-derived caches. *)

val scale : t -> float
val set_scale : t -> float -> unit
(** Set the demand scale factor read back by {!fwd_traffic} /
    {!rev_traffic} / {!fwd_base}-consuming engines. *)

val fwd_traffic : t -> chain:int -> stage:int -> float
(** [w_cz *. scale]. *)

val rev_traffic : t -> chain:int -> stage:int -> float

val stage_dst_nodes : t -> chain:int -> stage:int -> int list
(** Same nodes, same order as {!Model.stage_dst_nodes}, but the list is
    built once at compile time and shared. *)

val stage_src_nodes : t -> chain:int -> stage:int -> int list

(** {2 Packed views}

    The returned arrays are the instance's own storage, exposed for
    zero-overhead hot loops — callers must not mutate them. *)

val stage_off : t -> int array
(** Length [num_chains + 1]; global stage span of each chain. *)

val fwd_base : t -> float array
(** Per global stage, unscaled — multiply by {!scale}. *)

val rev_base : t -> float array

val stage_vnf : t -> int array
(** Per global stage: VNF id of the receiving element, [-1] for the final
    (egress) stage. *)

val dst_off : t -> int array
(** CSR offsets into {!dst_nodes}, per global stage. *)

val dst_nodes : t -> int array

val node_site : t -> int array
(** Per node: its site id or [-1]. *)

val site_cap : t -> float array
val site_node : t -> int array
val vnf_cpu : t -> float array

val dep_cap : t -> float array
(** Dense [vnf * num_sites + site -> m_sf]; [0.] when not deployed. *)

val vdep_off : t -> int array
(** CSR offsets into {!vdep_site} / {!vdep_cap}, per VNF, in
    {!Model.vnf_sites} order (increasing site id). *)

val vdep_site : t -> int array
val vdep_cap : t -> float array
