(** Distributed load-balancing baselines (Section 7.2 / 7.3).

    These schemes route each chain hop by hop with only local knowledge, in
    contrast to Global Switchboard's holistic optimization:

    - {!anycast} picks, at every stage, the deployment site closest (by
      propagation delay) to the current location, ignoring both compute
      and network load — the ANYCAST baseline.
    - {!compute_aware} also scans sites in increasing delay order but skips
      sites whose remaining VNF/site compute capacity cannot absorb the
      chain; if no site has room it falls back to the one with the most
      headroom — the COMPUTE-AWARE baseline.
    - {!onehop} greedily minimizes SB-DP's full cost (latency +
      utilization) per hop, but without the chain-wide dynamic program —
      the ONEHOP ablation of Fig. 13a.

    All three process chains sequentially in chain-id order, committing
    load as they go (compute_aware and onehop are load-dependent). *)

val anycast : Model.t -> Routing.t
val compute_aware : Model.t -> Routing.t
val onehop : ?util_weight:float -> Model.t -> Routing.t
(** [util_weight] defaults to {!Dp_routing.default_util_weight}. *)

(** {2 Arena forms}

    Each [_into] variant resets the given load state and routing (both
    compiled from the same {!Instance}; [Invalid_argument] otherwise) and
    routes in place — no per-call allocation, demand read through the
    instance so {!Instance.set_scale} is honoured. Used by
    {!Eval.max_load_factor}'s bisection. *)

val anycast_into : Load_state.t -> Routing.t -> Routing.t
val compute_aware_into : Load_state.t -> Routing.t -> Routing.t
val onehop_into : ?util_weight:float -> Load_state.t -> Routing.t -> Routing.t

(** {2 Building blocks}

    Exposed for custom hop-by-hop schemes (notably the decentralized
    anycast control arm in [Sb_adapt.Anycast], which reuses the walk with
    a chooser driven by flooded advertisements instead of ground truth). *)

type choose = Load_state.t -> int -> int -> int -> int list -> int
(** [choose state chain stage current candidates] returns the chosen
    destination node for the stage. [candidates] is the stage's deployment
    node list ({!Instance.stage_dst_nodes} order). *)

val route : Model.t -> choose -> Routing.t
(** Compile the model and route every chain hop by hop with [choose],
    committing load between walks (chain-id order). *)

val route_into : Load_state.t -> Routing.t -> choose -> Routing.t
(** Arena form of {!route}: resets [state] and [routing] (which must share
    an instance) and routes in place. *)

val by_delay : Model.t -> int -> int list -> int list
(** [by_delay m current candidates] sorts candidate nodes by propagation
    delay from [current] — the anycast preference order. *)
