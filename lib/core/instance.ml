type t = {
  mutable m : Model.t;
  num_chains : int;
  num_nodes : int;
  num_sites : int;
  num_vnfs : int;
  max_stages : int;
  (* chain -> first global stage id; length num_chains + 1. Stage [z] of
     chain [c] is global stage [stage_off.(c) + z]. *)
  stage_off : int array;
  (* Per global stage: the model's (unscaled) demand. Engines read demand
     as [base *. scale]; [scale = 1.] reproduces the model bit-for-bit
     because [x *. 1. = x] for every float the model can hold. *)
  fwd_base : float array;
  rev_base : float array;
  mutable scale : float;
  (* Per global stage: VNF id of the receiving element; -1 when the stage
     ends at the egress. *)
  stage_vnf : int array;
  (* Per global stage: candidate destination nodes (N_cz^dst, Eq. 2) in
     Model.stage_dst_nodes order, as a CSR span and as the identical shared
     list (for consumers that sort or pattern-match). The CSR arrays are
     replaced wholesale by [recompile_deployment] (their sizes track the
     deployment set); every engine re-reads them through the accessors per
     call, so swapping the arrays is safe. *)
  mutable dst_off : int array;
  mutable dst_nodes : int array;
  dst_lists : int list array;
  src_lists : int list array;
  (* node -> site id (-1 when the node hosts no site), and the site/VNF
     tables flattened to arrays. *)
  node_site : int array;
  site_cap : float array;
  site_node : int array;
  vnf_cpu : float array;
  (* Dense (vnf, site) -> m_sf; 0. when not deployed. Indexed
     [vnf * num_sites + site]. Fixed size, so [recompile_deployment]
     refills it in place — [Load_state] holds a permanent alias. *)
  dep_cap : float array;
  (* Per VNF: its deployments as a CSR span, in Model.vnf_sites order
     (increasing site id) — the iteration order bottleneck scans rely on.
     Replaced wholesale by [recompile_deployment]. *)
  mutable vdep_off : int array;
  mutable vdep_site : int array;
  mutable vdep_cap : float array;
  (* Bumped by every [recompile_deployment]; consumers caching
     deployment-derived state (Load_state's stage-cost cache) compare
     against it to invalidate. *)
  mutable dep_epoch : int;
}

(* CSR pack of the per-stage candidate-node lists. *)
let build_dst_csr ~total dst_lists =
  let dst_off = Array.make (max 1 total + 1) 0 in
  for gz = 0 to total - 1 do
    dst_off.(gz + 1) <- dst_off.(gz) + List.length dst_lists.(gz)
  done;
  let dst_nodes = Array.make (max 1 dst_off.(total)) 0 in
  for gz = 0 to total - 1 do
    let k = ref dst_off.(gz) in
    List.iter
      (fun n ->
        dst_nodes.(!k) <- n;
        incr k)
      dst_lists.(gz)
  done;
  (dst_off, dst_nodes)

(* VNF-deployment CSR; fills the caller's (pre-zeroed) dense [dep_cap]
   as a side effect. *)
let build_vdeps m ~nf ~ns dep_cap =
  let vdep_off = Array.make (nf + 1) 0 in
  for f = 0 to nf - 1 do
    vdep_off.(f + 1) <- vdep_off.(f) + List.length (Model.vnf_sites m f)
  done;
  let ndep = vdep_off.(nf) in
  let vdep_site = Array.make (max 1 ndep) 0 in
  let vdep_cap = Array.make (max 1 ndep) 0. in
  for f = 0 to nf - 1 do
    let k = ref vdep_off.(f) in
    List.iter
      (fun (s, cap) ->
        vdep_site.(!k) <- s;
        vdep_cap.(!k) <- cap;
        dep_cap.((f * ns) + s) <- cap;
        incr k)
      (Model.vnf_sites m f)
  done;
  (vdep_off, vdep_site, vdep_cap)

let compile m =
  let nc = Model.num_chains m in
  let ns = Model.num_sites m in
  let nf = Model.num_vnfs m in
  let nn = Sb_net.Topology.num_nodes (Model.topology m) in
  let stage_off = Array.make (nc + 1) 0 in
  let max_stages = ref 1 in
  for c = 0 to nc - 1 do
    let nz = Model.num_stages m c in
    stage_off.(c + 1) <- stage_off.(c) + nz;
    if nz > !max_stages then max_stages := nz
  done;
  let total = stage_off.(nc) in
  let fwd_base = Array.make (max 1 total) 0. in
  let rev_base = Array.make (max 1 total) 0. in
  let stage_vnf = Array.make (max 1 total) (-1) in
  let dst_lists = Array.make (max 1 total) [] in
  let src_lists = Array.make (max 1 total) [] in
  for c = 0 to nc - 1 do
    let base = stage_off.(c) in
    for z = 0 to stage_off.(c + 1) - base - 1 do
      let gz = base + z in
      fwd_base.(gz) <- Model.fwd_traffic m ~chain:c ~stage:z;
      rev_base.(gz) <- Model.rev_traffic m ~chain:c ~stage:z;
      (match Model.stage_dst_vnf m ~chain:c ~stage:z with
      | Some f -> stage_vnf.(gz) <- f
      | None -> ());
      dst_lists.(gz) <- Model.stage_dst_nodes m ~chain:c ~stage:z;
      src_lists.(gz) <- Model.stage_src_nodes m ~chain:c ~stage:z
    done
  done;
  let dst_off, dst_nodes = build_dst_csr ~total dst_lists in
  let node_site = Array.make (max 1 nn) (-1) in
  for n = 0 to nn - 1 do
    match Model.site_of_node m n with
    | Some s -> node_site.(n) <- s
    | None -> ()
  done;
  let dep_cap = Array.make (max 1 (nf * ns)) 0. in
  let vdep_off, vdep_site, vdep_cap = build_vdeps m ~nf ~ns dep_cap in
  {
    m;
    num_chains = nc;
    num_nodes = nn;
    num_sites = ns;
    num_vnfs = nf;
    max_stages = !max_stages;
    stage_off;
    fwd_base;
    rev_base;
    scale = 1.;
    stage_vnf;
    dst_off;
    dst_nodes;
    dst_lists;
    src_lists;
    node_site;
    site_cap = Array.init ns (Model.site_capacity m);
    site_node = Array.init ns (Model.site_node m);
    vnf_cpu = Array.init nf (Model.vnf_cpu_per_unit m);
    dep_cap;
    vdep_off;
    vdep_site;
    vdep_cap;
    dep_epoch = 0;
  }

let recompile_deployment t m' =
  if
    Model.num_chains m' <> t.num_chains
    || Model.num_sites m' <> t.num_sites
    || Model.num_vnfs m' <> t.num_vnfs
    || Sb_net.Topology.num_nodes (Model.topology m') <> t.num_nodes
  then invalid_arg "Instance.recompile_deployment: model shape changed";
  for c = 0 to t.num_chains - 1 do
    if Model.num_stages m' c <> t.stage_off.(c + 1) - t.stage_off.(c) then
      invalid_arg "Instance.recompile_deployment: chain stages changed"
  done;
  (* Candidate node sets follow the deployment set; the per-stage list
     array keeps its length (stage counts are unchanged), so entries are
     overwritten in place and the CSR arrays rebuilt. *)
  let total = t.stage_off.(t.num_chains) in
  for c = 0 to t.num_chains - 1 do
    let base = t.stage_off.(c) in
    for z = 0 to t.stage_off.(c + 1) - base - 1 do
      let gz = base + z in
      t.dst_lists.(gz) <- Model.stage_dst_nodes m' ~chain:c ~stage:z;
      t.src_lists.(gz) <- Model.stage_src_nodes m' ~chain:c ~stage:z
    done
  done;
  let dst_off, dst_nodes = build_dst_csr ~total t.dst_lists in
  t.dst_off <- dst_off;
  t.dst_nodes <- dst_nodes;
  (* [dep_cap] is permanently aliased by Load_state: refill in place. *)
  Array.fill t.dep_cap 0 (Array.length t.dep_cap) 0.;
  let vdep_off, vdep_site, vdep_cap =
    build_vdeps m' ~nf:t.num_vnfs ~ns:t.num_sites t.dep_cap
  in
  t.vdep_off <- vdep_off;
  t.vdep_site <- vdep_site;
  t.vdep_cap <- vdep_cap;
  t.m <- m';
  t.dep_epoch <- t.dep_epoch + 1

let deployment_epoch t = t.dep_epoch

let model t = t.m
let num_chains t = t.num_chains
let num_nodes t = t.num_nodes
let num_sites t = t.num_sites
let num_vnfs t = t.num_vnfs
let max_stages t = t.max_stages
let num_stages_total t = t.stage_off.(t.num_chains)
let num_stages t c = t.stage_off.(c + 1) - t.stage_off.(c)
let stage_index t ~chain ~stage = t.stage_off.(chain) + stage
let scale t = t.scale
let set_scale t s = t.scale <- s

let fwd_traffic t ~chain ~stage =
  t.fwd_base.(t.stage_off.(chain) + stage) *. t.scale

let rev_traffic t ~chain ~stage =
  t.rev_base.(t.stage_off.(chain) + stage) *. t.scale

let stage_dst_nodes t ~chain ~stage = t.dst_lists.(t.stage_off.(chain) + stage)
let stage_src_nodes t ~chain ~stage = t.src_lists.(t.stage_off.(chain) + stage)

let stage_off t = t.stage_off
let fwd_base t = t.fwd_base
let rev_base t = t.rev_base
let stage_vnf t = t.stage_vnf
let dst_off t = t.dst_off
let dst_nodes t = t.dst_nodes
let node_site t = t.node_site
let site_cap t = t.site_cap
let site_node t = t.site_node
let vnf_cpu t = t.vnf_cpu
let dep_cap t = t.dep_cap
let vdep_off t = t.vdep_off
let vdep_site t = t.vdep_site
let vdep_cap t = t.vdep_cap
