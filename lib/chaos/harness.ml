module Engine = Sb_sim.Engine
module System = Sb_ctrl.System
module Store = Sb_music.Store
module Rng = Sb_util.Rng
open Sb_ctrl.Types

let num_sites = 6
let gsb_site = 0
let horizon = 20.
let default_epoch_len = 1.0
let probe_tuples = 4

(* Symmetric deterministic wide-area latency matrix, 12–21 ms. *)
let delay i j = if i = j then 0. else 0.012 +. (0.003 *. float_of_int ((i + j) mod 4))

type result = {
  schedule : Schedule.t;
  violations : Invariant.violation list;
  events : int; (* engine events processed after arming *)
  completed : bool; (* the engine drained within the event budget *)
}

let pp_result ppf r =
  if r.violations = [] then
    Format.fprintf ppf "OK: %d events, %s, no invariant violations" r.events
      (if r.completed then "quiesced" else "BUDGET EXHAUSTED")
  else begin
    Format.fprintf ppf "@[<v>%d violation(s) after %d events%s:"
      (List.length r.violations) r.events
      (if r.completed then "" else " (budget exhausted)");
    List.iter
      (fun v -> Format.fprintf ppf "@,  %a" Invariant.pp_violation v)
      r.violations;
    Format.fprintf ppf "@]"
  end

(* The standard deployment the schedules run against: 6 sites, 3 VNFs
   spread over the middle sites, 3 chains with 1–2 routes each, flow
   state in a k = 2 DHT over the forwarders (so crash/restart is
   survivable by design), a MUSIC store for coordinator recovery, and
   ample VNF capacity — admission rejections are a different experiment;
   here every violation should be an interleaving bug, not a capacity
   veto. *)

type spec_def = {
  sd_name : string;
  sd_vnfs : int list;
  sd_ingress : int;
  sd_egress : int;
  sd_traffic : float;
  sd_routes : (int array * float) list; (* committed at setup *)
  sd_alt : (int array * float) list; (* alternated in by mid-chaos updates *)
}

let specs =
  [
    {
      sd_name = "c0";
      sd_vnfs = [ 0; 1 ];
      sd_ingress = 0;
      sd_egress = 5;
      sd_traffic = 4.;
      sd_routes = [ ([| 0; 1; 2; 5 |], 0.5); ([| 0; 2; 3; 5 |], 0.5) ];
      sd_alt = [ ([| 0; 1; 2; 5 |], 0.75); ([| 0; 2; 3; 5 |], 0.25) ];
    };
    {
      sd_name = "c1";
      sd_vnfs = [ 1; 2 ];
      sd_ingress = 1;
      sd_egress = 4;
      sd_traffic = 3.;
      sd_routes = [ ([| 1; 2; 4; 4 |], 0.6); ([| 1; 3; 5; 4 |], 0.4) ];
      sd_alt = [ ([| 1; 2; 4; 4 |], 0.3); ([| 1; 3; 5; 4 |], 0.7) ];
    };
    {
      sd_name = "c2";
      sd_vnfs = [ 0; 1; 2 ];
      sd_ingress = 0;
      sd_egress = 5;
      sd_traffic = 2.;
      sd_routes = [ ([| 0; 1; 2; 4; 5 |], 1.0) ];
      sd_alt = [ ([| 0; 1; 2; 4; 5 |], 0.6); ([| 0; 2; 3; 5; 5 |], 0.4) ];
    };
  ]

let routes_of defs = List.map (fun (sites, w) -> { element_sites = sites; weight = w }) defs

let run ?(epoch_len = default_epoch_len) ?(event_budget = 2_000_000) ?(lanes = 1)
    (sched : Schedule.t) =
  let seed = sched.Schedule.seed in
  let sys =
    System.create ~seed:(seed + 1) ~retry_interval:0.4
      ~flow_store:(Sb_dataplane.Fabric.Replicated 2) ~lanes ~num_sites ~delay
      ~gsb_site ()
  in
  let eng = System.engine sys in
  (* VNF 0 at sites 1,2; VNF 1 at 2,3; VNF 2 at 4,5. *)
  List.iter
    (fun (vnf, sites) ->
      List.iter
        (fun site -> System.deploy_vnf sys ~vnf ~site ~capacity:100. ~instances:2)
        sites)
    [ (0, [ 1; 2 ]); (1, [ 2; 3 ]); (2, [ 4; 5 ]) ];
  for s = 0 to num_sites - 1 do
    System.register_edge sys ~site:s ~attachment:(Printf.sprintf "site%d" s)
  done;
  System.set_route_policy sys (fun spec ~exclude:_ ->
      match List.find_opt (fun d -> d.sd_name = spec.spec_name) specs with
      | Some d -> Some (routes_of d.sd_routes)
      | None -> None);
  let store = Store.create eng ~replica_sites:[ 1; 3; 5 ] ~delay in
  System.attach_store sys store;
  let ids =
    List.map
      (fun d ->
        ( System.request_chain sys
            {
              spec_name = d.sd_name;
              ingress_attachment = Printf.sprintf "site%d" d.sd_ingress;
              egress_attachment = Printf.sprintf "site%d" d.sd_egress;
              vnfs = d.sd_vnfs;
              traffic = d.sd_traffic;
            },
          d ))
      specs
  in
  Engine.run eng;
  (* --- chains established; arm the schedule and the checker --- *)
  let inv = Invariant.create ~sys ~num_sites ~seed in
  List.iter
    (fun (chain, _) -> Invariant.register_chain inv ~chain ~tuples:probe_tuples)
    ids;
  (* Pin the probe connections' paths before any fault fires, so the
     affinity and durability checks have a fault-free baseline. *)
  Invariant.check_epoch inv;
  Inject.arm ~sys ~store
    ~observe:(fun ~msg ~topic ~src ~dst -> Invariant.observe_wan inv ~msg ~topic ~src ~dst)
    ~rng:(Rng.split ~stream:1 (Rng.create seed))
    sched;
  let t0 = Engine.now eng in
  let epochs = int_of_float (Float.round (sched.Schedule.horizon /. epoch_len)) in
  for e = 1 to epochs do
    let te = t0 +. (float_of_int e *. epoch_len) in
    ignore (Engine.schedule_at eng ~time:te (fun () -> Invariant.check_epoch inv));
    (* Every other epoch, roll a route update through the 2PC — the
       rollout racing the faults is where the interesting interleavings
       live. Alternate between the two route sets per chain. *)
    if e mod 2 = 0 then
      ignore
        (Engine.schedule_at eng ~time:(te +. (0.3 *. epoch_len)) (fun () ->
             List.iter
               (fun (chain, d) ->
                 let defs = if e mod 4 = 0 then d.sd_routes else d.sd_alt in
                 System.update_routes sys ~chain (routes_of defs))
               ids))
  done;
  (* Drain under an event budget: unbounded 2PC retransmission is safe by
     design (loss windows end, participants come back), but a bug that
     breaks quiescence should surface as a violation, not a hang. *)
  let events = ref 0 in
  let completed = ref true in
  (try
     while Engine.step eng do
       incr events;
       if !events >= event_budget then begin
         completed := false;
         raise Exit
       end
     done
   with Exit -> ());
  if !completed then Invariant.check_quiesce inv;
  let violations =
    Invariant.violations inv
    @
    if !completed then []
    else
      [ { Invariant.inv = "quiescence";
          detail = Printf.sprintf "engine still busy after %d events" event_budget;
        } ]
  in
  { schedule = sched; violations; events = !events; completed = !completed }

let run_seed ?epoch_len ?event_budget ?lanes seed =
  run ?epoch_len ?event_budget ?lanes
    (Schedule.generate ~seed ~horizon ~num_sites)

(* Greedy shrink: repeatedly take the first candidate that still
   violates, until none does. *)
let shrink_failing sched =
  let fails s = (run s).violations <> [] in
  let rec go s =
    match List.find_opt fails (Schedule.shrink s) with
    | Some smaller -> go smaller
    | None -> s
  in
  go sched

let search ~base_seed ~budget =
  let rec loop i =
    if i >= budget then None
    else begin
      let seed = base_seed + i in
      let r = run_seed seed in
      if r.violations = [] then loop (i + 1)
      else
        let minimal = shrink_failing r.schedule in
        Some (run minimal)
    end
  in
  loop 0
