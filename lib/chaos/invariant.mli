(** Whole-system invariant checking over an assembled deployment.

    Two check levels. {!check_epoch} runs {e safety} probes during the
    chaos window: any probe that succeeds must be conformant (VNFs in
    spec order), affine (same instances as the connection's first
    success), and symmetric (the reply retraces the same instances
    backwards) — probe {e failures} are tolerated, since a pinned path
    may legitimately cross a dead forwarder mid-fault. {!check_quiesce}
    runs after the engine drains with every fault ended, and is strict:
    no transaction in flight, every relevant site holds every stage
    rule of every committed chain (2PC atomicity), VNF committed load
    equals what the final routes imply, and every probe must succeed
    (DHT flow-state durability across crashes).

    The bus single-copy property (Section 6) is monitored continuously
    via {!observe_wan}, plugged into {!Inject.arm}'s [observe] hook.

    {e Drain safety} (elastic placement, DESIGN.md section 16) is
    observed from the outside, with no wiring into the control loop: a
    deployment whose every instance has balancer weight zero is
    draining, and its instance ids are snapshotted
    ({!Sb_ctrl.System.site_vnf_instance_ids}). From then on, no {e new}
    connection may pin to those instances (established ones keep them —
    that is flow affinity). If the deployment later vanishes it was
    retracted: at that instant no flow-table cell may still pin a
    connection to the retired instances, and no successful probe may
    ever traverse them again. If the instances instead come back
    weighted, the drain aborted (GSB death or timeout) and the
    deployment must be whole — which the quiesce checks confirm: no
    drain in flight, and no deployment left weightless (a half-done
    scale-in that neither retracted nor rolled back breaks scale-in
    atomicity).

    Violations are deduplicated; each distinct one is reported once. *)

type violation = { inv : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type t

val create : sys:Sb_ctrl.System.t -> num_sites:int -> seed:int -> t

val register_chain : t -> chain:int -> tuples:int -> unit
(** Draw [tuples] probe connections for a chain (from the checker's own
    seeded RNG). Their first successful probe pins the instances used by
    the affinity and durability checks. *)

val observe_wan : t -> msg:int -> topic:string -> src:int -> dst:int -> unit
(** Count wide-area copies per (message, destination site): more than
    one, or a copy to a site with no subscription, is a violation. *)

val check_epoch : t -> unit
val check_quiesce : t -> unit

val violations : t -> violation list
(** In detection order. *)
