module System = Sb_ctrl.System
module Bus = Sb_msgbus.Bus
module Shard = Sb_dataplane.Shard
module Packet = Sb_dataplane.Packet
module Rng = Sb_util.Rng
open Sb_ctrl.Types

type violation = { inv : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.inv v.detail

type t = {
  sys : System.t;
  num_sites : int;
  rng : Rng.t;
  chains : (int, Packet.five_tuple array) Hashtbl.t;
  pinned : (int * Packet.five_tuple, int list) Hashtbl.t;
  (* (chain, tuple) -> VNF instances the connection was pinned to the
     first time its probe succeeded *)
  wan_copies : (int * int, int) Hashtbl.t; (* (msg ordinal, dst site) -> copies *)
  (* Elastic-placement drain tracking (DESIGN.md section 16). A draining
     deployment is observable from outside: still deployed, but every
     instance hidden from the balancer (weight zero). We snapshot its
     instance ids when we first see that state; when the deployment later
     vanishes those ids are retired (they must never carry traffic again),
     and when the instances come back weighted the drain aborted and the
     deployment is whole again. *)
  draining : (int * int, int list) Hashtbl.t; (* (vnf, site) -> snapshot ids *)
  draining_ids : (int, int * int) Hashtbl.t; (* instance -> (vnf, site) *)
  retired : (int, int * int) Hashtbl.t; (* instance -> (vnf, ex-site) *)
  seen : (string, unit) Hashtbl.t; (* dedup: one report per distinct violation *)
  mutable violations : violation list;
}

let create ~sys ~num_sites ~seed =
  {
    sys;
    num_sites;
    rng = Rng.split ~stream:2 (Rng.create seed);
    chains = Hashtbl.create 8;
    pinned = Hashtbl.create 64;
    wan_copies = Hashtbl.create 4096;
    draining = Hashtbl.create 4;
    draining_ids = Hashtbl.create 16;
    retired = Hashtbl.create 16;
    seen = Hashtbl.create 16;
    violations = [];
  }

let violate t inv fmt =
  Printf.ksprintf
    (fun detail ->
      let key = inv ^ "|" ^ detail in
      if not (Hashtbl.mem t.seen key) then begin
        Hashtbl.replace t.seen key ();
        t.violations <- { inv; detail } :: t.violations
      end)
    fmt

let violations t = List.rev t.violations

let register_chain t ~chain ~tuples =
  Hashtbl.replace t.chains chain
    (Array.init tuples (fun _ -> Packet.random_tuple t.rng))

(* ----- bus single-copy (Section 6): at most one wide-area copy per
   published message per subscribing site, and never to a site without a
   subscription ----- *)

let observe_wan t ~msg ~topic ~src:_ ~dst =
  let bus = System.bus t.sys in
  let n = try Hashtbl.find t.wan_copies (msg, dst) with Not_found -> 0 in
  Hashtbl.replace t.wan_copies (msg, dst) (n + 1);
  if n + 1 > 1 then
    violate t "bus-single-copy" "message %d sent %d copies to site %d (topic %s)"
      msg (n + 1) dst topic;
  if not (List.mem dst (Bus.subscriber_sites bus ~topic)) then
    violate t "bus-single-copy" "message %d sent to non-subscribing site %d (topic %s)"
      msg dst topic

(* ----- drain safety (elastic placement, DESIGN.md section 16) ----- *)

let observe_deployments t =
  let sys = t.sys in
  let fabric = System.shard sys in
  (* Resolve tracked drains first. A deployment that vanished was
     retracted: at that instant no flow-table cell (any lane, any
     replica) may still pin a connection to its instances — retracting
     under a live pin is exactly the blackhole the drain protocol
     exists to prevent. [Shard.instance_flow_count] still sees the
     cells after [fail_instance], so a premature retraction is
     detectable post hoc. A deployment whose instances came back
     weighted was an aborted drain, restored verbatim. *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.draining []
  |> List.sort compare
  |> List.iter (fun ((vnf, site), ids) ->
         if not (List.mem vnf (System.site_deployed_vnfs sys ~site)) then begin
           List.iter
             (fun i ->
               let live = Shard.instance_flow_count fabric i in
               if live > 0 then
                 violate t "drain-safety"
                   "vnf %d site %d: instance %d retracted with %d established flow(s) still pinned"
                   vnf site i live;
               Hashtbl.remove t.draining_ids i;
               Hashtbl.replace t.retired i (vnf, site))
             ids;
           Hashtbl.remove t.draining (vnf, site)
         end
         else if System.site_vnf_instances sys ~site ~vnf <> [] then begin
           List.iter (fun i -> Hashtbl.remove t.draining_ids i) ids;
           Hashtbl.remove t.draining (vnf, site)
         end);
  (* Detect new drains: deployed, but every instance hidden from the
     balancer. (A site outage that kills the instances looks the same
     from here; that is harmless — the entry clears itself when they
     come back, and dead instances cannot take new pins meanwhile.) *)
  for site = 0 to t.num_sites - 1 do
    List.iter
      (fun vnf ->
        if
          (not (Hashtbl.mem t.draining (vnf, site)))
          && System.site_vnf_instances sys ~site ~vnf = []
        then begin
          let ids = System.site_vnf_instance_ids sys ~site ~vnf in
          Hashtbl.replace t.draining (vnf, site) ids;
          List.iter (fun i -> Hashtbl.replace t.draining_ids i (vnf, site)) ids
        end)
      (System.site_deployed_vnfs sys ~site)
  done

(* ----- data-path invariants, via probes ----- *)

let tuple_str tu = Format.asprintf "%a" Packet.pp_tuple tu

let probe_invariants t ~strict ~chain (spec : chain_spec) tu =
  let fabric = System.shard t.sys in
  match System.probe_chain t.sys ~chain tu with
  | Error e ->
    (* During a fault window a probe may legitimately fail (its pinned
       path crosses a dead forwarder). Once every fault has ended and
       the system has quiesced, every probe must go through. *)
    if strict then
      violate t "liveness" "chain %d %s: forward probe failed: %s" chain
        (tuple_str tu)
        (Format.asprintf "%a" Shard.pp_error e)
  | Ok trace ->
    let vnfs = Shard.vnfs_in_trace fabric trace in
    if vnfs <> spec.vnfs then
      violate t "conformity" "chain %d %s: traversed VNFs %s, spec %s" chain
        (tuple_str tu)
        (String.concat "," (List.map string_of_int vnfs))
        (String.concat "," (List.map string_of_int spec.vnfs));
    let insts = Shard.instances_in_trace trace in
    (* Drain safety: a retired instance must never appear in a trace
       again, and a draining one (weight zero) must never be handed a
       new connection — only pins established before the drain may
       still cross it. *)
    List.iter
      (fun i ->
        match Hashtbl.find_opt t.retired i with
        | Some (vnf, site) ->
          violate t "drain-safety"
            "chain %d %s: routed through retired instance %d (vnf %d, ex-site %d)"
            chain (tuple_str tu) i vnf site
        | None -> ())
      insts;
    (match Hashtbl.find_opt t.pinned (chain, tu) with
    | Some prev when prev <> insts ->
      if List.exists (fun i -> Hashtbl.mem t.retired i) prev then
        (* The pinned instances were drained and retracted, and the
           drain only completes once this connection's flow-table
           entries are gone — so the old connection ended and the probe
           just opened a new one. Pin it afresh (the draining check
           above vetoes it landing on a half-drained deployment). *)
        Hashtbl.replace t.pinned (chain, tu) insts
      else
        violate t "flow-affinity" "chain %d %s: instances changed %s -> %s" chain
          (tuple_str tu)
          (String.concat "," (List.map string_of_int prev))
          (String.concat "," (List.map string_of_int insts))
    | Some _ -> ()
    | None ->
      List.iter
        (fun i ->
          match Hashtbl.find_opt t.draining_ids i with
          | Some (vnf, site) ->
            violate t "drain-safety"
              "chain %d %s: new connection pinned to draining instance %d (vnf %d, site %d)"
              chain (tuple_str tu) i vnf site
          | None -> ())
        insts;
      Hashtbl.replace t.pinned (chain, tu) insts);
    (* Symmetric return: the reply must retrace the same instances in
       reverse. A connection whose forward direction just worked has
       live state end to end, so the reverse must too (in the
       replicated flow store it survives forwarder crashes). *)
    (match System.chain_egress_site t.sys ~chain with
    | None -> ()
    | Some egress_site -> (
      match System.site_edge t.sys egress_site with
      | None -> ()
      | Some egress ->
        (match
           Shard.send_reverse fabric ~egress ~chain_label:chain
             ~egress_label:egress_site tu
         with
        | Error e ->
          violate t "symmetric-return" "chain %d %s: reverse failed: %s" chain
            (tuple_str tu)
            (Format.asprintf "%a" Shard.pp_error e)
        | Ok rtrace ->
          let rinsts = List.rev (Shard.instances_in_trace rtrace) in
          if rinsts <> insts then
            violate t "symmetric-return"
              "chain %d %s: reverse instances %s, forward %s" chain (tuple_str tu)
              (String.concat "," (List.map string_of_int rinsts))
              (String.concat "," (List.map string_of_int insts)))))

let check_probes t ~strict =
  observe_deployments t;
  Hashtbl.fold (fun chain tuples acc -> (chain, tuples) :: acc) t.chains []
  |> List.sort compare
  |> List.iter (fun (chain, tuples) ->
         match System.chain_spec t.sys ~chain with
         | None -> violate t "setup" "chain %d unknown to the control plane" chain
         | Some spec ->
           if System.chain_routes t.sys ~chain = [] then begin
             if strict then
               violate t "2pc-atomicity" "chain %d has no committed routes" chain
           end
           else Array.iter (probe_invariants t ~strict ~chain spec) tuples)

let check_epoch t = check_probes t ~strict:false

(* ----- quiesced-state invariants ----- *)

let chain_elements (spec : chain_spec) = Array.of_list ((-1) :: spec.vnfs @ [ -2 ])

let check_quiesce t =
  let sys = t.sys in
  let inflight = System.txns_in_flight sys in
  if inflight > 0 then
    violate t "2pc-atomicity" "%d transactions still in flight after quiesce" inflight;
  if System.gsb_is_down sys then
    violate t "setup" "gsb still down after quiesce";
  (* Drain atomicity: once everything has settled, every drain has
     resolved — completed (deployment gone) or aborted (weights
     restored). A deployment stuck weightless is a half-done scale-in
     that neither retracted nor rolled back. *)
  let churn = System.deployment_churn sys in
  if churn.System.ch_draining > 0 then
    violate t "drain-atomicity" "%d drain(s) still in flight after quiesce"
      churn.System.ch_draining;
  observe_deployments t;
  Hashtbl.fold (fun k _ acc -> k :: acc) t.draining []
  |> List.sort compare
  |> List.iter (fun (vnf, site) ->
         violate t "drain-atomicity"
           "vnf %d site %d: weightless after quiesce (neither retracted nor restored)"
           vnf site);
  (* Expected committed VNF load per (vnf, site), from the final routes. *)
  let expected = Hashtbl.create 16 in
  let bump vnf site w =
    let k = (vnf, site) in
    Hashtbl.replace expected k ((try Hashtbl.find expected k with Not_found -> 0.) +. w)
  in
  List.iter
    (fun chain ->
      match (System.chain_spec sys ~chain, System.chain_routes sys ~chain) with
      | Some spec, (_ :: _ as routes) ->
        let elements = chain_elements spec in
        let stages = List.length spec.vnfs + 1 in
        List.iter
          (fun r ->
            Array.iteri
              (fun z v ->
                if v >= 0 then bump v r.element_sites.(z) (r.weight *. spec.traffic))
              elements)
          routes;
        (* 2PC atomicity, route-install half: every site relevant to a
           stage (it hosts the sending or the receiving element of some
           route) must have the stage's rule installed — no site left
           with a half-installed route set. *)
        let egress = Option.get (System.chain_egress_site sys ~chain) in
        for site = 0 to t.num_sites - 1 do
          let installed = System.site_installed_rules sys ~site in
          for z = 0 to stages - 1 do
            let relevant =
              List.exists
                (fun r -> r.element_sites.(z) = site || r.element_sites.(z + 1) = site)
                routes
            in
            if relevant && not (List.mem_assoc (chain, egress, z) installed) then
              violate t "2pc-atomicity"
                "chain %d: site %d missing rule for stage %d after quiesce" chain
                site z
          done
        done
      | _ -> ())
    (System.chain_ids sys);
  (* 2PC atomicity, admission half: the VNF controllers' committed loads
     must equal what the final committed routes imply — everywhere. A
     lost Commit leaves a reservation unconverted (actual < expected); a
     stale allocation never replaced shows up as load at a (vnf, site)
     the final routes no longer touch. *)
  let vnf_ids =
    List.concat_map
      (fun chain ->
        match System.chain_spec sys ~chain with Some s -> s.vnfs | None -> [])
      (System.chain_ids sys)
    |> List.sort_uniq compare
  in
  List.iter
    (fun vnf ->
      for site = 0 to t.num_sites - 1 do
        let load = try Hashtbl.find expected (vnf, site) with Not_found -> 0. in
        let actual = System.vnf_committed_load sys ~vnf ~site in
        if Float.abs (actual -. load) > 1e-6 *. Float.max 1. load then
          violate t "2pc-atomicity"
            "vnf %d site %d: committed load %.6f, routes imply %.6f" vnf site
            actual load
      done)
    vnf_ids;
  check_probes t ~strict:true
