(** Fault schedules: the vocabulary of things that go wrong.

    A schedule is a finite set of timed fault windows over a simulation
    horizon. Every fault is either a {e process death} (site outage,
    forwarder crash, coordinator failover) with a deterministic
    start/stop, or a {e network pathology} (link flap, probabilistic
    message loss / extra delay, telemetry drop) whose per-message
    decisions are drawn from a seeded {!Sb_util.Rng} at injection time —
    so a (seed, schedule) pair replays bit-identically.

    The fault model is deliberately scoped to keep the checked invariants
    satisfiable: link flaps and outages {e delay} wide-area messages (the
    underlying shared TCP connections retransmit; nothing is silently
    lost), probabilistic loss applies only to loss-{e tolerant} topics
    (2PC control traffic, which the coordinator retransmits, and
    telemetry, which is stale-tolerant by design), and process deaths
    never overlap so the k = 2 replicated flow store always has a live
    copy of every key. *)

type fault =
  | Link_flap of { a : int; b : int; start : float; stop : float }
      (** wide-area messages between sites [a] and [b] (either direction)
          are held back until the flap ends *)
  | Site_outage of { site : int; start : float; stop : float }
      (** the site's forwarders crash at [start] and restart at [stop];
          its wide-area control traffic is delayed until [stop] *)
  | Forwarder_crash of { site : int; start : float; stop : float }
      (** the site's first forwarder crashes and restarts *)
  | Bus_loss of { start : float; stop : float; prob : float }
      (** each wide-area copy on a loss-tolerant topic is dropped with
          probability [prob] *)
  | Bus_delay of { start : float; stop : float; prob : float; max_extra : float }
      (** each wide-area copy gains uniform extra latency in
          [\[0, max_extra)] with probability [prob] (reordering across
          site pairs; per-pair FIFO is preserved by the bus) *)
  | Telemetry_drop of { start : float; stop : float; prob : float }
      (** telemetry-report copies are dropped with probability [prob] *)
  | Gsb_failover of { start : float; stop : float }
      (** the Global Switchboard dies mid-whatever at [start]; the standby
          takes over at [stop] and re-drives persisted chains from the
          MUSIC store *)

type t = { seed : int; horizon : float; num_sites : int; faults : fault list }

val window : fault -> float * float
(** [(start, stop)] of a fault. *)

val is_death : fault -> bool
(** Whether the fault takes a process out of service (these windows are
    kept mutually disjoint by {!generate}). *)

val overlaps : fault -> fault -> bool
(** Whether two fault windows intersect. *)

val generate : seed:int -> horizon:float -> num_sites:int -> t
(** A random schedule of 2–6 faults with windows inside
    [\[0.05, 0.85) * horizon]. Pure function of the arguments. *)

(** {2 Composition}

    The same combinator vocabulary as [Sb_net.Workload], so a scenario's
    demand process and its fault process are built (and scaled down for
    smoke runs) in lockstep. The generated-schedule guarantee that death
    windows stay disjoint is {!generate}'s property, not the type's:
    composed schedules are the caller's responsibility (check with
    {!is_death} / {!overlaps} if the harness invariants need it). *)

val of_faults : seed:int -> horizon:float -> num_sites:int -> fault list -> t
(** Wrap an explicit fault list. Raises [Invalid_argument] on a
    non-positive horizon/site count or a fault window with [stop < start]
    or negative [start]. *)

val overlay : t -> t -> t
(** Union of the fault sets (same [num_sites] required; horizon is the
    max; the left seed is kept). *)

val shift : float -> t -> t
(** Delay every fault window by [d >= 0] seconds; the horizon grows by
    [d]. *)

val stretch : float -> t -> t
(** Scale every window and the horizon by a positive factor — how a
    CI-sized smoke matrix reuses a full-scale schedule. *)

val gsb_outage :
  seed:int -> num_sites:int -> horizon:float -> start:float -> fraction:float -> t
(** One {!Gsb_failover} covering [fraction] of the horizon's remainder
    after [start] ([stop = min horizon (start + fraction * (horizon -
    start))], rounded like {!generate}'s windows) — the x-axis of the
    controller-outage sweep. [fraction = 0] yields an empty schedule;
    [fraction = 1] keeps the Global Switchboard down through the end.
    Raises [Invalid_argument] when [start] is outside the horizon or
    [fraction] outside [0, 1]. *)

val regional_outage :
  seed:int ->
  num_sites:int ->
  horizon:float ->
  sites:int list ->
  start:float ->
  stop:float ->
  t
(** One {!Site_outage} per listed site over [\[start, stop)] — the fault
    half of a regional-failover scenario (the demand half is
    [Sb_net.Workload.regional_failover]). *)

val shrink : t -> t list
(** Smaller candidate schedules, most aggressive first: each fault
    dropped, then each window halved, then each probability halved. The
    searcher keeps a candidate only if it still violates. *)

val pp : Format.formatter -> t -> unit
val pp_fault : Format.formatter -> fault -> unit
val to_string : t -> string
