(** Applies a {!Schedule.t} to an assembled control plane through the
    fault hooks: timed engine events for process deaths (forwarder
    crash/restart, site outage, coordinator failover + store recovery)
    and a wide-area bus hook for network pathologies (flap delays,
    probabilistic loss on loss-tolerant topics, extra delay, telemetry
    drops). All probabilistic decisions come from [rng], drawn in engine
    event order — a (seed, schedule) pair replays bit-identically. *)

val loss_tolerant : string -> bool
(** Topics the control plane is engineered to survive losing copies on:
    2PC participant/vote topics (retransmitted until answered), telemetry
    (stale-tolerant), and the decentralized arm's load advertisements
    (re-flooded every epoch; a site's view just goes stale). *)

val is_telemetry : string -> bool

val arm :
  sys:Sb_ctrl.System.t ->
  ?store:Sb_ctrl.Types.persisted Sb_music.Store.t ->
  ?observe:(msg:int -> topic:string -> src:int -> dst:int -> unit) ->
  rng:Sb_util.Rng.t ->
  Schedule.t ->
  unit
(** Install the schedule, with windows relative to the current virtual
    time. [store] enables post-failover recovery (without it the standby
    comes up empty). [observe] sees every wide-area copy before the fault
    decision — the invariant checker's single-copy monitor plugs in
    here. *)
