module Engine = Sb_sim.Engine
module Bus = Sb_msgbus.Bus
module System = Sb_ctrl.System
module Fabric = Sb_dataplane.Fabric
module Rng = Sb_util.Rng

(* Topics whose loss the control plane is engineered to absorb: 2PC
   prepares/decisions and votes/acks are retransmitted by the coordinator
   until answered, and telemetry reports are stale-tolerant by design
   (the aggregator holds the previous estimate). Everything else on the
   bus — retained route/weight dissemination, chain requests — is
   published once and must not be silently dropped; faults reach it only
   as delay. *)
let loss_tolerant topic =
  let has_prefix p = String.length topic >= String.length p
                     && String.sub topic 0 (String.length p) = p in
  has_prefix "/ctl/" || has_prefix "/gsb/votes/" || has_prefix "/telemetry/"
  || has_prefix "/advert/"

let is_telemetry topic =
  String.length topic >= 11 && String.sub topic 0 11 = "/telemetry/"

let arm ~sys ?store ?observe ~rng (sched : Schedule.t) =
  let eng = System.engine sys in
  let bus = System.bus sys in
  let fabric = System.fabric sys in
  let t0 = Engine.now eng in
  (* Process deaths: deterministic timed events. *)
  List.iter
    (fun fault ->
      let start, stop = Schedule.window fault in
      match fault with
      | Schedule.Site_outage { site; _ } ->
        let fwds () = System.site_forwarders sys site in
        ignore
          (Engine.schedule_at eng ~time:(t0 +. start) (fun () ->
               List.iter (Fabric.fail_forwarder fabric) (fwds ())));
        ignore
          (Engine.schedule_at eng ~time:(t0 +. stop) (fun () ->
               List.iter (Fabric.revive_forwarder fabric) (fwds ())))
      | Schedule.Forwarder_crash { site; _ } ->
        ignore
          (Engine.schedule_at eng ~time:(t0 +. start) (fun () ->
               Fabric.fail_forwarder fabric (System.site_forwarder sys site)));
        ignore
          (Engine.schedule_at eng ~time:(t0 +. stop) (fun () ->
               Fabric.revive_forwarder fabric (System.site_forwarder sys site)))
      | Schedule.Gsb_failover _ ->
        ignore
          (Engine.schedule_at eng ~time:(t0 +. start) (fun () ->
               System.set_gsb_down sys true));
        ignore
          (Engine.schedule_at eng ~time:(t0 +. stop) (fun () ->
               System.set_gsb_down sys false;
               match store with
               | Some st -> System.recover_from_store sys st ~on_done:(fun _ -> ())
               | None -> ()))
      | Schedule.Link_flap _ | Schedule.Bus_loss _ | Schedule.Bus_delay _
      | Schedule.Telemetry_drop _ -> ())
    sched.Schedule.faults;
  (* Network pathologies: one wide-area hook consulted per message copy.
     RNG draws happen only inside an active window, in engine event
     order, so replays are bit-identical and shrinking a window leaves
     draws outside it untouched. *)
  Bus.set_wan_hook bus (fun ~msg ~topic ~src ~dst ->
      (match observe with Some f -> f ~msg ~topic ~src ~dst | None -> ());
      let now = Engine.now eng -. t0 in
      let active start stop = now >= start && now < stop in
      let drop = ref false in
      let extra = ref 0. in
      List.iter
        (fun fault ->
          if not !drop then
            match fault with
            | Schedule.Link_flap { a; b; start; stop }
              when active start stop && ((src = a && dst = b) || (src = b && dst = a)) ->
              (* Held back by TCP until the link is back; the bus's
                 per-pair FIFO keeps later messages behind this one. *)
              extra := !extra +. (stop -. now) +. 0.01
            | Schedule.Site_outage { site; start; stop }
              when active start stop && (src = site || dst = site) ->
              extra := !extra +. (stop -. now) +. 0.01
            | Schedule.Bus_loss { start; stop; prob }
              when active start stop && loss_tolerant topic ->
              if Rng.float rng 1.0 < prob then drop := true
            | Schedule.Bus_delay { start; stop; prob; max_extra }
              when active start stop ->
              if Rng.float rng 1.0 < prob then
                extra := !extra +. Rng.float rng max_extra
            | Schedule.Telemetry_drop { start; stop; prob }
              when active start stop && is_telemetry topic ->
              if Rng.float rng 1.0 < prob then drop := true
            | _ -> ())
        sched.Schedule.faults;
      if !drop then Bus.Drop
      else if !extra > 0. then Bus.Delay !extra
      else Bus.Deliver)
