module Rng = Sb_util.Rng

type fault =
  | Link_flap of { a : int; b : int; start : float; stop : float }
  | Site_outage of { site : int; start : float; stop : float }
  | Forwarder_crash of { site : int; start : float; stop : float }
  | Bus_loss of { start : float; stop : float; prob : float }
  | Bus_delay of { start : float; stop : float; prob : float; max_extra : float }
  | Telemetry_drop of { start : float; stop : float; prob : float }
  | Gsb_failover of { start : float; stop : float }

type t = { seed : int; horizon : float; num_sites : int; faults : fault list }

let window = function
  | Link_flap { start; stop; _ }
  | Site_outage { start; stop; _ }
  | Forwarder_crash { start; stop; _ }
  | Bus_loss { start; stop; _ }
  | Bus_delay { start; stop; _ }
  | Telemetry_drop { start; stop; _ }
  | Gsb_failover { start; stop } -> (start, stop)

(* Faults that take processes out of service. The generator keeps these
   windows mutually disjoint: the harness replicates flow state with k = 2,
   so at most one dead forwarder at a time keeps every DHT key alive, and
   at most one dead coordinator keeps recovery well-defined. Overlapping
   deaths are a capacity question, not an interleaving one — out of scope
   for the invariants this schedule searches. *)
let is_death = function
  | Site_outage _ | Forwarder_crash _ | Gsb_failover _ -> true
  | Link_flap _ | Bus_loss _ | Bus_delay _ | Telemetry_drop _ -> false

let overlaps f g =
  let a0, a1 = window f and b0, b1 = window g in
  a0 < b1 && b0 < a1

let round2 x = Float.round (x *. 100.) /. 100.

let generate ~seed ~horizon ~num_sites =
  let rng = Rng.split ~stream:0 (Rng.create seed) in
  let n = 2 + Rng.int rng 5 in
  let deaths = ref [] in
  let faults = ref [] in
  for _ = 1 to n do
    let start = round2 (Rng.uniform_in rng (0.05 *. horizon) (0.6 *. horizon)) in
    let stop =
      round2
        (Float.min (0.85 *. horizon)
           (start +. Rng.uniform_in rng (0.05 *. horizon) (0.3 *. horizon)))
    in
    let admit_death f =
      if List.exists (overlaps f) !deaths then ()
      else begin
        deaths := f :: !deaths;
        faults := f :: !faults
      end
    in
    match Rng.int rng 7 with
    | 0 ->
      let a = Rng.int rng num_sites in
      let b = (a + 1 + Rng.int rng (num_sites - 1)) mod num_sites in
      faults := Link_flap { a; b; start; stop } :: !faults
    | 1 -> admit_death (Site_outage { site = Rng.int rng num_sites; start; stop })
    | 2 -> admit_death (Forwarder_crash { site = Rng.int rng num_sites; start; stop })
    | 3 ->
      faults :=
        Bus_loss { start; stop; prob = round2 (Rng.uniform_in rng 0.1 0.8) } :: !faults
    | 4 ->
      faults :=
        Bus_delay
          {
            start;
            stop;
            prob = round2 (Rng.uniform_in rng 0.1 0.7);
            max_extra = round2 (Rng.uniform_in rng 0.05 0.8);
          }
        :: !faults
    | 5 ->
      faults :=
        Telemetry_drop { start; stop; prob = round2 (Rng.uniform_in rng 0.2 1.0) }
        :: !faults
    | _ -> admit_death (Gsb_failover { start; stop })
  done;
  { seed; horizon; num_sites; faults = List.rev !faults }

(* ------------------------ composition ------------------------------- *)

let shift_fault d = function
  | Link_flap r -> Link_flap { r with start = r.start +. d; stop = r.stop +. d }
  | Site_outage r -> Site_outage { r with start = r.start +. d; stop = r.stop +. d }
  | Forwarder_crash r ->
    Forwarder_crash { r with start = r.start +. d; stop = r.stop +. d }
  | Bus_loss r -> Bus_loss { r with start = r.start +. d; stop = r.stop +. d }
  | Bus_delay r -> Bus_delay { r with start = r.start +. d; stop = r.stop +. d }
  | Telemetry_drop r ->
    Telemetry_drop { r with start = r.start +. d; stop = r.stop +. d }
  | Gsb_failover r -> Gsb_failover { start = r.start +. d; stop = r.stop +. d }

let stretch_fault c = function
  | Link_flap r -> Link_flap { r with start = c *. r.start; stop = c *. r.stop }
  | Site_outage r -> Site_outage { r with start = c *. r.start; stop = c *. r.stop }
  | Forwarder_crash r ->
    Forwarder_crash { r with start = c *. r.start; stop = c *. r.stop }
  | Bus_loss r -> Bus_loss { r with start = c *. r.start; stop = c *. r.stop }
  | Bus_delay r -> Bus_delay { r with start = c *. r.start; stop = c *. r.stop }
  | Telemetry_drop r ->
    Telemetry_drop { r with start = c *. r.start; stop = c *. r.stop }
  | Gsb_failover r -> Gsb_failover { start = c *. r.start; stop = c *. r.stop }

let of_faults ~seed ~horizon ~num_sites faults =
  if horizon <= 0. then invalid_arg "Schedule.of_faults: non-positive horizon";
  if num_sites <= 0 then invalid_arg "Schedule.of_faults: non-positive num_sites";
  List.iter
    (fun f ->
      let start, stop = window f in
      if start < 0. || stop < start then
        invalid_arg "Schedule.of_faults: bad fault window")
    faults;
  { seed; horizon; num_sites; faults }

let overlay a b =
  if a.num_sites <> b.num_sites then
    invalid_arg "Schedule.overlay: operands disagree on num_sites";
  {
    seed = a.seed;
    horizon = Float.max a.horizon b.horizon;
    num_sites = a.num_sites;
    faults = a.faults @ b.faults;
  }

let shift d t =
  if d < 0. then invalid_arg "Schedule.shift: negative shift";
  {
    t with
    horizon = t.horizon +. d;
    faults = List.map (shift_fault d) t.faults;
  }

let stretch c t =
  if c <= 0. then invalid_arg "Schedule.stretch: factor must be positive";
  {
    t with
    horizon = c *. t.horizon;
    faults = List.map (stretch_fault c) t.faults;
  }

let gsb_outage ~seed ~num_sites ~horizon ~start ~fraction =
  if start < 0. || start > horizon then
    invalid_arg "Schedule.gsb_outage: start outside the horizon";
  if fraction < 0. || fraction > 1. then
    invalid_arg "Schedule.gsb_outage: fraction outside [0, 1]";
  let faults =
    if fraction <= 0. then []
    else
      let stop =
        Float.min horizon (round2 (start +. (fraction *. (horizon -. start))))
      in
      if stop <= start then [] else [ Gsb_failover { start; stop } ]
  in
  of_faults ~seed ~horizon ~num_sites faults

let regional_outage ~seed ~num_sites ~horizon ~sites ~start ~stop =
  if stop <= start then invalid_arg "Schedule.regional_outage: bad window";
  List.iter
    (fun s ->
      if s < 0 || s >= num_sites then
        invalid_arg "Schedule.regional_outage: site out of range")
    sites;
  of_faults ~seed ~horizon ~num_sites
    (List.map (fun site -> Site_outage { site; start; stop }) sites)

let pp_fault ppf = function
  | Link_flap { a; b; start; stop } ->
    Format.fprintf ppf "link-flap sites %d<->%d [%.2f, %.2f)" a b start stop
  | Site_outage { site; start; stop } ->
    Format.fprintf ppf "site-outage site %d [%.2f, %.2f)" site start stop
  | Forwarder_crash { site; start; stop } ->
    Format.fprintf ppf "forwarder-crash site %d [%.2f, %.2f)" site start stop
  | Bus_loss { start; stop; prob } ->
    Format.fprintf ppf "bus-loss p=%.2f [%.2f, %.2f)" prob start stop
  | Bus_delay { start; stop; prob; max_extra } ->
    Format.fprintf ppf "bus-delay p=%.2f extra<=%.2fs [%.2f, %.2f)" prob max_extra
      start stop
  | Telemetry_drop { start; stop; prob } ->
    Format.fprintf ppf "telemetry-drop p=%.2f [%.2f, %.2f)" prob start stop
  | Gsb_failover { start; stop } ->
    Format.fprintf ppf "gsb-failover [%.2f, %.2f)" start stop

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule seed=%d horizon=%.1fs sites=%d (%d faults)"
    t.seed t.horizon t.num_sites (List.length t.faults);
  List.iter (fun f -> Format.fprintf ppf "@,  %a" pp_fault f) t.faults;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

(* Shrink candidates, most aggressive first: drop a fault entirely, then
   halve a window, then halve a probability. The searcher keeps a
   candidate only if it still violates, so order is a heuristic. *)
let shrink t =
  let n = List.length t.faults in
  let without i = List.filteri (fun j _ -> j <> i) t.faults in
  let dropped = List.init n (fun i -> { t with faults = without i }) in
  let halve_window f =
    let shorten start stop = (start, round2 (start +. ((stop -. start) /. 2.))) in
    match f with
    | Link_flap ({ start; stop; _ } as r) when stop -. start > 0.5 ->
      let start, stop = shorten start stop in
      Some (Link_flap { r with start; stop })
    | Site_outage ({ start; stop; _ } as r) when stop -. start > 0.5 ->
      let start, stop = shorten start stop in
      Some (Site_outage { r with start; stop })
    | Forwarder_crash ({ start; stop; _ } as r) when stop -. start > 0.5 ->
      let start, stop = shorten start stop in
      Some (Forwarder_crash { r with start; stop })
    | Bus_loss ({ start; stop; _ } as r) when stop -. start > 0.5 ->
      let start, stop = shorten start stop in
      Some (Bus_loss { r with start; stop })
    | Bus_delay ({ start; stop; _ } as r) when stop -. start > 0.5 ->
      let start, stop = shorten start stop in
      Some (Bus_delay { r with start; stop })
    | Telemetry_drop ({ start; stop; _ } as r) when stop -. start > 0.5 ->
      let start, stop = shorten start stop in
      Some (Telemetry_drop { r with start; stop })
    | Gsb_failover { start; stop } when stop -. start > 0.5 ->
      let start, stop = shorten start stop in
      Some (Gsb_failover { start; stop })
    | _ -> None
  in
  let halve_prob = function
    | Bus_loss ({ prob; _ } as r) when prob > 0.1 ->
      Some (Bus_loss { r with prob = round2 (prob /. 2.) })
    | Bus_delay ({ prob; _ } as r) when prob > 0.1 ->
      Some (Bus_delay { r with prob = round2 (prob /. 2.) })
    | Telemetry_drop ({ prob; _ } as r) when prob > 0.1 ->
      Some (Telemetry_drop { r with prob = round2 (prob /. 2.) })
    | _ -> None
  in
  let mutate f =
    List.concat
      (List.mapi
         (fun i fault ->
           match f fault with
           | Some fault' ->
             [ { t with
                 faults = List.mapi (fun j x -> if j = i then fault' else x) t.faults;
               } ]
           | None -> [])
         t.faults)
  in
  dropped @ mutate halve_window @ mutate halve_prob
