(** The standard chaos deployment and the schedule searcher.

    [run] assembles a fixed six-site deployment (three VNFs, three
    chains, k = 2 replicated flow store, MUSIC-backed coordinator
    state), establishes the chains fault-free, then arms a
    {!Schedule.t} together with the {!Invariant} checker: epoch probes
    every second, a route-update rollout racing the faults every other
    epoch, and the strict quiesced-state check once the engine drains.
    Everything is a pure function of the schedule (and its seed) — the
    same schedule replays bit-identically. *)

val num_sites : int
val horizon : float

type result = {
  schedule : Schedule.t;
  violations : Invariant.violation list;
  events : int;  (** engine events processed after arming *)
  completed : bool;  (** the engine drained within the event budget *)
}

val pp_result : Format.formatter -> result -> unit

val run : ?epoch_len:float -> ?event_budget:int -> ?lanes:int -> Schedule.t -> result
(** [lanes] (default 1) shards the deployment's data plane across that
    many domains ({!Sb_dataplane.Shard}); the invariant probes then
    exercise the sharded path, with counters and flow state aggregated
    across lanes. *)

val run_seed : ?epoch_len:float -> ?event_budget:int -> ?lanes:int -> int -> result
(** [run (Schedule.generate ~seed ...)] with the standard horizon. *)

val shrink_failing : Schedule.t -> Schedule.t
(** Greedily shrink a violating schedule ({!Schedule.shrink}) to a
    locally minimal one that still violates. *)

val search : base_seed:int -> budget:int -> result option
(** Run seeds [base_seed .. base_seed + budget - 1]; on the first
    violating schedule, return the shrunk minimal failing result.
    [None] if every schedule passes. *)
