module Bus = Sb_msgbus.Bus
module Engine = Sb_sim.Engine
module Fabric = Sb_dataplane.Fabric
module DP = Sb_dataplane.Shard
open Types

let broadcast_topic = "/chains"
let edge_forwarders_topic ~chain ~egress = Printf.sprintf "/c%d/e%d/edge_forwarders" chain egress

type site_info = {
  fab_site : int;
  mutable forwarders : int list; (* newest last; edges attach to the first *)
  mutable edge : int option;
}

type vnf_ctl = {
  v_id : int;
  mutable v_home : int; (* controller location: first deployment site *)
  v_capacity : (int, float) Hashtbl.t; (* site -> admission capacity *)
  v_committed : (int * int, float) Hashtbl.t; (* (chain, site) -> load *)
  v_reserved : (int, int * (int * float) list * bool) Hashtbl.t;
  (* txid -> chain, (site, load) list, republish flag; a commit REPLACES
     the chain's previous allocation (route updates are not additive).
     The flag is false when a compiled delta marked this VNF's demand
     unchanged: the allocation is re-reserved as-is and the Instance_info
     republish is skipped at commit — the O(churn) half of the rollout. *)
  v_voted : (int, msg) Hashtbl.t;
  (* txid -> the Vote published, so a retransmitted Prepare (the original
     vote was lost in the wide area) is answered from memory instead of
     re-running admission — duplicate Prepares are idempotent *)
  v_applied : (int, int) Hashtbl.t;
  (* chain -> highest txid whose Commit was applied. Under loss a Commit
     can be first received out of order (the original copy dropped, the
     retransmission landing after a newer transaction's Commit); applying
     only monotonically keeps every controller's final allocation equal
     to the coordinator's last decision. *)
  v_instances : (int, int list) Hashtbl.t; (* site -> fabric instance ids *)
}

type chain_state = {
  c_id : int;
  mutable c_spec : chain_spec;
  mutable c_routes : route list;
  mutable c_ingress : int option;
  mutable c_egress : int option;
}

type txn = {
  tx_id : int;
  tx_chain : int;
  tx_routes : route list;
  tx_spec : chain_spec;
  tx_prepared : Compile.prepared option; (* delta rollout: compiled target *)
  tx_delta : chain_delta option; (* delta rollout: the wire diff *)
  mutable tx_waiting : string list;
  mutable tx_rejected : (int * int) list;
  tx_exclude : (int * int) list;
}

(* A decided transaction whose Commit/Abort has not been acknowledged by
   every participant yet. The coordinator retransmits the decision until
   the unacked set drains — the half of the loss-tolerance story that
   keeps a site from being left with a half-installed route set when a
   wide-area link eats the decision. *)
type decision = {
  d_msg : msg;
  d_spec : chain_spec;
  mutable d_unacked : string list;
}

(* A route set requested while the chain's transaction was still
   collecting votes. Under delta rollout the queue also carries the
   compiled target and a delta kept valid by {!Compile.compose} across
   supersedes — replacing the delta outright, as the old route-list queue
   did with routes, would silently drop the superseded update's changed
   stages from what eventually ships. *)
type queued = {
  q_routes : route list;
  q_exclude : (int * int) list;
  q_comp : (Compile.prepared * chain_delta) option;
}

(* A Local Switchboard's view of one chain: spec, egress label and the
   per-stage transition tables ([(src_site, dst_site, weight)] in route
   order) that rule computation folds — exactly the decision-diagram
   actions {!Compile} interns, so a partial delta patches [lc_tr] in
   place. [lc_version] is the delta-application guard: a partial delta
   applies only on the exact base version it was diffed against. *)
type local_chain = {
  lc_id : int;
  mutable lc_spec : chain_spec;
  mutable lc_egress : int;
  mutable lc_version : int;
  mutable lc_tr : (int * int * float) array array;
}

(* Per-site Local Switchboard: accumulates route and weight knowledge from
   the bus and converts it into forwarder rules (Section 3, step 5). *)
type local_sb = {
  ls_site : int;
  ls_known : (int, local_chain) Hashtbl.t;
  ls_instance_info : (int * int * int, (int * float) list) Hashtbl.t;
  (* (chain, vnf, site) -> instances *)
  ls_fwd_info : (int * int * int, (int * float) list) Hashtbl.t;
  ls_installed : (int * int * int, (Fabric.endpoint * float) list) Hashtbl.t;
  (* (chain, egress, stage) -> last installed rule *)
  ls_installed_rx : (int * int * int, (Fabric.endpoint * float) list) Hashtbl.t;
  (* (chain, egress, stage) -> last installed receiver-side rule *)
  ls_published_weight : (int * int, float) Hashtbl.t; (* (chain, vnf) -> weight *)
  ls_subscribed : (string, unit) Hashtbl.t;
}

type rollout = Delta_rollout | Full_rollout

(* Deployment-churn counters: how much elastic placement has reshaped the
   fabric. Scale-outs and retractions are rare control-plane events, so a
   plain capped list is the drain-duration reservoir. *)
type churn = {
  ch_scale_outs : int;  (** deployments added by {!scale_out} *)
  ch_removed : int;  (** deployments retracted after a completed drain *)
  ch_drains_completed : int;
  ch_drains_aborted : int;  (** GSB death or timeout mid-drain *)
  ch_draining : int;  (** drains in progress right now *)
  ch_drain_durations : float list;
      (** wall-clock (sim) seconds of the most recent completed drains,
          oldest first, capped at 64 *)
}

type t = {
  eng : Engine.t;
  bus : msg Bus.t;
  fabric : DP.t;
  sites : site_info array;
  locals : local_sb array;
  gsb_site : int;
  delay : int -> int -> float;
  install_latency : float;
  retry_interval : float;
  rollout : rollout;
  mutable compiled : Compile.t;
  (* The Global Switchboard's committed decision diagrams; prepared
     updates diff against this snapshot to build delta payloads. *)
  vnf_ctls : (int, vnf_ctl) Hashtbl.t;
  chains : (int, chain_state) Hashtbl.t;
  txns : (int, txn) Hashtbl.t;
  decisions : (int, decision) Hashtbl.t;
  chain_inflight : (int, int) Hashtbl.t; (* chain -> txid awaiting votes *)
  queued_routes : (int, queued) Hashtbl.t;
  (* chain -> the newest route set requested while a transaction for the
     chain was still collecting votes. 2PC is serialized per chain so
     that decisions happen in txid order — the participants' monotonic
     apply guard depends on it. *)
  mutable gsb_down : bool;
  attachments : (string, int) Hashtbl.t; (* attachment -> site *)
  pending_commits : (int, int * chain_spec) Hashtbl.t; (* txid -> chain, spec *)
  mutable next_chain : int;
  mutable next_txid : int;
  mutable route_policy :
    (chain_spec -> exclude:(int * int) list -> route list option) option;
  mutable store : persisted Sb_music.Store.t option;
  mutable persisted_index : int list;
  mutable log_enabled : bool;
  events : (float * string) list ref;
  mutable churn_scale_outs : int;
  mutable churn_removed : int;
  mutable churn_drains_done : int;
  mutable churn_drains_aborted : int;
  mutable churn_draining : int;
  mutable churn_durations : float list; (* newest first, capped at 64 *)
}

(* Lazy logging in the Logs style: [logf t (fun m -> m "fmt" ...)] only
   formats (and only evaluates the arguments' [List.length] etc.) when
   logging is enabled, so the 2PC hot path pays nothing with logs off. *)
let logf t k =
  if t.log_enabled then
    k (fun fmt ->
        Printf.ksprintf
          (fun s -> t.events := (Engine.now t.eng, s) :: !(t.events))
          fmt)

let set_logging t enabled = t.log_enabled <- enabled

let engine t = t.eng
let bus t = t.bus
let fabric t = DP.lane t.fabric 0
let shard t = t.fabric
let lanes t = DP.lanes t.fabric
let site_forwarder t s = List.hd t.sites.(s).forwarders
let site_forwarders t s = t.sites.(s).forwarders
let site_edge t s = t.sites.(s).edge
let log t = List.rev !(t.events)

let log_between t lo hi =
  List.filter (fun (ts, _) -> ts >= lo && ts <= hi) (log t)

let chain_elements spec = Array.of_list ((-1) :: spec.vnfs @ [ -2 ])
(* element VNF ids with -1 = ingress edge, -2 = egress edge *)

let compile_stats t = Compile.stats t.compiled

(* ---------------- Local Switchboard rule computation ---------------- *)

let ls_subscribe t ls topic callback =
  if not (Hashtbl.mem ls.ls_subscribed topic) then begin
    Hashtbl.replace ls.ls_subscribed topic ();
    Bus.subscribe t.bus ~site:ls.ls_site ~topic callback
  end

(* The weighted rules at [ls] for one stage of one chain, or (None, None)
   when some required weight information has not arrived yet. The first
   component is the full rule; the second is the receiver-side rule
   (local deliveries only) installed when this site receives the stage's
   traffic — a packet handed over by a remote forwarder is mid-relay and
   must be delivered into a local element, never balanced onward to yet
   another site (which happens when one site is the sender of one route
   and the receiver of another for the same stage, and would both break
   chain routing and collide in the fabric's role-keyed flow store).

   The fold runs over the stage's transition table in route-list order —
   the same floats in the same order whether the table arrived in a full
   route set or as a compiled delta, so both rollout modes produce
   bit-identical rules. *)
let compute_stage_rule t ls (lc : local_chain) stage =
  let spec = lc.lc_spec in
  let elements = chain_elements spec in
  let targets = ref [] in
  let rx_targets = ref [] in
  let add tgt w = if w > 0. then targets := (tgt, w) :: !targets in
  let add_rx tgt w = if w > 0. then rx_targets := (tgt, w) :: !rx_targets in
  let missing = ref false in
  let next_vnf = elements.(stage + 1) in
  let relevant = ref false in
  Array.iter
    (fun (s_z, s_z1, weight) ->
      let local_instances () =
        match Hashtbl.find_opt ls.ls_instance_info (lc.lc_id, next_vnf, ls.ls_site) with
        | Some ((_ :: _) as insts) ->
          List.iter
            (fun (i, w) ->
              add (Fabric.Vnf_instance i) (weight *. w);
              add_rx (Fabric.Vnf_instance i) (weight *. w))
            insts
        | Some [] | None -> missing := true
      in
      let local_egress () =
        match t.sites.(ls.ls_site).edge with
        | Some e ->
          add (Fabric.Edge e) weight;
          add_rx (Fabric.Edge e) weight
        | None -> missing := true
      in
      if s_z = ls.ls_site then begin
        relevant := true;
        if s_z1 = ls.ls_site then
          if next_vnf = -2 then local_egress () else local_instances ()
        else begin
          (* Remote next hop: the hierarchical rule spreads this route's
             share over the forwarders the next VNF's site published, each
             weighted by its attached-instance weight (Section 5.2). *)
          if next_vnf = -2 then
            add (Fabric.Forwarder (List.hd t.sites.(s_z1).forwarders)) weight
          else
            match Hashtbl.find_opt ls.ls_fwd_info (lc.lc_id, next_vnf, s_z1) with
            | Some ((_ :: _) as fwds) ->
              List.iter
                (fun (f, w) -> add (Fabric.Forwarder f) (weight *. Float.max w 1e-9))
                fwds
            | Some [] | None -> missing := true
        end
      end
      else if s_z1 = ls.ls_site then begin
        (* Receiver side: traffic arrives from a remote forwarder and must
           be spread over local instances (or handed to the egress edge). *)
        relevant := true;
        if next_vnf = -2 then local_egress () else local_instances ()
      end)
    lc.lc_tr.(stage);
  if not !relevant then (None, None)
  else if !missing then (None, None)
  else begin
    (* Merge duplicate targets. *)
    let merge lst =
      let merged = Hashtbl.create 8 in
      List.iter
        (fun (tgt, w) ->
          let cur = try Hashtbl.find merged tgt with Not_found -> 0. in
          Hashtbl.replace merged tgt (cur +. w))
        lst;
      Hashtbl.fold (fun tgt w acc -> (tgt, w) :: acc) merged [] |> List.sort compare
    in
    ( Some (merge !targets),
      match !rx_targets with [] -> None | rx -> Some (merge rx) )
  end

let try_install t ls (lc : local_chain) =
  let egress = lc.lc_egress in
  let changed = ref [] in
  for stage = 0 to Array.length lc.lc_tr - 1 do
    match compute_stage_rule t ls lc stage with
    | None, _ -> ()
    | Some rule, rx ->
      let key = (lc.lc_id, egress, stage) in
      let unchanged =
        Hashtbl.find_opt ls.ls_installed key = Some rule
        && Hashtbl.find_opt ls.ls_installed_rx key = rx
      in
      if not unchanged then begin
        Hashtbl.replace ls.ls_installed key rule;
        (match rx with
        | Some r -> Hashtbl.replace ls.ls_installed_rx key r
        | None -> Hashtbl.remove ls.ls_installed_rx key);
        changed := (stage, rule, rx) :: !changed
      end
  done;
  match List.rev !changed with
  | [] -> ()
  | changed ->
    (* One batched data-plane transaction for every stage that moved:
       the packed arrays are patched through [DP.apply_delta]'s journal
       instead of one install call per stage. *)
    let patches =
      List.concat_map
        (fun (stage, rule, rx) ->
          { Fabric.rp_chain = lc.lc_id; rp_egress = egress; rp_stage = stage;
            rp_rx = false; rp_targets = rule }
          :: (match rx with
             | Some r ->
               [ { Fabric.rp_chain = lc.lc_id; rp_egress = egress; rp_stage = stage;
                   rp_rx = true; rp_targets = r } ]
             | None -> []))
        changed
    in
    ignore
      (Engine.schedule t.eng ~delay:t.install_latency (fun () ->
           List.iter
             (fun forwarder -> ignore (DP.apply_delta t.fabric ~forwarder patches))
             t.sites.(ls.ls_site).forwarders;
           List.iter
             (fun (stage, rule, _) ->
               logf t (fun m ->
                   m "site %d: installed rule chain=%d stage=%d (%d targets)"
                     ls.ls_site lc.lc_id stage (List.length rule)))
             changed))

(* Publish this site's forwarder weight for a VNF of a chain once the local
   instance weights are known. *)
let maybe_publish_forwarder_weight t ls (lc : local_chain) vnf =
  match Hashtbl.find_opt ls.ls_instance_info (lc.lc_id, vnf, ls.ls_site) with
  | Some insts when insts <> [] ->
    let egress = lc.lc_egress in
    let weight = List.fold_left (fun a (_, w) -> a +. w) 0. insts in
    let key = (lc.lc_id, vnf) in
    let already =
      match Hashtbl.find_opt ls.ls_published_weight key with
      | Some w -> w = weight
      | None -> false
    in
    if not already then begin
      Hashtbl.replace ls.ls_published_weight key weight;
      ignore weight;
      let per_forwarder =
        List.filter_map
          (fun f ->
            let w = DP.forwarder_published_weight t.fabric f vnf in
            if w > 0. then Some (f, w) else None)
          t.sites.(ls.ls_site).forwarders
      in
      Bus.publish t.bus ~site:ls.ls_site
        ~topic:(forwarders_topic ~chain:lc.lc_id ~egress ~vnf ~site:ls.ls_site)
        (Forwarder_info { vnf; site = ls.ls_site; forwarders = per_forwarder })
    end
  | _ -> ()

(* Subscribe to the weight topics this site needs for the given stages of
   a chain — all of them on a full update, only the changed ones on a
   partial delta (a stage's subscriptions depend only on that stage's
   transitions, so unchanged stages keep the subscriptions they already
   installed). *)
let ls_scan_topics t ls (lc : local_chain) stages =
  let spec = lc.lc_spec in
  let elements = chain_elements spec in
  let egress = lc.lc_egress in
  let need_instances = Hashtbl.create 8 in
  let need_forwarders = Hashtbl.create 8 in
  List.iter
    (fun stage ->
      let next_vnf = elements.(stage + 1) in
      Array.iter
        (fun (s_z, s_z1, _) ->
          if s_z = ls.ls_site && next_vnf >= 0 then
            if s_z1 = ls.ls_site then Hashtbl.replace need_instances (next_vnf, s_z1) ()
            else Hashtbl.replace need_forwarders (next_vnf, s_z1) ();
          (* Sites hosting a VNF element publish their forwarder weight and
             watch local instances. *)
          if s_z1 = ls.ls_site && next_vnf >= 0 then
            Hashtbl.replace need_instances (next_vnf, s_z1) ())
        lc.lc_tr.(stage))
    stages;
  let sub_instances (vnf, site) () =
    ls_subscribe t ls (instances_topic ~chain:lc.lc_id ~egress ~vnf ~site) (function
      | Instance_info { vnf = v; site = s; instances } ->
        Hashtbl.replace ls.ls_instance_info (lc.lc_id, v, s) instances;
        maybe_publish_forwarder_weight t ls lc v;
        try_install t ls lc
      | _ -> ())
  in
  let sub_forwarders (vnf, site) () =
    ls_subscribe t ls (forwarders_topic ~chain:lc.lc_id ~egress ~vnf ~site) (function
      | Forwarder_info { vnf = v; site = s; forwarders } ->
        Hashtbl.replace ls.ls_fwd_info (lc.lc_id, v, s) forwarders;
        try_install t ls lc
      | _ -> ())
  in
  Hashtbl.iter sub_instances need_instances;
  Hashtbl.iter sub_forwarders need_forwarders;
  (* Sites hosting the first VNF listen for edge forwarders appearing at
     new edge sites (Section 6 / Table 2). *)
  let hosts_first_vnf =
    List.mem 0 stages
    && Array.exists (fun (_, s_z1, _) -> s_z1 = ls.ls_site) lc.lc_tr.(0)
  in
  if hosts_first_vnf then
    ls_subscribe t ls (edge_forwarders_topic ~chain:lc.lc_id ~egress) (function
      | Forwarder_info { site; _ } ->
        logf t (fun m ->
            m "site %d: 1st VNF's fwrdr receives edge's fwrdr info (edge site %d)"
              ls.ls_site site);
        logf t (fun m ->
            m "site %d: 1st VNF's fwrdr starts dataplane configuration" ls.ls_site);
        ignore
          (Engine.schedule t.eng ~delay:t.install_latency (fun () ->
               logf t (fun m ->
                   m "site %d: 1st VNF's fwrdr finishes configuration" ls.ls_site)))
      | _ -> ())

let all_stages_of tr = List.init (Array.length tr) Fun.id

(* React to a committed full route set: (re)build the chain's transition
   tables, reset the version lineage, subscribe, install. *)
let ls_apply_full t ls ~chain ~egress ~spec ~version tr =
  let lc =
    match Hashtbl.find_opt ls.ls_known chain with
    | Some lc ->
      lc.lc_spec <- spec;
      lc.lc_egress <- egress;
      lc.lc_version <- version;
      lc.lc_tr <- tr;
      lc
    | None ->
      let lc =
        { lc_id = chain; lc_spec = spec; lc_egress = egress; lc_version = version;
          lc_tr = tr }
      in
      Hashtbl.replace ls.ls_known chain lc;
      lc
  in
  ls_scan_topics t ls lc (all_stages_of tr);
  try_install t ls lc

(* One-time catch-up for a Local Switchboard that received a delta it
   cannot apply (version gap after wide-area loss, or a partial delta for
   a chain it never learned): subscribing to the chain's route topic
   replays the retained full Route_update, and keeps the site on the full
   feed from then on. *)
let ls_heal t ls ~chain =
  ls_subscribe t ls (route_topic ~chain) (function
    | Route_update { chain; egress_label; spec; routes; version } ->
      ls_apply_full t ls ~chain ~egress:egress_label ~spec ~version
        (Compile.transitions_of_routes ~nstages:(List.length spec.vnfs + 1) routes)
    | _ -> ())

(* React to a committed delta: patch the changed stages in place when the
   base version lines up, heal from the retained full state otherwise. A
   full delta (new chain, recovered coordinator) applies unconditionally
   and resets the lineage. *)
let ls_apply_delta t ls ~chain ~egress ~spec (d : chain_delta) =
  if d.cd_full then begin
    let tr = Array.make d.cd_nstages [||] in
    List.iter (fun sd -> tr.(sd.sd_stage) <- sd.sd_tr) d.cd_stages;
    ls_apply_full t ls ~chain ~egress ~spec ~version:d.cd_target tr
  end
  else
    match Hashtbl.find_opt ls.ls_known chain with
    | Some lc when lc.lc_version = d.cd_base && Array.length lc.lc_tr = d.cd_nstages ->
      List.iter (fun sd -> lc.lc_tr.(sd.sd_stage) <- sd.sd_tr) d.cd_stages;
      lc.lc_version <- d.cd_target;
      lc.lc_spec <- spec;
      lc.lc_egress <- egress;
      ls_scan_topics t ls lc (List.map (fun sd -> sd.sd_stage) d.cd_stages);
      try_install t ls lc
    | Some lc when lc.lc_version >= d.cd_target ->
      () (* stale duplicate of an already applied delta *)
    | _ ->
      logf t (fun m ->
          m "site %d: chain %d delta v%d->v%d does not fit local state; healing"
            ls.ls_site chain d.cd_base d.cd_target);
      ls_heal t ls ~chain

(* --------------------------- VNF controller ------------------------- *)

let vnf_demand_per_site spec routes vnf =
  let elements = chain_elements spec in
  let demand = Hashtbl.create 4 in
  List.iter
    (fun r ->
      Array.iteri
        (fun z v ->
          if v = vnf then begin
            let s = r.element_sites.(z) in
            let cur = try Hashtbl.find demand s with Not_found -> 0. in
            Hashtbl.replace demand s (cur +. (r.weight *. spec.traffic))
          end)
        elements)
    routes;
  demand

let vnf_committed_at v ~excluding_chain site =
  Hashtbl.fold
    (fun (c, s) load acc -> if s = site && c <> excluding_chain then acc +. load else acc)
    v.v_committed 0.

let vnf_on_prepare t (v : vnf_ctl) ~txid ~chain ~routes ~delta ~spec =
  let ok = ref true in
  let rejected = ref [] in
  let check site load =
    let cap = try Hashtbl.find v.v_capacity site with Not_found -> 0. in
    (* A route update replaces this chain's allocation, so its current
       load does not count against the new demand. *)
    let used = vnf_committed_at v ~excluding_chain:chain site in
    if used +. load > cap +. 1e-9 then begin
      ok := false;
      rejected := (v.v_id, site) :: !rejected
    end
  in
  let reserved =
    match delta with
    | None ->
      (* Full payload: recompute demand from the shipped route set. *)
      let demand = vnf_demand_per_site spec routes v.v_id in
      Hashtbl.iter check demand;
      (chain, Hashtbl.fold (fun s l acc -> (s, l) :: acc) demand [], true)
    | Some d -> (
      match List.assoc_opt v.v_id d.cd_demand with
      | Some rows ->
        (* Demand rows shipped in the delta admit exactly as recomputed
           ones would ([Compile.demands_of_routes] replicates the float
           accumulation). *)
        List.iter (fun (s, l) -> check s l) rows;
        (chain, rows, true)
      | None ->
        (* This VNF's demand is unchanged by the delta: re-reserve the
           committed allocation (still admission-checked — capacity may
           have shrunk) and skip the Instance_info republish at commit. *)
        let rows =
          Hashtbl.fold
            (fun (c, s) load acc -> if c = chain then (s, load) :: acc else acc)
            v.v_committed []
          |> List.sort compare
        in
        List.iter (fun (s, l) -> check s l) rows;
        (chain, rows, false))
  in
  if !ok then Hashtbl.replace v.v_reserved txid reserved;
  let vote =
    Vote
      {
        txid;
        participant = Printf.sprintf "vnf_%d" v.v_id;
        accept = !ok;
        rejected = !rejected;
      }
  in
  Hashtbl.replace v.v_voted txid vote;
  Bus.publish t.bus ~site:v.v_home ~topic:(votes_topic ~txid) vote

let vnf_on_commit t (v : vnf_ctl) ~txid ~chain ~egress =
  match Hashtbl.find_opt v.v_reserved txid with
  | None -> ()
  | Some (res_chain, reserved, republish) ->
    Hashtbl.remove v.v_reserved txid;
    let last = try Hashtbl.find v.v_applied res_chain with Not_found -> -1 in
    if txid <= last then () (* late duplicate of a superseded transaction *)
    else begin
    Hashtbl.replace v.v_applied res_chain txid;
    (* Replace the chain's previous allocation. *)
    let stale =
      Hashtbl.fold (fun (c, s) _ acc -> if c = res_chain then (c, s) :: acc else acc)
        v.v_committed []
    in
    List.iter (Hashtbl.remove v.v_committed) stale;
    List.iter
      (fun (site, load) ->
        Hashtbl.replace v.v_committed (res_chain, site) load;
        (* Publish the allocated instances and weights (Section 3 step 4)
           — skipped when the delta marked this VNF untouched, so an
           incremental epoch's bytes scale with its churn. *)
        if republish then begin
          let insts =
            match Hashtbl.find_opt v.v_instances site with Some l -> l | None -> []
          in
          Bus.publish t.bus ~site:v.v_home
            ~topic:(instances_topic ~chain ~egress ~vnf:v.v_id ~site)
            (Instance_info
               { vnf = v.v_id; site; instances = List.map (fun i -> (i, 1.0)) insts })
        end)
      reserved
    end

(* ------------------------- Global Switchboard ----------------------- *)

(* Persist a committed chain (and the chain index) into the MUSIC store so
   a standby Global Switchboard can recover it (Section 4.5). *)
let persist_chain t (cs : chain_state) =
  match (t.store, cs.c_ingress, cs.c_egress) with
  | Some store, Some ingress, Some egress ->
    let record =
      Chain_record
        { cr_spec = cs.c_spec; cr_routes = cs.c_routes; cr_ingress = ingress; cr_egress = egress }
    in
    Sb_music.Store.put store ~from:t.gsb_site
      ~key:(Printf.sprintf "chain/%d" cs.c_id)
      record
      (fun ok ->
        if ok then logf t (fun m -> m "gsb: chain %d persisted to MUSIC" cs.c_id)
        else logf t (fun m -> m "gsb: MUSIC quorum unavailable for chain %d" cs.c_id));
    if not (List.mem cs.c_id t.persisted_index) then begin
      t.persisted_index <- cs.c_id :: t.persisted_index;
      Sb_music.Store.put store ~from:t.gsb_site ~key:"chains/index"
        (Chain_index t.persisted_index)
        (fun _ -> ())
    end
  | _ -> ()

let participants_of spec = "edge" :: List.map (Printf.sprintf "vnf_%d") spec.vnfs

(* Publish a Commit/Abort and retransmit it to un-acked participants every
   [retry_interval] until every ack is in. Safe to retry without bound:
   participant controllers do not fail permanently, loss windows end, and
   a coordinator failover clears [t.decisions] (the recovered coordinator
   re-drives the whole transaction instead). Each retry event checks state
   before rescheduling, so the engine queue drains once acks arrive. *)
let register_decision t ~txid ~spec msg =
  let d = { d_msg = msg; d_spec = spec; d_unacked = participants_of spec } in
  Hashtbl.replace t.decisions txid d;
  List.iter
    (fun name ->
      Bus.publish t.bus ~site:t.gsb_site ~topic:(participant_topic ~name) msg)
    d.d_unacked;
  let rec retry () =
    if not t.gsb_down then
      match Hashtbl.find_opt t.decisions txid with
      | Some d when d.d_unacked <> [] ->
        logf t (fun m ->
            m "gsb: 2pc tx%d retransmitting decision to %d unacked" txid
              (List.length d.d_unacked));
        List.iter
          (fun name ->
            Bus.publish t.bus ~site:t.gsb_site ~topic:(participant_topic ~name)
              d.d_msg)
          d.d_unacked;
        ignore (Engine.schedule t.eng ~delay:t.retry_interval retry)
      | Some _ | None -> ()
  in
  ignore (Engine.schedule t.eng ~delay:t.retry_interval retry)

let gsb_on_ack t ~txid ~participant =
  if not t.gsb_down then
    match Hashtbl.find_opt t.decisions txid with
    | None -> ()
    | Some d ->
      d.d_unacked <- List.filter (fun p -> p <> participant) d.d_unacked;
      if d.d_unacked = [] then Hashtbl.remove t.decisions txid

(* Compile the queued update against the newest pending target — the
   already queued prepared state if any, else the in-flight transaction's
   — and compose it with any delta already queued, so the delta that
   eventually ships covers every superseded update's changed stages. The
   target version is always (in-flight version + 1): a supersede replaces
   the queued update's slot in the commit order, it does not advance it. *)
let compose_queued t (cs : chain_state) routes =
  let base, older =
    match Hashtbl.find_opt t.queued_routes cs.c_id with
    | Some { q_comp = Some (qp, qd); _ } -> (Some qp, Some qd)
    | _ -> (
      match
        Option.bind (Hashtbl.find_opt t.chain_inflight cs.c_id)
          (Hashtbl.find_opt t.txns)
      with
      | Some tx -> (tx.tx_prepared, None)
      | None -> (None, None))
  in
  match base with
  | None -> None
  | Some bp ->
    let version =
      match older with
      | Some _ -> Compile.prepared_version bp (* replace the queued slot *)
      | None -> Compile.prepared_version bp + 1 (* first queued update *)
    in
    let p = Compile.prepare t.compiled ~version ~chain:cs.c_id ~spec:cs.c_spec ~routes in
    let d = Compile.delta_between t.compiled ~base:bp ~target:p in
    let d = match older with Some od -> Compile.compose od d | None -> d in
    Some (p, d)

let rec gsb_start_2pc t (cs : chain_state) routes ~exclude =
  gsb_start_2pc_comp t cs routes ~exclude ~comp:None

and gsb_start_2pc_comp t (cs : chain_state) routes ~exclude ~comp =
  if t.gsb_down then
    logf t (fun m -> m "gsb: down; dropping 2pc for chain %d" cs.c_id)
  else if Hashtbl.mem t.chain_inflight cs.c_id then begin
    (* Serialize per chain: a newer request supersedes any queued one and
       starts once the in-flight transaction decides. *)
    logf t (fun m ->
        m "gsb: chain %d transaction in flight; queueing route update" cs.c_id);
    let q_comp =
      match t.rollout with
      | Full_rollout -> None
      | Delta_rollout -> compose_queued t cs routes
    in
    Hashtbl.replace t.queued_routes cs.c_id
      { q_routes = routes; q_exclude = exclude; q_comp }
  end
  else begin
    let prepared, delta =
      match t.rollout with
      | Full_rollout -> (None, None)
      | Delta_rollout -> (
        match comp with
        | Some (p, d) -> (Some p, Some d)
        | None ->
          let p = Compile.prepare t.compiled ~chain:cs.c_id ~spec:cs.c_spec ~routes in
          (Some p, Some (Compile.delta_from_committed t.compiled p)))
    in
    let txid = t.next_txid in
    t.next_txid <- txid + 1;
    let tx =
      {
        tx_id = txid;
        tx_chain = cs.c_id;
        tx_routes = routes;
        tx_spec = cs.c_spec;
        tx_prepared = prepared;
        tx_delta = delta;
        tx_waiting = participants_of cs.c_spec;
        tx_rejected = [];
        tx_exclude = exclude;
      }
    in
    Hashtbl.replace t.txns txid tx;
    Hashtbl.replace t.chain_inflight cs.c_id txid;
    logf t (fun m ->
        m "gsb: 2pc prepare tx%d for chain %d (%d routes)" txid cs.c_id
          (List.length routes));
    (* Collect votes (and decision acks) for this transaction. *)
    Bus.subscribe t.bus ~site:t.gsb_site ~topic:(votes_topic ~txid) (function
      | Vote { txid; participant; accept; rejected } ->
        gsb_on_vote t ~txid ~participant ~accept ~rejected
      | Decision_ack { txid; participant } -> gsb_on_ack t ~txid ~participant
      | _ -> ());
    (* Under delta rollout the Prepare carries only the compiled diff —
       the O(churn) payload; the full route set rides only in Full mode. *)
    let wire_routes =
      match t.rollout with Full_rollout -> routes | Delta_rollout -> []
    in
    let send_prepares names =
      List.iter
        (fun name ->
          Bus.publish t.bus ~site:t.gsb_site ~topic:(participant_topic ~name)
            (Prepare { txid; chain = cs.c_id; routes = wire_routes; delta; spec = cs.c_spec }))
        names
    in
    send_prepares (participants_of cs.c_spec);
    (* Retransmit the Prepare to participants whose vote has not arrived:
       either the Prepare or the Vote was lost in the wide area. Duplicate
       Prepares are answered from vote memory, duplicate Votes are ignored
       by the waiting-list check, so retrying is idempotent. *)
    let rec retry () =
      if not t.gsb_down then
        match Hashtbl.find_opt t.txns txid with
        | Some tx when tx.tx_waiting <> [] ->
          logf t (fun m ->
              m "gsb: 2pc tx%d retransmitting prepare to %d unvoted" txid
                (List.length tx.tx_waiting));
          send_prepares tx.tx_waiting;
          ignore (Engine.schedule t.eng ~delay:t.retry_interval retry)
        | Some _ | None -> ()
    in
    ignore (Engine.schedule t.eng ~delay:t.retry_interval retry)
  end

and gsb_on_vote t ~txid ~participant ~accept ~rejected =
  if t.gsb_down then ()
  else
    match Hashtbl.find_opt t.txns txid with
    | None -> ()
    | Some tx ->
      if List.mem participant tx.tx_waiting then begin
        tx.tx_waiting <- List.filter (fun p -> p <> participant) tx.tx_waiting;
        if not accept then tx.tx_rejected <- rejected @ tx.tx_rejected;
        if tx.tx_waiting = [] then begin
          Hashtbl.remove t.txns txid;
          Hashtbl.remove t.chain_inflight tx.tx_chain;
          let cs = Hashtbl.find t.chains tx.tx_chain in
          if tx.tx_rejected = [] then begin
            (* Commit. *)
            register_decision t ~txid ~spec:tx.tx_spec (Commit { txid });
            cs.c_routes <- tx.tx_routes;
            (match tx.tx_prepared with
            | Some p -> t.compiled <- Compile.commit t.compiled ~chain:tx.tx_chain p
            | None -> ());
            logf t (fun m ->
                m "gsb: 2pc commit tx%d; chain %d routes installed" txid tx.tx_chain);
            persist_chain t cs;
            let egress = Option.get cs.c_egress in
            (match tx.tx_delta with
            | Some d ->
              (* O(churn) announcement on the broadcast topic; the full
                 route set stays retained on the chain's route topic —
                 normally subscriber-free, so it costs no wide-area bytes
                 — as the heal point for version-gapped sites. *)
              Bus.publish t.bus ~site:t.gsb_site ~topic:broadcast_topic
                (Route_delta
                   { chain = cs.c_id; egress_label = egress; spec = cs.c_spec; delta = d });
              Bus.publish t.bus ~site:t.gsb_site ~topic:(route_topic ~chain:cs.c_id)
                (Route_update
                   { chain = cs.c_id; egress_label = egress; spec = cs.c_spec;
                     routes = tx.tx_routes; version = d.cd_target })
            | None ->
              let update =
                Route_update
                  { chain = cs.c_id; egress_label = egress; spec = cs.c_spec;
                    routes = tx.tx_routes; version = 0 }
              in
              Bus.publish t.bus ~site:t.gsb_site ~topic:broadcast_topic update;
              Bus.publish t.bus ~site:t.gsb_site ~topic:(route_topic ~chain:cs.c_id) update)
          end
          else begin
            register_decision t ~txid ~spec:tx.tx_spec (Abort { txid });
            let exclude = tx.tx_rejected @ tx.tx_exclude in
            logf t (fun m ->
                m "gsb: 2pc abort tx%d (%d rejections); recomputing" txid
                  (List.length tx.tx_rejected));
            if List.length exclude <= 32 then begin
              match t.route_policy with
              | Some policy -> (
                match policy tx.tx_spec ~exclude with
                | Some routes -> gsb_start_2pc t cs routes ~exclude
                | None ->
                  logf t (fun m -> m "gsb: no feasible route for chain %d" tx.tx_chain))
              | None ->
                logf t (fun m -> m "gsb: no route policy; chain %d failed" tx.tx_chain)
            end
          end;
          (* The chain is idle unless the decision path re-entered 2PC
             (abort recompute); drain the newest queued route set. *)
          if not (Hashtbl.mem t.chain_inflight tx.tx_chain) then begin
            match Hashtbl.find_opt t.queued_routes tx.tx_chain with
            | Some q -> (
              Hashtbl.remove t.queued_routes tx.tx_chain;
              match q.q_comp with
              | Some (p, d)
                when (d.cd_full || d.cd_base = Compile.version t.compiled ~chain:tx.tx_chain)
                     && Compile.prepared_version p
                        = Compile.version t.compiled ~chain:tx.tx_chain + 1 ->
                (* The in-flight transaction committed the base this delta
                   was composed against: ship the composed delta as-is. *)
                gsb_start_2pc_comp t cs q.q_routes ~exclude:q.q_exclude
                  ~comp:(Some (p, d))
              | _ ->
                (* Aborted base (or Full mode): recompute against the
                   still-committed state from the stored full routes. *)
                gsb_start_2pc t cs q.q_routes ~exclude:q.q_exclude)
            | None -> ()
          end
        end
      end

let gsb_on_request t ~chain ~spec =
  if t.gsb_down then logf t (fun m -> m "gsb: down; chain request %d lost" chain)
  else begin
  logf t (fun m -> m "gsb: received chain request %s (chain %d)" spec.spec_name chain);
  let resolve a =
    match Hashtbl.find_opt t.attachments a with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "System: unknown attachment %s" a)
  in
  let ingress = resolve spec.ingress_attachment in
  let egress = resolve spec.egress_attachment in
  let cs =
    { c_id = chain; c_spec = spec; c_routes = []; c_ingress = Some ingress; c_egress = Some egress }
  in
  Hashtbl.replace t.chains chain cs;
  match t.route_policy with
  | None -> logf t (fun m -> m "gsb: no route policy; chain %d failed" chain)
  | Some policy -> (
    match policy spec ~exclude:[] with
    | Some routes -> gsb_start_2pc t cs routes ~exclude:[]
    | None -> logf t (fun m -> m "gsb: no feasible route for chain %d" chain))
  end

(* ------------------------------ Assembly ---------------------------- *)

let create ?(seed = 11) ?(install_latency = 0.09) ?(egress_rate = 20_000.)
    ?bus_bandwidth ?(retry_interval = 0.5) ?flow_store ?(lanes = 1)
    ?(rollout = Delta_rollout) ~num_sites ~delay ~gsb_site () =
  let eng = Engine.create () in
  let bus =
    Bus.create eng ~mode:Bus.Switchboard ~num_sites ~delay ~egress_rate
      ?bandwidth:bus_bandwidth ~size_fn:msg_size ~topic_key:topic_class ()
  in
  let fabric = DP.create ~seed ?flow_store ~lanes () in
  let sites =
    Array.init num_sites (fun i ->
        let fab_site = DP.add_site fabric (Printf.sprintf "site%d" i) in
        let forwarder = DP.add_forwarder fabric ~site:fab_site in
        { fab_site; forwarders = [ forwarder ]; edge = None })
  in
  let locals =
    Array.init num_sites (fun i ->
        {
          ls_site = i;
          ls_known = Hashtbl.create 8;
          ls_instance_info = Hashtbl.create 16;
          ls_fwd_info = Hashtbl.create 16;
          ls_installed = Hashtbl.create 16;
          ls_installed_rx = Hashtbl.create 16;
          ls_published_weight = Hashtbl.create 8;
          ls_subscribed = Hashtbl.create 16;
        })
  in
  let t =
    {
      eng;
      bus;
      fabric;
      sites;
      locals;
      gsb_site;
      delay;
      install_latency;
      retry_interval;
      rollout;
      compiled = Compile.empty ();
      vnf_ctls = Hashtbl.create 8;
      chains = Hashtbl.create 8;
      txns = Hashtbl.create 8;
      decisions = Hashtbl.create 8;
      chain_inflight = Hashtbl.create 8;
      queued_routes = Hashtbl.create 8;
      gsb_down = false;
      attachments = Hashtbl.create 8;
      pending_commits = Hashtbl.create 8;
      next_chain = 0;
      next_txid = 0;
      route_policy = None;
      store = None;
      persisted_index = [];
      log_enabled = true;
      events = ref [];
      churn_scale_outs = 0;
      churn_removed = 0;
      churn_drains_done = 0;
      churn_drains_aborted = 0;
      churn_draining = 0;
      churn_durations = [];
    }
  in
  (* Global Switchboard listens for chain requests. *)
  Bus.subscribe bus ~site:gsb_site ~topic:chain_request_topic (function
    | Chain_request { chain; spec } -> gsb_on_request t ~chain ~spec
    | _ -> ());
  (* The edge controller trivially accepts two-phase-commit prepares (and,
     being stateless, re-votes identically on retransmitted ones). *)
  Bus.subscribe bus ~site:gsb_site ~topic:(participant_topic ~name:"edge") (function
    | Prepare { txid; _ } ->
      Bus.publish bus ~site:gsb_site ~topic:(votes_topic ~txid)
        (Vote { txid; participant = "edge"; accept = true; rejected = [] })
    | Commit { txid } | Abort { txid } ->
      Bus.publish bus ~site:gsb_site ~topic:(votes_topic ~txid)
        (Decision_ack { txid; participant = "edge" })
    | _ -> ());
  (* Every Local Switchboard watches for committed routes — full route
     sets (Full mode, coordinator recovery) and compiled deltas. *)
  Array.iter
    (fun ls ->
      Bus.subscribe bus ~site:ls.ls_site ~topic:broadcast_topic (function
        | Route_update { chain; egress_label; spec; routes; version } ->
          ls_apply_full t ls ~chain ~egress:egress_label ~spec ~version
            (Compile.transitions_of_routes ~nstages:(List.length spec.vnfs + 1) routes)
        | Route_delta { chain; egress_label; spec; delta } ->
          ls_apply_delta t ls ~chain ~egress:egress_label ~spec delta
        | _ -> ()))
    locals;
  t

let set_route_policy t policy = t.route_policy <- Some policy

let deploy_vnf t ~vnf ~site ~capacity ~instances =
  let v =
    match Hashtbl.find_opt t.vnf_ctls vnf with
    | Some v -> v
    | None ->
      let v =
        {
          v_id = vnf;
          v_home = site;
          v_capacity = Hashtbl.create 4;
          v_committed = Hashtbl.create 4;
          v_reserved = Hashtbl.create 4;
          v_voted = Hashtbl.create 4;
          v_applied = Hashtbl.create 4;
          v_instances = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.vnf_ctls vnf v;
      let name = Printf.sprintf "vnf_%d" vnf in
      let ack txid =
        Bus.publish t.bus ~site:v.v_home ~topic:(votes_topic ~txid)
          (Decision_ack { txid; participant = name })
      in
      Bus.subscribe t.bus ~site ~topic:(participant_topic ~name) (function
        | Prepare { txid; chain; routes; delta; spec } -> (
          match Hashtbl.find_opt v.v_voted txid with
          | Some vote ->
            (* Retransmitted Prepare: the original Vote was lost. Answer
               from memory — recomputing could double-reserve. *)
            Bus.publish t.bus ~site:v.v_home ~topic:(votes_topic ~txid) vote
          | None ->
            vnf_on_prepare t v ~txid ~chain ~routes ~delta ~spec;
            (* Remember the chain/egress for the commit. *)
            Hashtbl.replace t.pending_commits txid (chain, spec))
        | Commit { txid } ->
          (match Hashtbl.find_opt t.pending_commits txid with
          | Some (chain, _spec) -> (
            match Hashtbl.find_opt t.chains chain with
            | Some cs -> vnf_on_commit t v ~txid ~chain ~egress:(Option.get cs.c_egress)
            | None -> ())
          | None -> ());
          ack txid
        | Abort { txid } ->
          Hashtbl.remove v.v_reserved txid;
          ack txid
        | _ -> ());
      v
  in
  Hashtbl.replace v.v_capacity site capacity;
  let fwds = Array.of_list t.sites.(site).forwarders in
  let ids =
    List.init instances (fun i ->
        DP.add_vnf_instance t.fabric ~vnf ~site:t.sites.(site).fab_site
          ~forwarder:fwds.(i mod Array.length fwds) ())
  in
  let existing = match Hashtbl.find_opt v.v_instances site with Some l -> l | None -> [] in
  Hashtbl.replace v.v_instances site (existing @ ids)

let register_edge t ~site ~attachment =
  let info = t.sites.(site) in
  let edge =
    match info.edge with
    | Some e -> e
    | None ->
      let e = DP.add_edge t.fabric ~site:info.fab_site ~forwarder:(List.hd info.forwarders) in
      info.edge <- Some e;
      e
  in
  ignore edge;
  Hashtbl.replace t.attachments attachment site

let request_chain t spec =
  let chain = t.next_chain in
  t.next_chain <- chain + 1;
  let origin =
    match Hashtbl.find_opt t.attachments spec.ingress_attachment with
    | Some s -> s
    | None -> t.gsb_site
  in
  ignore
    (Engine.schedule t.eng ~delay:0. (fun () ->
         Bus.publish t.bus ~site:origin ~topic:chain_request_topic
           (Chain_request { chain; spec })));
  chain

let chain_routes t ~chain =
  match Hashtbl.find_opt t.chains chain with Some cs -> cs.c_routes | None -> []

let chain_egress_site t ~chain =
  match Hashtbl.find_opt t.chains chain with Some cs -> cs.c_egress | None -> None

let chain_ingress_site t ~chain =
  match Hashtbl.find_opt t.chains chain with Some cs -> cs.c_ingress | None -> None

let add_route t ~chain route =
  match Hashtbl.find_opt t.chains chain with
  | None -> invalid_arg "System.add_route: unknown chain"
  | Some cs ->
    logf t (fun m -> m "gsb: route addition requested for chain %d" chain);
    (* Rebalance weights evenly across old and new routes. *)
    let all = cs.c_routes @ [ route ] in
    let n = float_of_int (List.length all) in
    let routes = List.map (fun r -> { r with weight = 1. /. n }) all in
    gsb_start_2pc t cs routes ~exclude:[]

let update_routes t ~chain routes =
  match Hashtbl.find_opt t.chains chain with
  | None -> invalid_arg "System.update_routes: unknown chain"
  | Some cs ->
    logf t (fun m ->
        m "gsb: route update requested for chain %d (%d routes)" chain
          (List.length routes));
    gsb_start_2pc t cs routes ~exclude:[]

let add_edge_site t ~chain ~site =
  match Hashtbl.find_opt t.chains chain with
  | None -> invalid_arg "System.add_edge_site: unknown chain"
  | Some cs ->
    let egress = Option.get cs.c_egress in
    let ls = t.locals.(site) in
    (* Step 1 (0 ms): choose the first VNF's site on the least-latency
       existing route. *)
    let best_route =
      List.fold_left
        (fun best r ->
          let d = t.delay site r.element_sites.(1) in
          match best with
          | Some (_, bd) when bd <= d -> best
          | _ -> Some (r, d))
        None cs.c_routes
    in
    (match best_route with
    | None -> logf t (fun m -> m "site %d: no route to extend for chain %d" site chain)
    | Some (r, _) ->
      let s1 = r.element_sites.(1) in
      let first_vnf = List.hd cs.c_spec.vnfs in
      logf t (fun m ->
          m "site %d: Local SB chose 1st VNF's site %d for chain %d" site s1 chain);
      (* Step 2: pull the first VNF's forwarder info (retained topic). *)
      ls_subscribe t ls (forwarders_topic ~chain ~egress ~vnf:first_vnf ~site:s1)
        (function
        | Forwarder_info { forwarders; _ } ->
          logf t (fun m ->
              m "site %d: edge instance's fwrdr received 1st VNF's info" site);
          (* Step 3: configure the edge forwarder's data plane (stage-0
             rule + tunnel towards the first VNF's forwarder). *)
          ignore
            (Engine.schedule t.eng ~delay:t.install_latency (fun () ->
                 let rule =
                   List.map (fun (f, w) -> (Fabric.Forwarder f, Float.max w 1.)) forwarders
                 in
                 List.iter
                   (fun forwarder ->
                     DP.install_rule t.fabric ~forwarder ~chain_label:chain
                       ~egress_label:egress ~stage:0 rule)
                   t.sites.(site).forwarders;
                 logf t (fun m ->
                     m "site %d: edge instance's fwrdr dataplane configured" site);
                 (* Step 4: announce this edge's forwarder so the first
                    VNF's forwarder can configure the return side. *)
                 Bus.publish t.bus ~site
                   ~topic:(edge_forwarders_topic ~chain ~egress)
                   (Forwarder_info
                      {
                        vnf = -1;
                        site;
                        forwarders = [ (List.hd t.sites.(site).forwarders, 1.) ];
                      })))
        | _ -> ()))

let add_forwarder t ~site =
  let info = t.sites.(site) in
  let forwarder = DP.add_forwarder t.fabric ~site:info.fab_site in
  info.forwarders <- info.forwarders @ [ forwarder ];
  (* The Local Switchboard replays the site's current rules onto the new
     forwarder once it is configured. *)
  let ls = t.locals.(site) in
  ignore
    (Engine.schedule t.eng ~delay:t.install_latency (fun () ->
         Hashtbl.iter
           (fun (chain, egress, stage) rule ->
             DP.install_rule t.fabric ~forwarder ~chain_label:chain
               ~egress_label:egress ~stage rule)
           ls.ls_installed;
         Hashtbl.iter
           (fun (chain, egress, stage) rule ->
             DP.install_rx_rule t.fabric ~forwarder ~chain_label:chain
               ~egress_label:egress ~stage rule)
           ls.ls_installed_rx;
         logf t (fun m ->
             m "site %d: forwarder %d joined and configured (%d rules)" site forwarder
               (Hashtbl.length ls.ls_installed))));
  forwarder

let scale_vnf_instances t ~vnf ~site ~count =
  let v =
    match Hashtbl.find_opt t.vnf_ctls vnf with
    | Some v -> v
    | None -> invalid_arg "System.scale_vnf_instances: unknown vnf"
  in
  if not (Hashtbl.mem v.v_capacity site) then
    invalid_arg "System.scale_vnf_instances: vnf not deployed at site";
  let fwds = Array.of_list t.sites.(site).forwarders in
  let existing = match Hashtbl.find_opt v.v_instances site with Some l -> l | None -> [] in
  let fresh =
    List.init count (fun i ->
        DP.add_vnf_instance t.fabric ~vnf ~site:t.sites.(site).fab_site
          ~forwarder:fwds.((List.length existing + i) mod Array.length fwds)
          ())
  in
  Hashtbl.replace v.v_instances site (existing @ fresh);
  logf t (fun m ->
      m "vnf %d: scaled to %d instances at site %d" vnf
        (List.length existing + count) site);
  (* Republish instance weights for every chain allocated here so Local
     Switchboards rebalance onto the new instances. *)
  let chains_here =
    Hashtbl.fold
      (fun (chain, s) _ acc -> if s = site then chain :: acc else acc)
      v.v_committed []
    |> List.sort_uniq compare
  in
  let all = existing @ fresh in
  List.iter
    (fun chain ->
      match Hashtbl.find_opt t.chains chain with
      | Some { c_egress = Some egress; _ } ->
        Bus.publish t.bus ~site:v.v_home
          ~topic:(instances_topic ~chain ~egress ~vnf ~site)
          (Instance_info { vnf; site; instances = List.map (fun i -> (i, 1.0)) all })
      | Some _ | None -> ())
    chains_here

let probe_chain t ~chain ?ingress_site tuple =
  match Hashtbl.find_opt t.chains chain with
  | None -> Error Fabric.Not_an_edge
  | Some cs -> (
    let site =
      match ingress_site with
      | Some s -> s
      | None -> ( match cs.c_ingress with Some s -> s | None -> 0)
    in
    match (t.sites.(site).edge, cs.c_egress) with
    | Some edge, Some egress ->
      DP.send_forward t.fabric ~ingress:edge ~chain_label:chain ~egress_label:egress
        tuple
    | _ -> Error Fabric.Not_an_edge)

let chain_measurements t ~chain =
  match Hashtbl.find_opt t.chains chain with
  | Some { c_egress = Some egress; c_spec; _ } ->
    let stages = List.length c_spec.vnfs + 1 in
    Array.init stages (fun stage ->
        DP.stage_counters t.fabric ~chain_label:chain ~egress_label:egress ~stage)
  | Some _ | None -> [||]

(* Per-site view of the same counters, via the Local Switchboard's chain
   knowledge: the Global Switchboard's table is NOT consulted, so this is
   exactly what a site-local exporter can see. *)
let site_known_chains t ~site =
  Hashtbl.fold
    (fun id (lc : local_chain) acc ->
      (id, lc.lc_egress, List.length lc.lc_spec.vnfs + 1) :: acc)
    t.locals.(site).ls_known []
  |> List.sort compare

let site_chain_measurements t ~site ~chain =
  match Hashtbl.find_opt t.locals.(site).ls_known chain with
  | Some lc ->
    let stages = List.length lc.lc_spec.vnfs + 1 in
    Array.init stages (fun stage ->
        DP.site_stage_counters t.fabric ~site:t.sites.(site).fab_site
          ~chain_label:chain ~egress_label:lc.lc_egress ~stage)
  | None -> [||]

let site_chain_measurements_into t ~site ~chain ~pkts ~bytes =
  match Hashtbl.find_opt t.locals.(site).ls_known chain with
  | Some lc ->
    let stages = List.length lc.lc_spec.vnfs + 1 in
    if Array.length pkts < stages || Array.length bytes < stages then
      invalid_arg "System.site_chain_measurements_into: buffers too small";
    DP.site_stage_counters_into t.fabric ~site:t.sites.(site).fab_site
      ~chain_label:chain ~egress_label:lc.lc_egress ~pkts ~bytes;
    stages
  | None -> -1

let site_chain_version t ~site ~chain =
  Option.map
    (fun lc -> lc.lc_version)
    (Hashtbl.find_opt t.locals.(site).ls_known chain)

let reset_measurements t = DP.reset_counters t.fabric

let site_flow_table_stats t ~site =
  (* Lane-aggregated occupancy of every connection table at the site:
     entries, open-addressing capacity and worst probe length. *)
  List.fold_left
    (fun (c, k, m) forwarder ->
      let c', k', m' = DP.flow_table_stats t.fabric ~forwarder in
      (c + c', k + k', max m m'))
    (0, 0, 0) t.sites.(site).forwarders

let vnf_committed_load t ~vnf ~site =
  match Hashtbl.find_opt t.vnf_ctls vnf with
  | None -> 0.
  | Some v ->
    Hashtbl.fold
      (fun (_, s) load acc -> if s = site then acc +. load else acc)
      v.v_committed 0.

(* ------------------- Elastic placement lifecycle -------------------- *)

let deployment_churn t =
  {
    ch_scale_outs = t.churn_scale_outs;
    ch_removed = t.churn_removed;
    ch_drains_completed = t.churn_drains_done;
    ch_drains_aborted = t.churn_drains_aborted;
    ch_draining = t.churn_draining;
    ch_drain_durations = List.rev t.churn_durations;
  }

let scale_out t ~vnf ~site ~capacity ~instances =
  deploy_vnf t ~vnf ~site ~capacity ~instances;
  t.churn_scale_outs <- t.churn_scale_outs + 1;
  logf t (fun m ->
      m "vnf %d: scale-out at site %d (capacity %g, %d instances)" vnf site
        capacity instances)

let drain_and_remove t ~vnf ~site ?(poll_interval = 0.25) ?timeout ?on_done () =
  let v =
    match Hashtbl.find_opt t.vnf_ctls vnf with
    | Some v -> v
    | None -> invalid_arg "System.drain_and_remove: unknown vnf"
  in
  let ids =
    match Hashtbl.find_opt v.v_instances site with
    | Some ((_ :: _) as l) -> l
    | Some [] | None ->
      invalid_arg "System.drain_and_remove: vnf not deployed at site"
  in
  let started = Engine.now t.eng in
  let saved = List.map (fun i -> (i, DP.instance_weight t.fabric i)) ids in
  (* Phase 1: stop new-flow assignment. Zeroing the balancer weights hides
     the instances from decentralized pickers ([site_vnf_instances]); the
     routed path stops sending new connections because the caller has
     already committed a route set that excludes this site through the
     delta 2PC. Established connections keep their flow-table pins (flow
     affinity) and bleed away through the expiry clock. *)
  List.iter (fun i -> DP.set_instance_weight t.fabric i 0.) ids;
  t.churn_draining <- t.churn_draining + 1;
  logf t (fun m ->
      m "vnf %d: draining %d instance(s) at site %d" vnf (List.length ids) site);
  let finish ok =
    t.churn_draining <- t.churn_draining - 1;
    if ok then begin
      (* Phase 2: retract. No flow-table cell (any lane, any replica)
         pins a connection to these instances and the VNF controller
         holds no committed load here, so failing them blackholes
         nothing — the drain-safety invariant sb_chaos checks. *)
      List.iter (fun i -> DP.fail_instance t.fabric i) ids;
      Hashtbl.remove v.v_instances site;
      Hashtbl.remove v.v_capacity site;
      t.churn_removed <- t.churn_removed + 1;
      t.churn_drains_done <- t.churn_drains_done + 1;
      let dur = Engine.now t.eng -. started in
      t.churn_durations <-
        dur :: List.filteri (fun i _ -> i < 63) t.churn_durations;
      logf t (fun m ->
          m "vnf %d: drained and retracted site %d after %.2fs" vnf site dur)
    end
    else begin
      (* Abort: restore the saved weights — the deployment stays exactly
         as it was before the drain started. Atomicity under coordinator
         failure: a half-done drain never retracts anything. *)
      List.iter (fun (i, w) -> DP.set_instance_weight t.fabric i w) saved;
      t.churn_drains_aborted <- t.churn_drains_aborted + 1;
      logf t (fun m -> m "vnf %d: drain aborted at site %d" vnf site)
    end;
    match on_done with Some f -> f ok | None -> ()
  in
  let rec poll () =
    if t.gsb_down then finish false
    else if
      match timeout with
      | Some tmo -> Engine.now t.eng -. started > tmo
      | None -> false
    then finish false
    else begin
      let committed = vnf_committed_load t ~vnf ~site in
      let occ =
        List.fold_left (fun a i -> a + DP.instance_flow_count t.fabric i) 0 ids
      in
      if committed <= 1e-9 && occ = 0 then finish true
      else ignore (Engine.schedule t.eng ~delay:poll_interval poll)
    end
  in
  ignore (Engine.schedule t.eng ~delay:poll_interval poll)

let set_gsb_down t down =
  if down && not t.gsb_down then begin
    t.gsb_down <- true;
    (* The coordinator's volatile state dies with it: in-flight
       transactions, un-acked decisions and the compiled diagrams are
       lost. Participants keep their reservations (harmless: admission
       counts only committed load); the recovered coordinator re-drives
       every persisted chain with fresh transactions — full deltas from
       an empty snapshot, resetting every site's version lineage — via
       [recover_from_store]. *)
    Hashtbl.reset t.txns;
    Hashtbl.reset t.decisions;
    Hashtbl.reset t.chain_inflight;
    Hashtbl.reset t.queued_routes;
    t.compiled <- Compile.empty ();
    logf t (fun m -> m "gsb: down (in-flight transactions lost)")
  end
  else if (not down) && t.gsb_down then begin
    t.gsb_down <- false;
    logf t (fun m -> m "gsb: standby taking over")
  end

let gsb_is_down t = t.gsb_down

let chain_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.chains [] |> List.sort compare

let chain_spec t ~chain =
  Option.map (fun cs -> cs.c_spec) (Hashtbl.find_opt t.chains chain)

let txns_in_flight t =
  Hashtbl.length t.txns + Hashtbl.length t.decisions + Hashtbl.length t.queued_routes

let site_installed_rules t ~site =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.locals.(site).ls_installed []
  |> List.sort compare

(* ---------------------- decentralized mechanism ---------------------- *)

(* Static infrastructure knowledge (see the interface header: identities
   of sites, forwarders, edges and VNF instances are static) plus raw
   counter/rule access, exposed so a decentralized decision process
   ([Sb_adapt.Anycast]) can run the fabric without the Global Switchboard
   or per-chain 2PC admission. *)

let site_vnf_instances t ~site ~vnf =
  match Hashtbl.find_opt t.vnf_ctls vnf with
  | None -> []
  | Some v -> (
    match Hashtbl.find_opt v.v_instances site with
    | None -> []
    | Some ids ->
      List.sort compare ids
      |> List.filter_map (fun id ->
             if DP.instance_alive t.fabric id then
               let w = DP.instance_weight t.fabric id in
               if w > 0. then Some (id, w) else None
             else None))

let site_vnf_instance_ids t ~site ~vnf =
  match Hashtbl.find_opt t.vnf_ctls vnf with
  | None -> []
  | Some v -> (
    match Hashtbl.find_opt v.v_instances site with
    | None -> []
    | Some ids -> List.sort compare ids)

let site_vnf_forwarder_weights t ~site ~vnf =
  List.filter_map
    (fun f ->
      let w = DP.forwarder_published_weight t.fabric f vnf in
      if w > 0. then Some (f, w) else None)
    t.sites.(site).forwarders

let site_deployed_vnfs t ~site =
  Hashtbl.fold
    (fun vnf v acc ->
      match Hashtbl.find_opt v.v_instances site with
      | Some (_ :: _) -> vnf :: acc
      | _ -> acc)
    t.vnf_ctls []
  |> List.sort compare

let site_stage_packets t ~site ~chain ~egress ~stage =
  fst
    (DP.site_stage_counters t.fabric ~site:t.sites.(site).fab_site
       ~chain_label:chain ~egress_label:egress ~stage)

let apply_site_patches t ~site patches =
  if patches <> [] then
    ignore
      (Engine.schedule t.eng ~delay:t.install_latency (fun () ->
           List.iter
             (fun forwarder -> ignore (DP.apply_delta t.fabric ~forwarder patches))
             t.sites.(site).forwarders))

let attach_store t store = t.store <- Some store

let recover_from_store t store ~on_done =
  Sb_music.Store.get store ~from:t.gsb_site ~key:"chains/index" (function
    | Some (Chain_index ids) ->
      let pending = ref (List.length ids) in
      let recovered = ref [] in
      if !pending = 0 then on_done []
      else
        List.iter
          (fun id ->
            Sb_music.Store.get store ~from:t.gsb_site
              ~key:(Printf.sprintf "chain/%d" id)
              (fun result ->
                (match result with
                | Some (Chain_record r) ->
                  let cs =
                    {
                      c_id = id;
                      c_spec = r.cr_spec;
                      c_routes = r.cr_routes;
                      c_ingress = Some r.cr_ingress;
                      c_egress = Some r.cr_egress;
                    }
                  in
                  Hashtbl.replace t.chains id cs;
                  if id >= t.next_chain then t.next_chain <- id + 1;
                  if not (List.mem id t.persisted_index) then
                    t.persisted_index <- id :: t.persisted_index;
                  recovered := id :: !recovered;
                  logf t (fun m -> m "gsb(standby): recovered chain %d from MUSIC" id);
                  (* Re-drive the two-phase commit with the recovered
                     routes: VNF controllers re-admit and republish their
                     instance weights, Local Switchboards reinstall rules. *)
                  gsb_start_2pc t cs r.cr_routes ~exclude:[]
                | Some (Chain_index _) | None ->
                  logf t (fun m -> m "gsb(standby): chain %d unrecoverable" id));
                decr pending;
                if !pending = 0 then on_done (List.sort compare !recovered)))
          ids
    | Some (Chain_record _) | None ->
      logf t (fun m -> m "gsb(standby): no chain index in MUSIC");
      on_done [])
