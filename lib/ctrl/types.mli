(** Control-plane message vocabulary and topic naming (Sections 3 and 6).

    All controller coordination flows over the global message bus as
    [msg] payloads on string topics. Topic names follow the paper's
    convention: per-chain, per-egress, per-VNF, per-site topics such as
    ["/c1/e3/vnf_G/site_A_instances"]. *)

type chain_spec = {
  spec_name : string;
  ingress_attachment : string;
      (** customer attribute resolved by the edge controller, e.g. a
          customer edge-router identifier *)
  egress_attachment : string;
  vnfs : int list;  (** ordered VNF ids *)
  traffic : float;  (** expected demand, used for admission *)
}

type route = {
  element_sites : int array;
      (** a site per chain element: ingress edge site, one per VNF, egress
          edge site *)
  weight : float;  (** share of the chain's traffic on this route *)
}


(** Durable Global Switchboard state, persisted to the MUSIC store
    (Section 4.5) so a standby controller can recover committed chains. *)
type chain_record = {
  cr_spec : chain_spec;
  cr_routes : route list;
  cr_ingress : int;
  cr_egress : int;
}

type persisted =
  | Chain_record of chain_record
  | Chain_index of int list  (** ids of every committed chain *)

type stage_delta = {
  sd_stage : int;  (** chain stage the replacement applies to *)
  sd_tr : (int * int * float) array;
      (** the stage's new [(src_site, dst_site, weight)] transitions, one
          per route {e in route-list order} — Local Switchboards fold them
          in array order, so the float accumulation matches a full
          reinstall bit for bit *)
}

(** The wire form of one chain's compiled-diagram diff ({!Compile}): only
    the stages whose decision-diagram path changed, plus the per-VNF
    admission demand rows that changed. Versions make application
    order-safe: a participant applies a partial delta only on top of the
    exact base version it was diffed against. *)
type chain_delta = {
  cd_base : int;  (** committed version this diff was computed against *)
  cd_target : int;  (** version after applying the delta *)
  cd_nstages : int;  (** total stages of the chain (sanity/fallback check) *)
  cd_full : bool;
      (** [cd_stages] covers {e every} stage (new chain, recovery, or the
          [`Full] rollout baseline): applied unconditionally, resetting
          the participant's version lineage *)
  cd_stages : stage_delta list;  (** ascending by stage *)
  cd_demand : (int * (int * float) list) list;
      (** per changed VNF, its new per-site admission demand
          [(site, load)], sorted by site; VNFs absent from the list keep
          their currently committed allocation *)
}

type msg =
  | Chain_request of { chain : int; spec : chain_spec }
  | Prepare of {
      txid : int;
      chain : int;
      routes : route list;
          (** full route set ([`Full] rollout mode only; empty under
              delta rollout) *)
      delta : chain_delta option;
          (** compiled delta ([`Delta] rollout mode); VNF participants
              admit from [cd_demand] instead of recomputing demand from
              routes *)
      spec : chain_spec;
    }
  | Vote of { txid : int; participant : string; accept : bool; rejected : (int * int) list }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Decision_ack of { txid : int; participant : string }
      (** participant's confirmation that it applied a [Commit]/[Abort];
          the coordinator retransmits the decision until acked, which is
          what makes the 2PC tolerate wide-area message loss *)
  | Route_update of {
      chain : int;
      egress_label : int;
      spec : chain_spec;
      routes : route list;
      version : int;
    }
  | Route_delta of {
      chain : int;
      egress_label : int;
      spec : chain_spec;
      delta : chain_delta;
    }
      (** the O(churn) commit announcement: broadcast on ["/chains"] in
          delta rollout mode while the full {!Route_update} is retained on
          {!route_topic} as the heal path for participants that detect a
          version gap (e.g. after wide-area loss) *)
  | Instance_info of { vnf : int; site : int; instances : (int * float) list }
      (** fabric VNF-instance ids and load-balancing weights *)
  | Forwarder_info of { vnf : int; site : int; forwarders : (int * float) list }
  | Edge_info of { site : int; edge : int; forwarder : int }
  | Telemetry_report of {
      site : int;
      epoch : int;
      chain : int;
      stages : (int * int) array;
          (** per-stage [(packets, bytes)] measured at this site during the
              epoch's window (a delta, not a cumulative count) *)
      down_links : int list;
          (** topology link ids this site's forwarders observe down *)
      table : int * int * int;
          (** [(count, capacity, max_probe)] of the site's connection
              tables, summed over its forwarders and the shard's lanes —
              flow-table occupancy for capacity planning and the
              cache-cliff analysis (load factor is [count /. capacity]) *)
    }
      (** One site's per-chain measurement export for one epoch — the
          feedback the telemetry aggregator ([sb_adapt]) assembles into a
          measured traffic matrix (Section 4.1). *)
  | Load_advert of {
      site : int;
      epoch : int;
      loads : (int * float) list;
          (** per deployed VNF, the site's currently carried load in
              traffic units, sorted by VNF id *)
      fwd_weights : (int * (int * float) list) list;
          (** per deployed VNF, the site's [(forwarder, weight)] load
              balancing targets (static fabric knowledge, flooded so a
              remote decision process can address this site's instances
              without per-chain 2PC admission) *)
      down_links : int list;
          (** topology link ids this site observes down, sorted *)
    }
      (** One site's flooded link-state/load advertisement for the
          decentralized anycast control arm ([Sb_adapt.Anycast]): retained
          on {!advert_topic} so every peer site keeps the latest view, aged
          out by epoch staleness at the receiver. *)

val chain_request_topic : string
val votes_topic : txid:int -> string
val participant_topic : name:string -> string
val route_topic : chain:int -> string

val instances_topic : chain:int -> egress:int -> vnf:int -> site:int -> string
(** ["/c<chain>/e<egress>/vnf_<vnf>/site_<site>_instances"]. *)

val forwarders_topic : chain:int -> egress:int -> vnf:int -> site:int -> string

val telemetry_topic : chain:int -> string
(** ["/telemetry/c<chain>"] — per-chain telemetry reports; in Switchboard
    bus mode only sites subscribed to a chain's reports (the Global
    Switchboard) receive them. *)

val advert_topic : site:int -> string
(** ["/advert/s<site>"] — the site's retained {!msg.Load_advert} flood
    topic for the anycast arm; every participating site subscribes to
    every other site's topic (O(sites²) subscriptions, one WAN copy per
    subscribing site per publish). *)

val pp_msg : Format.formatter -> msg -> unit

val msg_size : msg -> int
(** Nominal serialized size in bytes (fixed header + flat field encoding:
    4 B ints, 8 B floats, strings verbatim). The {!Sb_msgbus.Bus} size
    hook — rollout bytes-on-wire measurements compare these across full
    and delta payloads, so only relative payload scaling matters. *)

val topic_class : string -> string
(** Collapse a topic into its bounded family ("/chain/17/route" ->
    "/chain/*/route") so per-topic byte counters stay O(topic families)
    at million-chain scale. Used as the bus accounting's [topic_key]. *)
