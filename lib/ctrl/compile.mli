(** Rule compiler: chains to hash-consed decision diagrams, diffed into
    O(churn) rollout deltas (ROADMAP item 2, after Frenetic's NetKAT
    compiler).

    The [(chain, egress, stage) -> targets/weights] rule space a chain
    induces is fully determined by its per-stage {e transition tables}
    [(src_site, dst_site, weight)] (one row per route, in route order) —
    every Local Switchboard rule is a pure function of one stage's table
    plus locally learned instance/forwarder weights. A chain therefore
    compiles to a {e spine}: one interned node per stage, keyed by
    [(action id, tail id)] where the action is the stage's interned
    transition table and the tail the next stage's node. Interning is
    global and shared: two chains that route identically from stage [k]
    on share every node from [k] down, so

    - memory is O(distinct suffixes), not O(chains x stages), and
    - [diff] walks two spines only until their node ids meet — emitting a
      delta costs O(changed stages).

    Snapshots ([t]) are persistent maps from chain to (root, version,
    demand) over the shared interner; the Global Switchboard keeps one
    snapshot per {e committed} state and diffs prepared updates against
    it to build the {!Types.chain_delta} payloads of the delta 2PC. *)

open Types

type transitions = (int * int * float) array
(** One stage's transition table, in route-list order (order is
    load-bearing: installers fold weights in array order, which must
    replicate the full-reinstall float accumulation bit for bit). *)

type t
(** A compiled snapshot of every committed chain. Persistent — [commit]
    returns a new snapshot, sharing the interner. *)

type prepared
(** One chain's compiled next state: root node, target version and
    per-VNF admission demand. Produced when a 2PC starts, turned into the
    committed state by {!commit} when it decides. *)

val empty : unit -> t
(** Fresh snapshot over a fresh interner. A recovered standby starts
    empty — its first re-driven transaction per chain is a full delta,
    resetting participants' version lineage. *)

val version : t -> chain:int -> int
(** Committed version of a chain; 0 when never committed. *)

val prepare :
  ?version:int -> t -> chain:int -> spec:chain_spec -> routes:route list -> prepared
(** Intern the chain's spine for [routes] and compute its demand rows;
    the prepared version defaults to [version t ~chain + 1]. Pass
    [?version] when preparing against an uncommitted base (a queued
    update targets the in-flight transaction's version + 1, however many
    times it is superseded). O(stages) table lookups when the structure
    is already interned. *)

val commit : t -> chain:int -> prepared -> t
(** Snapshot with the chain's committed state replaced by [prepared]. *)

val delta_from_committed : t -> prepared -> chain_delta
(** Diff [prepared] against the chain's committed entry: only stages
    whose diagram path changed and only VNFs whose demand rows changed.
    Full ([cd_full]) when the chain has no committed entry or its VNF
    set/stage count changed. *)

val delta_between : t -> base:prepared -> target:prepared -> chain_delta
(** Like {!delta_from_committed} but against an uncommitted base — used
    to extend a queued update while another transaction is in flight. *)

val compose : chain_delta -> chain_delta -> chain_delta
(** [compose older newer]: the delta equivalent to applying [older] then
    [newer] — per-stage and per-VNF the newer entry wins, the base stays
    [older]'s. This is the merge a superseding queued update must perform
    (replacing, as the route-list queue used to, would silently drop the
    older delta's stages). A [cd_full] newer simply supersedes. *)

val transitions_of_routes : nstages:int -> route list -> transitions array
(** The per-stage transition tables of a route set (route-list order). *)

val demands_of_routes : chain_spec -> route list -> (int * (int * float) list) list
(** Per unique VNF (ascending), the per-site admission demand
    [(site, load)] sorted by site. Float accumulation order matches the
    uncompiled [vnf_demand_per_site], so shipped demand rows admit
    identically to locally recomputed ones. *)

type stats = {
  chains : int;
  nodes : int;  (** interned spine nodes (cumulative; excludes the leaf) *)
  actions : int;  (** interned transition tables (cumulative) *)
  stages_total : int;  (** sum of committed chains' stage counts *)
}

val stats : t -> stats
(** [nodes]/[stages_total] < 1 is the structural-sharing factor across
    chains reusing VNF suffixes. *)

val prepared_version : prepared -> int
val prepared_chain : prepared -> int
