(** An assembled Switchboard deployment: Global Switchboard, per-site Local
    Switchboards, edge controllers, VNF controllers — all exchanging
    {!Types.msg} over the global message bus ([sb_msgbus]) and installing
    rules into a data-plane fabric ([sb_dataplane]) — driven by the
    discrete-event engine.

    This is the machinery behind Section 3's chain-creation flow (Fig. 4),
    the two-phase commit between Global Switchboard and VNF/edge
    controllers, the dynamic-chaining experiments of Section 7.1 (Fig. 10
    and Table 2), and the edge-site extension of Section 6.

    Simplifications vs. the paper's testbed, documented in DESIGN.md: one
    forwarder per site (forwarder scale-out is evaluated separately in
    [sb_dataplane]); chain labels are chain ids and egress labels are
    egress-site ids; infrastructure identities (which forwarder serves a
    site) are static knowledge while all {e dynamic} state — routes,
    instance weights, forwarder weights — travels over the bus with real
    delays. *)

type t

type rollout = Delta_rollout | Full_rollout
(** How committed route state reaches participants and Local Switchboards.
    [Delta_rollout] (the default) compiles route sets into hash-consed
    decision diagrams ({!Compile}), ships only the changed stages and
    changed per-VNF demand rows through the 2PC and the commit
    announcement, and skips the per-site [Instance_info] republish for
    VNFs whose demand did not move — bytes on the wire scale with an
    epoch's churn, not the chain's size. [Full_rollout] is the original
    protocol: full route sets in every Prepare and Route_update. Both
    modes produce bit-identical installed rules, traces and counters
    (pinned by the equivalence tests). *)

val create :
  ?seed:int ->
  ?install_latency:float ->
  ?egress_rate:float ->
  ?bus_bandwidth:float ->
  ?retry_interval:float ->
  ?flow_store:Sb_dataplane.Fabric.flow_store ->
  ?lanes:int ->
  ?rollout:rollout ->
  num_sites:int ->
  delay:(int -> int -> float) ->
  gsb_site:int ->
  unit ->
  t
(** [delay] is the one-way inter-site control latency.
    [install_latency] (default 90 ms) models a forwarder data-plane
    configuration (rule/tunnel install). [retry_interval] (default
    500 ms) is the 2PC retransmission period: the coordinator re-sends
    Prepares to unvoted participants and Commit/Abort decisions to
    un-acked ones, making chain transactions tolerate wide-area message
    loss. [flow_store] selects the fabric's connection-state store
    (default {!Sb_dataplane.Fabric.Local}). [lanes] (default 1) shards
    the data plane across that many per-domain lanes
    ({!Sb_dataplane.Shard}); with 1 lane the data plane is bit-identical
    to an unsharded {!Sb_dataplane.Fabric}. [bus_bandwidth] (bytes/s),
    when given, makes bus egress serialization proportional to each
    message's modeled wire size ({!Types.msg_size}) instead of the flat
    per-message [egress_rate]. The bus prices every publish with
    {!Types.msg_size} and classes topics with {!Types.topic_class}, so
    [Bus.stats] reports bytes on the wire per topic class. *)

val set_logging : t -> bool -> unit
(** Disable/enable the control-plane event log. Log calls are lazy
    ([logf t (fun m -> m ...)]), so with logging off the hot paths skip
    formatting entirely — benches at 10^5+ chains turn it off. *)

val compile_stats : t -> Compile.stats
(** Size of the Global Switchboard's committed decision diagrams
    (interned nodes/actions vs total stages — the structural-sharing
    factor). *)

val engine : t -> Sb_sim.Engine.t
val bus : t -> Types.msg Sb_msgbus.Bus.t

val fabric : t -> Sb_dataplane.Fabric.t
(** Lane 0 of the data plane — the exact, whole data plane when [lanes]
    is 1 (the default), a single lane's partition otherwise. Callers that
    must see every lane (probes, counters) under [lanes > 1] go through
    {!shard}. *)

val shard : t -> Sb_dataplane.Shard.t
(** The sharded data plane itself; counters and flow-table read-outs on it
    aggregate across lanes. *)

val lanes : t -> int

val site_flow_table_stats : t -> site:int -> int * int * int
(** [(count, capacity, max_probe)] summed over the site's forwarders and
    the shard's lanes — the occupancy figure the telemetry exporter
    publishes. *)

val site_forwarder : t -> int -> int
(** The site's first (edge-facing) forwarder. *)

val site_forwarders : t -> int -> int list
(** All forwarders at a site, oldest first (Section 5.1: the Local
    Switchboard scales forwarders elastically). *)

val site_edge : t -> int -> int option

val add_forwarder : t -> site:int -> int
(** Elastically add a forwarder at a site (Fig. 5). The Local Switchboard
    replays the site's installed rules onto it after the configuration
    latency, and subsequent VNF instances are spread across all the site's
    forwarders. Returns the fabric forwarder id. *)

val scale_vnf_instances : t -> vnf:int -> site:int -> count:int -> unit
(** Add [count] instances of a deployed VNF at a site (attached round-robin
    to the site's forwarders) and republish the instance and forwarder
    weights for every chain allocated there, so load balancing rebalances
    onto the new instances — existing connections keep their instances
    (flow affinity). *)

val log : t -> (float * string) list
(** Timestamped control-plane events, oldest first. *)

val log_between : t -> float -> float -> (float * string) list

(** {2 Provisioning (before any chain exists, per Section 3 phase 1)} *)

val deploy_vnf : t -> vnf:int -> site:int -> capacity:float -> instances:int -> unit
(** Give a VNF [instances] fabric instances at a site with total admission
    capacity [capacity] (traffic units); registers the VNF controller on
    first call. *)

val register_edge : t -> site:int -> attachment:string -> unit
(** Create an edge instance at a site and bind a customer attachment string
    to it (the edge controller's mapping). *)

val set_route_policy :
  t -> (Types.chain_spec -> exclude:(int * int) list -> Types.route list option) -> unit
(** How Global Switchboard computes routes; [exclude] lists (vnf, site)
    pairs that rejected the previous two-phase-commit round. *)

(** {2 Chain lifecycle} *)

val request_chain : t -> Types.chain_spec -> int
(** Submit a chain spec (the customer portal action): publishes the request
    onto the bus and returns the chain id that will be assigned. Run the
    engine to make progress. *)

val chain_routes : t -> chain:int -> Types.route list
(** Currently committed routes (empty until the two-phase commit ends). *)

val chain_egress_site : t -> chain:int -> int option
val chain_ingress_site : t -> chain:int -> int option

val add_route : t -> chain:int -> Types.route -> unit
(** Trigger a route addition for an existing chain (the Fig. 10
    experiment): re-runs two-phase commit over the extended route set and
    re-publishes; existing connections keep their paths (flow affinity). *)

val update_routes : t -> chain:int -> Types.route list -> unit
(** Replace a chain's route set: re-runs the two-phase commit with the
    given routes (VNF controllers re-admit — a commit replaces the chain's
    previous allocation — and Local Switchboards recompute and reinstall
    rules). This is the rollout path of the [sb_adapt] closed loop's route
    deltas. Run the engine to make progress. *)

val add_edge_site : t -> chain:int -> site:int -> unit
(** Extend a chain to a new edge site on demand (Section 6, Table 2): the
    new site's Local Switchboard picks the nearest existing route, pulls
    the first VNF's forwarder info, configures its data plane, and the
    first VNF's forwarder configures the return side. Steps are logged. *)

val probe_chain : t -> chain:int -> ?ingress_site:int -> Sb_dataplane.Packet.five_tuple ->
  (Sb_dataplane.Fabric.endpoint list, Sb_dataplane.Fabric.error) result
(** Send a packet through the chain's data plane from its (or the given)
    ingress site's edge, as a liveness/timeline probe. *)

val vnf_committed_load : t -> vnf:int -> site:int -> float
(** Admission-controlled load the VNF controller has accepted at a site. *)

(** {2 Elastic placement lifecycle (DESIGN.md §16)}

    Deployments become control-loop outputs: a planner ([Sb_adapt.Place])
    adds a VNF deployment where telemetry shows saturation and retracts
    one that has gone cold. Rollout rides the same compiled-delta 2PC as
    route updates — {!scale_out} provisions first and lets the caller's
    {!update_routes} carry the new site into the committed transition
    tables, {!drain_and_remove} retracts only after the routes excluding
    the site have committed {e and} every established connection has
    drained, so no packet is blackholed mid-transaction. *)

type churn = {
  ch_scale_outs : int;  (** deployments added by {!scale_out} *)
  ch_removed : int;  (** deployments retracted after a completed drain *)
  ch_drains_completed : int;
  ch_drains_aborted : int;  (** GSB death or timeout mid-drain *)
  ch_draining : int;  (** drains in progress right now *)
  ch_drain_durations : float list;
      (** sim-clock seconds of the most recent completed drains, oldest
          first, capped at 64 — the reservoir the telemetry exporter
          summarizes *)
}

val deployment_churn : t -> churn

val scale_out : t -> vnf:int -> site:int -> capacity:float -> instances:int -> unit
(** {!deploy_vnf} through the live control loop: registers admission
    capacity and fabric instances for the VNF at a (possibly brand-new)
    site and counts the churn. The new deployment carries no traffic
    until the caller commits a route set using the site via
    {!update_routes} — the commit's [Instance_info] republish is what
    hands the new instances to the Local Switchboards, so the scale-out
    becomes visible atomically with the routes that use it. *)

val drain_and_remove :
  t ->
  vnf:int ->
  site:int ->
  ?poll_interval:float ->
  ?timeout:float ->
  ?on_done:(bool -> unit) ->
  unit ->
  unit
(** Retract a VNF deployment without blackholing a single established
    connection. Precondition: the caller has already submitted (via
    {!update_routes}) a route set that excludes this site. The drain then
    (1) zeroes the instances' balancer weights, so nothing new is
    assigned to them; (2) polls — every [poll_interval] (default 0.25 s)
    engine seconds — until the VNF controller's committed load at the
    site reaches zero (the excluding routes committed) {e and}
    {!Sb_dataplane.Shard.instance_flow_count} reaches zero for every
    instance (established flows ended or idled out through the expiry
    clock); (3) fails the instances and forgets the site's capacity.
    [on_done true] fires after retraction. If the Global Switchboard dies
    mid-drain, or [timeout] sim-seconds elapse first, the drain {e
    aborts}: the saved weights are restored, nothing is retracted, and
    [on_done false] fires — scale-in is atomic under coordinator failure.
    Without [timeout] the poll reschedules forever, so drive the engine
    with [run_until], not run-to-quiescence. *)

(** {2 Controller fault tolerance (Section 4.5)} *)

val set_gsb_down : t -> bool -> unit
(** [set_gsb_down t true] crashes the Global Switchboard: its volatile
    state (in-flight two-phase commits, un-acked decisions) is lost, and
    it stops reacting to requests, votes, and acks — exactly the
    mid-transaction failure the standby-takeover story must survive.
    [set_gsb_down t false] brings the standby up (empty-handed; call
    {!recover_from_store} to restore and re-drive persisted chains).
    Used by the [sb_chaos] GSB-failover fault. *)

val gsb_is_down : t -> bool

val attach_store : t -> Types.persisted Sb_music.Store.t -> unit
(** Persist every committed chain (spec, routes, endpoints) and the chain
    index into a MUSIC replicated store, surviving Global Switchboard
    failure. *)

val recover_from_store :
  t -> Types.persisted Sb_music.Store.t -> on_done:(int list -> unit) -> unit
(** Standby takeover: read the chain index and records back from the store
    (quorum reads over the simulated wide area), restore the chain table,
    and re-publish every recovered route so Local Switchboards reinstall
    rules. [on_done] receives the recovered chain ids once every read
    completes; run the engine to make progress. *)

val chain_measurements : t -> chain:int -> (int * int) array
(** Per-stage [(packets, bytes)] measured at the chain's forwarders since
    the last {!reset_measurements} — the feedback Global Switchboard uses
    to size [w_cz] for existing chains (Section 4.1). Empty array for an
    unknown or uncommitted chain. *)

val reset_measurements : t -> unit
(** Start a fresh measurement window on every forwarder. *)

val site_known_chains : t -> site:int -> (int * int * int) list
(** [(chain, egress, num_stages)] for every chain the site's Local
    Switchboard has learned via route updates — the chain universe a
    site-local telemetry exporter iterates. Sorted by chain id. *)

val site_chain_measurements : t -> site:int -> chain:int -> (int * int) array
(** Per-stage [(packets, bytes)] measured at this site's forwarders only,
    based on the Local Switchboard's chain knowledge; empty for a chain the
    site has not learned. Summed over all sites this equals
    {!chain_measurements}. *)

val site_chain_measurements_into :
  t -> site:int -> chain:int -> pkts:int array -> bytes:int array -> int
(** Bulk {!site_chain_measurements} into caller-owned buffers: fills
    [pkts]/[bytes] (indexed by stage) in one pass over the site's
    forwarders and returns the chain's stage count, or [-1] for a chain
    the site has not learned (buffers untouched). Raises
    [Invalid_argument] if the buffers are shorter than the stage count.
    The telemetry exporter calls this every epoch with reused scratch
    buffers, so a measurement sweep allocates nothing. *)

val site_chain_version : t -> site:int -> chain:int -> int option
(** The route-state version the site's Local Switchboard has applied for
    a chain (delta lineage guard); [None] for an unlearned chain. Under
    [Full_rollout] versions are always 0. *)

(** {2 Whole-system introspection (the [sb_chaos] invariant checker)} *)

val chain_ids : t -> int list
(** Ids of every chain the Global Switchboard knows, sorted. *)

val chain_spec : t -> chain:int -> Types.chain_spec option

val txns_in_flight : t -> int
(** Two-phase commits not yet fully settled: transactions awaiting votes
    plus decisions awaiting participant acks. Zero once the system has
    quiesced — the precondition for the 2PC-atomicity invariant check. *)

val site_installed_rules :
  t -> site:int -> ((int * int * int) * (Sb_dataplane.Fabric.endpoint * float) list) list
(** The rules a site's Local Switchboard has installed (or scheduled for
    install), keyed [(chain, egress, stage)], sorted. *)

(** {2 Decentralized mechanism}

    Static infrastructure knowledge (identities of sites, forwarders,
    edges and VNF instances — see the header) plus raw counter and rule
    access, for a decentralized decision process ([Sb_adapt.Anycast])
    that drives the fabric without the Global Switchboard or per-chain
    2PC admission. *)

val site_vnf_instances : t -> site:int -> vnf:int -> (int * float) list
(** The site's live fabric instances of a VNF with their load-balancing
    weights, id-sorted; [[]] when the VNF is not deployed there. *)

val site_vnf_instance_ids : t -> site:int -> vnf:int -> int list
(** Every fabric instance id of the VNF's deployment at the site,
    id-sorted — including draining (weight-zero) and dead ones; [[]] once
    the deployment is retracted. {!site_vnf_instances} is the filtered
    live-picker view; this is the raw census the [sb_chaos] drain-safety
    checker snapshots when it sees a deployment go weightless. *)

val site_vnf_forwarder_weights : t -> site:int -> vnf:int -> (int * float) list
(** Per site forwarder, its published aggregate weight for a VNF's local
    instances — the targets a {e remote} site addresses to relay a stage
    here (what 2PC admission floods as [Forwarder_info], available
    statically to the site itself). *)

val site_deployed_vnfs : t -> site:int -> int list
(** VNF ids with at least one instance deployed at the site, sorted. *)

val site_stage_packets : t -> site:int -> chain:int -> egress:int -> stage:int -> int
(** Cumulative packets the site's forwarders handled for a
    [(chain, egress, stage)] rule, summed over lanes — unlike
    {!site_chain_measurements} it takes the egress label explicitly, so it
    works at sites whose Local Switchboard never learned the chain. *)

val apply_site_patches : t -> site:int -> Sb_dataplane.Fabric.rule_patch list -> unit
(** Apply a batch of rule patches to every forwarder of the site after the
    data-plane [install_latency] — the local install path a per-site
    decision process uses in place of the Local Switchboard's
    transition-table rules. No-op on an empty batch. *)
