type chain_spec = {
  spec_name : string;
  ingress_attachment : string;
  egress_attachment : string;
  vnfs : int list;
  traffic : float;
}

type route = { element_sites : int array; weight : float }


type chain_record = {
  cr_spec : chain_spec;
  cr_routes : route list;
  cr_ingress : int;
  cr_egress : int;
}

type persisted = Chain_record of chain_record | Chain_index of int list

type stage_delta = { sd_stage : int; sd_tr : (int * int * float) array }

type chain_delta = {
  cd_base : int;
  cd_target : int;
  cd_nstages : int;
  cd_full : bool;
  cd_stages : stage_delta list;
  cd_demand : (int * (int * float) list) list;
}

type msg =
  | Chain_request of { chain : int; spec : chain_spec }
  | Prepare of {
      txid : int;
      chain : int;
      routes : route list;
      delta : chain_delta option;
      spec : chain_spec;
    }
  | Vote of { txid : int; participant : string; accept : bool; rejected : (int * int) list }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Decision_ack of { txid : int; participant : string }
  | Route_update of {
      chain : int;
      egress_label : int;
      spec : chain_spec;
      routes : route list;
      version : int;
    }
  | Route_delta of {
      chain : int;
      egress_label : int;
      spec : chain_spec;
      delta : chain_delta;
    }
  | Instance_info of { vnf : int; site : int; instances : (int * float) list }
  | Forwarder_info of { vnf : int; site : int; forwarders : (int * float) list }
  | Edge_info of { site : int; edge : int; forwarder : int }
  | Telemetry_report of {
      site : int;
      epoch : int;
      chain : int;
      stages : (int * int) array;
      down_links : int list;
      table : int * int * int;
    }
  | Load_advert of {
      site : int;
      epoch : int;
      loads : (int * float) list;
      fwd_weights : (int * (int * float) list) list;
      down_links : int list;
    }

let chain_request_topic = "/gsb/chain_requests"
let votes_topic ~txid = Printf.sprintf "/gsb/votes/%d" txid
let participant_topic ~name = Printf.sprintf "/ctl/%s" name
let route_topic ~chain = Printf.sprintf "/chain/%d/route" chain

let instances_topic ~chain ~egress ~vnf ~site =
  Printf.sprintf "/c%d/e%d/vnf_%d/site_%d_instances" chain egress vnf site

let forwarders_topic ~chain ~egress ~vnf ~site =
  Printf.sprintf "/c%d/e%d/vnf_%d/site_%d_forwarders" chain egress vnf site

let telemetry_topic ~chain = Printf.sprintf "/telemetry/c%d" chain
let advert_topic ~site = Printf.sprintf "/advert/s%d" site

let pp_msg ppf = function
  | Chain_request { chain; spec } -> Format.fprintf ppf "Chain_request(%d, %s)" chain spec.spec_name
  | Prepare { txid; chain; routes; delta; _ } -> (
    match delta with
    | None ->
      Format.fprintf ppf "Prepare(tx%d chain%d %d routes)" txid chain (List.length routes)
    | Some d ->
      Format.fprintf ppf "Prepare(tx%d chain%d delta v%d->v%d %s%d stages)" txid chain
        d.cd_base d.cd_target
        (if d.cd_full then "full " else "")
        (List.length d.cd_stages))
  | Vote { txid; participant; accept; rejected } ->
    Format.fprintf ppf "Vote(tx%d %s %b, %d rejected)" txid participant accept
      (List.length rejected)
  | Commit { txid } -> Format.fprintf ppf "Commit(tx%d)" txid
  | Abort { txid } -> Format.fprintf ppf "Abort(tx%d)" txid
  | Decision_ack { txid; participant } ->
    Format.fprintf ppf "Decision_ack(tx%d %s)" txid participant
  | Route_update { chain; routes; version; _ } ->
    Format.fprintf ppf "Route_update(chain%d %d routes v%d)" chain (List.length routes)
      version
  | Route_delta { chain; delta; _ } ->
    Format.fprintf ppf "Route_delta(chain%d v%d->v%d %s%d stages)" chain delta.cd_base
      delta.cd_target
      (if delta.cd_full then "full " else "")
      (List.length delta.cd_stages)
  | Instance_info { vnf; site; instances } ->
    Format.fprintf ppf "Instance_info(vnf%d site%d %d insts)" vnf site (List.length instances)
  | Forwarder_info { vnf; site; forwarders } ->
    Format.fprintf ppf "Forwarder_info(vnf%d site%d %d fwds)" vnf site (List.length forwarders)
  | Edge_info { site; edge; forwarder } ->
    Format.fprintf ppf "Edge_info(site%d edge%d fwd%d)" site edge forwarder
  | Telemetry_report { site; epoch; chain; stages; down_links; table = tc, tk, _ } ->
    Format.fprintf ppf
      "Telemetry_report(site%d epoch%d chain%d %d stages, %d down, %d/%d flows)"
      site epoch chain (Array.length stages) (List.length down_links) tc tk
  | Load_advert { site; epoch; loads; fwd_weights; down_links } ->
    Format.fprintf ppf "Load_advert(site%d epoch%d %d vnfs, %d fwd sets, %d down)"
      site epoch (List.length loads) (List.length fwd_weights)
      (List.length down_links)

(* -------------------------- wire-size model ------------------------- *)

(* Deterministic byte model for bus accounting: a small fixed header per
   message plus a flat encoding of every payload field (4 B ints/ids,
   8 B floats, strings verbatim). The absolute numbers are nominal; what
   matters is that sizes scale with payload cardinality, so rollout
   bytes-on-wire comparisons (full route sets vs. compiled deltas)
   measure real payload churn. *)

let header_bytes = 24
let spec_size s = String.length s.spec_name + String.length s.ingress_attachment
                  + String.length s.egress_attachment + (4 * List.length s.vnfs) + 12
let route_size r = (4 * Array.length r.element_sites) + 8
let routes_size rs = List.fold_left (fun a r -> a + route_size r) 4 rs
let pair_list_size l = (12 * List.length l) + 4

let delta_size d =
  let stages =
    List.fold_left (fun a sd -> a + 8 + (16 * Array.length sd.sd_tr)) 4 d.cd_stages
  in
  let demand =
    List.fold_left (fun a (_, sites) -> a + 8 + (12 * List.length sites)) 4 d.cd_demand
  in
  16 + stages + demand

let msg_size = function
  | Chain_request { spec; _ } -> header_bytes + 4 + spec_size spec
  | Prepare { routes; delta; spec; _ } ->
    header_bytes + 8 + spec_size spec + routes_size routes
    + (match delta with None -> 1 | Some d -> 1 + delta_size d)
  | Vote { participant; rejected; _ } ->
    header_bytes + String.length participant + 5 + (8 * List.length rejected)
  | Commit _ | Abort _ -> header_bytes + 4
  | Decision_ack { participant; _ } -> header_bytes + 4 + String.length participant
  | Route_update { spec; routes; _ } ->
    header_bytes + 12 + spec_size spec + routes_size routes
  | Route_delta { spec; delta; _ } -> header_bytes + 8 + spec_size spec + delta_size delta
  | Instance_info { instances; _ } -> header_bytes + 8 + pair_list_size instances
  | Forwarder_info { forwarders; _ } -> header_bytes + 8 + pair_list_size forwarders
  | Edge_info _ -> header_bytes + 12
  | Telemetry_report { stages; down_links; _ } ->
    header_bytes + 24 + (16 * Array.length stages) + (4 * List.length down_links)
  | Load_advert { loads; fwd_weights; down_links; _ } ->
    header_bytes + 8 + pair_list_size loads
    + List.fold_left (fun a (_, ws) -> a + 4 + pair_list_size ws) 4 fwd_weights
    + (4 * List.length down_links)

(* Bucket topics into a bounded family set so per-topic byte counters stay
   O(families), not O(chains): "/chain/17/route" and "/chain/40271/route"
   land in the same "/chain/*/route" bucket. *)
let topic_class topic =
  let has_prefix p = String.length topic >= String.length p
                     && String.sub topic 0 (String.length p) = p in
  if topic = chain_request_topic then topic
  else if has_prefix "/gsb/votes/" then "/gsb/votes/*"
  else if has_prefix "/ctl/" then "/ctl/*"
  else if has_prefix "/telemetry/" then "/telemetry/*"
  else if has_prefix "/advert/" then "/advert/*"
  else if topic = "/chains" then topic
  else if has_prefix "/chain/" then "/chain/*/route"
  else if has_prefix "/c" then
    (* per-chain info topics: /c<id>/e<id>/vnf_<v>/site_<s>_{instances,forwarders}
       and /c<id>/e<id>/edge_forwarders *)
    if String.ends_with ~suffix:"/edge_forwarders" topic then "/c*/e*/edge_forwarders"
    else if String.ends_with ~suffix:"_instances" topic then "/c*/e*/vnf_*/site_*_instances"
    else if String.ends_with ~suffix:"_forwarders" topic then "/c*/e*/vnf_*/site_*_forwarders"
    else topic
  else topic
