type chain_spec = {
  spec_name : string;
  ingress_attachment : string;
  egress_attachment : string;
  vnfs : int list;
  traffic : float;
}

type route = { element_sites : int array; weight : float }


type chain_record = {
  cr_spec : chain_spec;
  cr_routes : route list;
  cr_ingress : int;
  cr_egress : int;
}

type persisted = Chain_record of chain_record | Chain_index of int list

type msg =
  | Chain_request of { chain : int; spec : chain_spec }
  | Prepare of { txid : int; chain : int; routes : route list; spec : chain_spec }
  | Vote of { txid : int; participant : string; accept : bool; rejected : (int * int) list }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Decision_ack of { txid : int; participant : string }
  | Route_update of { chain : int; egress_label : int; spec : chain_spec; routes : route list }
  | Instance_info of { vnf : int; site : int; instances : (int * float) list }
  | Forwarder_info of { vnf : int; site : int; forwarders : (int * float) list }
  | Edge_info of { site : int; edge : int; forwarder : int }
  | Telemetry_report of {
      site : int;
      epoch : int;
      chain : int;
      stages : (int * int) array;
      down_links : int list;
      table : int * int * int;
    }

let chain_request_topic = "/gsb/chain_requests"
let votes_topic ~txid = Printf.sprintf "/gsb/votes/%d" txid
let participant_topic ~name = Printf.sprintf "/ctl/%s" name
let route_topic ~chain = Printf.sprintf "/chain/%d/route" chain

let instances_topic ~chain ~egress ~vnf ~site =
  Printf.sprintf "/c%d/e%d/vnf_%d/site_%d_instances" chain egress vnf site

let forwarders_topic ~chain ~egress ~vnf ~site =
  Printf.sprintf "/c%d/e%d/vnf_%d/site_%d_forwarders" chain egress vnf site

let telemetry_topic ~chain = Printf.sprintf "/telemetry/c%d" chain

let pp_msg ppf = function
  | Chain_request { chain; spec } -> Format.fprintf ppf "Chain_request(%d, %s)" chain spec.spec_name
  | Prepare { txid; chain; routes; _ } ->
    Format.fprintf ppf "Prepare(tx%d chain%d %d routes)" txid chain (List.length routes)
  | Vote { txid; participant; accept; rejected } ->
    Format.fprintf ppf "Vote(tx%d %s %b, %d rejected)" txid participant accept
      (List.length rejected)
  | Commit { txid } -> Format.fprintf ppf "Commit(tx%d)" txid
  | Abort { txid } -> Format.fprintf ppf "Abort(tx%d)" txid
  | Decision_ack { txid; participant } ->
    Format.fprintf ppf "Decision_ack(tx%d %s)" txid participant
  | Route_update { chain; routes; _ } ->
    Format.fprintf ppf "Route_update(chain%d %d routes)" chain (List.length routes)
  | Instance_info { vnf; site; instances } ->
    Format.fprintf ppf "Instance_info(vnf%d site%d %d insts)" vnf site (List.length instances)
  | Forwarder_info { vnf; site; forwarders } ->
    Format.fprintf ppf "Forwarder_info(vnf%d site%d %d fwds)" vnf site (List.length forwarders)
  | Edge_info { site; edge; forwarder } ->
    Format.fprintf ppf "Edge_info(site%d edge%d fwd%d)" site edge forwarder
  | Telemetry_report { site; epoch; chain; stages; down_links; table = tc, tk, _ } ->
    Format.fprintf ppf
      "Telemetry_report(site%d epoch%d chain%d %d stages, %d down, %d/%d flows)"
      site epoch chain (Array.length stages) (List.length down_links) tc tk
