open Types

type transitions = (int * int * float) array

(* --------------------------- hash-consing --------------------------- *)

(* Actions (one stage's transition table) and spine nodes are interned in
   a shared context: equal structures get equal ids, so suffix equality
   between two chains' diagrams is one integer comparison and the diff
   walk stops at the first shared node. The context only ever grows — an
   interner has no per-snapshot lifetime — which keeps snapshots ([t])
   cheap persistent maps over it. *)

module Tr_key = struct
  type t = transitions

  let equal (a : t) (b : t) = a = b

  let hash (tr : t) =
    let h = ref (0x9E3779B1 * (Array.length tr + 1)) in
    Array.iter
      (fun (a, b, w) ->
        let wb = Int64.to_int (Int64.bits_of_float w) in
        h := (!h * 0x01000193) + a;
        h := (!h * 0x01000193) + b;
        h := (!h * 0x01000193) + (wb lxor (wb lsr 31)))
      tr;
    !h land max_int
end

module Tr_tbl = Hashtbl.Make (Tr_key)

type ctx = {
  act_ids : int Tr_tbl.t;
  mutable acts : transitions array; (* action id -> transitions *)
  mutable nacts : int;
  node_ids : (int * int, int) Hashtbl.t; (* (action, tail) -> node id *)
  mutable n_act : int array; (* node id -> action id *)
  mutable n_tail : int array; (* node id -> next-stage node; 0 = nil *)
  mutable nnodes : int;
}

let nil = 0

let grow arr n d =
  let b = Array.make n d in
  Array.blit arr 0 b 0 (Array.length arr);
  b

let intern_action ctx tr =
  match Tr_tbl.find_opt ctx.act_ids tr with
  | Some id -> id
  | None ->
    let id = ctx.nacts in
    if id = Array.length ctx.acts then ctx.acts <- grow ctx.acts (id * 2) [||];
    ctx.acts.(id) <- tr;
    ctx.nacts <- id + 1;
    Tr_tbl.replace ctx.act_ids tr id;
    id

let intern_node ctx act tail =
  match Hashtbl.find_opt ctx.node_ids (act, tail) with
  | Some id -> id
  | None ->
    let id = ctx.nnodes in
    if id = Array.length ctx.n_act then begin
      ctx.n_act <- grow ctx.n_act (id * 2) (-1);
      ctx.n_tail <- grow ctx.n_tail (id * 2) nil
    end;
    ctx.n_act.(id) <- act;
    ctx.n_tail.(id) <- tail;
    ctx.nnodes <- id + 1;
    Hashtbl.replace ctx.node_ids (act, tail) id;
    id

(* ----------------------------- snapshots ---------------------------- *)

type entry = {
  en_root : int;
  en_version : int;
  en_nstages : int;
  en_demand : (int * (int * float) list) list;
}

module Imap = Map.Make (Int)

type t = { ctx : ctx; chains : entry Imap.t }

type prepared = {
  p_chain : int;
  p_root : int;
  p_version : int;
  p_nstages : int;
  p_demand : (int * (int * float) list) list;
}

let empty () =
  {
    ctx =
      {
        act_ids = Tr_tbl.create 256;
        acts = Array.make 64 [||];
        nacts = 0;
        node_ids = Hashtbl.create 256;
        n_act = Array.make 64 (-1);
        n_tail = Array.make 64 nil;
        nnodes = 1 (* node 0 is nil, the below-last-stage leaf *);
      };
    chains = Imap.empty;
  }

let version t ~chain =
  match Imap.find_opt chain t.chains with Some e -> e.en_version | None -> 0

let nstages_of_spec spec = List.length spec.vnfs + 1

let transitions_of_routes ~nstages routes =
  Array.init nstages (fun stage ->
      Array.of_list
        (List.map
           (fun r -> (r.element_sites.(stage), r.element_sites.(stage + 1), r.weight))
           routes))

(* Per-VNF, per-site admission demand. The accumulation ([cur +. w*T] in
   route-list order per site) replicates [System.vnf_demand_per_site]
   float for float, so an admission decision taken from a shipped
   [cd_demand] row equals one recomputed from the full route set. *)
let demands_of_routes spec routes =
  let elements = Array.of_list ((-1) :: spec.vnfs @ [ -2 ]) in
  List.sort_uniq compare spec.vnfs
  |> List.map (fun vnf ->
         let demand = Hashtbl.create 4 in
         List.iter
           (fun r ->
             Array.iteri
               (fun z v ->
                 if v = vnf then begin
                   let s = r.element_sites.(z) in
                   let cur = try Hashtbl.find demand s with Not_found -> 0. in
                   Hashtbl.replace demand s (cur +. (r.weight *. spec.traffic))
                 end)
               elements)
           routes;
         ( vnf,
           Hashtbl.fold (fun s l acc -> (s, l) :: acc) demand []
           |> List.sort (fun (a, _) (b, _) -> compare a b) ))

let spine ctx tr_by_stage =
  let root = ref nil in
  for stage = Array.length tr_by_stage - 1 downto 0 do
    root := intern_node ctx (intern_action ctx tr_by_stage.(stage)) !root
  done;
  !root

let prepare ?version:v t ~chain ~spec ~routes =
  let nstages = nstages_of_spec spec in
  {
    p_chain = chain;
    p_root = spine t.ctx (transitions_of_routes ~nstages routes);
    p_version = (match v with Some v -> v | None -> version t ~chain + 1);
    p_nstages = nstages;
    p_demand = demands_of_routes spec routes;
  }

let commit t ~chain (p : prepared) =
  {
    t with
    chains =
      Imap.add chain
        {
          en_root = p.p_root;
          en_version = p.p_version;
          en_nstages = p.p_nstages;
          en_demand = p.p_demand;
        }
        t.chains;
  }

(* ------------------------------- diff ------------------------------- *)

(* Walk two spines in lockstep from stage 0. Hash-consing makes shared
   suffixes a single id comparison: the walk stops at the first node the
   two diagrams share, so emitting a delta costs O(changed stages), not
   O(stages). *)
let diff_stages ctx ~old_root ~new_root =
  let rec go o n stage acc =
    if o = n then List.rev acc
    else
      let acc =
        if ctx.n_act.(o) <> ctx.n_act.(n) then
          { sd_stage = stage; sd_tr = ctx.acts.(ctx.n_act.(n)) } :: acc
        else acc
      in
      go ctx.n_tail.(o) ctx.n_tail.(n) (stage + 1) acc
  in
  go old_root new_root 0 []

let all_stages ctx ~root ~nstages =
  let rec go node stage acc =
    if stage >= nstages then List.rev acc
    else
      go ctx.n_tail.(node) (stage + 1)
        ({ sd_stage = stage; sd_tr = ctx.acts.(ctx.n_act.(node)) } :: acc)
  in
  go root 0 []

let same_vnf_set a b =
  List.length a = List.length b && List.for_all2 (fun (v, _) (w, _) -> v = w) a b

let diff_demand ~old_demand ~new_demand =
  List.filter
    (fun (vnf, sites) ->
      match List.assoc_opt vnf old_demand with
      | Some old_sites -> old_sites <> sites
      | None -> true)
    new_demand

let full_of t (p : prepared) =
  {
    cd_base = 0;
    cd_target = p.p_version;
    cd_nstages = p.p_nstages;
    cd_full = true;
    cd_stages = all_stages t.ctx ~root:p.p_root ~nstages:p.p_nstages;
    cd_demand = p.p_demand;
  }

let delta_from_committed t (p : prepared) =
  match Imap.find_opt p.p_chain t.chains with
  | None -> full_of t p
  | Some e when e.en_nstages <> p.p_nstages || not (same_vnf_set e.en_demand p.p_demand)
    ->
    full_of t p
  | Some e ->
    {
      cd_base = e.en_version;
      cd_target = p.p_version;
      cd_nstages = p.p_nstages;
      cd_full = false;
      cd_stages = diff_stages t.ctx ~old_root:e.en_root ~new_root:p.p_root;
      cd_demand = diff_demand ~old_demand:e.en_demand ~new_demand:p.p_demand;
    }

let delta_between t ~base:(b : prepared) ~target:(p : prepared) =
  if b.p_nstages <> p.p_nstages || not (same_vnf_set b.p_demand p.p_demand) then
    full_of t p
  else
    {
      cd_base = b.p_version;
      cd_target = p.p_version;
      cd_nstages = p.p_nstages;
      cd_full = false;
      cd_stages = diff_stages t.ctx ~old_root:b.p_root ~new_root:p.p_root;
      cd_demand = diff_demand ~old_demand:b.p_demand ~new_demand:p.p_demand;
    }

(* ----------------------------- compose ------------------------------ *)

let rec merge_stages older newer =
  match (older, newer) with
  | [], l | l, [] -> l
  | o :: otl, n :: ntl ->
    if o.sd_stage < n.sd_stage then o :: merge_stages otl newer
    else if o.sd_stage > n.sd_stage then n :: merge_stages older ntl
    else n :: merge_stages otl ntl (* newer wins the stage *)

let merge_demand older newer =
  let merged =
    List.filter (fun (v, _) -> not (List.mem_assoc v newer)) older @ newer
  in
  List.sort (fun (a, _) (b, _) -> compare a b) merged

let compose older newer =
  if newer.cd_full then newer
  else
    {
      cd_base = older.cd_base;
      cd_target = newer.cd_target;
      cd_nstages = newer.cd_nstages;
      cd_full = older.cd_full;
      cd_stages = merge_stages older.cd_stages newer.cd_stages;
      cd_demand = merge_demand older.cd_demand newer.cd_demand;
    }

(* ------------------------------ stats ------------------------------- *)

type stats = { chains : int; nodes : int; actions : int; stages_total : int }

let stats (t : t) =
  {
    chains = Imap.cardinal t.chains;
    nodes = t.ctx.nnodes - 1;
    actions = t.ctx.nacts;
    stages_total = Imap.fold (fun _ e acc -> acc + e.en_nstages) t.chains 0;
  }

let prepared_version (p : prepared) = p.p_version
let prepared_chain (p : prepared) = p.p_chain
