type event = {
  time : float;
  seq : int; (* tie-breaker: FIFO among same-time events *)
  id : int;
  action : unit -> unit;
}

(* Binary min-heap ordered by (time, seq). *)
module Heap = struct
  type t = { mutable a : event array; mutable size : int }

  let dummy =
    { time = 0.; seq = 0; id = 0; action = (fun () -> ()) }

  let create () = { a = Array.make 64 dummy; size = 0 }

  let lt e1 e2 = e1.time < e2.time || (e1.time = e2.time && e1.seq < e2.seq)

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt h.a.(i) h.a.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && lt h.a.(l) h.a.(!smallest) then smallest := l;
    if r < h.size && lt h.a.(r) h.a.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h e =
    if h.size = Array.length h.a then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.a 0 bigger 0 h.size;
      h.a <- bigger
    end;
    h.a.(h.size) <- e;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let peek h = if h.size = 0 then None else Some h.a.(0)

  let pop h =
    match peek h with
    | None -> None
    | Some e ->
      h.size <- h.size - 1;
      h.a.(0) <- h.a.(h.size);
      h.a.(h.size) <- dummy;
      if h.size > 0 then sift_down h 0;
      Some e
end

type t = {
  heap : Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable next_id : int;
  mutable live : int; (* scheduled and not cancelled/fired *)
  mutable observers : (float -> unit) list; (* registration order *)
}

type event_id = int

let create () =
  {
    heap = Heap.create ();
    cancelled = Hashtbl.create 64;
    clock = 0.;
    next_seq = 0;
    next_id = 0;
    live = 0;
    observers = [];
  }

let on_fire t f = t.observers <- t.observers @ [ f ]

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { time; seq; id; action };
  t.live <- t.live + 1;
  id

let schedule t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

let fire t e =
  if Hashtbl.mem t.cancelled e.id then Hashtbl.remove t.cancelled e.id
  else begin
    t.live <- t.live - 1;
    t.clock <- e.time;
    List.iter (fun f -> f e.time) t.observers;
    e.action ()
  end

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some e ->
    fire t e;
    true

let run t =
  let rec loop () = if step t then loop () in
  loop ()

let run_until t horizon =
  if horizon < t.clock then invalid_arg "Engine.run_until: horizon in the past";
  let rec loop () =
    match Heap.peek t.heap with
    | Some e when e.time <= horizon ->
      (match Heap.pop t.heap with
      | Some e -> fire t e
      | None -> assert false);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- horizon

let pending t = t.live
