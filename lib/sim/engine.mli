(** Discrete-event simulation engine.

    A single-threaded event loop over a virtual clock. Events scheduled for
    the same instant fire in FIFO order of scheduling, which makes every
    simulation deterministic. This engine is the substrate on which the
    global message bus (Section 6), the control plane (Sections 3 and 7.1),
    and the dynamic-routing experiments run. *)

type t
(** A simulation instance with its own clock and pending-event queue. *)

type event_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t
(** A fresh simulation at time 0. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative; raises [Invalid_argument] otherwise. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; cancelling a fired or already-cancelled event is
    a no-op. *)

val run : t -> unit
(** Process events until the queue is empty. *)

val step : t -> bool
(** Fire the earliest pending event (a cancelled event counts as a step
    that runs nothing). Returns [false] when the queue is empty. Lets a
    driver interleave its own logic with the event loop — [sb_chaos] uses
    it to enforce an event budget on machine-generated fault schedules. *)

val on_fire : t -> (float -> unit) -> unit
(** Register an observer called with the virtual timestamp of every
    non-cancelled event just before its action runs, in registration
    order. Observation only — used by [sb_chaos] for replayable event
    tracing and budget accounting. Observers cannot be removed. *)

val run_until : t -> float -> unit
(** [run_until t horizon] processes events with timestamp [<= horizon], then
    advances the clock to [horizon]. Events scheduled beyond the horizon
    remain pending. *)

val pending : t -> int
(** Number of scheduled, uncancelled events. *)
