(** Deterministic, splittable pseudo-random number generator.

    All stochastic components of Switchboard take an explicit generator so
    that every simulation, test, and benchmark is reproducible from a seed.
    The implementation is SplitMix64, which has good statistical quality and
    supports cheap splitting into independent streams. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : ?stream:int -> t -> t
(** [split t] derives an independent generator; [t] advances.

    [split ~stream:i t] derives the [i]th of a family of independent
    generators from [t]'s {e current} state without advancing [t]: it is a
    pure function of (state, [i]), so for a fixed seed the per-stream
    generators are reproducible regardless of how many other streams were
    derived, in which order — the contract the sharded dataplane's
    per-lane balancer draws rely on ("same (seed, lane) → same draws for
    any domain count"). [split ~stream:0 t] produces the same generator a
    plain [split t] would at that point. Raises [Invalid_argument] on a
    negative [i]. *)

val copy : t -> t
(** [copy t] snapshots the generator state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); mean [1. /. rate]. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform in [\[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct ints from
    [\[0, n)]. Raises [Invalid_argument] if [k > n]. *)

val weighted_index : t -> float array -> int
(** [weighted_index t weights] samples an index with probability
    proportional to its (non-negative) weight. Raises [Invalid_argument]
    if all weights are zero or any is negative. *)

val weighted_index_cum : t -> float array -> off:int -> len:int -> total:float -> int
(** [weighted_index_cum t cum ~off ~len ~total] is {!weighted_index} over
    weights whose left-to-right cumulative sums were precomputed into
    [cum.(off) .. cum.(off + len - 1)] with [total = cum.(off + len - 1)]:
    one O(log len) draw, bit-identical in both RNG-state advance and chosen
    index (callers must reject negative weights beforehand, as
    [weighted_index] does during its accumulation). Raises
    [Invalid_argument] on a non-positive [total]. *)
