(** Minimal fork-join parallelism over index ranges (OCaml 5 [Domain]s).

    No dependencies and no task runtime: work is split into contiguous
    chunks, one domain per chunk, joined before returning. Intended for
    embarrassingly parallel precomputes (e.g. per-source all-pairs shortest
    paths) where each chunk writes disjoint slots of caller-owned arrays. *)

val map_chunks : ?domains:int -> n:int -> (int -> int -> unit) -> unit
(** [map_chunks ~n f] covers the index range [0, n)] with disjoint chunks
    and calls [f lo hi] (half-open) once per chunk, in parallel across up
    to [domains] (default {!Domain.recommended_domain_count}) domains.
    Runs [f 0 n] sequentially in the calling domain when [domains <= 1] or
    [n <= 1]. [f] must only write state private to its range. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)
