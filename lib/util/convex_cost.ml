(* Classic Fortz–Thorup breakpoints and slopes. *)
let segment_slopes =
  [ (0., 1.); (1. /. 3., 3.); (2. /. 3., 10.); (0.9, 70.); (1.0, 500.); (1.1, 5000.) ]

let b1 = 1. /. 3.
let b2 = 2. /. 3.
let b3 = 0.9
let b4 = 1.0
let b5 = 1.1

(* Cost accumulated up to each breakpoint, summed left-to-right in the same
   order as integrating [segment_slopes] segment by segment, so the
   straight-line evaluation below is bit-identical to the list walk it
   replaced. *)
let c1 = (b1 -. 0.) *. 1.
let c2 = c1 +. ((b2 -. b1) *. 3.)
let c3 = c2 +. ((b3 -. b2) *. 10.)
let c4 = c3 +. ((b4 -. b3) *. 70.)
let c5 = c4 +. ((b5 -. b4) *. 500.)

(* Branchy straight-line evaluation: this runs twice per link per stage-cost
   probe inside SB-DP's inner loop, so no list nodes, closures, or boxed
   tuples. Typical utilizations fall in the first segments, tested first. *)
let[@inline always] cost u =
  if u < 0. then invalid_arg "Convex_cost.cost: negative utilization";
  if u <= b1 then (u -. 0.) *. 1.
  else if u <= b2 then c1 +. ((u -. b1) *. 3.)
  else if u <= b3 then c2 +. ((u -. b2) *. 10.)
  else if u <= b4 then c3 +. ((u -. b3) *. 70.)
  else if u <= b5 then c4 +. ((u -. b4) *. 500.)
  else c5 +. ((u -. b5) *. 5000.)

let marginal_cost u =
  if u < b1 then 1.
  else if u < b2 then 3.
  else if u < b3 then 10.
  else if u < b4 then 70.
  else if u < b5 then 500.
  else 5000.
