(** Binary min-heap of (float priority, int payload) pairs.

    Backed by parallel unboxed arrays (no per-element allocation). Ties on
    priority break on the smaller payload, so pop order is a deterministic
    function of the pushed multiset — algorithms built on it (notably
    {!Heap} Dijkstra in [Sb_net.Paths]) are reproducible across runs. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty heap; [capacity] (default 16) pre-sizes the backing arrays, which
    grow automatically on overflow. *)

val push : t -> prio:float -> int -> unit

val pop_min : t -> (float * int) option
(** Remove and return the smallest (priority, payload); [None] when empty. *)

val peek_min : t -> (float * int) option

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop all elements, keeping the backing arrays. *)
