(** Persistent worker domains (submit/join, not spawn/join).

    {!Par.map_chunks} spawns a domain per chunk, which is fine for one-shot
    precomputes but far too slow for a per-batch packet path: spawning a
    domain costs tens of microseconds while a batch takes a few. A [Pool]
    spawns its domains once; each {!run} wakes the same workers through a
    condition variable and joins them when every worker has finished its
    slice. The sharded dataplane ({!Sb_dataplane.Shard}) keeps one worker
    per lane alive for the life of the shard. *)

type t

val create : ?workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] persistent domains (default
    {!Par.default_domains}; forced to at least 1). Workers idle on a
    condition variable between jobs. *)

val size : t -> int
(** Number of worker domains. *)

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] once per worker [w] in [0, size t)], in
    parallel on the persistent domains, and returns when all have
    finished. If any [f w] raises, the first exception (in completion
    order) is re-raised in the caller after every worker has finished.
    Not reentrant: one [run] at a time per pool. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent; later {!run} calls raise
    [Invalid_argument]. A pool that is never shut down blocks nothing —
    idle workers die with the process — but joining eagerly keeps domain
    counts bounded in long-lived programs. *)

(** Bounded single-producer single-consumer ring of non-negative ints —
    the batch handoff between the dispatching domain and one lane worker.
    Plain array slots are published/consumed around atomic cursors, so a
    push and a pop never contend on a lock. *)
module Spsc : sig
  type t

  val create : int -> t
  (** [create capacity] rounds [capacity] up to a power of two. *)

  val capacity : t -> int
  val length : t -> int

  val push : t -> int -> bool
  (** Producer side. [false] when full. Raises on negative values ([-1]
      is the {!pop} empty sentinel). *)

  val pop : t -> int
  (** Consumer side. [-1] when empty. *)
end
