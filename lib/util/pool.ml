(* Persistent worker domains with submit/join dispatch, plus the SPSC
   rings the sharded dataplane uses to hand batches to lanes. *)

module Spsc = struct
  (* Single-producer single-consumer ring of non-negative ints. The
     producer publishes a slot write with an atomic store of [tail]; the
     consumer observes [tail] before reading the slot, so the plain array
     accesses are ordered by the atomics and race-free. *)
  type t = {
    buf : int array;
    mask : int;
    head : int Atomic.t; (* consumer cursor *)
    tail : int Atomic.t; (* producer cursor *)
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
    let cap = ref 1 in
    while !cap < capacity do
      cap := !cap * 2
    done;
    {
      buf = Array.make !cap 0;
      mask = !cap - 1;
      head = Atomic.make 0;
      tail = Atomic.make 0;
    }

  let capacity t = Array.length t.buf
  let length t = Atomic.get t.tail - Atomic.get t.head

  let push t v =
    if v < 0 then invalid_arg "Spsc.push: negative value";
    let tail = Atomic.get t.tail in
    if tail - Atomic.get t.head >= Array.length t.buf then false
    else begin
      t.buf.(tail land t.mask) <- v;
      Atomic.set t.tail (tail + 1);
      true
    end

  let pop t =
    let head = Atomic.get t.head in
    if Atomic.get t.tail = head then -1
    else begin
      let v = t.buf.(head land t.mask) in
      Atomic.set t.head (head + 1);
      v
    end
end

type t = {
  m : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable gen : int; (* bumped once per submitted job *)
  mutable pending : int; (* workers still running the current job *)
  mutable stop : bool;
  mutable exn : exn option; (* first failure of the current job *)
  workers : int;
  mutable domains : unit Domain.t array;
}

let worker t w =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stop) && t.gen = !seen do
      Condition.wait t.work t.m
    done;
    if t.stop then begin
      running := false;
      Mutex.unlock t.m
    end
    else begin
      seen := t.gen;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      let failure = try job w; None with e -> Some e in
      Mutex.lock t.m;
      (match failure with
      | Some e when t.exn = None -> t.exn <- Some e
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.m
    end
  done

let create ?workers () =
  let workers =
    match workers with Some w -> max 1 w | None -> Par.default_domains ()
  in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      gen = 0;
      pending = 0;
      stop = false;
      exn = None;
      workers;
      domains = [||];
    }
  in
  t.domains <- Array.init workers (fun w -> Domain.spawn (fun () -> worker t w));
  t

let size t = t.workers

let run t f =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.run: pool is shut down"
  end;
  t.job <- Some f;
  t.exn <- None;
  t.gen <- t.gen + 1;
  t.pending <- t.workers;
  Condition.broadcast t.work;
  while t.pending > 0 do
    Condition.wait t.finished t.m
  done;
  t.job <- None;
  let e = t.exn in
  Mutex.unlock t.m;
  match e with Some e -> raise e | None -> ()

let shutdown t =
  Mutex.lock t.m;
  if t.stop then Mutex.unlock t.m
  else begin
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
