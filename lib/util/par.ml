let default_domains () = Domain.recommended_domain_count ()

let map_chunks ?domains ~n f =
  if n > 0 then begin
    let domains =
      match domains with Some d -> max 1 d | None -> default_domains ()
    in
    let domains = min domains n in
    if domains <= 1 then f 0 n
    else begin
      (* Contiguous ranges; workers write into caller-owned slots, so no
         result marshalling is needed and no two workers touch the same
         index. *)
      let chunk = (n + domains - 1) / domains in
      let spawned =
        List.init (domains - 1) (fun i ->
            let lo = (i + 1) * chunk in
            let hi = min n (lo + chunk) in
            Domain.spawn (fun () -> if lo < hi then f lo hi))
      in
      f 0 (min n chunk);
      List.iter Domain.join spawned
    end
  end
