(* Binary min-heap over (float priority, int payload) pairs, stored as two
   parallel growable arrays to avoid boxing the pairs. Ordering is
   lexicographic on (priority, payload) so pop order is deterministic even
   among equal priorities — Dijkstra relies on this for reproducible
   tie-breaking. *)

type t = {
  mutable prio : float array;
  mutable data : int array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0.; data = Array.make capacity 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0
let clear t = t.size <- 0

let grow t =
  let cap = Array.length t.prio in
  let prio = Array.make (2 * cap) 0. in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.prio 0 prio 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.prio <- prio;
  t.data <- data

let less t i j =
  t.prio.(i) < t.prio.(j)
  || (t.prio.(i) = t.prio.(j) && t.data.(i) < t.data.(j))

let swap t i j =
  let p = t.prio.(i) and d = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- p;
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let smallest = if l + 1 < t.size && less t (l + 1) l then l + 1 else l in
    if less t smallest i then begin
      swap t i smallest;
      sift_down t smallest
    end
  end

let push t ~prio v =
  if t.size = Array.length t.prio then grow t;
  t.prio.(t.size) <- prio;
  t.data.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) and v = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (p, v)
  end

let peek_min t = if t.size = 0 then None else Some (t.prio.(0), t.data.(0))
