type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: Stafford's mix13 variant. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split ?stream t =
  match stream with
  | None ->
    let seed = bits64 t in
    { state = seed }
  | Some i ->
    if i < 0 then invalid_arg "Rng.split: stream must be non-negative";
    (* Stream i's state is the mix of the parent state displaced by
       (i + 1) gammas — for i = 0 that is exactly the parent's next
       output, so [split ~stream:0 t] equals [split t] taken at the same
       point (minus the parent advance). The double mixing on the child's
       first draw (mix64 of a mix64 image plus gamma) keeps child outputs
       off the parent's own output sequence. *)
    { state = mix64 (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma)) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to OCaml's native non-negative int range before reducing. *)
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let float t bound =
  (* 53 random bits scaled to [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1. -. float t 1.0 in
  -.log u /. rate

let uniform_in t lo hi = lo +. float t (hi -. lo)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)

let weighted_index_cum t cum ~off ~len ~total =
  (* Must stay draw-for-draw and result-for-result identical to
     [weighted_index] over the raw weights: same exception (checked before
     the state advances), one [float t total] draw, and the same chosen
     index. [weighted_index] returns the first i with target < w_0+...+w_i
     accumulated left to right, or n-1 unconditionally; as the cumulative
     sums are non-decreasing, the binary search for the smallest such i
     (capped at len-1) lands on the very same index. *)
  if total <= 0. then invalid_arg "Rng.weighted_index: zero total weight";
  let target = float t total in
  let lo = ref 0 and hi = ref (len - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if target < cum.(off + mid) then hi := mid else lo := mid + 1
  done;
  !lo

let weighted_index t weights =
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0. then invalid_arg "Rng.weighted_index: negative weight";
        acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Rng.weighted_index: zero total weight";
  let target = float t total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
  in
  go 0 0.
