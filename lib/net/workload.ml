module Rng = Sb_util.Rng

(* A primitive generator: demand and churn as pure functions of the tick
   (and key), closed over O(keys) attributes precomputed at construction
   from the seed. No per-tick or per-flow state exists anywhere, so
   evaluation is random-access: qcheck checks that shuffled and sequential
   reads agree bit-for-bit. *)
type prim = {
  p_name : string;
  p_demand : int -> int -> float; (* tick -> key -> rate *)
  p_churn : int -> float; (* tick -> replaced fraction, already in [0,1] *)
}

type t = { w_ticks : int; w_keys : int; node : node }

and node =
  | Prim of prim
  | Overlay of t * t
  | Shift of int * t
  | Scale of float * t
  | Ramp of float * float * t

let ticks t = t.w_ticks
let keys t = t.w_keys

let rec name t =
  match t.node with
  | Prim p -> p.p_name
  | Overlay (a, b) -> Printf.sprintf "overlay(%s,%s)" (name a) (name b)
  | Shift (d, u) -> Printf.sprintf "shift(%d,%s)" d (name u)
  | Scale (c, u) -> Printf.sprintf "scale(%g,%s)" c (name u)
  | Ramp (f0, f1, u) -> Printf.sprintf "ramp(%g->%g,%s)" f0 f1 (name u)

let ramp_factor t tick f0 f1 =
  if t.w_ticks <= 1 then f0
  else f0 +. ((f1 -. f0) *. float_of_int tick /. float_of_int (t.w_ticks - 1))

let rec demand t ~tick ~key =
  if tick < 0 || tick >= t.w_ticks || key < 0 || key >= t.w_keys then 0.
  else
    match t.node with
    | Prim p -> p.p_demand tick key
    | Overlay (a, b) -> demand a ~tick ~key +. demand b ~tick ~key
    | Shift (d, u) -> demand u ~tick:(tick - d) ~key
    | Scale (c, u) -> c *. demand u ~tick ~key
    | Ramp (f0, f1, u) -> ramp_factor t tick f0 f1 *. demand u ~tick ~key

let total_demand t ~tick =
  let s = ref 0. in
  for k = 0 to t.w_keys - 1 do
    s := !s +. demand t ~tick ~key:k
  done;
  !s

let demand_into t ~tick out =
  if Array.length out <> t.w_keys then
    invalid_arg "Workload.demand_into: array length <> keys";
  for k = 0 to t.w_keys - 1 do
    out.(k) <- demand t ~tick ~key:k
  done

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

(* Composite churn blends demand-weighted: the live population is
   proportional to offered demand, so the replaced fraction of the union
   is the population-weighted mean of the parts'. *)
let rec churn t ~tick =
  match t.node with
  | Prim p -> clamp01 (p.p_churn tick)
  | Overlay (a, b) ->
    let da = total_demand a ~tick and db = total_demand b ~tick in
    if da +. db <= 0. then 0.
    else ((churn a ~tick *. da) +. (churn b ~tick *. db)) /. (da +. db)
  | Shift (d, u) -> churn u ~tick:(tick - d)
  | Scale (_, u) | Ramp (_, _, u) -> churn u ~tick

(* ---------------------------- validation ---------------------------- *)

let check_grid fn ~ticks ~keys =
  if ticks <= 0 then invalid_arg (fn ^ ": ticks must be positive");
  if keys <= 0 then invalid_arg (fn ^ ": keys must be positive")

let check_nonneg fn what v =
  if v < 0. || Float.is_nan v then
    invalid_arg (Printf.sprintf "%s: %s must be >= 0" fn what)

let prim ~ticks ~keys p = { w_ticks = ticks; w_keys = keys; node = Prim p }

(* ---------------------------- generators ---------------------------- *)

let constant ~ticks ~keys ~rate =
  check_grid "Workload.constant" ~ticks ~keys;
  check_nonneg "Workload.constant" "rate" rate;
  prim ~ticks ~keys
    {
      p_name = "constant";
      p_demand = (fun _ _ -> rate);
      p_churn = (fun _ -> 0.02);
    }

(* Membership arrays are the one O(keys) allocation a generator makes;
   they are immutable after construction. *)
let seeded_members rng ~count ~keys =
  let m = Array.make keys false in
  List.iter (fun k -> m.(k) <- true) (Rng.sample_without_replacement rng count keys);
  m

let flash_crowd ~seed ~ticks ~keys ?hot ?(base = 1.0) ?(peak = 8.0) ?start ?rise
    ?fall () =
  check_grid "Workload.flash_crowd" ~ticks ~keys;
  check_nonneg "Workload.flash_crowd" "base" base;
  if peak < 1. then invalid_arg "Workload.flash_crowd: peak must be >= 1";
  let hot = match hot with Some h -> h | None -> max 1 (keys / 8) in
  if hot < 1 || hot > keys then invalid_arg "Workload.flash_crowd: hot out of range";
  let start = match start with Some s -> s | None -> ticks / 4 in
  let rise = match rise with Some r -> max 1 r | None -> max 1 (ticks / 8) in
  let fall = match fall with Some f -> max 1 f | None -> max 1 (ticks / 4) in
  if start < 0 || start >= ticks then
    invalid_arg "Workload.flash_crowd: start out of range";
  let is_hot = seeded_members (Rng.split ~stream:0 (Rng.create seed)) ~count:hot ~keys in
  (* Surge envelope in [1, peak]: linear rise over [rise] ticks from
     [start], then linear decay over [fall]. *)
  let envelope tick =
    if tick < start then 1.
    else if tick < start + rise then
      1. +. ((peak -. 1.) *. float_of_int (tick - start + 1) /. float_of_int rise)
    else
      let d = tick - start - rise in
      if d >= fall then 1.
      else peak -. ((peak -. 1.) *. float_of_int d /. float_of_int fall)
  in
  prim ~ticks ~keys
    {
      p_name = "flash_crowd";
      p_demand =
        (fun tick key -> if is_hot.(key) then base *. envelope tick else base);
      p_churn =
        (fun tick ->
          (* new users arrive in proportion to the surge *)
          0.05 +. (0.35 *. (envelope tick -. 1.) /. (Float.max 1e-9 (peak -. 1.))));
    }

let ddos ~seed ~ticks ~keys ?targets ?(base = 1.0) ?(magnitude = 20.0) ?start
    ?stop () =
  check_grid "Workload.ddos" ~ticks ~keys;
  check_nonneg "Workload.ddos" "base" base;
  check_nonneg "Workload.ddos" "magnitude" magnitude;
  let targets = match targets with Some v -> v | None -> max 1 (keys / 16) in
  if targets < 1 || targets > keys then
    invalid_arg "Workload.ddos: targets out of range";
  let start = match start with Some s -> s | None -> ticks / 4 in
  let stop = match stop with Some s -> s | None -> max (start + 1) (3 * ticks / 4) in
  if start < 0 || stop <= start then invalid_arg "Workload.ddos: bad attack window";
  let is_target =
    seeded_members (Rng.split ~stream:0 (Rng.create seed)) ~count:targets ~keys
  in
  let attacking tick = tick >= start && tick < stop in
  let attack_total = float_of_int targets *. magnitude *. base in
  let legit_total = float_of_int keys *. base in
  prim ~ticks ~keys
    {
      p_name = "ddos";
      p_demand =
        (fun tick key ->
          if attacking tick && is_target.(key) then base +. (magnitude *. base)
          else base);
      p_churn =
        (fun tick ->
          (* Legitimate flows churn slowly; every attack flow lives ~one
             tick, so the blend is the attack's demand share. *)
          if attacking tick then
            ((0.02 *. legit_total) +. (1.0 *. attack_total))
            /. (legit_total +. attack_total)
          else 0.02);
    }

let elephant_mice ~seed ~ticks ~keys ?(elephant_fraction = 0.1)
    ?(elephant_share = 0.8) ?(rate = 1.0) () =
  check_grid "Workload.elephant_mice" ~ticks ~keys;
  check_nonneg "Workload.elephant_mice" "rate" rate;
  if elephant_fraction <= 0. || elephant_fraction > 1. then
    invalid_arg "Workload.elephant_mice: elephant_fraction out of (0, 1]";
  if elephant_share < 0. || elephant_share > 1. then
    invalid_arg "Workload.elephant_mice: elephant_share out of [0, 1]";
  let ne = max 1 (int_of_float (Float.round (elephant_fraction *. float_of_int keys))) in
  let ne = min ne keys in
  let is_elephant =
    seeded_members (Rng.split ~stream:0 (Rng.create seed)) ~count:ne ~keys
  in
  let total = rate *. float_of_int keys in
  let per_elephant = elephant_share *. total /. float_of_int ne in
  let nm = keys - ne in
  let per_mouse =
    if nm = 0 then 0. else (1. -. elephant_share) *. total /. float_of_int nm
  in
  (* Elephants are persistent transfers, mice are short requests: churn is
     the demand-share-weighted blend, constant in time. *)
  let blended_churn =
    (0.01 *. elephant_share) +. (0.5 *. (1. -. elephant_share))
  in
  prim ~ticks ~keys
    {
      p_name = "elephant_mice";
      p_demand =
        (fun _ key -> if is_elephant.(key) then per_elephant else per_mouse);
      p_churn = (fun _ -> blended_churn);
    }

let regional_failover ~seed ~ticks ~keys ?(regions = 5) ?fail_region
    ?(base = 1.0) ?fail_at ?recover_at () =
  check_grid "Workload.regional_failover" ~ticks ~keys;
  check_nonneg "Workload.regional_failover" "base" base;
  if regions < 2 || regions > keys then
    invalid_arg "Workload.regional_failover: regions out of range";
  let fail_at = match fail_at with Some f -> f | None -> ticks / 3 in
  let recover_at = match recover_at with Some r -> r | None -> ticks in
  if fail_at < 0 || recover_at <= fail_at then
    invalid_arg "Workload.regional_failover: bad failover window";
  let fail_region =
    match fail_region with
    | Some r ->
      if r < 0 || r >= regions then
        invalid_arg "Workload.regional_failover: fail_region out of range";
      r
    | None -> Rng.int (Rng.split ~stream:0 (Rng.create seed)) regions
  in
  let region k = k mod regions in
  (* Exact key counts per region under round-robin assignment. *)
  let failed_keys =
    (keys / regions) + (if fail_region < keys mod regions then 1 else 0)
  in
  let surviving = keys - failed_keys in
  let extra =
    if surviving = 0 then 0.
    else base *. float_of_int failed_keys /. float_of_int surviving
  in
  let down tick = tick >= fail_at && tick < recover_at in
  prim ~ticks ~keys
    {
      p_name = "regional_failover";
      p_demand =
        (fun tick key ->
          if not (down tick) then base
          else if region key = fail_region then 0.
          else base +. extra);
      p_churn =
        (fun tick ->
          (* mass reconnection right after the failover and the recovery *)
          if (tick >= fail_at && tick < fail_at + 2)
             || (tick >= recover_at && tick < recover_at + 2)
          then 0.6
          else 0.03);
    }

let diurnal ~seed ~ticks ~keys ?(period = 24) ?(amplitude = 0.6) ?(base = 1.0)
    () =
  check_grid "Workload.diurnal" ~ticks ~keys;
  check_nonneg "Workload.diurnal" "base" base;
  if period <= 0 then invalid_arg "Workload.diurnal: period must be positive";
  if amplitude < 0. || amplitude > 1. then
    invalid_arg "Workload.diurnal: amplitude out of [0, 1]";
  let rng = Rng.split ~stream:0 (Rng.create seed) in
  (* Gravity-style masses (mean 1 after normalization) and uniform phases:
     hot keys stay hot, but *when* they peak drifts around the clock. *)
  let masses = Array.init keys (fun _ -> 0.25 +. Rng.exponential rng 1.0) in
  let mean = Array.fold_left ( +. ) 0. masses /. float_of_int keys in
  Array.iteri (fun i m -> masses.(i) <- m /. mean) masses;
  let phases = Array.init keys (fun _ -> Rng.float rng (2. *. Float.pi)) in
  prim ~ticks ~keys
    {
      p_name = "diurnal";
      p_demand =
        (fun tick key ->
          base *. masses.(key)
          *. (1.
             +. amplitude
                *. sin
                     (phases.(key)
                     +. (2. *. Float.pi *. float_of_int tick /. float_of_int period)
                     )));
      p_churn = (fun _ -> 0.05);
    }

(* ---------------------------- combinators --------------------------- *)

let overlay a b =
  if a.w_keys <> b.w_keys then
    invalid_arg "Workload.overlay: operands disagree on keys";
  { w_ticks = max a.w_ticks b.w_ticks; w_keys = a.w_keys; node = Overlay (a, b) }

let shift d u =
  if d < 0 then invalid_arg "Workload.shift: negative shift";
  { w_ticks = u.w_ticks + d; w_keys = u.w_keys; node = Shift (d, u) }

let scale c u =
  check_nonneg "Workload.scale" "factor" c;
  { u with node = Scale (c, u) }

let ramp ~from_ ~to_ u =
  check_nonneg "Workload.ramp" "from_" from_;
  check_nonneg "Workload.ramp" "to_" to_;
  { u with node = Ramp (from_, to_, u) }

let pp ppf t =
  Format.fprintf ppf "workload %s: %d ticks x %d keys" (name t) t.w_ticks t.w_keys

let to_string t = Format.asprintf "%a" pp t
