let eps = 1e-12
let sp_eps = 1e-9

(* All-pairs state is stored flat ([src * n + dst] indexing) and the ECMP
   splits CSR-style: pair (s, d) owns the half-open span
   [frac_off.(s*n+d), frac_off.(s*n+d+1)) of the packed parallel arrays
   [frac_links] / [frac_coeffs]. Everything is precomputed eagerly at
   {!compute} time, so the routing hot path is pure array indexing — no
   hashing, no list traversal, no allocation. *)
type t = {
  topo : Topology.t;
  n : int;
  dist : float array; (* dist.(s*n + v): shortest delay s -> v *)
  hops : int array; (* min hop count over all shortest s -> v paths *)
  frac_off : int array; (* n*n + 1 offsets into the packed arrays *)
  frac_links : int array;
  frac_coeffs : float array;
}

(* Binary-heap Dijkstra with lazy deletion. The heap orders ties on
   (priority, node id), so finalization order — and hence which of several
   eps-equal distances is kept — is deterministic and matches the seed
   selection-scan implementation. Writes row [src] of [dist]/[hops]. *)
let dijkstra_into topo ~n ~heap ~order src dist hops =
  let base = src * n in
  Array.fill dist base n infinity;
  dist.(base + src) <- 0.;
  Sb_util.Heap.clear heap;
  Sb_util.Heap.push heap ~prio:0. src;
  let finalized = ref 0 in
  (* Lazy deletion: a node may sit in the heap several times; only its
     first (smallest-key) pop finalizes it. *)
  let seen = Array.make n false in
  let rec drain () =
    match Sb_util.Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
      if not seen.(u) then begin
        seen.(u) <- true;
        order.(!finalized) <- u;
        incr finalized;
        List.iter
          (fun (l : Topology.link) ->
            if not seen.(l.dst) then begin
              let nd = d +. l.delay in
              if nd < dist.(base + l.dst) -. eps then begin
                dist.(base + l.dst) <- nd;
                Sb_util.Heap.push heap ~prio:nd l.dst
              end
            end)
          (Topology.out_links topo u)
      end;
      drain ()
  in
  drain ();
  (* Hop counts over the shortest-path DAG: processing reached nodes in
     finalization order guarantees every shortest predecessor of [v] is
     relaxed before [v], so hops.(v) ends up as the minimum hop count over
     *all* shortest paths (the seed implementation could leave a stale
     larger count depending on relaxation interleaving). *)
  Array.fill hops base n max_int;
  hops.(base + src) <- 0;
  for i = 0 to !finalized - 1 do
    let u = order.(i) in
    if hops.(base + u) < max_int then
      List.iter
        (fun (l : Topology.link) ->
          if
            Float.abs (dist.(base + u) +. l.delay -. dist.(base + l.dst))
            < sp_eps
          then
            hops.(base + l.dst) <- min hops.(base + l.dst) (hops.(base + u) + 1))
        (Topology.out_links topo u)
  done

(* ECMP split for one pair: process DAG nodes in increasing distance from
   [src] (ties on node id — the same order as a stable sort of the node
   list, which the seed used); each node's incoming flow divides evenly
   among its outgoing shortest-path-DAG links that still reach [dst] along
   shortest paths. An edge (u,v) is on a shortest src->dst path iff
   dist(src,u) + delay(u,v) + dist(v,dst) = dist(src,dst).

   [scratch] buffers (inflow, link_flow, candidate order) are reused across
   pairs by one worker; touched entries are reset before use. *)
type scratch = {
  inflow : float array;
  link_flow : float array;
  cand : int array;
  touched_links : int array;
  mutable num_touched : int;
}

let make_scratch ~n ~num_links =
  {
    inflow = Array.make n 0.;
    link_flow = Array.make (max num_links 1) 0.;
    cand = Array.make n 0;
    touched_links = Array.make (max num_links 1) 0;
    num_touched = 0;
  }

(* Returns (link id, fraction) pairs sorted by link id. *)
let compute_pair_fractions topo ~n dist scratch ~src ~dst =
  let total = dist.((src * n) + dst) in
  if src = dst || total = infinity then ([||], [||])
  else begin
    let sc = scratch in
    (* Candidate DAG nodes, ascending id, then sorted by (dist, id). *)
    let k = ref 0 in
    for v = 0 to n - 1 do
      let dsv = dist.((src * n) + v) and dvd = dist.((v * n) + dst) in
      if dsv < infinity && dvd < infinity && dsv +. dvd -. total < sp_eps
      then begin
        sc.cand.(!k) <- v;
        incr k
      end
    done;
    let cand = Array.sub sc.cand 0 !k in
    Array.sort
      (fun a b ->
        let c = compare dist.((src * n) + a) dist.((src * n) + b) in
        if c <> 0 then c else compare a b)
      cand;
    Array.iter (fun v -> sc.inflow.(v) <- 0.) cand;
    sc.inflow.(src) <- 1.;
    sc.num_touched <- 0;
    Array.iter
      (fun u ->
        if sc.inflow.(u) > 0. && u <> dst then begin
          let next =
            List.filter
              (fun (l : Topology.link) ->
                let via =
                  dist.((src * n) + u) +. l.delay +. dist.((l.dst * n) + dst)
                in
                Float.abs (via -. total) < sp_eps)
              (Topology.out_links topo u)
          in
          let share = sc.inflow.(u) /. float_of_int (List.length next) in
          List.iter
            (fun (l : Topology.link) ->
              sc.inflow.(l.dst) <- sc.inflow.(l.dst) +. share;
              if sc.link_flow.(l.id) = 0. then begin
                sc.touched_links.(sc.num_touched) <- l.id;
                sc.num_touched <- sc.num_touched + 1
              end;
              sc.link_flow.(l.id) <- sc.link_flow.(l.id) +. share)
            next
        end)
      cand;
    let ids = Array.sub sc.touched_links 0 sc.num_touched in
    Array.sort compare ids;
    let coeffs = Array.map (fun id -> sc.link_flow.(id)) ids in
    Array.iter (fun id -> sc.link_flow.(id) <- 0.) ids;
    (ids, coeffs)
  end

(* Below this node count the domain fork/join overhead dominates the
   precompute itself; run sequentially. *)
let par_threshold = 48

let compute topo =
  let n = Topology.num_nodes topo in
  let num_links = Topology.num_links topo in
  let dist = Array.make (max (n * n) 1) infinity in
  let hops = Array.make (max (n * n) 1) max_int in
  let pair_links = Array.make (max (n * n) 1) [||] in
  let pair_coeffs = Array.make (max (n * n) 1) [||] in
  let domains =
    if n < par_threshold then 1 else Sb_util.Par.default_domains ()
  in
  (* Phase 1: one Dijkstra per source; each worker owns disjoint rows. *)
  Sb_util.Par.map_chunks ~domains ~n (fun lo hi ->
      let heap = Sb_util.Heap.create ~capacity:n () in
      let order = Array.make n 0 in
      for s = lo to hi - 1 do
        dijkstra_into topo ~n ~heap ~order s dist hops
      done);
  (* Phase 2 (after the all-sources barrier — fractions need distances *to*
     every destination): ECMP splits for every reachable pair. *)
  Sb_util.Par.map_chunks ~domains ~n (fun lo hi ->
      let scratch = make_scratch ~n ~num_links in
      for src = lo to hi - 1 do
        for dst = 0 to n - 1 do
          let ids, coeffs =
            compute_pair_fractions topo ~n dist scratch ~src ~dst
          in
          pair_links.((src * n) + dst) <- ids;
          pair_coeffs.((src * n) + dst) <- coeffs
        done
      done);
  (* Pack into CSR. *)
  let frac_off = Array.make ((n * n) + 1) 0 in
  for p = 0 to (n * n) - 1 do
    frac_off.(p + 1) <- frac_off.(p) + Array.length pair_links.(p)
  done;
  let nnz = frac_off.(n * n) in
  let frac_links = Array.make (max nnz 1) 0 in
  let frac_coeffs = Array.make (max nnz 1) 0. in
  for p = 0 to (n * n) - 1 do
    Array.blit pair_links.(p) 0 frac_links frac_off.(p)
      (Array.length pair_links.(p));
    Array.blit pair_coeffs.(p) 0 frac_coeffs frac_off.(p)
      (Array.length pair_coeffs.(p))
  done;
  { topo; n; dist; hops; frac_off; frac_links; frac_coeffs }

let delay t n1 n2 = t.dist.((n1 * t.n) + n2)
let reachable t n1 n2 = t.dist.((n1 * t.n) + n2) < infinity
let hop_count t n1 n2 = t.hops.((n1 * t.n) + n2)

let pair_index t ~src ~dst = (src * t.n) + dst
let frac_offsets t = t.frac_off
let frac_link_ids t = t.frac_links
let frac_values t = t.frac_coeffs

let fractions t ~src ~dst =
  let p = (src * t.n) + dst in
  let lo = t.frac_off.(p) and hi = t.frac_off.(p + 1) in
  List.init (hi - lo) (fun i ->
      (t.frac_links.(lo + i), t.frac_coeffs.(lo + i)))

let iter_fractions t ~src ~dst f =
  let p = (src * t.n) + dst in
  for i = t.frac_off.(p) to t.frac_off.(p + 1) - 1 do
    f t.frac_links.(i) t.frac_coeffs.(i)
  done

let link_fraction t ~src ~dst ~link =
  let p = (src * t.n) + dst in
  let result = ref 0. in
  (let lo = t.frac_off.(p) and hi = t.frac_off.(p + 1) in
   let i = ref lo in
   while !i < hi do
     if t.frac_links.(!i) = link then begin
       result := t.frac_coeffs.(!i);
       i := hi
     end
     else incr i
   done);
  !result
