(** Link-load accounting.

    Accumulates traffic volumes routed between node pairs (split over links
    by {!Paths} ECMP fractions) plus any background traffic [g_e], and
    reports per-link utilization and the maximum link utilization (MLU) —
    the network cost the operator bounds with the [beta] constraint in the
    chain-routing LP (Eq. 6). *)

type t

val create : Topology.t -> Paths.t -> t
(** All link loads start at 0. *)

val copy : t -> t

val reset : t -> unit
(** Zero every link load (and the maintained per-link costs), restoring the
    state a fresh {!create} would produce. Background traffic added with
    {!add_background} is cleared too — callers that keep background around
    must re-add it. *)

val add_background : t -> int -> float -> unit
(** [add_background t link_id volume] adds non-Switchboard traffic to one
    link. *)

val add_flow : t -> src:int -> dst:int -> volume:float -> unit
(** Route [volume] from [src] to [dst] along ECMP shortest paths and charge
    each traversed link its fraction. No-op when [src = dst]. *)

val remove_flow : t -> src:int -> dst:int -> volume:float -> unit
(** Inverse of {!add_flow}. *)

val link_load : t -> int -> float
val utilization : t -> int -> float
(** [link load / bandwidth]. *)

val mlu : t -> float
(** Maximum utilization over all links; 0. for a linkless topology. *)

val path_max_utilization : t -> src:int -> dst:int -> float
(** Highest utilization among links that carry [src -> dst] traffic; 0. when
    [src = dst]. Used by SB-DP's network-utilization cost. *)

val path_network_cost : t -> src:int -> dst:int -> extra:float -> float
(** Fortz–Thorup cost of sending [extra] more volume from [src] to [dst]:
    the increase in the summed piecewise-linear link costs, weighted by each
    link's carried fraction (paper Section 4.4). Iterates the packed ECMP
    arrays directly — no allocation. *)

val path_network_cost_pair :
  t -> src:int -> dst:int -> fwd:float -> rev:float -> float
(** [path_network_cost ~src ~dst ~extra:fwd +.
    path_network_cost ~src:dst ~dst:src ~extra:rev] fused into one call:
    charges a stage's forward and reverse traffic in a single pass — the
    shape SB-DP's stage cost needs. *)
