(** Shortest-path routing with ECMP splitting.

    Derives from a {!Topology.t} the two routing inputs of the network model
    (Table 1): the node-to-node propagation delay [d(n1,n2)] and the routing
    fractions [r(n1,n2,e)] — the fraction of traffic from [n1] to [n2] that
    crosses link [e]. Routing follows delay-weighted shortest paths with
    OSPF-style equal-cost multipath: at every node, traffic splits evenly
    across all outgoing links that lie on a shortest path to the
    destination.

    Everything is precomputed eagerly by {!compute}: all-sources Dijkstra
    runs with a binary heap ({!Sb_util.Heap}) and is parallelized across
    OCaml 5 domains on large topologies, and the ECMP splits for every
    reachable pair are packed CSR-style into flat parallel arrays. All
    queries are O(1) array indexing (plus span length for per-link
    iteration) with zero allocation. *)

type t

val compute : Topology.t -> t
(** Run all-sources Dijkstra and precompute every pair's ECMP split. *)

val delay : t -> int -> int -> float
(** [delay t n1 n2] is the shortest-path propagation delay in seconds;
    [infinity] if unreachable; [0.] if [n1 = n2]. *)

val reachable : t -> int -> int -> bool

val fractions : t -> src:int -> dst:int -> (int * float) list
(** [(link_id, fraction)] for every link carrying a non-zero fraction of
    [src -> dst] traffic, in increasing link id. Fractions of links out of
    any single node sum to the flow through that node; total conservation
    holds. Empty when [src = dst] or unreachable. The list is rebuilt from
    the packed representation on each call — hot paths should use
    {!iter_fractions} or the packed accessors instead. *)

val iter_fractions : t -> src:int -> dst:int -> (int -> float -> unit) -> unit
(** Allocation-free iteration over the [(link_id, fraction)] split, in
    increasing link id. *)

val link_fraction : t -> src:int -> dst:int -> link:int -> float
(** The [r(n1,n2,e)] lookup; 0. when the link is off every shortest path. *)

val hop_count : t -> int -> int -> int
(** Minimum number of links over {e all} shortest [n1 -> n2] paths; 0 for
    [n1 = n2], [max_int] if unreachable. *)

(** {2 Packed representation}

    The ECMP splits of all pairs live in two parallel arrays indexed by a
    CSR offsets table: pair [(src, dst)] owns the half-open span
    [frac_offsets t.(p) .. frac_offsets t.(p + 1)) with
    [p = pair_index t ~src ~dst]. Exposed so the link-load hot path
    ({!Load}) can iterate without closure or list overhead. The arrays are
    owned by [t] — callers must not mutate them. *)

val pair_index : t -> src:int -> dst:int -> int
val frac_offsets : t -> int array
val frac_link_ids : t -> int array
val frac_values : t -> float array
