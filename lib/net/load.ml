type t = {
  topo : Topology.t;
  paths : Paths.t;
  loads : float array;
  bandwidth : float array;
  (* Convex_cost.cost of each link's current utilization, maintained on
     every load change: the query side of path_network_cost then pays one
     cost evaluation per link (the hypothetical "after") instead of two.
     Loads change far less often than costs are queried — SB-DP probes
     every candidate node pair per stage but commits one. *)
  cost_now : float array;
  (* The CSR span arrays of [paths], immutable after Paths.compute, cached
     here so per-query access is a field read rather than an accessor call. *)
  frac_off : int array;
  frac_links : int array;
  frac_vals : float array;
  nn : int; (* num nodes; pair p = src * nn + dst *)
}

(* Local clone of Sb_util.Convex_cost.cost (same breakpoints, same
   expression trees, hence bit-identical results) so the per-link call in
   path_network_cost can be inlined — the Closure backend does not inline
   across modules. Negative inputs are the caller's problem here: every
   call site below guards [u >= 0.] first. *)
let b1 = 1. /. 3.
let b2 = 2. /. 3.
let b3 = 0.9
let b4 = 1.0
let b5 = 1.1
let c1 = (b1 -. 0.) *. 1.
let c2 = c1 +. ((b2 -. b1) *. 3.)
let c3 = c2 +. ((b3 -. b2) *. 10.)
let c4 = c3 +. ((b4 -. b3) *. 70.)
let c5 = c4 +. ((b5 -. b4) *. 500.)

let[@inline always] convex_cost u =
  if u <= b1 then (u -. 0.) *. 1.
  else if u <= b2 then c1 +. ((u -. b1) *. 3.)
  else if u <= b3 then c2 +. ((u -. b2) *. 10.)
  else if u <= b4 then c3 +. ((u -. b3) *. 70.)
  else if u <= b5 then c4 +. ((u -. b4) *. 500.)
  else c5 +. ((u -. b5) *. 5000.)

let update_cost t e =
  let u = t.loads.(e) /. t.bandwidth.(e) in
  (* cost 0. = 0.; treat the tiny negative residue a remove_flow can leave
     behind the same way instead of raising. *)
  t.cost_now.(e) <- (if u > 0. then convex_cost u else 0.)

let reset t =
  Array.fill t.loads 0 (Array.length t.loads) 0.;
  Array.fill t.cost_now 0 (Array.length t.cost_now) 0.

let create topo paths =
  {
    topo;
    paths;
    loads = Array.make (Topology.num_links topo) 0.;
    bandwidth =
      Array.init (Topology.num_links topo) (fun id -> (Topology.link topo id).Topology.bandwidth);
    cost_now = Array.make (Topology.num_links topo) 0.;
    frac_off = Paths.frac_offsets paths;
    frac_links = Paths.frac_link_ids paths;
    frac_vals = Paths.frac_values paths;
    nn = Topology.num_nodes topo;
  }

let copy t = { t with loads = Array.copy t.loads; cost_now = Array.copy t.cost_now }

let add_background t link_id volume =
  t.loads.(link_id) <- t.loads.(link_id) +. volume;
  update_cost t link_id

(* The hot path iterates the CSR span of the pair directly: no Hashtbl
   lookup, no list traversal, no allocation. *)

let add_flow t ~src ~dst ~volume =
  if src <> dst then begin
    let p = (src * t.nn) + dst in
    for i = t.frac_off.(p) to t.frac_off.(p + 1) - 1 do
      let e = t.frac_links.(i) in
      t.loads.(e) <- t.loads.(e) +. (volume *. t.frac_vals.(i));
      update_cost t e
    done
  end

let remove_flow t ~src ~dst ~volume = add_flow t ~src ~dst ~volume:(-.volume)

let link_load t id = t.loads.(id)

let utilization t id = t.loads.(id) /. t.bandwidth.(id)

let mlu t =
  let best = ref 0. in
  for id = 0 to Array.length t.loads - 1 do
    let u = utilization t id in
    if u > !best then best := u
  done;
  !best

let path_max_utilization t ~src ~dst =
  let p = (src * t.nn) + dst in
  let best = ref 0. in
  for i = t.frac_off.(p) to t.frac_off.(p + 1) - 1 do
    let u = utilization t t.frac_links.(i) in
    if u > !best then best := u
  done;
  !best

(* All-float record, so the mutable field stays unboxed — a [float ref]
   would box every store on the non-flambda backend. *)
type facc = { mutable acc : float }

let path_network_cost t ~src ~dst ~extra =
  let off = t.frac_off in
  let links = t.frac_links in
  let fracs = t.frac_vals in
  let p = (src * t.nn) + dst in
  let loads = t.loads and bandwidth = t.bandwidth and cost_now = t.cost_now in
  let a = { acc = 0. } in
  (* unsafe_get: [i] ranges over a CSR span (off is monotone and ends at
     the array length) and [e] is a link id < num_links, the length of the
     three per-link arrays. *)
  for i = off.(p) to Array.unsafe_get off (p + 1) - 1 do
    let e = Array.unsafe_get links i in
    let after =
      (Array.unsafe_get loads e +. (extra *. Array.unsafe_get fracs i))
      /. Array.unsafe_get bandwidth e
    in
    (* [after >= 0.]: loads and fracs are non-negative (up to remove_flow
       residue, which callers never combine with a cost query mid-flight)
       and [extra >= 0.]. *)
    a.acc <- a.acc +. (convex_cost after -. Array.unsafe_get cost_now e)
  done;
  a.acc

let path_network_cost_pair t ~src ~dst ~fwd ~rev =
  path_network_cost t ~src ~dst ~extra:fwd
  +. path_network_cost t ~src:dst ~dst:src ~extra:rev
