(** Streaming workload schedules: the demand side of the Section 5
    experiments at "millions of users" scale.

    A workload is a seeded, {e constant-memory} schedule of offered demand
    over a grid of [ticks] discrete time steps and [keys] demand keys
    (one key per service chain in the scenario harness). Like
    [Sb_chaos.Schedule], a workload is a pure value: {!demand} is a pure
    function of [(t, tick, key)], so the same seed replays bit-identically,
    evaluation order cannot matter, and no per-flow or per-tick state is
    ever accumulated — generators hold only O(keys) precomputed attributes
    (hot sets, masses, phases), never a flow population.

    Two read-outs per tick drive the two halves of the system:

    - {!demand} / {!demand_into} — per-key demand rates, the ground-truth
      multiplicative factors the [sb_adapt] control loop adapts to;
    - {!churn} — the fraction of the live connection population replaced
      this tick, which a driver turns into streaming open/close calls on
      [Sb_dataplane.Traffic_gen] (DDoS floods cycle millions of short
      flows through the flow tables; elephants persist).

    Workloads compose with the same combinator vocabulary as fault
    schedules: {!overlay} (sum two workloads), {!shift} (delay in time),
    {!scale} (multiply demand), {!ramp} (linear envelope across the
    horizon). Conservation claims, checked by qcheck:
    [total (overlay a b) = total a + total b],
    [total (scale c a) = c * total a],
    [demand (shift d a) (tick+d) = demand a tick] (exactly), and
    {!regional_failover} preserves total demand while the failed region's
    share is redistributed. *)

type t

val ticks : t -> int
(** Horizon in ticks; {!demand} is zero outside [\[0, ticks)]. *)

val keys : t -> int
(** Number of demand keys (chains). *)

val name : t -> string
(** Compact description, e.g. ["overlay(flash_crowd,diurnal)"]. *)

val demand : t -> tick:int -> key:int -> float
(** Offered demand rate for [key] at [tick]. Pure in all arguments;
    returns 0 outside the grid. *)

val demand_into : t -> tick:int -> float array -> unit
(** Fill a caller-owned [keys]-sized array with the tick's per-key
    demands (the allocation-free form of {!demand}). *)

val total_demand : t -> tick:int -> float
(** Sum of {!demand} over all keys. *)

val churn : t -> tick:int -> float
(** Fraction of the live connection population replaced at [tick], in
    [\[0, 1\]]. Composite workloads blend their parts' churn weighted by
    each part's total demand at the tick (the population is proportional
    to demand, so that is the replaced fraction of the union). *)

(** {1 Generators}

    All generators validate their arguments ([Invalid_argument]) and
    derive every random attribute from [seed] via split streams, so equal
    arguments give bit-identical schedules. *)

val constant : ticks:int -> keys:int -> rate:float -> t
(** Flat [rate] on every key — the calibration baseline. *)

val flash_crowd :
  seed:int ->
  ticks:int ->
  keys:int ->
  ?hot:int ->
  ?base:float ->
  ?peak:float ->
  ?start:int ->
  ?rise:int ->
  ?fall:int ->
  unit ->
  t
(** [hot] seeded keys (default [keys/8]) surge from [base] to
    [peak * base] over [rise] ticks starting at [start], then decay
    linearly back over [fall] ticks; the rest stay at [base]. Churn rises
    with the surge (the crowd is new users connecting). *)

val ddos :
  seed:int ->
  ticks:int ->
  keys:int ->
  ?targets:int ->
  ?base:float ->
  ?magnitude:float ->
  ?start:int ->
  ?stop:int ->
  unit ->
  t
(** A flood of short-lived flows: [targets] seeded keys (default
    [max 1 (keys/16)]) gain [magnitude * base] extra demand during
    [\[start, stop)]. Attack traffic churns its whole population every
    tick (each flow lives ~one tick), so the blended churn approaches 1
    as the attack dominates — the flow-table-thrash scenario. *)

val elephant_mice :
  seed:int ->
  ticks:int ->
  keys:int ->
  ?elephant_fraction:float ->
  ?elephant_share:float ->
  ?rate:float ->
  unit ->
  t
(** Stationary skew: a seeded [elephant_fraction] of keys (the elephants)
    carry [elephant_share] of [rate * keys] total demand; mice split the
    rest. Elephants are long-lived (negligible churn), mice are short
    request flows (high churn) — the blend weighs by demand share. *)

val regional_failover :
  seed:int ->
  ticks:int ->
  keys:int ->
  ?regions:int ->
  ?fail_region:int ->
  ?base:float ->
  ?fail_at:int ->
  ?recover_at:int ->
  unit ->
  t
(** Keys partition round-robin into [regions] regions. During
    [\[fail_at, recover_at)] the failed region (seeded unless
    [fail_region] is given) offers zero demand and its share is spread
    evenly over the surviving keys — total demand is preserved (the users
    reconnect elsewhere). Churn spikes for a couple of ticks after the
    failover and after recovery (mass reconnection). [recover_at]
    defaults to [ticks] (no recovery), matching [sb_adapt]'s cumulative
    link-failure model. *)

val diurnal :
  seed:int ->
  ticks:int ->
  keys:int ->
  ?period:int ->
  ?amplitude:float ->
  ?base:float ->
  unit ->
  t
(** Diurnal gravity drift: each key gets a seeded gravity mass (mean 1)
    and a seeded phase; demand is
    [base * mass * (1 + amplitude * sin(phase + 2*pi*tick/period))] —
    the moving traffic matrix of the Section 5.3 time-of-day discussion.
    Low churn: populations shrink and grow, connections are long. *)

(** {1 Combinators} *)

val overlay : t -> t -> t
(** Pointwise sum. Both workloads must have equal [keys]; the horizon is
    the max. Churn blends demand-weighted. *)

val shift : int -> t -> t
(** [shift d w] delays [w] by [d >= 0] ticks (demand is 0 before [d]);
    the horizon grows by [d]. *)

val scale : float -> t -> t
(** Multiply every demand by a factor [>= 0]. Churn is unchanged (scaling
    users scales the population, not the per-flow lifetime). *)

val ramp : from_:float -> to_:float -> t -> t
(** Linear envelope: tick 0 is scaled by [from_], the last tick by [to_],
    linear in between (both factors [>= 0]). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
