(* Reproduction harness: one entry per table/figure of the paper's
   evaluation (Sections 5.4, 6 and 7), plus Bechamel microbenchmarks of the
   core kernels. Run all with `dune exec bench/main.exe`, or a subset with
   `dune exec bench/main.exe -- fig12a fig9 micro`. *)

module Table = Sb_util.Table
module Rng = Sb_util.Rng
module Model = Sb_core.Model
module Routing = Sb_core.Routing
module Eval = Sb_core.Eval
module Workload = Sb_core.Workload
module Topology = Sb_net.Topology

let header title = Printf.printf "\n=== %s ===\n" title

let fmt_or_dash v = if v = infinity then "-" else Printf.sprintf "%.3g" v

(* ------------------------------------------------------------------ *)
(* Figure 7: OVS-based forwarder overhead                              *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Figure 7: OVS forwarder overhead (bridge vs labels vs flow affinity)";
  let module Ovs = Sb_dataplane.Ovs_model in
  let t =
    Table.create
      ~header:
        [ "flows"; "bridge kpps"; "labels kpps"; "affinity kpps"; "labels ovh";
          "affinity ovh (vs labels)" ]
  in
  List.iter
    (fun flows ->
      Table.add_row t
        [
          string_of_int flows;
          Printf.sprintf "%.0f" (Ovs.throughput_kpps Ovs.Bridge ~flows);
          Printf.sprintf "%.0f" (Ovs.throughput_kpps Ovs.Labels ~flows);
          Printf.sprintf "%.0f" (Ovs.throughput_kpps Ovs.Labels_affinity ~flows);
          Printf.sprintf "+%.1f%%" (100. *. Ovs.overhead_vs_bridge Ovs.Labels ~flows);
          Printf.sprintf "+%.1f%%" (100. *. Ovs.overhead_vs_labels ~flows);
        ])
    [ 1; 2; 5; 10; 20; 30; 40; 50 ];
  Table.print t;
  print_endline "(paper: labels +19-29%, affinity a further +33-44%, shrinking with flows)";
  (* Cross-check: the executable match-action pipeline (real tables, same
     cycle constants) agrees with the closed-form rows above. *)
  let module Ovsp = Sb_dataplane.Ovs_pipeline in
  let t2 =
    Table.create ~header:[ "flows"; "bridge kpps (executed)"; "affinity kpps (executed)"; "upcalls" ]
  in
  List.iter
    (fun flows ->
      let bridge = Ovsp.run_stream (Ovsp.create Ovs.Bridge) ~flows ~packets:(100 * flows) in
      let aff =
        Ovsp.run_stream (Ovsp.create Ovs.Labels_affinity) ~flows ~packets:(100 * flows)
      in
      Table.add_row t2
        [
          string_of_int flows;
          Printf.sprintf "%.0f" bridge.Ovsp.throughput_kpps;
          Printf.sprintf "%.0f" aff.Ovsp.throughput_kpps;
          string_of_int aff.Ovsp.upcalls;
        ])
    [ 1; 10; 50 ];
  print_endline "\nexecuted OVS pipeline (same constants, real flow/learn tables):";
  Table.print t2

(* ------------------------------------------------------------------ *)
(* Figure 8: DPDK forwarder scale-out                                  *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  header "Figure 8: DPDK forwarder horizontal scaling (512K flows per forwarder)";
  let module Dpdk = Sb_dataplane.Dpdk_model in
  let t =
    Table.create
      ~header:[ "forwarders"; "total flows"; "Mpps"; "Gbps @500B"; "latency@low"; "latency@max" ]
  in
  for cores = 1 to 6 do
    let flows_per_core = 524_288 in
    Table.add_row t
      [
        string_of_int cores;
        Printf.sprintf "%dK" (cores * 512);
        Printf.sprintf "%.1f" (Dpdk.throughput_mpps ~cores ~flows_per_core);
        Printf.sprintf "%.0f" (Dpdk.throughput_gbps ~cores ~flows_per_core ~packet_bytes:500);
        Printf.sprintf "%.0f us" (1e6 *. Dpdk.latency_s ~cores ~flows_per_core ~load:0.1);
        Printf.sprintf "%.2f ms" (1e3 *. Dpdk.latency_s ~cores ~flows_per_core ~load:0.99999);
      ]
  done;
  Table.print t;
  Printf.printf "single core, few flows: %.1f Mpps (paper: ~7)\n"
    (Dpdk.throughput_mpps ~cores:1 ~flows_per_core:1024);
  Printf.printf "single core, 30M flows: %.1f Mpps steady state (paper: >3)\n"
    (Dpdk.throughput_mpps ~cores:1 ~flows_per_core:30_000_000)

(* ------------------------------------------------------------------ *)
(* Figure 9: message bus vs full-mesh broadcast                        *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  header "Figure 9: global message bus vs full-mesh broadcast";
  let module BC = Sb_msgbus.Broadcast_compare in
  let setup = BC.default_setup in
  let t =
    Table.create
      ~header:
        [ "publish rate"; "SB goodput"; "SB med lat"; "SB drop"; "FM goodput"; "FM med lat";
          "FM drop" ]
  in
  List.iter
    (fun rate ->
      let sb = BC.run setup ~mode:Sb_msgbus.Bus.Switchboard ~rate in
      let fm = BC.run setup ~mode:Sb_msgbus.Bus.Full_mesh ~rate in
      Table.add_row t
        [
          Printf.sprintf "%.0f/s" rate;
          Printf.sprintf "%.1f/s" sb.BC.goodput;
          Printf.sprintf "%.0f ms" (1000. *. sb.BC.median_latency);
          Printf.sprintf "%.0f%%" (100. *. sb.BC.drop_fraction);
          Printf.sprintf "%.1f/s" fm.BC.goodput;
          Printf.sprintf "%.0f ms" (1000. *. fm.BC.median_latency);
          Printf.sprintf "%.0f%%" (100. *. fm.BC.drop_fraction);
        ])
    [ 10.; 25.; 42.; 100.; 200.; 400. ];
  Table.print t;
  let sb = BC.run setup ~mode:Sb_msgbus.Bus.Switchboard ~rate:42. in
  let fm = BC.run setup ~mode:Sb_msgbus.Bus.Full_mesh ~rate:42. in
  Printf.printf
    "at the full-mesh saturation knee: bus delivers +%.0f%% goodput (paper: +57%%)\n"
    (100. *. ((sb.BC.goodput /. fm.BC.goodput) -. 1.));
  let sb_sat = BC.run setup ~mode:Sb_msgbus.Bus.Switchboard ~rate:150. in
  let fm_sat = BC.run setup ~mode:Sb_msgbus.Bus.Full_mesh ~rate:150. in
  Printf.printf "under load: full-mesh latency is %.1fx the bus (paper: >10x)\n"
    (fm_sat.BC.median_latency /. sb_sat.BC.median_latency);
  (* The iBGP-style route-reflector alternative Section 6 discusses: fewer
     copies than full mesh, but it floods uninterested sites and the
     reflector serializes everything. *)
  let t2 =
    Table.create ~header:[ "publish rate"; "RR goodput"; "RR med lat"; "RR WAN msgs/publish" ]
  in
  List.iter
    (fun rate ->
      let rr = BC.run setup ~mode:(Sb_msgbus.Bus.Route_reflector 1) ~rate in
      Table.add_row t2
        [
          Printf.sprintf "%.0f/s" rate;
          Printf.sprintf "%.1f/s" rr.BC.goodput;
          Printf.sprintf "%.0f ms" (1000. *. rr.BC.median_latency);
          Printf.sprintf "%.1f"
            (float_of_int rr.BC.wan_messages /. (rate *. setup.BC.duration));
        ])
    [ 42.; 100.; 200. ];
  print_endline "\niBGP-style route reflector (Section 6's strawman):";
  Table.print t2;
  print_endline
    "(the reflector floods every site per update and adds a hop; Switchboard sends only to\n subscribing sites directly)"

(* ------------------------------------------------------------------ *)
(* Fig. 10 / Table 2 fixtures: a two/three-site control-plane system    *)
(* ------------------------------------------------------------------ *)

module Csys = Sb_ctrl.System
module Ct = Sb_ctrl.Types
module Eng = Sb_sim.Engine
module Fabric = Sb_dataplane.Fabric
module Packet = Sb_dataplane.Packet

let nat_vnf = 7

let make_ctrl_system ~num_sites ~delay ~install_latency =
  let sys = Csys.create ~num_sites ~delay ~gsb_site:0 ~install_latency () in
  Csys.deploy_vnf sys ~vnf:nat_vnf ~site:0 ~capacity:10. ~instances:2;
  Csys.deploy_vnf sys ~vnf:nat_vnf ~site:1 ~capacity:10. ~instances:2;
  Csys.register_edge sys ~site:0 ~attachment:"siteA";
  Csys.register_edge sys ~site:1 ~attachment:"siteB";
  Csys.set_route_policy sys (fun _spec ~exclude ->
      if List.mem (nat_vnf, 0) exclude then
        Some [ { Ct.element_sites = [| 0; 1; 1 |]; weight = 1.0 } ]
      else Some [ { Ct.element_sites = [| 0; 0; 1 |]; weight = 1.0 } ]);
  sys

let nat_chain_spec =
  {
    Ct.spec_name = "nat-chain";
    ingress_attachment = "siteA";
    egress_attachment = "siteB";
    vnfs = [ nat_vnf ];
    traffic = 5.0;
  }

let fig10a () =
  header "Figure 10a: dynamic chain-route creation timeline";
  let delay a b = if a = b then 0. else 0.030 in
  let sys = make_ctrl_system ~num_sites:2 ~delay ~install_latency:0.09 in
  let chain = Csys.request_chain sys nat_chain_spec in
  Eng.run (Csys.engine sys);
  let t0 = Eng.now (Csys.engine sys) in
  Csys.add_route sys ~chain { Ct.element_sites = [| 0; 1; 1 |]; weight = 0.5 };
  Eng.run (Csys.engine sys);
  let t1 = Eng.now (Csys.engine sys) in
  let t = Table.create ~header:[ "t since request (ms)"; "control-plane event" ] in
  List.iter
    (fun (ts, msg) ->
      Table.add_row t [ Printf.sprintf "%.0f" (1000. *. (ts -. t0)); msg ])
    (Csys.log_between sys t0 t1);
  Table.print t;
  Printf.printf "route update completed in %.0f ms (paper: 595 ms total)\n"
    (1000. *. (t1 -. t0))

let fig10b () =
  header "Figure 10b: throughput effect of adding a chain route";
  (* Connections arrive every 200 ms, each worth 0.5 traffic units, for
     40 s; the NAT at each site admits 10 units (20 connections). At t=20 s
     the second route (site B) is activated in the "update" scenario. *)
  let delay a b = if a = b then 0. else 0.030 in
  let run_scenario ~with_update =
    let sys = make_ctrl_system ~num_sites:2 ~delay ~install_latency:0.09 in
    let chain = Csys.request_chain sys nat_chain_spec in
    Eng.run (Csys.engine sys);
    if with_update then begin
      ignore
        (Eng.schedule (Csys.engine sys)
           ~delay:(20. -. Eng.now (Csys.engine sys))
           (fun () ->
             Csys.add_route sys ~chain { Ct.element_sites = [| 0; 1; 1 |]; weight = 0.5 }))
    end;
    (* Sample per-site admitted connections every 2 s. *)
    let rng = Rng.create 5 in
    let site_of_instance i = Fabric.instance_site (Csys.fabric sys) i in
    let fabric_site s = Fabric.forwarder_site (Csys.fabric sys) (Csys.site_forwarder sys s) in
    let conns_site = [| 0; 0 |] in
    let samples = ref [] in
    for step = 1 to 200 do
      let now = Eng.now (Csys.engine sys) in
      Eng.run_until (Csys.engine sys) (now +. 0.2);
      (match Csys.probe_chain sys ~chain (Packet.random_tuple rng) with
      | Ok trace ->
        List.iter
          (fun i ->
            if Fabric.instance_vnf (Csys.fabric sys) i = nat_vnf then begin
              if site_of_instance i = fabric_site 0 then
                conns_site.(0) <- conns_site.(0) + 1
              else conns_site.(1) <- conns_site.(1) + 1
            end)
          (Fabric.instances_in_trace trace)
      | Error _ -> ());
      if step mod 20 = 0 then begin
        let tput s = Float.min (0.5 *. float_of_int conns_site.(s)) 10. in
        samples := (Eng.now (Csys.engine sys), tput 0, tput 1) :: !samples
      end
    done;
    List.rev !samples
  in
  let base = run_scenario ~with_update:false in
  let upd = run_scenario ~with_update:true in
  let t =
    Table.create
      ~header:[ "t (s)"; "no-update total"; "update: route A"; "update: route B"; "update total" ]
  in
  List.iter2
    (fun (ts, a0, a1) (_, b0, b1) ->
      Table.add_row t
        [
          Printf.sprintf "%.0f" ts;
          Printf.sprintf "%.1f" (Float.min (a0 +. a1) 10.);
          Printf.sprintf "%.1f" b0;
          Printf.sprintf "%.1f" b1;
          Printf.sprintf "%.1f" (b0 +. b1);
        ])
    base upd;
  Table.print t;
  print_endline "(paper: the added route doubles the chain's total throughput)"

let table2 () =
  header "Table 2: latency of adding a new edge site to a chain";
  (* Paper testbed delays: ~31 ms one-way control latency, ~95 ms data-plane
     configuration. *)
  let delay a b = if a = b then 0. else 0.031 in
  let sys =
    let s = Csys.create ~num_sites:3 ~delay ~gsb_site:0 ~install_latency:0.095 () in
    Csys.deploy_vnf s ~vnf:nat_vnf ~site:0 ~capacity:10. ~instances:2;
    Csys.deploy_vnf s ~vnf:nat_vnf ~site:1 ~capacity:10. ~instances:2;
    Csys.register_edge s ~site:0 ~attachment:"siteA";
    Csys.register_edge s ~site:1 ~attachment:"siteB";
    Csys.register_edge s ~site:2 ~attachment:"mobile-edge";
    Csys.set_route_policy s (fun _spec ~exclude:_ ->
        Some [ { Ct.element_sites = [| 0; 0; 1 |]; weight = 1.0 } ]);
    s
  in
  let chain = Csys.request_chain sys nat_chain_spec in
  Eng.run (Csys.engine sys);
  let t0 = Eng.now (Csys.engine sys) in
  Csys.add_edge_site sys ~chain ~site:2;
  Eng.run (Csys.engine sys);
  let t = Table.create ~header:[ "operation"; "elapsed (ms)"; "paper (ms)" ] in
  let paper =
    [
      ("chose 1st VNF's site", "0");
      ("received 1st VNF's info", "63");
      ("dataplane configured", "93 (cum. 156)");
      ("receives edge's fwrdr info", "74 (cum. 230)");
      ("starts dataplane configuration", "233 (cum. 463)");
      ("finishes configuration", "104 (cum. 567)");
    ]
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  List.iter
    (fun (key, paper_ms) ->
      match
        List.find_opt (fun (_, msg) -> contains msg key) (Csys.log_between sys t0 infinity)
      with
      | Some (ts, msg) ->
        Table.add_row t [ msg; Printf.sprintf "%.0f" (1000. *. (ts -. t0)); paper_ms ]
      | None -> Table.add_row t [ key; "MISSING"; paper_ms ])
    paper;
  Table.print t;
  (* Verify traffic actually flows from the new edge. *)
  match Csys.probe_chain sys ~chain ~ingress_site:2 (Packet.random_tuple (Rng.create 1)) with
  | Ok _ -> print_endline "probe from the new edge site traverses the chain: OK"
  | Error e -> Format.printf "probe FAILED: %a@." Fabric.pp_error e

(* ------------------------------------------------------------------ *)
(* Figure 11: E2E comparison vs distributed load balancing             *)
(* ------------------------------------------------------------------ *)

(* Two sites A and B; a stateful firewall deployed at both; two chain
   routes as in Fig. 11a: chain 1 ingresses at A and egresses at B (either
   firewall is on-path), chain 2 both ingresses and egresses at A (a remote
   firewall costs a WAN detour). Anycast sends both chains to A's firewall
   (overload); Compute-Aware fills A with chain 1 and detours chain 2;
   Switchboard's LP places chain 1 at B and chain 2 at A. *)
let fig11_testbed ~rtt =
  let topo = Topology.line ~delays:[ rtt /. 2. ] ~bandwidth:1000. in
  let b = Model.builder topo in
  let sa = Model.add_site b ~node:0 ~capacity:100. in
  let sb = Model.add_site b ~node:1 ~capacity:100. in
  let fw = Model.add_vnf b ~name:"firewall" ~cpu_per_unit:1. in
  Model.deploy b ~vnf:fw ~site:sa ~capacity:10.;
  Model.deploy b ~vnf:fw ~site:sb ~capacity:10.;
  let _c1 = Model.add_chain b ~name:"route1" ~ingress:0 ~egress:1 ~vnfs:[ fw ] ~fwd:4.8 () in
  let _c2 = Model.add_chain b ~name:"route2" ~ingress:0 ~egress:0 ~vnfs:[ fw ] ~fwd:4.8 () in
  Model.finalize b ()

let fig11_run ~label ~rtt =
  let m = fig11_testbed ~rtt in
  let schemes =
    [
      ("ANYCAST", Sb_core.Greedy.anycast m);
      ("COMPUTE-AWARE", Sb_core.Greedy.compute_aware m);
      ( "SWITCHBOARD",
        match Sb_core.Lp_routing.solve m Sb_core.Lp_routing.Min_latency with
        | Ok { routing; _ } -> routing
        | Error e -> failwith ("fig11 LP: " ^ e) );
    ]
  in
  let t = Table.create ~header:[ "scheme"; "TCP throughput"; "mean RTT (ms)" ] in
  let results =
    List.map
      (fun (name, r) ->
        let e = Sb_flowsim.E2e.evaluate ~flows_per_chain:16 r in
        Table.add_row t
          [
            name;
            Printf.sprintf "%.2f" e.Sb_flowsim.E2e.total_throughput;
            Printf.sprintf "%.0f" (1000. *. e.Sb_flowsim.E2e.mean_rtt);
          ];
        (name, e))
      schemes
  in
  Printf.printf "\n-- %s (inter-site RTT %.0f ms) --\n" label (1000. *. rtt);
  Table.print t;
  let get n = List.assoc n results in
  let sb = get "SWITCHBOARD" and any = get "ANYCAST" and ca = get "COMPUTE-AWARE" in
  Printf.printf
    "Switchboard vs Anycast: +%.0f%% throughput (paper: +34/57%%); vs Compute-Aware: %.0f%% lower latency (paper: 43-49%%)\n"
    (100. *. ((sb.Sb_flowsim.E2e.total_throughput /. any.Sb_flowsim.E2e.total_throughput) -. 1.))
    (100. *. (1. -. (sb.Sb_flowsim.E2e.mean_rtt /. ca.Sb_flowsim.E2e.mean_rtt)))

let fig11 () =
  header "Figure 11: Switchboard vs distributed load-balancing schemes";
  fig11_run ~label:"Amazon testbed" ~rtt:0.150;
  fig11_run ~label:"private cloud testbed" ~rtt:0.080

(* ------------------------------------------------------------------ *)
(* Table 3: shared vs siloed cache VNF                                 *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3: sharing a cache VNF instance across chains";
  let module Sharing = Sb_cache.Sharing in
  let p = Sharing.default_params in
  let shared = Sharing.run_shared ~rng:(Rng.create 42) p in
  let siloed = Sharing.run_siloed ~rng:(Rng.create 42) p in
  let t = Table.create ~header:[ "scheme"; "hit rate"; "download time (ms)"; "paper" ] in
  Table.add_row t
    [
      "shared cache inst.";
      Printf.sprintf "%.2f%%" (100. *. shared.Sharing.hit_rate);
      Printf.sprintf "%.2f" (1000. *. shared.Sharing.mean_download_time);
      "57.45% / 56.49 ms";
    ];
  Table.add_row t
    [
      "vertically siloed inst.";
      Printf.sprintf "%.2f%%" (100. *. siloed.Sharing.hit_rate);
      Printf.sprintf "%.2f" (1000. *. siloed.Sharing.mean_download_time);
      "44.25% / 70.02 ms";
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figures 12-13: traffic engineering on the synthetic backbone        *)
(* ------------------------------------------------------------------ *)

(* The tier-1 scenario, scaled so the dense simplex solves each LP in
   under a second (see DESIGN.md on instance-size substitution): an 8-node
   backbone with 16 chains instead of the paper's full AT&T backbone with
   10 000 chains and CPLEX. *)
let te_model ?(coverage = Workload.default.Workload.coverage)
    ?(cpu = Workload.default.Workload.cpu_per_unit) ?(seed = 42) () =
  let rng = Rng.create seed in
  let topo = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
  Workload.synthesize ~rng topo
    { Workload.default with Workload.coverage; cpu_per_unit = cpu; num_chains = 16 }

let fig12a () =
  header "Figure 12a: supported throughput vs VNF coverage";
  let t = Table.create ~header:[ "coverage"; "ANYCAST"; "SB-DP"; "SB-LP" ] in
  let coverages = [| 0.25; 0.5; 0.75; 1.0 |] in
  let models = Array.map (fun coverage -> te_model ~coverage ()) coverages in
  let grid = Eval.throughput_grid models [| Eval.Anycast; Eval.Sb_dp; Eval.Sb_lp |] in
  Array.iteri
    (fun i coverage ->
      Table.add_float_row t (Printf.sprintf "%.2f" coverage) (Array.to_list grid.(i)))
    coverages;
  Table.print t;
  print_endline
    "(paper: SB-LP and SB-DP improve with coverage; ANYCAST an order of magnitude lower)"

let fig12b () =
  header "Figure 12b: supported throughput vs VNF CPU/byte";
  let t = Table.create ~header:[ "CPU/unit"; "ANYCAST"; "SB-DP"; "SB-LP" ] in
  let cpus = [| 0.25; 0.5; 1.0; 2.0; 4.0 |] in
  let models = Array.map (fun cpu -> te_model ~cpu ()) cpus in
  let grid = Eval.throughput_grid models [| Eval.Anycast; Eval.Sb_dp; Eval.Sb_lp |] in
  Array.iteri
    (fun i cpu ->
      Table.add_float_row t (Printf.sprintf "%.2g" cpu) (Array.to_list grid.(i)))
    cpus;
  Table.print t;
  print_endline
    "(low CPU/unit: network-bound; high: compute-bound. SB-DP within tens of % of SB-LP)"

let fig12c () =
  header "Figure 12c: mean chain latency vs offered load";
  let m = te_model () in
  let t = Table.create ~header:[ "load factor"; "ANYCAST (ms)"; "SB-DP (ms)"; "SB-LP (ms)" ] in
  let loads = [| 0.1; 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 |] in
  let grid = Eval.latency_grid ~loads m [| Eval.Anycast; Eval.Sb_dp; Eval.Sb_lp |] in
  Array.iteri
    (fun i load ->
      let lat v = if v = infinity then "-" else Printf.sprintf "%.2f" (1000. *. v) in
      Table.add_row t
        [ Printf.sprintf "%.2f" load; lat grid.(i).(0); lat grid.(i).(1); lat grid.(i).(2) ])
    loads;
  Table.print t;
  print_endline
    "('-' = the scheme cannot carry that load; paper: ANYCAST dies at ~10% of SB-LP's max load,\n SB-DP latency within 8% of SB-LP)"

let fig13a () =
  header "Figure 13a: SB-DP cost-function and holistic-routing ablations";
  let t = Table.create ~header:[ "coverage"; "DP-LATENCY"; "ONEHOP"; "SB-DP" ] in
  List.iter
    (fun coverage ->
      let m = te_model ~coverage () in
      let tput s = Eval.throughput m s in
      Table.add_float_row t
        (Printf.sprintf "%.2f" coverage)
        [ tput Eval.Dp_latency; tput Eval.Onehop; tput Eval.Sb_dp ])
    [ 0.25; 0.5; 0.75; 1.0 ];
  Table.print t;
  print_endline
    "(paper: SB-DP up to 6x DP-LATENCY and 2.3x ONEHOP: both the utilization-aware cost\n and the holistic chain-wide optimization contribute)"

let fig13b () =
  header "Figure 13b: cloud capacity planning (extra capacity placement)";
  let m = te_model () in
  let t =
    Table.create ~header:[ "extra capacity"; "uniform alpha"; "optimized alpha"; "gain" ]
  in
  List.iter
    (fun budget ->
      match
        (Sb_core.Capacity.uniform m ~budget, Sb_core.Capacity.optimize m ~budget)
      with
      | Ok uni, Ok opt ->
        Table.add_row t
          [
            Printf.sprintf "%.0f" budget;
            Printf.sprintf "%.3f" uni.Sb_core.Capacity.alpha;
            Printf.sprintf "%.3f" opt.Sb_core.Capacity.alpha;
            Printf.sprintf "+%.1f%%"
              (100. *. ((opt.Sb_core.Capacity.alpha /. uni.Sb_core.Capacity.alpha) -. 1.));
          ]
      | Error e, _ | _, Error e -> Table.add_row t [ Printf.sprintf "%.0f" budget; e; ""; "" ])
    [ 0.; 100.; 200.; 400.; 800. ];
  Table.print t;
  print_endline "(paper: optimized placement up to +22% throughput over uniform)"

let fig13c () =
  header "Figure 13c: VNF placement hints (new deployment sites per VNF)";
  let m = te_model ~coverage:0.25 () in
  let latency_of model =
    1000.
    *. Routing.propagation_latency
         (Sb_core.Dp_routing.solve ~rng:(Rng.create 1) model)
  in
  let t =
    Table.create
      ~header:[ "new sites per VNF"; "random placement (ms)"; "Switchboard hints (ms)"; "gain" ]
  in
  List.iter
    (fun n ->
      if n = 0 then
        Table.add_row t [ "0"; Printf.sprintf "%.2f" (latency_of m); Printf.sprintf "%.2f" (latency_of m); "-" ]
      else begin
        let sugg = latency_of (Sb_core.Placement.suggest m ~new_sites_per_vnf:n) in
        let rand =
          (* average over three random draws *)
          let vals =
            List.map
              (fun s ->
                latency_of (Sb_core.Placement.random ~rng:(Rng.create s) m ~new_sites_per_vnf:n))
              [ 11; 22; 33 ]
          in
          Sb_util.Stats.mean vals
        in
        Table.add_row t
          [
            string_of_int n;
            Printf.sprintf "%.2f" rand;
            Printf.sprintf "%.2f" sugg;
            Printf.sprintf "-%.1f%%" (100. *. (1. -. (sugg /. rand)));
          ]
      end)
    [ 0; 1; 2; 3 ];
  Table.print t;
  print_endline "(paper: hints give up to 27% lower latency than random site selection)"

(* ------------------------------------------------------------------ *)
(* Beyond the paper: the future-work evaluations it calls for          *)
(* ------------------------------------------------------------------ *)

(* Network/compute failures (Section 7.3 future work): degrade the
   scenario and let each scheme re-route; load-aware schemes should absorb
   failures far more gracefully than anycast. *)
let failures () =
  header "Extension: throughput under link and site failures";
  let m = te_model () in
  let topo = Model.topology m in
  let rng = Rng.create 99 in
  (* Sample link-failure sets that keep the graph connected. *)
  let connected m' =
    let p = Model.paths m' in
    let n = Topology.num_nodes (Model.topology m') in
    let ok = ref true in
    for i = 0 to n - 1 do
      if not (Sb_net.Paths.reachable p 0 i) then ok := false
    done;
    !ok
  in
  let rec sample_link_failure count =
    (* Fail [count] full duplex links (both directions). *)
    let duplex = Topology.num_links topo / 2 in
    let picks = Sb_util.Rng.sample_without_replacement rng count duplex in
    let ids = List.concat_map (fun d -> [ 2 * d; (2 * d) + 1 ]) picks in
    let m' = Model.with_failed_links m ids in
    if connected m' then m' else sample_link_failure count
  in
  let t =
    Table.create
      ~header:[ "scenario"; "ANYCAST"; "COMPUTE-AWARE"; "SB-DP"; "SB-LP" ]
  in
  let row label m' =
    let tput s = try Eval.throughput m' s with _ -> 0. in
    Table.add_float_row t label
      [ tput Eval.Anycast; tput Eval.Compute_aware; tput Eval.Sb_dp; tput Eval.Sb_lp ]
  in
  row "no failure" m;
  List.iter (fun k -> row (Printf.sprintf "%d links down" k) (sample_link_failure k)) [ 1; 2; 3 ];
  (* Site failure: fail a site only if every VNF keeps a deployment. *)
  let rec sample_site_failure () =
    let s = Sb_util.Rng.int rng (Model.num_sites m) in
    let m' = Model.with_failed_sites m [ s ] in
    let all_deployed =
      List.init (Model.num_vnfs m') (fun f -> f)
      |> List.for_all (fun f -> Model.vnf_sites m' f <> [])
    in
    if all_deployed then (s, m') else sample_site_failure ()
  in
  let s, m' = sample_site_failure () in
  row (Printf.sprintf "site %d down" s) m';
  Table.print t;
  print_endline
    "(global re-optimization absorbs failures; anycast's fixed nearest-site choice cannot)"

(* Time-varying traffic matrices (Section 7.3 future work): chains follow
   diurnal demand curves with region-dependent phases. Re-running SB-DP
   each epoch tracks the shifting load; a static routing computed at the
   first epoch degrades as demand moves away from it. *)
let timevar () =
  header "Extension: time-varying traffic (diurnal demand, 8 epochs)";
  let m = te_model () in
  let n = Model.num_chains m in
  let rng = Rng.create 123 in
  let phase = Array.init n (fun _ -> Sb_util.Rng.float rng (2. *. Float.pi)) in
  let epoch_model e =
    let factors =
      Array.init n (fun c ->
          1. +. (0.8 *. sin (phase.(c) +. (2. *. Float.pi *. float_of_int e /. 8.))))
    in
    Model.with_chain_traffic_factors m factors
  in
  (* The static routing is SB-DP's placement for epoch 0, re-evaluated
     against each epoch's demand by re-committing its paths. *)
  let static = Sb_core.Dp_routing.solve ~rng:(Rng.create 1) (epoch_model 0) in
  let static_paths c = Routing.decompose_paths static ~chain:c in
  let t =
    Table.create ~header:[ "epoch"; "static alpha"; "re-routed alpha"; "gain" ]
  in
  let worst_static = ref infinity and worst_rerouted = ref infinity in
  for e = 0 to 7 do
    let me = epoch_model e in
    let frozen = Routing.create me in
    for c = 0 to n - 1 do
      List.iter (fun (nodes, frac) -> Routing.add_path frozen ~chain:c ~nodes ~frac)
        (static_paths c)
    done;
    let alpha_static = Routing.max_alpha frozen in
    let alpha_rerouted =
      Routing.max_alpha (Sb_core.Dp_routing.solve ~rng:(Rng.create 1) me)
    in
    worst_static := Float.min !worst_static alpha_static;
    worst_rerouted := Float.min !worst_rerouted alpha_rerouted;
    Table.add_row t
      [
        string_of_int e;
        Printf.sprintf "%.3f" alpha_static;
        Printf.sprintf "%.3f" alpha_rerouted;
        Printf.sprintf "+%.0f%%" (100. *. ((alpha_rerouted /. alpha_static) -. 1.));
      ]
  done;
  Table.print t;
  Printf.printf "worst epoch: static %.3f vs re-routed %.3f (+%.0f%%)\n" !worst_static
    !worst_rerouted
    (100. *. ((!worst_rerouted /. !worst_static) -. 1.))

(* Ablation of SB-DP's two knobs (DESIGN.md design decisions): the
   utilization-cost weight and the per-chain route-split budget. *)
let ablation () =
  header "Extension: SB-DP design-choice ablations";
  let m = te_model () in
  let t1 = Table.create ~header:[ "util_weight (s/cost)"; "supported alpha"; "prop latency (ms)" ] in
  List.iter
    (fun w ->
      let r = Sb_core.Dp_routing.solve ~util_weight:w ~rng:(Rng.create 1) m in
      Table.add_row t1
        [
          Printf.sprintf "%.3f" w;
          Printf.sprintf "%.3f" (Routing.max_alpha r);
          Printf.sprintf "%.2f" (1000. *. Routing.propagation_latency r);
        ])
    [ 0.; 0.005; 0.02; 0.05; 0.2; 1.0 ];
  Table.print t1;
  print_endline "(0 = latency-only routing; larger weights trade propagation for headroom)";
  let t2 = Table.create ~header:[ "max_routes per chain"; "supported alpha" ] in
  List.iter
    (fun k ->
      let r = Sb_core.Dp_routing.solve ~max_routes:k ~rng:(Rng.create 1) m in
      Table.add_row t2 [ string_of_int k; Printf.sprintf "%.3f" (Routing.max_alpha r) ])
    [ 1; 2; 4; 8; 16 ];
  Table.print t2;
  print_endline "(splitting chains over multiple routes is what lets SB-DP fill the network)";
  (* The operator's MLU limit (beta, Eq. 6): tightening it reserves network
     headroom at the price of admissible demand. *)
  let t3 = Table.create ~header:[ "beta (MLU limit)"; "SB-LP alpha" ] in
  List.iter
    (fun beta ->
      let rng = Rng.create 42 in
      let topo = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
      let mb =
        (* Network-bound regime (cheap VNFs), where the MLU cap binds. *)
        Workload.synthesize ~rng topo
          { Workload.default with Workload.num_chains = 16; beta; cpu_per_unit = 0.1 }
      in
      match Sb_core.Lp_routing.solve mb Sb_core.Lp_routing.Max_throughput with
      | Ok { objective_value; _ } ->
        Table.add_row t3 [ Printf.sprintf "%.2f" beta; Printf.sprintf "%.3f" objective_value ]
      | Error e -> Table.add_row t3 [ Printf.sprintf "%.2f" beta; e ])
    [ 0.4; 0.6; 0.8; 1.0 ];
  Table.print t3;
  print_endline "(a lower MLU cap trades Switchboard throughput for network headroom)"


(* SB-DP scalability (Section 7.3: "SB-DP should perform well in practice
   and scale to larger topologies... SB-LP has much higher running time of
   up to 3 hours"): grow the scenario and time both engines. SB-LP is run
   only while it stays under a few seconds. *)
let scale () =
  header "Extension: routing-engine scalability (SB-DP vs SB-LP run time)";
  let t =
    Table.create
      ~header:[ "nodes"; "chains"; "SB-DP time"; "SB-DP alpha"; "SB-LP time"; "SB-LP alpha" ]
  in
  List.iter
    (fun (cores, pops, chains, run_lp) ->
      let rng = Rng.create 42 in
      let topo = Topology.backbone ~rng ~num_core:cores ~pops_per_core:pops () in
      let m =
        Workload.synthesize ~rng topo
          { Workload.default with Workload.num_chains = chains }
      in
      let t0 = Unix.gettimeofday () in
      let dp = Sb_core.Dp_routing.solve ~rng:(Rng.create 1) m in
      let dp_time = Unix.gettimeofday () -. t0 in
      let lp_time, lp_alpha =
        if run_lp then begin
          let t0 = Unix.gettimeofday () in
          match Sb_core.Lp_routing.solve m Sb_core.Lp_routing.Max_throughput with
          | Ok { objective_value; _ } ->
            (Printf.sprintf "%.1f s" (Unix.gettimeofday () -. t0),
             Printf.sprintf "%.2f" objective_value)
          | Error e -> ("-", e)
        end
        else ("(skipped)", "-")
      in
      Table.add_row t
        [
          string_of_int (Topology.num_nodes topo);
          string_of_int chains;
          Printf.sprintf "%.2f s" dp_time;
          Printf.sprintf "%.2f" (Routing.max_alpha dp);
          lp_time;
          lp_alpha;
        ])
    [
      (4, 1, 16, true);
      (5, 2, 50, true);
      (8, 3, 200, false);
      (12, 4, 500, false);
      (16, 5, 1000, false);
    ];
  Table.print t;
  print_endline
    "(the dense-simplex SB-LP grows superlinearly, as CPLEX did for the paper's authors;\n SB-DP remains sub-second far beyond the LP's practical range)"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

(* The seed's list-based path fabric (tuple-keyed Hashtbl memo of assoc
   lists, selection-scan Dijkstra), kept verbatim as the microbenchmark
   baseline: the packed-CSR speedup is measured against it rather than
   asserted. *)
module Legacy_paths = struct
  let eps = 1e-12

  (* The seed's list-walking Fortz–Thorup evaluation (Convex_cost is now
     straight-line code; the baseline keeps the original). *)
  let segment_slopes =
    [ (0., 1.); (1. /. 3., 3.); (2. /. 3., 10.); (0.9, 70.); (1.0, 500.); (1.1, 5000.) ]

  let legacy_cost u =
    if u < 0. then invalid_arg "Convex_cost.cost: negative utilization";
    let rec go acc prev_bp prev_slope = function
      | [] -> acc +. ((u -. prev_bp) *. prev_slope)
      | (bp, slope) :: rest ->
        if u <= bp then acc +. ((u -. prev_bp) *. prev_slope)
        else go (acc +. ((bp -. prev_bp) *. prev_slope)) bp slope rest
    in
    match segment_slopes with
    | (bp0, s0) :: rest -> go 0. bp0 s0 rest
    | [] -> assert false

  type t = {
    topo : Topology.t;
    dist : float array array;
    frac_cache : (int * int, (int * float) list) Hashtbl.t;
  }

  let dijkstra topo src =
    let n = Topology.num_nodes topo in
    let dist = Array.make n infinity in
    let visited = Array.make n false in
    dist.(src) <- 0.;
    let rec loop () =
      let u = ref (-1) in
      for v = 0 to n - 1 do
        if (not visited.(v)) && dist.(v) < infinity && (!u < 0 || dist.(v) < dist.(!u)) then
          u := v
      done;
      if !u >= 0 then begin
        visited.(!u) <- true;
        List.iter
          (fun (l : Topology.link) ->
            let nd = dist.(!u) +. l.Topology.delay in
            if nd < dist.(l.Topology.dst) -. eps then dist.(l.Topology.dst) <- nd)
          (Topology.out_links topo !u);
        loop ()
      end
    in
    loop ();
    dist

  let compute topo =
    let n = Topology.num_nodes topo in
    let dist = Array.init n (fun s -> dijkstra topo s) in
    { topo; dist; frac_cache = Hashtbl.create 64 }

  let compute_fractions t ~src ~dst =
    if src = dst || t.dist.(src).(dst) = infinity then []
    else begin
      let topo = t.topo in
      let n = Topology.num_nodes topo in
      let total = t.dist.(src).(dst) in
      let on_path u (l : Topology.link) =
        let via = t.dist.(src).(u) +. l.Topology.delay +. t.dist.(l.Topology.dst).(dst) in
        Float.abs (via -. total) < 1e-9
      in
      let order =
        List.init n (fun v -> v)
        |> List.filter (fun v ->
               t.dist.(src).(v) +. t.dist.(v).(dst) -. total < 1e-9
               && t.dist.(src).(v) < infinity
               && t.dist.(v).(dst) < infinity)
        |> List.sort (fun a b -> compare t.dist.(src).(a) t.dist.(src).(b))
      in
      let inflow = Array.make n 0. in
      inflow.(src) <- 1.;
      let link_flow = Hashtbl.create 16 in
      List.iter
        (fun u ->
          if inflow.(u) > 0. && u <> dst then begin
            let next = List.filter (on_path u) (Topology.out_links topo u) in
            let share = inflow.(u) /. float_of_int (List.length next) in
            List.iter
              (fun (l : Topology.link) ->
                inflow.(l.Topology.dst) <- inflow.(l.Topology.dst) +. share;
                let cur = try Hashtbl.find link_flow l.Topology.id with Not_found -> 0. in
                Hashtbl.replace link_flow l.Topology.id (cur +. share))
              next
          end)
        order;
      Hashtbl.fold (fun id f acc -> (id, f) :: acc) link_flow []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    end

  let fractions t ~src ~dst =
    match Hashtbl.find_opt t.frac_cache (src, dst) with
    | Some f -> f
    | None ->
      let f = compute_fractions t ~src ~dst in
      Hashtbl.replace t.frac_cache (src, dst) f;
      f

  let path_network_cost t loads ~src ~dst ~extra =
    List.fold_left
      (fun acc (link_id, frac) ->
        let l = Topology.link t.topo link_id in
        let before = loads.(link_id) /. l.Topology.bandwidth in
        let after = (loads.(link_id) +. (extra *. frac)) /. l.Topology.bandwidth in
        acc +. (legacy_cost after -. legacy_cost before))
      0.
      (fractions t ~src ~dst)
end

(* The seed's copy-per-probe evaluation loop, kept verbatim as the
   baseline for the packed-arena Eval: every bisection probe builds a
   scaled model copy, routes it from scratch and allocates a fresh load
   state for max_alpha. Calls only public APIs, so it keeps measuring the
   same work even as the library evolves underneath. *)
module Legacy_eval = struct
  module Load_state = Sb_core.Load_state

  (* The seed's SB-DP solver loop: the public legacy [best_path] kernel
     (generation-stamped stage-cost cache, per-call DP tables) driving the
     seed's Hashtbl-accumulating path_headroom, committing into a fresh
     model-derived load state per solve. *)
  let path_headroom state chain nodes =
    let m = Load_state.model state in
    let topo = Model.topology m in
    let paths = Model.paths m in
    let link_demand = Hashtbl.create 16 in
    let vnf_demand = Hashtbl.create 8 in
    let site_demand = Hashtbl.create 8 in
    let bump tbl key amount =
      let cur = try Hashtbl.find tbl key with Not_found -> 0. in
      Hashtbl.replace tbl key (cur +. amount)
    in
    let charge_compute vnf_opt node volume =
      match (vnf_opt, Model.site_of_node m node) with
      | Some f, Some s ->
        let load = Model.vnf_cpu_per_unit m f *. volume in
        bump vnf_demand (f, s) load;
        bump site_demand s load
      | _ -> ()
    in
    for z = 0 to Array.length nodes - 2 do
      let src = nodes.(z) and dst = nodes.(z + 1) in
      let w = Model.fwd_traffic m ~chain ~stage:z in
      let v = Model.rev_traffic m ~chain ~stage:z in
      Sb_net.Paths.iter_fractions paths ~src ~dst (fun e frac ->
          bump link_demand e (w *. frac));
      Sb_net.Paths.iter_fractions paths ~src:dst ~dst:src (fun e frac ->
          bump link_demand e (v *. frac));
      let src_vnf = if z = 0 then None else Model.stage_dst_vnf m ~chain ~stage:(z - 1) in
      charge_compute src_vnf src (w +. v);
      charge_compute (Model.stage_dst_vnf m ~chain ~stage:z) dst (w +. v)
    done;
    let cap = ref infinity in
    let consider room per_unit =
      if per_unit > 1e-12 then cap := Float.min !cap (room /. per_unit)
    in
    Hashtbl.iter
      (fun e demand ->
        let l = Topology.link topo e in
        let room =
          (Model.beta m *. l.Topology.bandwidth) -. Model.background m e
          -. Load_state.link_sb_load state e
        in
        consider room demand)
      link_demand;
    Hashtbl.iter
      (fun (f, s) demand ->
        consider
          (Model.vnf_site_capacity m ~vnf:f ~site:s
          -. Load_state.vnf_load state ~vnf:f ~site:s)
          demand)
      vnf_demand;
    Hashtbl.iter
      (fun s demand ->
        consider (Model.site_capacity m s -. Load_state.site_load state s) demand)
      site_demand;
    Float.max 0. !cap

  let commit state chain nodes frac =
    for z = 0 to Array.length nodes - 2 do
      Load_state.add_stage_flow state ~chain ~stage:z ~src:nodes.(z)
        ~dst:nodes.(z + 1) ~frac
    done

  let chain_order ?rng m =
    let order = Array.init (Model.num_chains m) (fun c -> c) in
    (match rng with Some r -> Rng.shuffle r order | None -> ());
    order

  let min_split = 0.02

  let route_pair state routing ~util_weight ~max_routes chain ~ingress ~egress ~share =
    let rec go remaining routes_left =
      if remaining > 1e-9 then
        match Sb_core.Dp_routing.best_path ~ingress ~egress state ~util_weight ~chain with
        | None -> ()
        | Some nodes ->
          let headroom =
            if util_weight = 0. then remaining else path_headroom state chain nodes
          in
          let frac =
            if routes_left <= 1 || headroom >= remaining -. 1e-9 || headroom < min_split
            then remaining
            else Float.min remaining headroom
          in
          Routing.add_path routing ~chain ~nodes ~frac;
          commit state chain nodes frac;
          go (remaining -. frac) (routes_left - 1)
    in
    go share max_routes

  let route_chain state routing ~util_weight ~max_routes chain =
    let m = Load_state.model state in
    List.iter
      (fun (ingress, ishare) ->
        List.iter
          (fun (egress, eshare) ->
            route_pair state routing ~util_weight ~max_routes chain ~ingress ~egress
              ~share:(ishare *. eshare))
          (Model.chain_egresses m chain))
      (Model.chain_ingresses m chain)

  let solve ?(util_weight = Sb_core.Dp_routing.default_util_weight) ?(max_routes = 8)
      ?rng m =
    let state = Load_state.create m in
    let routing = Routing.create m in
    Array.iter
      (fun c -> route_chain state routing ~util_weight ~max_routes c)
      (chain_order ?rng m);
    routing

  let dp_latency ?rng m = solve ~util_weight:0. ~max_routes:1 ?rng m

  let route_heuristic ?(seed = 1) m = function
    | Eval.Anycast -> Sb_core.Greedy.anycast m
    | Eval.Compute_aware -> Sb_core.Greedy.compute_aware m
    | Eval.Onehop -> Sb_core.Greedy.onehop m
    | Eval.Dp_latency -> dp_latency ~rng:(Rng.create seed) m
    | Eval.Sb_dp -> solve ~rng:(Rng.create seed) m
    | Eval.Sb_lp -> invalid_arg "route_heuristic: Sb_lp"

  let sustains ?seed m scheme factor =
    let scaled = Model.with_scaled_traffic m factor in
    let r = route_heuristic ?seed scaled scheme in
    Routing.max_alpha r >= 1. -. 1e-9

  let max_load_factor ?seed ?(tol = 0.02) m scheme =
    match scheme with
    | Eval.Sb_lp -> (
      match Sb_core.Lp_routing.solve m Sb_core.Lp_routing.Max_throughput with
      | Ok { objective_value; _ } -> objective_value
      | Error _ -> 0.)
    | Eval.Anycast | Eval.Dp_latency ->
      Routing.max_alpha (route_heuristic ?seed m scheme)
    | Eval.Compute_aware | Eval.Onehop | Eval.Sb_dp ->
      if not (sustains ?seed m scheme 1e-6) then 0.
      else begin
        let lo = ref 1e-6 and hi = ref 1. in
        let guard = ref 0 in
        while sustains ?seed m scheme !hi && !guard < 40 do
          lo := !hi;
          hi := !hi *. 2.;
          incr guard
        done;
        if !guard >= 40 then !hi
        else begin
          while (!hi -. !lo) /. !hi > tol do
            let mid = (!lo +. !hi) /. 2. in
            if sustains ?seed m scheme mid then lo := mid else hi := mid
          done;
          !lo
        end
      end
end

(* ~100-node synthetic backbone (20 core x 4 PoPs) with a mid-size chain
   workload: the scale at which SB-DP's constant factors start to matter. *)
let big_topo () =
  Topology.backbone ~rng:(Rng.create 21) ~num_core:20 ~pops_per_core:4 ()

let big_model () =
  let rng = Rng.create 21 in
  let topo = big_topo () in
  Workload.synthesize ~rng topo { Workload.default with Workload.num_chains = 128 }

(* ------------------------------------------------------------------ *)
(* Fabric packet-path kernels: seed per-call fabric vs packed plane     *)
(* ------------------------------------------------------------------ *)

module Legacy_fabric = Sb_dataplane.Legacy_fabric

(* Both engines keep the seed construction signatures (the packed plane
   fronts them as [Fabric]), so one builder parameterised over a
   first-class module gives both sides identical ids and identical RNG
   draw sequences. *)
module type FABRIC_BUILD = sig
  type t

  val create : ?seed:int -> ?flow_store:Fabric.flow_store -> unit -> t
  val add_site : t -> string -> int
  val add_forwarder : t -> site:int -> int
  val add_edge : t -> site:int -> forwarder:int -> int

  val add_vnf_instance :
    t -> vnf:int -> site:int -> forwarder:int -> ?weight:float -> unit -> int

  val install_rule :
    t -> forwarder:int -> chain_label:int -> egress_label:int -> stage:int ->
    (Fabric.endpoint * float) list -> unit

  val install_rx_rule :
    t -> forwarder:int -> chain_label:int -> egress_label:int -> stage:int ->
    (Fabric.endpoint * float) list -> unit

  val send_forward :
    t -> ingress:int -> chain_label:int -> egress_label:int -> ?size:int ->
    Packet.five_tuple -> (Fabric.endpoint list, Fabric.error) result
end

(* The sb_chaos harness topology: six sites with one forwarder and one
   edge each, VNF 0 at sites 1,2 / VNF 1 at 2,3 / VNF 2 at 4,5 (two
   instances per site), and three chains whose element placements mirror
   the harness's routes. Cross-site stages relay forwarder-to-forwarder
   with an rx rule on the receiver — the pattern Local Switchboards
   install. Chain entries are (label, vnfs, ingress site, element sites
   ending with the egress site); egress labels are egress-site ids. *)
let chaos_chains =
  [
    (1, [| 0; 1 |], 0, [| 1; 2; 5 |]);
    (2, [| 1; 2 |], 1, [| 2; 4; 4 |]);
    (3, [| 0; 1; 2 |], 0, [| 1; 2; 4; 5 |]);
  ]

let build_chaos_fabric (type ft) (module F : FABRIC_BUILD with type t = ft)
    ~flow_store =
  let fab = F.create ~seed:0x5EED ~flow_store () in
  let site = Array.init 6 (fun s -> F.add_site fab (Printf.sprintf "site%d" s)) in
  let fwd = Array.map (fun s -> F.add_forwarder fab ~site:s) site in
  let edge = Array.map2 (fun s f -> F.add_edge fab ~site:s ~forwarder:f) site fwd in
  let insts = Hashtbl.create 12 in
  List.iter
    (fun (v, sites) ->
      List.iter
        (fun s ->
          let ids =
            List.init 2 (fun _ ->
                F.add_vnf_instance fab ~vnf:v ~site:site.(s) ~forwarder:fwd.(s) ())
          in
          Hashtbl.replace insts (v, s) ids)
        sites)
    [ (0, [ 1; 2 ]); (1, [ 2; 3 ]); (2, [ 4; 5 ]) ];
  List.iter
    (fun (label, vnfs, ingress_site, route) ->
      let n = Array.length route in
      let egress_label = route.(n - 1) in
      for z = 0 to n - 1 do
        let src = if z = 0 then ingress_site else route.(z - 1) in
        let dst = route.(z) in
        let targets =
          if z = n - 1 then [ (Fabric.Edge edge.(dst), 1.0) ]
          else
            List.map
              (fun i -> (Fabric.Vnf_instance i, 1.0))
              (Hashtbl.find insts (vnfs.(z), dst))
        in
        if src = dst then
          F.install_rule fab ~forwarder:fwd.(src) ~chain_label:label
            ~egress_label ~stage:z targets
        else begin
          F.install_rule fab ~forwarder:fwd.(src) ~chain_label:label
            ~egress_label ~stage:z
            [ (Fabric.Forwarder fwd.(dst), 1.0) ];
          F.install_rx_rule fab ~forwarder:fwd.(dst) ~chain_label:label
            ~egress_label ~stage:z targets
        end
      done)
    chaos_chains;
  let entry =
    List.map
      (fun (label, _, ingress_site, route) ->
        (label, edge.(ingress_site), route.(Array.length route - 1)))
      chaos_chains
    |> Array.of_list
  in
  (fab, entry, fwd)

(* One shared connection pool; every arm is warmed with the same 1024
   connections spread over the three chains, so the kernels all measure
   the established-flow fast path doing identical work. *)
let chaos_tuples =
  let rng = Rng.create 21 in
  Array.init 1024 (fun _ -> Packet.random_tuple rng)

let build_warm_chaos_fabric (type ft) (module F : FABRIC_BUILD with type t = ft)
    ~flow_store =
  let fab, entry, fwd = build_chaos_fabric (module F) ~flow_store in
  Array.iteri
    (fun j tp ->
      let label, ein, eg = entry.(j mod 3) in
      ignore
        (F.send_forward fab ~ingress:ein ~chain_label:label ~egress_label:eg tp))
    chaos_tuples;
  (fab, entry, fwd)

module Shard = Sb_dataplane.Shard

(* The sharded fabric behind the common builder interface, with the lane
   count baked in. *)
let shard_build nlanes : (module FABRIC_BUILD with type t = Shard.t) =
  (module struct
    include Shard

    (* [include Shard] brings in [lanes : t -> int], hence [nlanes]. *)
    let create ?seed ?flow_store () = Shard.create ?seed ?flow_store ~lanes:nlanes ()
  end)

(* chaos_tuples split by owning chain (tuple j is warmed on chain
   entry.(j mod 3)), so a [Shard.drive_batch] call — one chain per batch —
   stays on the established-flow path. *)
let chain_tuples c =
  Array.of_list
    (List.filteri (fun j _ -> j mod 3 = c) (Array.to_list chaos_tuples))

let json_mode = ref false

let micro () =
  header "Microbenchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let flow_table_bench =
    let table : int Sb_dataplane.Flow_table.t = Sb_dataplane.Flow_table.create () in
    let rng = Rng.create 3 in
    let keys =
      Array.init 4096 (fun i ->
          let k =
            {
              Sb_dataplane.Flow_table.chain_label = i mod 7;
              egress_label = i mod 3;
              stage = i mod 4;
              flow = Packet.random_tuple rng;
            }
          in
          Sb_dataplane.Flow_table.insert table k { Sb_dataplane.Flow_table.next = i; prev = i };
          k)
    in
    let i = ref 0 in
    Test.make ~name:"flow_table lookup (4K entries)"
      (Staged.stage (fun () ->
           incr i;
           ignore (Sb_dataplane.Flow_table.find table keys.(!i land 4095))))
  in
  let fabric_bench =
    let fab = Fabric.create () in
    let s = Fabric.add_site fab "A" in
    let f = Fabric.add_forwarder fab ~site:s in
    let ein = Fabric.add_edge fab ~site:s ~forwarder:f in
    let eout = Fabric.add_edge fab ~site:s ~forwarder:f in
    let v = Fabric.add_vnf_instance fab ~vnf:1 ~site:s ~forwarder:f () in
    Fabric.install_rule fab ~forwarder:f ~chain_label:1 ~egress_label:1 ~stage:0
      [ (Fabric.Vnf_instance v, 1.) ];
    Fabric.install_rule fab ~forwarder:f ~chain_label:1 ~egress_label:1 ~stage:1
      [ (Fabric.Edge eout, 1.) ];
    let rng = Rng.create 4 in
    let tuples = Array.init 1024 (fun _ -> Packet.random_tuple rng) in
    (* Warm the flow table so the bench measures the fast path. *)
    Array.iter
      (fun tp -> ignore (Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:1 tp))
      tuples;
    let i = ref 0 in
    Test.make ~name:"fabric packet (1-VNF chain, warm flow table)"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:1
                tuples.(!i land 1023))))
  in
  let dp_bench =
    let m = te_model () in
    let state = Sb_core.Load_state.create m in
    Test.make ~name:"SB-DP best_path (one chain)"
      (Staged.stage (fun () ->
           ignore (Sb_core.Dp_routing.best_path state ~util_weight:0.05 ~chain:0)))
  in
  let dp_full_bench =
    let m = te_model () in
    Test.make ~name:"SB-DP full solve (16 chains)"
      (Staged.stage (fun () -> ignore (Sb_core.Dp_routing.solve m)))
  in
  let lp_bench =
    let m = te_model ~seed:7 () in
    Test.make ~name:"SB-LP throughput solve (16 chains)"
      (Staged.stage (fun () ->
           ignore (Sb_core.Lp_routing.solve m Sb_core.Lp_routing.Max_throughput)))
  in
  let lru_bench =
    let c = Sb_cache.Lru.create ~capacity:1_000_000 in
    let z = Sb_util.Zipf.create ~n:10_000 ~s:1.0 in
    let rng = Rng.create 9 in
    Test.make ~name:"LRU access (Zipf keys)"
      (Staged.stage (fun () ->
           let k = Sb_util.Zipf.sample z rng in
           ignore (Sb_cache.Lru.access c ~key:k ~size:100)))
  in
  let bus_bench =
    Test.make ~name:"message bus publish+run (10 sites)"
      (Staged.stage (fun () ->
           let eng = Eng.create () in
           let bus =
             Sb_msgbus.Bus.create eng ~mode:Sb_msgbus.Bus.Switchboard ~num_sites:10
               ~delay:(fun a b -> if a = b then 0. else 0.05)
               ()
           in
           for s = 1 to 9 do
             Sb_msgbus.Bus.subscribe bus ~site:s ~topic:"/t" (fun () -> ())
           done;
           ignore (Eng.schedule eng ~delay:1. (fun () -> Sb_msgbus.Bus.publish bus ~site:0 ~topic:"/t" ()));
           Eng.run eng))
  in
  let maxmin_bench =
    Test.make ~name:"max-min fair allocation (20 res, 100 flows)"
      (Staged.stage (fun () ->
           let rng = Rng.create 11 in
           let t = Sb_flowsim.Maxmin.create () in
           let res =
             Array.init 20 (fun _ ->
                 Sb_flowsim.Maxmin.add_resource t ~capacity:(Rng.uniform_in rng 1. 10.))
           in
           for _ = 1 to 100 do
             let k = 1 + Rng.int rng 4 in
             let rs = List.map (fun i -> res.(i)) (Rng.sample_without_replacement rng k 20) in
             ignore (Sb_flowsim.Maxmin.add_flow t rs)
           done;
           ignore (Sb_flowsim.Maxmin.solve t)))
  in
  (* Before/after kernels of the flattened routing hot path: the legacy
     list-based fabric vs the packed CSR one, on the ~100-node backbone. *)
  let big = big_topo () in
  let big_paths = Sb_net.Paths.compute big in
  let legacy = Legacy_paths.compute big in
  let nbig = Topology.num_nodes big in
  let pairs =
    let rng = Rng.create 13 in
    Array.init 512 (fun _ ->
        let src = Rng.int rng nbig in
        let dst = (src + 1 + Rng.int rng (nbig - 1)) mod nbig in
        (src, dst))
  in
  (* Identical link loads on both sides so the kernels do the same math. *)
  let big_load = Sb_net.Load.create big big_paths in
  let legacy_loads = Array.make (Topology.num_links big) 0. in
  let () =
    let rng = Rng.create 17 in
    for e = 0 to Topology.num_links big - 1 do
      let v = Rng.uniform_in rng 0. (0.8 *. (Topology.link big e).Topology.bandwidth) in
      Sb_net.Load.add_background big_load e v;
      legacy_loads.(e) <- v
    done;
    (* Warm the legacy memo so its kernel measures the lookup, not the
       one-time compute (the packed side precomputes eagerly). *)
    Array.iter (fun (src, dst) -> ignore (Legacy_paths.fractions legacy ~src ~dst)) pairs
  in
  (* Each staged run covers a 32-pair batch: the kernels are tens of ns, so
     a single call would drown in the harness's per-run floor and flatten
     the measured ratio. *)
  let batch = 32 in
  let fractions_legacy_bench =
    let i = ref 0 in
    Test.make ~name:"paths_fractions x32/legacy-list"
      (Staged.stage (fun () ->
           let acc = ref 0. in
           for _ = 1 to batch do
             incr i;
             let src, dst = pairs.(!i land 511) in
             List.iter
               (fun (_, f) -> acc := !acc +. f)
               (Legacy_paths.fractions legacy ~src ~dst)
           done;
           ignore !acc))
  in
  let fractions_packed_bench =
    let i = ref 0 in
    Test.make ~name:"paths_fractions x32/packed-csr"
      (Staged.stage (fun () ->
           let acc = ref 0. in
           for _ = 1 to batch do
             incr i;
             let src, dst = pairs.(!i land 511) in
             Sb_net.Paths.iter_fractions big_paths ~src ~dst (fun _ f ->
                 acc := !acc +. f)
           done;
           ignore !acc))
  in
  let net_cost_legacy_bench =
    let i = ref 0 in
    Test.make ~name:"path_network_cost x32/legacy-list"
      (Staged.stage (fun () ->
           let acc = ref 0. in
           for _ = 1 to batch do
             incr i;
             let src, dst = pairs.(!i land 511) in
             acc :=
               !acc
               +. Legacy_paths.path_network_cost legacy legacy_loads ~src ~dst ~extra:1.
           done;
           ignore !acc))
  in
  let net_cost_packed_bench =
    let i = ref 0 in
    Test.make ~name:"path_network_cost x32/packed-csr"
      (Staged.stage (fun () ->
           let acc = ref 0. in
           for _ = 1 to batch do
             incr i;
             let src, dst = pairs.(!i land 511) in
             acc := !acc +. Sb_net.Load.path_network_cost big_load ~src ~dst ~extra:1.
           done;
           ignore !acc))
  in
  (* Seed-vs-packed packet path on the six-site chaos topology (see
     build_chaos_fabric): the seed engine's per-call send_forward, the
     packed plane's shim (same signature, allocates the trace), and the
     packed plane's allocation-free drive — each over Local and
     Replicated-2 flow stores. Warm flow tables: every packet hits the
     established-connection path, the regime packets/sec is quoted in. *)
  let fab_seed_local, e_seed_local, _ =
    build_warm_chaos_fabric (module Legacy_fabric) ~flow_store:Fabric.Local
  in
  let fab_packed_local, e_packed_local, _ =
    build_warm_chaos_fabric (module Fabric) ~flow_store:Fabric.Local
  in
  let fab_seed_repl, e_seed_repl, _ =
    build_warm_chaos_fabric (module Legacy_fabric)
      ~flow_store:(Fabric.Replicated 2)
  in
  let fab_packed_repl, e_packed_repl, _ =
    build_warm_chaos_fabric (module Fabric) ~flow_store:(Fabric.Replicated 2)
  in
  let fabric_kernel name send =
    let i = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           for _ = 1 to batch do
             incr i;
             send !i
           done))
  in
  let send_arm (type ft) (module F : FABRIC_BUILD with type t = ft) fab entry i =
    let label, ein, eg = entry.(i mod 3) in
    ignore
      (F.send_forward fab ~ingress:ein ~chain_label:label ~egress_label:eg
         chaos_tuples.(i land 1023))
  in
  let drive_arm fab entry i =
    let label, ein, eg = entry.(i mod 3) in
    ignore
      (Fabric.drive fab ~ingress:ein ~chain_label:label ~egress_label:eg
         ~size:500 chaos_tuples.(i land 1023))
  in
  let fabric_seed_local_bench =
    fabric_kernel "fabric pkt x32/seed-local"
      (send_arm (module Legacy_fabric) fab_seed_local e_seed_local)
  in
  let fabric_packed_local_bench =
    fabric_kernel "fabric pkt x32/packed-local"
      (send_arm (module Fabric) fab_packed_local e_packed_local)
  in
  let fabric_drive_local_bench =
    fabric_kernel "fabric drive x32/packed-local"
      (drive_arm fab_packed_local e_packed_local)
  in
  let fabric_seed_repl_bench =
    fabric_kernel "fabric pkt x32/seed-repl2"
      (send_arm (module Legacy_fabric) fab_seed_repl e_seed_repl)
  in
  let fabric_packed_repl_bench =
    fabric_kernel "fabric pkt x32/packed-repl2"
      (send_arm (module Fabric) fab_packed_repl e_packed_repl)
  in
  let fabric_drive_repl_bench =
    fabric_kernel "fabric drive x32/packed-repl2"
      (drive_arm fab_packed_repl e_packed_repl)
  in
  (* Sharded fabric: one warmed shard per lane count, reused by both the
     Bechamel batch kernels and the pps walls below. The D = 1 shard is
     the inline packed plane (no pool); D > 1 pays a submit/join handoff
     per batch, amortized over the batch. *)
  let shard_lane_counts = [| 1; 2; 4; 8 |] in
  let shards =
    Array.map
      (fun lanes ->
        let sf, entry, _ =
          build_warm_chaos_fabric (shard_build lanes) ~flow_store:Fabric.Local
        in
        (lanes, sf, entry))
      shard_lane_counts
  in
  let shard_kernel_batch = Array.sub (chain_tuples 0) 0 256 in
  let shard_batch_bench (lanes, sf, entry) =
    let label, ein, eg = entry.(0) in
    Test.make ~name:(Printf.sprintf "fabric shard_batch x256/D%d" lanes)
      (Staged.stage (fun () ->
           ignore
             (Shard.drive_batch sf ~ingress:ein ~chain_label:label
                ~egress_label:eg ~size:500 shard_kernel_batch)))
  in
  let shard_batch_benches =
    Array.to_list (Array.map shard_batch_bench shards)
  in
  let big_m = big_model () in
  let dp_solve_big_bench =
    Test.make ~name:"dp_solve (100 nodes, 128 chains)"
      (Staged.stage (fun () -> ignore (Sb_core.Dp_routing.solve big_m)))
  in
  let tests =
    Test.make_grouped ~name:"switchboard"
      ([
         flow_table_bench; fabric_bench; dp_bench; dp_full_bench; lp_bench; lru_bench;
         bus_bench; maxmin_bench; fractions_legacy_bench; fractions_packed_bench;
         net_cost_legacy_bench; net_cost_packed_bench; fabric_seed_local_bench;
         fabric_packed_local_bench; fabric_drive_local_bench; fabric_seed_repl_bench;
         fabric_packed_repl_bench; fabric_drive_repl_bench; dp_solve_big_bench;
       ]
      @ shard_batch_benches)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t = Table.create ~header:[ "benchmark"; "ns/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ v ] -> Some v
        | _ -> None
      in
      rows := (name, est) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (n, e) ->
      Table.add_row t
        [ n; (match e with Some v -> Printf.sprintf "%.0f" v | None -> "n/a") ])
    rows;
  Table.print t;
  let ns name =
    match List.assoc_opt ("switchboard/" ^ name) rows with
    | Some (Some v) -> v
    | _ -> nan
  in
  let speedup before after =
    let b = ns before and a = ns after in
    if Float.is_nan b || Float.is_nan a || a <= 0. then nan else b /. a
  in
  Printf.printf "\npath_network_cost speedup (legacy-list / packed-csr): %.1fx\n"
    (speedup "path_network_cost x32/legacy-list" "path_network_cost x32/packed-csr");
  Printf.printf "paths_fractions speedup (legacy-list / packed-csr): %.1fx\n"
    (speedup "paths_fractions x32/legacy-list" "paths_fractions x32/packed-csr");
  (* Fig-level wall times: one full SB-DP solve at both scales, plus the
     all-pairs precompute on the 100-node backbone. *)
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let wall_paths = wall (fun () -> ignore (Sb_net.Paths.compute big)) in
  let wall_dp_big = wall (fun () -> ignore (Sb_core.Dp_routing.solve big_m)) in
  let te = te_model () in
  let wall_dp_te = wall (fun () -> ignore (Sb_core.Dp_routing.solve te)) in
  Printf.printf "wall: paths_compute_100=%.3fs dp_solve_100=%.3fs dp_solve_16=%.3fs\n"
    wall_paths wall_dp_big wall_dp_te;
  if !json_mode then begin
    let oc = open_out "BENCH_dp.json" in
    let kernel_lines =
      List.filter_map
        (fun (name, est) ->
          match est with
          | Some v -> Some (Printf.sprintf "    %S: %.1f" name v)
          | None -> None)
        rows
    in
    Printf.fprintf oc "{\n  \"kernels_ns_per_op\": {\n%s\n  },\n"
      (String.concat ",\n" kernel_lines);
    Printf.fprintf oc "  \"speedup\": {\n";
    Printf.fprintf oc "    \"path_network_cost\": %.2f,\n"
      (speedup "path_network_cost x32/legacy-list" "path_network_cost x32/packed-csr");
    Printf.fprintf oc "    \"paths_fractions\": %.2f\n  },\n"
      (speedup "paths_fractions x32/legacy-list" "paths_fractions x32/packed-csr");
    Printf.fprintf oc "  \"wall_seconds\": {\n";
    Printf.fprintf oc "    \"paths_compute_100_nodes\": %.4f,\n" wall_paths;
    Printf.fprintf oc "    \"dp_solve_100_nodes_128_chains\": %.4f,\n" wall_dp_big;
    Printf.fprintf oc "    \"dp_solve_8_nodes_16_chains\": %.4f\n  }\n}\n" wall_dp_te;
    close_out oc;
    print_endline "wrote BENCH_dp.json"
  end;
  (* Before/after walls of the packed Eval arena: the seed's copy-per-probe
     bisection (Legacy_eval, scaled model + fresh solve + fresh load state
     per probe) vs the in-place instance-scaling arena, on the 100-node
     backbone. The two must agree bit-for-bit — the arena changes where the
     floats live, not what gets computed. *)
  let eval_legacy_dp = ref nan and eval_packed_dp = ref nan in
  let eval_legacy_ca = ref nan and eval_packed_ca = ref nan in
  let wall_eval_legacy_dp =
    wall (fun () -> eval_legacy_dp := Legacy_eval.max_load_factor big_m Eval.Sb_dp)
  in
  let wall_eval_packed_dp =
    wall (fun () -> eval_packed_dp := Eval.max_load_factor big_m Eval.Sb_dp)
  in
  let wall_eval_legacy_ca =
    wall (fun () ->
        eval_legacy_ca := Legacy_eval.max_load_factor big_m Eval.Compute_aware)
  in
  let wall_eval_packed_ca =
    wall (fun () -> eval_packed_ca := Eval.max_load_factor big_m Eval.Compute_aware)
  in
  let mlf_identical =
    !eval_legacy_dp = !eval_packed_dp && !eval_legacy_ca = !eval_packed_ca
  in
  let ratio b a = if a > 0. then b /. a else nan in
  Printf.printf
    "wall: eval_mlf sb-dp legacy=%.3fs packed=%.3fs (%.1fx); compute-aware \
     legacy=%.3fs packed=%.3fs (%.1fx); identical=%b\n"
    wall_eval_legacy_dp wall_eval_packed_dp
    (ratio wall_eval_legacy_dp wall_eval_packed_dp)
    wall_eval_legacy_ca wall_eval_packed_ca
    (ratio wall_eval_legacy_ca wall_eval_packed_ca)
    mlf_identical;
  (* The fig12a sweep, sequential vs fanned over domains: same cells, same
     results, wall clock divided by the grid parallelism. *)
  let fig12a_models =
    Array.map (fun coverage -> te_model ~coverage ()) [| 0.25; 0.5; 0.75; 1.0 |]
  in
  let fig12a_schemes = [| Eval.Anycast; Eval.Sb_dp; Eval.Sb_lp |] in
  let grid_seq = ref [||] and grid_par = ref [||] in
  (* Warm once so neither timed run pays the other's GC debt. *)
  ignore (Eval.throughput_grid ~domains:1 fig12a_models fig12a_schemes);
  let wall_fig12a_seq =
    wall (fun () -> grid_seq := Eval.throughput_grid ~domains:1 fig12a_models fig12a_schemes)
  in
  let wall_fig12a_par =
    wall (fun () -> grid_par := Eval.throughput_grid fig12a_models fig12a_schemes)
  in
  let grid_identical = !grid_seq = !grid_par in
  let domains = Sb_util.Par.default_domains () in
  Printf.printf
    "wall: fig12a sweep sequential=%.3fs parallel=%.3fs (%.1fx over %d domains); \
     identical=%b\n"
    wall_fig12a_seq wall_fig12a_par
    (ratio wall_fig12a_seq wall_fig12a_par)
    domains grid_identical;
  if !json_mode then begin
    let oc = open_out "BENCH_eval.json" in
    Printf.fprintf oc "{\n  \"max_load_factor_wall_seconds\": {\n";
    Printf.fprintf oc "    \"sb_dp_legacy\": %.4f,\n" wall_eval_legacy_dp;
    Printf.fprintf oc "    \"sb_dp_packed\": %.4f,\n" wall_eval_packed_dp;
    Printf.fprintf oc "    \"compute_aware_legacy\": %.4f,\n" wall_eval_legacy_ca;
    Printf.fprintf oc "    \"compute_aware_packed\": %.4f\n  },\n" wall_eval_packed_ca;
    Printf.fprintf oc "  \"speedup\": {\n";
    Printf.fprintf oc "    \"sb_dp\": %.2f,\n" (ratio wall_eval_legacy_dp wall_eval_packed_dp);
    Printf.fprintf oc "    \"compute_aware\": %.2f\n  },\n"
      (ratio wall_eval_legacy_ca wall_eval_packed_ca);
    Printf.fprintf oc "  \"values\": {\n";
    Printf.fprintf oc "    \"sb_dp_max_load_factor\": %.12g,\n" !eval_packed_dp;
    Printf.fprintf oc "    \"compute_aware_max_load_factor\": %.12g,\n" !eval_packed_ca;
    Printf.fprintf oc "    \"legacy_packed_identical\": %b\n  },\n" mlf_identical;
    Printf.fprintf oc "  \"fig12a_sweep_wall_seconds\": {\n";
    Printf.fprintf oc "    \"sequential\": %.4f,\n" wall_fig12a_seq;
    Printf.fprintf oc "    \"parallel\": %.4f,\n" wall_fig12a_par;
    Printf.fprintf oc "    \"domains\": %d,\n" domains;
    Printf.fprintf oc "    \"grids_identical\": %b\n  }\n}\n" grid_identical;
    close_out oc;
    print_endline "wrote BENCH_eval.json"
  end;
  (* Packets-per-second walls on the six-site chaos topology: the seed
     per-call engine vs the packed plane's allocation-free drive, reusing
     the warmed fabrics the Bechamel kernels ran on. *)
  let pps_packets = 300_000 in
  let pps_send (type ft) (module F : FABRIC_BUILD with type t = ft) fab entry =
    let w =
      wall (fun () ->
          for i = 1 to pps_packets do
            let label, ein, eg = entry.(i mod 3) in
            ignore
              (F.send_forward fab ~ingress:ein ~chain_label:label
                 ~egress_label:eg chaos_tuples.(i land 1023))
          done)
    in
    float_of_int pps_packets /. w
  in
  let pps_drive fab entry =
    let w =
      wall (fun () ->
          for i = 1 to pps_packets do
            let label, ein, eg = entry.(i mod 3) in
            ignore
              (Fabric.drive fab ~ingress:ein ~chain_label:label ~egress_label:eg
                 ~size:500 chaos_tuples.(i land 1023))
          done)
    in
    float_of_int pps_packets /. w
  in
  let pps_seed_local = pps_send (module Legacy_fabric) fab_seed_local e_seed_local in
  let pps_packed_local = pps_drive fab_packed_local e_packed_local in
  let pps_seed_repl = pps_send (module Legacy_fabric) fab_seed_repl e_seed_repl in
  let pps_packed_repl = pps_drive fab_packed_repl e_packed_repl in
  Printf.printf
    "fabric pps (six-site chaos topology): local seed=%.2fM packed=%.2fM (%.1fx); \
     replicated-2 seed=%.2fM packed=%.2fM (%.1fx)\n"
    (pps_seed_local /. 1e6) (pps_packed_local /. 1e6)
    (ratio pps_packed_local pps_seed_local)
    (pps_seed_repl /. 1e6) (pps_packed_repl /. 1e6)
    (ratio pps_packed_repl pps_seed_repl);
  if !json_mode then begin
    let oc = open_out "BENCH_fabric.json" in
    let has_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    let kernel_lines =
      List.filter_map
        (fun (name, est) ->
          match est with
          | Some v when has_sub name "fabric pkt x32" || has_sub name "fabric drive x32"
            ->
            Some (Printf.sprintf "    %S: %.1f" name v)
          | _ -> None)
        rows
    in
    Printf.fprintf oc "{\n  \"topology\": \"six sites, 3 chains over VNFs 0-2 \
                       (2 instances x 2 sites each), cross-site relays\",\n";
    Printf.fprintf oc "  \"kernels_ns_per_op\": {\n%s\n  },\n"
      (String.concat ",\n" kernel_lines);
    Printf.fprintf oc "  \"packets_per_second\": {\n";
    Printf.fprintf oc "    \"seed_local\": %.0f,\n" pps_seed_local;
    Printf.fprintf oc "    \"packed_local\": %.0f,\n" pps_packed_local;
    Printf.fprintf oc "    \"seed_replicated2\": %.0f,\n" pps_seed_repl;
    Printf.fprintf oc "    \"packed_replicated2\": %.0f\n  },\n" pps_packed_repl;
    Printf.fprintf oc "  \"speedup\": {\n";
    Printf.fprintf oc "    \"local\": %.2f,\n" (ratio pps_packed_local pps_seed_local);
    Printf.fprintf oc "    \"replicated2\": %.2f\n  }\n}\n"
      (ratio pps_packed_repl pps_seed_repl);
    close_out oc;
    print_endline "wrote BENCH_fabric.json"
  end;
  (* Sharded scale-out walls (Fig 8's per-core scale-out, measured). Two
     series, because the CI box may have fewer cores than lanes:
     [wallclock] drives batches through [Shard.drive_batch] — pool
     handoff included — and is only a speedup when real cores back the
     lanes; [capacity] times each lane alone draining its own partition
     inline on its private plane and sums the rates — the throughput D
     pinned cores would sustain, comparable across machines. *)
  let per_chain = Array.init 3 chain_tuples in
  let shard_wall_pps (_lanes, sf, entry) =
    let total = ref 0 in
    let w =
      wall (fun () ->
          while !total < pps_packets do
            for c = 0 to 2 do
              let label, ein, eg = entry.(c) in
              ignore
                (Shard.drive_batch sf ~ingress:ein ~chain_label:label
                   ~egress_label:eg ~size:500 per_chain.(c));
              total := !total + Array.length per_chain.(c)
            done
          done)
    in
    float_of_int !total /. w
  in
  let shard_capacity_pps (lanes, sf, entry) =
    let parts = Array.make lanes [] in
    Array.iteri
      (fun j tp -> parts.(Shard.lane_of sf tp) <- (j mod 3, tp) :: parts.(Shard.lane_of sf tp))
      chaos_tuples;
    let per_lane_target = max 20_000 (pps_packets / lanes) in
    let rate = ref 0. in
    for l = 0 to lanes - 1 do
      let part = Array.of_list parts.(l) in
      let n = Array.length part in
      if n > 0 then begin
        let plane = Shard.lane sf l in
        let reps = max 1 (per_lane_target / n) in
        let w =
          wall (fun () ->
              for _ = 1 to reps do
                Array.iter
                  (fun (c, tp) ->
                    let label, ein, eg = entry.(c) in
                    ignore
                      (Fabric.drive plane ~ingress:ein ~chain_label:label
                         ~egress_label:eg ~size:500 tp))
                  part
              done)
        in
        rate := !rate +. (float_of_int (reps * n) /. w)
      end
    done;
    !rate
  in
  let shard_wall = Array.map shard_wall_pps shards in
  let shard_cap = Array.map shard_capacity_pps shards in
  let cores = Sb_util.Par.default_domains () in
  let st = Table.create ~header:[ "lanes"; "wallclock Mpps"; "capacity Mpps"; "cap x vs D1" ] in
  Array.iteri
    (fun i (lanes, _, _) ->
      Table.add_row st
        [
          string_of_int lanes;
          Printf.sprintf "%.2f" (shard_wall.(i) /. 1e6);
          Printf.sprintf "%.2f" (shard_cap.(i) /. 1e6);
          Printf.sprintf "%.2f" (shard_cap.(i) /. shard_cap.(0));
        ])
    shards;
  Printf.printf "\nsharded fabric scale-out (%d core(s) available):\n" cores;
  Table.print st;
  (* Flow-table occupancy sweep: one packed plane grown to 10M
     connections on the six-site topology (~4 table entries per
     connection), sampling warm-path pps over 4096 established
     connections spread across the whole population at each checkpoint.
     The aggregate tables blow through L3 somewhere past the first
     million connections — the Fig 8 'single-core line dips as state
     outgrows cache' effect, here as a pps-vs-load-factor curve. *)
  let sweep_points = [| 100_000; 300_000; 1_000_000; 3_000_000; 10_000_000 |] in
  let sweep_seed = 0xACC in
  let sweep_fab, sweep_entry, sweep_fwd =
    build_chaos_fabric (module Fabric) ~flow_store:Fabric.Local
  in
  let sweep_gen = Rng.create sweep_seed in
  let inserted = ref 0 in
  let sweep_rows =
    Array.map
      (fun target ->
        while !inserted < target do
          let tp = Packet.random_tuple sweep_gen in
          let label, ein, eg = sweep_entry.(!inserted mod 3) in
          ignore
            (Fabric.drive sweep_fab ~ingress:ein ~chain_label:label
               ~egress_label:eg ~size:500 tp);
          incr inserted
        done;
        let entries = ref 0 and cap = ref 0 and probe = ref 0 in
        Array.iter
          (fun f ->
            let c, k, p = Fabric.flow_table_stats sweep_fab ~forwarder:f in
            entries := !entries + c;
            cap := !cap + k;
            probe := max !probe p)
          sweep_fwd;
        (* Re-generate the tuple stream to pick an evenly spread sample
           of established connections, then time the warm path over it. *)
        let sample_n = 4096 in
        let stride = max 1 (target / sample_n) in
        let sample = Array.make sample_n (sweep_entry.(0), chaos_tuples.(0)) in
        let re = Rng.create sweep_seed in
        let filled = ref 0 in
        for j = 0 to target - 1 do
          let tp = Packet.random_tuple re in
          if j mod stride = 0 && !filled < sample_n then begin
            sample.(!filled) <- (sweep_entry.(j mod 3), tp);
            incr filled
          end
        done;
        let passes = 3 in
        let w =
          wall (fun () ->
              for _ = 1 to passes do
                for i = 0 to !filled - 1 do
                  let (label, ein, eg), tp = sample.(i) in
                  ignore
                    (Fabric.drive sweep_fab ~ingress:ein ~chain_label:label
                       ~egress_label:eg ~size:500 tp)
                done
              done)
        in
        let pps = float_of_int (passes * !filled) /. w in
        (* 5 word-sized parallel arrays per table slot (hash keys, next,
           prev, full hash, chain link). *)
        let mib = float_of_int (!cap * 5 * 8) /. (1024. *. 1024.) in
        (target, !entries, !cap, !probe, mib, pps))
      sweep_points
  in
  let ot =
    Table.create
      ~header:[ "connections"; "entries"; "load factor"; "max probe"; "tables MiB"; "warm Mpps" ]
  in
  Array.iter
    (fun (target, entries, cap, probe, mib, pps) ->
      Table.add_row ot
        [
          string_of_int target;
          string_of_int entries;
          Printf.sprintf "%.3f" (float_of_int entries /. float_of_int (max 1 cap));
          string_of_int probe;
          Printf.sprintf "%.1f" mib;
          Printf.sprintf "%.2f" (pps /. 1e6);
        ])
    sweep_rows;
  Printf.printf "\nflow-table occupancy sweep (packed plane, Local store):\n";
  Table.print ot;
  if !json_mode then begin
    let oc = open_out "BENCH_fabric_shard.json" in
    Printf.fprintf oc "{\n  \"topology\": \"six sites, 3 chains over VNFs 0-2 \
                       (2 instances x 2 sites each), cross-site relays\",\n";
    Printf.fprintf oc "  \"cores_available\": %d,\n" cores;
    Printf.fprintf oc
      "  \"methodology\": \"wallclock = Shard.drive_batch incl. pool handoff \
       on whatever cores exist; capacity = per-lane isolated rates summed \
       (each lane drains its own RSS partition inline on its private \
       plane), i.e. the throughput of one pinned core per lane\",\n";
    let has_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    let kernel_lines =
      List.filter_map
        (fun (name, est) ->
          match est with
          | Some v when has_sub name "shard_batch" ->
            Some (Printf.sprintf "    %S: %.1f" name v)
          | _ -> None)
        rows
    in
    Printf.fprintf oc "  \"kernels_ns_per_op\": {\n%s\n  },\n"
      (String.concat ",\n" kernel_lines);
    let series name values =
      Printf.fprintf oc "  %S: {\n%s\n  },\n" name
        (String.concat ",\n"
           (Array.to_list
              (Array.mapi
                 (fun i (lanes, _, _) ->
                   Printf.sprintf "    \"lanes_%d\": %.0f" lanes values.(i))
                 shards)))
    in
    series "pps_wallclock" shard_wall;
    series "pps_capacity" shard_cap;
    let idx_of n =
      let r = ref (-1) in
      Array.iteri (fun i (l, _, _) -> if l = n then r := i) shards;
      !r
    in
    let cap_of n = shard_cap.(idx_of n) in
    Printf.fprintf oc "  \"scaleout\": {\n";
    Printf.fprintf oc "    \"capacity_2_over_1\": %.2f,\n" (cap_of 2 /. cap_of 1);
    Printf.fprintf oc "    \"capacity_4_over_1\": %.2f,\n" (cap_of 4 /. cap_of 1);
    Printf.fprintf oc "    \"capacity_8_over_1\": %.2f,\n" (cap_of 8 /. cap_of 1);
    Printf.fprintf oc "    \"monotone_1_2_4\": %b\n  },\n"
      (cap_of 2 > cap_of 1 && cap_of 4 > cap_of 2);
    Printf.fprintf oc "  \"occupancy_sweep\": [\n%s\n  ]\n}\n"
      (String.concat ",\n"
         (Array.to_list
            (Array.map
               (fun (target, entries, cap, probe, mib, pps) ->
                 Printf.sprintf
                   "    {\"connections\": %d, \"entries\": %d, \"capacity\": %d, \
                    \"load_factor\": %.4f, \"max_probe\": %d, \"tables_mib\": %.1f, \
                    \"warm_pps\": %.0f}"
                   target entries cap
                   (float_of_int entries /. float_of_int (max 1 cap))
                   probe mib pps)
               sweep_rows)));
    close_out oc;
    print_endline "wrote BENCH_fabric_shard.json"
  end;
  Array.iter (fun (_, sf, _) -> Shard.shutdown sf) shards

(* ------------------------------------------------------------------ *)
(* sb_adapt: closed-loop telemetry aggregation + incremental re-routing *)
(* ------------------------------------------------------------------ *)

module Adapt = Sb_adapt.Loop

(* Diurnal demand drift plus a mid-run failure of the hottest core-core
   duplex; closed loop (measured telemetry -> incremental resolve ->
   two-phase-commit rollout) vs the frozen epoch-0 routing and the
   full-knowledge full-re-solve oracle. *)
let adapt () =
  header "Extension: closed-loop adaptation (diurnal drift + link failure)";
  (* Scale the tier-1 TE scenario so the full re-solve can satisfy every
     epoch's demand (alpha >= 1): the oracle is then a genuine upper bound
     and "fraction of oracle" reads as fraction of satisfiable demand. *)
  let m = Model.with_scaled_traffic (te_model ()) 0.75 in
  let n = Model.num_chains m in
  let epochs = 12 and epoch_len = 2.0 and fail_epoch = 6 in
  (* Control epochs are minutes while diurnal drift spans a day, so demand
     moves a small phase step per epoch (period >> horizon). *)
  let demand = Adapt.diurnal_demand ~period:16 ~seed:7 n in
  (* Pick the failure: the core-core duplex carrying the most Switchboard
     traffic under the epoch-0 solve (the most disruptive single failure
     that keeps the core ring connected). *)
  let topo = Model.topology m in
  let is_core node =
    let name = Topology.node_name topo node in
    String.length name >= 4 && String.sub name 0 4 = "core"
  in
  let m0 =
    Model.with_chain_traffic_factors m
      (Array.init n (fun c -> demand ~epoch:0 ~chain:c))
  in
  let ls0 = Routing.load_state (Sb_core.Dp_routing.solve m0) in
  let links = Topology.links topo in
  let failed_links =
    let best = ref (-1., []) in
    Array.iter
      (fun (l : Topology.link) ->
        if
          l.Topology.src < l.Topology.dst
          && is_core l.Topology.src
          && is_core l.Topology.dst
        then begin
          let ids =
            Array.to_list links
            |> List.filter_map (fun (k : Topology.link) ->
                   if
                     (k.Topology.src = l.Topology.src && k.Topology.dst = l.Topology.dst)
                     || (k.Topology.src = l.Topology.dst
                        && k.Topology.dst = l.Topology.src)
                   then Some k.Topology.id
                   else None)
          in
          let load =
            List.fold_left
              (fun acc i -> acc +. Sb_core.Load_state.link_sb_load ls0 i)
              0. ids
          in
          if load > fst !best then best := (load, ids)
        end)
      links;
    snd !best
  in
  let sc =
    {
      Adapt.sc_model = m;
      sc_epochs = epochs;
      sc_epoch_len = epoch_len;
      sc_demand = demand;
      sc_failures = [ (fail_epoch, failed_links) ];
    }
  in
  let params = Adapt.default_params in
  let static = Adapt.run ~params sc Adapt.Static in
  let closed = Adapt.run ~params sc Adapt.Closed_loop in
  let oracle = Adapt.run ~params sc Adapt.Oracle in
  let s = Array.of_list static.Adapt.epochs in
  let c = Array.of_list closed.Adapt.epochs in
  let o = Array.of_list oracle.Adapt.epochs in
  let ratio arr e =
    if o.(e).Adapt.ep_supported <= 0. then 1.
    else arr.(e).Adapt.ep_supported /. o.(e).Adapt.ep_supported
  in
  let t =
    Table.create
      ~header:
        [ "epoch"; "oracle tput"; "closed tput"; "static tput"; "closed/oracle";
          "moved"; "down" ]
  in
  for e = 0 to epochs - 1 do
    Table.add_row t
      [
        (if e = fail_epoch then Printf.sprintf "%d*" e else string_of_int e);
        Printf.sprintf "%.2f" o.(e).Adapt.ep_supported;
        Printf.sprintf "%.2f" c.(e).Adapt.ep_supported;
        Printf.sprintf "%.2f" s.(e).Adapt.ep_supported;
        Printf.sprintf "%.0f%%" (100. *. ratio c e);
        string_of_int c.(e).Adapt.ep_rerouted;
        string_of_int c.(e).Adapt.ep_down_links;
      ]
  done;
  Table.print t;
  Printf.printf "(* = %d links fail at epoch %d)\n" (List.length failed_links) fail_epoch;
  let first_recovered from =
    let rec go e =
      if e >= epochs then epochs else if ratio c e >= 0.9 then e else go (e + 1)
    in
    go from
  in
  let conv_start = first_recovered 0 in
  (* The failure's damage can surface a few epochs later (demand has to
     grow into the lost capacity): recovery is measured from the first
     post-failure epoch that actually drops below the bar. *)
  let dip_fail =
    let rec go e =
      if e >= epochs then fail_epoch else if ratio c e < 0.9 then e else go (e + 1)
    in
    go fail_epoch
  in
  let conv_fail = first_recovered dip_fail in
  let max_moved =
    Array.fold_left (fun acc r -> max acc r.Adapt.ep_rerouted) 0 c
  in
  Printf.printf
    "closed loop: >=90%% of oracle from epoch %d; back >=90%% at epoch %d (%d epochs \
     after failure)\n"
    conv_start conv_fail (conv_fail - fail_epoch);
  Printf.printf
    "final epoch: closed %.0f%% vs static %.0f%% of oracle; max churn %d/epoch \
     (budget %d)\n"
    (100. *. ratio c (epochs - 1))
    (100. *. ratio s (epochs - 1))
    max_moved params.Adapt.churn_budget;
  if !json_mode then begin
    let oc = open_out "BENCH_adapt.json" in
    let floats get arr =
      String.concat ", "
        (List.map (fun r -> Printf.sprintf "%.4f" (get r)) (Array.to_list arr))
    in
    let ints get arr =
      String.concat ", "
        (List.map (fun r -> string_of_int (get r)) (Array.to_list arr))
    in
    let series name arr =
      Printf.sprintf
        "    %S: {\n\
        \      \"supported\": [%s],\n\
        \      \"flow_throughput\": [%s],\n\
        \      \"mean_rtt_ms\": [%s],\n\
        \      \"rerouted\": [%s],\n\
        \      \"down_links\": [%s],\n\
        \      \"reports\": [%s]\n\
        \    }"
        name
        (floats (fun r -> r.Adapt.ep_supported) arr)
        (floats (fun r -> r.Adapt.ep_throughput) arr)
        (floats (fun r -> 1000. *. r.Adapt.ep_mean_rtt) arr)
        (ints (fun r -> r.Adapt.ep_rerouted) arr)
        (ints (fun r -> r.Adapt.ep_down_links) arr)
        (ints (fun r -> r.Adapt.ep_reports) arr)
    in
    Printf.fprintf oc "{\n  \"params\": {\n";
    Printf.fprintf oc "    \"epochs\": %d,\n    \"epoch_len\": %.1f,\n" epochs epoch_len;
    Printf.fprintf oc "    \"fail_epoch\": %d,\n    \"failed_links\": [%s],\n" fail_epoch
      (String.concat ", " (List.map string_of_int failed_links));
    Printf.fprintf oc "    \"hysteresis\": %.3f,\n    \"churn_budget\": %d\n  },\n"
      params.Adapt.hysteresis params.Adapt.churn_budget;
    Printf.fprintf oc "  \"series\": {\n%s,\n%s,\n%s\n  },\n" (series "oracle" o)
      (series "closed" c) (series "static" s);
    Printf.fprintf oc "  \"recovery\": {\n";
    Printf.fprintf oc "    \"converged_epoch\": %d,\n" conv_start;
    Printf.fprintf oc "    \"failure_recovered_epoch\": %d,\n" conv_fail;
    Printf.fprintf oc "    \"epochs_after_failure\": %d,\n" (conv_fail - fail_epoch);
    Printf.fprintf oc "    \"final_closed_over_oracle\": %.4f,\n" (ratio c (epochs - 1));
    Printf.fprintf oc "    \"final_static_over_oracle\": %.4f,\n" (ratio s (epochs - 1));
    Printf.fprintf oc "    \"max_rerouted_per_epoch\": %d,\n" max_moved;
    Printf.fprintf oc "    \"churn_budget_respected\": %b\n  }\n}\n"
      (max_moved <= params.Adapt.churn_budget);
    close_out oc;
    print_endline "wrote BENCH_adapt.json"
  end

(* ------------------------------------------------------------------ *)
(* Scenario suite: streaming workloads end to end (BENCH_scenarios)    *)
(* ------------------------------------------------------------------ *)

module Scenario = Sb_adapt.Scenario

(* The sb_net.Workload matrix (flash crowd, DDoS flood, elephant/mice,
   regional failover, diurnal drift, combinator overlay) on the shared
   25-site backbone: closed-loop + oracle control arms for satisfied
   demand and bus p99, and a streaming flow-churn stress of the packed
   dataplane for pps and flow-table occupancy. SB_SCENARIOS_SCALE=smoke
   selects the CI-sized config. Everything except pps is deterministic. *)
let scenarios () =
  header "Extension: workload scenario suite (25-site backbone)";
  let scale =
    match Sys.getenv_opt "SB_SCENARIOS_SCALE" with
    | Some "smoke" -> "smoke"
    | _ -> "full"
  in
  let cfg = if scale = "smoke" then Scenario.smoke_config else Scenario.default_config in
  Printf.printf
    "config: %s (seed=%d ticks=%d chains=%d window=%d pkts/tick=%d lanes=%d)\n" scale
    cfg.Scenario.seed cfg.Scenario.ticks cfg.Scenario.num_chains cfg.Scenario.window
    cfg.Scenario.pkts_per_tick cfg.Scenario.lanes;
  let results = Scenario.run_matrix ~clock:Unix.gettimeofday cfg in
  let t =
    Table.create
      ~header:
        [ "scenario"; "pps"; "packets"; "distinct flows"; "peak tab"; "expired";
          "p99 bus ms"; "satisfied"; "oracle"; "ratio" ]
  in
  List.iter
    (fun m ->
      Table.add_row t
        [
          m.Scenario.m_scenario;
          Printf.sprintf "%.2fM" (m.Scenario.m_pps /. 1e6);
          string_of_int m.Scenario.m_packets;
          string_of_int m.Scenario.m_distinct_flows;
          string_of_int m.Scenario.m_peak_entries;
          string_of_int m.Scenario.m_expired;
          Printf.sprintf "%.2f" m.Scenario.m_p99_latency_ms;
          Printf.sprintf "%.1f" m.Scenario.m_satisfied;
          Printf.sprintf "%.1f" m.Scenario.m_oracle;
          Printf.sprintf "%.3f" m.Scenario.m_ratio;
        ])
    results;
  Table.print t;
  (match List.find_opt (fun m -> m.Scenario.m_scenario = "ddos") results with
  | Some m ->
    Printf.printf "ddos: %d distinct flows through the tables, live window %d, peak %d entries\n"
      m.Scenario.m_distinct_flows m.Scenario.m_live_flows m.Scenario.m_peak_entries
  | None -> ());
  if !json_mode then begin
    let oc = open_out "BENCH_scenarios.json" in
    Printf.fprintf oc "{\n  \"params\": {\n";
    Printf.fprintf oc "    \"scale\": %S,\n    \"seed\": %d,\n    \"ticks\": %d,\n" scale
      cfg.Scenario.seed cfg.Scenario.ticks;
    Printf.fprintf oc "    \"epoch_len\": %.2f,\n    \"num_chains\": %d,\n"
      cfg.Scenario.epoch_len cfg.Scenario.num_chains;
    Printf.fprintf oc "    \"window\": %d,\n    \"pkts_per_tick\": %d,\n"
      cfg.Scenario.window cfg.Scenario.pkts_per_tick;
    Printf.fprintf oc "    \"lanes\": %d,\n    \"idle_ticks\": %d,\n"
      cfg.Scenario.lanes cfg.Scenario.idle_ticks;
    Printf.fprintf oc "    \"sites\": 25\n  },\n";
    Printf.fprintf oc "  \"scenarios\": {\n";
    let n = List.length results in
    List.iteri
      (fun i m ->
        Printf.fprintf oc "    %S: {\n" m.Scenario.m_scenario;
        Printf.fprintf oc "      \"pps\": %.0f,\n" m.Scenario.m_pps;
        Printf.fprintf oc "      \"wall_s\": %.3f,\n" m.Scenario.m_wall;
        Printf.fprintf oc "      \"packets\": %d,\n" m.Scenario.m_packets;
        Printf.fprintf oc "      \"delivered\": %d,\n" m.Scenario.m_delivered;
        Printf.fprintf oc "      \"distinct_flows\": %d,\n" m.Scenario.m_distinct_flows;
        Printf.fprintf oc "      \"live_flows\": %d,\n" m.Scenario.m_live_flows;
        Printf.fprintf oc "      \"peak_flow_entries\": %d,\n" m.Scenario.m_peak_entries;
        Printf.fprintf oc "      \"final_flow_entries\": %d,\n" m.Scenario.m_final_entries;
        Printf.fprintf oc "      \"expired\": %d,\n" m.Scenario.m_expired;
        Printf.fprintf oc "      \"unroutable\": %d,\n" m.Scenario.m_unroutable;
        Printf.fprintf oc "      \"p99_bus_latency_ms\": %.4f,\n"
          m.Scenario.m_p99_latency_ms;
        Printf.fprintf oc "      \"bus_delivered\": %d,\n" m.Scenario.m_bus_delivered;
        Printf.fprintf oc "      \"satisfied\": %.4f,\n" m.Scenario.m_satisfied;
        Printf.fprintf oc "      \"oracle\": %.4f,\n" m.Scenario.m_oracle;
        Printf.fprintf oc "      \"satisfied_over_oracle\": %.4f\n" m.Scenario.m_ratio;
        Printf.fprintf oc "    }%s\n" (if i = n - 1 then "" else ","))
      results;
    Printf.fprintf oc "  }\n}\n";
    close_out oc;
    print_endline "wrote BENCH_scenarios.json"
  end

(* ------------------------------------------------------------------ *)
(* Decentralized anycast arm: controller-outage sweep (BENCH_anycast)  *)
(* ------------------------------------------------------------------ *)

(* The decentralization trade, measured: all four Loop arms on the
   25-site backbone with a Global Switchboard outage covering a growing
   fraction of the run (and the sweep's sacrificial site going dark one
   epoch in). Satisfied demand and path stretch per (fraction, arm) —
   closed-loop degrades toward static as the outage grows, the anycast
   agents keep adapting without the controller. SB_ANYCAST_SCALE=smoke
   selects the CI-sized config. Fully deterministic (no wall clocks in
   the JSON, so CI diffs a double run byte for byte). *)
let anycast_bench () =
  header "Extension: decentralized anycast arm under controller outage";
  let scale =
    match Sys.getenv_opt "SB_ANYCAST_SCALE" with
    | Some "smoke" -> "smoke"
    | _ -> "full"
  in
  let cfg = if scale = "smoke" then Scenario.smoke_config else Scenario.default_config in
  Printf.printf "config: %s (seed=%d ticks=%d chains=%d lanes=%d outage_start_epoch=%d)\n"
    scale cfg.Scenario.seed cfg.Scenario.ticks cfg.Scenario.num_chains
    cfg.Scenario.lanes
    (Scenario.outage_start_epoch cfg);
  let fractions = [ 0.; 0.25; 0.5; 0.75; 1.0 ] in
  let points = Scenario.outage_sweep ~fractions cfg in
  let t =
    Table.create
      ~header:[ "outage frac"; "arm"; "pre"; "during"; "stretch"; "rerouted" ]
  in
  List.iter
    (fun (p : Scenario.outage_point) ->
      Table.add_row t
        [
          Printf.sprintf "%.2f" p.Scenario.op_fraction;
          p.Scenario.op_arm;
          Printf.sprintf "%.1f" p.Scenario.op_pre;
          Printf.sprintf "%.1f" p.Scenario.op_during;
          Printf.sprintf "%.3f" p.Scenario.op_stretch;
          string_of_int p.Scenario.op_rerouted;
        ])
    points;
  Table.print t;
  let find frac arm =
    List.find
      (fun (p : Scenario.outage_point) ->
        Float.abs (p.Scenario.op_fraction -. frac) < 1e-9 && p.Scenario.op_arm = arm)
      points
  in
  let full_any = find 1.0 "anycast" and full_closed = find 1.0 "closed-loop" in
  let zero_any = find 0. "anycast" and zero_closed = find 0. "closed-loop" in
  Printf.printf
    "full outage: anycast %.1f vs closed-loop %.1f (x%.3f); zero outage: closed-loop \
     %.1f vs anycast %.1f (x%.3f)\n"
    full_any.Scenario.op_during full_closed.Scenario.op_during
    (full_any.Scenario.op_during /. full_closed.Scenario.op_during)
    zero_closed.Scenario.op_during zero_any.Scenario.op_during
    (zero_closed.Scenario.op_during /. zero_any.Scenario.op_during);
  if !json_mode then begin
    let oc = open_out "BENCH_anycast.json" in
    Printf.fprintf oc "{\n  \"params\": {\n";
    Printf.fprintf oc "    \"scale\": %S,\n    \"seed\": %d,\n    \"ticks\": %d,\n" scale
      cfg.Scenario.seed cfg.Scenario.ticks;
    Printf.fprintf oc "    \"epoch_len\": %.2f,\n    \"num_chains\": %d,\n"
      cfg.Scenario.epoch_len cfg.Scenario.num_chains;
    Printf.fprintf oc "    \"lanes\": %d,\n    \"sites\": 25,\n" cfg.Scenario.lanes;
    Printf.fprintf oc "    \"outage_start_epoch\": %d\n  },\n"
      (Scenario.outage_start_epoch cfg);
    Printf.fprintf oc "  \"sweep\": [\n";
    let n = List.length points in
    List.iteri
      (fun i (p : Scenario.outage_point) ->
        Printf.fprintf oc
          "    {\"fraction\": %.2f, \"arm\": %S, \"pre\": %.4f, \"during\": %.4f, \
           \"stretch\": %.4f, \"rerouted\": %d}%s\n"
          p.Scenario.op_fraction p.Scenario.op_arm p.Scenario.op_pre
          p.Scenario.op_during p.Scenario.op_stretch p.Scenario.op_rerouted
          (if i = n - 1 then "" else ","))
      points;
    Printf.fprintf oc "  ],\n";
    Printf.fprintf oc "  \"headline\": {\n";
    Printf.fprintf oc "    \"full_outage_anycast_over_closed\": %.4f,\n"
      (full_any.Scenario.op_during /. full_closed.Scenario.op_during);
    Printf.fprintf oc "    \"zero_outage_closed_over_anycast\": %.4f\n"
      (zero_closed.Scenario.op_during /. zero_any.Scenario.op_during);
    Printf.fprintf oc "  }\n}\n";
    close_out oc;
    print_endline "wrote BENCH_anycast.json"
  end

(* ------------------------------------------------------------------ *)
(* Elastic placement: flash-crowd sweep (BENCH_placement)              *)
(* ------------------------------------------------------------------ *)

(* The placement experiment (DESIGN.md section 16): diurnal drift plus a
   flash crowd on one PoP, on the sparse two-deployments-per-VNF
   footprint. Route-only closed loop vs the same loop with the Place
   planner armed vs the oracle (the identical loop with the
   perfect-knowledge placements provisioned in advance), so the headline
   ratio reads as "how much of perfect advance provisioning does elastic
   placement recover online". SB_PLACEMENT_SCALE=smoke selects the
   CI-sized config. Fully deterministic (no wall clocks in the JSON, so
   CI diffs a double run byte for byte). *)
let placement_bench () =
  header "Extension: elastic placement under a one-PoP flash crowd";
  let scale =
    match Sys.getenv_opt "SB_PLACEMENT_SCALE" with
    | Some "smoke" -> "smoke"
    | _ -> "full"
  in
  (* The smoke grid stretches to 12 ticks: the planner needs its observe
     window plus a rollout epoch before an open carries traffic, and an
     8-tick run would end the flash crowd before the second open lands. *)
  let cfg =
    if scale = "smoke" then { Scenario.smoke_config with Scenario.ticks = 12 }
    else Scenario.default_config
  in
  let flash_lo, flash_hi = Scenario.flash_window cfg in
  Printf.printf "config: %s (seed=%d ticks=%d chains=%d lanes=%d flash=[%d,%d))\n"
    scale cfg.Scenario.seed cfg.Scenario.ticks cfg.Scenario.num_chains
    cfg.Scenario.lanes flash_lo flash_hi;
  let points = Scenario.placement_sweep cfg in
  let t =
    Table.create ~header:[ "arm"; "mean"; "flash"; "rerouted"; "scale actions" ]
  in
  List.iter
    (fun (p : Scenario.placement_point) ->
      Table.add_row t
        [
          p.Scenario.pl_arm;
          Printf.sprintf "%.1f" p.Scenario.pl_mean;
          Printf.sprintf "%.1f" p.Scenario.pl_flash;
          string_of_int p.Scenario.pl_rerouted;
          string_of_int p.Scenario.pl_scale_actions;
        ])
    points;
  Table.print t;
  let find arm =
    List.find (fun (p : Scenario.placement_point) -> p.Scenario.pl_arm = arm) points
  in
  let ro = find "route-only" and pl = find "placement" and orc = find "oracle" in
  (* The planner's own worst case: one action per cooldown cycle, opens
     plus the drains that close them. *)
  let churn_budget = 2 * Sb_adapt.Place.default_params.Sb_adapt.Place.max_extra in
  Printf.printf
    "flash window: route-only %.1f, placement %.1f, oracle %.1f -> placement holds \
     %.1f%% of oracle (route-only %.1f%%); %d scale actions (budget %d)\n"
    ro.Scenario.pl_flash pl.Scenario.pl_flash orc.Scenario.pl_flash
    (100. *. pl.Scenario.pl_flash /. orc.Scenario.pl_flash)
    (100. *. ro.Scenario.pl_flash /. orc.Scenario.pl_flash)
    pl.Scenario.pl_scale_actions churn_budget;
  if !json_mode then begin
    let oc = open_out "BENCH_placement.json" in
    Printf.fprintf oc "{\n  \"params\": {\n";
    Printf.fprintf oc "    \"scale\": %S,\n    \"seed\": %d,\n    \"ticks\": %d,\n" scale
      cfg.Scenario.seed cfg.Scenario.ticks;
    Printf.fprintf oc "    \"epoch_len\": %.2f,\n    \"num_chains\": %d,\n"
      cfg.Scenario.epoch_len cfg.Scenario.num_chains;
    Printf.fprintf oc "    \"lanes\": %d,\n    \"sites\": 25,\n" cfg.Scenario.lanes;
    Printf.fprintf oc "    \"flash_lo\": %d,\n    \"flash_hi\": %d,\n" flash_lo flash_hi;
    Printf.fprintf oc "    \"churn_budget\": %d\n  },\n" churn_budget;
    Printf.fprintf oc "  \"sweep\": [\n";
    let n = List.length points in
    List.iteri
      (fun i (p : Scenario.placement_point) ->
        Printf.fprintf oc
          "    {\"arm\": %S, \"mean\": %.4f, \"flash\": %.4f, \"rerouted\": %d, \
           \"scale_actions\": %d}%s\n"
          p.Scenario.pl_arm p.Scenario.pl_mean p.Scenario.pl_flash
          p.Scenario.pl_rerouted p.Scenario.pl_scale_actions
          (if i = n - 1 then "" else ","))
      points;
    Printf.fprintf oc "  ],\n";
    Printf.fprintf oc "  \"headline\": {\n";
    Printf.fprintf oc "    \"placement_over_oracle_flash\": %.4f,\n"
      (pl.Scenario.pl_flash /. orc.Scenario.pl_flash);
    Printf.fprintf oc "    \"placement_over_oracle_mean\": %.4f,\n"
      (pl.Scenario.pl_mean /. orc.Scenario.pl_mean);
    Printf.fprintf oc "    \"route_only_over_oracle_flash\": %.4f,\n"
      (ro.Scenario.pl_flash /. orc.Scenario.pl_flash);
    Printf.fprintf oc "    \"scale_actions\": %d\n" pl.Scenario.pl_scale_actions;
    Printf.fprintf oc "  }\n}\n";
    close_out oc;
    print_endline "wrote BENCH_placement.json"
  end

(* ------------------------------------------------------------------ *)
(* Extension: rule compiler + delta rollout (BENCH_compile)            *)
(* ------------------------------------------------------------------ *)

module Compile = Sb_ctrl.Compile

(* Two measurements, both fully deterministic (no wall clocks in the
   JSON, so CI can diff a double run byte for byte):

   1. Diagram scale: compile N templated chains (route/spec templates
      model a fleet of cloned service chains) into the hash-consed
      interner and price a 2%-churn epoch — the bytes a delta Prepare
      ships vs a full one, using the Types.msg_size wire model.

   2. Rollout latency: a live System under a byte-priced bus
      (bus_bandwidth), Delta vs Full rollout — simulated commit latency
      and wide-area bytes of one route update as the committed chain
      population grows. *)
let compile_bench () =
  header "Extension: compiled delta rollout (bytes + 2PC latency)";
  let scale =
    match Sys.getenv_opt "SB_COMPILE_SCALE" with
    | Some "smoke" -> "smoke"
    | _ -> "full"
  in
  let counts =
    if scale = "smoke" then [ 1_000; 10_000 ]
    else [ 10_000; 100_000; 1_000_000 ]
  in
  let nsites = 25 in
  let vnf_of k = k mod 8 in
  (* Template pool: 64 spec shapes x route patterns keyed by chain id —
     a fleet of cloned service chains, the regime where hash-consing
     shares VNF suffixes across chains. *)
  let spec_of id =
    let tpl = id mod 64 in
    let nvnfs = 5 + (tpl mod 4) in
    {
      Ct.spec_name = "tpl";
      ingress_attachment = "in";
      egress_attachment = "out";
      vnfs = List.init nvnfs (fun i -> vnf_of (tpl + i));
      traffic = 1.0;
    }
  in
  (* [churn = true] is the epoch's incremental update: only the LAST
     VNF's site moves (one admission-demand row, two adjacent stages). *)
  let routes_of id ~churn =
    let sp = spec_of id in
    let last = List.length sp.Ct.vnfs - 1 in
    let mk o w =
      {
        Ct.element_sites =
          Array.of_list
            ((id mod nsites)
             :: List.mapi
                  (fun i v ->
                    (v + o + i + if churn && i = last then 1 else 0) mod nsites)
                  sp.Ct.vnfs
            @ [ (id + 1) mod nsites ]);
        weight = w;
      }
    in
    [ mk 0 0.4; mk 3 0.3; mk 6 0.2; mk 9 0.1 ]
  in
  let t =
    Table.create
      ~header:
        [ "chains"; "nodes"; "actions"; "stages"; "sharing"; "ruleset B";
          "churn B"; "ratio" ]
  in
  let diagram_rows =
    List.map
      (fun n ->
        let c = ref (Compile.empty ()) in
        for id = 0 to n - 1 do
          let p =
            Compile.prepare !c ~chain:id ~spec:(spec_of id)
              ~routes:(routes_of id ~churn:false)
          in
          c := Compile.commit !c ~chain:id p
        done;
        let st = Compile.stats !c in
        (* A 2%-churn epoch under delta rollout broadcasts one Route_delta
           per churned chain; the full-reinstall baseline re-broadcasts
           every chain's Route_update. Both priced by the wire model. *)
        let ruleset_b = ref 0 and churn_b = ref 0 in
        let prep_full = ref 0 and prep_delta = ref 0 in
        for id = 0 to n - 1 do
          let spec = spec_of id in
          ruleset_b :=
            !ruleset_b
            + Ct.msg_size
                (Ct.Route_update
                   { chain = id; egress_label = 0; spec;
                     routes = routes_of id ~churn:false; version = 0 });
          if id mod 50 = 0 then begin
            let routes = routes_of id ~churn:true in
            let p = Compile.prepare !c ~chain:id ~spec ~routes in
            let d = Compile.delta_from_committed !c p in
            churn_b :=
              !churn_b
              + Ct.msg_size
                  (Ct.Route_delta { chain = id; egress_label = 0; spec; delta = d });
            prep_full :=
              !prep_full
              + Ct.msg_size (Ct.Prepare { txid = 0; chain = id; routes; delta = None; spec });
            prep_delta :=
              !prep_delta
              + Ct.msg_size
                  (Ct.Prepare { txid = 0; chain = id; routes = []; delta = Some d; spec })
          end
        done;
        let sharing = float_of_int st.Compile.nodes /. float_of_int st.Compile.stages_total in
        Table.add_row t
          [
            string_of_int n;
            string_of_int st.Compile.nodes;
            string_of_int st.Compile.actions;
            string_of_int st.Compile.stages_total;
            Printf.sprintf "%.4f" sharing;
            string_of_int !ruleset_b;
            string_of_int !churn_b;
            Printf.sprintf "%.4f" (float_of_int !churn_b /. float_of_int !ruleset_b);
          ];
        (n, st, !ruleset_b, !churn_b, !prep_full, !prep_delta))
      counts
  in
  Table.print t;
  (* Part 2: live rollout, Delta vs Full. Each VNF controller homes at a
     distinct site so the 2PC crosses the wide area, and the bus prices
     serialization by bytes (10 kB/s), so payload size is visible in the
     commit latency. The update moves only the last VNF — the localized
     churn the delta encodes in O(changed stages). *)
  let sys_counts = if scale = "smoke" then [ 10; 25 ] else [ 10; 50; 200 ] in
  let delay a b = if a = b then 0. else 0.030 in
  let chain_vnfs i = List.init 8 (fun k -> (i + k) mod 3) in
  let routes_for sp ~churn =
    let last = List.length sp.Ct.vnfs - 1 in
    let mk o w =
      {
        Ct.element_sites =
          Array.of_list
            ((0
             :: List.mapi
                  (fun i v ->
                    (v + o + i + if churn && i = last then 1 else 0) mod 4)
                  sp.Ct.vnfs)
            @ [ 3 ]);
        weight = w;
      }
    in
    [ mk 0 0.25; mk 1 0.25; mk 2 0.25; mk 3 0.25 ]
  in
  let run_rollout rollout n =
    let sys =
      Csys.create ~num_sites:4 ~delay ~gsb_site:0 ~rollout ~bus_bandwidth:10_000. ()
    in
    for v = 0 to 2 do
      (* first deployment site = controller home: spread off the GSB *)
      Csys.deploy_vnf sys ~vnf:v ~site:(v + 1) ~capacity:1e9 ~instances:2
    done;
    for site = 0 to 3 do
      for v = 0 to 2 do
        Csys.deploy_vnf sys ~vnf:v ~site ~capacity:1e9 ~instances:2
      done;
      Csys.register_edge sys ~site ~attachment:(Printf.sprintf "a%d" site)
    done;
    Csys.set_route_policy sys (fun sp ~exclude:_ -> Some (routes_for sp ~churn:false));
    let chains =
      List.init n (fun i ->
          let c =
            Csys.request_chain sys
              {
                Ct.spec_name = Printf.sprintf "c%d" i;
                ingress_attachment = "a0";
                egress_attachment = "a3";
                vnfs = chain_vnfs i;
                traffic = 0.1;
              }
          in
          Eng.run (Csys.engine sys);
          c)
    in
    Sb_msgbus.Bus.reset_stats (Csys.bus sys);
    let chain = List.nth chains (n / 2) in
    let spec = Option.get (Csys.chain_spec sys ~chain) in
    let t0 = Eng.now (Csys.engine sys) in
    Csys.update_routes sys ~chain (routes_for spec ~churn:true);
    Eng.run (Csys.engine sys);
    let commit_at =
      List.find_map
        (fun (ts, m) ->
          if ts >= t0 && String.length m >= 15 && String.sub m 0 15 = "gsb: 2pc commit"
          then Some ts
          else None)
        (Csys.log sys)
    in
    let commit_latency =
      match commit_at with
      | Some ts -> ts -. t0
      | None -> Eng.now (Csys.engine sys) -. t0
    in
    let stats = Sb_msgbus.Bus.stats (Csys.bus sys) in
    (commit_latency, stats.Sb_msgbus.Bus.wan_bytes)
  in
  let t2 =
    Table.create
      ~header:
        [ "chains"; "delta commit ms"; "full commit ms"; "delta wan B"; "full wan B" ]
  in
  let rollout_rows =
    List.map
      (fun n ->
        let dl, db = run_rollout Csys.Delta_rollout n in
        let fl, fb = run_rollout Csys.Full_rollout n in
        Table.add_row t2
          [
            string_of_int n;
            Printf.sprintf "%.1f" (1000. *. dl);
            Printf.sprintf "%.1f" (1000. *. fl);
            string_of_int db;
            string_of_int fb;
          ];
        (n, dl, fl, db, fb))
      sys_counts
  in
  Table.print t2;
  if !json_mode then begin
    let oc = open_out "BENCH_compile.json" in
    Printf.fprintf oc "{\n  \"params\": { \"scale\": %S, \"sites\": %d, \"churn\": 0.02 },\n"
      scale nsites;
    Printf.fprintf oc "  \"diagram\": [\n";
    let nd = List.length diagram_rows in
    List.iteri
      (fun i (n, st, ruleset_b, churn_b, prep_full, prep_delta) ->
        Printf.fprintf oc
          "    { \"chains\": %d, \"nodes\": %d, \"actions\": %d, \"stages\": %d, \
           \"sharing\": %.6f, \"full_ruleset_bytes\": %d, \"churn_epoch_bytes\": %d, \
           \"epoch_ratio\": %.6f, \"prepare_full_bytes\": %d, \"prepare_delta_bytes\": %d }%s\n"
          n st.Compile.nodes st.Compile.actions st.Compile.stages_total
          (float_of_int st.Compile.nodes /. float_of_int st.Compile.stages_total)
          ruleset_b churn_b
          (float_of_int churn_b /. float_of_int ruleset_b)
          prep_full prep_delta
          (if i = nd - 1 then "" else ","))
      diagram_rows;
    Printf.fprintf oc "  ],\n  \"rollout\": [\n";
    let nr = List.length rollout_rows in
    List.iteri
      (fun i (n, dl, fl, db, fb) ->
        Printf.fprintf oc
          "    { \"chains\": %d, \"delta_commit_s\": %.6f, \"full_commit_s\": %.6f, \
           \"delta_wan_bytes\": %d, \"full_wan_bytes\": %d }%s\n"
          n dl fl db fb
          (if i = nr - 1 then "" else ","))
      rollout_rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    print_endline "wrote BENCH_compile.json"
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("table2", table2);
    ("fig11", fig11);
    ("table3", table3);
    ("fig12a", fig12a);
    ("fig12b", fig12b);
    ("fig12c", fig12c);
    ("fig13a", fig13a);
    ("fig13b", fig13b);
    ("fig13c", fig13c);
    ("failures", failures);
    ("timevar", timevar);
    ("adapt", adapt);
    ("scenarios", scenarios);
    ("anycast", anycast_bench);
    ("placement", placement_bench);
    ("compile", compile_bench);
    ("ablation", ablation);
    ("scale", scale);
    ("micro", micro);
  ]

let () =
  ignore fmt_or_dash;
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let requested =
    List.filter
      (fun a ->
        if a = "--json" then begin
          json_mode := true;
          false
        end
        else true)
      args
  in
  let selected =
    if requested = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %s (known: %s)\n" name
              (String.concat " " (List.map fst experiments));
            None)
        requested
  in
  List.iter (fun (_, f) -> f ()) selected
