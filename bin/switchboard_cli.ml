(* Command-line front end to Global Switchboard's traffic engineering.

   Synthesizes a reproducible wide-area scenario (seeded backbone topology +
   chain workload, Section 7.3 style) and exposes the three planning
   operations of Section 4.2:

     switchboard_cli route --scheme sb-dp --chains 24 --coverage 0.5
     switchboard_cli compare --seed 7
     switchboard_cli plan-cloud --budget 200
     switchboard_cli plan-vnf --new-sites 2 *)

open Cmdliner

module Model = Sb_core.Model
module Routing = Sb_core.Routing
module Eval = Sb_core.Eval
module Workload = Sb_core.Workload

(* ----------------------------- options ----------------------------- *)

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the scenario.")

let chains =
  Arg.(value & opt int 24 & info [ "chains" ] ~docv:"N" ~doc:"Number of service chains.")

let coverage =
  Arg.(
    value
    & opt float 0.5
    & info [ "coverage" ] ~docv:"F" ~doc:"Fraction of sites hosting each VNF (0, 1].")

let cores =
  Arg.(value & opt int 5 & info [ "cores" ] ~docv:"N" ~doc:"Backbone core routers.")

let scheme =
  let schemes =
    [
      ("anycast", Eval.Anycast);
      ("compute-aware", Eval.Compute_aware);
      ("onehop", Eval.Onehop);
      ("dp-latency", Eval.Dp_latency);
      ("sb-dp", Eval.Sb_dp);
      ("sb-lp", Eval.Sb_lp);
    ]
  in
  Arg.(
    value
    & opt (enum schemes) Eval.Sb_dp
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Routing scheme: anycast, compute-aware, onehop, dp-latency, sb-dp, sb-lp.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each chain's route.")

let file =
  Arg.(
    value
    & opt (some file) None
    & info [ "file" ] ~docv:"SCENARIO"
        ~doc:
          "Load the deployment from a scenario file (see lib/core/spec.mli for the \
           format) instead of synthesizing one.")

let build_model ?file seed cores chains coverage =
  match file with
  | Some path -> (
    match Sb_core.Spec.load_file path with
    | Ok m -> m
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      exit 2)
  | None ->
    let rng = Sb_util.Rng.create seed in
    let topo = Sb_net.Topology.backbone ~rng ~num_core:cores ~pops_per_core:2 () in
    Workload.synthesize ~rng topo
      { Workload.default with Workload.num_chains = chains; coverage }

(* ------------------------------ route ------------------------------ *)

let route_cmd =
  let run seed cores chains coverage scheme verbose file =
    let m = build_model ?file seed cores chains coverage in
    Printf.printf "scenario: %d nodes, %d chains, coverage %.2f, demand %.1f\n"
      (Model.num_sites m) (Model.num_chains m) coverage (Model.total_demand m);
    match Eval.route ~seed m scheme with
    | Error e ->
      Printf.eprintf "routing failed: %s\n" e;
      1
    | Ok r ->
      if verbose then
        for c = 0 to Model.num_chains m - 1 do
          Format.printf "%a@." (fun ppf r -> Routing.pp_chain ppf r c) r
        done;
      Printf.printf "%s: supported load %.2fx, mean latency %.2f ms\n"
        (Eval.scheme_name scheme) (Routing.max_alpha r)
        (1000. *. Routing.mean_latency r);
      (match Routing.validate r with
      | Ok () -> 0
      | Error e ->
        Printf.eprintf "INVALID ROUTING: %s\n" e;
        1)
  in
  let term =
    Term.(const run $ seed $ cores $ chains $ coverage $ scheme $ verbose $ file)
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Route a chain workload (synthetic or from a file) with one scheme.")
    term

(* ----------------------------- compare ----------------------------- *)

let compare_cmd =
  let run seed cores chains coverage file =
    let m = build_model ?file seed cores chains coverage in
    (* Every (scheme, metric) cell is an independent evaluation over its
       own arena; fan them over domains. *)
    let schemes = Array.of_list Eval.all_schemes in
    let ns = Array.length schemes in
    let mlf = Array.make ns 0. in
    let lat = Array.make ns 0. in
    Sb_util.Par.map_chunks ~n:(2 * ns) (fun lo hi ->
        for k = lo to hi - 1 do
          if k < ns then mlf.(k) <- Eval.max_load_factor ~seed m schemes.(k)
          else lat.(k - ns) <- Eval.latency ~seed ~load:0.5 m schemes.(k - ns)
        done);
    Printf.printf "%-14s %10s %14s\n" "scheme" "max load" "latency@0.5";
    Array.iteri
      (fun i s ->
        Printf.printf "%-14s %9.2fx %11s\n" (Eval.scheme_name s) mlf.(i)
          (if lat.(i) = infinity then "overload"
           else Printf.sprintf "%.2f ms" (1000. *. lat.(i))))
      schemes;
    0
  in
  let term = Term.(const run $ seed $ cores $ chains $ coverage $ file) in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all routing schemes on one scenario.")
    term

(* ---------------------------- plan-cloud --------------------------- *)

let plan_cloud_cmd =
  let budget =
    Arg.(value & opt float 200. & info [ "budget" ] ~docv:"B" ~doc:"Extra compute to place.")
  in
  let run seed cores chains coverage budget =
    let m = build_model seed cores chains coverage in
    match (Sb_core.Capacity.optimize m ~budget, Sb_core.Capacity.uniform m ~budget) with
    | Ok opt, Ok uni ->
      Printf.printf "uniform placement:   alpha = %.3f\n" uni.Sb_core.Capacity.alpha;
      Printf.printf "optimized placement: alpha = %.3f (+%.1f%%)\n" opt.Sb_core.Capacity.alpha
        (100. *. ((opt.Sb_core.Capacity.alpha /. uni.Sb_core.Capacity.alpha) -. 1.));
      Array.iteri
        (fun s a -> if a > 1e-6 then Printf.printf "  site %2d: +%.1f\n" s a)
        opt.Sb_core.Capacity.allocation;
      0
    | Error e, _ | _, Error e ->
      Printf.eprintf "planning failed: %s\n" e;
      1
  in
  let term = Term.(const run $ seed $ cores $ chains $ coverage $ budget) in
  Cmd.v
    (Cmd.info "plan-cloud"
       ~doc:"Place additional cloud capacity to maximize supported demand (Section 4.2).")
    term

(* ------------------------------ adapt ------------------------------ *)

let adapt_cmd =
  let module Adapt = Sb_adapt.Loop in
  let module Topology = Sb_net.Topology in
  let epochs =
    Arg.(value & opt int 12 & info [ "epochs" ] ~docv:"N" ~doc:"Control epochs to simulate.")
  in
  let epoch_len =
    Arg.(
      value
      & opt float 2.0
      & info [ "epoch-len" ] ~docv:"S" ~doc:"Simulated seconds per control epoch.")
  in
  let fail_epoch =
    Arg.(
      value
      & opt int 6
      & info [ "fail-epoch" ] ~docv:"E"
          ~doc:"Epoch at which links fail (negative: no failure).")
  in
  let fail_links =
    Arg.(
      value
      & opt (list int) []
      & info [ "fail-links" ] ~docv:"IDS"
          ~doc:
            "Comma-separated link ids to fail at $(b,--fail-epoch); default picks the \
             busiest core-core duplex under the epoch-0 solve.")
  in
  let hysteresis =
    Arg.(
      value
      & opt float Adapt.default_params.Adapt.hysteresis
      & info [ "hysteresis" ] ~docv:"F"
          ~doc:"Relative cost gain a chain must show before it is re-routed.")
  in
  let budget =
    Arg.(
      value
      & opt int Adapt.default_params.Adapt.churn_budget
      & info [ "budget" ] ~docv:"N" ~doc:"Max chains re-routed per control epoch.")
  in
  let run seed cores chains coverage file epochs epoch_len fail_epoch fail_links
      hysteresis budget =
    let m = build_model ?file seed cores chains coverage in
    let topo = Model.topology m in
    (* The closed loop stands up a site agent at every routable node. *)
    let unsited = ref [] in
    for node = Topology.num_nodes topo - 1 downto 0 do
      if Model.site_of_node m node = None then unsited := node :: !unsited
    done;
    if !unsited <> [] then begin
      Printf.eprintf
        "scenario unusable for adaptation: %d node(s) have no Switchboard site (e.g. node %d)\n"
        (List.length !unsited) (List.hd !unsited);
      exit 2
    end;
    let n = Model.num_chains m in
    let demand = Adapt.diurnal_demand ~period:(2 * epochs) ~seed n in
    let failed_links =
      if fail_epoch < 0 || fail_epoch >= epochs then []
      else if fail_links <> [] then fail_links
      else begin
        (* Busiest core-core duplex under the epoch-0 solve: the most
           disruptive single failure that keeps the core ring connected. *)
        let is_core node =
          let name = Topology.node_name topo node in
          String.length name >= 4 && String.sub name 0 4 = "core"
        in
        let m0 =
          Model.with_chain_traffic_factors m
            (Array.init n (fun c -> demand ~epoch:0 ~chain:c))
        in
        let ls0 = Routing.load_state (Sb_core.Dp_routing.solve m0) in
        let links = Topology.links topo in
        let best = ref (-1., []) in
        Array.iter
          (fun (l : Topology.link) ->
            if l.Topology.src < l.Topology.dst && is_core l.Topology.src
               && is_core l.Topology.dst
            then begin
              let ids =
                Array.to_list links
                |> List.filter_map (fun (k : Topology.link) ->
                       if
                         (k.Topology.src = l.Topology.src && k.Topology.dst = l.Topology.dst)
                         || (k.Topology.src = l.Topology.dst
                            && k.Topology.dst = l.Topology.src)
                       then Some k.Topology.id
                       else None)
              in
              let load =
                List.fold_left
                  (fun acc i -> acc +. Sb_core.Load_state.link_sb_load ls0 i)
                  0. ids
              in
              if load > fst !best then best := (load, ids)
            end)
          links;
        snd !best
      end
    in
    let sc =
      {
        Adapt.sc_model = m;
        sc_epochs = epochs;
        sc_epoch_len = epoch_len;
        sc_demand = demand;
        sc_failures = (if failed_links = [] then [] else [ (fail_epoch, failed_links) ]);
      }
    in
    let params =
      { Adapt.default_params with Adapt.hysteresis; churn_budget = budget; seed }
    in
    Printf.printf "scenario: %d nodes, %d chains, %d epochs x %.1fs" (Model.num_sites m)
      n epochs epoch_len;
    if failed_links <> [] then
      Printf.printf "; %d link(s) fail at epoch %d" (List.length failed_links) fail_epoch;
    print_newline ();
    let static = Adapt.run ~params sc Adapt.Static in
    let closed = Adapt.run ~params sc Adapt.Closed_loop in
    let oracle = Adapt.run ~params sc Adapt.Oracle in
    let s = Array.of_list static.Adapt.epochs in
    let c = Array.of_list closed.Adapt.epochs in
    let o = Array.of_list oracle.Adapt.epochs in
    let ratio arr e =
      if o.(e).Adapt.ep_supported <= 0. then 1.
      else arr.(e).Adapt.ep_supported /. o.(e).Adapt.ep_supported
    in
    Printf.printf "%-6s %12s %12s %12s %15s %6s %5s\n" "epoch" "oracle tput"
      "closed tput" "static tput" "closed/oracle" "moved" "down";
    for e = 0 to epochs - 1 do
      Printf.printf "%-6s %12.2f %12.2f %12.2f %14.0f%% %6d %5d\n"
        (if failed_links <> [] && e = fail_epoch then Printf.sprintf "%d*" e
         else string_of_int e)
        o.(e).Adapt.ep_supported c.(e).Adapt.ep_supported s.(e).Adapt.ep_supported
        (100. *. ratio c e) c.(e).Adapt.ep_rerouted c.(e).Adapt.ep_down_links
    done;
    Printf.printf
      "closed loop moved %d chain route(s) in total (budget %d/epoch); final epoch: \
       closed %.0f%%, static %.0f%% of oracle\n"
      closed.Adapt.total_rerouted budget
      (100. *. ratio c (epochs - 1))
      (100. *. ratio s (epochs - 1));
    0
  in
  let term =
    Term.(
      const run $ seed $ cores $ chains $ coverage $ file $ epochs $ epoch_len
      $ fail_epoch $ fail_links $ hysteresis $ budget)
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Run the closed telemetry/re-routing loop on a scenario (synthetic or from a \
          file) against static and oracle baselines.")
    term

(* ----------------------------- plan-vnf ---------------------------- *)

let plan_vnf_cmd =
  let new_sites =
    Arg.(value & opt int 1 & info [ "new-sites" ] ~docv:"N" ~doc:"New sites per VNF.")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Solve the Section 4.3 placement MIP by branch-and-bound instead of the \
             greedy (falls back to the greedy if the search returns no incumbent).")
  in
  let run seed cores chains coverage new_sites exact =
    let m = build_model seed cores chains coverage in
    let lat model =
      1000.
      *. Routing.propagation_latency
           (Sb_core.Dp_routing.solve ~rng:(Sb_util.Rng.create seed) model)
    in
    let sugg =
      if exact then
        match Sb_core.Placement.mip m ~new_sites_per_vnf:new_sites with
        | Some exact -> exact
        | None ->
          (* The MIP already warned on stderr (node budget / infeasible);
             hand the operator the greedy hint rather than nothing. *)
          Printf.printf "MIP returned no incumbent; using the greedy placement\n";
          Sb_core.Placement.suggest m ~new_sites_per_vnf:new_sites
      else Sb_core.Placement.suggest m ~new_sites_per_vnf:new_sites
    in
    let rand = Sb_core.Placement.random ~rng:(Sb_util.Rng.create seed) m ~new_sites_per_vnf:new_sites in
    Printf.printf "current deployment:     %.2f ms mean propagation latency\n" (lat m);
    Printf.printf "random new sites:       %.2f ms\n" (lat rand);
    Printf.printf "Switchboard placement:  %.2f ms\n" (lat sugg);
    0
  in
  let term = Term.(const run $ seed $ cores $ chains $ coverage $ new_sites $ exact) in
  Cmd.v
    (Cmd.info "plan-vnf"
       ~doc:"Suggest new VNF deployment sites that minimize chain latency (Section 4.2).")
    term

(* ------------------------------ chaos ------------------------------ *)

let chaos_cmd =
  let module Schedule = Sb_chaos.Schedule in
  let module Harness = Sb_chaos.Harness in
  let search =
    Arg.(value & flag & info [ "search" ] ~doc:"Search seeds for a violating schedule.")
  in
  let budget =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"N" ~doc:"Schedules to try under $(b,--search).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the (shrunk) violating schedule to FILE, for CI artifacts.")
  in
  let lanes =
    Arg.(
      value
      & opt (some int) None
      & info [ "lanes" ] ~docv:"D"
          ~doc:
            "Dataplane shard lanes for the replayed system (default 1). The \
             invariants must hold at any lane count.")
  in
  let run seed search budget out lanes =
    let print_result (r : Harness.result) =
      Format.printf "schedule (seed %d):@.%a@.%a@." r.schedule.Schedule.seed
        Schedule.pp r.schedule Harness.pp_result r
    in
    if search then begin
      match Harness.search ~base_seed:seed ~budget with
      | None ->
        Format.printf
          "chaos: %d schedules (seeds %d..%d), zero invariant violations@." budget
          seed
          (seed + budget - 1);
        0
      | Some r ->
        Format.printf "chaos: VIOLATION — minimal failing schedule:@.";
        print_result r;
        Format.printf "replay: switchboard_cli chaos --seed %d@."
          r.schedule.Schedule.seed;
        (match out with
        | Some file ->
          let oc = open_out file in
          output_string oc (Schedule.to_string r.schedule);
          output_string oc "\n";
          List.iter
            (fun v ->
              output_string oc (Format.asprintf "%a\n" Sb_chaos.Invariant.pp_violation v))
            r.violations;
          close_out oc
        | None -> ());
        1
    end
    else begin
      let r = Harness.run_seed ?lanes seed in
      print_result r;
      if r.violations = [] then 0 else 1
    end
  in
  let term = Term.(const run $ seed $ search $ budget $ out $ lanes) in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay one fault schedule ($(b,--seed)) or search many ($(b,--search)) against \
          the whole-system invariant checker. Deterministic: the same seed replays \
          bit-identically.")
    term

(* ---------------------------- scenarios ---------------------------- *)

let scenarios_cmd =
  let module Scenario = Sb_adapt.Scenario in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Start from the CI-sized smoke config instead of the full-scale one.")
  in
  let ticks =
    Arg.(
      value
      & opt (some int) None
      & info [ "ticks" ] ~docv:"N" ~doc:"Scenario horizon in control epochs.")
  in
  let window =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"N" ~doc:"Total concurrently-live flows.")
  in
  let pkts =
    Arg.(
      value
      & opt (some int) None
      & info [ "pkts" ] ~docv:"N" ~doc:"Sustained packets per tick.")
  in
  let lanes =
    Arg.(
      value
      & opt (some int) None
      & info [ "lanes" ] ~docv:"D" ~doc:"Dataplane shard lanes.")
  in
  let num_chains =
    Arg.(
      value
      & opt (some int) None
      & info [ "chains" ] ~docv:"N" ~doc:"Service chains (= workload keys).")
  in
  let names =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Run only this scenario (repeatable); default: the whole catalog.")
  in
  let run seed smoke ticks window pkts lanes num_chains names =
    let base = if smoke then Scenario.smoke_config else Scenario.default_config in
    let cfg =
      {
        base with
        Scenario.seed;
        ticks = Option.value ~default:base.Scenario.ticks ticks;
        window = Option.value ~default:base.Scenario.window window;
        pkts_per_tick = Option.value ~default:base.Scenario.pkts_per_tick pkts;
        lanes = Option.value ~default:base.Scenario.lanes lanes;
        num_chains = Option.value ~default:base.Scenario.num_chains num_chains;
      }
    in
    let unknown =
      List.filter (fun n -> not (List.mem n Scenario.scenario_names)) names
    in
    if unknown <> [] then begin
      Format.eprintf "scenarios: unknown scenario(s): %s (known: %s)@."
        (String.concat ", " unknown)
        (String.concat ", " Scenario.scenario_names);
      1
    end
    else begin
      (* Deterministic output only (no wall clock), so CI can run this
         twice and diff byte-for-byte. *)
      let results =
        Scenario.run_matrix ?names:(if names = [] then None else Some names) cfg
      in
      Format.printf
        "scenarios: seed=%d ticks=%d chains=%d window=%d pkts/tick=%d lanes=%d@."
        cfg.Scenario.seed cfg.Scenario.ticks cfg.Scenario.num_chains
        cfg.Scenario.window cfg.Scenario.pkts_per_tick cfg.Scenario.lanes;
      List.iter (fun m -> Format.printf "%a@." Scenario.pp_metrics m) results;
      0
    end
  in
  let term =
    Term.(const run $ seed $ smoke $ ticks $ window $ pkts $ lanes $ num_chains $ names)
  in
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:
         "Run the workload scenario suite (flash crowd, DDoS flood, elephant/mice, \
          regional failover, diurnal drift, combinator overlay) end to end on the \
          25-site backbone: closed-loop + oracle control arms and a streaming \
          flow-churn stress of the packed dataplane. Deterministic: same seed, same \
          output.")
    term

(* ----------------------------- anycast ----------------------------- *)

let anycast_cmd =
  let module Scenario = Sb_adapt.Scenario in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Start from the CI-sized smoke config instead of the full-scale one.")
  in
  let ticks =
    Arg.(
      value
      & opt (some int) None
      & info [ "ticks" ] ~docv:"N" ~doc:"Scenario horizon in control epochs.")
  in
  let num_chains =
    Arg.(
      value
      & opt (some int) None
      & info [ "chains" ] ~docv:"N" ~doc:"Service chains (= workload keys).")
  in
  let lanes =
    Arg.(
      value
      & opt (some int) None
      & info [ "lanes" ] ~docv:"D" ~doc:"Forwarder RSS lanes in the live arms.")
  in
  let fractions =
    Arg.(
      value & opt_all float []
      & info [ "fraction" ] ~docv:"F"
          ~doc:
            "Controller-outage fraction of the post-start horizon (repeatable); \
             default: 0, 0.25, 0.5, 0.75, 1.")
  in
  let run seed smoke ticks num_chains lanes fractions =
    let base = if smoke then Scenario.smoke_config else Scenario.default_config in
    let cfg =
      {
        base with
        Scenario.seed;
        ticks = Option.value ~default:base.Scenario.ticks ticks;
        num_chains = Option.value ~default:base.Scenario.num_chains num_chains;
        lanes = Option.value ~default:base.Scenario.lanes lanes;
      }
    in
    let fractions = if fractions = [] then None else Some fractions in
    let points = Scenario.outage_sweep ?fractions cfg in
    Format.printf "anycast: seed=%d ticks=%d chains=%d lanes=%d outage_start_epoch=%d@."
      cfg.Scenario.seed cfg.Scenario.ticks cfg.Scenario.num_chains cfg.Scenario.lanes
      (Scenario.outage_start_epoch cfg);
    List.iter (fun p -> Format.printf "%a@." Scenario.pp_outage_point p) points;
    0
  in
  let term = Term.(const run $ seed $ smoke $ ticks $ num_chains $ lanes $ fractions) in
  Cmd.v
    (Cmd.info "anycast"
       ~doc:
         "Controller-outage sweep of the four control arms (static, oracle, \
          closed-loop, decentralized anycast) on the 25-site backbone: satisfied \
          demand and path stretch vs. the fraction of the run the Global \
          Switchboard is down. Deterministic: same seed, same output.")
    term

let () =
  let info =
    Cmd.info "switchboard_cli" ~version:"1.0"
      ~doc:"Wide-area service chaining traffic engineering (Switchboard reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            route_cmd;
            compare_cmd;
            adapt_cmd;
            plan_cloud_cmd;
            plan_vnf_cmd;
            chaos_cmd;
            scenarios_cmd;
            anycast_cmd;
          ]))
